#include "eco/eco.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sta/timer.h"

namespace skewopt::eco {
namespace {

using network::Design;

class EcoTest : public ::testing::Test {
 protected:
  static const StageDelayLut& lut() {
    static StageDelayLut shared(sharedTech());
    return shared;
  }
  static const tech::TechModel& sharedTech() {
    static tech::TechModel t = tech::TechModel::make28nm();
    return t;
  }
};

TEST_F(EcoTest, UniformDelayIncreasesWithWirelength) {
  for (std::size_t p = 0; p < lut().numSizes(); ++p) {
    for (std::size_t k = 0; k < 4; ++k) {
      double prev = 0.0;
      for (std::size_t qi = 0; qi < lut().wirelengths().size(); qi += 5) {
        const double d = lut().uniformDelay(p, qi, k);
        EXPECT_GT(d, prev);
        prev = d;
      }
    }
  }
}

TEST_F(EcoTest, StrongerCellsFasterAtLongWire) {
  const std::size_t qi = lut().wirelengths().size() - 1;  // 200 um
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_LT(lut().uniformDelay(4, qi, k), lut().uniformDelay(0, qi, k));
}

TEST_F(EcoTest, CornerOrderingOfStageDelay) {
  // Stage delay at c1 (slow ss) > c0 > c2 > c3 for gate-dominated stages.
  const double d0 = lut().uniformDelay(2, 0, 0);
  const double d1 = lut().uniformDelay(2, 0, 1);
  const double d2 = lut().uniformDelay(2, 0, 2);
  const double d3 = lut().uniformDelay(2, 0, 3);
  EXPECT_GT(d1, d0);
  EXPECT_LT(d2, d0);
  EXPECT_LT(d3, d2);
}

TEST_F(EcoTest, ArcDelayComposition) {
  // u pairs at the settled slew: arcDelay ~ first + (u-2)*uniform + last.
  const std::size_t p = 2, qi = 8, k = 0;
  const double slew = 40.0, load = 6.0;
  const double d3 = lut().arcDelay(p, qi, 3, k, slew, load);
  const double d5 = lut().arcDelay(p, qi, 5, k, slew, load);
  EXPECT_NEAR(d5 - d3, 2.0 * lut().uniformDelay(p, qi, k), 1e-9);
  EXPECT_THROW(lut().arcDelay(p, qi, 0, k, slew, load),
               std::invalid_argument);
}

TEST_F(EcoTest, MinAchievableDelayIsALowerBound) {
  for (const double len : {120.0, 480.0, 1100.0}) {
    for (std::size_t k = 0; k < 4; ++k) {
      const double dmin = lut().minAchievableDelay(len, k);
      EXPECT_GT(dmin, 0.0);
      // Any concrete covering configuration must be >= the bound.
      for (std::size_t p = 0; p < lut().numSizes(); p += 2) {
        for (std::size_t qi = 4; qi < lut().wirelengths().size(); qi += 9) {
          const double q = lut().wirelengths()[qi];
          const std::size_t u = std::max<std::size_t>(
              1, static_cast<std::size_t>(std::ceil((len / q - 1.0) / 2.0)));
          EXPECT_GE(static_cast<double>(u) * lut().uniformDelay(p, qi, k),
                    dmin - 1e-9);
        }
      }
    }
  }
}

TEST_F(EcoTest, RatioBoundsEnvelopeScatter) {
  // The fitted W_min/W_max curves must contain every characterized sample
  // (the Figure 2 red curves contain all circles).
  for (const auto& [a, b] : {std::pair<std::size_t, std::size_t>{1, 0},
                            {2, 0}, {3, 0}, {2, 1}}) {
    const RatioBound& up = lut().ratioBound(a, b, true);
    const RatioBound& lo = lut().ratioBound(a, b, false);
    for (const RatioSample& s : lut().ratioScatter(a, b)) {
      EXPECT_LE(s.ratio, up.eval(s.delay_per_um_c0) + 1e-9);
      EXPECT_GE(s.ratio, lo.eval(s.delay_per_um_c0) - 1e-9);
    }
  }
}

TEST_F(EcoTest, RatioBoundsAreNontrivial) {
  // The envelope must be a band, not the whole axis: for (c1, c0), ratios
  // concentrate above 1 (c1 slower), bounded away from 0 and 10.
  const RatioBound& up = lut().ratioBound(1, 0, true);
  const RatioBound& lo = lut().ratioBound(1, 0, false);
  const double mid = (up.u_lo + up.u_hi) / 2.0;
  EXPECT_GT(lo.eval(mid), 0.7);
  EXPECT_LT(up.eval(mid), 3.0);
  EXPECT_GT(up.eval(mid), lo.eval(mid));
}

TEST_F(EcoTest, ComboLegalityMatchesMaxCap) {
  // Weak cells cannot legally drive long inter-inverter spans.
  const StageDelayLut& l = lut();
  EXPECT_FALSE(l.comboLegal(0, l.wirelengths().size() - 1));  // X1 @ 200um
  EXPECT_TRUE(l.comboLegal(4, l.wirelengths().size() - 1));   // X16 @ 200um
  EXPECT_TRUE(l.comboLegal(0, 0));                            // X1 @ 10um
  // Legality is monotone: if (p, q) is legal, (p, q' < q) is too.
  for (std::size_t p = 0; p < l.numSizes(); ++p) {
    bool was_legal = true;
    for (std::size_t qi = 0; qi < l.wirelengths().size(); ++qi) {
      const bool legal = l.comboLegal(p, qi);
      if (!was_legal) {
        EXPECT_FALSE(legal) << p << " " << qi;
      }
      was_legal = legal;
    }
  }
}

TEST_F(EcoTest, SelectSolutionNeverPicksIllegalCombo) {
  const std::vector<std::size_t> corners = {0, 1};
  std::vector<double> want = {120.0, 180.0};
  std::vector<double> slews = {30.0, 45.0}, loads = {2.0, 2.0};
  EcoEngine eco(sharedTech(), lut());
  const ArcSolution sol =
      eco.selectSolution(corners, want, 300.0, slews, loads);
  ASSERT_TRUE(sol.valid);
  EXPECT_TRUE(lut().comboLegal(sol.p, sol.q_idx));
}

TEST_F(EcoTest, SelectSolutionHitsAchievableTarget) {
  // Ask for exactly what (p=2, q=60um, u=4) produces: Algorithm 1 must find
  // a config with small error.
  const std::vector<std::size_t> corners = {0, 1, 3};
  const std::size_t p = 2, qi = 10;
  const double q = lut().wirelengths()[qi];
  std::vector<double> want, slews, loads;
  for (const std::size_t k : corners) {
    slews.push_back(35.0);
    loads.push_back(5.0);
    want.push_back(lut().arcDelay(p, qi, 4, k, 35.0, 5.0));
  }
  EcoEngine eco(sharedTech(), lut(), /*pair_count_penalty_ps=*/0.0);
  const ArcSolution sol =
      eco.selectSolution(corners, want, 4.0 * q, slews, loads);
  ASSERT_TRUE(sol.valid);
  EXPECT_LT(sol.err, 1.0);
  EXPECT_EQ(sol.u, 4u);
}

TEST_F(EcoTest, SelectSolutionRespectsGeometry) {
  // A 2000um arc cannot be covered by tiny (q, u) combos; whatever comes
  // back must span it.
  const std::vector<std::size_t> corners = {0, 2};
  std::vector<double> want = {400.0, 200.0};
  std::vector<double> slews = {30.0, 30.0}, loads = {3.0, 3.0};
  EcoEngine eco(sharedTech(), lut());
  const ArcSolution sol = eco.selectSolution(corners, want, 2000.0, slews, loads);
  ASSERT_TRUE(sol.valid);
  EXPECT_GE((2.0 * static_cast<double>(sol.u) + 1.0) *
                lut().wirelengths()[sol.q_idx],
            2000.0 - 1e-6);
}

TEST_F(EcoTest, RebuildArcRealizesSolution) {
  // Build src -> (2 interior) -> dst, rebuild the arc with a chosen
  // solution, and check tree validity + realized delay in the right range.
  const tech::TechModel& tech = sharedTech();
  Design d("t", &tech, {0, 0});
  d.corners = {0, 1};
  d.floorplan = geom::Region{{geom::Rect{-50, -200, 1200, 400}}};
  const int anchor = d.tree.addBuffer(0, {20, 0}, 3);
  d.tree.addSink(anchor, {20, 40});  // second child: anchor is a branch point
  int prev = anchor;
  prev = d.tree.addBuffer(prev, {200, 0}, 2);
  prev = d.tree.addBuffer(prev, {400, 0}, 2);
  const int dst = d.tree.addBuffer(prev, {600, 0}, 3);
  d.tree.addSink(dst, {650, 0});
  d.tree.addSink(dst, {650, 30});  // dst branches too, terminating the arc
  d.routing.rebuildAll(d.tree);

  const std::vector<network::Arc> arcs = d.tree.extractArcs();
  const network::Arc* arc = nullptr;
  for (const network::Arc& a : arcs)
    if (a.src == anchor && a.dst == dst) arc = &a;
  ASSERT_NE(arc, nullptr);
  ASSERT_EQ(arc->interior.size(), 2u);

  sta::Timer timer(tech);
  const sta::CornerTiming t0 = timer.analyze(d.tree, d.routing, 0);
  const double before =
      t0.arrival[static_cast<std::size_t>(dst)] -
      t0.arrival[static_cast<std::size_t>(anchor)];

  // Ask for ~35% more delay at both corners (detour-style ECO).
  EcoEngine eco(tech, lut());
  std::vector<double> want, slews, loads;
  for (std::size_t ki = 0; ki < 2; ++ki) {
    const sta::CornerTiming tk = timer.analyze(d.tree, d.routing, d.corners[ki]);
    want.push_back(1.35 * (tk.arrival[static_cast<std::size_t>(dst)] -
                           tk.arrival[static_cast<std::size_t>(anchor)]));
    slews.push_back(tk.slew[static_cast<std::size_t>(anchor)]);
    loads.push_back(tech.cell(3).pin_cap_ff[d.corners[ki]]);
  }
  const ArcSolution sol =
      eco.selectSolution(d.corners, want, arc->direct_len_um, slews, loads);
  ASSERT_TRUE(sol.valid);
  const std::vector<int> inserted = eco.rebuildArc(d, *arc, sol);
  EXPECT_EQ(inserted.size(), 2 * sol.u);

  std::string err;
  ASSERT_TRUE(d.tree.validate(&err)) << err;
  const sta::CornerTiming t1 = timer.analyze(d.tree, d.routing, 0);
  const double after =
      t1.arrival[static_cast<std::size_t>(dst)] -
      t1.arrival[static_cast<std::size_t>(anchor)];
  // Realized delay moved toward the target (ECO noise allowed).
  EXPECT_GT(after, before * 1.10);
  EXPECT_LT(after, want[0] * 1.35);
}

TEST_F(EcoTest, LegalizerSnapsAndSeparates) {
  const tech::TechModel& tech = sharedTech();
  Design d("t", &tech, {0, 0});
  d.corners = {0};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 100, 100}}};
  // Three buffers dropped on (almost) the same spot.
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(d.tree.addBuffer(0, {50.03, 50.04}, 1));
  Legalizer legal(tech, d.floorplan);
  legal.legalize(d, ids);
  std::set<std::pair<long, long>> spots;
  for (const int id : ids) {
    const geom::Point p = d.tree.node(id).pos;
    // On grid and inside the floorplan.
    EXPECT_NEAR(std::remainder(p.x, tech.siteWidthUm()), 0.0, 1e-6);
    EXPECT_NEAR(std::remainder(p.y, tech.rowHeightUm()), 0.0, 1e-6);
    EXPECT_TRUE(d.floorplan.contains(p));
    spots.insert({std::lround(p.x * 100), std::lround(p.y * 100)});
  }
  EXPECT_EQ(spots.size(), ids.size()) << "overlap not resolved";
}

TEST_F(EcoTest, LegalizerClampsIntoFloorplan) {
  const tech::TechModel& tech = sharedTech();
  Design d("t", &tech, {0, 0});
  d.corners = {0};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 50, 50}}};
  const int id = d.tree.addBuffer(0, {200, 300}, 1);
  Legalizer legal(tech, d.floorplan);
  legal.legalize(d, {id});
  EXPECT_TRUE(d.floorplan.contains(d.tree.node(id).pos));
}

}  // namespace
}  // namespace skewopt::eco
