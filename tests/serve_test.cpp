// Tests for the serve subsystem: spec hashing, the bounded priority queue,
// the result cache, the scheduler (concurrent submit / cancel / retry /
// backpressure / drain / shutdown), the in-process client's bit-identity
// guarantee against direct core::Flow::run, and the JSON wire protocol
// (both the socket-free dispatch path and a live TCP round trip).
//
// The whole file runs under ThreadSanitizer as serve_test_tsan (see
// tests/CMakeLists.txt), which is the race coverage the subsystem's
// concurrency claims rest on.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/queue.h"
#include "serve/server.h"

namespace skewopt::serve {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

/// A small, fast spec: 40-sink CLS1v1, local flow, two iterations.
JobSpec tinySpec(std::uint64_t seed, core::FlowMode mode = core::FlowMode::kLocal) {
  JobSpec spec;
  spec.source.kind = DesignSource::Kind::kTestgen;
  spec.source.testcase = "CLS1v1";
  spec.source.sinks = 40;
  spec.source.max_pairs = 40;
  spec.source.seed = seed;
  spec.mode = mode;
  spec.options.local.max_iterations = 2;
  return spec;
}

/// One-shot gate the fake runners block on.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Bit-identical comparison of every result-bearing FlowResult field;
/// wall-clock members (LpSolveStats timings) are deliberately skipped, as
/// are solver-effort fields (LP iteration counts, warm hits, model reuse,
/// realize-memo hits) — those legitimately differ between a cold run and a
/// warm-started DELTA run of the same spec. The differential delta tests
/// use this directly; expectIdentical adds the effort fields back for
/// paths that must replay the exact same solve.
void expectEquivalent(const core::FlowResult& a, const core::FlowResult& b) {
  const auto metrics = [](const core::DesignMetrics& x,
                          const core::DesignMetrics& y) {
    EXPECT_EQ(x.sum_variation_ps, y.sum_variation_ps);
    EXPECT_EQ(x.local_skew_ps, y.local_skew_ps);
    EXPECT_EQ(x.clock_cells, y.clock_cells);
    EXPECT_EQ(x.power_mw, y.power_mw);
    EXPECT_EQ(x.area_um2, y.area_um2);
  };
  metrics(a.before, b.before);
  metrics(a.after, b.after);

  EXPECT_EQ(a.global.sum_before_ps, b.global.sum_before_ps);
  EXPECT_EQ(a.global.sum_after_ps, b.global.sum_after_ps);
  EXPECT_EQ(a.global.chosen_u_ps, b.global.chosen_u_ps);
  EXPECT_EQ(a.global.arcs_changed, b.global.arcs_changed);
  EXPECT_EQ(a.global.improved, b.global.improved);
  EXPECT_EQ(a.global.candidates, b.global.candidates);

  EXPECT_EQ(a.local.sum_before_ps, b.local.sum_before_ps);
  EXPECT_EQ(a.local.sum_after_ps, b.local.sum_after_ps);
  EXPECT_EQ(a.local.improved, b.local.improved);
  EXPECT_EQ(a.local.golden_evaluations, b.local.golden_evaluations);
  ASSERT_EQ(a.local.history.size(), b.local.history.size());
  for (std::size_t i = 0; i < a.local.history.size(); ++i) {
    EXPECT_EQ(a.local.history[i].round, b.local.history[i].round);
    EXPECT_EQ(a.local.history[i].type, b.local.history[i].type);
    EXPECT_EQ(a.local.history[i].predicted_delta_ps,
              b.local.history[i].predicted_delta_ps);
    EXPECT_EQ(a.local.history[i].realized_delta_ps,
              b.local.history[i].realized_delta_ps);
    EXPECT_EQ(a.local.history[i].sum_after_ps,
              b.local.history[i].sum_after_ps);
  }
}

/// Exact replay comparison: equivalence plus the solver-effort fields.
void expectIdentical(const core::FlowResult& a, const core::FlowResult& b) {
  expectEquivalent(a, b);
  EXPECT_EQ(a.global.lp_iterations, b.global.lp_iterations);
}

// ---------------------------------------------------------------------------
// Spec hashing

TEST(JobSpecTest, CanonicalKeyCoversResultAffectingFields) {
  const JobSpec base = tinySpec(1);
  EXPECT_EQ(canonicalKey(base), canonicalKey(tinySpec(1)));
  EXPECT_EQ(contentHash(base), contentHash(tinySpec(1)));

  JobSpec changed = tinySpec(2);
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  changed = tinySpec(1, core::FlowMode::kGlobal);
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  changed = tinySpec(1);
  changed.options.local.max_iterations = 3;
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  changed = tinySpec(1);
  changed.options.global.u_sweep = {0.1};
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  changed = tinySpec(1);
  changed.source.kind = DesignSource::Kind::kFile;
  changed.source.path = "x.skv";
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  // The delta-edit fields are result-affecting and must move the key.
  changed = tinySpec(1);
  changed.source.moved_sinks = {MovedSink{2, 1.0, 2.0}};
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));

  changed = tinySpec(1);
  changed.options.global.corner_dmax_derate = {1.05};
  EXPECT_NE(canonicalKey(base), canonicalKey(changed));
}

TEST(JobSpecTest, TopologyKeyIsStableUnderDeltaEdits) {
  // The warm-state store's key must survive exactly the edits a DELTA job
  // can make — anything else would let a delta miss its base's state (or
  // worse, hit an unrelated one).
  const JobSpec base = tinySpec(1);
  EXPECT_EQ(topologyKey(base).rfind("|tv=", 0), 0u);
  EXPECT_NE(topologyKey(base), canonicalKey(base));  // distinct namespaces

  JobSpec edited = tinySpec(1);
  edited.options.global.u_sweep = {0.9};
  edited.options.global.corner_dmax_derate = {1.05};
  edited.source.moved_sinks = {MovedSink{2, 1.0, 2.0}};
  EXPECT_EQ(topologyKey(base), topologyKey(edited));
  EXPECT_EQ(topologyHash(base), topologyHash(edited));
  EXPECT_NE(canonicalKey(base), canonicalKey(edited));

  // Everything that changes the materialized design or flow structure
  // still moves the topology key.
  EXPECT_NE(topologyKey(base), topologyKey(tinySpec(2)));
  EXPECT_NE(topologyKey(base),
            topologyKey(tinySpec(1, core::FlowMode::kGlobal)));
  JobSpec more_sinks = tinySpec(1);
  more_sinks.source.sinks = 48;
  EXPECT_NE(topologyKey(base), topologyKey(more_sinks));
}

TEST(JobSpecTest, ApplyDeltaEditsMergesReplacesAndSorts) {
  JobSpec base = tinySpec(1);
  base.source.moved_sinks = {MovedSink{2, 0.0, 0.0}, MovedSink{5, 1.0, 1.0}};
  base.options.global.u_sweep = {0.05, 0.2};

  DeltaEdits edits;
  edits.moved_sinks = {MovedSink{5, 9.0, 9.0},   // replaces sink 5's move
                       MovedSink{1, 3.0, 3.0}};  // new entry, sorts first
  edits.has_derates = true;
  edits.corner_dmax_derate = {1.1};

  const JobSpec merged = applyDeltaEdits(base, edits);
  ASSERT_EQ(merged.source.moved_sinks.size(), 3u);
  EXPECT_EQ(merged.source.moved_sinks[0].sink, 1);
  EXPECT_EQ(merged.source.moved_sinks[1].sink, 2);
  EXPECT_EQ(merged.source.moved_sinks[2].sink, 5);
  EXPECT_EQ(merged.source.moved_sinks[2].x, 9.0);
  EXPECT_EQ(merged.options.global.corner_dmax_derate,
            (std::vector<double>{1.1}));
  // has_u_sweep is false: the base sweep is kept.
  EXPECT_EQ(merged.options.global.u_sweep, base.options.global.u_sweep);
  // Everything else carries over untouched.
  EXPECT_EQ(merged.source.seed, base.source.seed);
  EXPECT_EQ(merged.mode, base.mode);
}

TEST(JobSpecTest, SchedulingAndParallelismKnobsDoNotChangeTheKey) {
  const JobSpec base = tinySpec(1);
  JobSpec same = tinySpec(1);
  same.priority = 9;
  same.deadline_ms = 1000;
  same.max_retries = 5;
  same.options.local.parallel_trials = !base.options.local.parallel_trials;
  same.options.local.threads = 7;
  same.options.global.parallel_realize = !base.options.global.parallel_realize;
  EXPECT_EQ(canonicalKey(base), canonicalKey(same));
}

// ---------------------------------------------------------------------------
// Queue

std::shared_ptr<Job> queuedJob(std::uint64_t id, int priority) {
  auto job = std::make_shared<Job>();
  job->id = id;
  job->spec.priority = priority;
  return job;
}

TEST(JobQueueTest, PriorityThenFifoOrder) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(queuedJob(1, 0), false));
  ASSERT_TRUE(q.push(queuedJob(2, 5), false));
  ASSERT_TRUE(q.push(queuedJob(3, 5), false));
  ASSERT_TRUE(q.push(queuedJob(4, 9), false));
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(q.pop(nullptr)->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 2, 3, 1}));
}

TEST(JobQueueTest, BoundedRejectsWhenFullAndDrainsAfterClose) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(queuedJob(1, 0), false));
  EXPECT_TRUE(q.push(queuedJob(2, 0), false));
  EXPECT_FALSE(q.push(queuedJob(3, 0), false));  // full: rejected
  q.close();
  EXPECT_FALSE(q.push(queuedJob(4, 0), false));  // closed: rejected
  EXPECT_EQ(q.pop(nullptr)->id, 1u);
  EXPECT_EQ(q.pop(nullptr)->id, 2u);
  EXPECT_EQ(q.pop(nullptr), nullptr);  // closed and empty
}

TEST(JobQueueTest, CancelledEntriesAreSkippedAndReported) {
  JobQueue q(4);
  auto a = queuedJob(1, 0), b = queuedJob(2, 0);
  b->cancel_requested.store(true);
  ASSERT_TRUE(q.push(b, false));
  ASSERT_TRUE(q.push(a, false));
  std::vector<std::shared_ptr<Job>> cancelled;
  EXPECT_EQ(q.pop(&cancelled)->id, 1u);
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0]->id, 2u);
  EXPECT_EQ(q.remove(7), nullptr);
}

// ---------------------------------------------------------------------------
// Cache

TEST(ResultCacheTest, LruEvictionAndStats) {
  ResultCache cache(2);
  core::FlowResult r;
  r.before.sum_variation_ps = 42.0;
  EXPECT_FALSE(cache.lookup("a", nullptr));
  cache.insert("a", r);
  cache.insert("b", r);
  core::FlowResult out;
  EXPECT_TRUE(cache.lookup("a", &out));  // refreshes "a"
  EXPECT_EQ(out.before.sum_variation_ps, 42.0);
  cache.insert("c", r);                  // evicts "b" (LRU)
  EXPECT_FALSE(cache.lookup("b", nullptr));
  EXPECT_TRUE(cache.lookup("a", nullptr));
  EXPECT_TRUE(cache.lookup("c", nullptr));
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
}

// ---------------------------------------------------------------------------
// Scheduler: the acceptance-criteria suite

TEST(SchedulerTest, ThirtyTwoConcurrentSubmissionsBitIdenticalToDirectRun) {
  constexpr std::size_t kDistinct = 8, kRepeat = 4, kSubmitters = 4;

  // Direct path: build + run each distinct spec exactly as a library
  // caller would.
  std::vector<core::FlowResult> direct(kDistinct);
  for (std::size_t i = 0; i < kDistinct; ++i) {
    const JobSpec spec = tinySpec(i + 1);
    network::Design d = buildDesign(sharedTech(), spec.source);
    const core::Flow flow(sharedTech(), sharedLut(), spec.options);
    direct[i] = flow.run(d, spec.mode, nullptr);
  }

  SchedulerOptions opts;
  opts.workers = 3;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  std::vector<std::shared_ptr<Job>> jobs(kDistinct * kRepeat);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      for (std::size_t j = t; j < jobs.size(); j += kSubmitters)
        jobs[j] = client.submit(tinySpec(j % kDistinct + 1));
    });
  for (std::thread& t : submitters) t.join();

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ASSERT_NE(jobs[j], nullptr) << "submission " << j << " rejected";
    const core::FlowResult served = client.result(jobs[j]->id);
    expectIdentical(served, direct[j % kDistinct]);
  }
  const SchedulerStats s = client.stats();
  EXPECT_EQ(s.submitted, jobs.size());
  EXPECT_EQ(s.done, jobs.size());
  EXPECT_EQ(s.failed, 0u);
  // 8 distinct keys, 32 submissions: everything after the first run of a
  // key can be served from cache (how many actually hit depends on timing;
  // at least the pure repeats of already-finished keys must).
  EXPECT_EQ(s.cache.hits + s.cache.misses, jobs.size());
  EXPECT_GE(s.cache.hits, 1u);
}

TEST(SchedulerTest, FullQueueAppliesBackpressure) {
  Gate gate;
  SchedulerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec&) {
                    gate.wait();
                    return core::FlowResult{};
                  });

  // One job occupies the worker, two fill the queue.
  const auto running = sched.submit(tinySpec(1));
  ASSERT_NE(running, nullptr);
  while (sched.status(running->id).state == JobState::kQueued)
    std::this_thread::yield();
  ASSERT_NE(sched.submit(tinySpec(2)), nullptr);
  ASSERT_NE(sched.submit(tinySpec(3)), nullptr);

  // Non-blocking submit on a full queue is rejected outright.
  EXPECT_EQ(sched.submit(tinySpec(4), /*block=*/false), nullptr);

  // A blocking submit stalls until the worker frees a slot.
  std::atomic<bool> accepted{false};
  std::thread submitter([&] {
    const auto job = sched.submit(tinySpec(5), /*block=*/true);
    EXPECT_NE(job, nullptr);
    accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accepted.load()) << "blocking submit returned while full";
  gate.open();
  submitter.join();
  EXPECT_TRUE(accepted.load());
  sched.drain();
  EXPECT_EQ(sched.stats().done, 4u);
}

TEST(SchedulerTest, CancelOfQueuedJobNeverRunsIt) {
  Gate gate;
  std::mutex seen_mu;
  std::vector<std::uint64_t> seen;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec& s) {
                    gate.wait();
                    std::lock_guard<std::mutex> lk(seen_mu);
                    seen.push_back(s.source.seed);
                    return core::FlowResult{};
                  });

  const auto blocker = sched.submit(tinySpec(1));
  const auto victim = sched.submit(tinySpec(2));
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(sched.cancel(victim->id));
  EXPECT_EQ(sched.status(victim->id).state, JobState::kCancelled);
  gate.open();
  sched.drain();

  EXPECT_EQ(sched.status(blocker->id).state, JobState::kDone);
  EXPECT_EQ(sched.status(victim->id).state, JobState::kCancelled);
  std::lock_guard<std::mutex> lk(seen_mu);
  EXPECT_EQ(seen, std::vector<std::uint64_t>{1});  // the victim never ran
  EXPECT_FALSE(sched.cancel(blocker->id));         // terminal: not cancellable
}

TEST(SchedulerTest, GracefulDrainCompletesQueuedAndRunningJobs) {
  SchedulerOptions opts;
  opts.workers = 2;
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec&) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(20));
                    return core::FlowResult{};
                  });
  std::vector<std::shared_ptr<Job>> jobs;
  for (std::uint64_t i = 1; i <= 6; ++i) jobs.push_back(sched.submit(tinySpec(i)));
  sched.drain();
  for (const auto& job : jobs) {
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(sched.status(job->id).state, JobState::kDone);
  }
  EXPECT_EQ(sched.submit(tinySpec(9)), nullptr);  // intake is closed
}

TEST(SchedulerTest, ShutdownCancelsQueuedButFinishesRunning) {
  Gate gate;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec&) {
                    gate.wait();
                    return core::FlowResult{};
                  });
  const auto running = sched.submit(tinySpec(1));
  ASSERT_NE(running, nullptr);
  while (sched.status(running->id).state == JobState::kQueued)
    std::this_thread::yield();
  const auto q1 = sched.submit(tinySpec(2));
  const auto q2 = sched.submit(tinySpec(3));

  std::thread stopper([&] { sched.shutdown(); });
  // shutdown() cancels the queued jobs immediately, then waits for the
  // running one.
  while (sched.status(q2->id).state != JobState::kCancelled)
    std::this_thread::yield();
  EXPECT_EQ(sched.status(q1->id).state, JobState::kCancelled);
  EXPECT_EQ(sched.status(running->id).state, JobState::kRunning);
  gate.open();
  stopper.join();
  EXPECT_EQ(sched.status(running->id).state, JobState::kDone);
  EXPECT_EQ(sched.stats().cancelled, 2u);
}

TEST(SchedulerTest, IdenticalResubmissionIsACacheHit) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  const auto first = client.submit(tinySpec(3, core::FlowMode::kGlobal));
  ASSERT_NE(first, nullptr);
  const core::FlowResult r1 = client.result(first->id);
  EXPECT_FALSE(client.status(first->id).cached);

  const auto second = client.submit(tinySpec(3, core::FlowMode::kGlobal));
  ASSERT_NE(second, nullptr);
  const core::FlowResult r2 = client.result(second->id);
  EXPECT_TRUE(client.status(second->id).cached);
  EXPECT_EQ(client.status(second->id).attempts, 0);  // flow never re-ran
  expectIdentical(r1, r2);

  // A different spec misses.
  const auto third = client.submit(tinySpec(4, core::FlowMode::kGlobal));
  client.result(third->id);
  EXPECT_FALSE(client.status(third->id).cached);

  const SchedulerStats s = client.stats();
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.misses, 2u);
}

TEST(SchedulerTest, TransientFailuresRetryWithBackoffPermanentDoNot) {
  std::atomic<int> flaky_calls{0}, fatal_calls{0};
  SchedulerOptions opts;
  opts.workers = 1;
  opts.backoff_base_ms = 1.0;
  opts.cache_capacity = 0;  // every run must hit the runner
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec& s) -> core::FlowResult {
                    if (s.source.seed == 1) {  // transient twice, then fine
                      if (flaky_calls.fetch_add(1) < 2)
                        throw TransientError("backend hiccup");
                      return core::FlowResult{};
                    }
                    if (s.source.seed == 2) {  // permanent
                      fatal_calls.fetch_add(1);
                      throw std::runtime_error("bad spec");
                    }
                    throw TransientError("always down");  // budget exhausted
                  });

  JobSpec flaky = tinySpec(1);
  flaky.max_retries = 3;
  const auto a = sched.submit(flaky);
  EXPECT_EQ(sched.waitTerminal(a->id).state, JobState::kDone);
  EXPECT_EQ(sched.status(a->id).attempts, 3);

  const auto b = sched.submit(tinySpec(2));
  EXPECT_EQ(sched.waitTerminal(b->id).state, JobState::kFailed);
  EXPECT_EQ(sched.status(b->id).error, "bad spec");
  EXPECT_EQ(fatal_calls.load(), 1);

  JobSpec doomed = tinySpec(3);
  doomed.max_retries = 1;
  const auto c = sched.submit(doomed);
  EXPECT_EQ(sched.waitTerminal(c->id).state, JobState::kFailed);
  EXPECT_EQ(sched.status(c->id).attempts, 2);
  EXPECT_EQ(sched.status(c->id).error, "always down");

  EXPECT_EQ(sched.stats().retries, 3u);  // 2 for the flaky job + 1 doomed
}

TEST(SchedulerTest, PriorityOrdersTheQueue) {
  Gate gate;
  std::mutex order_mu;
  std::vector<std::uint64_t> order;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts,
                  [&](const JobSpec& s) {
                    gate.wait();
                    std::lock_guard<std::mutex> lk(order_mu);
                    order.push_back(s.source.seed);
                    return core::FlowResult{};
                  });
  const auto blocker = sched.submit(tinySpec(99));
  ASSERT_NE(blocker, nullptr);
  while (sched.status(blocker->id).state == JobState::kQueued)
    std::this_thread::yield();
  JobSpec low = tinySpec(1);
  JobSpec hi_a = tinySpec(2);
  hi_a.priority = 5;
  JobSpec hi_b = tinySpec(3);
  hi_b.priority = 5;
  sched.submit(low);
  sched.submit(hi_a);
  sched.submit(hi_b);
  gate.open();
  sched.drain();
  std::lock_guard<std::mutex> lk(order_mu);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{99, 2, 3, 1}));
}

TEST(SchedulerTest, StartDeadlineFailsStaleQueuedJobs) {
  Gate gate;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts, [&](const JobSpec&) {
    gate.wait();
    return core::FlowResult{};
  });
  const auto blocker = sched.submit(tinySpec(1));
  JobSpec urgent = tinySpec(2);
  urgent.deadline_ms = 5;
  const auto stale = sched.submit(urgent);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.open();
  sched.drain();
  EXPECT_EQ(sched.status(blocker->id).state, JobState::kDone);
  EXPECT_EQ(sched.status(stale->id).state, JobState::kFailed);
  EXPECT_EQ(sched.status(stale->id).error, "start deadline exceeded");
}

// ---------------------------------------------------------------------------
// DELTA jobs and the warm-state store

/// A global-mode spec with deep checks on — the configuration the delta
/// differential guarantee is stated for.
JobSpec globalSpec(std::uint64_t seed) {
  JobSpec spec = tinySpec(seed, core::FlowMode::kGlobal);
  spec.options.global.u_sweep = {0.05, 0.2};
  spec.options.check_level = check::Level::kDeep;
  return spec;
}

TEST(DeltaTest, DeltaRunsEqualColdRunsForEveryEditClass) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);

  const JobSpec base = globalSpec(11);
  const auto base_job = sched.submit(base);
  ASSERT_NE(base_job, nullptr);
  (void)sched.result(base_job->id);  // completes + populates the warm store
  EXPECT_EQ(sched.stats().warm.insertions, 1u);

  // One sink of the materialized base design, for the moved-sink edit.
  const network::Design d0 = buildDesign(sharedTech(), base.source);
  const int sink = d0.tree.sinks().front();
  const geom::Point at = d0.tree.node(sink).pos;

  struct EditCase {
    const char* name;
    DeltaEdits edits;
  };
  std::vector<EditCase> cases(3);
  cases[0].name = "derate-change";
  cases[0].edits.has_derates = true;
  cases[0].edits.corner_dmax_derate = {1.05, 0.99};
  cases[1].name = "u-tighten";
  cases[1].edits.has_u_sweep = true;
  cases[1].edits.u_sweep = {0.04, 0.16};
  cases[2].name = "moved-sink";
  cases[2].edits.moved_sinks = {MovedSink{sink, at.x + 2.0, at.y + 1.0}};

  for (const EditCase& ec : cases) {
    SCOPED_TRACE(ec.name);
    const auto delta_job = sched.submitDelta(base_job->id, ec.edits);
    ASSERT_NE(delta_job, nullptr);
    const core::FlowResult delta = sched.result(delta_job->id);

    // The scheduler ran exactly the merged spec.
    const JobSpec edited = applyDeltaEdits(base, ec.edits);
    EXPECT_EQ(canonicalKey(sched.jobSpec(delta_job->id)),
              canonicalKey(edited));

    // The differential guarantee: a warm-started delta run produces the
    // same result a cold submission of the edited spec would (deep SKW
    // gates ran clean inside both flows, or they would have thrown).
    const core::FlowResult cold = runJobSpec(sharedTech(), sharedLut(), edited);
    expectEquivalent(delta, cold);
  }
  // Every delta found its base's state under the shared topology key.
  EXPECT_EQ(sched.stats().warm.hits, 3u);
  sched.drain();
}

TEST(DeltaTest, EvictedBaseFallsBackToColdRunBitIdentically) {
  SchedulerOptions opts;
  opts.workers = 1;
  opts.warm_capacity = 1;  // one topology: the next one evicts the base's
  Scheduler sched(sharedTech(), sharedLut(), opts);

  const JobSpec base = globalSpec(21);
  const auto base_job = sched.submit(base);
  ASSERT_NE(base_job, nullptr);
  (void)sched.result(base_job->id);

  // A different topology pushes the base's warm state out of the store.
  const auto evictor = sched.submit(globalSpec(22));
  ASSERT_NE(evictor, nullptr);
  (void)sched.result(evictor->id);
  const WarmStateStore::Stats warm0 = sched.stats().warm;
  EXPECT_EQ(warm0.evictions, 1u);

  DeltaEdits edits;
  edits.has_derates = true;
  edits.corner_dmax_derate = {1.05};
  const auto delta_job = sched.submitDelta(base_job->id, edits);
  ASSERT_NE(delta_job, nullptr);
  const core::FlowResult delta = sched.result(delta_job->id);
  EXPECT_EQ(sched.status(delta_job->id).state, JobState::kDone);

  // The miss was recorded and no stale state was used...
  const WarmStateStore::Stats warm1 = sched.stats().warm;
  EXPECT_EQ(warm1.hits, warm0.hits);
  EXPECT_EQ(warm1.misses, warm0.misses + 1);

  // ...so the run was cold: bit-identical — including solver effort — to a
  // direct cold submission of the same edited spec.
  const core::FlowResult cold =
      runJobSpec(sharedTech(), sharedLut(), applyDeltaEdits(base, edits));
  expectIdentical(delta, cold);
  sched.drain();
}

TEST(DeltaTest, MovedNonSinkFailsTheJobNotTheScheduler) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  const auto base_job = sched.submit(tinySpec(23));
  ASSERT_NE(base_job, nullptr);
  (void)sched.result(base_job->id);

  DeltaEdits edits;
  edits.moved_sinks = {MovedSink{0, 1.0, 1.0}};  // node 0 is the source
  const auto delta_job = sched.submitDelta(base_job->id, edits);
  ASSERT_NE(delta_job, nullptr);
  const JobStatus st = sched.waitTerminal(delta_job->id);
  EXPECT_EQ(st.state, JobState::kFailed);
  EXPECT_NE(st.error.find("not a sink"), std::string::npos) << st.error;

  EXPECT_THROW(sched.submitDelta(424242, edits), std::out_of_range);
  sched.drain();
}

TEST(DeltaTest, ConcurrentSubmitDeltaAndEvictionIsRaceFree) {
  // Three topologies against a two-entry store: submissions, deltas, and
  // LRU evictions interleave across workers. TSan (serve_test_tsan) is the
  // real assertion here; states and stats are checked for coherence.
  SchedulerOptions opts;
  opts.workers = 3;
  opts.warm_capacity = 2;
  Scheduler sched(sharedTech(), sharedLut(), opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 3; ++t)
    drivers.emplace_back([&, t] {
      const auto base_job = sched.submit(globalSpec(31 +
                                         static_cast<std::uint64_t>(t)));
      if (!base_job) {
        failures.fetch_add(1);
        return;
      }
      if (sched.waitTerminal(base_job->id).state != JobState::kDone) {
        failures.fetch_add(1);
        return;
      }
      DeltaEdits edits;
      edits.has_u_sweep = true;
      edits.u_sweep = {0.04 + 0.01 * t, 0.16};
      const auto delta_job = sched.submitDelta(base_job->id, edits);
      if (!delta_job ||
          sched.waitTerminal(delta_job->id).state != JobState::kDone)
        failures.fetch_add(1);
    });
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.done, 6u);
  // Three topology keys cycling through two slots: someone was evicted,
  // and the store never exceeds its bound.
  EXPECT_GE(s.warm.evictions, 1u);
  EXPECT_LE(s.warm.entries, 2u);
  EXPECT_EQ(s.warm.hits + s.warm.misses, 6u);
  sched.drain();
}

// ---------------------------------------------------------------------------
// Wire protocol (socket-free dispatch, exactly what the TCP server runs)

TEST(ProtocolTest, JsonRoundTripsAndRejectsMalformedInput) {
  const json::Value v = json::parse(
      R"({"a":[1,2.5,-3e2],"b":{"s":"x\n\"y\""},"t":true,"n":null})");
  EXPECT_EQ(json::parse(json::dump(v)).num("t", 0), 0.0);  // bool, not number
  EXPECT_TRUE(json::parse(json::dump(v)).boolean("t", false));
  EXPECT_EQ(v.find("a")->size(), 3u);
  EXPECT_EQ(v.find("a")->at(2).asDouble(), -300.0);
  EXPECT_EQ(v.find("b")->find("s")->asString(), "x\n\"y\"");
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);

  // Number round trip at full double precision.
  const double tricky = 0.1 + 0.2;
  json::Value num = json::Value::object();
  num.set("x", tricky);
  EXPECT_EQ(json::parse(json::dump(num)).num("x", 0), tricky);
}

TEST(ProtocolTest, SpecJsonRoundTripPreservesTheCanonicalKey) {
  JobSpec spec = tinySpec(7, core::FlowMode::kGlobalLocal);
  spec.options.global.u_sweep = {0.1, 0.3};
  spec.options.global.beta = 1.15;
  spec.options.global.corner_dmax_derate = {1.02, 0.98};
  spec.options.local.r = 4;
  spec.source.moved_sinks = {MovedSink{3, 1.5, 2.5}, MovedSink{7, 0.0, 1.0}};
  spec.priority = 2;
  const JobSpec back = specFromJson(specToJson(spec));
  EXPECT_EQ(canonicalKey(spec), canonicalKey(back));
  EXPECT_EQ(back.priority, 2);
  ASSERT_EQ(back.source.moved_sinks.size(), 2u);
  EXPECT_EQ(back.source.moved_sinks[1].sink, 7);
  EXPECT_EQ(back.options.global.corner_dmax_derate,
            (std::vector<double>{1.02, 0.98}));

  // A hand-ordered moved_sinks list is normalized (sorted by sink id) on
  // parse, so a direct SUBMIT of it passes the SKW306 sortedness check and
  // maps to the same canonical key.
  const JobSpec unsorted = specFromJson(json::parse(
      R"({"source":{"kind":"testgen","seed":7,)"
      R"("moved_sinks":[{"sink":7,"x":0,"y":1},{"sink":3,"x":1.5,"y":2.5}]},)"
      R"("mode":"local"})"));
  ASSERT_EQ(unsorted.source.moved_sinks.size(), 2u);
  EXPECT_EQ(unsorted.source.moved_sinks[0].sink, 3);
  EXPECT_EQ(unsorted.source.moved_sinks[1].sink, 7);

  // Unknown keys are rejected, not ignored.
  json::Value bad = specToJson(spec);
  bad.set("bogus", 1);
  EXPECT_THROW(specFromJson(bad), std::runtime_error);
  json::Value bad_opt = specToJson(spec);
  json::Value opts = *bad_opt.find("options");
  json::Value local = *opts.find("local");
  local.set("iterations", 3);  // typo for max_iterations
  opts.set("local", local);
  bad_opt.set("options", opts);
  EXPECT_THROW(specFromJson(bad_opt), std::runtime_error);
}

TEST(ProtocolTest, SubmitStatusResultCancelStatsSession) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  // Direct result for the same spec, for the bit-identity check below.
  const JobSpec spec = tinySpec(5);
  network::Design d = buildDesign(sharedTech(), spec.source);
  const core::Flow flow(sharedTech(), sharedLut(), spec.options);
  const core::FlowResult direct = flow.run(d, spec.mode, nullptr);

  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(spec));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false)) << client.call(json::dump(submit));
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));
  EXPECT_EQ(sr.str("state", ""), "QUEUED");
  EXPECT_EQ(sr.find("hash")->asString().size(), 16u);

  const json::Value rr = json::parse(
      client.call(R"({"cmd":"RESULT","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(rr.boolean("ok", false));
  EXPECT_EQ(rr.str("state", ""), "DONE");
  const json::Value* result = rr.find("result");
  ASSERT_NE(result, nullptr);
  // The wire serializes doubles at %.17g: the parsed value equals the
  // direct run's bit for bit.
  EXPECT_EQ(result->find("after")->num("sum_variation_ps", -1),
            direct.after.sum_variation_ps);
  EXPECT_EQ(result->find("before")->num("sum_variation_ps", -1),
            direct.before.sum_variation_ps);

  const json::Value st = json::parse(
      client.call(R"({"cmd":"STATUS","id":)" + std::to_string(id) + "}"));
  EXPECT_TRUE(st.boolean("ok", false));
  EXPECT_EQ(st.str("state", ""), "DONE");

  const json::Value stats = json::parse(client.call(R"({"cmd":"STATS"})"));
  EXPECT_TRUE(stats.boolean("ok", false));
  EXPECT_EQ(stats.num("done", 0), 1.0);

  // Error paths: malformed JSON, unknown cmd, unknown id, bad spec key.
  EXPECT_FALSE(json::parse(client.call("not json")).boolean("ok", true));
  EXPECT_FALSE(
      json::parse(client.call(R"({"cmd":"NOPE"})")).boolean("ok", true));
  EXPECT_FALSE(json::parse(client.call(R"({"cmd":"STATUS","id":424242})"))
                   .boolean("ok", true));
  EXPECT_FALSE(json::parse(client.call(
                   R"({"cmd":"SUBMIT","spec":{"mode":"local","oops":1}})"))
                   .boolean("ok", true));
}

TEST(ProtocolTest, DeltaVerbResubmitsTheEditedSpec) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  const JobSpec base = tinySpec(41);
  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(base));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false));
  const std::uint64_t base_id = static_cast<std::uint64_t>(sr.num("id", 0));
  ASSERT_TRUE(json::parse(client.call(R"({"cmd":"RESULT","id":)" +
                                      std::to_string(base_id) + "}"))
                  .boolean("ok", false));

  // Two real sinks of the base design; sent out of order on purpose — the
  // wire layer normalizes, SKW306 sees a sorted list.
  const network::Design d0 = buildDesign(sharedTech(), base.source);
  const int s0 = d0.tree.sinks()[0];
  const int s1 = d0.tree.sinks()[1];
  const int lo = std::min(s0, s1), hi = std::max(s0, s1);
  const geom::Point p_lo = d0.tree.node(lo).pos;
  const geom::Point p_hi = d0.tree.node(hi).pos;
  std::ostringstream delta;
  delta << R"({"cmd":"DELTA","base":)" << base_id
        << R"(,"edits":{"corner_dmax_derate":[1.02],"moved_sinks":[)"
        << R"({"sink":)" << hi << R"(,"x":)" << p_hi.x + 1.0 << R"(,"y":)"
        << p_hi.y << "},"
        << R"({"sink":)" << lo << R"(,"x":)" << p_lo.x << R"(,"y":)"
        << p_lo.y + 1.0 << "}]}}";
  const json::Value dr = json::parse(client.call(delta.str()));
  ASSERT_TRUE(dr.boolean("ok", false)) << client.call(delta.str());
  EXPECT_EQ(dr.num("base", 0), static_cast<double>(base_id));
  const std::uint64_t delta_id = static_cast<std::uint64_t>(dr.num("id", 0));
  EXPECT_NE(delta_id, base_id);

  const json::Value rr = json::parse(client.call(
      R"({"cmd":"RESULT","id":)" + std::to_string(delta_id) + "}"));
  ASSERT_TRUE(rr.boolean("ok", false)) << json::dump(rr);
  EXPECT_EQ(rr.str("state", ""), "DONE");

  // The stored spec is the merged, normalized edit of the base.
  const JobSpec merged = sched.jobSpec(delta_id);
  ASSERT_EQ(merged.source.moved_sinks.size(), 2u);
  EXPECT_EQ(merged.source.moved_sinks[0].sink, lo);
  EXPECT_EQ(merged.source.moved_sinks[1].sink, hi);
  EXPECT_EQ(merged.options.global.corner_dmax_derate,
            (std::vector<double>{1.02}));

  // STATS carries the warm-state gauges.
  const json::Value st = json::parse(client.call(R"({"cmd":"STATS"})"));
  ASSERT_TRUE(st.boolean("ok", false));
  const json::Value* gauges = st.find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* key :
       {"warmstate_entries", "warmstate_hits", "warmstate_misses",
        "warmstate_evictions", "cache_evictions"}) {
    ASSERT_NE(gauges->find(key), nullptr) << key;
    EXPECT_GE(gauges->num(key, -1), 0.0) << key;
  }

  // Error paths: unknown base, unknown edit key, missing edits.
  EXPECT_FALSE(json::parse(client.call(
                   R"({"cmd":"DELTA","base":424242,"edits":{}})"))
                   .boolean("ok", true));
  EXPECT_FALSE(json::parse(client.call(
                   R"({"cmd":"DELTA","base":)" + std::to_string(base_id) +
                   R"(,"edits":{"bogus":1}})"))
                   .boolean("ok", true));
  EXPECT_FALSE(
      json::parse(client.call(R"({"cmd":"DELTA","base":)" +
                              std::to_string(base_id) + "}"))
          .boolean("ok", true));
  sched.drain();
}

TEST(ProtocolTest, CancelOverTheWire) {
  Gate gate;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts, [&](const JobSpec&) {
    gate.wait();
    return core::FlowResult{};
  });
  InProcessClient client(sched);
  const auto blocker = sched.submit(tinySpec(1));
  ASSERT_NE(blocker, nullptr);
  const auto victim = sched.submit(tinySpec(2));
  const json::Value cr = json::parse(client.call(
      R"({"cmd":"CANCEL","id":)" + std::to_string(victim->id) + "}"));
  EXPECT_TRUE(cr.boolean("ok", false));
  EXPECT_TRUE(cr.boolean("cancelled", false));
  EXPECT_EQ(cr.str("state", ""), "CANCELLED");
  const json::Value rr = json::parse(client.call(
      R"({"cmd":"RESULT","id":)" + std::to_string(victim->id) + "}"));
  EXPECT_FALSE(rr.boolean("ok", true));
  EXPECT_EQ(rr.str("state", ""), "CANCELLED");
  gate.open();
  sched.drain();
}

// ---------------------------------------------------------------------------
// Live TCP round trip

TEST(TcpTest, SubmitAndFetchOverARealSocket) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  TcpServer server(sched, {});  // ephemeral port on 127.0.0.1
  ASSERT_GT(server.port(), 0);

  const JobSpec spec = tinySpec(6);
  network::Design d = buildDesign(sharedTech(), spec.source);
  const core::Flow flow(sharedTech(), sharedLut(), spec.options);
  const core::FlowResult direct = flow.run(d, spec.mode, nullptr);

  TcpClient client("127.0.0.1", server.port());
  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(spec));
  const json::Value sr = client.call(submit);
  ASSERT_TRUE(sr.boolean("ok", false));
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));

  json::Value fetch = json::Value::object();
  fetch.set("cmd", "RESULT");
  fetch.set("id", id);
  const json::Value rr = client.call(fetch);
  ASSERT_TRUE(rr.boolean("ok", false));
  EXPECT_EQ(rr.find("result")->find("after")->num("sum_variation_ps", -1),
            direct.after.sum_variation_ps);

  json::Value stats = json::Value::object();
  stats.set("cmd", "STATS");
  EXPECT_EQ(client.call(stats).num("done", 0), 1.0);
  server.stop();
  sched.drain();
}

TEST(TcpTest, OversizedRequestLineIsRejectedWithACleanError) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  TcpServerOptions sopts;
  sopts.max_line_bytes = 256;
  TcpServer server(sched, sopts);

  {
    // A complete over-long line: one JSON error reply, then the server
    // closes the connection.
    TcpClient client("127.0.0.1", server.port());
    const std::string reply =
        client.callRaw('{' + std::string(512, ' ') + '}');
    const json::Value v = json::parse(reply);
    EXPECT_FALSE(v.boolean("ok", true));
    EXPECT_NE(v.str("error", "").find("256 bytes"), std::string::npos);
    EXPECT_THROW(client.callRaw(R"({"cmd":"STATS"})"), std::runtime_error);
  }
  {
    // A line so long its newline is many recv() chunks away: the bound
    // check fires on the unterminated fragment, so the per-connection
    // buffer never grows with the peer; same error, same close.
    TcpClient client("127.0.0.1", server.port());
    client.send(std::string(1u << 16, 'x'));
    const json::Value v = json::parse(client.readLine());
    EXPECT_FALSE(v.boolean("ok", true));
    EXPECT_NE(v.str("error", "").find("256 bytes"), std::string::npos);
  }
  // The server survives both and still answers fresh connections.
  TcpClient client("127.0.0.1", server.port());
  EXPECT_TRUE(json::parse(client.callRaw(R"({"cmd":"STATS"})"))
                  .boolean("ok", false));
  server.stop();
}

TEST(SchedulerTest, StatsStayCoherentThroughShutdown) {
  // Every stats() snapshot — including ones racing shutdown() — must see
  // each accepted job in exactly one state.
  for (int round = 0; round < 4; ++round) {
    SchedulerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 64;
    Scheduler sched(sharedTech(), sharedLut(), opts,
                    [](const JobSpec& spec) {
                      if (spec.source.seed % 5 == 0)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                      return core::FlowResult{};
                    });
    std::atomic<bool> stop{false};
    std::thread sampler([&] {
      while (!stop.load()) {
        const SchedulerStats s = sched.stats();
        EXPECT_EQ(s.submitted, s.done + s.failed + s.cancelled + s.running +
                                   s.queue_depth);
      }
    });
    std::thread submitter([&] {
      for (std::uint64_t seed = 0; seed < 200 && !stop.load(); ++seed)
        sched.submit(tinySpec(seed), false);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sched.shutdown();
    submitter.join();
    stop.store(true);
    sampler.join();
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.submitted, s.done + s.failed + s.cancelled);
  }
}

// ---------------------------------------------------------------------------
// Observability surface (METRICS verb, STATS gauges, per-job traces)

TEST(ObsProtocolTest, TraceSpecFieldRoundTripsButStaysOutOfTheKey) {
  JobSpec spec = tinySpec(31);
  spec.trace = "/tmp/job_trace.json";
  const JobSpec back = specFromJson(specToJson(spec));
  EXPECT_EQ(back.trace, spec.trace);

  // Observability output must never change which cached result a spec
  // maps to: the key ignores it, like check_level.
  JobSpec untraced = tinySpec(31);
  EXPECT_EQ(canonicalKey(spec), canonicalKey(untraced));
  EXPECT_EQ(contentHash(spec), contentHash(untraced));

  json::Value bad = specToJson(spec);
  bad.set("trace", "");
  EXPECT_THROW(specFromJson(bad), std::runtime_error);
}

TEST(ObsProtocolTest, MetricsVerbReturnsPrometheusTextAndStatsGrowGauges) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(tinySpec(32)));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false));
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));
  const json::Value rr = json::parse(
      client.call(R"({"cmd":"RESULT","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(rr.boolean("ok", false));

  // RESULT carries the flow's stage timings.
  const json::Value* stage = rr.find("result")->find("stage_ms");
  ASSERT_NE(stage, nullptr);
  EXPECT_GE(stage->num("total_ms", -1), 0.0);
  EXPECT_GE(stage->num("local_ms", -1), 0.0);

  const json::Value mr = json::parse(client.call(R"({"cmd":"METRICS"})"));
  ASSERT_TRUE(mr.boolean("ok", false));
  const std::string text = mr.str("metrics", "");
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("# TYPE skewopt_serve_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE skewopt_serve_job_run_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("skewopt_serve_job_run_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // Unknown request keys are rejected on the new verb too.
  EXPECT_FALSE(json::parse(client.call(R"({"cmd":"METRICS","bogus":1})"))
                   .boolean("ok", true));

  // STATS: the deprecated flat fields still round-trip, and the new
  // "gauges" object carries the authoritative obs values (process-global,
  // so only sanity bounds are asserted here).
  const json::Value st = json::parse(client.call(R"({"cmd":"STATS"})"));
  ASSERT_TRUE(st.boolean("ok", false));
  EXPECT_GE(st.num("done", -1), 1.0);
  EXPECT_GE(st.num("cache_hits", -1), 0.0);  // deprecated, still present
  const json::Value* gauges = st.find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* key : {"queue_depth", "jobs_running", "cache_entries",
                          "cache_hits", "cache_misses", "retries"}) {
    ASSERT_NE(gauges->find(key), nullptr) << key;
    EXPECT_GE(gauges->num(key, -1), 0.0) << key;
  }
  sched.drain();
}

TEST(ObsProtocolTest, JobWithTraceSpecWritesAChromeTrace) {
  const std::string path =
      ::testing::TempDir() + "skewopt_serve_job_trace.json";
  std::remove(path.c_str());

  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  JobSpec spec = tinySpec(33);
  spec.trace = path;
  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(spec));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false));
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));
  const json::Value rr = json::parse(
      client.call(R"({"cmd":"RESULT","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(rr.boolean("ok", false));
  EXPECT_EQ(rr.str("state", ""), "DONE");
  sched.drain();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const json::Value trace = json::parse(ss.str());
  const json::Value* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_job_span = false;
  for (std::size_t i = 0; i < events->size(); ++i)
    if (events->at(i).str("name", "") == "serve.job") saw_job_span = true;
  EXPECT_TRUE(saw_job_span);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Job telemetry: trace ids, the TRACE verb, and the flight recorder

TEST(ObsProtocolTest, TraceIdRoundTripsButStaysOutOfTheKey) {
  JobSpec spec = tinySpec(34);
  spec.trace_id = 0x0123456789abcdefULL;
  spec.options.record = true;
  const json::Value sj = specToJson(spec);
  EXPECT_EQ(sj.str("trace_id", ""), "0123456789abcdef");
  EXPECT_TRUE(sj.boolean("record", false));
  const JobSpec back = specFromJson(sj);
  EXPECT_EQ(back.trace_id, spec.trace_id);
  EXPECT_TRUE(back.options.record);

  // Neither field may move the cache key: trace_id is client metadata,
  // record is observability output.
  EXPECT_EQ(canonicalKey(spec), canonicalKey(tinySpec(34)));
  EXPECT_EQ(contentHash(spec), contentHash(tinySpec(34)));

  // Untraced, unrecorded specs serialize without the members at all —
  // pre-telemetry clients keep seeing byte-identical spec JSON.
  const json::Value plain = specToJson(tinySpec(34));
  EXPECT_EQ(plain.find("trace_id"), nullptr);
  EXPECT_EQ(plain.find("record"), nullptr);

  // Malformed ids reject loudly: wrong length, wrong alphabet, and the
  // reserved all-zero id.
  for (const char* bad :
       {"", "xyz", "0123", "0123456789ABCDEF", "0000000000000000",
        "0123456789abcdef0"}) {
    json::Value v = specToJson(tinySpec(34));
    v.set("trace_id", bad);
    EXPECT_THROW(specFromJson(v), std::runtime_error) << bad;
  }
}

TEST(ObsProtocolTest, TraceVerbExportsTheJobsFullSpanTree) {
  SchedulerOptions opts;
  opts.workers = 2;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  JobSpec spec = tinySpec(35);
  spec.trace_id = obs::traceIdFor(contentHash(spec), 42);
  const std::string hex = obs::traceIdHex(spec.trace_id);

  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(spec));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false)) << json::dump(sr);
  EXPECT_EQ(sr.str("trace_id", ""), hex);  // echoed back
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));
  ASSERT_TRUE(json::parse(client.call(R"({"cmd":"RESULT","id":)" +
                                      std::to_string(id) +
                                      R"(,"wait":true})"))
                  .boolean("ok", false));
  // No drain: the scheduler guarantees every span of the job is in the
  // ring before the terminal notify, so TRACE right after a blocking
  // RESULT must already see the full tree.
  const json::Value tr = json::parse(
      client.call(R"({"cmd":"TRACE","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(tr.boolean("ok", false)) << json::dump(tr);
  EXPECT_EQ(tr.str("trace_id", ""), hex);
  const json::Value* trace = tr.find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->str("displayTimeUnit", ""), "ms");
  const json::Value* events = trace->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  bool saw_queue = false, saw_job = false, saw_flow = false, saw_local = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = events->at(i);
    // Every span in the filtered export carries the submitted id.
    EXPECT_EQ(e.find("args")->str("trace_id", ""), hex) << json::dump(e);
    const std::string name = e.str("name", "");
    if (name == "serve.queue") saw_queue = true;
    if (name == "serve.job") saw_job = true;
    if (name == "flow.run") saw_flow = true;
    if (name == "local.run") saw_local = true;
  }
  // The full queue → job → flow → optimizer tree, in one export.
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_job);
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_local);

  // Unknown id and unknown request keys reject.
  EXPECT_FALSE(json::parse(client.call(R"({"cmd":"TRACE","id":424242})"))
                   .boolean("ok", true));
  EXPECT_FALSE(json::parse(client.call(R"({"cmd":"TRACE","id":)" +
                                       std::to_string(id) + R"(,"bogus":1})"))
                   .boolean("ok", true));
}

TEST(ObsProtocolTest, FlightRecordIsBitIdenticalSerialVsParallel) {
  JobSpec spec = tinySpec(36, core::FlowMode::kGlobalLocal);
  spec.options.global.u_sweep = {0.05, 0.2};
  spec.options.record = true;

  JobSpec serial = spec;
  serial.options.local.parallel_trials = false;
  serial.options.global.parallel_realize = false;
  const core::FlowResult rs = runJobSpec(sharedTech(), sharedLut(), serial);
  ASSERT_FALSE(rs.flight_record.empty());
  const json::Value doc = json::parse(rs.flight_record);  // strict JSON
  EXPECT_EQ(doc.num("v", -1), 1.0);
  EXPECT_NE(doc.find("global"), nullptr);
  EXPECT_NE(doc.find("local"), nullptr);
  EXPECT_NE(doc.find("before"), nullptr);
  EXPECT_NE(doc.find("after"), nullptr);

  JobSpec parallel = spec;
  parallel.options.local.parallel_trials = true;
  parallel.options.local.threads = 4;
  parallel.options.global.parallel_realize = true;
  const core::FlowResult rp = runJobSpec(sharedTech(), sharedLut(), parallel);
  EXPECT_EQ(rs.flight_record, rp.flight_record);  // bit-identical

  // Recording off: no document, and the optimization outcome is unchanged
  // bit for bit — the recorder never steers the flow.
  JobSpec off = spec;
  off.options.record = false;
  const core::FlowResult ro = runJobSpec(sharedTech(), sharedLut(), off);
  EXPECT_TRUE(ro.flight_record.empty());
  expectIdentical(rs, ro);
}

TEST(ObsProtocolTest, ResultCarriesTheFlightRecordOnlyWhenRequested) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  JobSpec spec = tinySpec(37);
  spec.options.record = true;
  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(spec));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false));
  EXPECT_EQ(sr.find("trace_id"), nullptr);  // no client id: not echoed
  const std::uint64_t id = static_cast<std::uint64_t>(sr.num("id", 0));
  const json::Value rr = json::parse(client.call(
      R"({"cmd":"RESULT","id":)" + std::to_string(id) + R"(,"wait":true})"));
  ASSERT_TRUE(rr.boolean("ok", false));
  const json::Value* record = rr.find("result")->find("record");
  ASSERT_NE(record, nullptr);
  EXPECT_NE(record->find("local"), nullptr);

  // The same spec without record (a cache hit — record stays out of the
  // key): the reply omits the member, so recorder-off responses are
  // byte-compatible with the pre-recorder protocol.
  json::Value submit2 = json::Value::object();
  submit2.set("cmd", "SUBMIT");
  submit2.set("spec", specToJson(tinySpec(37)));
  const json::Value sr2 = json::parse(client.call(json::dump(submit2)));
  ASSERT_TRUE(sr2.boolean("ok", false));
  const std::uint64_t id2 = static_cast<std::uint64_t>(sr2.num("id", 0));
  const json::Value rr2 = json::parse(client.call(
      R"({"cmd":"RESULT","id":)" + std::to_string(id2) + R"(,"wait":true})"));
  ASSERT_TRUE(rr2.boolean("ok", false));
  EXPECT_TRUE(json::parse(client.call(R"({"cmd":"STATUS","id":)" +
                                      std::to_string(id2) + "}"))
                  .boolean("cached", false));
  EXPECT_EQ(rr2.find("result")->find("record"), nullptr);
  sched.drain();
}

TEST(ObsProtocolTest, DeltaVerbAcceptsAndEchoesATraceId) {
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(sharedTech(), sharedLut(), opts);
  InProcessClient client(sched);

  json::Value submit = json::Value::object();
  submit.set("cmd", "SUBMIT");
  submit.set("spec", specToJson(tinySpec(38)));
  const json::Value sr = json::parse(client.call(json::dump(submit)));
  ASSERT_TRUE(sr.boolean("ok", false));
  const std::uint64_t base_id = static_cast<std::uint64_t>(sr.num("id", 0));
  ASSERT_TRUE(json::parse(client.call(R"({"cmd":"RESULT","id":)" +
                                      std::to_string(base_id) +
                                      R"(,"wait":true})"))
                  .boolean("ok", false));

  const std::string hex = obs::traceIdHex(obs::traceIdFor(99, 99));
  const json::Value dr = json::parse(client.call(
      R"({"cmd":"DELTA","base":)" + std::to_string(base_id) +
      R"(,"edits":{"u_sweep":[0.1]},"trace_id":")" + hex +
      R"(","block":true})"));
  ASSERT_TRUE(dr.boolean("ok", false)) << json::dump(dr);
  EXPECT_EQ(dr.str("trace_id", ""), hex);  // echoed
  const std::uint64_t delta_id = static_cast<std::uint64_t>(dr.num("id", 0));
  EXPECT_EQ(sched.traceId(delta_id), obs::traceIdFor(99, 99));
  EXPECT_EQ(sched.jobSpec(delta_id).trace_id, obs::traceIdFor(99, 99));

  // A DELTA without trace_id inherits nothing to echo; the base job's
  // derived fallback id exists (scheduler-side) but stays off the wire.
  const json::Value dr2 = json::parse(client.call(
      R"({"cmd":"DELTA","base":)" + std::to_string(base_id) +
      R"(,"edits":{"u_sweep":[0.2]},"block":true})"));
  ASSERT_TRUE(dr2.boolean("ok", false));
  EXPECT_EQ(dr2.find("trace_id"), nullptr);
  EXPECT_NE(sched.traceId(base_id), 0u);  // every job has an effective id
  EXPECT_THROW(sched.traceId(424242), std::out_of_range);

  // Malformed trace_id on the wire rejects the request.
  EXPECT_FALSE(json::parse(client.call(
                   R"({"cmd":"DELTA","base":)" + std::to_string(base_id) +
                   R"(,"edits":{"u_sweep":[0.3]},"trace_id":"nope"})"))
                   .boolean("ok", true));
  sched.drain();
}

}  // namespace
}  // namespace skewopt::serve
