// Edge cases and failure-injection across modules: degenerate inputs,
// limit behavior, and error paths that the mainline suites do not reach.
#include <gtest/gtest.h>

#include "cts/cts.h"
#include "lp/lp.h"
#include "ml/ml.h"
#include "route/route.h"
#include "sta/report.h"

#include <sstream>
#include "testgen/testgen.h"

namespace skewopt {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

TEST(RouteEdge, EmptyPinSet) {
  const route::SteinerTree t = route::greedySteiner({5, 5}, {});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.wirelength(), 0.0);
  const route::SteinerTree st = route::singleTrunk({5, 5}, {});
  EXPECT_EQ(st.pin_node.size(), 0u);
  const route::SteinerTree er = route::ecoRoute({5, 5}, {});
  EXPECT_DOUBLE_EQ(er.wirelength(), 0.0);
}

TEST(RouteEdge, CoincidentPins) {
  // All pins on the driver: zero wirelength, everything still reachable.
  std::vector<geom::Point> pins(4, geom::Point{7, 7});
  const route::SteinerTree t = route::greedySteiner({7, 7}, pins);
  EXPECT_DOUBLE_EQ(t.wirelength(), 0.0);
  for (std::size_t i = 0; i < pins.size(); ++i)
    EXPECT_DOUBLE_EQ(t.pathLength(i), 0.0);
}

TEST(RouteEdge, PathLengthRejectsBadPin) {
  const route::SteinerTree t = route::greedySteiner({0, 0}, {{5, 5}});
  EXPECT_THROW(t.pathLength(3), std::out_of_range);
}

TEST(LpEdge, IterationLimitReported) {
  // A paper-shaped LP with an absurdly small budget of iterations.
  geom::Rng rng(3);
  lp::Model m;
  for (int j = 0; j < 30; ++j) m.addVar(0, 10, rng.uniform(-1, 1));
  for (int r = 0; r < 20; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < 30; ++j) terms.push_back({j, rng.uniform(-1, 1)});
    m.addRow(-lp::kInf, rng.uniform(1.0, 5.0), std::move(terms));
  }
  lp::SolverOptions o;
  o.max_iterations = 1;
  const lp::Solution s = lp::solve(m, o);
  EXPECT_EQ(s.status, lp::Status::IterLimit);
  EXPECT_EQ(s.x.size(), 30u);
  EXPECT_STREQ(lp::statusName(s.status), "iteration-limit");
}

TEST(LpEdge, StatusNamesComplete) {
  EXPECT_STREQ(lp::statusName(lp::Status::Optimal), "optimal");
  EXPECT_STREQ(lp::statusName(lp::Status::Infeasible), "infeasible");
  EXPECT_STREQ(lp::statusName(lp::Status::Unbounded), "unbounded");
}

TEST(LpEdge, EmptyModelOptimal) {
  lp::Model m;
  const lp::Solution s = lp::solve(m);
  EXPECT_EQ(s.status, lp::Status::Optimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(CtsEdge, SingleSink) {
  network::Design d("one", &sharedTech(), {0, 0});
  d.corners = {0, 1};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 100, 100}}};
  cts::CtsEngine engine(sharedTech());
  const cts::CtsResult r = engine.synthesize(d, {{50, 50}});
  ASSERT_EQ(r.sink_ids.size(), 1u);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
  const sta::Timer timer(sharedTech());
  const sta::CornerTiming t = timer.analyze(d.tree, d.routing, 0);
  EXPECT_GT(t.arrival[static_cast<std::size_t>(r.sink_ids[0])], 0.0);
}

TEST(CtsEdge, TwoSinksBalance) {
  // Asymmetric two-sink case: the balancer must close most of the gap.
  network::Design d("two", &sharedTech(), {0, 0});
  d.corners = {0};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 800, 800}}};
  cts::CtsEngine engine(sharedTech());
  const cts::CtsResult r = engine.synthesize(d, {{30, 30}, {700, 700}});
  EXPECT_LT(r.balanced_skew_ps, 60.0);
}

TEST(TechEdge, CompressionValidation) {
  EXPECT_THROW(tech::TechModel::make28nm(1.0), std::invalid_argument);
  EXPECT_THROW(tech::TechModel::make28nm(-0.1), std::invalid_argument);
  const tech::TechModel flat = tech::TechModel::make28nm(0.75);
  // Compression pulls every derate toward 1.
  for (std::size_t k = 1; k < flat.numCorners(); ++k) {
    const double base = sharedTech().gateDerate(k);
    const double comp = flat.gateDerate(k);
    EXPECT_LT(std::abs(comp - 1.0), std::abs(base - 1.0)) << k;
  }
}

TEST(StaEdge, VariationHelperEmptyPairs) {
  network::Design d("empty", &sharedTech(), {0, 0});
  d.corners = {0, 1};
  const int b = d.tree.addBuffer(0, {10, 10}, 2);
  d.tree.addSink(b, {20, 20});
  d.routing.rebuildAll(d.tree);
  const sta::Timer timer(sharedTech());
  EXPECT_DOUBLE_EQ(sta::sumNormalizedSkewVariation(d, timer), 0.0);
}

TEST(StaEdge, ReportOnTinyDesign) {
  network::Design d("tiny", &sharedTech(), {0, 0});
  d.corners = {0};
  const int b = d.tree.addBuffer(0, {10, 10}, 2);
  const int s1 = d.tree.addSink(b, {20, 20});
  const int s2 = d.tree.addSink(b, {30, 10});
  d.routing.rebuildAll(d.tree);
  d.pairs.push_back({s1, s2, 1.0});
  const sta::Timer timer(sharedTech());
  std::ostringstream os;
  EXPECT_NO_THROW(sta::writeTimingReport(os, d, timer));
  EXPECT_NE(os.str().find("corner c0"), std::string::npos);
}

TEST(GeomEdge, EmptyRegionClamp) {
  const geom::Region empty;
  const geom::Point p{3, 4};
  const geom::Point q = empty.clamp(p);
  EXPECT_DOUBLE_EQ(q.x, 3.0);
  EXPECT_DOUBLE_EQ(q.y, 4.0);
  EXPECT_FALSE(empty.contains(p));
  EXPECT_TRUE(empty.bbox().empty());
}

TEST(TestgenEdge, TinySinkCounts) {
  // Generators must survive very small FF counts (degenerate hierarchies).
  for (const std::size_t n : {4u, 7u, 13u}) {
    testgen::TestcaseOptions o;
    o.sinks = n;
    const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
    EXPECT_EQ(d.tree.sinks().size(), n);
    std::string err;
    EXPECT_TRUE(d.tree.validate(&err)) << n << ": " << err;
  }
}

TEST(MlEdge, SingleFeatureSingleSampleClasses) {
  // Tiny datasets must not crash any family.
  ml::Dataset d;
  d.x = ml::Matrix(4, 1);
  for (std::size_t i = 0; i < 4; ++i) d.x.at(i, 0) = static_cast<double>(i);
  d.y = {0.0, 1.0, 2.0, 3.0};
  ml::MlpOptions mo;
  mo.epochs = 10;
  ml::MlpRegressor mlp(mo);
  EXPECT_NO_THROW(mlp.fit(d));
  ml::SvrRbf svr;
  EXPECT_NO_THROW(svr.fit(d));
  EXPECT_TRUE(std::isfinite(mlp.predict(d.x.row(0))));
  EXPECT_TRUE(std::isfinite(svr.predict(d.x.row(0))));
}

}  // namespace
}  // namespace skewopt
