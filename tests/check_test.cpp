// The design-invariant checker subsystem: clean designs must pass every
// verifier silently, and each seeded corruption must be caught by its
// documented SKW code (docs/static_analysis.md is the catalog).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "check/check.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/spec_check.h"
#include "testgen/testgen.h"

namespace skewopt {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}
const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

network::Design smallDesign(std::uint64_t seed = 3) {
  testgen::TestcaseOptions o;
  o.sinks = 40;
  o.max_pairs = 40;
  o.seed = seed;
  return testgen::makeTestcase(sharedTech(), "CLS1v1", o);
}

/// Runs the full cheap pass (plus deep placement scan) on a design.
check::DiagnosticEngine runChecks(const network::Design& d,
                                  check::Level level = check::Level::kDeep) {
  check::DiagnosticEngine engine;
  check::CheckOptions opts;
  opts.level = level;
  check::checkDesign(d, opts, engine);
  return engine;
}

/// First live buffer that has at least one child.
int someDrivingBuffer(const network::ClockTree& tree) {
  for (const int b : tree.buffers())
    if (!tree.node(b).children.empty()) return b;
  ADD_FAILURE() << "testcase has no driving buffer";
  return -1;
}

// --- diagnostics engine ---

TEST(Diagnostics, LevelNamesParseAndRoundTrip) {
  check::Level lvl = check::Level::kOff;
  EXPECT_TRUE(check::parseLevel("cheap", &lvl));
  EXPECT_EQ(lvl, check::Level::kCheap);
  EXPECT_TRUE(check::parseLevel("deep", &lvl));
  EXPECT_EQ(lvl, check::Level::kDeep);
  EXPECT_TRUE(check::parseLevel("0", &lvl));
  EXPECT_EQ(lvl, check::Level::kOff);
  EXPECT_FALSE(check::parseLevel("paranoid", &lvl));
  EXPECT_STREQ(check::levelName(check::Level::kDeep), "deep");
  EXPECT_EQ(check::codeString(7), "SKW007");
}

TEST(Diagnostics, EnvOverridesConfiguredLevel) {
  ::setenv("SKEWOPT_CHECK_LEVEL", "deep", 1);
  EXPECT_EQ(check::effectiveLevel(check::Level::kOff), check::Level::kDeep);
  ::setenv("SKEWOPT_CHECK_LEVEL", "not-a-level", 1);
  EXPECT_EQ(check::effectiveLevel(check::Level::kCheap),
            check::Level::kCheap);
  ::unsetenv("SKEWOPT_CHECK_LEVEL");
  EXPECT_EQ(check::effectiveLevel(check::Level::kCheap),
            check::Level::kCheap);
}

TEST(Diagnostics, ReportCapsAndCountsAndEmits) {
  check::DiagnosticEngine engine(/*max_diagnostics=*/4);
  engine.setContext("unit");
  engine.report(142, check::Severity::kWarning, "placement", "dup \"pos\"");
  for (int i = 0; i < 6; ++i)
    engine.report(101, check::Severity::kError, "tree-structure", "boom");
  EXPECT_EQ(engine.errorCount(), 6u);
  EXPECT_EQ(engine.warningCount(), 1u);
  EXPECT_EQ(engine.diagnostics().size(), 4u);
  EXPECT_EQ(engine.dropped(), 3u);
  EXPECT_TRUE(engine.hasCode(101));
  EXPECT_FALSE(engine.hasCode(999));
  const std::string text = engine.text();
  EXPECT_NE(text.find("SKW101 error [tree-structure] unit: boom"),
            std::string::npos);
  EXPECT_NE(text.find("suppressed"), std::string::npos);
  const std::string json = engine.json();
  EXPECT_NE(json.find("\"errors\":6"), std::string::npos);
  EXPECT_NE(json.find("\\\"pos\\\""), std::string::npos) << json;
  engine.clear();
  EXPECT_TRUE(engine.empty());
}

// --- clean designs: zero diagnostics at the deepest level ---

class CleanTestcase : public ::testing::TestWithParam<const char*> {};

TEST_P(CleanTestcase, NoFindingsAtDeepLevel) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  o.max_pairs = 60;
  o.seed = 11;
  const network::Design d =
      testgen::makeTestcase(sharedTech(), GetParam(), o);
  check::DiagnosticEngine engine = runChecks(d);
  const sta::Timer timer(sharedTech());
  check::checkDesignTiming(d, timer, engine);
  EXPECT_TRUE(engine.empty()) << engine.text();
  // And the gate agrees end to end.
  EXPECT_NO_THROW(
      check::gateDesign(d, timer, check::Level::kDeep, "test:clean"));
}
INSTANTIATE_TEST_SUITE_P(Testcases, CleanTestcase,
                         ::testing::Values("CLS1v1", "CLS1v2", "CLS2v1"));

// --- seeded corruptions, each caught by its documented code ---

TEST(Corruption, CycleIsUnreachable) {
  network::Design d = smallDesign();
  // Re-hang a driving buffer below one of its own descendants with
  // consistent parent/child links: a pure cycle, invisible to local link
  // checks, caught only by the reachability walk.
  const int b = someDrivingBuffer(d.tree);
  const int c = d.tree.node(b).children.front();
  const int p = d.tree.node(b).parent;
  auto& pk = d.tree.corruptNodeForTest(p).children;
  pk.erase(std::find(pk.begin(), pk.end(), b));
  d.tree.corruptNodeForTest(b).parent = c;
  d.tree.corruptNodeForTest(c).children.push_back(b);
  check::DiagnosticEngine engine = runChecks(d);
  EXPECT_TRUE(engine.hasCode(105)) << engine.text();
}

TEST(Corruption, DanglingChildId) {
  network::Design d = smallDesign();
  d.tree.corruptNodeForTest(0).children.push_back(
      static_cast<int>(d.tree.numNodes()) + 5);
  EXPECT_TRUE(runChecks(d).hasCode(104));
}

TEST(Corruption, SinkWithChildren) {
  network::Design d = smallDesign();
  const int sink = d.tree.sinks().front();
  d.tree.addBuffer(sink, d.tree.node(sink).pos, 0);
  EXPECT_TRUE(runChecks(d).hasCode(107));
}

TEST(Corruption, BufferCellOutsideLibrary) {
  network::Design d = smallDesign();
  d.tree.corruptNodeForTest(d.tree.buffers().front()).cell = 999;
  EXPECT_TRUE(runChecks(d).hasCode(109));
}

TEST(Corruption, DeletedNodeStillWired) {
  network::Design d = smallDesign();
  d.tree.corruptNodeForTest(someDrivingBuffer(d.tree)).valid = false;
  EXPECT_TRUE(runChecks(d).hasCode(110));
}

TEST(Corruption, DriverWithoutNet) {
  network::Design d = smallDesign();
  d.routing.eraseNet(someDrivingBuffer(d.tree));
  EXPECT_TRUE(runChecks(d).hasCode(120));
}

TEST(Corruption, StaleNetOnChildlessNode) {
  network::Design d = smallDesign();
  const route::SteinerTree* root_net = d.routing.net(0);
  ASSERT_NE(root_net, nullptr);
  d.routing.restoreNet(d.tree.sinks().front(), *root_net);
  EXPECT_TRUE(runChecks(d).hasCode(121));
}

TEST(Corruption, ReparentWithoutReroute) {
  network::Design d = smallDesign();
  const int b = someDrivingBuffer(d.tree);
  d.tree.reassignDriver(b, 0);  // tree surgery, no ECO reroute
  EXPECT_TRUE(runChecks(d).hasCode(122));
}

TEST(Corruption, MovedDriverWithoutReroute) {
  network::Design d = smallDesign();
  const int b = someDrivingBuffer(d.tree);
  const geom::Point p = d.tree.node(b).pos;
  d.tree.moveNode(b, {p.x + 3.0, p.y});
  check::DiagnosticEngine engine = runChecks(d);
  EXPECT_TRUE(engine.hasCode(125)) << engine.text();  // its own net
  EXPECT_TRUE(engine.hasCode(123)) << engine.text();  // parent's pin
}

TEST(Corruption, BufferFarOutsideFloorplan) {
  network::Design d = smallDesign();
  const int b = d.tree.buffers().front();
  d.tree.moveNode(b, {1e7, 1e7});
  d.routing.rebuildAround(d.tree, b);  // keep routing consistent: isolate 141
  check::DiagnosticEngine engine = runChecks(d);
  EXPECT_TRUE(engine.hasCode(141)) << engine.text();
  EXPECT_FALSE(engine.hasCode(123));
}

TEST(Corruption, DuplicateBufferPositionIsDeepWarning) {
  network::Design d = smallDesign();
  const std::vector<int> bufs = d.tree.buffers();
  ASSERT_GE(bufs.size(), 2u);
  d.tree.moveNode(bufs[1], d.tree.node(bufs[0]).pos);
  d.routing.rebuildAround(d.tree, bufs[1]);
  EXPECT_TRUE(runChecks(d, check::Level::kDeep).hasCode(142));
  // Warning-only, and a cheap pass skips the quadratic scan entirely.
  EXPECT_FALSE(runChecks(d, check::Level::kDeep).hasErrors());
  EXPECT_FALSE(runChecks(d, check::Level::kCheap).hasCode(142));
}

TEST(Corruption, SiteAlignmentIsOptIn) {
  const network::Design d = smallDesign();
  // Generated trees are deliberately off-grid; the default options must
  // not flag that, the opt-in must.
  EXPECT_FALSE(runChecks(d).hasCode(143));
  check::DiagnosticEngine engine;
  check::CheckOptions opts;
  opts.require_site_alignment = true;
  check::checkPlacement(d, opts, engine);
  EXPECT_TRUE(engine.hasCode(143));
}

TEST(Corruption, PairAndCornerRecords) {
  network::Design d = smallDesign();
  d.pairs[0].launch = 0;  // the source is not a sink
  d.pairs[1].weight = std::numeric_limits<double>::quiet_NaN();
  d.corners.push_back(99);
  d.corners.push_back(d.corners.front());
  check::DiagnosticEngine engine = runChecks(d);
  EXPECT_TRUE(engine.hasCode(152));
  EXPECT_TRUE(engine.hasCode(153));
  EXPECT_TRUE(engine.hasCode(151));
  d.corners.clear();
  EXPECT_TRUE(runChecks(d).hasCode(150));
}

TEST(Corruption, TamperedTimingState) {
  const network::Design d = smallDesign();
  const sta::Timer timer(sharedTech());
  sta::CornerTiming t = timer.analyze(d.tree, d.routing, d.corners[0]);
  {
    check::DiagnosticEngine engine;
    check::checkCornerTiming(d.tree, t, engine);
    ASSERT_TRUE(engine.empty()) << engine.text();
  }
  const int sink = d.tree.sinks().front();
  const int parent = d.tree.node(sink).parent;
  sta::CornerTiming bad = t;
  bad.arrival[static_cast<std::size_t>(sink)] =
      bad.arrival[static_cast<std::size_t>(parent)] - 50.0;
  check::DiagnosticEngine mono;
  check::checkCornerTiming(d.tree, bad, mono);
  EXPECT_TRUE(mono.hasCode(162)) << mono.text();

  bad = t;
  bad.in_arrival[static_cast<std::size_t>(sink)] =
      bad.arrival[static_cast<std::size_t>(parent)] - 10.0;
  check::DiagnosticEngine wire;
  check::checkCornerTiming(d.tree, bad, wire);
  EXPECT_TRUE(wire.hasCode(161)) << wire.text();

  bad = t;
  bad.arrival[static_cast<std::size_t>(sink)] =
      std::numeric_limits<double>::quiet_NaN();
  check::DiagnosticEngine nan;
  check::checkCornerTiming(d.tree, bad, nan);
  EXPECT_TRUE(nan.hasCode(160));

  bad = t;
  bad.driver_load[0] = -1.0;
  check::DiagnosticEngine load;
  check::checkCornerTiming(d.tree, bad, load);
  EXPECT_TRUE(load.hasCode(163));
}

// --- LP model verifiers ---

TEST(LpChecks, WellFormedModelPasses) {
  lp::Model m;
  const int x = m.addVar(0.0, 10.0, 1.0);
  const int y = m.addVar(-lp::kInf, lp::kInf, 0.0);
  m.addRow(-lp::kInf, 5.0, {{x, 1.0}, {y, 2.0}});
  check::DiagnosticEngine engine;
  check::checkLpModel(m, engine);
  check::checkBudgetRow(m, m.numRows() - 1, engine);
  EXPECT_TRUE(engine.empty()) << engine.text();
}

TEST(LpChecks, CatchesBadCoefficientsAndBounds) {
  lp::Model m;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const int x = m.addVar(0.0, 1.0, nan);          // NaN objective
  m.addVar(nan, 1.0, 0.0);                        // NaN lower bound
  m.addVar(lp::kInf, lp::kInf, 0.0);              // +inf lower bound
  m.addRow(0.0, 1.0, {{x, nan}});                 // NaN row coefficient
  m.addRow(lp::kInf, lp::kInf, {{x, 1.0}});       // +inf row lower bound
  check::DiagnosticEngine engine;
  check::checkLpModel(m, engine);
  EXPECT_TRUE(engine.hasCode(201)) << engine.text();
  EXPECT_TRUE(engine.hasCode(203));
  EXPECT_TRUE(engine.hasCode(204));
}

TEST(LpChecks, BudgetRowIdentity) {
  lp::Model m;
  const int x = m.addVar(0.0, 1.0, 1.0);
  m.addRow(2.0, 2.0, {{x, -1.0}});  // equality row with a negative coef
  check::DiagnosticEngine engine;
  check::checkBudgetRow(m, 5, engine);  // not the final row
  EXPECT_TRUE(engine.hasCode(210));
  engine.clear();
  check::checkBudgetRow(m, m.numRows() - 1, engine);
  EXPECT_TRUE(engine.hasCode(211));
  EXPECT_TRUE(engine.hasCode(212));
}

TEST(LpChecks, RatioEnvelopeOfCharacterizedLutIsSane) {
  const network::Design d = smallDesign();
  check::DiagnosticEngine engine;
  check::checkRatioEnvelope(sharedLut(), d, engine);
  EXPECT_TRUE(engine.empty()) << engine.text();
}

// --- stage gate ---

TEST(Gate, ThrowsCheckFailureWithStageAndFindings) {
  network::Design d = smallDesign();
  d.tree.corruptNodeForTest(0).children.push_back(12345);
  const sta::Timer timer(sharedTech());
  try {
    check::gateDesign(d, timer, check::Level::kCheap, "test:gate");
    FAIL() << "gate did not throw";
  } catch (const check::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("test:gate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("SKW104"), std::string::npos);
    EXPECT_FALSE(e.diagnostics().empty());
  }
  // kOff gates nothing, even on a corrupt design.
  EXPECT_NO_THROW(
      check::gateDesign(d, timer, check::Level::kOff, "test:gate"));
}

// --- serve: spec records and scheduler integration ---

TEST(SpecChecks, SourceAndSchedulingFields) {
  serve::JobSpec spec;
  spec.source.testcase = "NOPE";
  spec.source.sinks = 0;
  spec.max_retries = -2;
  spec.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  check::DiagnosticEngine engine;
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.hasCode(303)) << engine.text();
  EXPECT_TRUE(engine.hasCode(305));

  serve::JobSpec file_spec;
  file_spec.source.kind = serve::DesignSource::Kind::kFile;
  engine.clear();
  serve::checkJobSpec(file_spec, engine);
  EXPECT_TRUE(engine.hasCode(304));

  serve::JobSpec inline_spec;
  inline_spec.source.kind = serve::DesignSource::Kind::kInline;
  engine.clear();
  serve::checkJobSpec(inline_spec, engine);
  EXPECT_TRUE(engine.hasCode(304));
}

TEST(SpecChecks, DeltaEditFieldsSkw306And307) {
  serve::JobSpec spec;  // valid testgen defaults
  check::DiagnosticEngine engine;

  // SKW306: negative id, non-finite position, unsorted / duplicate ids.
  spec.source.moved_sinks = {serve::MovedSink{-1, 0.0, 0.0}};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.hasCode(306)) << engine.text();

  engine.clear();
  spec.source.moved_sinks = {
      serve::MovedSink{3, std::numeric_limits<double>::quiet_NaN(), 0.0}};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.hasCode(306));

  engine.clear();
  spec.source.moved_sinks = {serve::MovedSink{5, 0.0, 0.0},
                             serve::MovedSink{3, 1.0, 1.0}};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.hasCode(306));

  engine.clear();
  spec.source.moved_sinks = {serve::MovedSink{3, 0.0, 0.0},
                             serve::MovedSink{3, 1.0, 1.0}};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.hasCode(306)) << "duplicate ids must be rejected";

  engine.clear();
  spec.source.moved_sinks = {serve::MovedSink{3, 0.0, 0.0},
                             serve::MovedSink{5, 1.0, 1.0}};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.empty()) << engine.text();

  // SKW307: derates must be finite and positive.
  for (const double bad :
       {0.0, -1.0, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    engine.clear();
    spec.options.global.corner_dmax_derate = {bad};
    serve::checkJobSpec(spec, engine);
    EXPECT_TRUE(engine.hasCode(307)) << bad;
  }
  engine.clear();
  spec.options.global.corner_dmax_derate = {1.02, 0.97};
  serve::checkJobSpec(spec, engine);
  EXPECT_TRUE(engine.empty()) << engine.text();
}

TEST(SpecChecks, KeyAndHashCrossCheck) {
  serve::JobSpec spec;
  const std::string key = serve::canonicalKey(spec);
  const std::uint64_t hash = serve::contentHash(spec);
  check::DiagnosticEngine clean;
  serve::checkJobRecord(spec, key, hash, clean);
  EXPECT_TRUE(clean.empty()) << clean.text();

  check::DiagnosticEngine tampered;
  serve::checkJobRecord(spec, key + "|junk", hash, tampered);
  EXPECT_TRUE(tampered.hasCode(300));
  tampered.clear();
  serve::checkJobRecord(spec, key, hash ^ 1u, tampered);
  EXPECT_TRUE(tampered.hasCode(301));
  tampered.clear();
  serve::checkJobRecord(spec, "garbage-key", hash, tampered);
  EXPECT_TRUE(tampered.hasCode(302));
}

TEST(SpecChecks, SchedulerFailsInvalidSpecWithoutRunning) {
  serve::SchedulerOptions opts;
  opts.workers = 1;
  int runs = 0;
  serve::Scheduler sched(sharedTech(), sharedLut(), opts,
                         [&runs](const serve::JobSpec&) {
                           ++runs;
                           return core::FlowResult{};
                         });
  serve::JobSpec bad;
  bad.source.testcase = "NOPE";
  const auto job = sched.submit(bad);
  ASSERT_NE(job, nullptr);
  const serve::JobStatus st = sched.waitTerminal(job->id);
  EXPECT_EQ(st.state, serve::JobState::kFailed);
  EXPECT_NE(st.error.find("SKW303"), std::string::npos) << st.error;
  EXPECT_EQ(runs, 0);  // record validation fails before the runner
  sched.drain();
}

TEST(SpecChecks, ProtocolCheckField) {
  serve::JobSpec spec;
  spec.options.check_level = check::Level::kDeep;
  const serve::json::Value v = serve::specToJson(spec);
  const serve::JobSpec back = serve::specFromJson(v);
  EXPECT_EQ(back.options.check_level, check::Level::kDeep);

  // The default level stays implicit on the wire.
  const serve::json::Value def = serve::specToJson(serve::JobSpec{});
  EXPECT_EQ(def.find("check"), nullptr);
  EXPECT_EQ(serve::specFromJson(def).options.check_level,
            check::Level::kCheap);

  serve::json::Value bad = serve::specToJson(serve::JobSpec{});
  bad.set("check", serve::json::Value("paranoid"));
  EXPECT_THROW(serve::specFromJson(bad), std::runtime_error);
}

}  // namespace
}  // namespace skewopt
