#include "tech/tech.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace skewopt::tech {
namespace {

class TechTest : public ::testing::Test {
 protected:
  TechModel t = TechModel::make28nm();
};

TEST_F(TechTest, Table3CornerSet) {
  ASSERT_EQ(t.numCorners(), 4u);
  EXPECT_EQ(t.corner(0).name, "c0");
  EXPECT_EQ(t.corner(0).process, Process::SS);
  EXPECT_DOUBLE_EQ(t.corner(0).voltage, 0.90);
  EXPECT_DOUBLE_EQ(t.corner(0).temp_c, -25.0);
  EXPECT_EQ(t.corner(0).beol, Beol::CMAX);
  EXPECT_DOUBLE_EQ(t.corner(1).voltage, 0.75);
  EXPECT_EQ(t.corner(2).process, Process::FF);
  EXPECT_DOUBLE_EQ(t.corner(2).voltage, 1.10);
  EXPECT_EQ(t.corner(2).beol, Beol::CMIN);
  EXPECT_DOUBLE_EQ(t.corner(3).voltage, 1.32);
  EXPECT_DOUBLE_EQ(t.corner(3).temp_c, 125.0);
}

TEST_F(TechTest, GateDerateOrdering) {
  // c0 is the reference; the low-voltage SS corner is slowest, the
  // overdriven FF corner fastest.
  EXPECT_DOUBLE_EQ(t.gateDerate(0), 1.0);
  EXPECT_GT(t.gateDerate(1), 1.3);  // c1 markedly slower than c0
  EXPECT_LT(t.gateDerate(2), 0.7);  // c2 markedly faster
  EXPECT_LT(t.gateDerate(3), t.gateDerate(2));  // c3 fastest of all
}

TEST_F(TechTest, WireCornersMoveDifferentlyThanGates) {
  // BEOL Cmin shrinks cap; high temperature raises resistance. The wire RC
  // product must NOT track the gate derate — that asymmetry creates the
  // cross-corner skew variation the paper optimizes.
  const double rc0 = t.wire(0).res_kohm_per_um * t.wire(0).cap_ff_per_um;
  const double rc2 = t.wire(2).res_kohm_per_um * t.wire(2).cap_ff_per_um;
  const double wire_ratio = rc2 / rc0;
  const double gate_ratio = t.gateDerate(2) / t.gateDerate(0);
  EXPECT_GT(wire_ratio, gate_ratio * 1.5);
  // Same-temperature same-BEOL corners share wire parasitics.
  EXPECT_DOUBLE_EQ(t.wire(0).res_kohm_per_um, t.wire(1).res_kohm_per_um);
  EXPECT_DOUBLE_EQ(t.wire(0).cap_ff_per_um, t.wire(1).cap_ff_per_um);
}

TEST_F(TechTest, LibraryHasFiveSizesWithMonotoneDrive) {
  ASSERT_EQ(t.numCells(), 5u);
  for (std::size_t i = 1; i < t.numCells(); ++i) {
    EXPECT_GT(t.cell(i).drive, t.cell(i - 1).drive);
    EXPECT_GT(t.cell(i).area_um2, t.cell(i - 1).area_um2);
    EXPECT_GT(t.cell(i).max_cap_ff, t.cell(i - 1).max_cap_ff);
    EXPECT_GT(t.cell(i).pin_cap_ff[0], t.cell(i - 1).pin_cap_ff[0]);
  }
}

TEST_F(TechTest, StrongerCellIsFasterUnderLoad) {
  for (std::size_t k = 0; k < t.numCorners(); ++k) {
    const double weak = t.cell(0).delay[k].lookup(30.0, 40.0);
    const double strong = t.cell(4).delay[k].lookup(30.0, 40.0);
    EXPECT_LT(strong, weak) << "corner " << k;
  }
}

TEST_F(TechTest, DelayMonotoneInSlewAndLoad) {
  const Cell& c = t.cell(2);
  for (std::size_t k = 0; k < t.numCorners(); ++k) {
    double prev = -1.0;
    for (double load = 1.0; load <= 200.0; load *= 2.0) {
      const double d = c.delay[k].lookup(25.0, load);
      EXPECT_GT(d, prev);
      prev = d;
    }
    EXPECT_LT(c.delay[k].lookup(10.0, 30.0), c.delay[k].lookup(100.0, 30.0));
  }
}

TEST_F(TechTest, LeakageWorstAtFastHotCorner) {
  const Cell& c = t.cell(3);
  EXPECT_GT(c.leakage_nw[3], c.leakage_nw[0] * 5.0);
  EXPECT_GT(c.leakage_nw[2], c.leakage_nw[1]);
}

TEST_F(TechTest, InternalEnergyScalesWithVoltageSquared) {
  const Cell& c = t.cell(1);
  const double e0 = c.internal_energy_fj[0];  // 0.90V
  const double e3 = c.internal_energy_fj[3];  // 1.32V
  EXPECT_NEAR(e3 / e0, (1.32 * 1.32) / (0.90 * 0.90), 1e-9);
}

TEST(DelayTable, ExactAtGridPoints) {
  DelayTable dt({10, 20}, {1, 2, 4}, {5, 6, 8, 7, 9, 12});
  EXPECT_DOUBLE_EQ(dt.lookup(10, 1), 5.0);
  EXPECT_DOUBLE_EQ(dt.lookup(10, 4), 8.0);
  EXPECT_DOUBLE_EQ(dt.lookup(20, 2), 9.0);
}

TEST(DelayTable, BilinearBetweenGridPoints) {
  DelayTable dt({10, 20}, {1, 2}, {5, 6, 7, 9});
  // Midpoint of all four corners: mean.
  EXPECT_DOUBLE_EQ(dt.lookup(15, 1.5), (5 + 6 + 7 + 9) / 4.0);
  // Pure slew interpolation at load 1.
  EXPECT_DOUBLE_EQ(dt.lookup(15, 1), 6.0);
}

TEST(DelayTable, LinearExtrapolationOutsideGrid) {
  DelayTable dt({10, 20}, {1, 2}, {5, 6, 7, 9});
  // Beyond the load axis, the last interval's slope continues.
  EXPECT_DOUBLE_EQ(dt.lookup(10, 3), 7.0);   // 5 + (6-5)*2
  EXPECT_DOUBLE_EQ(dt.lookup(10, 0), 4.0);   // 5 - (6-5)
  EXPECT_DOUBLE_EQ(dt.lookup(30, 1), 9.0);   // 5 + (7-5)*2
}

TEST(DelayTable, RejectsMalformedAxes) {
  EXPECT_THROW(DelayTable({1}, {1, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(DelayTable({1, 2}, {1, 2}, {1, 2, 3}),
               std::invalid_argument);
}

TEST_F(TechTest, SinkCapPositiveAtEveryCorner) {
  for (std::size_t k = 0; k < t.numCorners(); ++k) {
    EXPECT_GT(t.sinkCapFf(k), 0.5);
    EXPECT_LT(t.sinkCapFf(k), 5.0);
  }
}

TEST_F(TechTest, PlacementGrids) {
  EXPECT_GT(t.siteWidthUm(), 0.0);
  EXPECT_GT(t.rowHeightUm(), t.siteWidthUm());
}

// Parameterized: every (cell, corner) table is monotone in load at several
// slews — the property NLDM-based timers rely on.
class TableMonotoneProp
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
TEST_P(TableMonotoneProp, MonotoneInLoad) {
  const TechModel t = TechModel::make28nm();
  const auto [ci, k] = GetParam();
  const Cell& c = t.cell(static_cast<std::size_t>(ci));
  for (double slew : {5.0, 40.0, 300.0}) {
    double prev = -1e9;
    for (double load = 0.5; load < 300.0; load *= 1.7) {
      const double d =
          c.delay[static_cast<std::size_t>(k)].lookup(slew, load);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}
INSTANTIATE_TEST_SUITE_P(AllCellsCorners, TableMonotoneProp,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 4)));

// ---------------------------------------------------------------------------
// Batch / hinted lookup differentials. EXPECT_EQ on doubles is exact
// equality on purpose: the batch kernels promise bit-identity.
// ---------------------------------------------------------------------------

/// Evaluation points covering the interior, every grid line, and both
/// extrapolation sides of the library tables, in a deliberately
/// non-monotone order so hint validation misses as well as hits.
std::vector<std::pair<double, double>> probePoints() {
  std::vector<std::pair<double, double>> pts;
  for (double slew : {0.5, 5.0, 12.0, 40.0, 120.0, 300.0, 900.0})
    for (double load : {0.1, 1.0, 3.5, 20.0, 75.0, 200.0, 500.0})
      pts.push_back({slew, load});
  for (std::size_t i = 0; i + 1 < pts.size(); i += 2)
    std::swap(pts[i], pts[i + 1]);
  return pts;
}

TEST_F(TechTest, HintedLookupBitIdenticalToUnhinted) {
  LutHint hint;  // one hint chained across all cells and points
  for (std::size_t ci = 0; ci < t.numCells(); ++ci) {
    const Cell& c = t.cell(ci);
    for (std::size_t k = 0; k < t.numCorners(); ++k) {
      for (const auto& [slew, load] : probePoints()) {
        EXPECT_EQ(c.delay[k].lookup(slew, load, &hint),
                  c.delay[k].lookup(slew, load));
        EXPECT_EQ(c.out_slew[k].lookup(slew, load, &hint),
                  c.out_slew[k].lookup(slew, load));
      }
    }
  }
}

TEST_F(TechTest, BatchLookupBitIdenticalToScalar) {
  const auto pts = probePoints();
  std::vector<double> slews, loads;
  for (const auto& [s, l] : pts) {
    slews.push_back(s);
    loads.push_back(l);
  }
  std::vector<double> out(pts.size());
  for (std::size_t ci = 0; ci < t.numCells(); ++ci) {
    for (std::size_t k = 0; k < t.numCorners(); ++k) {
      const DelayTable& dt = t.cell(ci).delay[k];
      dt.lookupBatch(slews, loads, out);
      for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(out[i], dt.lookup(slews[i], loads[i])) << "i=" << i;
    }
  }
}

TEST_F(TechTest, CornerLutLookupEachBitIdenticalToPerCornerTables) {
  std::vector<std::size_t> ids = {0, 1, 2, 3};
  LutHint hint;
  double slew_l[4], load_l[4], out[4];
  for (std::size_t ci = 0; ci < t.numCells(); ++ci) {
    const Cell& c = t.cell(ci);
    const auto pts = probePoints();
    for (std::size_t pi = 0; pi + 4 <= pts.size(); pi += 4) {
      for (std::size_t k = 0; k < 4; ++k) {
        slew_l[k] = pts[pi + k].first;
        load_l[k] = pts[pi + k].second;
      }
      c.delay_packed.lookupEach(ids, slew_l, load_l, out, &hint);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(out[k], c.delay[k].lookup(slew_l[k], load_l[k]));
    }
  }
}

TEST_F(TechTest, CornerLutLookupAllBitIdenticalToPerCornerTables) {
  double out[4];
  for (std::size_t ci = 0; ci < t.numCells(); ++ci) {
    const Cell& c = t.cell(ci);
    ASSERT_EQ(c.delay_packed.numCorners(), 4u);
    for (const auto& [slew, load] : probePoints()) {
      c.delay_packed.lookupAll(slew, load, out);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(out[k], c.delay[k].lookup(slew, load));
      c.out_slew_packed.lookupAll(slew, load, out);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_EQ(out[k], c.out_slew[k].lookup(slew, load));
    }
  }
}

TEST(CornerLut, RejectsMismatchedAxes) {
  const DelayTable a({10, 20}, {1, 2}, {5, 6, 7, 9});
  const DelayTable b({10, 21}, {1, 2}, {5, 6, 7, 9});
  const DelayTable c({10, 20}, {1, 3}, {5, 6, 7, 9});
  EXPECT_NO_THROW(CornerLut({a, a}));
  EXPECT_THROW(CornerLut({a, b}), std::invalid_argument);
  EXPECT_THROW(CornerLut({a, c}), std::invalid_argument);
  EXPECT_TRUE(CornerLut(std::vector<DelayTable>{}).empty());
}

TEST(CornerLut, PacksRawValuesExactlyAtGridCorners) {
  // Re-interpolating at a grid point is not bit-exact at the last row/col
  // (a + (b-a)*1.0 need not equal b); the packed view must copy raw values.
  const DelayTable a({10, 20}, {1, 2}, {0.1, 0.2, 0.30000000000000004, 0.7});
  const CornerLut packed({a, a});
  double out[2];
  for (double slew : {10.0, 20.0})
    for (double load : {1.0, 2.0}) {
      packed.lookupAll(slew, load, out);
      EXPECT_EQ(out[0], a.lookup(slew, load));
      EXPECT_EQ(out[1], a.lookup(slew, load));
    }
}

}  // namespace
}  // namespace skewopt::tech
