// Malformed-input corpus: hostile, truncated, and oversized request lines
// driven through the serve protocol (serve::handleLine) and the cluster
// protocol dispatch (cluster::handleClusterLine). Every reply must be a
// clean one-line JSON error — parseable, ok:false, no crash. The same
// binary runs in the ASan/UBSan tier-1 variants, where a stack overflow
// from hostile nesting or an out-of-bounds parse would be fatal.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/frontend.h"
#include "cluster/protocol.h"
#include "serve/json.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace skewopt::serve {
namespace {

namespace json = serve::json;

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

/// Dispatch-hermetic scheduler: nothing in the corpus may reach the
/// runner (every line must fail at parse or validation), and if one ever
/// does, the stub keeps the test fast instead of running a real flow.
Scheduler& sharedScheduler() {
  static SchedulerOptions opts = [] {
    SchedulerOptions o;
    o.workers = 1;
    o.queue_capacity = 8;
    o.cache_capacity = 8;
    o.warm_capacity = 4;
    return o;
  }();
  static Scheduler sched(sharedTech(), sharedLut(), opts,
                         [](const JobSpec&) { return core::FlowResult{}; });
  return sched;
}

std::vector<std::string> corpusLines(const std::string& name) {
  const std::string path = std::string(SKEWOPT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  EXPECT_GT(lines.size(), 10u) << "suspiciously small corpus " << path;
  return lines;
}

/// Programmatic hostiles that don't fit a line-oriented text file:
/// oversized payloads, deep nesting, embedded NULs.
std::vector<std::string> generatedHostiles() {
  std::vector<std::string> lines;
  lines.push_back(std::string(200000, '['));                 // deep array
  lines.push_back(std::string(200000, '{'));                 // deep object
  {
    std::string deep;
    for (int i = 0; i < 50000; ++i) deep += "{\"a\":";
    deep += "1";
    for (int i = 0; i < 50000; ++i) deep += "}";
    lines.push_back(deep);                                   // deep but closed
  }
  lines.push_back("{\"cmd\":\"" + std::string(4 << 20, 'a') + "\"}");
  lines.push_back("{\"cmd\":\"STATUS\",\"id\":" +
                  std::string(100000, '1') + "}");
  {
    std::string nul = "{\"cmd\":\"STATUS\"";
    nul += '\0';
    nul += ",\"id\":0}";
    lines.push_back(nul);
  }
  lines.push_back("\"" + std::string(1 << 20, '\\') + "\"");  // escape storm
  // Oversized payload truncated mid-string (no closing quote or braces).
  lines.push_back("{\"cmd\":\"SUBMIT\",\"spec\":{\"source\":{\"kind\":"
                  "\"inline\",\"text\":\"" +
                  std::string(2 << 20, 'x'));
  return lines;
}

/// The reply must parse as strict JSON, be an object, and carry ok:false.
void expectCleanError(const std::string& reply, const std::string& input) {
  const std::string label =
      input.size() > 80 ? input.substr(0, 80) + "..." : input;
  ASSERT_FALSE(reply.empty()) << "empty reply for: " << label;
  json::Value v;
  ASSERT_NO_THROW(v = json::parse(reply)) << "unparseable reply '" << reply
                                          << "' for: " << label;
  ASSERT_TRUE(v.isObject()) << "non-object reply for: " << label;
  EXPECT_FALSE(v.boolean("ok", true)) << "hostile input accepted: " << label
                                      << " -> " << reply;
  EXPECT_FALSE(v.str("error", "").empty()) << "no error text for: " << label;
}

TEST(MalformedCorpus, ServeProtocolRepliesCleanErrors) {
  Scheduler& sched = sharedScheduler();
  for (const std::string& line : corpusLines("malformed_requests.txt"))
    expectCleanError(handleLine(sched, line), line);
}

TEST(MalformedCorpus, ServeProtocolSurvivesGeneratedHostiles) {
  Scheduler& sched = sharedScheduler();
  for (const std::string& line : generatedHostiles())
    expectCleanError(handleLine(sched, line), line);
}

TEST(MalformedCorpus, ClusterProtocolRepliesCleanErrors) {
  cluster::ClusterOptions copts;
  copts.shards = 2;
  copts.shard.workers = 1;
  copts.shard.queue_capacity = 8;
  copts.shard.cache_capacity = 8;
  copts.shard.warm_capacity = 4;
  cluster::ClusterFrontend fe(
      sharedTech(), sharedLut(), copts,
      [](const JobSpec&) { return core::FlowResult{}; });

  std::vector<std::string> inputs = corpusLines("malformed_requests.txt");
  const std::vector<std::string> extra =
      corpusLines("malformed_cluster_requests.txt");
  inputs.insert(inputs.end(), extra.begin(), extra.end());
  const std::vector<std::string> gen = generatedHostiles();
  inputs.insert(inputs.end(), gen.begin(), gen.end());

  for (const std::string& line : inputs) {
    std::vector<std::string> replies;
    const TcpServer::LineSink sink = [&](const std::string& s) {
      replies.push_back(s);
      return true;
    };
    EXPECT_TRUE(cluster::handleClusterLine(fe, line, sink))
        << "connection dropped on: " << line.substr(0, 80);
    ASSERT_FALSE(replies.empty()) << "no reply for: " << line.substr(0, 80);
    // Streaming verbs may emit several lines; all must parse, and the
    // first must be the error verdict.
    for (const std::string& r : replies)
      ASSERT_NO_THROW(json::parse(r)) << "unparseable reply " << r;
    expectCleanError(replies.front(), line);
  }
  fe.shutdown();
}

// ---------------------------------------------------------------------------
// The parser-level guarantee behind the corpus: bounded recursion.

TEST(JsonDepthCap, DeepNestingThrowsInsteadOfOverflowing) {
  const std::string deep(100000, '[');
  EXPECT_THROW(json::parse(deep), std::runtime_error);

  std::string closed;
  for (int i = 0; i < 500; ++i) closed += "[";
  for (int i = 0; i < 500; ++i) closed += "]";
  EXPECT_THROW(json::parse(closed), std::runtime_error)
      << "even well-formed input beyond the cap must be rejected";
}

TEST(JsonDepthCap, ReasonableNestingStillParses) {
  std::string ok = "1";
  for (int i = 0; i < 100; ++i) ok = "[" + ok + "]";
  json::Value v;
  ASSERT_NO_THROW(v = json::parse(ok));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.size(), 1u);
    v = v.at(0);
  }
  EXPECT_EQ(v.asDouble(), 1.0);
}

}  // namespace
}  // namespace skewopt::serve
