#include "core/global_opt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "testgen/testgen.h"

namespace skewopt::core {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

network::Design makeDesign(std::size_t sinks = 80, std::uint64_t seed = 1,
                           std::size_t max_pairs = 90) {
  testgen::TestcaseOptions o;
  o.sinks = sinks;
  o.seed = seed;
  // The evaluation universe is the top-critical pair set (paper footnote
  // 9); the LP covers the same set, so cap generation accordingly.
  o.max_pairs = max_pairs;
  return testgen::makeCls1(sharedTech(), "v1", o);
}

TEST(ArcRoutedLength, AtLeastDirect) {
  const network::Design d = makeDesign(60);
  for (const network::Arc& a : d.tree.extractArcs())
    EXPECT_GE(arcRoutedLength(d, a) + 1e-6, a.direct_len_um);
}

class GlobalOptTest : public ::testing::Test {
 protected:
  sta::Timer timer_{sharedTech()};
};

TEST_F(GlobalOptTest, LpFeasibleAndBelowOriginal) {
  network::Design d = makeDesign();
  const Objective objective(d, timer_);
  GlobalOptions o;
  GlobalOptimizer opt(sharedTech(), sharedLut(), o);
  const GlobalResult r = opt.run(d, objective);
  // Delta = 0 is always feasible, so the min-sum-V LP must be solvable and
  // its optimum no larger than the original sum over the selected pairs.
  EXPECT_GT(r.lp_rows, 0u);
  EXPECT_LE(r.lp_min_sum_ps, r.lp_orig_sum_ps + 1e-6);
  EXPECT_GE(r.lp_min_sum_ps, -1e-6);
}

TEST_F(GlobalOptTest, NeverDegradesObjective) {
  network::Design d = makeDesign();
  const Objective objective(d, timer_);
  const double before = objective.evaluate(d, timer_).sum_variation_ps;
  GlobalOptions o;
  GlobalOptimizer opt(sharedTech(), sharedLut(), o);
  const GlobalResult r = opt.run(d, objective);
  const double after = objective.evaluate(d, timer_).sum_variation_ps;
  EXPECT_LE(after, before + 1e-6);
  EXPECT_NEAR(r.sum_after_ps, after, 1e-6);
  EXPECT_NEAR(r.sum_before_ps, before, 1e-6);
}

TEST_F(GlobalOptTest, ReducesVariationAcrossSeeds) {
  // Individual instances can reject every ECO candidate (realization
  // noise), so assert statistically over seeds: most improve, and the
  // average reduction is substantial.
  std::size_t improved = 0;
  double total_before = 0.0, total_after = 0.0;
  for (const std::uint64_t seed : {1, 2, 3}) {
    network::Design d = makeDesign(100, seed);
    const Objective objective(d, timer_);
    GlobalOptimizer opt(sharedTech(), sharedLut());
    const GlobalResult r = opt.run(d, objective);
    if (r.improved) {
      ++improved;
      EXPECT_GT(r.arcs_changed, 0u);
    }
    total_before += r.sum_before_ps;
    total_after += r.sum_after_ps;
  }
  EXPECT_GE(improved, 2u);
  EXPECT_LT(total_after, 0.85 * total_before);
}

TEST_F(GlobalOptTest, LocalSkewPreserved) {
  network::Design d = makeDesign(100, 3);
  const Objective objective(d, timer_);
  const VariationReport before = objective.evaluate(d, timer_);
  GlobalOptions o;
  GlobalOptimizer opt(sharedTech(), sharedLut(), o);
  opt.run(d, objective);
  const VariationReport after = objective.evaluate(d, timer_);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    EXPECT_LE(after.local_skew_ps[ki],
              before.local_skew_ps[ki] * o.local_skew_tolerance +
                  o.local_skew_allowance_ps + 1e-9)
        << "corner index " << ki;
}

TEST_F(GlobalOptTest, TreeStaysValidAndDrivable) {
  network::Design d = makeDesign(100, 4);
  const Objective objective(d, timer_);
  GlobalOptimizer opt(sharedTech(), sharedLut());
  opt.run(d, objective);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
  // No max-cap violations introduced (paper footnote 8).
  for (const std::size_t k : d.corners)
    EXPECT_LE(timer_.worstLoadRatio(d.tree, d.routing, k), 1.10);
}

TEST_F(GlobalOptTest, CandidateSweepRecorded) {
  network::Design d = makeDesign(80, 5);
  const Objective objective(d, timer_);
  GlobalOptions o;
  o.u_sweep = {0.1, 0.5};
  GlobalOptimizer opt(sharedTech(), sharedLut(), o);
  const GlobalResult r = opt.run(d, objective);
  EXPECT_LE(r.candidates.size(), 2u);
  EXPECT_GE(r.candidates.size(), 1u);
  for (const auto& [u, realized] : r.candidates) {
    EXPECT_GE(u, r.lp_min_sum_ps - 1e-6);
    EXPECT_LE(u, r.lp_orig_sum_ps + 1e-6);
  }
}

TEST_F(GlobalOptTest, SerialAndParallelSweepBitIdentical) {
  // The parallel realization pass must pick the same candidate and produce
  // the same design as the serial loop — bitwise, not approximately.
  network::Design serial_d = makeDesign(100, 2);
  network::Design parallel_d = makeDesign(100, 2);
  const Objective objective(serial_d, timer_);

  GlobalOptions so;
  so.parallel_realize = false;
  const GlobalResult sr =
      GlobalOptimizer(sharedTech(), sharedLut(), so).run(serial_d, objective);
  GlobalOptions po;
  po.parallel_realize = true;
  const GlobalResult pr = GlobalOptimizer(sharedTech(), sharedLut(), po)
                              .run(parallel_d, objective);

  EXPECT_EQ(sr.improved, pr.improved);
  EXPECT_EQ(sr.chosen_u_ps, pr.chosen_u_ps);
  EXPECT_EQ(sr.arcs_changed, pr.arcs_changed);
  EXPECT_EQ(sr.sum_after_ps, pr.sum_after_ps);
  ASSERT_EQ(sr.candidates.size(), pr.candidates.size());
  for (std::size_t i = 0; i < sr.candidates.size(); ++i) {
    EXPECT_EQ(sr.candidates[i].first, pr.candidates[i].first) << i;
    EXPECT_EQ(sr.candidates[i].second, pr.candidates[i].second) << i;
  }
  // The realized designs time identically at every node and corner.
  const auto st = timer_.analyzeDesign(serial_d);
  const auto pt = timer_.analyzeDesign(parallel_d);
  ASSERT_EQ(st.size(), pt.size());
  for (std::size_t ki = 0; ki < st.size(); ++ki) {
    EXPECT_EQ(st[ki].arrival, pt[ki].arrival) << "corner " << ki;
    EXPECT_EQ(st[ki].slew, pt[ki].slew) << "corner " << ki;
  }
}

TEST_F(GlobalOptTest, WarmStartMatchesColdOnSeededGlobalLps) {
  // Cold and warm solves of the real Eqs. (4)-(11) LPs must agree on
  // status and objective at every sweep point, across seeds.
  for (const std::uint64_t seed : {1, 4}) {
    const network::Design d = makeDesign(80, seed);
    const Objective objective(d, timer_);
    const GlobalOptimizer opt(sharedTech(), sharedLut());
    GlobalLpProbe probe = opt.extractGlobalLp(d, objective);
    ASSERT_GT(probe.sweep.numRows(), 0) << "seed " << seed;

    const lp::Solution vsol = lp::solve(probe.min_v);
    ASSERT_EQ(vsol.status, lp::Status::Optimal) << "seed " << seed;
    lp::Basis chain = vsol.basis;
    chain.status.push_back(lp::BasisStatus::Basic);
    for (const double t : {0.05, 0.2, 0.4}) {
      const double u =
          vsol.objective + t * (probe.orig_sum_ps - vsol.objective);
      probe.sweep.setRowBounds(probe.budget_row, -lp::kInf, u);
      const lp::Solution cold = lp::solve(probe.sweep);
      const lp::Solution warm = lp::solve(probe.sweep, {}, &chain);
      ASSERT_EQ(warm.status, cold.status) << "seed " << seed << " t " << t;
      if (cold.status != lp::Status::Optimal) continue;
      EXPECT_TRUE(warm.warm_started) << "seed " << seed << " t " << t;
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * std::max(1.0, std::abs(cold.objective)))
          << "seed " << seed << " t " << t;
      chain = warm.basis;
    }
  }
}

TEST_F(GlobalOptTest, LpSolveStatsRecorded) {
  network::Design d = makeDesign(80, 5);
  const Objective objective(d, timer_);
  GlobalOptions o;
  o.u_sweep = {0.1, 0.5};
  GlobalOptimizer opt(sharedTech(), sharedLut(), o);
  const GlobalResult r = opt.run(d, objective);
  // Pass 1 plus one entry per attempted sweep point.
  ASSERT_GE(r.lp_solves.size(), 1u);
  EXPECT_EQ(r.lp_solves[0].u_ps, 0.0);
  EXPECT_FALSE(r.lp_solves[0].warm_started);
  EXPECT_TRUE(r.lp_solves[0].optimal);
  EXPECT_GE(r.lp_solves[0].refactorizations, 1);
  for (std::size_t i = 1; i < r.lp_solves.size(); ++i) {
    EXPECT_GT(r.lp_solves[i].u_ps, 0.0) << i;
    EXPECT_GE(r.lp_solves[i].solve_ms, 0.0) << i;
  }
  // Every sweep solve was offered a warm basis and is accounted for.
  EXPECT_EQ(static_cast<std::size_t>(r.lp_warm_hits + r.lp_warm_misses),
            r.lp_solves.size() - 1);
}

TEST_F(GlobalOptTest, EmptyPairsIsNoOp) {
  network::Design d = makeDesign(40, 6);
  d.pairs.clear();
  const network::Design snapshot = d;
  // Alphas need pairs; construct objective from a paired twin instead.
  network::Design paired = makeDesign(40, 6);
  const Objective objective(paired, timer_);
  GlobalOptimizer opt(sharedTech(), sharedLut());
  const GlobalResult r = opt.run(d, objective);
  EXPECT_FALSE(r.improved);
  EXPECT_EQ(d.tree.numNodes(), snapshot.tree.numNodes());
}

}  // namespace
}  // namespace skewopt::core
