#include "core/local_opt.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/moves.h"
#include "sta/incremental.h"
#include "testgen/testgen.h"

namespace skewopt::core {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

network::Design makeDesign(std::size_t sinks = 70, std::uint64_t seed = 1) {
  testgen::TestcaseOptions o;
  o.sinks = sinks;
  o.seed = seed;
  return testgen::makeCls1(sharedTech(), "v1", o);
}

class LocalOptTest : public ::testing::Test {
 protected:
  sta::Timer timer_{sharedTech()};
};

TEST_F(LocalOptTest, NeverDegradesObjective) {
  network::Design d = makeDesign();
  const Objective objective(d, timer_);
  LocalOptions o;
  o.max_iterations = 4;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult r = opt.run(d, objective, nullptr);
  EXPECT_LE(r.sum_after_ps, r.sum_before_ps + 1e-6);
  EXPECT_NEAR(objective.evaluate(d, timer_).sum_variation_ps, r.sum_after_ps,
              1e-6);
}

TEST_F(LocalOptTest, HistoryMonotoneAndTyped) {
  network::Design d = makeDesign(80, 2);
  const Objective objective(d, timer_);
  LocalOptions o;
  o.max_iterations = 6;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult r = opt.run(d, objective, nullptr);
  double prev = r.sum_before_ps;
  for (const LocalIteration& it : r.history) {
    EXPECT_LT(it.sum_after_ps, prev);  // every committed move improved
    EXPECT_NEAR(it.sum_after_ps - prev, it.realized_delta_ps, 1e-6);
    EXPECT_LT(it.predicted_delta_ps, 0.0);  // only predicted-improving tried
    prev = it.sum_after_ps;
  }
  EXPECT_NEAR(prev, r.sum_after_ps, 1e-6);
  EXPECT_GT(r.golden_evaluations, 0u);
}

TEST_F(LocalOptTest, FindsImprovementsOnRealTestcase) {
  network::Design d = makeDesign(80, 3);
  const Objective objective(d, timer_);
  LocalOptions o;
  o.max_iterations = 5;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult r = opt.run(d, objective, nullptr);
  EXPECT_TRUE(r.improved);
  EXPECT_FALSE(r.history.empty());
}

TEST_F(LocalOptTest, LocalSkewGuarded) {
  network::Design d = makeDesign(80, 4);
  const Objective objective(d, timer_);
  const VariationReport before = objective.evaluate(d, timer_);
  LocalOptions o;
  o.max_iterations = 6;
  LocalOptimizer opt(sharedTech(), o);
  opt.run(d, objective, nullptr);
  const VariationReport after = objective.evaluate(d, timer_);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    EXPECT_LE(after.local_skew_ps[ki],
              before.local_skew_ps[ki] * o.local_skew_tolerance + 1.0 + 1e-9);
}

TEST_F(LocalOptTest, TreeValidAfterOptimization) {
  network::Design d = makeDesign(60, 5);
  const Objective objective(d, timer_);
  LocalOptions o;
  o.max_iterations = 4;
  LocalOptimizer opt(sharedTech(), o);
  opt.run(d, objective, nullptr);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
}

TEST_F(LocalOptTest, RandomBaselineWeaker) {
  // The Figure 8 claim: guided local optimization beats random moves given
  // the same golden-evaluation budget.
  network::Design guided = makeDesign(80, 6);
  network::Design random = guided;
  const Objective objective(guided, timer_);
  LocalOptions o;
  o.max_iterations = 5;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult rg = opt.run(guided, objective, nullptr);
  const LocalResult rr = opt.runRandom(random, objective, 77);
  EXPECT_LE(rg.sum_after_ps, rr.sum_after_ps + 1e-6)
      << "random search should not beat the predictor-guided flow";
}

TEST_F(LocalOptTest, RandomRunNeverDegrades) {
  network::Design d = makeDesign(60, 7);
  const Objective objective(d, timer_);
  LocalOptions o;
  o.max_iterations = 4;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult r = opt.runRandom(d, objective, 5);
  EXPECT_LE(r.sum_after_ps, r.sum_before_ps + 1e-6);
}

TEST_F(LocalOptTest, ParallelTrialsBitIdenticalToSerial) {
  // The paper implements the top-R moves in R threads; our parallel path
  // must commit exactly what the serial path commits.
  network::Design serial = makeDesign(70, 9);
  network::Design parallel = serial;
  const Objective objective(serial, timer_);
  LocalOptions o;
  o.max_iterations = 3;
  o.parallel_trials = false;
  const LocalResult rs = LocalOptimizer(sharedTech(), o).run(serial, objective, nullptr);
  o.parallel_trials = true;
  const LocalResult rp =
      LocalOptimizer(sharedTech(), o).run(parallel, objective, nullptr);
  EXPECT_DOUBLE_EQ(rs.sum_after_ps, rp.sum_after_ps);
  EXPECT_EQ(rs.history.size(), rp.history.size());
  EXPECT_EQ(rs.golden_evaluations, rp.golden_evaluations);
  EXPECT_EQ(serial.tree.numNodes(), parallel.tree.numNodes());
}

TEST_F(LocalOptTest, SerialAndParallelCommitIdenticalHistories) {
  // Beyond the aggregate check above: every committed move must match
  // entry-for-entry, even when more trial workers than cores interleave.
  network::Design serial = makeDesign(70, 11);
  network::Design parallel = serial;
  const Objective objective(serial, timer_);
  LocalOptions o;
  o.max_iterations = 4;
  o.parallel_trials = false;
  const LocalResult rs =
      LocalOptimizer(sharedTech(), o).run(serial, objective, nullptr);
  o.parallel_trials = true;
  o.threads = 4;  // force real interleaving even on single-core hosts
  const LocalResult rp =
      LocalOptimizer(sharedTech(), o).run(parallel, objective, nullptr);
  ASSERT_EQ(rs.history.size(), rp.history.size());
  for (std::size_t i = 0; i < rs.history.size(); ++i) {
    EXPECT_EQ(rs.history[i].round, rp.history[i].round);
    EXPECT_EQ(rs.history[i].type, rp.history[i].type);
    EXPECT_DOUBLE_EQ(rs.history[i].predicted_delta_ps,
                     rp.history[i].predicted_delta_ps);
    EXPECT_DOUBLE_EQ(rs.history[i].realized_delta_ps,
                     rp.history[i].realized_delta_ps);
    EXPECT_DOUBLE_EQ(rs.history[i].sum_after_ps, rp.history[i].sum_after_ps);
  }
  EXPECT_DOUBLE_EQ(rs.sum_after_ps, rp.sum_after_ps);
  EXPECT_EQ(rs.golden_evaluations, rp.golden_evaluations);
}

void expectTimingsEqual(const std::vector<sta::CornerTiming>& a,
                        const std::vector<sta::CornerTiming>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t ki = 0; ki < a.size(); ++ki) {
    ASSERT_EQ(a[ki].arrival.size(), b[ki].arrival.size()) << what;
    for (std::size_t i = 0; i < a[ki].arrival.size(); ++i) {
      EXPECT_EQ(a[ki].arrival[i], b[ki].arrival[i])
          << what << " arrival corner " << ki << " node " << i;
      EXPECT_EQ(a[ki].slew[i], b[ki].slew[i])
          << what << " slew corner " << ki << " node " << i;
      EXPECT_EQ(a[ki].in_arrival[i], b[ki].in_arrival[i])
          << what << " in_arrival corner " << ki << " node " << i;
      EXPECT_EQ(a[ki].in_slew[i], b[ki].in_slew[i])
          << what << " in_slew corner " << ki << " node " << i;
      EXPECT_EQ(a[ki].driver_load[i], b[ki].driver_load[i])
          << what << " driver_load corner " << ki << " node " << i;
    }
  }
}

TEST_F(LocalOptTest, ScopedRetimeRollbackBitIdentical) {
  // The overlay must equal a fresh full analysis of the edited design, and
  // rollback + undo must restore timing and design bit-identically — the
  // invariant the copy-free trial engine rests on.
  const network::Design original = makeDesign(70, 12);
  const std::vector<sta::CornerTiming> fresh_original =
      sta::IncrementalTimer(sharedTech(), original).timings();

  std::vector<Move> moves = enumerateAllMoves(original, {});
  ASSERT_FALSE(moves.empty());
  // A spread of candidates covering all three move types.
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < moves.size(); i += moves.size() / 7 + 1)
    picks.push_back(i);

  network::Design d = original;
  sta::IncrementalTimer base(sharedTech(), d);
  sta::ScopedRetime overlay(base);
  for (const std::size_t pi : picks) {
    const Move& m = moves[pi];
    const UndoRecord undo = applyMoveUndoable(d, m);
    overlay.retime(d, undo.dirty);
    const std::vector<sta::CornerTiming> fresh_edited =
        sta::IncrementalTimer(sharedTech(), d).timings();
    expectTimingsEqual(base.timings(), fresh_edited, "overlay vs fresh");
    overlay.rollback();
    undoMove(d, undo);
    expectTimingsEqual(base.timings(), fresh_original, "rollback vs base");
  }
  // After every trial was undone the design itself is back to the original.
  std::string err;
  ASSERT_TRUE(d.tree.validate(&err)) << err;
  expectTimingsEqual(sta::IncrementalTimer(sharedTech(), d).timings(),
                     fresh_original, "undone design vs original");
}

TEST_F(LocalOptTest, BatchScoringIdenticalHistoryToPerMove) {
  // scoreBatch is a pure layout change: with batch scoring on vs off the
  // optimizer must rank, trial, and commit exactly the same moves.
  network::Design batched = makeDesign(70, 13);
  network::Design per_move = batched;
  const Objective objective(batched, timer_);
  LocalOptions o;
  o.max_iterations = 4;
  o.batch_scoring = true;
  const LocalResult rb =
      LocalOptimizer(sharedTech(), o).run(batched, objective, nullptr);
  o.batch_scoring = false;
  const LocalResult rm =
      LocalOptimizer(sharedTech(), o).run(per_move, objective, nullptr);
  ASSERT_EQ(rb.history.size(), rm.history.size());
  for (std::size_t i = 0; i < rb.history.size(); ++i) {
    EXPECT_EQ(rb.history[i].round, rm.history[i].round);
    EXPECT_EQ(rb.history[i].type, rm.history[i].type);
    EXPECT_EQ(rb.history[i].predicted_delta_ps,
              rm.history[i].predicted_delta_ps);
    EXPECT_EQ(rb.history[i].realized_delta_ps,
              rm.history[i].realized_delta_ps);
    EXPECT_EQ(rb.history[i].sum_after_ps, rm.history[i].sum_after_ps);
  }
  EXPECT_EQ(rb.sum_after_ps, rm.sum_after_ps);
  EXPECT_EQ(rb.golden_evaluations, rm.golden_evaluations);
  EXPECT_EQ(batched.tree.numNodes(), per_move.tree.numNodes());
}

TEST_F(LocalOptTest, BatchScoringIdenticalUnderParallelTrials) {
  // The pooled scoreBatch path (parallel_trials on) must also reproduce the
  // serial per-move history exactly.
  network::Design batched = makeDesign(70, 14);
  network::Design per_move = batched;
  const Objective objective(batched, timer_);
  LocalOptions o;
  o.max_iterations = 3;
  o.batch_scoring = true;
  o.parallel_trials = true;
  o.threads = 4;
  const LocalResult rb =
      LocalOptimizer(sharedTech(), o).run(batched, objective, nullptr);
  o.batch_scoring = false;
  o.parallel_trials = false;
  const LocalResult rm =
      LocalOptimizer(sharedTech(), o).run(per_move, objective, nullptr);
  ASSERT_EQ(rb.history.size(), rm.history.size());
  for (std::size_t i = 0; i < rb.history.size(); ++i) {
    EXPECT_EQ(rb.history[i].type, rm.history[i].type);
    EXPECT_EQ(rb.history[i].predicted_delta_ps,
              rm.history[i].predicted_delta_ps);
    EXPECT_EQ(rb.history[i].sum_after_ps, rm.history[i].sum_after_ps);
  }
  EXPECT_EQ(rb.sum_after_ps, rm.sum_after_ps);
}

TEST_F(LocalOptTest, ZeroIterationsIsNoOp) {
  network::Design d = makeDesign(50, 8);
  const Objective objective(d, timer_);
  const double before = objective.evaluate(d, timer_).sum_variation_ps;
  LocalOptions o;
  o.max_iterations = 0;
  LocalOptimizer opt(sharedTech(), o);
  const LocalResult r = opt.run(d, objective, nullptr);
  EXPECT_DOUBLE_EQ(r.sum_after_ps, before);
  EXPECT_TRUE(r.history.empty());
}

}  // namespace
}  // namespace skewopt::core
