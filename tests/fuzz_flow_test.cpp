// Randomized end-to-end robustness: arbitrary interleavings of edits,
// optimizations, serialization and re-timing must preserve the structural
// and physical invariants — the kind of long-soak property test a
// production EDA flow ships with.
#include <gtest/gtest.h>

#include <sstream>

#include "check/check.h"
#include "core/flow.h"
#include "core/placement_explorer.h"
#include "network/io.h"
#include "sta/incremental.h"
#include "testgen/testgen.h"

namespace skewopt {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}
const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

void checkInvariants(const network::Design& d, const char* where) {
  std::string err;
  ASSERT_TRUE(d.tree.validate(&err)) << where << ": " << err;
  const sta::Timer timer(sharedTech());
  // Timing must run and produce finite, positive sink latencies.
  for (const std::size_t k : d.corners) {
    const sta::CornerTiming t = timer.analyze(d.tree, d.routing, k);
    for (const int s : d.tree.sinks()) {
      const double a = t.arrival[static_cast<std::size_t>(s)];
      ASSERT_TRUE(std::isfinite(a)) << where;
      ASSERT_GT(a, 0.0) << where;
      ASSERT_LT(a, 1e6) << where << ": absurd latency " << a;
    }
  }
  // Pairs must reference live sinks.
  for (const network::SinkPair& p : d.pairs) {
    ASSERT_TRUE(d.tree.isValid(p.launch)) << where;
    ASSERT_TRUE(d.tree.isValid(p.capture)) << where;
  }
  // The checker subsystem must agree, at its deepest level, after every
  // stage of every interleaving — its strongest no-false-positive soak.
  check::DiagnosticEngine engine;
  engine.setContext(where);
  check::CheckOptions copts;
  copts.level = check::Level::kDeep;
  check::checkDesign(d, copts, engine);
  check::checkDesignTiming(d, timer, engine);
  ASSERT_FALSE(engine.hasErrors()) << where << ":\n" << engine.text();
}

class FuzzFlow : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFlow, RandomOperationSequenceKeepsInvariants) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  geom::Rng rng(seed * 1299721 + 17);

  testgen::TestcaseOptions o;
  o.sinks = 40 + rng.index(40);
  o.max_pairs = 50;
  o.seed = seed + 1;
  network::Design d =
      rng.uniform() < 0.5
          ? testgen::makeCls1(sharedTech(), rng.uniform() < 0.5 ? "v1" : "v2", o)
          : testgen::makeCls2(sharedTech(), o);
  checkInvariants(d, "after generation");

  const sta::Timer timer(sharedTech());
  core::Objective objective(d, timer);

  for (int op_count = 0; op_count < 8; ++op_count) {
    const int op = static_cast<int>(rng.index(6));
    switch (op) {
      case 0: {  // a few random local moves
        const std::vector<core::Move> moves = core::enumerateAllMoves(d);
        if (moves.empty()) break;
        core::applyMove(d, moves[rng.index(moves.size())]);
        checkInvariants(d, "after random move");
        break;
      }
      case 1: {  // short local optimization burst
        core::LocalOptions lo;
        lo.max_iterations = 1;
        lo.max_chunks_per_round = 2;
        core::LocalOptimizer(sharedTech(), lo).run(d, objective, nullptr);
        checkInvariants(d, "after local burst");
        break;
      }
      case 2: {  // global optimization with a single sweep point
        core::GlobalOptions go;
        go.u_sweep = {0.2};
        core::GlobalOptimizer(sharedTech(), sharedLut(), go)
            .run(d, objective);
        checkInvariants(d, "after global");
        break;
      }
      case 3: {  // serialization round-trip mid-flow
        std::stringstream ss;
        network::writeDesign(d, ss);
        network::Design reloaded = network::readDesign(sharedTech(), ss);
        checkInvariants(reloaded, "after round-trip");
        const double a = sta::sumNormalizedSkewVariation(d, timer);
        const double b = sta::sumNormalizedSkewVariation(reloaded, timer);
        ASSERT_NEAR(a, b, 1e-6) << "round-trip changed timing";
        break;
      }
      case 4: {  // placement-explorer application
        core::BufferPlacementExplorer explorer(d, timer, objective);
        const std::vector<int> bufs = d.tree.buffers();
        const int b = bufs[rng.index(bufs.size())];
        core::ExplorerOptions eo;
        eo.coarse_step_um = 20.0;
        const core::PlacementChoice c = explorer.explore(b, eo);
        if (c.predicted_delta_ps < 0.0)
          core::BufferPlacementExplorer::apply(d, b, c);
        checkInvariants(d, "after explorer");
        break;
      }
      case 5: {  // incremental timing consistency after an edit
        sta::IncrementalTimer inc(sharedTech(), d);
        const std::vector<core::Move> moves = core::enumerateAllMoves(d);
        if (moves.empty()) break;
        const core::Move& m = moves[rng.index(moves.size())];
        const std::vector<int> dirty = core::applyMoveTracked(d, m);
        inc.update(d, dirty);
        const sta::CornerTiming ref =
            timer.analyze(d.tree, d.routing, d.corners[0]);
        for (const int s : d.tree.sinks())
          ASSERT_DOUBLE_EQ(
              inc.timing(0).arrival[static_cast<std::size_t>(s)],
              ref.arrival[static_cast<std::size_t>(s)])
              << "incremental drift";
        break;
      }
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::Range(1, 7));

}  // namespace
}  // namespace skewopt
