#include "lp/lp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/geom.h"

namespace skewopt::lp {
namespace {

TEST(Model, BuildAndEvaluate) {
  Model m;
  const int x = m.addVar(0, 10, 1.0, "x");
  const int y = m.addVar(-kInf, kInf, -2.0, "y");
  m.addRow(-kInf, 5.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(m.numVars(), 2);
  EXPECT_EQ(m.numRows(), 1);
  EXPECT_EQ(m.numNonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.objective({3.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.maxViolation({3.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.maxViolation({4.0, 2.0}), 1.0);
  EXPECT_THROW(m.addVar(3, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(m.addRow(0, -1, {}), std::invalid_argument);
  EXPECT_THROW(m.addRow(0, 1, {{7, 1.0}}), std::out_of_range);
}

TEST(Simplex, PureBoundsProblem) {
  Model m;
  m.addVar(1, 4, 2.0);    // min at lb
  m.addVar(-3, 9, -1.0);  // min at ub
  m.addVar(0, 5, 0.0);    // free choice, lands on a bound
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(s.x[0], 1.0);
  EXPECT_DOUBLE_EQ(s.x[1], 9.0);
  EXPECT_DOUBLE_EQ(s.objective, 2.0 - 9.0);
}

TEST(Simplex, TextbookTwoVar) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0 -> (1.6, 1.2), obj 2.8
  Model m;
  const int x = m.addVar(0, kInf, -1.0);
  const int y = m.addVar(0, kInf, -1.0);
  m.addRow(-kInf, 4, {{x, 1}, {y, 2}});
  m.addRow(-kInf, 6, {{x, 3}, {y, 1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 1.6, 1e-6);
  EXPECT_NEAR(s.x[1], 1.2, 1e-6);
  EXPECT_NEAR(s.objective, -2.8, 1e-6);
}

TEST(Simplex, EqualityRow) {
  // min x + y s.t. x + y = 3, x in [0,2], y in [0,2] -> obj 3.
  Model m;
  const int x = m.addVar(0, 2, 1.0);
  const int y = m.addVar(0, 2, 1.0);
  m.addRow(3, 3, {{x, 1}, {y, 1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.x[0] + s.x[1], 3.0, 1e-7);
}

TEST(Simplex, RangedRow) {
  // min x s.t. 2 <= x + y <= 5, 0 <= x,y <= 4.
  Model m;
  const int x = m.addVar(0, 4, 1.0);
  const int y = m.addVar(0, 4, 0.0);
  m.addRow(2, 5, {{x, 1}, {y, 1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 0.0, 1e-7);  // y alone satisfies the range
  EXPECT_DOUBLE_EQ(m.maxViolation(s.x), 0.0);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.addVar(0, 1, 1.0);
  m.addRow(5, kInf, {{x, 1.0}});  // x >= 5 impossible
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, InfeasibleConflictingRows) {
  Model m;
  const int x = m.addVar(-kInf, kInf, 0.0);
  const int y = m.addVar(-kInf, kInf, 1.0);
  m.addRow(4, kInf, {{x, 1}, {y, 1}});
  m.addRow(-kInf, 2, {{x, 1}, {y, 1}});
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  m.addVar(0, kInf, -1.0);  // min -x, x unbounded above
  const int y = m.addVar(0, 1, 0.0);
  m.addRow(-kInf, 10, {{y, 1.0}});
  EXPECT_EQ(solve(m).status, Status::Unbounded);
}

TEST(Simplex, FreeVariable) {
  // min |style| objective: y free; x - y = 1, min x with x >= 0 -> x=0,y=-1.
  Model m;
  const int x = m.addVar(0, kInf, 1.0);
  const int y = m.addVar(-kInf, kInf, 0.0);
  m.addRow(1, 1, {{x, 1}, {y, -1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 0.0, 1e-7);
  EXPECT_NEAR(s.x[1], -1.0, 1e-7);
}

TEST(Simplex, FixedVariable) {
  Model m;
  const int x = m.addVar(2, 2, 1.0);  // fixed
  const int y = m.addVar(0, kInf, 1.0);
  m.addRow(5, kInf, {{x, 1}, {y, 1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(s.x[0], 2.0);
  EXPECT_NEAR(s.x[1], 3.0, 1e-7);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Many redundant constraints through the same vertex.
  Model m;
  const int x = m.addVar(0, kInf, -1.0);
  const int y = m.addVar(0, kInf, -1.0);
  for (int i = 1; i <= 6; ++i)
    m.addRow(-kInf, 2.0 * i, {{x, static_cast<double>(i)}, {y, static_cast<double>(i)}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0] + s.x[1], 2.0, 1e-6);
}

TEST(Simplex, AbsValueSplitPattern) {
  // The global optimizer's |Delta| encoding: min d+ + d- with d+ - d- = t.
  for (const double target : {-3.0, 0.0, 4.5}) {
    Model m;
    const int dp = m.addVar(0, kInf, 1.0);
    const int dm = m.addVar(0, kInf, 1.0);
    m.addRow(target, target, {{dp, 1}, {dm, -1}});
    const Solution s = solve(m);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_NEAR(s.objective, std::abs(target), 1e-7);
  }
}

TEST(Simplex, MinimaxPattern) {
  // The paper's V >= +/- expr encoding: min V with V >= x-3, V >= 3-x at
  // fixed x=5 -> V = 2.
  Model m;
  const int v = m.addVar(0, kInf, 1.0);
  const int x = m.addVar(5, 5, 0.0);
  m.addRow(-3, kInf, {{v, 1}, {x, -1}});
  m.addRow(3, kInf, {{v, 1}, {x, 1}});
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Property test: LPs with a known optimum by construction (KKT/Farkas):
// pick x*, pick an active set, set c = -sum(lambda_i * a_i) over active
// rows with lambda > 0 (plus bound multipliers). Then x* is optimal and the
// solver's objective must match c.x* exactly.
// ---------------------------------------------------------------------------

class KnownOptimumProp : public ::testing::TestWithParam<int> {};

TEST_P(KnownOptimumProp, SolverReachesConstructedOptimum) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1013 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 3 + static_cast<int>(rng.index(5));
    const int rows = 2 + static_cast<int>(rng.index(5));

    std::vector<double> xstar(static_cast<std::size_t>(n));
    for (double& v : xstar) v = rng.uniform(-3.0, 3.0);

    Model m;
    std::vector<double> c(static_cast<std::size_t>(n), 0.0);

    // Row constraints: a.x <= a.x* + slack (slack 0 => active).
    struct RowSpec {
      std::vector<double> a;
      bool active;
    };
    std::vector<RowSpec> specs;
    for (int r = 0; r < rows; ++r) {
      RowSpec rs;
      rs.a.resize(static_cast<std::size_t>(n));
      for (double& v : rs.a) v = rng.uniform(-2.0, 2.0);
      rs.active = rng.uniform() < 0.5;
      specs.push_back(rs);
    }
    // Objective from active-row multipliers: c = -sum lambda a (so that the
    // gradient of c.x is blocked by the active constraints at x*).
    bool any_active = false;
    for (const RowSpec& rs : specs) {
      if (!rs.active) continue;
      any_active = true;
      const double lambda = rng.uniform(0.2, 2.0);
      for (int j = 0; j < n; ++j)
        c[static_cast<std::size_t>(j)] -= lambda * rs.a[static_cast<std::size_t>(j)];
    }
    // A couple of active *bound* multipliers for spice: variable j at its
    // lower bound with c_j > 0 contribution.
    std::vector<double> lb(static_cast<std::size_t>(n), -10.0);
    std::vector<double> ub(static_cast<std::size_t>(n), 10.0);
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.3) {
        lb[static_cast<std::size_t>(j)] = xstar[static_cast<std::size_t>(j)];
        c[static_cast<std::size_t>(j)] += rng.uniform(0.2, 1.5);
        any_active = true;
      }
    }
    if (!any_active) {
      // Make x* an unconstrained-in-the-box optimum: c = 0.
      std::fill(c.begin(), c.end(), 0.0);
    }

    for (int j = 0; j < n; ++j)
      m.addVar(lb[static_cast<std::size_t>(j)], ub[static_cast<std::size_t>(j)],
               c[static_cast<std::size_t>(j)]);
    for (const RowSpec& rs : specs) {
      double ax = 0.0;
      for (int j = 0; j < n; ++j)
        ax += rs.a[static_cast<std::size_t>(j)] * xstar[static_cast<std::size_t>(j)];
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j)
        terms.push_back({j, rs.a[static_cast<std::size_t>(j)]});
      m.addRow(-kInf, rs.active ? ax : ax + rng.uniform(0.5, 3.0),
               std::move(terms));
    }

    const Solution s = solve(m);
    ASSERT_EQ(s.status, Status::Optimal) << "trial " << trial;
    double cx = 0.0;
    for (int j = 0; j < n; ++j)
      cx += c[static_cast<std::size_t>(j)] * xstar[static_cast<std::size_t>(j)];
    EXPECT_NEAR(s.objective, cx, 1e-5) << "trial " << trial;
    EXPECT_LT(m.maxViolation(s.x), 1e-6);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, KnownOptimumProp, ::testing::Range(0, 10));

// Random feasible LPs: whatever the solver returns as Optimal must be
// feasible and no worse than a crowd of random feasible points.
class FeasibleDominanceProp : public ::testing::TestWithParam<int> {};

TEST_P(FeasibleDominanceProp, OptimalBeatsSampledPoints) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4;
    Model m;
    std::vector<double> c(n);
    for (int j = 0; j < n; ++j) {
      c[static_cast<std::size_t>(j)] = rng.uniform(-1, 1);
      m.addVar(0.0, 5.0, c[static_cast<std::size_t>(j)]);
    }
    // Rows are satisfied by x = 0 (rhs >= 0), so the LP is feasible.
    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 5; ++r) {
      std::vector<double> a(n);
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        a[static_cast<std::size_t>(j)] = rng.uniform(-1, 1);
        terms.push_back({j, a[static_cast<std::size_t>(j)]});
      }
      m.addRow(-kInf, rng.uniform(0.0, 4.0), std::move(terms));
      rows.push_back(a);
    }
    const Solution s = solve(m);
    ASSERT_EQ(s.status, Status::Optimal);
    EXPECT_LT(m.maxViolation(s.x), 1e-6);
    // Sampled feasible points never beat the reported optimum.
    for (int pt = 0; pt < 200; ++pt) {
      std::vector<double> x(n);
      for (int j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = rng.uniform(0, 5);
      if (m.maxViolation(x) > 0.0) continue;
      EXPECT_GE(m.objective(x) + 1e-6, s.objective);
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, FeasibleDominanceProp, ::testing::Range(0, 8));

TEST(Simplex, ModeratelySizedSparseProblem) {
  // A transportation-style LP: 40 supplies x 12 demands.
  geom::Rng rng(99);
  Model m;
  const int ns = 40, nd = 12;
  std::vector<int> var(static_cast<std::size_t>(ns * nd));
  for (int i = 0; i < ns; ++i)
    for (int j = 0; j < nd; ++j)
      var[static_cast<std::size_t>(i * nd + j)] =
          m.addVar(0, kInf, rng.uniform(1.0, 5.0));
  for (int i = 0; i < ns; ++i) {
    std::vector<Term> t;
    for (int j = 0; j < nd; ++j) t.push_back({var[static_cast<std::size_t>(i * nd + j)], 1.0});
    m.addRow(-kInf, 10.0, std::move(t));  // supply cap
  }
  for (int j = 0; j < nd; ++j) {
    std::vector<Term> t;
    for (int i = 0; i < ns; ++i) t.push_back({var[static_cast<std::size_t>(i * nd + j)], 1.0});
    m.addRow(8.0, kInf, std::move(t));  // demand floor
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_LT(m.maxViolation(s.x), 1e-6);
  EXPECT_GT(s.objective, 0.0);
  // Total shipped is exactly total demand at optimality (costs positive).
  double shipped = 0.0;
  for (const double v : s.x) shipped += v;
  EXPECT_NEAR(shipped, 8.0 * nd, 1e-5);
}

TEST(Model, AddRowCoalescesDuplicateTerms) {
  // The global LP builder emits one term per (slot, corner) mention, so a
  // row can repeat a variable; addRow must sum them and keep nnz_ exact.
  Model m;
  const int x = m.addVar(0, 10, 1.0);
  const int y = m.addVar(0, 10, 1.0);
  m.addRow(-kInf, 6.0, {{x, 1.0}, {y, 2.0}, {x, 2.0}});
  EXPECT_EQ(m.numNonzeros(), 2u);
  ASSERT_EQ(m.rowTerms(0).size(), 2u);
  double cx = 0.0;
  for (const Term& t : m.rowTerms(0))
    if (t.var == x) cx = t.coef;
  EXPECT_DOUBLE_EQ(cx, 3.0);
  // Exactly-cancelling duplicates are dropped entirely.
  m.addRow(-kInf, 1.0, {{x, 1.0}, {y, 0.5}, {x, -1.0}});
  EXPECT_EQ(m.rowTerms(1).size(), 1u);
  EXPECT_EQ(m.numNonzeros(), 3u);
  // Coalescing must not change the solved problem: 3x <= 6 binds.
  Model plain;
  plain.addVar(0, 10, -1.0);
  plain.addVar(0, 10, 0.0);
  plain.addRow(-kInf, 6.0, {{0, 3.0}});
  Model dup;
  dup.addVar(0, 10, -1.0);
  dup.addVar(0, 10, 0.0);
  dup.addRow(-kInf, 6.0, {{0, 1.0}, {0, 2.0}, {1, 0.0}});
  EXPECT_NEAR(solve(plain).objective, solve(dup).objective, 1e-9);
}

TEST(Model, SetRowBounds) {
  Model m;
  const int x = m.addVar(0, 10, -1.0);
  m.addRow(-kInf, 8.0, {{x, 1.0}});
  EXPECT_NEAR(solve(m).x[0], 8.0, 1e-7);
  m.setRowBounds(0, -kInf, 3.0);
  EXPECT_NEAR(solve(m).x[0], 3.0, 1e-7);
  EXPECT_THROW(m.setRowBounds(1, 0.0, 1.0), std::out_of_range);
  EXPECT_THROW(m.setRowBounds(0, 2.0, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Warm-start API.
// ---------------------------------------------------------------------------

/// A ranged/degenerate fixture shaped like the paper LP: |Delta| splits,
/// a minimax V, ranged preservation rows, and a budget row appended last.
Model paperMiniModel(double budget) {
  Model m;
  const int dp = m.addVar(0, 6, 1.0);
  const int dm = m.addVar(0, 4, 1.0);
  const int v = m.addVar(0, kInf, 0.0);
  m.addRow(-2, kInf, {{v, 1.0}, {dp, -1.0}, {dm, 1.0}});
  m.addRow(2, kInf, {{v, 1.0}, {dp, 1.0}, {dm, -1.0}});
  m.addRow(-3.0, 3.0, {{dp, 1.0}, {dm, -1.0}});  // ranged preservation
  m.addRow(0.0, 0.0, {{dp, 1.0}, {dm, -1.0}});   // degenerate equality
  m.addRow(-kInf, budget, {{v, 1.0}});           // budget row (last)
  return m;
}

TEST(WarmStart, MatchesColdOnRangedDegenerateFixture) {
  const Model m = paperMiniModel(5.0);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(cold.basis.empty());
  const Solution warm = solve(m, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // Re-entering at the optimal vertex costs no pivots.
  EXPECT_EQ(warm.iterations, 0);
}

TEST(WarmStart, RowReboundResolvesToColdObjective) {
  // The U-sweep pattern: tighten the last row's bound, re-enter from the
  // previous basis, and land on the same optimum a cold solve finds.
  Model m = paperMiniModel(5.0);
  Solution prev = solve(m);
  ASSERT_EQ(prev.status, Status::Optimal);
  for (const double budget : {4.0, 3.0, 2.5}) {
    m.setRowBounds(4, -kInf, budget);
    const Solution cold = solve(m);
    const Solution warm = solve(m, {}, &prev.basis);
    ASSERT_EQ(warm.status, cold.status);
    EXPECT_TRUE(warm.warm_started);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
    EXPECT_LE(warm.iterations, cold.iterations);
    prev = warm;
  }
}

TEST(WarmStart, BasisExtendsAcrossAppendedRow) {
  // GlobalOpt solves pass 1 without the budget row, then appends it for
  // the sweep model; the pass-1 basis plus one Basic slack entry must be
  // accepted and reach the cold optimum.
  Model no_budget;
  const int dp = no_budget.addVar(0, 6, 1.0);
  const int dm = no_budget.addVar(0, 4, 1.0);
  const int v = no_budget.addVar(0, kInf, 0.0);
  no_budget.addRow(-2, kInf, {{v, 1.0}, {dp, -1.0}, {dm, 1.0}});
  no_budget.addRow(2, kInf, {{v, 1.0}, {dp, 1.0}, {dm, -1.0}});
  no_budget.addRow(-3.0, 3.0, {{dp, 1.0}, {dm, -1.0}});
  no_budget.addRow(0.0, 0.0, {{dp, 1.0}, {dm, -1.0}});
  const Solution base = solve(no_budget);
  ASSERT_EQ(base.status, Status::Optimal);

  Model with_budget = paperMiniModel(4.0);
  Basis extended = base.basis;
  extended.status.push_back(BasisStatus::Basic);
  const Solution warm = solve(with_budget, {}, &extended);
  const Solution cold = solve(with_budget);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(BasisIo, RoundTripPreservesStatusExactly) {
  const Model m = paperMiniModel(5.0);
  const Solution cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(cold.basis.empty());

  const std::vector<unsigned char> bytes = serializeBasis(cold.basis);
  Basis back;
  ASSERT_TRUE(deserializeBasis(bytes, &back));
  EXPECT_EQ(back.status, cold.basis.status);

  // The round-tripped basis is usable: warm re-entry at the optimal vertex
  // costs no pivots.
  const Solution warm = solve(m, {}, &back);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0);

  // Empty basis round-trips to empty.
  Basis empty_back;
  empty_back.status.push_back(BasisStatus::Basic);  // must be cleared
  ASSERT_TRUE(deserializeBasis(serializeBasis(Basis{}), &empty_back));
  EXPECT_TRUE(empty_back.empty());
}

TEST(BasisIo, CorruptionIsRejectedNotTrusted) {
  const Model m = paperMiniModel(5.0);
  const Solution cold = solve(m);
  const std::vector<unsigned char> good = serializeBasis(cold.basis);

  Basis out;
  out.status.assign(3, BasisStatus::Basic);
  // Too short to even carry the header.
  EXPECT_FALSE(deserializeBasis({1, 0, 0}, &out));
  EXPECT_TRUE(out.empty()) << "failed deserialize must clear the output";

  // Unknown format version.
  std::vector<unsigned char> bad = good;
  bad[0] = 99;
  EXPECT_FALSE(deserializeBasis(bad, &out));

  // Truncated payload.
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(deserializeBasis(bad, &out));

  // A flipped status byte breaks the checksum.
  bad = good;
  bad[6] ^= 1;
  EXPECT_FALSE(deserializeBasis(bad, &out));

  // A status byte outside the enum range is rejected even if the checksum
  // is recomputed to match (forged blob).
  Basis forged = cold.basis;
  forged.status[0] = static_cast<BasisStatus>(7);
  EXPECT_FALSE(deserializeBasis(serializeBasis(forged), &out));
}

TEST(BasisIo, ShapeMismatchAfterRoundTripFallsBackToCold) {
  // The cross-job path deserializes a stored basis and hands it to solve();
  // a basis from a differently-shaped model must degrade to a cold solve
  // (warm_started == false), never crash or mis-solve.
  Model small;
  small.addVar(0, 1, 1.0);
  small.addRow(0.0, 1.0, {{0, 1.0}});
  const Solution small_sol = solve(small);
  ASSERT_EQ(small_sol.status, Status::Optimal);

  Basis wrong_shape;
  ASSERT_TRUE(deserializeBasis(serializeBasis(small_sol.basis), &wrong_shape));
  const Model m = paperMiniModel(5.0);
  const Solution s = solve(m, {}, &wrong_shape);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, solve(m).objective, 1e-9);
}

TEST(WarmStart, UnusableBasisFallsBackToCold) {
  const Model m = paperMiniModel(5.0);
  Basis bad;
  bad.status.assign(3, BasisStatus::AtLower);  // wrong size entirely
  const Solution s = solve(m, {}, &bad);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_FALSE(s.warm_started);
  // Right size but wrong Basic count is also rejected, not crashed on.
  Basis wrong_count;
  wrong_count.status.assign(m.numVars() + m.numRows(), BasisStatus::AtLower);
  const Solution s2 = solve(m, {}, &wrong_count);
  ASSERT_EQ(s2.status, Status::Optimal);
  EXPECT_FALSE(s2.warm_started);
  EXPECT_NEAR(s.objective, s2.objective, 1e-9);
}

// ---------------------------------------------------------------------------
// Dense/sparse differential: both implementations must agree on status and
// objective for random feasible LPs and for every pricing rule.
// ---------------------------------------------------------------------------

class DenseSparseDifferentialProp : public ::testing::TestWithParam<int> {};

TEST_P(DenseSparseDifferentialProp, SameObjectiveAndStatus) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4 + static_cast<int>(rng.index(4));
    Model m;
    for (int j = 0; j < n; ++j) m.addVar(0.0, 5.0, rng.uniform(-1, 1));
    for (int r = 0; r < 6; ++r) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(-1, 1)});
      if (rng.uniform() < 0.3)
        m.addRow(rng.uniform(-4.0, 0.0), rng.uniform(0.0, 4.0),
                 std::move(terms));
      else
        m.addRow(-kInf, rng.uniform(0.0, 4.0), std::move(terms));
    }
    SolverOptions dense;
    dense.algorithm = SolverOptions::Algorithm::kDense;
    const Solution a = detail::solveDense(m, dense);
    for (const auto pricing :
         {SolverOptions::Pricing::kDevex, SolverOptions::Pricing::kDantzig}) {
      SolverOptions sparse;
      sparse.pricing = pricing;
      const Solution b = solve(m, sparse);
      ASSERT_EQ(a.status, b.status) << "trial " << trial;
      if (a.status == Status::Optimal) {
        EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
        EXPECT_LT(m.maxViolation(b.x), 1e-6);
      }
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, DenseSparseDifferentialProp,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace skewopt::lp
