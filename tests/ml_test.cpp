#include "ml/ml.h"

#include <gtest/gtest.h>

#include <cmath>

namespace skewopt::ml {
namespace {

Dataset makeDataset(std::size_t n, std::size_t d, geom::Rng& rng,
                    double (*f)(const double*), double noise = 0.0) {
  Dataset ds;
  ds.x = Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) ds.x.at(i, j) = rng.uniform(-2, 2);
    ds.y.push_back(f(ds.x.row(i)) + (noise > 0 ? rng.normal(0, noise) : 0.0));
  }
  return ds;
}

double linearFn(const double* x) { return 3.0 * x[0] - 2.0 * x[1] + 0.5; }
double mildNonlinear(const double* x) {
  return x[0] * x[0] + std::sin(x[1]) + 0.3 * x[0] * x[1];
}

TEST(Scaler, ZeroMeanUnitVariance) {
  geom::Rng rng(1);
  Matrix x(200, 3);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.uniform(10, 20);
    x.at(i, 1) = rng.normal(-5, 3);
    x.at(i, 2) = 7.0;  // constant column must not divide by zero
  }
  StandardScaler s;
  s.fit(x);
  const Matrix t = s.transform(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0, var = 0;
    for (std::size_t i = 0; i < 200; ++i) mean += t.at(i, j);
    mean /= 200;
    for (std::size_t i = 0; i < 200; ++i)
      var += (t.at(i, j) - mean) * (t.at(i, j) - mean);
    var /= 200;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
  EXPECT_DOUBLE_EQ(t.at(0, 2), 0.0);
  // transformRow matches transform.
  const std::vector<double> row = s.transformRow(x.row(5));
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(row[j], t.at(5, j));
}

TEST(Metrics, RmseMaeMape) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(meanAbsError({0, 0}, {3, -4}), 3.5);
  EXPECT_NEAR(mape({90, 110}, {100, 100}), 10.0, 1e-9);
  EXPECT_THROW(rmse({1}, {1, 2}), std::invalid_argument);
}

TEST(Split, DeterministicAndDisjoint) {
  geom::Rng rng(2);
  const Dataset all = makeDataset(100, 2, rng, linearFn);
  Dataset tr1, va1, tr2, va2;
  splitDataset(all, 0.2, 9, &tr1, &va1);
  splitDataset(all, 0.2, 9, &tr2, &va2);
  EXPECT_EQ(va1.size(), 20u);
  EXPECT_EQ(tr1.size(), 80u);
  EXPECT_EQ(tr1.y, tr2.y);
  EXPECT_EQ(va1.y, va2.y);
}

TEST(MeanRegressor, PredictsMean) {
  MeanRegressor r;
  Dataset d;
  d.x = Matrix(3, 1);
  d.y = {1.0, 2.0, 6.0};
  r.fit(d);
  EXPECT_DOUBLE_EQ(r.predict(d.x.row(0)), 3.0);
}

TEST(Mlp, LearnsLinearFunction) {
  geom::Rng rng(3);
  const Dataset train = makeDataset(400, 2, rng, linearFn, 0.02);
  const Dataset test = makeDataset(100, 2, rng, linearFn);
  MlpOptions o;
  o.epochs = 300;
  MlpRegressor mlp(o);
  mlp.fit(train);
  MeanRegressor base;
  base.fit(train);
  const double e_mlp = rmse(mlp.predictAll(test.x), test.y);
  const double e_base = rmse(base.predictAll(test.x), test.y);
  EXPECT_LT(e_mlp, 0.25 * e_base);
}

TEST(Mlp, LearnsMildNonlinearity) {
  geom::Rng rng(4);
  const Dataset train = makeDataset(600, 2, rng, mildNonlinear, 0.02);
  const Dataset test = makeDataset(150, 2, rng, mildNonlinear);
  MlpRegressor mlp;
  mlp.fit(train);
  MeanRegressor base;
  base.fit(train);
  EXPECT_LT(rmse(mlp.predictAll(test.x), test.y),
            0.4 * rmse(base.predictAll(test.x), test.y));
}

TEST(Mlp, DeterministicForSeed) {
  geom::Rng rng(5);
  const Dataset train = makeDataset(100, 2, rng, linearFn, 0.05);
  MlpOptions o;
  o.epochs = 50;
  MlpRegressor a(o), b(o);
  a.fit(train);
  b.fit(train);
  EXPECT_DOUBLE_EQ(a.predict(train.x.row(0)), b.predict(train.x.row(0)));
}

TEST(Svr, LearnsLinearFunction) {
  geom::Rng rng(6);
  const Dataset train = makeDataset(300, 2, rng, linearFn, 0.02);
  const Dataset test = makeDataset(80, 2, rng, linearFn);
  SvrRbf svr;
  svr.fit(train);
  MeanRegressor base;
  base.fit(train);
  EXPECT_LT(rmse(svr.predictAll(test.x), test.y),
            0.3 * rmse(base.predictAll(test.x), test.y));
  EXPECT_GT(svr.numSupportVectors(), 0u);
}

TEST(Svr, LearnsNonlinearity) {
  geom::Rng rng(7);
  const Dataset train = makeDataset(400, 2, rng, mildNonlinear, 0.02);
  const Dataset test = makeDataset(100, 2, rng, mildNonlinear);
  SvrRbf svr;
  svr.fit(train);
  MeanRegressor base;
  base.fit(train);
  EXPECT_LT(rmse(svr.predictAll(test.x), test.y),
            0.4 * rmse(base.predictAll(test.x), test.y));
}

TEST(Svr, SubsamplesWhenHuge) {
  geom::Rng rng(8);
  SvrOptions o;
  o.max_samples = 50;
  o.max_sweeps = 20;
  const Dataset train = makeDataset(300, 2, rng, linearFn, 0.1);
  SvrRbf svr(o);
  svr.fit(train);
  EXPECT_LE(svr.numSupportVectors(), 50u);
}

TEST(Svr, EpsilonSparsifies) {
  geom::Rng rng(9);
  const Dataset train = makeDataset(200, 2, rng, linearFn, 0.01);
  SvrOptions tight, loose;
  tight.epsilon = 0.01;
  loose.epsilon = 0.8;
  SvrRbf a(tight), b(loose);
  a.fit(train);
  b.fit(train);
  EXPECT_LT(b.numSupportVectors(), a.numSupportVectors());
}

TEST(Hsm, BlendsAndBeatsWorstMember) {
  geom::Rng rng(10);
  const Dataset train = makeDataset(500, 2, rng, mildNonlinear, 0.03);
  const Dataset test = makeDataset(120, 2, rng, mildNonlinear);
  HybridSurrogate hsm;
  hsm.fit(train);
  MlpRegressor mlp;
  mlp.fit(train);
  SvrRbf svr;
  svr.fit(train);
  const double e_h = rmse(hsm.predictAll(test.x), test.y);
  const double e_m = rmse(mlp.predictAll(test.x), test.y);
  const double e_s = rmse(svr.predictAll(test.x), test.y);
  EXPECT_LE(e_h, std::max(e_m, e_s) * 1.15);
  EXPECT_GT(hsm.mlpWeight(), 0.0);
  EXPECT_LT(hsm.mlpWeight(), 1.0);
}

TEST(Kfold, EstimatesGeneralizationError) {
  geom::Rng rng(11);
  const Dataset all = makeDataset(200, 2, rng, linearFn, 0.05);
  const double cv = kfoldRmse(all, 4, [] {
    MlpOptions o;
    o.epochs = 120;
    return std::make_unique<MlpRegressor>(o);
  });
  EXPECT_GT(cv, 0.0);
  EXPECT_LT(cv, 1.0);  // linear target with tiny noise: near-perfect fit
}

// Parameterized sweep: every family beats the mean baseline on the linear
// target across several seeds (the property the paper's Sec 4.2 relies on).
class FamilyBeatsBaseline : public ::testing::TestWithParam<int> {};
TEST_P(FamilyBeatsBaseline, AllThreeFamilies) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  const Dataset train = makeDataset(250, 3, rng, linearFn, 0.05);
  const Dataset test = makeDataset(80, 3, rng, linearFn);
  MeanRegressor base;
  base.fit(train);
  const double e_base = rmse(base.predictAll(test.x), test.y);

  MlpOptions mo;
  mo.epochs = 150;
  MlpRegressor mlp(mo);
  mlp.fit(train);
  EXPECT_LT(rmse(mlp.predictAll(test.x), test.y), e_base);

  SvrRbf svr;
  svr.fit(train);
  EXPECT_LT(rmse(svr.predictAll(test.x), test.y), e_base);

  HsmOptions ho;
  ho.mlp = mo;
  HybridSurrogate hsm(ho);
  hsm.fit(train);
  EXPECT_LT(rmse(hsm.predictAll(test.x), test.y), e_base);
}
INSTANTIATE_TEST_SUITE_P(Seeds, FamilyBeatsBaseline, ::testing::Range(0, 3));

}  // namespace
}  // namespace skewopt::ml
