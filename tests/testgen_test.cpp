#include "testgen/testgen.h"

#include <gtest/gtest.h>

#include <set>

namespace skewopt::testgen {
namespace {

class TestgenTest : public ::testing::Test {
 protected:
  tech::TechModel tech_ = tech::TechModel::make28nm();
};

TEST_F(TestgenTest, Cls1v1StructureMatchesTable4) {
  TestcaseOptions o;
  o.sinks = 80;
  const network::Design d = makeCls1(tech_, "v1", o);
  EXPECT_EQ(d.name, "CLS1v1");
  EXPECT_EQ(d.corners, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(d.tree.sinks().size(), 80u);
  EXPECT_EQ(d.floorplan.rects().size(), 4u);  // four ILM blocks
  for (const geom::Rect& r : d.floorplan.rects()) {
    EXPECT_DOUBLE_EQ(r.width(), 650.0);
    EXPECT_DOUBLE_EQ(r.height(), 650.0);
  }
  EXPECT_EQ(d.block_cells, 80u * 11u);
  EXPECT_NEAR(d.utilization, 0.62, 1e-9);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
}

TEST_F(TestgenTest, Cls1VariantsDiffer) {
  TestcaseOptions o;
  o.sinks = 60;
  const network::Design v1 = makeCls1(tech_, "v1", o);
  const network::Design v2 = makeCls1(tech_, "v2", o);
  // v1 floorplans 2x2, v2 in a row: different bounding boxes.
  EXPECT_NE(v1.floorplan.bbox().width(), v2.floorplan.bbox().width());
  EXPECT_THROW(makeCls1(tech_, "v3", o), std::invalid_argument);
}

TEST_F(TestgenTest, PairsAreValidAndDeduped) {
  TestcaseOptions o;
  o.sinks = 70;
  const network::Design d = makeCls1(tech_, "v1", o);
  EXPECT_GT(d.pairs.size(), 50u);
  std::set<std::pair<int, int>> seen;
  for (const network::SinkPair& p : d.pairs) {
    EXPECT_NE(p.launch, p.capture);
    EXPECT_EQ(d.tree.node(p.launch).kind, network::NodeKind::Sink);
    EXPECT_EQ(d.tree.node(p.capture).kind, network::NodeKind::Sink);
    EXPECT_GT(p.weight, 0.0);
    const auto key = std::minmax(p.launch, p.capture);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST_F(TestgenTest, Cls2HasLongCrossRegionPairs) {
  TestcaseOptions o;
  o.sinks = 90;
  const network::Design d = makeCls2(tech_, o);
  EXPECT_EQ(d.corners, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(d.floorplan.rects().size(), 3u);  // controller + two arms
  // The signature of the memory controller: some pairs span ~1mm.
  double max_span = 0.0;
  for (const network::SinkPair& p : d.pairs)
    max_span = std::max(max_span,
                        geom::manhattan(d.tree.node(p.launch).pos,
                                        d.tree.node(p.capture).pos));
  EXPECT_GT(max_span, 900.0);
}

TEST_F(TestgenTest, SinksStayInsideFloorplan) {
  TestcaseOptions o;
  o.sinks = 60;
  for (const char* name : {"CLS1v1", "CLS1v2", "CLS2v1"}) {
    const network::Design d = makeTestcase(tech_, name, o);
    for (const int s : d.tree.sinks())
      EXPECT_TRUE(d.floorplan.contains(d.tree.node(s).pos))
          << name << " sink " << s;
  }
  EXPECT_THROW(makeTestcase(tech_, "bogus", o), std::invalid_argument);
}

TEST_F(TestgenTest, DeterministicBySeed) {
  TestcaseOptions o;
  o.sinks = 50;
  o.seed = 123;
  const network::Design a = makeCls1(tech_, "v1", o);
  const network::Design b = makeCls1(tech_, "v1", o);
  EXPECT_EQ(a.tree.numNodes(), b.tree.numNodes());
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
  o.seed = 124;
  const network::Design c = makeCls1(tech_, "v1", o);
  EXPECT_NE(a.tree.node(a.tree.sinks()[0]).pos.x,
            c.tree.node(c.tree.sinks()[0]).pos.x);
}

TEST_F(TestgenTest, MaxPairsCapKeepsMostCritical) {
  TestcaseOptions o;
  o.sinks = 80;
  o.max_pairs = 40;
  const network::Design d = makeCls1(tech_, "v1", o);
  EXPECT_LE(d.pairs.size(), 40u);
  // Capping keeps the heaviest pairs: all kept weights >= some floor.
  double min_kept = 1e18;
  for (const network::SinkPair& p : d.pairs)
    min_kept = std::min(min_kept, p.weight);
  EXPECT_GT(min_kept, 0.2);
}

TEST_F(TestgenTest, BestScenarioOptionImprovesOrMatches) {
  TestcaseOptions base;
  base.sinks = 60;
  base.max_pairs = 60;
  const network::Design plain = makeCls1(tech_, "v1", base);
  TestcaseOptions best = base;
  best.select_best_scenario = true;
  const network::Design chosen = makeCls1(tech_, "v1", best);
  const sta::Timer timer(tech_);
  EXPECT_LE(sta::sumNormalizedSkewVariation(chosen, timer),
            sta::sumNormalizedSkewVariation(plain, timer) + 1e-6);
  // Same structural inputs regardless of scenario.
  EXPECT_EQ(chosen.tree.sinks().size(), plain.tree.sinks().size());
  EXPECT_EQ(chosen.pairs.size(), plain.pairs.size());
}

TEST_F(TestgenTest, ArtificialCaseLastStage) {
  geom::Rng rng(5);
  const ArtificialCase ac = makeArtificialCase(tech_, rng, true);
  ASSERT_GE(ac.target, 0);
  const auto& kids = ac.design.tree.node(ac.target).children;
  EXPECT_GE(kids.size(), 20u);
  EXPECT_LE(kids.size(), 40u);
  for (const int c : kids)
    EXPECT_EQ(ac.design.tree.node(c).kind, network::NodeKind::Sink);
  std::string err;
  EXPECT_TRUE(ac.design.tree.validate(&err)) << err;
  EXPECT_GT(ac.design.routing.numNets(), 0u);
}

TEST_F(TestgenTest, ArtificialCaseMidStageHasTwoDownstreamLevels) {
  geom::Rng rng(6);
  const ArtificialCase ac = makeArtificialCase(tech_, rng, false);
  const auto& kids = ac.design.tree.node(ac.target).children;
  EXPECT_GE(kids.size(), 1u);
  EXPECT_LE(kids.size(), 5u);
  bool has_grandchildren = false;
  for (const int c : kids)
    if (!ac.design.tree.node(c).children.empty()) has_grandchildren = true;
  EXPECT_TRUE(has_grandchildren);
}

TEST_F(TestgenTest, ArtificialCasesSpanPaperParameterRanges) {
  // Fanout 1-5 / 20-40 and bbox aspect 0.5-1 per the paper's Sec 4.2.
  geom::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const bool last = (i % 3 == 0);
    const ArtificialCase ac = makeArtificialCase(tech_, rng, last);
    geom::BBox box;
    for (const int c : ac.design.tree.node(ac.target).children)
      box.add(ac.design.tree.node(c).pos);
    if (ac.design.tree.node(ac.target).children.size() >= 2) {
      EXPECT_GT(box.rect().aspect(), 0.05);
    }
  }
}

}  // namespace
}  // namespace skewopt::testgen
