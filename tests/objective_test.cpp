#include "core/objective.h"

#include <gtest/gtest.h>

#include "testgen/testgen.h"

namespace skewopt::core {
namespace {

class ObjectiveTest : public ::testing::Test {
 protected:
  static network::Design makeDesign() {
    testgen::TestcaseOptions o;
    o.sinks = 60;
    return testgen::makeCls1(sharedTech(), "v1", o);
  }
  static const tech::TechModel& sharedTech() {
    static tech::TechModel t = tech::TechModel::make28nm();
    return t;
  }
  sta::Timer timer_{sharedTech()};
};

TEST_F(ObjectiveTest, AlphaNominalIsOne) {
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  ASSERT_EQ(obj.alphas().size(), d.corners.size());
  EXPECT_DOUBLE_EQ(obj.alphas()[0], 1.0);
  // Alphas normalize other corners toward c0's skew scale: positive and of
  // order one.
  for (std::size_t ki = 1; ki < obj.alphas().size(); ++ki) {
    EXPECT_GT(obj.alphas()[ki], 0.2);
    EXPECT_LT(obj.alphas()[ki], 5.0);
  }
}

TEST_F(ObjectiveTest, AlphaActuallyNormalizes) {
  // By construction of alpha, sum(|skew_c0|) == alpha_k * sum(|skew_ck|).
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const std::vector<sta::CornerTiming> t = timer_.analyzeDesign(d);
  std::vector<double> sums(d.corners.size(), 0.0);
  for (const network::SinkPair& p : d.pairs)
    for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
      sums[ki] += std::abs(
          t[ki].arrival[static_cast<std::size_t>(p.launch)] -
          t[ki].arrival[static_cast<std::size_t>(p.capture)]);
  for (std::size_t ki = 1; ki < d.corners.size(); ++ki)
    EXPECT_NEAR(sums[0], obj.alphas()[ki] * sums[ki], 1e-6 * sums[0]);
}

TEST_F(ObjectiveTest, PairVIsMaxOverCornerPairs) {
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const std::vector<double>& a = obj.alphas();
  const std::vector<double> skew = {10.0, 25.0, -5.0};
  double expect = 0.0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = i + 1; j < 3; ++j)
      expect = std::max(expect, std::abs(a[i] * skew[i] - a[j] * skew[j]));
  EXPECT_DOUBLE_EQ(obj.pairV(skew), expect);
  // Identical normalized skews => zero variation.
  EXPECT_NEAR(obj.pairV({7.0, 7.0 / a[1], 7.0 / a[2]}), 0.0, 1e-9);
}

TEST_F(ObjectiveTest, EvaluateConsistentWithLatencies) {
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const VariationReport r1 = obj.evaluate(d, timer_);
  const std::vector<sta::CornerTiming> t = timer_.analyzeDesign(d);
  std::vector<std::vector<double>> lat(t.size());
  for (std::size_t ki = 0; ki < t.size(); ++ki) lat[ki] = t[ki].arrival;
  const VariationReport r2 = obj.evaluateFromLatencies(d, lat);
  EXPECT_DOUBLE_EQ(r1.sum_variation_ps, r2.sum_variation_ps);
  EXPECT_EQ(r1.v_pair_ps, r2.v_pair_ps);
  EXPECT_EQ(r1.local_skew_ps, r2.local_skew_ps);
}

TEST_F(ObjectiveTest, ReportInternallyConsistent) {
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const VariationReport r = obj.evaluate(d, timer_);
  ASSERT_EQ(r.v_pair_ps.size(), d.pairs.size());
  double sum = 0.0;
  for (const double v : r.v_pair_ps) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, r.sum_variation_ps, 1e-6);
  // Local skew is the max |skew| over pairs per corner.
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    double mx = 0.0;
    for (const double s : r.skew_ps[ki]) mx = std::max(mx, std::abs(s));
    EXPECT_DOUBLE_EQ(mx, r.local_skew_ps[ki]);
  }
}

TEST_F(ObjectiveTest, UniformLatencyShiftLeavesVariationUnchanged) {
  // Adding a constant to every latency at one corner cancels in skew.
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const std::vector<sta::CornerTiming> t = timer_.analyzeDesign(d);
  std::vector<std::vector<double>> lat(t.size());
  for (std::size_t ki = 0; ki < t.size(); ++ki) lat[ki] = t[ki].arrival;
  const double base = obj.evaluateFromLatencies(d, lat).sum_variation_ps;
  for (double& v : lat[1]) v += 123.0;
  EXPECT_NEAR(obj.evaluateFromLatencies(d, lat).sum_variation_ps, base,
              1e-6);
}

TEST_F(ObjectiveTest, SkewPerturbationRaisesVariation) {
  // Slowing one sink's latency at one corner only must raise the sum.
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  const std::vector<sta::CornerTiming> t = timer_.analyzeDesign(d);
  std::vector<std::vector<double>> lat(t.size());
  for (std::size_t ki = 0; ki < t.size(); ++ki) lat[ki] = t[ki].arrival;
  const double base = obj.evaluateFromLatencies(d, lat).sum_variation_ps;
  lat[1][static_cast<std::size_t>(d.pairs.front().launch)] += 400.0;
  EXPECT_GT(obj.evaluateFromLatencies(d, lat).sum_variation_ps, base);
}

TEST_F(ObjectiveTest, MatchesStandaloneVariationHelper) {
  // sta::sumNormalizedSkewVariation (used by CTS scenario selection)
  // recomputes alphas from the current state; at the Objective's
  // construction point both must agree exactly.
  const network::Design d = makeDesign();
  const Objective obj(d, timer_);
  EXPECT_NEAR(obj.evaluate(d, timer_).sum_variation_ps,
              sta::sumNormalizedSkewVariation(d, timer_), 1e-6);
}

TEST_F(ObjectiveTest, RequiresActiveCorners) {
  network::Design d("x", &sharedTech(), {0, 0});
  EXPECT_THROW(Objective(d, timer_), std::invalid_argument);
}

}  // namespace
}  // namespace skewopt::core
