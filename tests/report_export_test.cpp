// Tests for the reporting and ECO-export utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "core/flow.h"
#include "network/eco_export.h"
#include "network/io.h"
#include "sta/report.h"
#include "testgen/testgen.h"

namespace skewopt {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

network::Design makeDesign(std::uint64_t seed = 1) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  o.max_pairs = 60;
  o.seed = seed;
  return testgen::makeCls1(sharedTech(), "v1", o);
}

TEST(TimingReport, ContainsEveryCornerAndSummary) {
  const network::Design d = makeDesign();
  const sta::Timer timer(sharedTech());
  std::ostringstream os;
  sta::writeTimingReport(os, d, timer);
  const std::string r = os.str();
  for (const std::size_t k : d.corners)
    EXPECT_NE(r.find("corner " + sharedTech().corner(k).name),
              std::string::npos);
  EXPECT_NE(r.find("sum of normalized skew variations"), std::string::npos);
  EXPECT_NE(r.find("worst skew pairs"), std::string::npos);
  EXPECT_NE(r.find("global skew"), std::string::npos);
}

TEST(TimingReport, VerboseListsEverySink) {
  const network::Design d = makeDesign(2);
  const sta::Timer timer(sharedTech());
  sta::ReportOptions o;
  o.per_sink_latency = true;
  std::ostringstream os;
  sta::writeTimingReport(os, d, timer, o);
  const std::string r = os.str();
  for (const int s : d.tree.sinks())
    EXPECT_NE(r.find(d.tree.node(s).name), std::string::npos);
}

TEST(EcoExport, IdenticalDesignsEmitNothing) {
  const network::Design d = makeDesign(3);
  std::ostringstream os;
  const network::EcoDiffStats s = network::writeEcoScript(d, d, os);
  EXPECT_EQ(s.total(), 0u);
}

TEST(EcoExport, CapturesEveryMoveKind) {
  network::Design before = makeDesign(4);
  network::Design after = before;

  // One of each primitive edit.
  const std::vector<int> bufs = after.tree.buffers();
  const int moved = bufs[2];
  const geom::Point p = after.tree.node(moved).pos;
  after.tree.moveNode(moved, {p.x + 20, p.y});
  const int resized = bufs[3];
  after.tree.resize(resized, (after.tree.node(resized).cell + 1) %
                                 static_cast<int>(sharedTech().numCells()));
  const int inserted =
      after.tree.addBuffer(bufs[0], {100, 100}, 1, "eco_new_buf");
  (void)inserted;
  after.routing.rebuildAll(after.tree);
  after.routing.addExtra(bufs[1], 0, 44.0);

  std::ostringstream os;
  const network::EcoDiffStats s = network::writeEcoScript(before, after, os);
  const std::string script = os.str();
  EXPECT_EQ(s.moved, 1u);
  EXPECT_EQ(s.resized, 1u);
  EXPECT_EQ(s.inserted_buffers, 1u);
  EXPECT_GE(s.detours, 1u);
  EXPECT_NE(script.find("move_cell " + after.tree.node(moved).name),
            std::string::npos);
  EXPECT_NE(script.find("size_cell " + after.tree.node(resized).name),
            std::string::npos);
  EXPECT_NE(script.find("insert_buffer eco_new_buf"), std::string::npos);
  EXPECT_NE(script.find("add_route_detour"), std::string::npos);
}

TEST(EcoExport, RemovalAndReconnect) {
  network::Design before = makeDesign(5);
  network::Design after = before;
  // Remove an interior buffer if one exists; otherwise reassign a sink.
  int interior = -1;
  for (const int b : after.tree.buffers())
    if (after.tree.node(b).children.size() == 1) interior = b;
  ASSERT_GE(interior, 0);
  const std::string interior_name = after.tree.node(interior).name;
  after.tree.removeInteriorBuffer(interior);
  after.routing.eraseNet(interior);
  after.routing.rebuildAll(after.tree);

  std::ostringstream os;
  const network::EcoDiffStats s = network::writeEcoScript(before, after, os);
  EXPECT_EQ(s.removed_buffers, 1u);
  EXPECT_GE(s.reconnected, 1u);  // the spliced child changed drivers
  EXPECT_NE(os.str().find("remove_buffer " + interior_name),
            std::string::npos);
}

TEST(EcoExport, SurvivesFileRoundTripOfBothSides) {
  // Ids get remapped by save/load; the diff matches by name and must stay
  // meaningful (no sinks reported as insertions).
  network::Design before = makeDesign(6);
  network::Design after = before;
  const std::vector<core::Move> moves = core::enumerateAllMoves(after);
  for (int i = 0; i < 5 && i < static_cast<int>(moves.size()); ++i)
    core::applyMove(after, moves[static_cast<std::size_t>(i) * 7]);

  std::stringstream sb, sa;
  network::writeDesign(before, sb);
  network::writeDesign(after, sa);
  const network::Design rb = network::readDesign(sharedTech(), sb);
  const network::Design ra = network::readDesign(sharedTech(), sa);

  std::ostringstream direct, reloaded;
  const network::EcoDiffStats s1 =
      network::writeEcoScript(before, after, direct);
  const network::EcoDiffStats s2 =
      network::writeEcoScript(rb, ra, reloaded);
  EXPECT_EQ(s1.moved, s2.moved);
  EXPECT_EQ(s1.resized, s2.resized);
  EXPECT_EQ(s1.inserted_buffers, s2.inserted_buffers);
  EXPECT_EQ(s1.reconnected, s2.reconnected);
  EXPECT_EQ(reloaded.str().find("insert_buffer ff_"), std::string::npos)
      << "sinks must never appear as inserted buffers";
}

TEST(EcoExport, FullFlowProducesActionableScript) {
  network::Design before = makeDesign(7);
  network::Design after = before;
  const eco::StageDelayLut lut(sharedTech());
  core::FlowOptions fo;
  fo.local.max_iterations = 2;
  core::Flow flow(sharedTech(), lut, fo);
  flow.run(after, core::FlowMode::kGlobalLocal, nullptr);

  std::ostringstream os;
  const network::EcoDiffStats s = network::writeEcoScript(before, after, os);
  // An accepted optimization must translate into a non-empty ECO script.
  if (after.tree.numNodes() != before.tree.numNodes()) {
    EXPECT_GT(s.inserted_buffers + s.removed_buffers, 0u);
  }
  EXPECT_GT(s.total(), 0u);
}

}  // namespace
}  // namespace skewopt
