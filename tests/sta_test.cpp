#include "sta/timer.h"

#include <gtest/gtest.h>

#include "sta/incremental.h"

#include "network/design.h"
#include "rc/rc.h"
#include "testgen/testgen.h"

namespace skewopt::sta {
namespace {

using network::ClockTree;
using network::Design;
using network::Routing;

class StaTest : public ::testing::Test {
 protected:
  tech::TechModel tech_ = tech::TechModel::make28nm();
  Timer timer_{tech_};
};

TEST_F(StaTest, SourceDirectToSinkIsPureWire) {
  ClockTree t({0, 0});
  t.addSink(0, {100, 0});
  Routing r(0.0);  // jogless for exact hand-check
  r.rebuildAll(t);
  const CornerTiming ct = timer_.analyze(t, r, 0);
  const tech::WireParams& w = tech_.wire(0);
  const double expect =
      rc::uniformWireElmore(100.0, w.res_kohm_per_um, w.cap_ff_per_um,
                            tech_.sinkCapFf(0));
  EXPECT_NEAR(ct.arrival[1], expect, 1e-9);
  EXPECT_GT(ct.slew[1], timer_.sourceSlew());  // wire degrades slew
}

TEST_F(StaTest, BufferAddsTableDelay) {
  ClockTree t({0, 0});
  const int b = t.addBuffer(0, {0, 0}, 2);  // colocated: no wire to buffer
  t.addSink(b, {50, 0});
  Routing r(0.0);
  r.rebuildAll(t);
  const CornerTiming ct = timer_.analyze(t, r, 0);
  const tech::WireParams& w = tech_.wire(0);
  const double load =
      50.0 * w.cap_ff_per_um + tech_.sinkCapFf(0);
  const double gate =
      tech_.cell(2).delay[0].lookup(timer_.sourceSlew(), load);
  const double wire = rc::uniformWireElmore(
      50.0, w.res_kohm_per_um, w.cap_ff_per_um, tech_.sinkCapFf(0));
  EXPECT_NEAR(ct.arrival[2], gate + wire, 1e-6);
  EXPECT_NEAR(ct.driver_load[b], load, 1e-9);
}

TEST_F(StaTest, CornerOrderingOnGateDominatedPath) {
  // A buffer chain with negligible wire: latency tracks the gate derate,
  // so c1 (ss 0.75V) is slowest and c3 (ff 1.32V) fastest.
  ClockTree t({0, 0});
  int prev = 0;
  for (int i = 0; i < 6; ++i) prev = t.addBuffer(prev, {2.0 * i, 0}, 2);
  const int s = t.addSink(prev, {14, 0});
  Routing r(0.0);
  r.rebuildAll(t);
  const double l0 = timer_.analyze(t, r, 0).arrival[static_cast<std::size_t>(s)];
  const double l1 = timer_.analyze(t, r, 1).arrival[static_cast<std::size_t>(s)];
  const double l2 = timer_.analyze(t, r, 2).arrival[static_cast<std::size_t>(s)];
  const double l3 = timer_.analyze(t, r, 3).arrival[static_cast<std::size_t>(s)];
  EXPECT_GT(l1, l0);
  EXPECT_LT(l2, l0);
  EXPECT_LT(l3, l2);
}

TEST_F(StaTest, WireAndGatePathsScaleDifferently) {
  // The essential multi-corner property: a wire-heavy path's c2/c0 latency
  // ratio is much larger than a gate-heavy path's.
  ClockTree gate_tree({0, 0});
  int prev = 0;
  for (int i = 0; i < 8; ++i) prev = gate_tree.addBuffer(prev, {i * 1.0, 0}, 1);
  const int gs = gate_tree.addSink(prev, {9, 0});
  Routing gr(0.0);
  gr.rebuildAll(gate_tree);

  ClockTree wire_tree({0, 0});
  const int wb = wire_tree.addBuffer(0, {0, 0}, 4);
  const int ws = wire_tree.addSink(wb, {400, 0});
  (void)wb;
  Routing wr(0.0);
  wr.rebuildAll(wire_tree);

  const double g0 = timer_.analyze(gate_tree, gr, 0).arrival[static_cast<std::size_t>(gs)];
  const double g2 = timer_.analyze(gate_tree, gr, 2).arrival[static_cast<std::size_t>(gs)];
  const double w0 = timer_.analyze(wire_tree, wr, 0).arrival[static_cast<std::size_t>(ws)];
  const double w2 = timer_.analyze(wire_tree, wr, 2).arrival[static_cast<std::size_t>(ws)];
  EXPECT_GT(w2 / w0, g2 / g0 + 0.1);
}

TEST_F(StaTest, ArcDelaysSumToSinkLatency) {
  geom::Rng rng(31);
  ClockTree t({0, 0});
  std::vector<int> bufs = {t.addBuffer(0, {20, 20}, 2)};
  for (int i = 0; i < 20; ++i)
    bufs.push_back(t.addBuffer(bufs[rng.index(bufs.size())],
                               rng.pointIn(geom::Rect{0, 0, 300, 300}),
                               static_cast<int>(1 + rng.index(4))));
  std::vector<int> sinks;
  for (int i = 0; i < 25; ++i)
    sinks.push_back(t.addSink(bufs[rng.index(bufs.size())],
                              rng.pointIn(geom::Rect{0, 0, 300, 300})));
  Routing r;
  r.rebuildAll(t);
  const CornerTiming ct = timer_.analyze(t, r, 1);

  const std::vector<network::Arc> arcs = t.extractArcs();
  std::vector<int> arc_by_dst(t.numNodes(), -1);
  for (const network::Arc& a : arcs)
    arc_by_dst[static_cast<std::size_t>(a.dst)] = a.id;
  for (const int s : sinks) {
    double sum = 0.0;
    int cur = s;
    while (cur != t.root()) {
      const network::Arc& a =
          arcs[static_cast<std::size_t>(arc_by_dst[static_cast<std::size_t>(cur)])];
      sum += ct.arrival[static_cast<std::size_t>(a.dst)] -
             ct.arrival[static_cast<std::size_t>(a.src)];
      cur = a.src;
    }
    EXPECT_NEAR(sum, ct.arrival[static_cast<std::size_t>(s)], 1e-6);
  }
}

TEST_F(StaTest, MovingSinkFartherIncreasesItsLatency) {
  ClockTree t({0, 0});
  const int b = t.addBuffer(0, {10, 10}, 2);
  const int s1 = t.addSink(b, {40, 10});
  t.addSink(b, {20, 30});
  Routing r(0.0);
  r.rebuildAll(t);
  const double before =
      timer_.analyze(t, r, 0).arrival[static_cast<std::size_t>(s1)];
  t.moveNode(s1, {140, 10});
  r.rebuildAround(t, s1);
  const double after =
      timer_.analyze(t, r, 0).arrival[static_cast<std::size_t>(s1)];
  EXPECT_GT(after, before);
}

TEST_F(StaTest, WorstLoadRatioFlagsOverload) {
  ClockTree t({0, 0});
  const int b = t.addBuffer(0, {0, 0}, 0);  // weakest cell
  for (int i = 0; i < 40; ++i) t.addSink(b, {100.0 + i, 100.0});
  Routing r;
  r.rebuildAll(t);
  EXPECT_GT(timer_.worstLoadRatio(t, r, 0), 1.0);

  ClockTree ok({0, 0});
  const int b2 = ok.addBuffer(0, {0, 0}, 4);
  ok.addSink(b2, {20, 0});
  Routing r2;
  r2.rebuildAll(ok);
  EXPECT_LT(timer_.worstLoadRatio(ok, r2, 0), 1.0);
}

TEST_F(StaTest, PowerAndAreaAccounting) {
  Design d("t", &tech_, {0, 0});
  d.corners = {0, 1};
  const int b = d.tree.addBuffer(0, {10, 0}, 2);
  d.tree.addSink(b, {50, 0});
  d.routing.rebuildAll(d.tree);
  const double p1 = clockTreePowerMw(d, 0);
  const double a1 = clockCellAreaUm2(d);
  EXPECT_GT(p1, 0.0);
  EXPECT_DOUBLE_EQ(a1, tech_.cell(2).area_um2);
  // Another buffer adds power and area.
  const int b2 = d.tree.addBuffer(b, {30, 0}, 3);
  d.tree.reassignDriver(2, b2);
  d.routing.rebuildAll(d.tree);
  EXPECT_GT(clockTreePowerMw(d, 0), p1);
  EXPECT_GT(clockCellAreaUm2(d), a1);
}

TEST_F(StaTest, SinkLatenciesMatchesAnalyze) {
  ClockTree t({0, 0});
  const int b = t.addBuffer(0, {10, 10}, 2);
  const int s1 = t.addSink(b, {40, 10});
  const int s2 = t.addSink(b, {20, 30});
  Routing r;
  r.rebuildAll(t);
  const CornerTiming ct = timer_.analyze(t, r, 2);
  const std::vector<double> lat = timer_.sinkLatencies(t, r, 2, {s1, s2});
  EXPECT_DOUBLE_EQ(lat[0], ct.arrival[static_cast<std::size_t>(s1)]);
  EXPECT_DOUBLE_EQ(lat[1], ct.arrival[static_cast<std::size_t>(s2)]);
}

TEST_F(StaTest, SlewPropagatesMonotonically) {
  // Along a chain without buffers the slew only degrades (PERI adds in
  // quadrature); buffers restore it.
  ClockTree t({0, 0});
  const int s = t.addSink(0, {600, 0});
  Routing r(0.0);
  r.rebuildAll(t);
  const CornerTiming ct = timer_.analyze(t, r, 0);
  EXPECT_GT(ct.slew[static_cast<std::size_t>(s)], timer_.sourceSlew());
}

TEST_F(StaTest, MissingNetThrows) {
  ClockTree t({0, 0});
  t.addSink(0, {10, 0});
  Routing r;  // never rebuilt
  EXPECT_THROW(timer_.analyze(t, r, 0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Corner-batched propagation differentials: propagateFromAllCorners must
// match one propagateFrom per corner bit for bit (EXPECT_EQ on doubles).
// ---------------------------------------------------------------------------

void expectTimingsIdentical(const CornerTiming& a, const CornerTiming& b,
                            const char* what) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size()) << what;
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    EXPECT_EQ(a.arrival[i], b.arrival[i]) << what << " arrival node " << i;
    EXPECT_EQ(a.slew[i], b.slew[i]) << what << " slew node " << i;
    EXPECT_EQ(a.in_arrival[i], b.in_arrival[i])
        << what << " in_arrival node " << i;
    EXPECT_EQ(a.in_slew[i], b.in_slew[i]) << what << " in_slew node " << i;
    EXPECT_EQ(a.driver_load[i], b.driver_load[i])
        << what << " driver_load node " << i;
  }
}

// Parameterized over the three CLS testcases; the batched full analysis of
// every active corner must equal the scalar per-corner analyses.
class BatchPropagationDiff : public ::testing::TestWithParam<const char*> {};
TEST_P(BatchPropagationDiff, FullDesignAllCornersBitIdentical) {
  const tech::TechModel tech = tech::TechModel::make28nm();
  const Timer timer(tech);
  testgen::TestcaseOptions o;
  o.sinks = 48;
  o.max_pairs = 60;
  const network::Design d = testgen::makeTestcase(tech, GetParam(), o);
  const std::vector<CornerTiming> batched = timer.analyzeDesign(d);
  ASSERT_EQ(batched.size(), d.corners.size());
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    const CornerTiming scalar =
        timer.analyze(d.tree, d.routing, d.corners[ki]);
    expectTimingsIdentical(batched[ki], scalar, GetParam());
  }
}
INSTANTIATE_TEST_SUITE_P(ClsCases, BatchPropagationDiff,
                         ::testing::Values("CLS1v1", "CLS1v2", "CLS2v1"));

TEST_F(StaTest, BatchSubtreePropagationBitIdentical) {
  // Re-propagating a buffer subtree through the batched path must leave
  // exactly the same state as the per-corner scalar path.
  testgen::TestcaseOptions o;
  o.sinks = 32;
  const Design d = testgen::makeCls1(tech_, "v1", o);
  std::vector<CornerTiming> scalar;
  for (const std::size_t k : d.corners)
    scalar.push_back(timer_.analyze(d.tree, d.routing, k));
  std::vector<CornerTiming> batched = scalar;  // same pre-state

  // Pick the first buffer with children as the dirty root.
  int start = -1;
  for (std::size_t i = 0; i < d.tree.numNodes() && start < 0; ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) continue;
    const auto& n = d.tree.node(id);
    if (n.kind == network::NodeKind::Buffer && !n.children.empty()) start = id;
  }
  ASSERT_GE(start, 0);

  PropagateScratch scratch;
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    timer_.propagateFrom(d.tree, d.routing, d.corners[ki], start,
                         &scalar[ki], &scratch);
  PropagateScratch batch_scratch;
  timer_.propagateFromAllCorners(d.tree, d.routing, d.corners, start,
                                 batched, &batch_scratch);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    expectTimingsIdentical(batched[ki], scalar[ki], "subtree");
}

TEST_F(StaTest, SeededTimerBitIdenticalToFullAnalysis) {
  // The cross-job warm-start entry point: seed an IncrementalTimer from a
  // prior run's timing snapshot and re-propagate only the edit-dirtied
  // subtree. The result must be bit-identical to a full analysis of the
  // edited design.
  testgen::TestcaseOptions o;
  o.sinks = 32;
  Design d = testgen::makeCls1(tech_, "v1", o);
  const IncrementalTimer full(tech_, d);

  // No edit, empty dirty set: the seed IS the timing state.
  const IncrementalTimer same(tech_, d, full.timings(), {});
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    expectTimingsIdentical(same.timing(ki), full.timing(ki), "no-edit seed");

  // Move a sink (the DELTA moved-sink edit), dirty its parent's subtree.
  const int sink = d.tree.sinks().front();
  const int parent = d.tree.node(sink).parent;
  ASSERT_GE(parent, 0);
  const geom::Point at = d.tree.node(sink).pos;
  d.tree.moveNode(sink, {at.x + 3.0, at.y + 2.0});
  d.routing.rebuildAround(d.tree, sink);
  const IncrementalTimer fresh(tech_, d);
  const IncrementalTimer seeded(tech_, d, full.timings(), {parent});
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    expectTimingsIdentical(seeded.timing(ki), fresh.timing(ki),
                           "moved-sink seed");

  // Shape guards: wrong corner count or node count is rejected, never
  // silently mistimed.
  std::vector<CornerTiming> short_snapshot = full.timings();
  short_snapshot.pop_back();
  EXPECT_THROW(IncrementalTimer(tech_, d, short_snapshot, {}),
               std::invalid_argument);
  std::vector<CornerTiming> narrow = full.timings();
  narrow[0].arrival.pop_back();
  EXPECT_THROW(IncrementalTimer(tech_, d, narrow, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace skewopt::sta
