#include "rc/rc.h"

#include <gtest/gtest.h>

#include "geom/geom.h"

namespace skewopt::rc {
namespace {

TEST(RcTree, SingleLumpElmore) {
  RcTree t;
  const std::size_t n = t.addNode(0, 2.0, 5.0);  // 2 kOhm into 5 fF
  const std::vector<double> d = elmoreDelays(t);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[n], 10.0);  // R*C = 10 ps
}

TEST(RcTree, ChainElmoreHandComputed) {
  // root -R1=1-> a(2fF) -R2=3-> b(4fF)
  RcTree t;
  const std::size_t a = t.addNode(0, 1.0, 2.0);
  const std::size_t b = t.addNode(a, 3.0, 4.0);
  const std::vector<double> d = elmoreDelays(t);
  // Elmore(a) = R1*(2+4) = 6; Elmore(b) = 6 + R2*4 = 18.
  EXPECT_DOUBLE_EQ(d[a], 6.0);
  EXPECT_DOUBLE_EQ(d[b], 18.0);
}

TEST(RcTree, BranchingElmoreSharedResistance) {
  // root -R=2-> s(1fF) with two children: x(3fF via 1k), y(5fF via 4k).
  RcTree t;
  const std::size_t s = t.addNode(0, 2.0, 1.0);
  const std::size_t x = t.addNode(s, 1.0, 3.0);
  const std::size_t y = t.addNode(s, 4.0, 5.0);
  const std::vector<double> d = elmoreDelays(t);
  const double ds = 2.0 * (1 + 3 + 5);
  EXPECT_DOUBLE_EQ(d[s], ds);
  EXPECT_DOUBLE_EQ(d[x], ds + 1.0 * 3.0);
  EXPECT_DOUBLE_EQ(d[y], ds + 4.0 * 5.0);
}

TEST(RcTree, AddCapIncreasesUpstreamDelay) {
  RcTree t;
  const std::size_t a = t.addNode(0, 1.0, 1.0);
  const std::size_t b = t.addNode(a, 1.0, 1.0);
  const double before = elmoreDelays(t)[b];
  t.addCap(b, 10.0);
  EXPECT_GT(elmoreDelays(t)[b], before);
  EXPECT_DOUBLE_EQ(t.totalCap(), 12.0);
}

TEST(Moments, FirstMomentIsNegElmore) {
  RcTree t;
  const std::size_t a = t.addNode(0, 2.0, 3.0);
  const std::size_t b = t.addNode(a, 1.0, 7.0);
  const Moments m = Moments::compute(t);
  const std::vector<double> d = elmoreDelays(t);
  EXPECT_DOUBLE_EQ(-m.m1[a], d[a]);
  EXPECT_DOUBLE_EQ(-m.m1[b], d[b]);
  EXPECT_GT(m.m2[b], 0.0);  // second moment positive for RC trees
}

TEST(D2m, SingleLumpMatchesTheory) {
  // One-pole RC: m1 = -RC, m2 = (RC)^2, D2M = RC * ln2 (the exact median of
  // the single-pole response).
  RcTree t;
  const std::size_t n = t.addNode(0, 2.0, 5.0);
  const std::vector<double> d = d2mDelays(t);
  EXPECT_NEAR(d[n], 10.0 * 0.6931471805599453, 1e-9);
}

TEST(D2m, NeverExceedsElmoreOnTrees) {
  // D2M <= Elmore is the metric's design property on RC trees.
  geom::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    RcTree t;
    std::vector<std::size_t> nodes = {0};
    for (int i = 0; i < 12; ++i)
      nodes.push_back(t.addNode(nodes[rng.index(nodes.size())],
                                rng.uniform(0.1, 3.0),
                                rng.uniform(0.5, 10.0)));
    const std::vector<double> e = elmoreDelays(t);
    const std::vector<double> d = d2mDelays(t);
    for (std::size_t n = 1; n < t.size(); ++n)
      EXPECT_LE(d[n], e[n] + 1e-9) << "trial " << trial << " node " << n;
  }
}

TEST(Peri, ExtendsSlewQuadratically) {
  EXPECT_DOUBLE_EQ(periSlew(0.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(periSlew(6.0, 8.0), 10.0);
  EXPECT_DOUBLE_EQ(periSlew(5.0, 0.0), 5.0);
}

TEST(Peri, WireSlewLn9) {
  EXPECT_NEAR(wireSlewFromElmore(10.0), 21.972245773362196, 1e-9);
}

TEST(UniformWire, PiModelFormula) {
  // 100um at 0.002 kOhm/um & 0.2 fF/um into 10 fF:
  // R = 0.2 kOhm, C = 20 fF, delay = 0.2 * (10 + 10) = 4 ps.
  EXPECT_DOUBLE_EQ(uniformWireElmore(100.0, 0.002, 0.2, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(uniformWireElmore(0.0, 0.002, 0.2, 10.0), 0.0);
}

TEST(UniformWire, QuadraticInLength) {
  const double d1 = uniformWireElmore(100.0, 0.002, 0.2, 0.0);
  const double d2 = uniformWireElmore(200.0, 0.002, 0.2, 0.0);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);  // pure-wire delay is quadratic
}

TEST(RcTree, RejectsBadParent) {
  RcTree t;
  EXPECT_THROW(t.addNode(5, 1.0, 1.0), std::out_of_range);
}

// Property: Elmore delay is monotone under any cap increase anywhere on the
// node's root path side (adding cap anywhere never decreases any delay).
class ElmoreMonotoneProp : public ::testing::TestWithParam<int> {};
TEST_P(ElmoreMonotoneProp, CapIncreaseNeverSpeedsUp) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
  RcTree t;
  std::vector<std::size_t> nodes = {0};
  for (int i = 0; i < 10; ++i)
    nodes.push_back(t.addNode(nodes[rng.index(nodes.size())],
                              rng.uniform(0.1, 2.0), rng.uniform(0.5, 6.0)));
  const std::vector<double> before = elmoreDelays(t);
  const std::size_t bump = nodes[rng.index(nodes.size())];
  t.addCap(bump, 5.0);
  const std::vector<double> after = elmoreDelays(t);
  for (std::size_t n = 0; n < t.size(); ++n)
    EXPECT_GE(after[n] + 1e-12, before[n]);
}
INSTANTIATE_TEST_SUITE_P(Seeds, ElmoreMonotoneProp, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// SoA batch kernels: every lane must be bit-identical (EXPECT_EQ on
// doubles, exact) to the scalar pass on the equivalent single-lane tree.
// ---------------------------------------------------------------------------

/// Builds a random tree as `lanes` scalar RcTrees (one per lane, with
/// per-lane R/C scaling) plus the equivalent RcTreeBatch.
struct LaneFixture {
  std::vector<RcTree> scalar;
  RcTreeBatch batch;

  LaneFixture(std::uint64_t seed, std::size_t lanes, int n_nodes)
      : scalar(lanes), batch(lanes) {
    geom::Rng rng(seed);
    std::vector<std::size_t> nodes = {0};
    std::vector<double> res(lanes), cap(lanes);
    for (int i = 0; i < n_nodes; ++i) {
      const std::size_t parent = nodes[rng.index(nodes.size())];
      const double r = rng.uniform(0.05, 0.5);
      const double c = rng.uniform(0.5, 5.0);
      for (std::size_t k = 0; k < lanes; ++k) {
        const double s = 0.8 + 0.13 * static_cast<double>(k);
        res[k] = r * s;
        cap[k] = c / s;
        scalar[k].addNode(parent, res[k], cap[k]);
      }
      nodes.push_back(batch.addNode(parent, res.data(), cap.data()));
    }
    // Extra pin caps at a few nodes, per lane.
    for (int i = 0; i < 5; ++i) {
      const std::size_t at = nodes[rng.index(nodes.size())];
      const double c = rng.uniform(0.5, 3.0);
      for (std::size_t k = 0; k < lanes; ++k) {
        cap[k] = c * (1.0 + 0.07 * static_cast<double>(k));
        scalar[k].addCap(at, cap[k]);
      }
      batch.addCap(at, cap.data());
    }
  }
};

TEST(RcTreeBatch, MomentsBitIdenticalToScalarPerLane) {
  const LaneFixture f(11, 4, 40);
  MomentsBatch mb;
  std::vector<double> scratch;
  elmoreMomentsBatch(f.batch, mb, scratch);
  for (std::size_t k = 0; k < 4; ++k) {
    const Moments m = Moments::compute(f.scalar[k]);
    ASSERT_EQ(mb.m1.size(), m.m1.size() * 4);
    for (std::size_t n = 0; n < m.m1.size(); ++n) {
      EXPECT_EQ(mb.m1[n * 4 + k], m.m1[n]) << "m1 lane " << k << " node " << n;
      EXPECT_EQ(mb.m2[n * 4 + k], m.m2[n]) << "m2 lane " << k << " node " << n;
    }
  }
}

TEST(RcTreeBatch, ElmoreDelaysBitIdenticalToScalarPerLane) {
  const LaneFixture f(29, 3, 25);
  std::vector<double> delays, cdown;
  elmoreDelaysBatch(f.batch, delays, cdown);
  std::vector<double> sd, sc;
  for (std::size_t k = 0; k < 3; ++k) {
    elmoreDelaysInto(f.scalar[k], sd, sc);
    for (std::size_t n = 0; n < sd.size(); ++n)
      EXPECT_EQ(delays[n * 3 + k], sd[n]) << "lane " << k << " node " << n;
  }
}

TEST(RcTreeBatch, TotalCapMatchesScalarPerLane) {
  const LaneFixture f(7, 4, 30);
  double tot[4];
  f.batch.totalCapInto(tot);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(tot[k], f.scalar[k].totalCap());
}

TEST(RcTreeBatch, ResetKeepsLanesAndClears) {
  RcTreeBatch t(2);
  const double r[2] = {1.0, 2.0}, c[2] = {3.0, 4.0};
  t.addNode(0, r, c);
  EXPECT_EQ(t.size(), 2u);
  t.reset(4);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lanes(), 4u);
  EXPECT_THROW(t.addNode(5, r, c), std::out_of_range);
  EXPECT_THROW(t.reset(0), std::invalid_argument);
}

TEST(RcTreeBatch, SingleLaneMatchesRcTreeExactly) {
  // lanes=1 is the degenerate case: the batch tree is the scalar tree.
  RcTree s;
  RcTreeBatch b(1);
  const double r = 2.0, c = 5.0;
  s.addNode(0, r, c);
  b.addNode(0, &r, &c);
  std::vector<double> bd, bc, sd, sc;
  elmoreDelaysBatch(b, bd, bc);
  elmoreDelaysInto(s, sd, sc);
  ASSERT_EQ(bd.size(), sd.size());
  for (std::size_t n = 0; n < sd.size(); ++n) EXPECT_EQ(bd[n], sd[n]);
}

}  // namespace
}  // namespace skewopt::rc
