#include "geom/geom.h"

#include <gtest/gtest.h>

#include <cmath>

namespace skewopt::geom {
namespace {

TEST(Point, ManhattanBasics) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {1, 1}), 4.0);
  EXPECT_DOUBLE_EQ(manhattan({2, 2}, {2, 2}), 0.0);
}

TEST(Point, ManhattanDominatesEuclidean) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Point a = rng.pointIn(Rect{-100, -100, 100, 100});
    const Point b = rng.pointIn(Rect{-100, -100, 100, 100});
    EXPECT_GE(manhattan(a, b) + 1e-12, euclidean(a, b));
    EXPECT_LE(manhattan(a, b), std::sqrt(2.0) * euclidean(a, b) + 1e-9);
  }
}

TEST(Point, LerpEndpointsAndMidpoint) {
  const Point a{0, 0}, b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  const Point mid = lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(Rect, BasicsAndEmptiness) {
  Rect r{0, 0, 10, 5};
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.area(), 50.0);
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
  EXPECT_DOUBLE_EQ(r.aspect(), 0.5);
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_DOUBLE_EQ(Rect{}.area(), 0.0);
}

TEST(Rect, ContainsAndClamp) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_FALSE(r.contains({10.01, 5}));
  const Point c = r.clamp({-3, 15});
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  EXPECT_DOUBLE_EQ(c.y, 10.0);
}

TEST(Rect, IntersectsSymmetric) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15}, c{11, 11, 20, 20};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
}

TEST(Rect, AroundCenter) {
  const Rect r = Rect::around({5, 5}, 2, 3);
  EXPECT_DOUBLE_EQ(r.lx, 3.0);
  EXPECT_DOUBLE_EQ(r.uy, 8.0);
  EXPECT_DOUBLE_EQ(r.center().x, 5.0);
}

TEST(BBox, GrowsOverPoints) {
  BBox b;
  EXPECT_TRUE(b.empty());
  b.add(Point{1, 2});
  b.add(Point{-3, 7});
  b.add(Point{0, 0});
  const Rect r = b.rect();
  EXPECT_DOUBLE_EQ(r.lx, -3.0);
  EXPECT_DOUBLE_EQ(r.ly, 0.0);
  EXPECT_DOUBLE_EQ(r.ux, 1.0);
  EXPECT_DOUBLE_EQ(r.uy, 7.0);
  EXPECT_DOUBLE_EQ(b.halfPerimeter(), 4.0 + 7.0);
}

TEST(Region, LShapeContainsAndArea) {
  Region l({Rect{0, 0, 10, 4}, Rect{0, 4, 4, 10}});
  EXPECT_TRUE(l.contains({8, 2}));
  EXPECT_TRUE(l.contains({2, 8}));
  EXPECT_FALSE(l.contains({8, 8}));
  EXPECT_DOUBLE_EQ(l.area(), 40.0 + 24.0);
  EXPECT_DOUBLE_EQ(l.bbox().area(), 100.0);
}

TEST(Region, ClampPicksNearestRect) {
  Region l({Rect{0, 0, 10, 4}, Rect{0, 4, 4, 10}});
  const Point in = l.clamp({2, 2});
  EXPECT_DOUBLE_EQ(in.x, 2.0);  // already inside: unchanged
  const Point out = l.clamp({9, 9});
  EXPECT_TRUE(l.contains(out));
}

TEST(Snap, GridRounding) {
  EXPECT_DOUBLE_EQ(snap(1.04, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(snap(1.06, 0.1), 1.1);
  EXPECT_DOUBLE_EQ(snap(7.3, 0.0), 7.3);  // zero grid = no snapping
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 32; ++i) {
    const double va = a.uniform();
    EXPECT_DOUBLE_EQ(va, b.uniform());
    EXPECT_GE(va, 0.0);
    EXPECT_LT(va, 1.0);
  }
  // Different seeds diverge quickly.
  int diff = 0;
  Rng a2(42);
  for (int i = 0; i < 16; ++i)
    if (a2.uniform() != c.uniform()) ++diff;
  EXPECT_GT(diff, 8);
}

TEST(Rng, UniformRangeAndIndex) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
    EXPECT_LT(rng.index(13), 13u);
    const int iv = rng.intIn(3, 9);
    EXPECT_GE(iv, 3);
    EXPECT_LE(iv, 9);
  }
}

TEST(Rng, NormalMomentsRoughly) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PointInRegionStaysInside) {
  Region l({Rect{0, 0, 10, 4}, Rect{0, 4, 4, 10}});
  Rng rng(3);
  for (int i = 0; i < 300; ++i) EXPECT_TRUE(l.contains(rng.pointIn(l)));
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a.uniform(), b.uniform());
}

// Property sweep: aspect ratio always in (0, 1].
class RectAspectProp : public ::testing::TestWithParam<int> {};
TEST_P(RectAspectProp, AspectInUnitInterval) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    BBox b;
    b.add(rng.pointIn(Rect{0, 0, 100, 100}));
    b.add(rng.pointIn(Rect{0, 0, 100, 100}));
    const double a = b.rect().aspect();
    EXPECT_GT(a, 0.0 - 1e-12);
    EXPECT_LE(a, 1.0);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, RectAspectProp, ::testing::Range(1, 6));

}  // namespace
}  // namespace skewopt::geom
