#include "core/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/moves.h"
#include "support/thread_pool.h"
#include "testgen/testgen.h"

namespace skewopt::core {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

TEST(Moves, EnumerationMatchesTable2) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  std::size_t type1 = 0, type2 = 0, type3 = 0;
  for (const int b : d.tree.buffers()) {
    for (const Move& m : enumerateMoves(d, b)) {
      switch (m.type) {
        case MoveType::kSizeDisplace:
          ++type1;
          EXPECT_EQ(std::abs(m.delta.x) + std::abs(m.delta.y) > 0, true);
          EXPECT_GE(m.size_step, -1);
          EXPECT_LE(m.size_step, 1);
          break;
        case MoveType::kChildDisplaceSize:
          ++type2;
          EXPECT_GE(m.child, 0);
          EXPECT_NE(m.size_step, 0);
          break;
        case MoveType::kReassign:
          ++type3;
          EXPECT_GE(m.new_parent, 0);
          // Same-level constraint of Table 2.
          EXPECT_EQ(d.tree.level(m.new_parent),
                    d.tree.level(d.tree.node(m.node).parent));
          break;
      }
    }
  }
  EXPECT_GT(type1, 0u);
  EXPECT_GT(type2, 0u);
  // Type-III moves require same-level drivers within 50um; they exist in a
  // clustered design but are rarer.
  EXPECT_GE(type3, 0u);
}

TEST(Moves, PerBufferBudgetNearPaper45) {
  // Figure 6 talks about 45 candidate moves per buffer; our enumeration
  // must be in that ballpark (24 type-I + up to 16 type-II + up to 5
  // type-III).
  testgen::TestcaseOptions o;
  o.sinks = 60;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  for (const int b : d.tree.buffers()) {
    const std::size_t n = enumerateMoves(d, b).size();
    EXPECT_LE(n, 45u);
  }
}

TEST(Moves, ApplyMoveKeepsTreeValidAndReroutes) {
  testgen::TestcaseOptions o;
  o.sinks = 50;
  network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  geom::Rng rng(3);
  const std::vector<Move> moves = enumerateAllMoves(d);
  ASSERT_FALSE(moves.empty());
  for (int i = 0; i < 30; ++i) {
    const Move& m = moves[rng.index(moves.size())];
    network::Design copy = d;
    applyMove(copy, m);
    std::string err;
    ASSERT_TRUE(copy.tree.validate(&err)) << m.describe(d) << ": " << err;
    // Timing still runs (all touched nets rerouted).
    sta::Timer timer(sharedTech());
    EXPECT_NO_THROW(timer.analyzeDesign(copy));
  }
}

TEST(MoveAnalyzer, GroupsCoverMoveSemantics) {
  testgen::TestcaseOptions o;
  o.sinks = 50;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  sta::Timer timer(sharedTech());
  MoveAnalyzer analyzer(d, timer);
  for (const Move& m : enumerateAllMoves(d)) {
    const std::vector<ImpactGroup> groups = analyzer.analyze(m);
    ASSERT_FALSE(groups.empty());
    std::size_t primaries = 0;
    for (const ImpactGroup& g : groups) {
      if (g.primary) ++primaries;
      ASSERT_EQ(g.delta.size(), d.corners.size());
      for (const auto& per_corner : g.delta)
        for (const double v : per_corner) EXPECT_TRUE(std::isfinite(v));
    }
    EXPECT_EQ(primaries, 1u);
    if (m.type == MoveType::kReassign) {
      EXPECT_EQ(groups.size(), 3u);
    }
  }
}

TEST(MoveAnalyzer, FeaturesMatchPaperLayout) {
  testgen::TestcaseOptions o;
  o.sinks = 50;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  sta::Timer timer(sharedTech());
  MoveAnalyzer analyzer(d, timer);
  const std::vector<Move> moves = enumerateAllMoves(d);
  ASSERT_FALSE(moves.empty());
  const Move& m = moves.front();
  const std::vector<ImpactGroup> groups = analyzer.analyze(m);
  const ImpactGroup* primary = nullptr;
  for (const ImpactGroup& g : groups)
    if (g.primary) primary = &g;
  ASSERT_NE(primary, nullptr);
  const auto f = analyzer.features(m, *primary, 0);
  static_assert(kNumFeatures == 7);
  for (std::size_t i = 0; i < kNumAnalytic; ++i)
    EXPECT_DOUBLE_EQ(f[i], primary->delta[0][i]);
  EXPECT_GE(f[4], 1.0);              // fanout count
  EXPECT_GE(f[5], 0.0);              // bbox area
  EXPECT_GT(f[6], 0.0);              // aspect in (0,1]
  EXPECT_LE(f[6], 1.0);
}

TEST(MoveAnalyzer, AnalyticalEstimatesTrackGolden) {
  // On artificial cases the analytical estimator must correlate with the
  // golden delta (the ML model then shrinks the residual).
  geom::Rng rng(11);
  sta::Timer timer(sharedTech());
  double sxy = 0, sxx = 0, syy = 0, sx = 0, sy = 0;
  std::size_t n = 0;
  for (int c = 0; c < 4; ++c) {
    testgen::ArtificialCase ac =
        testgen::makeArtificialCase(sharedTech(), rng, c % 2 == 0);
    ac.design.corners = {0, 2};
    std::vector<Move> moves = enumerateMoves(ac.design, ac.target);
    moves.resize(std::min<std::size_t>(moves.size(), 20));
    const std::vector<MoveSample> samples =
        collectMoveSamples(ac.design, timer, moves);
    for (const MoveSample& s : samples) {
      const double x = s.features[0][0];  // flute+elmore estimate at c0
      const double y = s.golden_delta[0];
      sxy += x * y;
      sxx += x * x;
      syy += y * y;
      sx += x;
      sy += y;
      ++n;
    }
  }
  ASSERT_GT(n, 30u);
  const double nn = static_cast<double>(n);
  const double corr = (sxy - sx * sy / nn) /
                      (std::sqrt(sxx - sx * sx / nn) *
                           std::sqrt(syy - sy * sy / nn) +
                       1e-12);
  EXPECT_GT(corr, 0.5) << "analytical estimator uncorrelated with golden";
}

TEST(DeltaLatencyModel, TrainsAndBeatsPureAnalytical) {
  sta::Timer timer(sharedTech());
  DeltaLatencyModel model;
  TrainOptions t;
  t.cases = 14;
  t.moves_per_case = 16;
  t.mlp.epochs = 120;
  t.seed = 21;
  const std::size_t samples = model.train(sharedTech(), {0, 2}, t);
  EXPECT_GT(samples, 100u);
  EXPECT_TRUE(model.trainedFor(0));
  EXPECT_TRUE(model.trainedFor(2));
  EXPECT_FALSE(model.trainedFor(1));

  // Holdout artifacts exist and model error beats the analytical estimate
  // baseline would... compare |pred - golden| vs |golden| spread.
  const auto& hold = model.holdout(0);
  ASSERT_GT(hold.golden.size(), 10u);
  const double model_mae = ml::meanAbsError(hold.predicted, hold.golden);
  double spread = 0.0;
  for (const double g : hold.golden) spread += std::abs(g);
  spread /= static_cast<double>(hold.golden.size());
  EXPECT_LT(model_mae, spread) << "model no better than predicting zero";
}

TEST(MovePredictor, VariationDeltaMatchesGoldenDirectionally) {
  testgen::TestcaseOptions o;
  o.sinks = 50;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  sta::Timer timer(sharedTech());
  const Objective objective(d, timer);
  MovePredictor predictor(d, timer, objective, nullptr);
  const VariationReport before = objective.evaluate(d, timer);

  // Over a batch of moves, predicted improvement must rank real
  // improvement better than chance: check that among the 5 best-predicted
  // moves at least one genuinely improves.
  std::vector<Move> moves = enumerateAllMoves(d);
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t i = 0; i < moves.size(); ++i)
    scored.push_back({predictor.predictedVariationDelta(moves[i]), i});
  std::sort(scored.begin(), scored.end());
  ASSERT_GE(scored.size(), 5u);
  bool improved = false;
  for (std::size_t i = 0; i < 5; ++i) {
    network::Design copy = d;
    applyMove(copy, moves[scored[i].second]);
    const VariationReport after = objective.evaluate(copy, timer);
    if (after.sum_variation_ps < before.sum_variation_ps) improved = true;
  }
  EXPECT_TRUE(improved);
}

TEST(MovePredictor, ScoreBatchBitIdenticalToPerMoveScores) {
  // scoreBatch only restructures loops (route built once per net, corner
  // lanes evaluated together); every score must equal the scalar
  // predictedVariationDelta exactly, serial and pooled alike.
  testgen::TestcaseOptions o;
  o.sinks = 50;
  const network::Design d = testgen::makeCls1(sharedTech(), "v1", o);
  sta::Timer timer(sharedTech());
  const Objective objective(d, timer);
  MovePredictor predictor(d, timer, objective, nullptr);
  const std::vector<Move> moves = enumerateAllMoves(d);
  ASSERT_FALSE(moves.empty());

  std::vector<double> serial(moves.size());
  predictor.scoreBatch(moves, serial);
  support::ThreadPool pool(4);
  std::vector<double> pooled(moves.size());
  predictor.scoreBatch(moves, pooled, &pool);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const double scalar = predictor.predictedVariationDelta(moves[i]);
    EXPECT_EQ(serial[i], scalar) << "serial move " << i;
    EXPECT_EQ(pooled[i], scalar) << "pooled move " << i;
  }
}

TEST(GoldenDelta, TinyMoveTinyDelta) {
  geom::Rng rng(31);
  testgen::ArtificialCase ac =
      testgen::makeArtificialCase(sharedTech(), rng, true);
  ac.design.corners = {0};
  sta::Timer timer(sharedTech());
  Move m;
  m.type = MoveType::kSizeDisplace;
  m.node = ac.target;
  m.delta = {0.2, 0.0};  // sub-site nudge
  m.size_step = 0;
  const std::vector<double> delta = goldenDelta(ac.design, timer, m);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_LT(std::abs(delta[0]), 8.0);  // only legalization + jog noise
}

}  // namespace
}  // namespace skewopt::core
