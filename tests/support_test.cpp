// Regression tests for support::ThreadPool's exception contract: a task
// throwing inside runSlices/parallelFor must surface on the calling thread
// as a rethrown exception — never std::terminate the process — and the
// pool must stay fully usable afterwards. Also covers Stopwatch's clock
// injection (obs/clock.h): every duration the library reports flows
// through obs::nowNs(), so a fake clock makes timings deterministic.
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "obs/clock.h"
#include "support/stopwatch.h"

namespace skewopt::support {
namespace {

TEST(ThreadPoolTest, SlicesCoverEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::size_t> seen;
  pool.runSlices(8, [&](std::size_t s) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_TRUE(seen.insert(s).second);
  });
  EXPECT_EQ(seen.size(), 8u);

  std::atomic<int> count{0};
  pool.parallelFor(1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WorkerSliceExceptionRethrownOnCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.runSlices(6,
                     [&](std::size_t s) {
                       if (s == 3)  // slice 3 runs on a pool worker
                         throw std::runtime_error("slice 3 failed");
                     }),
      std::runtime_error);
}

TEST(ThreadPoolTest, CallingThreadSliceExceptionRethrown) {
  ThreadPool pool(2);
  try {
    pool.runSlices(4, [&](std::size_t s) {
      if (s == 0) throw std::runtime_error("caller slice failed");
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "caller slice failed");
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallelFor(64, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i % 7 == 0) throw std::invalid_argument("bad index");
    });
    FAIL() << "expected rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bad index");
  }
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPoolTest, ExactlyOneOfManyExceptionsIsKept) {
  ThreadPool pool(4);
  try {
    pool.runSlices(8, [](std::size_t s) {
      throw std::runtime_error("slice " + std::to_string(s));
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("slice ", 0), 0u);
  }
}

TEST(ThreadPoolTest, PoolRemainsUsableAfterAnException) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.runSlices(4,
                                [](std::size_t) {
                                  throw std::logic_error("boom");
                                }),
                 std::logic_error);
    std::atomic<int> ok{0};
    pool.runSlices(4, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(ThreadPoolTest, WaitGroupCountsToZero) {
  ThreadPool pool(2);
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.add(10);
  for (int i = 0; i < 10; ++i)
    pool.submit([&] {
      done.fetch_add(1);
      wg.done();
    });
  wg.wait();
  EXPECT_EQ(done.load(), 10);
}

namespace {
std::uint64_t fake_now_ns = 0;
std::uint64_t fakeClock() { return fake_now_ns; }
}  // namespace

TEST(StopwatchTest, ReadsTheInjectableClock) {
  obs::setClockForTest(&fakeClock);
  fake_now_ns = 10'000'000;  // 10 ms
  Stopwatch sw;
  fake_now_ns = 17'500'000;  // +7.5 ms
  EXPECT_EQ(sw.ms(), 7.5);   // exact: both reads came from the fake
  sw.reset();
  EXPECT_EQ(sw.ms(), 0.0);
  fake_now_ns += 2'000'000;
  EXPECT_EQ(sw.ms(), 2.0);
  obs::setClockForTest(nullptr);

  // Back on the real (steady) clock: time moves forward, never backward.
  Stopwatch real;
  EXPECT_GE(real.ms(), 0.0);
}

}  // namespace
}  // namespace skewopt::support
