#include "cts/cts.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace skewopt::cts {
namespace {

using network::Design;

class CtsTest : public ::testing::Test {
 protected:
  Design makeDesign(std::size_t nsinks, std::uint64_t seed,
                    std::vector<geom::Point>* pos) {
    geom::Rng rng(seed);
    const geom::Rect block{0, 0, 700, 700};
    Design d("t", &tech_, {350, -20});
    d.corners = {0, 1, 3};
    d.floorplan = geom::Region{{block}};
    for (std::size_t i = 0; i < nsinks; ++i)
      pos->push_back(rng.pointIn(block));
    return d;
  }

  tech::TechModel tech_ = tech::TechModel::make28nm();
  sta::Timer timer_{tech_};
};

TEST_F(CtsTest, ProducesValidCompleteTree) {
  std::vector<geom::Point> pos;
  Design d = makeDesign(90, 1, &pos);
  CtsEngine engine(tech_);
  const CtsResult r = engine.synthesize(d, pos);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
  ASSERT_EQ(r.sink_ids.size(), pos.size());
  std::set<int> unique(r.sink_ids.begin(), r.sink_ids.end());
  EXPECT_EQ(unique.size(), pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(d.tree.node(r.sink_ids[i]).kind, network::NodeKind::Sink);
    EXPECT_DOUBLE_EQ(d.tree.node(r.sink_ids[i]).pos.x, pos[i].x);
  }
  EXPECT_GT(d.tree.numBuffers(), 4u);
  EXPECT_GT(d.routing.numNets(), 0u);
}

TEST_F(CtsTest, DepthBalancedSinks) {
  // Every sink must see the same number of buffer stages — the property
  // that lets wire snaking close the residual skew.
  std::vector<geom::Point> pos;
  Design d = makeDesign(120, 2, &pos);
  CtsEngine engine(tech_);
  const CtsResult r = engine.synthesize(d, pos);
  std::set<int> levels;
  for (const int s : r.sink_ids) levels.insert(d.tree.level(s));
  EXPECT_EQ(levels.size(), 1u) << "sink stage depths differ";
}

TEST_F(CtsTest, BalancesNominalSkew) {
  std::vector<geom::Point> pos;
  Design d = makeDesign(100, 3, &pos);
  CtsEngine engine(tech_);
  const CtsResult r = engine.synthesize(d, pos);
  // The balancer reports its achieved skew; verify against the timer.
  const sta::CornerTiming t = timer_.analyze(d.tree, d.routing, 0);
  double lo = 1e18, hi = -1e18;
  for (const int s : r.sink_ids) {
    lo = std::min(lo, t.arrival[static_cast<std::size_t>(s)]);
    hi = std::max(hi, t.arrival[static_cast<std::size_t>(s)]);
  }
  EXPECT_NEAR(hi - lo, r.balanced_skew_ps, 1e-6);
  // Must be far tighter than an unbalanced tree's hundreds of ps.
  EXPECT_LT(r.balanced_skew_ps, 120.0);
}

TEST_F(CtsTest, NoMaxCapViolations) {
  std::vector<geom::Point> pos;
  Design d = makeDesign(140, 4, &pos);
  CtsEngine engine(tech_);
  engine.synthesize(d, pos);
  EXPECT_LE(timer_.worstLoadRatio(d.tree, d.routing, 0), 1.05);
}

TEST_F(CtsTest, RepeaterChainsOnLongSpans) {
  // A spread-out design must receive interior repeaters.
  std::vector<geom::Point> pos;
  Design d = makeDesign(60, 5, &pos);
  CtsOptions o;
  o.max_stage_len_um = 80.0;
  CtsEngine engine(tech_, o);
  const CtsResult r = engine.synthesize(d, pos);
  EXPECT_GT(r.inserted_buffers, 0u);
  // Chains come in inverter pairs.
  EXPECT_EQ(r.inserted_buffers % 2, 0u);
}

TEST_F(CtsTest, SiblingStageCountsEqualized) {
  std::vector<geom::Point> pos;
  Design d = makeDesign(80, 6, &pos);
  CtsEngine engine(tech_);
  engine.synthesize(d, pos);
  // For every driver, all child chains that lead to buffers must carry the
  // same number of interior buffers (the equalization property).
  const std::vector<network::Arc> arcs = d.tree.extractArcs();
  std::map<int, std::set<std::size_t>> interior_counts_by_src;
  for (const network::Arc& a : arcs) {
    if (d.tree.node(a.dst).kind == network::NodeKind::Sink) continue;
    interior_counts_by_src[a.src].insert(a.interior.size());
  }
  for (const auto& [src, counts] : interior_counts_by_src)
    EXPECT_EQ(counts.size(), 1u) << "driver " << src;
}

TEST_F(CtsTest, BestScenarioSelectionNeverWorseThanDefault) {
  // Paper Sec. 5.1: CTS runs MCMM and per-mode MCSM scenarios and keeps
  // the tree with the minimum sum of skew variations.
  std::vector<geom::Point> pos;
  Design base = makeDesign(90, 21, &pos);
  CtsEngine engine(tech_);

  // Pairs built from sink ids: a simple neighbor chain.
  auto make_pairs = [](const std::vector<int>& ids) {
    std::vector<network::SinkPair> pairs;
    for (std::size_t i = 0; i + 1 < ids.size(); i += 2)
      pairs.push_back({ids[i], ids[i + 1], 1.0});
    return pairs;
  };

  Design defaulted = base;
  const CtsResult rd = engine.synthesize(defaulted, pos);
  defaulted.pairs = make_pairs(rd.sink_ids);
  const double score_default =
      sta::sumNormalizedSkewVariation(defaulted, timer_);

  Design best = base;
  const CtsResult rb = engine.synthesizeBestScenario(best, pos, make_pairs);
  const double score_best = sta::sumNormalizedSkewVariation(best, timer_);

  EXPECT_LE(score_best, score_default + 1e-6);
  EXPECT_FALSE(best.pairs.empty());
  std::string err;
  EXPECT_TRUE(best.tree.validate(&err)) << err;
  // The chosen scenario is either one of the active corners or MCMM.
  const bool is_corner =
      std::find(base.corners.begin(), base.corners.end(),
                rb.chosen_scenario) != base.corners.end();
  EXPECT_TRUE(is_corner ||
              rb.chosen_scenario == std::numeric_limits<std::size_t>::max());
}

TEST_F(CtsTest, DeterministicForSeed) {
  std::vector<geom::Point> p1, p2;
  Design d1 = makeDesign(70, 7, &p1);
  Design d2 = makeDesign(70, 7, &p2);
  CtsEngine engine(tech_);
  const CtsResult r1 = engine.synthesize(d1, p1);
  const CtsResult r2 = engine.synthesize(d2, p2);
  EXPECT_EQ(d1.tree.numNodes(), d2.tree.numNodes());
  EXPECT_DOUBLE_EQ(r1.balanced_skew_ps, r2.balanced_skew_ps);
}

TEST_F(CtsTest, EffectiveDriveResDecreasesWithDrive) {
  double prev = 1e18;
  for (std::size_t i = 0; i < tech_.numCells(); ++i) {
    const double r = CtsEngine::effectiveDriveRes(tech_.cell(i), 0);
    EXPECT_LT(r, prev);
    EXPECT_GT(r, 0.0);
    prev = r;
  }
}

TEST_F(CtsTest, RejectsBadInputs) {
  std::vector<geom::Point> pos;
  Design d = makeDesign(10, 8, &pos);
  CtsEngine engine(tech_);
  std::vector<geom::Point> empty;
  EXPECT_THROW(engine.synthesize(d, empty), std::invalid_argument);
  Design no_corners("x", &tech_, {0, 0});
  EXPECT_THROW(engine.synthesize(no_corners, pos), std::invalid_argument);
}

// Parameterized: skew stays bounded across sizes and seeds.
class CtsSkewProp
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
TEST_P(CtsSkewProp, BalancedSkewBounded) {
  const auto [nsinks, seed] = GetParam();
  tech::TechModel tech = tech::TechModel::make28nm();
  geom::Rng rng(static_cast<std::uint64_t>(seed));
  const geom::Rect block{0, 0, 650, 650};
  network::Design d("t", &tech, {325, -20});
  d.corners = {0, 1, 2};
  d.floorplan = geom::Region{{block}};
  std::vector<geom::Point> pos;
  for (int i = 0; i < nsinks; ++i) pos.push_back(rng.pointIn(block));
  CtsEngine engine(tech);
  const CtsResult r = engine.synthesize(d, pos);
  EXPECT_LT(r.balanced_skew_ps, 150.0)
      << nsinks << " sinks, seed " << seed;
}
INSTANTIATE_TEST_SUITE_P(Sweep, CtsSkewProp,
                         ::testing::Combine(::testing::Values(40, 100, 180),
                                            ::testing::Values(11, 12)));

}  // namespace
}  // namespace skewopt::cts
