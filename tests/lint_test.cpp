// Fixture suite for the skewlint engine: one seeded violation per LNT###
// rule, asserting each fires exactly where expected, that a
// suppression-with-reason silences it, and that a reason-less suppression
// is itself a finding (LNT090) which suppresses nothing.
#include "tools/lint/skewlint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/json.h"

namespace lint = skewopt::lint;

namespace {

std::vector<int> codes(const std::vector<lint::Finding>& fs) {
  std::vector<int> out;
  for (const auto& f : fs) out.push_back(f.code);
  return out;
}

bool fires(const std::vector<lint::Finding>& fs, int code, int line = 0) {
  return std::any_of(fs.begin(), fs.end(), [&](const lint::Finding& f) {
    return f.code == code && (line == 0 || f.line == line);
  });
}

}  // namespace

TEST(LintCode, FormatsZeroPadded) {
  EXPECT_EQ(lint::lintCodeString(1), "LNT001");
  EXPECT_EQ(lint::lintCodeString(30), "LNT030");
  EXPECT_EQ(lint::lintCodeString(90), "LNT090");
}

// ---------------------------------------------------------------------------
// LNT001: nondeterminism APIs.

TEST(Lnt001, FiresOnWallClockAndEnvInResultPath) {
  const std::string src =
      "void f() {\n"                                          // 1
      "  auto t = std::chrono::system_clock::now();\n"        // 2
      "  const char* e = std::getenv(\"X\");\n"               // 3
      "  int r = rand();\n"                                   // 4
      "  std::random_device rd;\n"                            // 5
      "  long s = time(nullptr);\n"                           // 6
      "}\n";
  const auto fs = lint::lintSource("src/core/x.cpp", src);
  EXPECT_TRUE(fires(fs, 1, 2));
  EXPECT_TRUE(fires(fs, 1, 3));
  EXPECT_TRUE(fires(fs, 1, 4));
  EXPECT_TRUE(fires(fs, 1, 5));
  EXPECT_TRUE(fires(fs, 1, 6));
}

TEST(Lnt001, SilentInObsAndOnLookalikes) {
  const std::string src =
      "void f() { auto t = std::chrono::system_clock::now(); }\n";
  EXPECT_TRUE(lint::lintSource("src/obs/clock.cpp", src).empty());

  // Word-boundary safety: retime(), time_point, randomize are not hits.
  const std::string lookalikes =
      "void g() {\n"
      "  retime(3);\n"
      "  std::chrono::steady_clock::time_point tp;\n"
      "  randomize_nothing();\n"
      "  double uptime = uptime_s;\n"
      "}\n";
  EXPECT_TRUE(lint::lintSource("src/core/y.cpp", lookalikes).empty());
}

TEST(Lnt001, SuppressedWithReason) {
  const std::string src =
      "void f() {\n"
      "  // SKEWLINT-ALLOW(LNT001: documented operator override)\n"
      "  const char* e = std::getenv(\"X\");\n"
      "}\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", src).empty());

  const std::string same_line =
      "void f() {\n"
      "  const char* e = std::getenv(\"X\");  "
      "// SKEWLINT-ALLOW(LNT001: operator knob)\n"
      "}\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", same_line).empty());
}

// ---------------------------------------------------------------------------
// LNT002: unordered iteration in result-affecting modules.

TEST(Lnt002, FiresOnRangeForOverUnorderedMember) {
  const std::string src =
      "#include <unordered_map>\n"                            // 1
      "struct S {\n"                                          // 2
      "  std::unordered_map<std::string, int> idx_;\n"        // 3
      "  int sum() const {\n"                                 // 4
      "    int s = 0;\n"                                      // 5
      "    for (const auto& kv : idx_) s += kv.second;\n"     // 6
      "    return s;\n"                                       // 7
      "  }\n"
      "};\n";
  const auto fs = lint::lintSource("src/serve/x.cpp", src);
  ASSERT_TRUE(fires(fs, 2, 6)) << lint::textReport(fs);
  // Same source outside the result-affecting modules: silent.
  EXPECT_TRUE(lint::lintSource("src/cts/x.cpp", src).empty());
}

TEST(Lnt002, SeesDeclarationsFromCompanionHeader) {
  const std::string header =
      "#include <unordered_map>\n"
      "struct R { std::unordered_map<int, double> nets_; double wl() "
      "const; };\n";
  const std::string impl =
      "double R::wl() const {\n"                              // 1
      "  double s = 0;\n"                                     // 2
      "  for (const auto& kv : nets_) s += kv.second;\n"      // 3
      "  return s;\n"
      "}\n";
  EXPECT_TRUE(lint::lintSource("src/network/r.cpp", impl).empty())
      << "without the header the member type is unknown";
  const auto fs = lint::lintSource("src/network/r.cpp", impl, header);
  EXPECT_TRUE(fires(fs, 2, 3)) << lint::textReport(fs);
}

TEST(Lnt002, SortedViewCallAndOrderedContainersAreClean) {
  const std::string src =
      "#include <map>\n"
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<std::string, int> idx_;\n"
      "  std::map<std::string, int> sorted_;\n"
      "  void f() {\n"
      "    for (const auto& kv : sorted_) use(kv);\n"
      "    for (const auto& k : sortedKeys(idx_)) use(k);\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(lint::lintSource("src/lp/x.cpp", src).empty());
}

TEST(Lnt002, FiresOnExplicitBeginAndSuppresses) {
  const std::string src =
      "#include <unordered_set>\n"                            // 1
      "std::unordered_set<int> seen_;\n"                      // 2
      "int first() { return *seen_.begin(); }\n"              // 3
      "// SKEWLINT-ALLOW(LNT002: feeds a sort below)\n"       // 4
      "void g() { for (int v : seen_) sink(v); }\n";          // 5
  const auto fs = lint::lintSource("src/check/x.cpp", src);
  EXPECT_TRUE(fires(fs, 2, 3)) << lint::textReport(fs);
  EXPECT_FALSE(fires(fs, 2, 5)) << "line-above suppression must hold";
}

// ---------------------------------------------------------------------------
// LNT003: mutex field without any GUARDED_BY member.

TEST(Lnt003, FiresOnUnguardedMutexField) {
  const std::string src =
      "#include <mutex>\n"                                    // 1
      "class C {\n"                                           // 2
      "  int x_ = 0;\n"                                       // 3
      "  std::mutex mu_;\n"                                   // 4
      "};\n";
  const auto fs = lint::lintSource("src/serve/x.h", src);
  EXPECT_TRUE(fires(fs, 3, 4)) << lint::textReport(fs);
}

TEST(Lnt003, SilentWhenAnyMemberIsGuarded) {
  const std::string src =
      "class C {\n"
      "  support::Mutex mu_;\n"
      "  int x_ SKEWOPT_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(lint::lintSource("src/serve/x.h", src).empty());
}

TEST(Lnt003, TracksClassNamePastAttributeMacroAndLocalLocks) {
  const std::string src =
      "class SKEWOPT_CAPABILITY(\"mutex\") Wrapper {\n"       // 1
      " public:\n"                                            // 2
      "  void lock() { mu_.lock(); }\n"                       // 3
      " private:\n"                                           // 4
      "  std::mutex mu_;\n"                                   // 5
      "};\n";
  const auto fs = lint::lintSource("src/support/x.h", src);
  ASSERT_TRUE(fires(fs, 3, 5));
  EXPECT_NE(fs.front().message.find("Wrapper"), std::string::npos)
      << fs.front().message;

  // A MutexLock local inside a method body is not a field.
  const std::string local =
      "class C {\n"
      "  void f() { support::MutexLock lk(global_mu); }\n"
      "};\n";
  EXPECT_TRUE(lint::lintSource("src/serve/y.h", local).empty());
}

// ---------------------------------------------------------------------------
// LNT004: relaxed-ordering atomics.

TEST(Lnt004, FiresOutsideObsOnly) {
  const std::string src =
      "void f(std::atomic<int>& a) {\n"
      "  a.store(1, std::memory_order_relaxed);\n"            // 2
      "}\n";
  EXPECT_TRUE(fires(lint::lintSource("src/cluster/x.cpp", src), 4, 2));
  EXPECT_TRUE(lint::lintSource("src/obs/metrics.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// LNT010: raw threads.

TEST(Lnt010, FiresOnRawThreadAndDetachOutsideOwners) {
  const std::string src =
      "void f() {\n"
      "  std::thread t([] {});\n"                             // 2
      "  t.detach();\n"                                       // 3
      "}\n";
  const auto fs = lint::lintSource("src/core/x.cpp", src);
  EXPECT_TRUE(fires(fs, 10, 2));
  EXPECT_TRUE(fires(fs, 10, 3));
  EXPECT_TRUE(lint::lintSource("src/serve/x.cpp", src).empty());
  EXPECT_TRUE(lint::lintSource("src/support/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// LNT011: swallowed catch (...).

TEST(Lnt011, FiresOnSilentSwallowOnly) {
  const std::string swallow =
      "void f() {\n"
      "  try { g(); } catch (...) { count++; }\n"             // 2
      "}\n";
  EXPECT_TRUE(fires(lint::lintSource("src/core/x.cpp", swallow), 11, 2));

  const std::string rethrow =
      "void f() { try { g(); } catch (...) { cleanup(); throw; } }\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", rethrow).empty());

  const std::string captured =
      "void f() { try { g(); } catch (...) { e = "
      "std::current_exception(); } }\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", captured).empty());

  const std::string logged =
      "void f() { try { g(); } catch (...) { std::fprintf(stderr, "
      "\"boom\"); } }\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", logged).empty());
}

// ---------------------------------------------------------------------------
// LNT030: banned includes in headers.

TEST(Lnt030, FiresInHeadersNotSources) {
  const std::string src =
      "#include <iostream>\n"                                 // 1
      "#include <regex>\n"                                    // 2
      "#include <vector>\n";                                  // 3
  const auto fs = lint::lintSource("src/network/x.h", src);
  EXPECT_TRUE(fires(fs, 30, 1));
  EXPECT_TRUE(fires(fs, 30, 2));
  EXPECT_FALSE(fires(fs, 30, 3));
  EXPECT_TRUE(lint::lintSource("src/network/x.cpp", src).empty())
      << "banned only in headers";
}

// ---------------------------------------------------------------------------
// LNT090: reason-less suppressions are findings and suppress nothing.

TEST(Lnt090, ReasonlessSuppressionFiresAndDoesNotSuppress) {
  const std::string src =
      "void f() {\n"
      "  const char* e = std::getenv(\"X\");  // SKEWLINT-ALLOW(LNT001:)\n"
      "}\n";
  const auto fs = lint::lintSource("src/core/x.cpp", src);
  EXPECT_TRUE(fires(fs, 90, 2)) << lint::textReport(fs);
  EXPECT_TRUE(fires(fs, 1, 2)) << "a bad suppression must not silence";

  const std::string no_colon =
      "int r = rand();  // SKEWLINT-ALLOW(LNT001)\n";
  const auto fs2 = lint::lintSource("src/core/x.cpp", no_colon);
  EXPECT_TRUE(fires(fs2, 90, 1));
  EXPECT_TRUE(fires(fs2, 1, 1));

  const std::string blank_reason =
      "int r = rand();  // SKEWLINT-ALLOW(LNT001:   )\n";
  EXPECT_TRUE(fires(lint::lintSource("src/core/x.cpp", blank_reason), 90, 1));
}

TEST(Suppression, OnlyCoversItsOwnCode) {
  const std::string src =
      "void f() {\n"
      "  // SKEWLINT-ALLOW(LNT002: wrong code for this line)\n"
      "  const char* e = std::getenv(\"X\");\n"
      "}\n";
  EXPECT_TRUE(fires(lint::lintSource("src/core/x.cpp", src), 1, 3));
}

// ---------------------------------------------------------------------------
// Lexer robustness: strings and comments never produce findings.

TEST(Lexer, IgnoresStringsCommentsAndRawStrings) {
  const std::string src =
      "const char* a = \"rand() getenv system_clock\";\n"
      "// rand() in a comment\n"
      "/* std::getenv(\"X\") in a block comment */\n"
      "const char* b = R\"(time(nullptr) detach())\";\n"
      "char c = '\\\"'; int r2 = safe();\n";
  EXPECT_TRUE(lint::lintSource("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Reports.

TEST(Reports, TextAndJsonCarryTheFinding) {
  const auto fs = lint::lintSource("src/core/x.cpp", "int r = rand();\n");
  ASSERT_EQ(codes(fs), std::vector<int>{1});
  const std::string text = lint::textReport(fs);
  EXPECT_NE(text.find("LNT001"), std::string::npos);
  EXPECT_NE(text.find("src/core/x.cpp:1"), std::string::npos);

  namespace json = skewopt::serve::json;
  const json::Value v = json::parse(lint::jsonReport(fs));
  EXPECT_EQ(v.str("tool", ""), "skewlint");
  EXPECT_EQ(v.num("errors", -1), 1.0);
  const json::Value* arr = v.find("findings");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->size(), 1u);
  EXPECT_EQ(arr->at(0).str("code", ""), "LNT001");
  EXPECT_EQ(arr->at(0).num("line", 0), 1.0);
}
