#include "network/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/flow.h"
#include "core/moves.h"
#include "testgen/testgen.h"

namespace skewopt::network {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

Design roundtrip(const Design& d) {
  std::stringstream ss;
  writeDesign(d, ss);
  return readDesign(sharedTech(), ss);
}

TEST(DesignIo, RoundTripPreservesStructure) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  o.max_pairs = 60;
  const Design d = testgen::makeCls1(sharedTech(), "v1", o);
  const Design r = roundtrip(d);

  EXPECT_EQ(r.name, d.name);
  EXPECT_EQ(r.corners, d.corners);
  EXPECT_EQ(r.tree.sinks().size(), d.tree.sinks().size());
  EXPECT_EQ(r.tree.numBuffers(), d.tree.numBuffers());
  EXPECT_EQ(r.pairs.size(), d.pairs.size());
  EXPECT_EQ(r.floorplan.rects().size(), d.floorplan.rects().size());
  EXPECT_EQ(r.block_cells, d.block_cells);
  EXPECT_DOUBLE_EQ(r.utilization, d.utilization);
  std::string err;
  EXPECT_TRUE(r.tree.validate(&err)) << err;
}

TEST(DesignIo, RoundTripIsTimingExact) {
  // The reconstructed design must time identically at every corner — the
  // router's deterministic jogs and the forced snaking extras both have to
  // survive serialization bit-exactly.
  testgen::TestcaseOptions o;
  o.sinks = 70;
  o.max_pairs = 70;
  const Design d = testgen::makeCls1(sharedTech(), "v2", o);
  const Design r = roundtrip(d);

  const sta::Timer timer(sharedTech());
  const core::Objective obj_d(d, timer);
  const core::VariationReport rep_d = obj_d.evaluate(d, timer);
  const core::Objective obj_r(r, timer);
  const core::VariationReport rep_r = obj_r.evaluate(r, timer);
  EXPECT_NEAR(rep_r.sum_variation_ps, rep_d.sum_variation_ps, 1e-6);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    EXPECT_NEAR(rep_r.local_skew_ps[ki], rep_d.local_skew_ps[ki], 1e-6);
  EXPECT_NEAR(r.routing.totalWirelength(), d.routing.totalWirelength(),
              1e-6);
}

TEST(DesignIo, RoundTripAfterEdits) {
  // Surgery reshuffles parent/child id ordering; IO must still reload.
  testgen::TestcaseOptions o;
  o.sinks = 50;
  o.max_pairs = 50;
  Design d = testgen::makeCls1(sharedTech(), "v1", o);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d);
  geom::Rng rng(5);
  for (int i = 0; i < 10 && !moves.empty(); ++i)
    core::applyMove(d, moves[rng.index(moves.size())]);

  const Design r = roundtrip(d);
  const sta::Timer timer(sharedTech());
  const std::vector<sta::CornerTiming> td = timer.analyzeDesign(d);
  const std::vector<sta::CornerTiming> tr = timer.analyzeDesign(r);
  // Latency multisets must match (ids are remapped, so compare sorted).
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    std::vector<double> ld, lr;
    for (const int s : d.tree.sinks())
      ld.push_back(td[ki].arrival[static_cast<std::size_t>(s)]);
    for (const int s : r.tree.sinks())
      lr.push_back(tr[ki].arrival[static_cast<std::size_t>(s)]);
    std::sort(ld.begin(), ld.end());
    std::sort(lr.begin(), lr.end());
    ASSERT_EQ(ld.size(), lr.size());
    for (std::size_t i = 0; i < ld.size(); ++i)
      EXPECT_NEAR(ld[i], lr[i], 1e-6);
  }
}

TEST(DesignIo, FileRoundTrip) {
  testgen::TestcaseOptions o;
  o.sinks = 40;
  const Design d = testgen::makeCls2(sharedTech(), o);
  const std::string path = ::testing::TempDir() + "io_test_design.skv";
  saveDesign(d, path);
  const Design r = loadDesign(sharedTech(), path);
  EXPECT_EQ(r.name, "CLS2v1");
  EXPECT_EQ(r.tree.sinks().size(), d.tree.sinks().size());
}

TEST(DesignIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(readDesign(sharedTech(), empty), std::runtime_error);

  std::stringstream bad_header("not-a-design\n");
  EXPECT_THROW(readDesign(sharedTech(), bad_header), std::runtime_error);

  std::stringstream bad_corner(
      "skewopt-design v1\nname t\ncorners 99\n");
  EXPECT_THROW(readDesign(sharedTech(), bad_corner), std::runtime_error);

  std::stringstream bad_parent(
      "skewopt-design v1\nname t\ncorners 0\nfloorplan 0\n"
      "blockcells 0 utilization 0\nsource 0 0 clk\nnodes 1\n"
      "node 5 B 99 1 1 0 b\n");
  EXPECT_THROW(readDesign(sharedTech(), bad_parent), std::runtime_error);
}

TEST(DesignIo, CommentsAndNamesWithSpaces) {
  Design d("my design", &sharedTech(), {0, 0});
  d.corners = {0};
  d.floorplan = geom::Region{{geom::Rect{0, 0, 10, 10}}};
  const int b = d.tree.addBuffer(0, {1, 1}, 0, "buf one");
  d.tree.addSink(b, {2, 2});
  d.routing.rebuildAll(d.tree);
  std::stringstream ss;
  writeDesign(d, ss);
  std::stringstream with_comments("# a comment\n" + ss.str());
  // Comments before the version header are not allowed, but the name with
  // a space must have been sanitized on write.
  const Design r = readDesign(sharedTech(), ss);
  EXPECT_EQ(r.name, "my_design");
}

}  // namespace
}  // namespace skewopt::network
