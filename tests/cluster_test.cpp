// Tests for the cluster subsystem: consistent-hash routing determinism,
// the global job-id codec, N-shard vs single-shard bit-identity (the
// subsystem's core guarantee, including DELTA jobs), the BATCH_SUBMIT and
// streaming RESULTS wire verbs with their malformed-payload handling,
// subscriber disconnect mid-stream, per-shard drain, and aggregated stats
// coherence under concurrent load.
//
// The whole file runs under ThreadSanitizer as cluster_test_tsan (see
// tests/CMakeLists.txt); the Concurrent* tests are the schedules that
// matter there — batch submit + streaming + shard drain all at once.
#include "cluster/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.h"
#include "cluster/router.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"

namespace skewopt::cluster {
namespace {

namespace json = serve::json;

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

/// A small, fast spec: 40-sink CLS1v1, local flow, two iterations.
serve::JobSpec tinySpec(std::uint64_t seed,
                        core::FlowMode mode = core::FlowMode::kLocal) {
  serve::JobSpec spec;
  spec.source.kind = serve::DesignSource::Kind::kTestgen;
  spec.source.testcase = "CLS1v1";
  spec.source.sinks = 40;
  spec.source.max_pairs = 40;
  spec.source.seed = seed;
  spec.mode = mode;
  spec.options.local.max_iterations = 2;
  return spec;
}

ClusterOptions smallCluster(std::size_t shards, std::size_t workers = 2) {
  ClusterOptions o;
  o.shards = shards;
  o.shard.workers = workers;
  o.shard.queue_capacity = 64;
  o.shard.cache_capacity = 64;
  o.shard.warm_capacity = 16;
  return o;
}

/// Digest of a result's optimization outcome, skipping wall-clock timings
/// and solver-effort fields (lp_solves, lp_warm_hits) that legitimately
/// differ between a cold run and a warm-started run of the same spec.
std::string digest(const core::FlowResult& r) {
  const json::Value full = serve::resultToJson(r);
  json::Value out = json::Value::object();
  for (const auto& [key, value] : full.members()) {
    if (key == "stage_ms") continue;
    if (key == "global") {
      json::Value g = json::Value::object();
      for (const auto& [gk, gv] : value.members())
        if (gk != "lp_solves" && gk != "lp_warm_hits") g.set(gk, gv);
      out.set(key, std::move(g));
      continue;
    }
    out.set(key, value);
  }
  return json::dump(out);
}

/// Collects a multi-line protocol exchange.
struct Emitted {
  std::vector<std::string> lines;
  serve::TcpServer::LineSink sink() {
    return [this](const std::string& line) {
      lines.push_back(line);
      return true;
    };
  }
  json::Value at(std::size_t i) const { return json::parse(lines.at(i)); }
};

std::string call(ClusterFrontend& fe, const std::string& line) {
  Emitted out;
  EXPECT_TRUE(handleClusterLine(fe, line, out.sink()));
  EXPECT_EQ(out.lines.size(), 1u);
  return out.lines.empty() ? "" : out.lines.front();
}

// ---------------------------------------------------------------------------
// Router

TEST(ShardRouter, Fnv1aIsThePinnedFunction) {
  // Known FNV-1a vectors: the ring layout (and therefore the shard a spec
  // routes to) is a wire-stability contract, so the hash is pinned.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardRouter, RingIsDeterministicAcrossInstances) {
  const ShardRouter a(ShardRouterOptions{4, 16});
  const ShardRouter b(ShardRouterOptions{4, 16});
  EXPECT_EQ(a.ring(), b.ring());
  EXPECT_EQ(a.ring().size(), 64u);
  for (std::uint64_t h = 0; h < 1000; ++h)
    EXPECT_EQ(a.route(h * 0x9e3779b97f4a7c15ull),
              b.route(h * 0x9e3779b97f4a7c15ull));
}

TEST(ShardRouter, SpecsRouteTheSameAcrossRestarts) {
  // "Restart" = a fresh router (and fresh frontend): placement must be a
  // pure function of the spec's content hash.
  std::vector<std::size_t> first;
  for (int round = 0; round < 2; ++round) {
    const ShardRouter router(ShardRouterOptions{5, 32});
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const std::size_t shard =
          router.route(serve::contentHash(tinySpec(seed)));
      if (round == 0)
        first.push_back(shard);
      else
        EXPECT_EQ(shard, first[seed]) << "seed " << seed;
    }
  }
}

TEST(ShardRouter, CoversAllShards) {
  const ShardRouter router(ShardRouterOptions{4, 64});
  std::set<std::size_t> used;
  for (std::uint64_t h = 0; h < 4096; ++h)
    used.insert(router.route(h * 0x9e3779b97f4a7c15ull));
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero) {
  const ShardRouter router(ShardRouterOptions{1, 8});
  for (std::uint64_t h = 0; h < 64; ++h) EXPECT_EQ(router.route(h), 0u);
}

// ---------------------------------------------------------------------------
// Global id codec

TEST(ClusterFrontend, GlobalIdCodecRoundTrips) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(3),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  for (std::size_t shard = 0; shard < 3; ++shard) {
    for (std::uint64_t local = 1; local <= 100; ++local) {
      const std::uint64_t gid = fe.globalId(shard, local);
      EXPECT_EQ(fe.shardOf(gid), shard);
      EXPECT_EQ(fe.localId(gid), local);
    }
  }
  EXPECT_THROW(fe.shardOf(0), std::out_of_range);
}

TEST(ClusterFrontend, SingleShardIdsEqualLocalIds) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(1),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  for (std::uint64_t local = 1; local <= 10; ++local)
    EXPECT_EQ(fe.globalId(0, local), local);
}

// ---------------------------------------------------------------------------
// Bit-identity: the tentpole guarantee

TEST(ClusterFrontend, ShardedResultsBitIdenticalToSingleShard) {
  // The same job set — hot repeats, distinct seeds, and DELTA re-opts —
  // through a 3-shard cluster and a 1-shard cluster must produce
  // bit-identical results per spec.
  const std::vector<std::uint64_t> seeds = {7, 11, 7, 13, 11, 7};
  serve::DeltaEdits edits;
  edits.has_u_sweep = true;
  edits.u_sweep = {0.05, 0.15};

  auto run = [&](std::size_t shards) -> std::vector<std::string> {
    std::vector<std::string> digests;
    ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(shards));
    std::vector<std::uint64_t> gids;
    for (const std::uint64_t seed : seeds) {
      const auto sub = fe.submit(tinySpec(seed), true);
      EXPECT_TRUE(sub.job);
      if (!sub.job) return digests;
      gids.push_back(sub.id);
    }
    // DELTA against each distinct base; pinned to the base's shard.
    for (const std::uint64_t base : {gids[0], gids[1], gids[3]}) {
      const auto sub = fe.submitDelta(base, edits, true);
      EXPECT_TRUE(sub.job);
      if (!sub.job) return digests;
      if (shards > 1) {
        EXPECT_EQ(sub.shard, fe.shardOf(base));
      }
      gids.push_back(sub.id);
    }
    for (const std::uint64_t gid : gids)
      digests.push_back(digest(fe.result(gid)));
    fe.drain();
    return digests;
  };

  const std::vector<std::string> sharded = run(3);
  const std::vector<std::string> solo = run(1);
  ASSERT_EQ(sharded.size(), solo.size());
  for (std::size_t i = 0; i < sharded.size(); ++i)
    EXPECT_EQ(sharded[i], solo[i]) << "job " << i;
}

TEST(ClusterFrontend, IdenticalSpecsLandOnTheSameShardAndCache) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(4));
  const auto first = fe.submit(tinySpec(3), true);
  ASSERT_TRUE(first.job);
  (void)fe.result(first.id);
  const auto repeat = fe.submit(tinySpec(3), true);
  ASSERT_TRUE(repeat.job);
  EXPECT_EQ(repeat.shard, first.shard);
  (void)fe.result(repeat.id);
  EXPECT_TRUE(fe.waitTerminal(repeat.id).cached);
  fe.drain();
}

// ---------------------------------------------------------------------------
// Wire protocol: single-shard byte-compatibility

TEST(ClusterProtocol, SingleShardRepliesMatchServeByteForByte) {
  // The same request stream against a bare Scheduler and a 1-shard
  // cluster: every reply line must be byte-identical.
  serve::SchedulerOptions sopts;
  sopts.workers = 2;
  serve::Scheduler sched(sharedTech(), sharedLut(), sopts);
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(1));

  const std::string spec_line =
      json::dump(serve::specToJson(tinySpec(5)));
  const std::vector<std::string> requests = {
      R"({"cmd":"SUBMIT","spec":)" + spec_line + R"(,"block":true})",
      R"({"cmd":"RESULT","id":1,"wait":true})",
      // STATUS after the result wait: the job is deterministically DONE
      // on both sides (mid-flight it could be QUEUED or RUNNING).
      R"({"cmd":"STATUS","id":1})",
      R"({"cmd":"DELTA","base":1,"edits":{"u_sweep":[0.05,0.2]},"block":true})",
      R"({"cmd":"RESULT","id":2,"wait":true})",
      R"({"cmd":"CANCEL","id":2})",
      R"({"cmd":"RESULT","id":99,"wait":false})",
      R"({"cmd":"nonsense"})",
      R"(not json)",
  };
  for (const std::string& req : requests) {
    const std::string serve_reply = serve::handleLine(sched, req);
    const std::string cluster_reply = call(fe, req);
    // Timing fields (queue_ms/run_ms, stage_ms) differ run to run; compare
    // the parsed structure with those removed, serialized back to bytes.
    const auto scrub = [](const std::string& line) {
      const json::Value v = json::parse(line);
      json::Value out = json::Value::object();
      for (const auto& [key, value] : v.members()) {
        if (key == "queue_ms" || key == "run_ms") continue;
        if (key == "result") {
          json::Value r = json::Value::object();
          for (const auto& [rk, rv] : value.members())
            if (rk != "stage_ms") r.set(rk, rv);
          out.set(key, std::move(r));
          continue;
        }
        out.set(key, value);
      }
      return json::dump(out);
    };
    EXPECT_EQ(scrub(serve_reply), scrub(cluster_reply)) << req;
  }
  fe.drain();
  sched.drain();
}

TEST(ClusterProtocol, StatsAggregatesShards) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(3),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  std::vector<std::uint64_t> gids;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto sub = fe.submit(tinySpec(seed), true);
    ASSERT_TRUE(sub.job);
    gids.push_back(sub.id);
  }
  for (const std::uint64_t gid : gids) fe.waitTerminal(gid);
  const json::Value v = json::parse(call(fe, R"({"cmd":"STATS"})"));
  EXPECT_TRUE(v.boolean("ok", false));
  EXPECT_EQ(v.num("submitted", -1), 12);
  EXPECT_EQ(v.num("done", -1), 12);
  const json::Value* shards = v.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->isArray());
  ASSERT_EQ(shards->size(), 3u);
  double sum = 0;
  for (const json::Value& s : shards->items()) sum += s.num("submitted", 0);
  EXPECT_EQ(sum, 12);
  fe.drain();
}

// ---------------------------------------------------------------------------
// BATCH_SUBMIT

TEST(ClusterProtocol, BatchSubmitAcceptsManySpecs) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(3),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  json::Value jobs = json::Value::array();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    json::Value entry = json::Value::object();
    entry.set("spec", serve::specToJson(tinySpec(seed)));
    entry.set("tag", "job-" + std::to_string(seed));
    jobs.push(std::move(entry));
  }
  json::Value req = json::Value::object();
  req.set("cmd", "BATCH_SUBMIT");
  req.set("jobs", std::move(jobs));
  req.set("block", true);
  const json::Value v = json::parse(call(fe, json::dump(req)));
  EXPECT_TRUE(v.boolean("ok", false));
  EXPECT_EQ(v.num("count", -1), 6);
  EXPECT_EQ(v.num("accepted", -1), 6);
  const json::Value* verdicts = v.find("jobs");
  ASSERT_NE(verdicts, nullptr);
  ASSERT_EQ(verdicts->size(), 6u);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < verdicts->size(); ++i) {
    const json::Value& entry = verdicts->at(i);
    EXPECT_TRUE(entry.boolean("ok", false));
    EXPECT_EQ(entry.str("tag", ""), "job-" + std::to_string(i));
    ids.insert(static_cast<std::uint64_t>(entry.num("id", 0)));
  }
  EXPECT_EQ(ids.size(), 6u) << "per-spec job ids must be distinct";
  for (const std::uint64_t id : ids) fe.waitTerminal(id);
  fe.drain();
}

TEST(ClusterProtocol, BatchSubmitRejectsMalformedBatches) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  // Missing and empty jobs arrays reject as a unit.
  json::Value no_jobs = json::parse(call(fe, R"({"cmd":"BATCH_SUBMIT"})"));
  EXPECT_FALSE(no_jobs.boolean("ok", true));
  json::Value empty =
      json::parse(call(fe, R"({"cmd":"BATCH_SUBMIT","jobs":[]})"));
  EXPECT_FALSE(empty.boolean("ok", true));
  // Duplicate tags reject as a unit, before any spec is submitted.
  const std::string spec_line = json::dump(serve::specToJson(tinySpec(1)));
  json::Value dup = json::parse(call(
      fe, R"({"cmd":"BATCH_SUBMIT","jobs":[{"spec":)" + spec_line +
              R"(,"tag":"x"},{"spec":)" + spec_line + R"(,"tag":"x"}]})"));
  EXPECT_FALSE(dup.boolean("ok", true));
  EXPECT_EQ(fe.stats().total.submitted, 0u);
  fe.drain();
}

TEST(ClusterProtocol, BatchSubmitFailsOnlyTheInvalidSpec) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  const std::string good = json::dump(serve::specToJson(tinySpec(1)));
  const json::Value v = json::parse(call(
      fe, R"({"cmd":"BATCH_SUBMIT","jobs":[{"spec":)" + good +
              R"(},{"spec":{"bogus_key":1}},{"spec":)" + good + R"(}]})"));
  EXPECT_TRUE(v.boolean("ok", false));
  EXPECT_EQ(v.num("count", -1), 3);
  EXPECT_EQ(v.num("accepted", -1), 2);
  const json::Value* verdicts = v.find("jobs");
  ASSERT_NE(verdicts, nullptr);
  EXPECT_TRUE(verdicts->at(0).boolean("ok", false));
  EXPECT_FALSE(verdicts->at(1).boolean("ok", true));
  EXPECT_NE(verdicts->at(1).str("error", ""), "");
  EXPECT_TRUE(verdicts->at(2).boolean("ok", false));
  fe.drain();
}

// ---------------------------------------------------------------------------
// Streaming RESULTS

TEST(ClusterProtocol, ResultsStreamsCompletionsThenEnd) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  std::vector<std::uint64_t> gids;
  std::string ids = "[";
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto sub = fe.submit(tinySpec(seed), true);
    ASSERT_TRUE(sub.job);
    gids.push_back(sub.id);
    ids += (seed ? "," : "") + std::to_string(sub.id);
  }
  ids += ",999]";  // one unknown id: reported, not fatal
  Emitted out;
  EXPECT_TRUE(handleClusterLine(
      fe, R"({"cmd":"RESULTS","ids":)" + ids + R"(,"timeout_ms":30000})",
      out.sink()));
  ASSERT_EQ(out.lines.size(), 6u);  // 4 results + 1 unknown + end
  std::set<std::uint64_t> seen;
  std::size_t unknown = 0;
  for (std::size_t i = 0; i + 1 < out.lines.size(); ++i) {
    const json::Value event = out.at(i);
    EXPECT_EQ(event.str("event", ""), "result");
    if (event.boolean("ok", false))
      seen.insert(static_cast<std::uint64_t>(event.num("id", 0)));
    else
      ++unknown;
  }
  EXPECT_EQ(seen, std::set<std::uint64_t>(gids.begin(), gids.end()));
  EXPECT_EQ(unknown, 1u);
  const json::Value end = out.at(out.lines.size() - 1);
  EXPECT_EQ(end.str("event", ""), "end");
  EXPECT_EQ(end.num("remaining", -1), 0);
  fe.drain();
}

TEST(ClusterProtocol, ResultsStopsWhenSubscriberDisconnects) {
  // A subscriber that goes away mid-stream: the sink starts returning
  // false, and the handler must stop (close the connection) rather than
  // keep waiting for the remaining jobs.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [&](const serve::JobSpec& spec) {
                       if (spec.source.seed >= 100) {
                         std::unique_lock<std::mutex> lk(mu);
                         cv.wait(lk, [&] { return release; });
                       }
                       return core::FlowResult{};
                     });
  const auto fast = fe.submit(tinySpec(1), true);
  const auto slow = fe.submit(tinySpec(100), true);
  ASSERT_TRUE(fast.job);
  ASSERT_TRUE(slow.job);
  fe.waitTerminal(fast.id);

  std::vector<std::string> lines;
  const serve::TcpServer::LineSink dead_after_one =
      [&](const std::string& line) {
        lines.push_back(line);
        return false;  // peer hung up
      };
  EXPECT_FALSE(handleClusterLine(
      fe,
      R"({"cmd":"RESULTS","ids":[)" + std::to_string(fast.id) + "," +
          std::to_string(slow.id) + R"(],"timeout_ms":30000})",
      dead_after_one));
  EXPECT_EQ(lines.size(), 1u);  // the fast job's event, then disconnect
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  fe.waitTerminal(slow.id);
  fe.drain();
}

// ---------------------------------------------------------------------------
// DRAIN + stats coherence

TEST(ClusterProtocol, DrainShardRejectsNewWorkThere) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  const json::Value v =
      json::parse(call(fe, R"({"cmd":"DRAIN","shard":0})"));
  EXPECT_TRUE(v.boolean("ok", false));
  EXPECT_TRUE(v.boolean("drained", false));
  // Submissions routed to shard 0 now reject; shard 1 still accepts.
  std::size_t accepted = 0, rejected = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto sub = fe.submit(tinySpec(seed), false);
    if (sub.job) {
      EXPECT_EQ(sub.shard, 1u);
      ++accepted;
      fe.waitTerminal(sub.id);
    } else {
      EXPECT_EQ(sub.shard, 0u);
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  const ClusterStats cs = fe.stats();
  EXPECT_EQ(cs.routed, accepted);
  EXPECT_EQ(cs.rejected, rejected);
  fe.drain();
}

TEST(ClusterFrontend, StatsStayCoherentDuringShutdown) {
  // The satellite fix: a stats() aggregation racing a shard's shutdown()
  // must see every job in exactly one state — the coherence identity
  // holds for every snapshot, including mid-teardown.
  for (int round = 0; round < 4; ++round) {
    ClusterFrontend fe(
        sharedTech(), sharedLut(), smallCluster(3, 2),
        [](const serve::JobSpec& spec) {
          if (spec.source.seed % 7 == 0)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          return core::FlowResult{};
        });
    std::atomic<bool> stop{false};
    std::thread sampler([&] {
      while (!stop.load()) {
        const ClusterStats cs = fe.stats();
        for (const serve::SchedulerStats& s : cs.shards)
          EXPECT_EQ(s.submitted, s.done + s.failed + s.cancelled + s.running +
                                     s.queue_depth);
        EXPECT_EQ(cs.total.submitted,
                  cs.total.done + cs.total.failed + cs.total.cancelled +
                      cs.total.running + cs.total.queue_depth);
      }
    });
    std::thread submitter([&] {
      for (std::uint64_t seed = 0; seed < 200 && !stop.load(); ++seed)
        fe.submit(tinySpec(seed), false);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    fe.shutdownShard(round % 3);
    fe.shutdown();
    submitter.join();
    stop.store(true);
    sampler.join();
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan schedules)

TEST(ClusterConcurrency, BatchSubmitStreamingAndDrainRace) {
  // Batch submitters, a streaming subscriber, a stats sampler, and a
  // shard drain all at once — the schedule cluster_test_tsan exists for.
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(3, 2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  std::mutex ids_mu;
  std::vector<std::uint64_t> all_ids;
  std::atomic<bool> stop{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int batch = 0; batch < 8; ++batch) {
        json::Value jobs = json::Value::array();
        for (int j = 0; j < 4; ++j) {
          json::Value entry = json::Value::object();
          entry.set("spec", serve::specToJson(tinySpec(
                                static_cast<std::uint64_t>(
                                    t * 1000 + batch * 10 + j))));
          jobs.push(std::move(entry));
        }
        json::Value req = json::Value::object();
        req.set("cmd", "BATCH_SUBMIT");
        req.set("jobs", std::move(jobs));
        Emitted out;
        handleClusterLine(fe, json::dump(req), out.sink());
        const json::Value v = out.at(0);
        if (const json::Value* verdicts = v.find("jobs")) {
          std::lock_guard<std::mutex> lk(ids_mu);
          for (const json::Value& entry : verdicts->items())
            if (entry.boolean("ok", false))
              all_ids.push_back(
                  static_cast<std::uint64_t>(entry.num("id", 0)));
        }
      }
    });
  }

  std::thread subscriber([&] {
    while (!stop.load()) {
      std::string ids;
      {
        std::lock_guard<std::mutex> lk(ids_mu);
        if (all_ids.empty()) continue;
        for (std::size_t i = std::max<std::size_t>(all_ids.size(), 8) - 8;
             i < all_ids.size(); ++i) {
          if (!ids.empty()) ids += ',';
          ids += std::to_string(all_ids[i]);
        }
      }
      Emitted out;
      handleClusterLine(
          fe, R"({"cmd":"RESULTS","ids":[)" + ids + R"(],"timeout_ms":50})",
          out.sink());
    }
  });

  std::thread sampler([&] {
    while (!stop.load()) (void)fe.stats();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fe.drainShard(1);
  for (std::thread& t : submitters) t.join();
  stop.store(true);
  subscriber.join();
  sampler.join();
  fe.drain();
  // Everything accepted eventually completed (drain waits for the queue).
  const ClusterStats cs = fe.stats();
  EXPECT_EQ(cs.total.submitted,
            cs.total.done + cs.total.failed + cs.total.cancelled);
}

// ---------------------------------------------------------------------------
// Job telemetry across shards

TEST(ClusterObs, TraceContextPropagatesAcrossShardsInOneMergedExport) {
  const std::uint64_t since = obs::nowNs();
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(3));

  // One BATCH_SUBMIT carrying three traced jobs; the router spreads them
  // over the shards, but each job's spans must still come back under the
  // trace id the client chose.
  json::Value jobs = json::Value::array();
  std::vector<std::uint64_t> trace_ids;
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    serve::JobSpec spec = tinySpec(seed);
    spec.trace_id = obs::traceIdFor(serve::contentHash(spec), seed + 1);
    trace_ids.push_back(spec.trace_id);
    json::Value entry = json::Value::object();
    entry.set("spec", serve::specToJson(spec));
    entry.set("tag", "trace-" + std::to_string(seed));
    jobs.push(std::move(entry));
  }
  json::Value req = json::Value::object();
  req.set("cmd", "BATCH_SUBMIT");
  req.set("jobs", std::move(jobs));
  req.set("block", true);
  const json::Value reply = json::parse(call(fe, json::dump(req)));
  ASSERT_TRUE(reply.boolean("ok", false)) << json::dump(reply);
  const json::Value* verdicts = reply.find("jobs");
  ASSERT_NE(verdicts, nullptr);
  ASSERT_EQ(verdicts->size(), 3u);
  std::vector<std::uint64_t> gids;
  for (std::size_t i = 0; i < verdicts->size(); ++i) {
    const json::Value& v = verdicts->at(i);
    ASSERT_TRUE(v.boolean("ok", false)) << json::dump(v);
    // Each per-entry verdict echoes its own trace id.
    EXPECT_EQ(v.str("trace_id", ""), obs::traceIdHex(trace_ids[i]));
    gids.push_back(static_cast<std::uint64_t>(v.num("id", 0)));
  }
  for (const std::uint64_t gid : gids) fe.waitTerminal(gid);
  // No drain: spans land in the ring before the terminal notify, so the
  // export is complete as soon as the jobs are terminal.

  for (std::size_t i = 0; i < gids.size(); ++i) {
    EXPECT_EQ(fe.traceId(gids[i]), trace_ids[i]);
    const std::string hex = obs::traceIdHex(trace_ids[i]);
    const json::Value tr = json::parse(
        call(fe, R"({"cmd":"TRACE","id":)" + std::to_string(gids[i]) + "}"));
    ASSERT_TRUE(tr.boolean("ok", false)) << json::dump(tr);
    EXPECT_EQ(tr.str("trace_id", ""), hex);
    const json::Value* events = tr.find("trace")->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);
    bool saw_job = false, saw_flow = false;
    for (std::size_t e = 0; e < events->size(); ++e) {
      const json::Value& ev = events->at(e);
      EXPECT_EQ(ev.find("args")->str("trace_id", ""), hex) << json::dump(ev);
      const std::string name = ev.str("name", "");
      if (name == "serve.job") saw_job = true;
      if (name == "flow.run") saw_flow = true;
    }
    EXPECT_TRUE(saw_job);
    EXPECT_TRUE(saw_flow);
    // The raw ring agrees with the wire export: filtering the global
    // tracer by this id finds only spans stamped with it.
    for (const obs::TraceEvent& ev : obs::Tracer::global().collect(
             since, trace_ids[i]))
      EXPECT_EQ(ev.trace_id, trace_ids[i]);
  }
}

TEST(ClusterObs, FlightRecordsAreIdenticalAcrossShardCounts) {
  serve::JobSpec spec = tinySpec(60, core::FlowMode::kGlobalLocal);
  spec.options.global.u_sweep = {0.05, 0.2};
  spec.options.record = true;

  auto recordOf = [&](std::size_t shards) -> std::string {
    ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(shards));
    const auto sub = fe.submit(spec, true);
    EXPECT_TRUE(sub.job);
    if (!sub.job) return "";
    const std::string record = fe.result(sub.id).flight_record;
    fe.drain();
    return record;
  };

  const std::string sharded = recordOf(3);
  const std::string solo = recordOf(1);
  ASSERT_FALSE(sharded.empty());
  EXPECT_EQ(sharded, solo);  // shard placement never leaks into the record
  (void)json::parse(sharded);  // strict JSON
}

// ---------------------------------------------------------------------------
// TCP round trip

TEST(ClusterTcp, BatchAndStreamingOverLiveSocket) {
  ClusterFrontend fe(sharedTech(), sharedLut(), smallCluster(2),
                     [](const serve::JobSpec&) { return core::FlowResult{}; });
  serve::TcpServer server(clusterLineHandler(fe));
  serve::TcpClient client("127.0.0.1", server.port());

  json::Value jobs = json::Value::array();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    json::Value entry = json::Value::object();
    entry.set("spec", serve::specToJson(tinySpec(seed)));
    jobs.push(std::move(entry));
  }
  json::Value req = json::Value::object();
  req.set("cmd", "BATCH_SUBMIT");
  req.set("jobs", std::move(jobs));
  req.set("block", true);
  const json::Value reply = client.call(req);
  ASSERT_TRUE(reply.boolean("ok", false));
  std::string ids;
  for (const json::Value& entry : reply.find("jobs")->items()) {
    if (!ids.empty()) ids += ',';
    ids += std::to_string(static_cast<std::uint64_t>(entry.num("id", 0)));
  }

  client.send(R"({"cmd":"RESULTS","ids":[)" + ids + R"(],"timeout_ms":30000})");
  std::size_t events = 0;
  for (;;) {
    const json::Value event = json::parse(client.readLine());
    if (event.str("event", "") == "end") {
      EXPECT_EQ(event.num("remaining", -1), 0);
      break;
    }
    EXPECT_EQ(event.str("event", ""), "result");
    ++events;
  }
  EXPECT_EQ(events, 3u);
  server.stop();
  fe.drain();
}

}  // namespace
}  // namespace skewopt::cluster
