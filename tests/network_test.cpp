#include <gtest/gtest.h>

#include <set>

#include "network/clock_tree.h"
#include "network/routing.h"

namespace skewopt::network {
namespace {

ClockTree smallTree() {
  // src -> b1 -> {b2 -> {s1, s2}, b3 -> b4 -> s3}
  ClockTree t({0, 0});
  const int b1 = t.addBuffer(0, {10, 0}, 1, "b1");
  const int b2 = t.addBuffer(b1, {20, 10}, 0, "b2");
  t.addSink(b2, {30, 10}, "s1");
  t.addSink(b2, {30, 20}, "s2");
  const int b3 = t.addBuffer(b1, {20, -10}, 0, "b3");
  const int b4 = t.addBuffer(b3, {30, -10}, 0, "b4");
  t.addSink(b4, {40, -10}, "s3");
  return t;
}

TEST(ClockTree, ConstructionAndValidate) {
  ClockTree t = smallTree();
  std::string err;
  EXPECT_TRUE(t.validate(&err)) << err;
  EXPECT_EQ(t.sinks().size(), 3u);
  EXPECT_EQ(t.numBuffers(), 4u);
  EXPECT_EQ(t.node(t.root()).kind, NodeKind::Source);
}

TEST(ClockTree, Levels) {
  ClockTree t = smallTree();
  EXPECT_EQ(t.level(0), 0);
  EXPECT_EQ(t.level(1), 1);   // b1
  EXPECT_EQ(t.level(2), 2);   // b2
  EXPECT_EQ(t.level(6), 3);   // b4
  EXPECT_EQ(t.level(7), 3);   // s3 counts buffers above it
}

TEST(ClockTree, PathToRoot) {
  ClockTree t = smallTree();
  const std::vector<int> p = t.pathToRoot(7);  // s3
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.front(), 7);
  EXPECT_EQ(p.back(), 0);
}

TEST(ClockTree, MoveAndResize) {
  ClockTree t = smallTree();
  const std::uint64_t stamp = t.editStamp();
  t.moveNode(1, {11, 1});
  EXPECT_GT(t.editStamp(), stamp);
  EXPECT_DOUBLE_EQ(t.node(1).pos.x, 11.0);
  t.resize(1, 3);
  EXPECT_EQ(t.node(1).cell, 3);
  EXPECT_THROW(t.moveNode(0, {1, 1}), std::invalid_argument);  // source
  EXPECT_THROW(t.resize(3, 1), std::invalid_argument);         // sink
}

TEST(ClockTree, ReassignDriver) {
  ClockTree t = smallTree();
  t.reassignDriver(6, 2);  // b4 under b2
  std::string err;
  EXPECT_TRUE(t.validate(&err)) << err;
  EXPECT_EQ(t.node(6).parent, 2);
  // Cycle prevention: cannot move b1 under its own descendant.
  EXPECT_THROW(t.reassignDriver(1, 6), std::invalid_argument);
  // Sinks can be reassigned too.
  t.reassignDriver(3, 5);
  EXPECT_TRUE(t.validate(&err)) << err;
}

TEST(ClockTree, RemoveInteriorBuffer) {
  ClockTree t = smallTree();
  // b3 (id 5) is single-child: remove splices b4 under b1.
  t.removeInteriorBuffer(5);
  std::string err;
  EXPECT_TRUE(t.validate(&err)) << err;
  EXPECT_EQ(t.node(6).parent, 1);
  EXPECT_FALSE(t.isValid(5));
  EXPECT_EQ(t.numBuffers(), 3u);
  // b2 has two children: not removable this way.
  EXPECT_THROW(t.removeInteriorBuffer(2), std::invalid_argument);
}

TEST(ClockTree, RemoveLeafBuffer) {
  ClockTree t({0, 0});
  const int b = t.addBuffer(0, {1, 1}, 0);
  t.removeLeafBuffer(b);
  EXPECT_FALSE(t.isValid(b));
  std::string err;
  EXPECT_TRUE(t.validate(&err)) << err;
}

TEST(ClockTree, ArcsDecomposition) {
  ClockTree t = smallTree();
  const std::vector<Arc> arcs = t.extractArcs();
  // Arcs: src->b1; b1->b2; b1->[b3,b4]->s3 (both b3 and b4 are
  // single-child, hence interior); b2->s1; b2->s2.
  ASSERT_EQ(arcs.size(), 5u);
  std::set<int> interiors;
  std::size_t sink_terminated = 0;
  for (const Arc& a : arcs) {
    EXPECT_TRUE(t.node(a.src).kind != NodeKind::Sink);
    for (const int i : a.interior) {
      EXPECT_EQ(t.node(i).children.size(), 1u);
      EXPECT_TRUE(interiors.insert(i).second) << "interior node in 2 arcs";
    }
    if (t.node(a.dst).kind == NodeKind::Sink) ++sink_terminated;
    EXPECT_GE(a.direct_len_um, 0.0);
  }
  EXPECT_EQ(sink_terminated, 3u);
  EXPECT_EQ(interiors.count(5), 1u);  // b3 interior of b1->s3
  EXPECT_EQ(interiors.count(6), 1u);  // b4 interior of b1->s3
}

TEST(ClockTree, ArcsCoverEveryPath) {
  ClockTree t = smallTree();
  const std::vector<Arc> arcs = t.extractArcs();
  std::vector<int> arc_by_dst(t.numNodes(), -1);
  for (const Arc& a : arcs) arc_by_dst[static_cast<std::size_t>(a.dst)] = a.id;
  for (const int s : t.sinks()) {
    // Walk anchors from the sink to the root; every step must be an arc.
    int cur = s;
    int steps = 0;
    while (cur != t.root()) {
      const int aid = arc_by_dst[static_cast<std::size_t>(cur)];
      ASSERT_GE(aid, 0);
      cur = arcs[static_cast<std::size_t>(aid)].src;
      ASSERT_LT(++steps, 100);
    }
    EXPECT_GE(steps, 2);
  }
}

TEST(ClockTree, ValidateCatchesDeadParent) {
  ClockTree t = smallTree();
  t.removeLeafBuffer(t.addBuffer(1, {5, 5}, 0));
  std::string err;
  EXPECT_TRUE(t.validate(&err)) << err;
}

TEST(Routing, RebuildAllAndNets) {
  ClockTree t = smallTree();
  Routing r;
  r.rebuildAll(t);
  EXPECT_EQ(r.numNets(), 5u);  // src, b1..b4 all drive something
  EXPECT_NE(r.net(0), nullptr);
  EXPECT_EQ(r.net(3), nullptr);  // sink drives nothing
  EXPECT_GT(r.totalWirelength(), 0.0);
}

TEST(Routing, RebuildAroundAfterMove) {
  ClockTree t = smallTree();
  Routing r;
  r.rebuildAll(t);
  const double before = r.totalWirelength();
  t.moveNode(2, {60, 40});
  r.rebuildAround(t, 2);
  EXPECT_NE(r.totalWirelength(), before);
}

TEST(Routing, ExtraAccumulatesAndReads) {
  ClockTree t = smallTree();
  Routing r;
  r.rebuildAll(t);
  const double before = r.totalWirelength();
  const double jog = r.extraOf(2, 0);  // router jogs may already be present
  r.addExtra(2, 0, 25.0);
  r.addExtra(2, 0, 5.0);
  EXPECT_NEAR(r.extraOf(2, 0), jog + 30.0, 1e-9);
  EXPECT_NEAR(r.totalWirelength(), before + 30.0, 1e-6);
  EXPECT_THROW(r.addExtra(99, 0, 1.0), std::out_of_range);
}

TEST(Routing, PinOrderMatchesChildren) {
  ClockTree t = smallTree();
  Routing r;
  r.rebuildAll(t);
  const route::SteinerTree* net = r.net(2);
  ASSERT_NE(net, nullptr);
  const auto& kids = t.node(2).children;
  ASSERT_EQ(net->pin_node.size(), kids.size());
  for (std::size_t i = 0; i < kids.size(); ++i) {
    EXPECT_DOUBLE_EQ(net->nodes[net->pin_node[i]].x, t.node(kids[i]).pos.x);
    EXPECT_DOUBLE_EQ(net->nodes[net->pin_node[i]].y, t.node(kids[i]).pos.y);
  }
}

TEST(ClockTree, StressEditsKeepValid) {
  geom::Rng rng(17);
  ClockTree t({0, 0});
  std::vector<int> bufs = {t.addBuffer(0, {5, 5}, 0)};
  for (int i = 0; i < 60; ++i)
    bufs.push_back(t.addBuffer(bufs[rng.index(bufs.size())],
                               rng.pointIn(geom::Rect{0, 0, 100, 100}),
                               static_cast<int>(rng.index(5))));
  for (int i = 0; i < 80; ++i)
    t.addSink(bufs[rng.index(bufs.size())],
              rng.pointIn(geom::Rect{0, 0, 100, 100}));
  std::string err;
  ASSERT_TRUE(t.validate(&err)) << err;
  for (int i = 0; i < 200; ++i) {
    const int b = bufs[rng.index(bufs.size())];
    if (!t.isValid(b)) continue;
    const int op = static_cast<int>(rng.index(3));
    if (op == 0) {
      t.moveNode(b, rng.pointIn(geom::Rect{0, 0, 100, 100}));
    } else if (op == 1) {
      t.resize(b, static_cast<int>(rng.index(5)));
    } else {
      const int np = bufs[rng.index(bufs.size())];
      if (t.isValid(np) && np != b && !t.isAncestorOrSelf(b, np) &&
          t.node(b).parent != np)
        t.reassignDriver(b, np);
    }
    ASSERT_TRUE(t.validate(&err)) << "op " << op << " iter " << i << ": " << err;
  }
}

}  // namespace
}  // namespace skewopt::network
