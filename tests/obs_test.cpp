// Tests for the observability layer (src/obs): the metrics registry
// (kinds, validation, snapshots, Prometheus exposition), the tracer
// (strict-JSON export, span nesting across ThreadPool slices, seqlock
// reader safety under concurrent emission, trace-context stamping and
// filtering, configurable ring capacity), the structured logger (strict
// JSON-lines, byte-determinism under a fake clock, rate limiting), the
// flight-recorder JSON builder, and the determinism claim the docs make:
// with a fake clock injected, a serial and a parallel run of the same
// local optimization produce bit-identical metric snapshots.
//
// The whole file also runs under ThreadSanitizer as obs_test_tsan (see
// tests/CMakeLists.txt) — the race coverage behind the per-thread ring
// buffer's single-writer seqlock discipline.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/frontend.h"
#include "core/local_opt.h"
#include "core/objective.h"
#include "obs/clock.h"
#include "obs/log.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/warm_state.h"
#include "sta/timer.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"
#include "testgen/testgen.h"

namespace skewopt::obs {
namespace {

/// Enables metric updates for one test, restoring the disabled default.
struct MetricsOnScope {
  MetricsOnScope() { setMetricsEnabled(true); }
  ~MetricsOnScope() { setMetricsEnabled(false); }
};

/// Fixed fake clock: every duration measures as zero, which pins the
/// duration-valued histograms for the snapshot-identity test.
std::uint64_t fixedClock() { return 5'000'000; }

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();

  Counter& c = reg.counter("obs_test_basic_total", "help text");
  c.reset();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge& g = reg.gauge("obs_test_basic_gauge");
  g.reset();
  g.set(2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);

  Histogram& h = reg.histogram("obs_test_basic_ms", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (le=1)
  h.observe(1.0);   // bucket 0 (bounds are inclusive)
  h.observe(7.0);   // bucket 1 (le=10)
  h.observe(99.0);  // +Inf bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 107.5);

  // Repeated registration returns the same object.
  EXPECT_EQ(&c, &reg.counter("obs_test_basic_total"));
  EXPECT_EQ(&h, &reg.histogram("obs_test_basic_ms", {1.0, 10.0}));
}

TEST(MetricsTest, UpdatesAreNoOpsWhileDisabled) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& c = reg.counter("obs_test_disabled_total");
  Gauge& g = reg.gauge("obs_test_disabled_gauge");
  Histogram& h = reg.histogram("obs_test_disabled_ms", defaultMsBuckets());
  c.reset();
  g.reset();
  h.reset();

  ASSERT_FALSE(metricsOn());
  c.add(7);
  g.set(3.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, RegistryValidatesNamesKindsAndBounds) {
  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_THROW(reg.counter(""), std::logic_error);
  EXPECT_THROW(reg.counter("9starts_with_digit"), std::logic_error);
  EXPECT_THROW(reg.counter("has space"), std::logic_error);
  EXPECT_NO_THROW(reg.counter("obs_test_valid:name_0"));

  reg.counter("obs_test_kind_clash");
  EXPECT_THROW(reg.gauge("obs_test_kind_clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("obs_test_kind_clash", {1.0}), std::logic_error);

  reg.histogram("obs_test_bounds_clash", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("obs_test_bounds_clash", {1.0, 3.0}),
               std::logic_error);
  // Unsorted or non-finite bounds are rejected up front.
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);
}

TEST(MetricsTest, ServeEvictionAndWarmStateMetricNamesArePinned) {
  // Dashboards key on these exact names; renaming one is a breaking
  // change. The stores register against the global registry, so the test
  // drives them and asserts the deltas under the pinned names.
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& hits = reg.counter("skewopt_serve_warmstate_hits_total");
  Counter& misses = reg.counter("skewopt_serve_warmstate_misses_total");
  Counter& evictions = reg.counter("skewopt_serve_warmstate_evictions_total");
  Counter& cache_evictions =
      reg.counter("skewopt_serve_cache_evictions_total");
  const auto h0 = hits.value();
  const auto m0 = misses.value();
  const auto e0 = evictions.value();
  const auto ce0 = cache_evictions.value();

  serve::WarmStateStore store(1);
  EXPECT_EQ(store.lookup("a"), nullptr);  // miss
  store.insert("a", std::make_shared<core::FlowWarmState>());
  EXPECT_NE(store.lookup("a"), nullptr);  // hit
  store.insert("b", std::make_shared<core::FlowWarmState>());  // evicts "a"
  EXPECT_EQ(hits.value() - h0, 1u);
  EXPECT_EQ(misses.value() - m0, 1u);
  EXPECT_EQ(evictions.value() - e0, 1u);
  EXPECT_EQ(reg.gauge("skewopt_serve_warmstate_entries").value(), 1.0);

  serve::ResultCache cache(1);
  cache.insert("a", core::FlowResult{});
  cache.insert("b", core::FlowResult{});  // evicts "a"
  EXPECT_EQ(cache_evictions.value() - ce0, 1u);
}

TEST(MetricsTest, SnapshotIsNameOrderedAndComparable) {
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("obs_test_snap_b_total").reset();
  reg.counter("obs_test_snap_a_total").reset();

  const Snapshot s1 = reg.snapshot();
  ASSERT_TRUE(std::is_sorted(
      s1.begin(), s1.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));
  EXPECT_EQ(s1, reg.snapshot());  // stable when nothing moves

  reg.counter("obs_test_snap_a_total").add();
  EXPECT_NE(s1, reg.snapshot());
}

TEST(MetricsTest, PrometheusTextFormat) {
  // prometheusText renders a plain Snapshot, so the expected output can be
  // pinned exactly without touching the global registry.
  MetricSample c;
  c.name = "jobs_total";
  c.kind = MetricKind::kCounter;
  c.help = "Jobs\nprocessed \\ total";
  c.count = 3;
  MetricSample g;
  g.name = "queue_depth";
  g.kind = MetricKind::kGauge;
  g.value = 2.5;
  MetricSample h;
  h.name = "latency_ms";
  h.kind = MetricKind::kHistogram;
  h.count = 3;
  h.value = 12.25;
  h.buckets = {{1.0, 1}, {10.0, 2},
               {std::numeric_limits<double>::infinity(), 3}};

  const std::string text = prometheusText({c, g, h});
  EXPECT_EQ(text,
            "# HELP jobs_total Jobs\\nprocessed \\\\ total\n"
            "# TYPE jobs_total counter\n"
            "jobs_total 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 2.5\n"
            "# TYPE latency_ms histogram\n"
            "latency_ms_bucket{le=\"1\"} 1\n"
            "latency_ms_bucket{le=\"10\"} 2\n"
            "latency_ms_bucket{le=\"+Inf\"} 3\n"
            "latency_ms_sum 12.25\n"
            "latency_ms_count 3\n");
}

TEST(MetricsTest, LabeledFamiliesAreDistinctChildrenOfOneFamily) {
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& a = reg.counter("obs_test_labeled_total", {{"shard", "0"}});
  Counter& b = reg.counter("obs_test_labeled_total", {{"shard", "1"}});
  EXPECT_NE(&a, &b);  // one child per label set
  EXPECT_EQ(&a, &reg.counter("obs_test_labeled_total", {{"shard", "0"}}));
  a.reset();
  b.reset();
  a.add(2);
  b.add(5);
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 5u);

  // Kind consistency is family-wide: a labeled child cannot disagree with
  // the unlabeled one, in either direction.
  EXPECT_THROW(reg.gauge("obs_test_labeled_total", {{"shard", "2"}}),
               std::logic_error);
  EXPECT_THROW(reg.gauge("obs_test_labeled_total"), std::logic_error);

  // Label names are validated; values are escaped on exposition.
  EXPECT_THROW(renderLabels({{"9bad", "v"}}), std::logic_error);
  EXPECT_EQ(renderLabels({{"shard", "0"}, {"mode", "a\"b\\c\nd"}}),
            "shard=\"0\",mode=\"a\\\"b\\\\c\\nd\"");
}

TEST(MetricsTest, LabeledSeriesRenderWithOneTypeLinePerFamily) {
  MetricSample c0;
  c0.name = "routed_total";
  c0.labels = "shard=\"0\"";
  c0.kind = MetricKind::kCounter;
  c0.help = "Routed jobs";
  c0.count = 7;
  MetricSample c1 = c0;
  c1.labels = "shard=\"1\"";
  c1.count = 9;
  const std::string text = prometheusText({c0, c1});
  EXPECT_EQ(text,
            "# HELP routed_total Routed jobs\n"
            "# TYPE routed_total counter\n"
            "routed_total{shard=\"0\"} 7\n"
            "routed_total{shard=\"1\"} 9\n");
}

TEST(MetricsTest, ClusterShardMetricNamesArePinned) {
  // The per-shard serving dashboards key on these exact family names and
  // the shard="N" label (docs/observability.md); renaming one is a
  // breaking change.
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& routed0 =
      reg.counter("skewopt_cluster_jobs_routed_total", {{"shard", "0"}});
  Counter& routed1 =
      reg.counter("skewopt_cluster_jobs_routed_total", {{"shard", "1"}});
  Counter& rejected0 =
      reg.counter("skewopt_cluster_jobs_rejected_total", {{"shard", "0"}});
  const auto r0 = routed0.value(), r1 = routed1.value();
  const auto x0 = rejected0.value();

  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  cluster::ClusterOptions copts;
  copts.shards = 2;
  copts.shard.workers = 1;
  cluster::ClusterFrontend fe(
      tech, lut, copts,
      [](const serve::JobSpec&) { return core::FlowResult{}; });
  std::size_t accepted = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    serve::JobSpec spec;
    spec.source.kind = serve::DesignSource::Kind::kTestgen;
    spec.source.testcase = "CLS1v1";
    spec.source.sinks = 8;
    spec.source.seed = seed;
    const auto sub = fe.submit(spec, true);
    if (sub.job) {
      ++accepted;
      fe.waitTerminal(sub.id);
    }
  }
  (void)fe.stats();  // refreshes the per-shard gauges
  EXPECT_EQ((routed0.value() - r0) + (routed1.value() - r1), accepted);
  EXPECT_EQ(rejected0.value(), x0);

  // Every family the cluster front-end owns, present with shard labels.
  std::map<std::string, std::string> seen;  // name -> labels (last wins)
  for (const MetricSample& s : reg.snapshot()) seen[s.name] = s.labels;
  for (const char* name :
       {"skewopt_cluster_jobs_routed_total",
        "skewopt_cluster_jobs_rejected_total",
        "skewopt_cluster_shard_queue_depth",
        "skewopt_cluster_shard_cache_hits",
        "skewopt_cluster_shard_cache_misses",
        "skewopt_cluster_shard_warm_hits",
        "skewopt_cluster_shard_warm_misses"}) {
    ASSERT_TRUE(seen.count(name)) << name;
    EXPECT_EQ(seen[name], "shard=\"1\"") << name;  // labeled, 2 shards
  }
  fe.drain();
}

TEST(MetricsTest, ConcurrentUpdatesLoseNothing) {
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& c = reg.counter("obs_test_concurrent_total");
  Gauge& g = reg.gauge("obs_test_concurrent_gauge");
  Histogram& h = reg.histogram("obs_test_concurrent_ms", {1.0, 10.0});
  c.reset();
  g.reset();
  h.reset();

  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.add(1.0);
        h.observe(0.5);
        (void)reg.snapshot();  // readers race writers harmlessly
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.bucket(0), static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TraceTest, ExportIsStrictJsonWithNestedSpans) {
  const std::uint64_t since = nowNs();
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    Span outer("test.outer");
    outer.arg("iters", std::int64_t{3});
    outer.arg("ratio", 0.5);
    outer.arg("ok", true);
    {
      Span inner("test.inner");
    }
  }
  tracer.stop();

  // The exporter promises strict JSON: the serve-side parser (which
  // rejects trailing garbage, bad escapes, etc.) must accept it.
  const serve::json::Value v = serve::json::parse(tracer.exportJson(since));
  EXPECT_EQ(v.str("displayTimeUnit", ""), "ms");
  const serve::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);

  const serve::json::Value& outer = events->at(0);
  const serve::json::Value& inner = events->at(1);
  EXPECT_EQ(outer.str("name", ""), "test.outer");
  EXPECT_EQ(outer.str("ph", ""), "X");
  EXPECT_EQ(outer.str("cat", ""), "skewopt");
  EXPECT_EQ(outer.find("args")->num("depth", -1), 0.0);
  EXPECT_EQ(outer.find("args")->num("iters", -1), 3.0);
  EXPECT_EQ(outer.find("args")->num("ratio", -1), 0.5);
  EXPECT_TRUE(outer.find("args")->boolean("ok", false));
  EXPECT_EQ(inner.str("name", ""), "test.inner");
  EXPECT_EQ(inner.find("args")->num("depth", -1), 1.0);

  // Perfetto reconstructs nesting from timestamp containment on the
  // thread track: the inner complete event lies inside the outer one.
  const double outer_ts = outer.num("ts", -1);
  const double outer_end = outer_ts + outer.num("dur", -1);
  const double inner_ts = inner.num("ts", -1);
  const double inner_end = inner_ts + inner.num("dur", -1);
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(TraceTest, SpansAreFreeWhileDisabled) {
  const std::uint64_t since = nowNs();
  ASSERT_FALSE(tracingOn());
  {
    Span s("test.disabled");
    s.arg("k", std::int64_t{1});
  }
  EXPECT_TRUE(Tracer::global().collect(since).empty());
}

TEST(TraceTest, NestingSurvivesThreadPoolRunSlices) {
  const std::uint64_t since = nowNs();
  Tracer& tracer = Tracer::global();
  tracer.start();

  support::ThreadPool pool(4);
  constexpr std::size_t kSlices = 16;
  pool.runSlices(kSlices, [](std::size_t slice) {
    Span outer("test.slice");
    outer.arg("slice", static_cast<std::int64_t>(slice));
    {
      Span inner("test.slice_inner");
    }
  });
  tracer.stop();

  const std::vector<TraceEvent> events = tracer.collect(since);
  std::size_t outers = 0;
  std::size_t inners = 0;
  // Per thread, events arrive in emit (ticket) order: every inner closes
  // before its outer, one level deeper, inside the outer's window.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->ticket < b->ticket;
              });
    for (std::size_t i = 0; i < list.size(); ++i) {
      const TraceEvent& e = *list[i];
      if (std::string(e.name) == "test.slice_inner") {
        ++inners;
        ASSERT_LT(i + 1, list.size());  // the enclosing outer closes next
        const TraceEvent& o = *list[i + 1];
        EXPECT_EQ(std::string(o.name), "test.slice");
        EXPECT_EQ(e.depth, o.depth + 1);
        EXPECT_GE(e.ts_ns, o.ts_ns);
        EXPECT_LE(e.ts_ns + e.dur_ns, o.ts_ns + o.dur_ns);
      } else {
        EXPECT_EQ(std::string(e.name), "test.slice");
        ++outers;
      }
    }
  }
  EXPECT_EQ(outers, kSlices);
  EXPECT_EQ(inners, kSlices);
}

TEST(TraceTest, ConcurrentEmissionNeverTearsReads) {
  const std::uint64_t since = nowNs();
  Tracer& tracer = Tracer::global();
  tracer.start();

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // Far more spans than ring slots, so exports race wrap-around.
      for (int i = 0; i < 3 * static_cast<int>(kTraceRingSlots); ++i) {
        Span s("test.storm");
        s.arg("i", static_cast<std::int64_t>(i));
      }
    });
  }
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : tracer.collect(since)) {
        // A torn slot would surface as a wild name pointer or depth.
        EXPECT_EQ(std::string(e.name), "test.storm");
        EXPECT_EQ(e.depth, 0u);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  tracer.stop();
}

// ---------------------------------------------------------------------------
// Trace context: the per-job identity spans are stamped with

TEST(TraceTest, ContextStampsSpansAndFiltersExports) {
  // traceIdFor is a pure function of (hash, job id), never 0; traceIdHex
  // is the pinned 16-digit lowercase wire format.
  const std::uint64_t id_a = traceIdFor(0x1234, 1);
  const std::uint64_t id_b = traceIdFor(0x1234, 2);
  EXPECT_NE(id_a, 0u);
  EXPECT_NE(id_b, 0u);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(id_a, traceIdFor(0x1234, 1));
  EXPECT_EQ(traceIdHex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(traceIdHex(id_a).size(), 16u);

  const std::uint64_t since = nowNs();
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    ScopedTraceContext ctx(id_a);
    EXPECT_EQ(currentTraceId(), id_a);
    Span a("test.ctx_a");
    {
      ScopedTraceContext nested(id_b);  // nests and restores
      Span b("test.ctx_b");
    }
    EXPECT_EQ(currentTraceId(), id_a);
  }
  EXPECT_EQ(currentTraceId(), 0u);
  {
    Span none("test.ctx_none");  // no context: stamped 0, filtered out
  }
  tracer.stop();

  const std::vector<TraceEvent> only_a = tracer.collect(since, id_a);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(std::string(only_a[0].name), "test.ctx_a");
  EXPECT_EQ(only_a[0].trace_id, id_a);
  EXPECT_EQ(tracer.collect(since).size(), 3u);  // unfiltered sees all

  // The filtered export is strict JSON and tags each event with the id.
  const serve::json::Value v =
      serve::json::parse(tracer.exportJson(since, id_b));
  const serve::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).str("name", ""), "test.ctx_b");
  EXPECT_EQ(events->at(0).find("args")->str("trace_id", ""),
            traceIdHex(id_b));
}

TEST(TraceTest, ContextPropagatesIntoThreadPoolSlices) {
  const std::uint64_t since = nowNs();
  const std::uint64_t id = traceIdFor(7, 7);
  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    ScopedTraceContext ctx(id);
    support::ThreadPool pool(3);
    constexpr std::size_t kSlices = 8;
    pool.runSlices(kSlices, [](std::size_t) {
      Span s("test.ctx_slice");
    });
  }
  tracer.stop();
  // Every slice span — including ones run by pool workers — carries the
  // submitting thread's context.
  const std::vector<TraceEvent> events = tracer.collect(since, id);
  ASSERT_EQ(events.size(), 8u);
  for (const TraceEvent& e : events)
    EXPECT_EQ(std::string(e.name), "test.ctx_slice");
}

TEST(TraceTest, RingCapacityIsConfigurableAndDropsAreCounted) {
  MetricsOnScope on;
  Counter& dropped_total = MetricsRegistry::global().counter(
      "skewopt_trace_spans_dropped_total");  // pinned name
  const auto d0 = dropped_total.value();

  Tracer small(TraceOptions{16});  // clamped up to the floor
  EXPECT_EQ(small.ringSlots(), 64u);
  Tracer big(TraceOptions{std::size_t{1} << 30});  // clamped down
  EXPECT_EQ(big.ringSlots(), std::size_t{1} << 22);
  // The global tracer honors SKEWOPT_TRACE_CAPACITY (read once, another
  // process's concern here); whatever it saw is within the clamp range.
  EXPECT_GE(Tracer::global().ringSlots(), 64u);
  EXPECT_LE(Tracer::global().ringSlots(), std::size_t{1} << 22);

  small.start();
  for (std::uint64_t i = 0; i < 100; ++i)
    small.emitEvent("test.capacity", i, 1);
  small.stop();

  // 100 spans into 64 slots: 36 evictions, counted per tracer and in the
  // process-wide metric; the ring keeps the newest spans.
  EXPECT_EQ(small.droppedSpans(), 36u);
  EXPECT_EQ(dropped_total.value() - d0, 36u);
  const std::vector<TraceEvent> kept = small.collect();
  ASSERT_EQ(kept.size(), 64u);
  EXPECT_EQ(kept.front().ts_ns, 36u);
  EXPECT_EQ(kept.back().ts_ns, 99u);
  EXPECT_EQ(big.droppedSpans(), 0u);
}

// ---------------------------------------------------------------------------
// Request counter (shared by the serve and cluster dispatchers)

TEST(MetricsTest, RequestCounterNameIsPinnedAndClampsUnknownVerbs) {
  // Dashboards key on skewopt_serve_requests_total{verb=,ok=}; the verb
  // label is clamped to the protocol's fixed set so a hostile client
  // cannot grow label cardinality.
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& submit_ok = reg.counter("skewopt_serve_requests_total",
                                   {{"verb", "SUBMIT"}, {"ok", "true"}});
  Counter& submit_err = reg.counter("skewopt_serve_requests_total",
                                    {{"verb", "SUBMIT"}, {"ok", "false"}});
  Counter& trace_ok = reg.counter("skewopt_serve_requests_total",
                                  {{"verb", "TRACE"}, {"ok", "true"}});
  Counter& unknown_ok = reg.counter("skewopt_serve_requests_total",
                                    {{"verb", "unknown"}, {"ok", "true"}});
  const auto a0 = submit_ok.value(), b0 = submit_err.value(),
             t0 = trace_ok.value(), u0 = unknown_ok.value();

  serve::countRequest("SUBMIT", true);
  serve::countRequest("SUBMIT", true);
  serve::countRequest("SUBMIT", false);
  serve::countRequest("TRACE", true);
  serve::countRequest("EVIL{injected=\"label\"}", true);  // clamped

  EXPECT_EQ(submit_ok.value() - a0, 2u);
  EXPECT_EQ(submit_err.value() - b0, 1u);
  EXPECT_EQ(trace_ok.value() - t0, 1u);
  EXPECT_EQ(unknown_ok.value() - u0, 1u);
}

// ---------------------------------------------------------------------------
// Structured logging

TEST(LogTest, LinesAreStrictJsonAndByteDeterministicUnderAFakeClock) {
  MetricsOnScope on;
  const std::string path =
      ::testing::TempDir() + "skewopt_obs_log_det.jsonl";
  std::remove(path.c_str());
  Counter& lines_total =
      MetricsRegistry::global().counter("skewopt_log_lines_total");
  const auto l0 = lines_total.value();

  setClockForTest(&fixedClock);
  Logger::Options opts;
  opts.level = LogLevel::kInfo;
  opts.path = path;
  ASSERT_TRUE(Logger::global().configure(opts));

  logInfo("obs test event")
      .field("job_id", std::uint64_t{7})
      .field("ratio", 0.5)
      .field("ok", true)
      .field("note", "a\"b\nc");
  logDebug("below the level").field("x", std::int64_t{1});  // gated out
  logWarn("second event");

  Logger::global().configure(Logger::Options{});  // off; closes the file
  setClockForTest(nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // Byte-pinned under the fake clock: field order is call order, strings
  // are JSON-escaped, doubles render shortest-round-trip.
  EXPECT_EQ(lines[0],
            R"({"ts_ns":5000000,"level":"info","msg":"obs test event",)"
            R"("job_id":7,"ratio":0.5,"ok":true,"note":"a\"b\nc"})");
  EXPECT_EQ(lines[1],
            R"({"ts_ns":5000000,"level":"warn","msg":"second event"})");
  for (const std::string& line : lines)
    EXPECT_NO_THROW(serve::json::parse(line)) << line;
  EXPECT_EQ(lines_total.value() - l0, 2u);  // pinned name
  std::remove(path.c_str());
}

TEST(LogTest, RateLimiterShedsAndCountsOverBudgetLines) {
  MetricsOnScope on;
  const std::string path =
      ::testing::TempDir() + "skewopt_obs_log_rate.jsonl";
  std::remove(path.c_str());
  Counter& dropped_total =
      MetricsRegistry::global().counter("skewopt_log_dropped_lines_total");
  const auto d0 = dropped_total.value();
  const auto g0 = Logger::global().droppedLines();

  setClockForTest(&fixedClock);  // one wall-clock second, forever
  Logger::Options opts;
  opts.level = LogLevel::kInfo;
  opts.path = path;
  opts.max_lines_per_sec = 2;
  ASSERT_TRUE(Logger::global().configure(opts));
  for (int i = 0; i < 5; ++i)
    logInfo("storm").field("i", static_cast<std::int64_t>(i));
  Logger::global().configure(Logger::Options{});
  setClockForTest(nullptr);

  EXPECT_EQ(Logger::global().droppedLines() - g0, 3u);
  EXPECT_EQ(dropped_total.value() - d0, 3u);  // pinned name
  std::ifstream in(path);
  std::size_t written = 0;
  for (std::string line; std::getline(in, line);) ++written;
  EXPECT_EQ(written, 2u);
  std::remove(path.c_str());
}

TEST(LogTest, ConfigureFailureKeepsThePreviousConfiguration) {
  Logger logger;  // a private instance: the global one stays untouched
  Logger::Options bad;
  bad.level = LogLevel::kInfo;
  bad.path = "/nonexistent-skewopt-dir/log.jsonl";
  std::string err;
  EXPECT_FALSE(logger.configure(bad, &err));
  EXPECT_NE(err.find("/nonexistent-skewopt-dir"), std::string::npos) << err;
  EXPECT_FALSE(logger.enabled(LogLevel::kError));  // still off

  // parseLogLevel covers the --log-level surface.
  LogLevel lvl = LogLevel::kOff;
  EXPECT_TRUE(parseLogLevel("warn", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  EXPECT_TRUE(parseLogLevel("off", &lvl));
  EXPECT_EQ(lvl, LogLevel::kOff);
  EXPECT_FALSE(parseLogLevel("verbose", &lvl));
  EXPECT_FALSE(parseLogLevel("INFO", &lvl));
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(RecorderTest, BuilderEmitsStrictJsonInAppendOrder) {
  FlightRecorder rec;
  rec.field("version", std::int64_t{1});
  rec.beginObject("global");
  rec.beginArray("u_points");
  rec.beginObject()
      .field("u_ps", 12.5)
      .field("lp_iterations", std::int64_t{40})
      .field("warm", false)
      .endObject();
  rec.beginObject()
      .field("u_ps", 15.0)
      .field("lp_iterations", std::int64_t{8})
      .field("warm", true)
      .endObject();
  rec.endArray();
  rec.endObject();
  rec.beginArray("sum_variation_ps");
  rec.value(101.25);
  rec.value(97.5);
  rec.endArray();
  rec.field("note", "escape \"this\"\n");

  const std::string doc = rec.json();
  EXPECT_EQ(doc,
            R"({"version":1,"global":{"u_points":[)"
            R"({"u_ps":12.5,"lp_iterations":40,"warm":false},)"
            R"({"u_ps":15,"lp_iterations":8,"warm":true}]},)"
            R"("sum_variation_ps":[101.25,97.5],)"
            R"("note":"escape \"this\"\n"})");
  EXPECT_NO_THROW(serve::json::parse(doc));  // strict JSON
}

TEST(RecorderTest, UnbalancedDocumentsThrowAndScopedInstallMasks) {
  FlightRecorder rec;
  rec.beginObject("open");
  EXPECT_THROW(rec.json(), std::logic_error);  // recording-site bug
  rec.endObject();
  EXPECT_NO_THROW(rec.json());

  // The thread-local install point the optimizers read through.
  EXPECT_EQ(currentFlightRecorder(), nullptr);
  FlightRecorder outer_rec;
  {
    ScopedFlightRecorder outer(&outer_rec);
    EXPECT_EQ(currentFlightRecorder(), &outer_rec);
    {
      ScopedFlightRecorder mask(nullptr);  // per-run isolation
      EXPECT_EQ(currentFlightRecorder(), nullptr);
    }
    EXPECT_EQ(currentFlightRecorder(), &outer_rec);
  }
  EXPECT_EQ(currentFlightRecorder(), nullptr);
}

// ---------------------------------------------------------------------------
// Determinism: serial vs parallel snapshots under a fake clock

/// The skewopt_local_* subset of a snapshot. Those metrics are driven only
/// by deterministic algorithm state (never thread identity), which is the
/// contract this test enforces; pool/STA metrics legitimately vary with
/// worker count and are excluded.
Snapshot localSubset(const Snapshot& snap) {
  Snapshot out;
  for (const MetricSample& s : snap)
    if (s.name.rfind("skewopt_local_", 0) == 0) out.push_back(s);
  return out;
}

TEST(DeterminismTest, SerialAndParallelLocalOptSnapshotsIdentical) {
  setClockForTest(&fixedClock);  // before any worker threads spin up
  MetricsOnScope on;
  MetricsRegistry& reg = MetricsRegistry::global();

  const tech::TechModel& tech = tech::TechModel::make28nm();
  testgen::TestcaseOptions topts;
  topts.sinks = 60;
  topts.seed = 13;
  const network::Design base = testgen::makeCls1(tech, "v1", topts);
  const sta::Timer timer(tech);
  const core::Objective objective(base, timer);

  core::LocalOptions o;
  o.max_iterations = 3;

  o.parallel_trials = false;
  network::Design serial = base;
  reg.reset();
  const core::LocalResult rs =
      core::LocalOptimizer(tech, o).run(serial, objective, nullptr);
  const Snapshot serial_snap = localSubset(reg.snapshot());

  o.parallel_trials = true;
  o.threads = 4;
  network::Design parallel = base;
  reg.reset();
  const core::LocalResult rp =
      core::LocalOptimizer(tech, o).run(parallel, objective, nullptr);
  const Snapshot parallel_snap = localSubset(reg.snapshot());

  setClockForTest(nullptr);

  ASSERT_EQ(rs.sum_after_ps, rp.sum_after_ps);  // precondition, not the point
  ASSERT_FALSE(serial_snap.empty());
  EXPECT_EQ(serial_snap, parallel_snap);

  // Sanity: the run actually drove the instruments.
  const auto find = [&](const std::string& name) -> const MetricSample* {
    for (const MetricSample& s : serial_snap)
      if (s.name == name) return &s;
    return nullptr;
  };
  const MetricSample* rounds = find("skewopt_local_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GT(rounds->count, 0u);
  const MetricSample* golden = find("skewopt_local_golden_trial_ms");
  ASSERT_NE(golden, nullptr);
  EXPECT_GT(golden->count, 0u);
  EXPECT_EQ(golden->value, 0.0);  // fake clock: every duration is zero
}

}  // namespace
}  // namespace skewopt::obs
