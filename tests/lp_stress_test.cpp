// Stress tests of the simplex on problems shaped like the global
// optimizer's LP (Eqs. 4-11): absolute-value splits, minimax V variables,
// ranged preservation rows, ratio rows, and a budget row — at sizes well
// beyond the unit tests — plus randomized known-optimum instances.
#include "lp/lp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/geom.h"

namespace skewopt::lp {
namespace {

/// Builds a synthetic instance of the paper-shaped LP:
///   arcs x corners delta+/- variables with (10)-style bounds,
///   V variables with (6)-style rows, (7)-style ranged rows,
///   (11)-style ratio rows, and min sum|delta| s.t. sum V <= U.
struct PaperShapedLp {
  Model model;
  int narcs, ncorners, npairs;
  std::vector<int> v_var;
  int base(int arc, int k) const { return 2 * (arc * ncorners + k); }
};

PaperShapedLp buildPaperShaped(geom::Rng& rng, int narcs, int ncorners,
                               int npairs, double u_bound_scale) {
  PaperShapedLp p;
  p.narcs = narcs;
  p.ncorners = ncorners;
  p.npairs = npairs;

  std::vector<std::vector<double>> delay(
      static_cast<std::size_t>(narcs),
      std::vector<double>(static_cast<std::size_t>(ncorners)));
  for (auto& row : delay)
    for (double& d : row) d = rng.uniform(20.0, 200.0);

  for (int a = 0; a < narcs; ++a) {
    for (int k = 0; k < ncorners; ++k) {
      const double d = delay[static_cast<std::size_t>(a)][static_cast<std::size_t>(k)];
      p.model.addVar(0.0, 0.2 * d, 1.0);   // delta+
      p.model.addVar(0.0, 0.4 * d, 1.0);   // delta-
    }
  }
  std::vector<double> alphas(static_cast<std::size_t>(ncorners), 1.0);
  for (int k = 1; k < ncorners; ++k)
    alphas[static_cast<std::size_t>(k)] = rng.uniform(0.6, 1.4);

  double orig_sum_v = 0.0;
  for (int pi = 0; pi < npairs; ++pi) {
    const int v = p.model.addVar(0.0, kInf, 0.0);
    p.v_var.push_back(v);
    // A pair touches 2-5 arcs with +/-1 coefficients.
    std::vector<std::pair<int, double>> coefs;
    const int touch = 2 + static_cast<int>(rng.index(4));
    for (int t = 0; t < touch; ++t)
      coefs.push_back({static_cast<int>(rng.index(static_cast<std::size_t>(narcs))),
                       rng.uniform() < 0.5 ? 1.0 : -1.0});
    std::vector<double> c(static_cast<std::size_t>(ncorners), 0.0);
    for (int k = 0; k < ncorners; ++k)
      for (const auto& [arc, cf] : coefs)
        c[static_cast<std::size_t>(k)] +=
            cf * delay[static_cast<std::size_t>(arc)][static_cast<std::size_t>(k)];
    double vmax = 0.0;
    for (int ka = 0; ka < ncorners; ++ka)
      for (int kb = ka + 1; kb < ncorners; ++kb)
        vmax = std::max(vmax, std::abs(alphas[static_cast<std::size_t>(ka)] *
                                           c[static_cast<std::size_t>(ka)] -
                                       alphas[static_cast<std::size_t>(kb)] *
                                           c[static_cast<std::size_t>(kb)]));
    orig_sum_v += vmax;

    for (int ka = 0; ka < ncorners; ++ka) {
      for (int kb = ka + 1; kb < ncorners; ++kb) {
        for (int sign = -1; sign <= 1; sign += 2) {
          std::vector<Term> terms = {{v, 1.0}};
          for (const auto& [arc, cf] : coefs) {
            const int va = p.base(arc, ka);
            const int vb = p.base(arc, kb);
            const double kca = -sign * alphas[static_cast<std::size_t>(ka)] * cf;
            const double kcb = sign * alphas[static_cast<std::size_t>(kb)] * cf;
            terms.push_back({va, kca});
            terms.push_back({va + 1, -kca});
            terms.push_back({vb, kcb});
            terms.push_back({vb + 1, -kcb});
          }
          const double rhs = sign * (alphas[static_cast<std::size_t>(ka)] *
                                         c[static_cast<std::size_t>(ka)] -
                                     alphas[static_cast<std::size_t>(kb)] *
                                         c[static_cast<std::size_t>(kb)]);
          p.model.addRow(rhs, kInf, std::move(terms));
        }
      }
    }
    // (7)-style ranged local-skew row at each corner.
    for (int k = 0; k < ncorners; ++k) {
      std::vector<Term> terms;
      for (const auto& [arc, cf] : coefs) {
        const int va = p.base(arc, k);
        terms.push_back({va, cf});
        terms.push_back({va + 1, -cf});
      }
      const double ck = c[static_cast<std::size_t>(k)];
      p.model.addRow(-std::abs(ck) - ck, std::abs(ck) - ck, std::move(terms));
    }
  }
  // (11)-style ratio rows between consecutive corners.
  for (int a = 0; a < narcs; ++a) {
    for (int k = 1; k < ncorners; ++k) {
      const double da = delay[static_cast<std::size_t>(a)][0];
      const double db = delay[static_cast<std::size_t>(a)][static_cast<std::size_t>(k)];
      const double r0 = da / db;
      const double w_up = r0 * 1.3, w_lo = r0 * 0.7;
      const int va = p.base(a, 0), vb = p.base(a, k);
      p.model.addRow(-kInf, w_up * db - da,
                     {{va, 1.0}, {va + 1, -1.0}, {vb, -w_up}, {vb + 1, w_up}});
      p.model.addRow(w_lo * db - da, kInf,
                     {{va, 1.0}, {va + 1, -1.0}, {vb, -w_lo}, {vb + 1, w_lo}});
    }
  }
  // (5): budget row.
  std::vector<Term> budget;
  for (const int v : p.v_var) budget.push_back({v, 1.0});
  p.model.addRow(-kInf, u_bound_scale * orig_sum_v, std::move(budget));
  return p;
}

class PaperShapedProp : public ::testing::TestWithParam<int> {};

TEST_P(PaperShapedProp, SolvesToFeasibleOptimum) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  PaperShapedLp p = buildPaperShaped(rng, /*narcs=*/30, /*ncorners=*/3,
                                     /*npairs=*/25, /*u_scale=*/0.7);
  const Solution s = solve(p.model);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_LT(p.model.maxViolation(s.x), 1e-5);
  EXPECT_GE(s.objective, -1e-6);  // sum of |delta| parts
  // Delta = 0 with V at the original variation satisfies every row except
  // possibly the budget; with u_scale < 1 some delta work is required, so
  // the objective should be strictly positive.
  EXPECT_GT(s.objective, 1.0);
}
INSTANTIATE_TEST_SUITE_P(Seeds, PaperShapedProp, ::testing::Range(0, 6));

TEST(PaperShapedLp, LooseBudgetNeedsNoWork) {
  geom::Rng rng(99);
  PaperShapedLp p =
      buildPaperShaped(rng, 20, 3, 15, /*u_scale=*/1.01);
  const Solution s = solve(p.model);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-6) << "delta = 0 should be optimal";
}

TEST(PaperShapedLp, TighterBudgetCostsMore) {
  geom::Rng rng(7);
  double prev_cost = -1.0;
  for (const double scale : {0.9, 0.7, 0.5}) {
    geom::Rng r2(7);  // same instance every time
    PaperShapedLp p = buildPaperShaped(r2, 25, 3, 20, scale);
    const Solution s = solve(p.model);
    if (s.status != Status::Optimal) {
      // Very tight budgets can be genuinely infeasible; acceptable once
      // costs have been seen to increase.
      EXPECT_GT(prev_cost, 0.0);
      break;
    }
    EXPECT_GT(s.objective + 1e-9, prev_cost);
    prev_cost = s.objective;
  }
}

TEST(Simplex, DeterministicAcrossRuns) {
  geom::Rng rng(31);
  PaperShapedLp p = buildPaperShaped(rng, 15, 3, 12, 0.8);
  const Solution a = solve(p.model);
  const Solution b = solve(p.model);
  ASSERT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.x, b.x);
}

TEST(Simplex, LargerKnownOptimumInstances) {
  // Same KKT construction as lp_test, at 20 variables / 14 rows.
  geom::Rng rng(1234);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 20, rows = 14;
    std::vector<double> xstar(static_cast<std::size_t>(n));
    for (double& v : xstar) v = rng.uniform(-2.0, 2.0);
    Model m;
    std::vector<double> c(static_cast<std::size_t>(n), 0.0);
    std::vector<std::vector<double>> a(static_cast<std::size_t>(rows),
                                       std::vector<double>(static_cast<std::size_t>(n)));
    std::vector<bool> active(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      for (double& v : a[static_cast<std::size_t>(r)]) v = rng.uniform(-1, 1);
      active[static_cast<std::size_t>(r)] = rng.uniform() < 0.4;
      if (active[static_cast<std::size_t>(r)]) {
        const double lambda = rng.uniform(0.1, 1.0);
        for (int j = 0; j < n; ++j)
          c[static_cast<std::size_t>(j)] -=
              lambda * a[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)];
      }
    }
    for (int j = 0; j < n; ++j) m.addVar(-5.0, 5.0, c[static_cast<std::size_t>(j)]);
    for (int r = 0; r < rows; ++r) {
      double ax = 0.0;
      for (int j = 0; j < n; ++j)
        ax += a[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] *
              xstar[static_cast<std::size_t>(j)];
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j)
        terms.push_back({j, a[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)]});
      m.addRow(-kInf,
               active[static_cast<std::size_t>(r)] ? ax : ax + rng.uniform(0.5, 2.0),
               std::move(terms));
    }
    const Solution s = solve(m);
    ASSERT_EQ(s.status, Status::Optimal) << trial;
    double cx = 0.0;
    for (int j = 0; j < n; ++j)
      cx += c[static_cast<std::size_t>(j)] * xstar[static_cast<std::size_t>(j)];
    EXPECT_NEAR(s.objective, cx, 1e-4) << trial;
  }
}

TEST(WarmStart, PaperShapedWarmChainMatchesCold) {
  // The U-sweep access pattern at stress scale: the budget row is the last
  // row of the paper-shaped model; tighten it step by step, re-entering
  // each solve from the previous basis, and compare against cold solves.
  geom::Rng rng(41);
  PaperShapedLp p = buildPaperShaped(rng, 30, 3, 25, /*u_scale=*/1.0);
  const int budget_row = p.model.numRows() - 1;
  const double loose_u = p.model.rowHi(budget_row);

  Solution prev = solve(p.model);
  ASSERT_EQ(prev.status, Status::Optimal);
  int warm_total = 0, cold_total = 0;
  for (const double scale : {0.9, 0.8, 0.7, 0.6}) {
    p.model.setRowBounds(budget_row, -kInf, scale * loose_u);
    const Solution cold = solve(p.model);
    const Solution warm = solve(p.model, {}, &prev.basis);
    ASSERT_EQ(warm.status, cold.status) << "scale " << scale;
    if (cold.status != Status::Optimal) break;
    EXPECT_TRUE(warm.warm_started);
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-6 * std::max(1.0, std::abs(cold.objective)))
        << "scale " << scale;
    EXPECT_LT(p.model.maxViolation(warm.x), 1e-5);
    warm_total += warm.iterations;
    cold_total += cold.iterations;
    prev = warm;
  }
  // Re-entering from the neighbouring vertex must not cost more pivots
  // than solving from scratch (it is the whole point of the warm start).
  EXPECT_LE(warm_total, cold_total);
}

TEST(Simplex, DenseSparseAgreeOnPaperShaped) {
  for (const int seed : {3, 17}) {
    geom::Rng rng(static_cast<std::uint64_t>(seed));
    PaperShapedLp p = buildPaperShaped(rng, 20, 3, 15, 0.75);
    SolverOptions dense;
    dense.algorithm = SolverOptions::Algorithm::kDense;
    const Solution a = solve(p.model, dense);
    const Solution b = solve(p.model);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status == Status::Optimal) {
      EXPECT_NEAR(a.objective, b.objective,
                  1e-6 * std::max(1.0, std::abs(a.objective)))
          << "seed " << seed;
      EXPECT_LT(p.model.maxViolation(b.x), 1e-5);
    }
  }
}

}  // namespace
}  // namespace skewopt::lp
