// End-to-end tests for the skewopt_cli binary's observability flags:
// --trace exports a Chrome trace-event JSON that the strict serve-side
// parser accepts, --metrics exports Prometheus text, and an unwritable
// output path is rejected up front with exit code 2 (usage error) before
// any optimization work runs. The binary path is injected at compile time
// (SKEWOPT_CLI_PATH, see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/json.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(SKEWOPT_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  if (!pipe) return r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) r.output.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmpPath(const std::string& name) {
  return ::testing::TempDir() + "skewopt_cli_test_" + name;
}

/// A generated design file shared by the tests below.
const std::string& designFile() {
  static const std::string path = [] {
    const std::string p = tmpPath("design.json");
    const RunResult r = run(
        "gen --testcase CLS1v1 --sinks 30 --pairs 30 --seed 3 --out " + p);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    return p;
  }();
  return path;
}

TEST(CliObsTest, ReportExportsTraceAndMetrics) {
  const std::string trace = tmpPath("report_trace.json");
  const std::string metrics = tmpPath("report_metrics.prom");
  const RunResult r = run("report " + designFile() + " --trace " + trace +
                          " --metrics " + metrics);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("wrote trace"), std::string::npos);
  EXPECT_NE(r.output.find("wrote metrics"), std::string::npos);

  // The trace must be strict JSON in Chrome trace-event shape.
  const skewopt::serve::json::Value v =
      skewopt::serve::json::parse(slurp(trace));
  EXPECT_EQ(v.str("displayTimeUnit", ""), "ms");
  ASSERT_NE(v.find("traceEvents"), nullptr);

  const std::string prom = slurp(metrics);
  EXPECT_NE(prom.find("# TYPE skewopt_sta_full_analyses_total counter"),
            std::string::npos);
}

TEST(CliObsTest, OptimizeTraceContainsFlowAndPerUSpans) {
  const std::string trace = tmpPath("opt_trace.json");
  const std::string out = tmpPath("opt_out.json");
  const RunResult r = run("optimize " + designFile() +
                          " --flow global-local --out " + out + " --trace " +
                          trace);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  const skewopt::serve::json::Value v =
      skewopt::serve::json::parse(slurp(trace));
  const skewopt::serve::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t flow_runs = 0;
  std::size_t u_points = 0;
  std::size_t local_rounds = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const std::string name = events->at(i).str("name", "");
    if (name == "flow.run") ++flow_runs;
    if (name == "global.u_point") ++u_points;
    if (name == "local.round") ++local_rounds;
  }
  EXPECT_EQ(flow_runs, 1u);
  EXPECT_GT(u_points, 0u);   // one span per U-sweep point
  EXPECT_GT(local_rounds, 0u);
}

TEST(CliObsTest, UnwritableOutputPathIsAUsageError) {
  const std::string bad = "/nonexistent-dir-for-cli-test/out.json";
  const RunResult trace_r =
      run("report " + designFile() + " --trace " + bad);
  EXPECT_EQ(trace_r.exit_code, 2);
  EXPECT_NE(trace_r.output.find("--trace"), std::string::npos);
  EXPECT_NE(trace_r.output.find("cannot write"), std::string::npos);

  const RunResult metrics_r =
      run("optimize " + designFile() + " --flow local --out " +
          tmpPath("unused.json") + " --metrics " + bad);
  EXPECT_EQ(metrics_r.exit_code, 2);
  EXPECT_NE(metrics_r.output.find("--metrics"), std::string::npos);
  // Validation happens before the design loads: no optimization output.
  EXPECT_EQ(metrics_r.output.find("flow:"), std::string::npos);
}

}  // namespace
