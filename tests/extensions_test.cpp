// Tests for the extensions beyond the paper's core flow: the continuous
// buffer-placement explorer (the paper's future-work item (ii)) and the
// memoizing timer.
#include <gtest/gtest.h>

#include "core/placement_explorer.h"
#include "sta/cached_timer.h"
#include "sta/incremental.h"
#include "eco/eco.h"
#include "testgen/testgen.h"

namespace skewopt {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

network::Design makeDesign(std::uint64_t seed = 1) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  o.max_pairs = 60;
  o.seed = seed;
  return testgen::makeCls1(sharedTech(), "v1", o);
}

TEST(PlacementExplorer, FindsAtLeastAsGoodAsTypeIMoves) {
  const network::Design d = makeDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  core::BufferPlacementExplorer explorer(d, timer, objective);
  core::MovePredictor predictor(d, timer, objective, nullptr);

  // For a handful of buffers: the continuous scan's predicted optimum must
  // be no worse than the best fixed type-I probe (it is a superset search).
  const std::vector<int> bufs = d.tree.buffers();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < bufs.size() && checked < 5; i += 7, ++checked) {
    const int b = bufs[i];
    double best_type1 = 0.0;
    for (const core::Move& m : core::enumerateMoves(d, b)) {
      if (m.type != core::MoveType::kSizeDisplace) continue;
      best_type1 =
          std::min(best_type1, predictor.predictedVariationDelta(m));
    }
    core::ExplorerOptions eo;
    eo.coarse_step_um = 10.0;  // grid includes the 10um type-I probes
    const core::PlacementChoice c = explorer.explore(b, eo);
    // Small slack: the explorer clamps probes into the floorplan while the
    // raw type-I probes do not, which perturbs boundary buffers slightly.
    EXPECT_LE(c.predicted_delta_ps, best_type1 + 0.2) << "buffer " << b;
    EXPECT_GT(c.probes, 50u);
  }
}

TEST(PlacementExplorer, ApplyRealizesPrediction) {
  network::Design d = makeDesign(2);
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  const double before = objective.evaluate(d, timer).sum_variation_ps;
  core::BufferPlacementExplorer explorer(d, timer, objective);

  // Pick the buffer with the best predicted improvement and apply it.
  int best_buf = -1;
  core::PlacementChoice best;
  for (const int b : d.tree.buffers()) {
    const core::PlacementChoice c = explorer.explore(b);
    if (c.predicted_delta_ps < best.predicted_delta_ps) {
      best = c;
      best_buf = b;
    }
  }
  ASSERT_GE(best_buf, 0);
  ASSERT_LT(best.predicted_delta_ps, 0.0);
  core::BufferPlacementExplorer::apply(d, best_buf, best);
  std::string err;
  EXPECT_TRUE(d.tree.validate(&err)) << err;
  const double after = objective.evaluate(d, timer).sum_variation_ps;
  // Realization noise allowed, but the sign should mostly hold for the
  // best-of-all-buffers choice.
  EXPECT_LT(after, before + 15.0);
}

TEST(PlacementExplorer, StaysInsideFloorplan) {
  network::Design d = makeDesign(3);
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  core::BufferPlacementExplorer explorer(d, timer, objective);
  core::ExplorerOptions eo;
  eo.radius_um = 500.0;  // deliberately bigger than the block margin
  eo.coarse_step_um = 100.0;
  const int b = d.tree.buffers().front();
  const core::PlacementChoice c = explorer.explore(b, eo);
  EXPECT_TRUE(d.floorplan.contains(c.position));
}

TEST(CachedTimer, HitsOnRepeatAndInvalidatesOnEdit) {
  network::Design d = makeDesign(4);
  sta::CachedTimer timer(sharedTech());

  const sta::CornerTiming& a = timer.analyze(d.tree, d.routing, 0);
  const double lat = a.arrival.back();
  timer.analyze(d.tree, d.routing, 0);
  timer.analyze(d.tree, d.routing, 0);
  EXPECT_EQ(timer.hits(), 2u);
  EXPECT_EQ(timer.misses(), 1u);

  // Different corner: miss.
  timer.analyze(d.tree, d.routing, 1);
  EXPECT_EQ(timer.misses(), 2u);

  // Edit invalidates (new stamp): result must track the change.
  const int buf = d.tree.buffers().front();
  const geom::Point p = d.tree.node(buf).pos;
  d.tree.moveNode(buf, {p.x + 40.0, p.y});
  d.routing.rebuildAround(d.tree, buf);
  const sta::CornerTiming& b = timer.analyze(d.tree, d.routing, 0);
  EXPECT_EQ(timer.misses(), 3u);
  EXPECT_NE(b.arrival.back(), lat);

  // Fresh timer agrees with cached result after the edit.
  const sta::Timer plain(sharedTech());
  const sta::CornerTiming t = plain.analyze(d.tree, d.routing, 0);
  for (std::size_t i = 0; i < t.arrival.size(); ++i)
    EXPECT_DOUBLE_EQ(t.arrival[i], b.arrival[i]);
}

TEST(CachedTimer, RoutingOnlyEditInvalidates) {
  network::Design d = makeDesign(5);
  sta::CachedTimer timer(sharedTech());
  const double before =
      timer.analyze(d.tree, d.routing, 0).arrival.back();
  // Snaking changes timing without touching the tree.
  const int drv = d.tree.buffers().front();
  if (!d.tree.node(drv).children.empty()) {
    d.routing.addExtra(drv, 0, 200.0);
    const double after =
        timer.analyze(d.tree, d.routing, 0).arrival.back();
    EXPECT_EQ(timer.misses(), 2u);
    (void)before;
    (void)after;
  }
}

TEST(IncrementalTimer, BitIdenticalToFullAnalysisAcrossMoves) {
  network::Design d = makeDesign(6);
  const sta::Timer full(sharedTech());
  sta::IncrementalTimer inc(sharedTech(), d);

  geom::Rng rng(42);
  for (int step = 0; step < 40; ++step) {
    const std::vector<core::Move> moves = core::enumerateAllMoves(d);
    ASSERT_FALSE(moves.empty());
    const core::Move& m = moves[rng.index(moves.size())];
    const std::vector<int> dirty = core::applyMoveTracked(d, m);
    ASSERT_FALSE(dirty.empty());
    inc.update(d, dirty);

    for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
      const sta::CornerTiming ref =
          full.analyze(d.tree, d.routing, d.corners[ki]);
      const sta::CornerTiming& got = inc.timing(ki);
      ASSERT_EQ(got.arrival.size(), ref.arrival.size());
      for (std::size_t i = 0; i < ref.arrival.size(); ++i) {
        const int id = static_cast<int>(i);
        if (!d.tree.isValid(id)) continue;
        ASSERT_DOUBLE_EQ(got.arrival[i], ref.arrival[i])
            << "step " << step << " node " << i << " (" << m.describe(d)
            << ")";
        ASSERT_DOUBLE_EQ(got.slew[i], ref.slew[i]);
      }
    }
  }
}

TEST(IncrementalTimer, HandlesNodeGrowthFromEcoRebuild) {
  // ECO arc rebuilds insert brand-new nodes; the incremental state must
  // grow and still match a full analysis when updated from the arc source.
  network::Design d = makeDesign(7);
  const eco::StageDelayLut lut(sharedTech());
  const sta::Timer full(sharedTech());
  sta::IncrementalTimer inc(sharedTech(), d);

  // Rebuild the longest arc.
  const std::vector<network::Arc> arcs = d.tree.extractArcs();
  const network::Arc* longest = &arcs.front();
  for (const network::Arc& a : arcs)
    if (a.direct_len_um > longest->direct_len_um) longest = &a;
  eco::EcoEngine eng(sharedTech(), lut);
  std::vector<double> want, slews, loads;
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    const sta::CornerTiming& t = inc.timing(ki);
    want.push_back(
        1.1 * (t.arrival[static_cast<std::size_t>(longest->dst)] -
               t.arrival[static_cast<std::size_t>(longest->src)]));
    slews.push_back(t.slew[static_cast<std::size_t>(longest->src)]);
    loads.push_back(3.0);
  }
  const eco::ArcSolution sol = eng.selectSolution(
      d.corners, want, longest->direct_len_um, slews, loads);
  ASSERT_TRUE(sol.valid);
  eng.rebuildArc(d, *longest, sol);
  inc.update(d, {longest->src});

  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    const sta::CornerTiming ref =
        full.analyze(d.tree, d.routing, d.corners[ki]);
    const sta::CornerTiming& got = inc.timing(ki);
    for (std::size_t i = 0; i < ref.arrival.size(); ++i) {
      const int id = static_cast<int>(i);
      if (!d.tree.isValid(id)) continue;
      ASSERT_DOUBLE_EQ(got.arrival[i], ref.arrival[i]) << i;
    }
  }
}

TEST(IncrementalTimer, MinimalRootsDedup) {
  // Passing a driver plus one of its descendants must not break anything
  // (the descendant's retime is covered by the ancestor's).
  network::Design d = makeDesign(8);
  sta::IncrementalTimer inc(sharedTech(), d);
  const int buf = d.tree.buffers().front();
  const geom::Point p = d.tree.node(buf).pos;
  d.tree.moveNode(buf, {p.x + 12, p.y});
  d.routing.rebuildAround(d.tree, buf);
  inc.update(d, {d.tree.node(buf).parent, buf, buf});
  const sta::Timer full(sharedTech());
  const sta::CornerTiming ref = full.analyze(d.tree, d.routing, d.corners[0]);
  for (std::size_t i = 0; i < ref.arrival.size(); ++i)
    ASSERT_DOUBLE_EQ(inc.timing(0).arrival[i], ref.arrival[i]) << i;
}

}  // namespace
}  // namespace skewopt
