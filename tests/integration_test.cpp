// Cross-module integration tests: the full Figure 1 flow on real (scaled)
// testcases, with the Table 5 acceptance properties.
#include <gtest/gtest.h>

#include "core/flow.h"
#include "testgen/testgen.h"

namespace skewopt::core {
namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}
const eco::StageDelayLut& sharedLut() {
  static eco::StageDelayLut lut(sharedTech());
  return lut;
}

testgen::TestcaseOptions quickTestcase(std::size_t sinks, std::uint64_t seed) {
  testgen::TestcaseOptions o;
  o.sinks = sinks;
  o.seed = seed;
  o.max_pairs = 80;  // evaluation universe == LP universe (footnote 9)
  return o;
}

FlowOptions quickOptions() {
  FlowOptions f;
  f.global.u_sweep = {0.1, 0.4};
  f.local.max_iterations = 4;
  return f;
}

class FlowTest : public ::testing::Test {
 protected:
  sta::Timer timer_{sharedTech()};
};

TEST_F(FlowTest, GlobalLocalImprovesBothTestcaseFamilies) {
  for (const char* name : {"CLS1v1", "CLS2v1"}) {
    network::Design d =
        testgen::makeTestcase(sharedTech(), name, quickTestcase(80, 1));
    Flow flow(sharedTech(), sharedLut(), quickOptions());
    const FlowResult r = flow.run(d, FlowMode::kGlobalLocal, nullptr);
    EXPECT_LT(r.after.sum_variation_ps, r.before.sum_variation_ps) << name;
    std::string err;
    EXPECT_TRUE(d.tree.validate(&err)) << name << ": " << err;
  }
}

TEST_F(FlowTest, CombinedAtLeastAsGoodAsGlobalAlone) {
  network::Design d_global =
      testgen::makeCls1(sharedTech(), "v1", quickTestcase(80, 9));
  network::Design d_both = d_global;
  Flow flow(sharedTech(), sharedLut(), quickOptions());
  const FlowResult rg = flow.run(d_global, FlowMode::kGlobal, nullptr);
  const FlowResult rb = flow.run(d_both, FlowMode::kGlobalLocal, nullptr);
  EXPECT_LE(rb.after.sum_variation_ps, rg.after.sum_variation_ps + 1e-6);
}

TEST_F(FlowTest, Table5ShapeGlobalStrongerThanLocal) {
  // The paper's Table 5 headline shape: global alone reduces more than
  // local alone (local moves only touch a subset of pairs).
  network::Design d_g =
      testgen::makeCls1(sharedTech(), "v1", quickTestcase(100, 10));
  network::Design d_l = d_g;
  Flow flow(sharedTech(), sharedLut(), quickOptions());
  const FlowResult rg = flow.run(d_g, FlowMode::kGlobal, nullptr);
  const FlowResult rl = flow.run(d_l, FlowMode::kLocal, nullptr);
  const double red_g = 1.0 - rg.after.sum_variation_ps / rg.before.sum_variation_ps;
  const double red_l = 1.0 - rl.after.sum_variation_ps / rl.before.sum_variation_ps;
  EXPECT_GT(red_g, red_l);
}

TEST_F(FlowTest, OverheadColumnsStayNegligible) {
  network::Design d =
      testgen::makeCls1(sharedTech(), "v1", quickTestcase(80, 11));
  Flow flow(sharedTech(), sharedLut(), quickOptions());
  const FlowResult r = flow.run(d, FlowMode::kGlobalLocal, nullptr);
  // Paper: "negligible area and power overhead". Allow a generous margin
  // for the scaled testcases, but catch runaway buffer insertion.
  EXPECT_LT(static_cast<double>(r.after.clock_cells),
            1.8 * static_cast<double>(r.before.clock_cells));
  EXPECT_LT(r.after.power_mw, 1.8 * r.before.power_mw);
  // And no material local-skew degradation (Table 5's skew columns); the
  // bound mirrors the optimizers' own acceptance envelope.
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
    EXPECT_LE(r.after.local_skew_ps[ki],
              r.before.local_skew_ps[ki] * 1.05 + 12.0 + 1e-9);
}

TEST_F(FlowTest, MetricsAreConsistent) {
  testgen::TestcaseOptions o;
  o.sinks = 60;
  network::Design d = testgen::makeCls1(sharedTech(), "v2", o);
  const Objective objective(d, timer_);
  const DesignMetrics m = computeMetrics(d, objective, timer_);
  EXPECT_GT(m.sum_variation_ps, 0.0);
  EXPECT_EQ(m.local_skew_ps.size(), d.corners.size());
  EXPECT_EQ(m.clock_cells, d.tree.numBuffers());
  EXPECT_GT(m.power_mw, 0.0);
  EXPECT_GT(m.area_um2, 0.0);
}

TEST_F(FlowTest, CombinedAtLeastAsGoodAsLocalAlone) {
  // The paper's Table 5 ordering: the combined flow ends at least as low as
  // local optimization alone (with a small realization-noise tolerance).
  network::Design base =
      testgen::makeCls1(sharedTech(), "v1", quickTestcase(100, 12));

  Flow flow(sharedTech(), sharedLut(), quickOptions());
  network::Design d_local = base;
  const FlowResult rl = flow.run(d_local, FlowMode::kLocal, nullptr);

  network::Design d_both = base;
  const FlowResult rb = flow.run(d_both, FlowMode::kGlobalLocal, nullptr);

  EXPECT_LE(rb.after.sum_variation_ps,
            rl.after.sum_variation_ps * 1.05 + 25.0);
}

TEST_F(FlowTest, FlowModeNames) {
  EXPECT_STREQ(flowModeName(FlowMode::kGlobal), "global");
  EXPECT_STREQ(flowModeName(FlowMode::kLocal), "local");
  EXPECT_STREQ(flowModeName(FlowMode::kGlobalLocal), "global-local");
}

}  // namespace
}  // namespace skewopt::core
