#include "route/route.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace skewopt::route {
namespace {

using geom::Point;

double hpwl(const Point& driver, const std::vector<Point>& pins) {
  geom::BBox b;
  b.add(driver);
  for (const Point& p : pins) b.add(p);
  return b.halfPerimeter();
}

// Prim MST wirelength over driver + pins (upper bound for any good RSMT).
double mstLength(const Point& driver, const std::vector<Point>& pins) {
  std::vector<Point> pts = pins;
  pts.push_back(driver);
  std::vector<char> in(pts.size(), 0);
  std::vector<double> dist(pts.size(), 1e18);
  in[pts.size() - 1] = 1;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i)
    dist[i] = geom::manhattan(pts[i], pts.back());
  double total = 0.0;
  for (std::size_t it = 0; it + 1 < pts.size(); ++it) {
    std::size_t best = 0;
    double bd = 1e18;
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (!in[i] && dist[i] < bd) {
        bd = dist[i];
        best = i;
      }
    in[best] = 1;
    total += bd;
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (!in[i])
        dist[i] = std::min(dist[i], geom::manhattan(pts[i], pts[best]));
  }
  return total;
}

TEST(GreedySteiner, SinglePinIsLShape) {
  const SteinerTree t = greedySteiner({0, 0}, {{10, 5}});
  EXPECT_DOUBLE_EQ(t.wirelength(), 15.0);
  ASSERT_EQ(t.pin_node.size(), 1u);
  EXPECT_DOUBLE_EQ(t.pathLength(0), 15.0);
}

TEST(GreedySteiner, CollinearPinsShareTrunk) {
  const SteinerTree t = greedySteiner({0, 0}, {{10, 0}, {20, 0}, {5, 0}});
  EXPECT_DOUBLE_EQ(t.wirelength(), 20.0);  // one straight trunk
}

TEST(GreedySteiner, SharesTrunkBetterThanStar) {
  // Two pins far right, close together: a star would pay twice.
  const SteinerTree t = greedySteiner({0, 0}, {{100, 2}, {100, -2}});
  EXPECT_LT(t.wirelength(), 150.0);   // star = 204
  EXPECT_GE(t.wirelength(), 104.0);   // RSMT = 104
}

TEST(GreedySteiner, StructureInvariants) {
  geom::Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> pins;
    const std::size_t n = 2 + rng.index(15);
    for (std::size_t i = 0; i < n; ++i)
      pins.push_back(rng.pointIn(geom::Rect{0, 0, 300, 300}));
    const Point drv = rng.pointIn(geom::Rect{0, 0, 300, 300});
    const SteinerTree t = greedySteiner(drv, pins);
    ASSERT_EQ(t.pin_node.size(), pins.size());
    EXPECT_EQ(t.parent[0], -1);
    for (std::size_t i = 0; i < pins.size(); ++i) {
      EXPECT_EQ(t.nodes[t.pin_node[i]].x, pins[i].x);
      EXPECT_EQ(t.nodes[t.pin_node[i]].y, pins[i].y);
      EXPECT_GE(t.pathLength(i) + 1e-9, geom::manhattan(drv, pins[i]));
    }
    // All edges axis-aligned.
    for (std::size_t nidx = 1; nidx < t.size(); ++nidx) {
      const Point& a = t.nodes[nidx];
      const Point& b = t.nodes[static_cast<std::size_t>(t.parent[nidx])];
      EXPECT_TRUE(a.x == b.x || a.y == b.y);
    }
    // Competitive wirelength: within 10% of the MST upper bound and at
    // least half the HPWL lower bound.
    EXPECT_LE(t.wirelength(), 1.10 * mstLength(drv, pins) + 1e-9);
    EXPECT_GE(t.wirelength() * 2.0 + 1e-9, hpwl(drv, pins));
  }
}

TEST(SingleTrunk, BasicShape) {
  const SteinerTree t = singleTrunk({0, 0}, {{10, 10}, {-10, 20}, {4, 30}});
  ASSERT_EQ(t.pin_node.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_GE(t.pathLength(i) + 1e-9,
              geom::manhattan({0, 0}, t.nodes[t.pin_node[i]]));
  EXPECT_EQ(t.parent[0], -1);
}

TEST(SingleTrunk, TrunkAtMedianX) {
  const SteinerTree t = singleTrunk({0, 0}, {{10, 5}, {20, 10}, {30, 15}});
  // Wirelength accounts for trunk span + stubs; must beat the star.
  double star = 0.0;
  for (const Point& p : std::vector<Point>{{10, 5}, {20, 10}, {30, 15}})
    star += geom::manhattan({0, 0}, p);
  EXPECT_LT(t.wirelength(), star);
}

TEST(SingleTrunk, HandlesCoincidentYs) {
  const SteinerTree t = singleTrunk({0, 0}, {{5, 3}, {9, 3}, {-4, 3}});
  ASSERT_EQ(t.pin_node.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_GT(t.pathLength(i), 0.0);
}

TEST(EcoRoute, DeterministicForSamePlacement) {
  std::vector<Point> pins = {{10, 40}, {80, 20}, {35, 77}};
  const SteinerTree a = ecoRoute({5, 5}, pins);
  const SteinerTree b = ecoRoute({5, 5}, pins);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.wirelength(), b.wirelength());
}

TEST(EcoRoute, JogsBoundedByFactor) {
  // Detours = systematic congestion share (bounded by the fanout/aspect
  // model, < ~0.35 of wirelength) + random jogs up to jog_factor.
  std::vector<Point> pins = {{10, 40}, {80, 20}, {35, 77}, {60, 60}};
  const SteinerTree ideal = ecoRoute({5, 5}, pins, 0.0);
  const SteinerTree jogged = ecoRoute({5, 5}, pins, 0.10);
  EXPECT_GE(jogged.wirelength() + 1e-9, ideal.wirelength());
  EXPECT_LE(jogged.wirelength(), ideal.wirelength() * (1.35 + 0.10) + 1e-9);
}

TEST(EcoRoute, SystematicDetourGrowsWithFanout) {
  geom::Rng rng(8);
  std::vector<Point> few, many;
  for (int i = 0; i < 3; ++i)
    few.push_back(rng.pointIn(geom::Rect{0, 0, 200, 200}));
  many = few;
  for (int i = 0; i < 25; ++i)
    many.push_back(rng.pointIn(geom::Rect{0, 0, 200, 200}));
  auto detour_share = [](const SteinerTree& t) {
    double extra = 0.0;
    for (const double e : t.extra) extra += e;
    return extra / t.wirelength();
  };
  // Same jog factor: the high-fanout net detours a larger share.
  const double share_few = detour_share(ecoRoute({100, 100}, few, 0.05));
  const double share_many = detour_share(ecoRoute({100, 100}, many, 0.05));
  EXPECT_GT(share_many, share_few);
}

TEST(EcoRoute, DiffersFromPredictorEstimate) {
  // The golden router deliberately deviates from the plain greedy order —
  // the paper's ML model exists to absorb exactly this gap.
  geom::Rng rng(4);
  int diffs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pins;
    for (int i = 0; i < 8; ++i)
      pins.push_back(rng.pointIn(geom::Rect{0, 0, 200, 200}));
    const Point drv{100, 100};
    if (std::abs(ecoRoute(drv, pins).wirelength() -
                 greedySteiner(drv, pins).wirelength()) > 1e-6)
      ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(UShape, NoDetourWhenLengthFits) {
  const auto path = uShapePath({0, 0}, {10, 5}, 10.0);
  EXPECT_DOUBLE_EQ(polylineLength(path), 15.0);  // direct L
}

TEST(UShape, ExactDetourLength) {
  for (double want : {20.0, 31.5, 80.0}) {
    const auto path = uShapePath({0, 0}, {10, 5}, want);
    EXPECT_NEAR(polylineLength(path), want, 1e-9) << want;
    EXPECT_EQ(path.front().x, 0.0);
    EXPECT_EQ(path.back().x, 10.0);
    EXPECT_EQ(path.back().y, 5.0);
  }
}

TEST(UShape, DegenerateSamePoint) {
  const auto path = uShapePath({3, 3}, {3, 3}, 12.0);
  EXPECT_NEAR(polylineLength(path), 12.0, 1e-9);
}

TEST(UShape, VerticalDominant) {
  const auto path = uShapePath({0, 0}, {2, 50}, 80.0);
  EXPECT_NEAR(polylineLength(path), 80.0, 1e-9);
}

TEST(PointAlongPath, WalksSegments) {
  const std::vector<Point> path = {{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(pointAlongPath(path, 0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(pointAlongPath(path, 5.0).x, 5.0);
  EXPECT_DOUBLE_EQ(pointAlongPath(path, 15.0).y, 5.0);
  EXPECT_DOUBLE_EQ(pointAlongPath(path, 99.0).y, 10.0);  // clamped to end
}

// Property: U-shape detour landing points stay near the segment's bbox.
class UShapeProp : public ::testing::TestWithParam<int> {};
TEST_P(UShapeProp, LengthAlwaysExact) {
  geom::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 50; ++i) {
    const Point a = rng.pointIn(geom::Rect{0, 0, 500, 500});
    const Point b = rng.pointIn(geom::Rect{0, 0, 500, 500});
    const double direct = geom::manhattan(a, b);
    const double want = direct + rng.uniform(0.0, 300.0);
    const auto path = uShapePath(a, b, want);
    EXPECT_NEAR(polylineLength(path), std::max(want, direct), 1e-6);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, UShapeProp, ::testing::Range(0, 6));

}  // namespace
}  // namespace skewopt::route
