// Ablation study of the design choices DESIGN.md calls out. Each row
// disables one ingredient of the global optimization and reports the
// realized objective on CLS1v1, isolating what each mechanism contributes:
//
//   * full            — everything on (the Table 5 configuration)
//   * no-ratio        — Constraint (11) ratio envelope removed (bounds
//                       widened to [0, inf)): the LP can demand corner
//                       combinations no ECO solution can realize
//   * no-trim         — no post-rebuild nominal-corner wire trim
//   * no-repair       — no targeted local-skew repair pass
//   * no-u-sweep      — single U at the LP's own minimum (no search for an
//                       implementable operating point)
//   * coarse-eco      — no pair-count/overshoot tie-breaks in Algorithm 1
//   * tight-beta      — beta = 1.05 (Constraint (10) nearly frozen)
#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const sta::Timer timer(tech);

  // A ratio-envelope-free LUT stand-in is emulated by widening the bounds
  // via options instead; here we use min_arc coverage of the real LUT and
  // toggle optimizer options only.
  const eco::StageDelayLut lut(tech);

  struct Variant {
    const char* name;
    core::GlobalOptions opts;
  };
  std::vector<Variant> variants;
  {
    core::GlobalOptions base;
    base.u_sweep = scale.u_sweep;
    variants.push_back({"full", base});

    core::GlobalOptions v = base;
    v.beta = 5.0;  // with beta huge AND dmin ignored the ratio rows bind...
    // The ratio constraint is exercised through beta indirectly; the direct
    // ablation: widen the acceptance of infeasible ratios by lifting beta
    // while keeping everything else. Labelled accordingly.
    variants.push_back({"loose-beta(5.0)", v});

    v = base;
    v.trim_threshold_ps = 1e18;  // never trim
    variants.push_back({"no-trim", v});

    v = base;
    v.repair_passes = 0;
    variants.push_back({"no-repair", v});

    v = base;
    v.u_sweep = {0.0};
    variants.push_back({"no-u-sweep", v});

    v = base;
    v.eco_pair_penalty_ps = 0.0;
    v.eco_overshoot_weight = 0.0;
    variants.push_back({"coarse-eco", v});

    v = base;
    v.beta = 1.05;
    variants.push_back({"tight-beta(1.05)", v});
  }

  std::printf("Global-optimization ablation on CLS1v1\n");
  bench::printRule(96);
  std::printf("%-18s %-10s %-10s %-8s %-22s %-10s %-8s\n", "variant",
              "before", "after", "red.%", "skews c0/c1/c3 after", "#cells",
              "accepted");
  bench::printRule(96);

  for (const Variant& var : variants) {
    network::Design d = testgen::makeCls1(
        tech, "v1", bench::testcaseOptions(scale, "CLS1v1"));
    const core::Objective obj(d, timer);
    core::GlobalOptimizer opt(tech, lut, var.opts);
    const core::GlobalResult r = opt.run(d, obj);
    const core::VariationReport after = obj.evaluate(d, timer);
    std::printf("%-18s %-10.0f %-10.0f %-8.1f %5.0f /%5.0f /%5.0f       "
                "%-10zu %-8s\n",
                var.name, r.sum_before_ps, r.sum_after_ps,
                100.0 * (1.0 - r.sum_after_ps / r.sum_before_ps),
                after.local_skew_ps[0], after.local_skew_ps[1],
                after.local_skew_ps[2], d.tree.numBuffers(),
                r.improved ? "yes" : "no");
  }
  bench::printRule(96);
  std::printf("\nReading: the U-sweep dominates (a too-ambitious U is not "
              "implementable by the\ndiscrete ECO); the Algorithm-1 "
              "tie-breaks trade a few points of objective for a\nmuch "
              "smaller cell count; see EXPERIMENTS.md for the full "
              "discussion.\n");
  return 0;
}
