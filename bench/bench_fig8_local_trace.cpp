// Reproduces the paper's Figure 8: the sum of skew variations per local
// optimization iteration, annotated with the committed move type, plus the
// random-move baseline (the paper shows a ~15ns gap on CLS1v1 in its
// units).
#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const sta::Timer timer(tech);

  core::DeltaLatencyModel model;
  model.train(tech, {0, 1, 2, 3}, bench::trainOptions(scale));

  std::printf("Figure 8: local iterative optimization trace\n");
  for (const char* name : {"CLS1v1", "CLS1v2", "CLS2v1"}) {
    network::Design d = testgen::makeTestcase(
        tech, name, bench::testcaseOptions(scale, name));
    const core::Objective objective(d, timer);

    core::LocalOptions lo;
    lo.max_iterations = scale.local_iterations;
    const core::LocalOptimizer opt(tech, lo);

    network::Design guided = d;
    const core::LocalResult rg = opt.run(guided, objective, &model);

    std::printf("\n%s (model-guided):\n", name);
    std::printf("  iter  type  predicted  realized   sum (ps)\n");
    std::printf("     -     -          -         -   %8.1f\n",
                rg.sum_before_ps);
    for (std::size_t i = 0; i < rg.history.size(); ++i) {
      const core::LocalIteration& it = rg.history[i];
      std::printf("  %4zu   %3s   %8.1f  %8.1f   %8.1f\n", i + 1,
                  core::moveTypeName(it.type), it.predicted_delta_ps,
                  it.realized_delta_ps, it.sum_after_ps);
    }
    std::printf("  total: %.1f -> %.1f (%.1f%% reduction), %zu golden "
                "evaluations\n",
                rg.sum_before_ps, rg.sum_after_ps,
                100.0 * (1.0 - rg.sum_after_ps / rg.sum_before_ps),
                rg.golden_evaluations);

    // Random baseline with the same round budget (paper: black dots).
    network::Design random = d;
    const core::LocalResult rr = opt.runRandom(random, objective, 97);
    std::printf("  random baseline: %.1f -> %.1f (%.1f%% reduction); "
                "guided-vs-random gap %.1f ps\n",
                rr.sum_before_ps, rr.sum_after_ps,
                100.0 * (1.0 - rr.sum_after_ps / rr.sum_before_ps),
                rr.sum_after_ps - rg.sum_after_ps);
  }
  std::printf("\nShape check vs paper: tree-surgery (type-III) and early "
              "iterations contribute the\nlargest drops, and the guided "
              "flow ends well below the random baseline.\n");
  return 0;
}
