// Reproduces the paper's Figure 9: the distribution, over sink pairs, of
// the skew ratios between corner pairs (c1, c0) and (c3, c0) on CLS1v1,
// before and after the global-local optimization. The paper shows the
// optimized tree's ratio distributions tightening sharply around their
// centers.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace skewopt;

namespace {

void histogram(const char* title, const std::vector<double>& ratios) {
  constexpr int kBins = 13;
  const double lo = 0.0, hi = 3.25;
  std::vector<int> bins(kBins, 0);
  for (const double r : ratios) {
    int b = static_cast<int>((r - lo) / (hi - lo) * kBins);
    b = std::clamp(b, 0, kBins - 1);
    ++bins[static_cast<std::size_t>(b)];
  }
  // Spread statistics.
  std::vector<double> sorted = ratios;
  std::sort(sorted.begin(), sorted.end());
  const double p10 = sorted[sorted.size() / 10];
  const double p50 = sorted[sorted.size() / 2];
  const double p90 = sorted[sorted.size() * 9 / 10];
  std::printf("%s  (n=%zu, p10/p50/p90 = %.2f/%.2f/%.2f, spread %.2f)\n",
              title, ratios.size(), p10, p50, p90, p90 - p10);
  for (int b = 0; b < kBins; ++b) {
    std::printf("  [%4.2f,%4.2f) | ", lo + b * (hi - lo) / kBins,
                lo + (b + 1) * (hi - lo) / kBins);
    const int stars = bins[static_cast<std::size_t>(b)] * 48 /
                      std::max<int>(1, static_cast<int>(ratios.size()));
    for (int s = 0; s < stars; ++s) std::putchar('#');
    std::printf(" %d\n", bins[static_cast<std::size_t>(b)]);
  }
}

std::vector<double> skewRatios(const core::VariationReport& r,
                               std::size_t ki) {
  std::vector<double> out;
  for (std::size_t pi = 0; pi < r.skew_ps[0].size(); ++pi) {
    const double s0 = r.skew_ps[0][pi];
    if (std::abs(s0) < 2.0) continue;  // ratio meaningless on ~0 skew
    out.push_back(r.skew_ps[ki][pi] / s0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  const sta::Timer timer(tech);

  network::Design d = testgen::makeCls1(
      tech, "v1", bench::testcaseOptions(scale, "CLS1v1"));
  const core::Objective objective(d, timer);
  const core::VariationReport before = objective.evaluate(d, timer);

  const core::Flow flow(tech, lut, bench::flowOptions(scale));
  const core::FlowResult fr =
      flow.run(d, core::FlowMode::kGlobalLocal, nullptr);
  const core::VariationReport after = objective.evaluate(d, timer);

  std::printf("Figure 9: skew-ratio distributions on CLS1v1 "
              "(active corners c0, c1, c3)\n\n");
  histogram("skew(c1)/skew(c0), original tree ", skewRatios(before, 1));
  std::printf("\n");
  histogram("skew(c1)/skew(c0), optimized tree", skewRatios(after, 1));
  std::printf("\n");
  histogram("skew(c3)/skew(c0), original tree ", skewRatios(before, 2));
  std::printf("\n");
  histogram("skew(c3)/skew(c0), optimized tree", skewRatios(after, 2));

  std::printf("\nsum variation: %.0f -> %.0f ps\n",
              fr.before.sum_variation_ps, fr.after.sum_variation_ps);
  std::printf("Shape check vs paper: the optimized distributions contract "
              "(smaller p90-p10\nspread) around their centers at both "
              "corner pairs.\n");
  return 0;
}
