// Reproduces the paper's Table 3: the four signoff corners, plus the
// derived derating our synthetic technology assigns to each (not in the
// paper's table but the quantity that makes the corners interesting).
#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  (void)bench::parseScale(argc, argv);
  const tech::TechModel t = tech::TechModel::make28nm();

  std::printf("Table 3: Description of corners\n");
  bench::printRule();
  std::printf("%-8s %-8s %-8s %-12s %-14s %-12s %-12s\n", "Corner", "Process",
              "Voltage", "Temperature", "Back-end", "gate-derate",
              "wire RC-derate");
  bench::printRule();
  const double rc0 =
      t.wire(0).res_kohm_per_um * t.wire(0).cap_ff_per_um;
  for (std::size_t k = 0; k < t.numCorners(); ++k) {
    const tech::Corner& c = t.corner(k);
    const double rck = t.wire(k).res_kohm_per_um * t.wire(k).cap_ff_per_um;
    std::printf("%-8s %-8s %-8.2f %-12.0f %-14s %-12.3f %-12.3f\n",
                c.name.c_str(),
                c.process == tech::Process::SS ? "ss" : "ff", c.voltage,
                c.temp_c, c.beol == tech::Beol::CMAX ? "Cmax" : "Cmin",
                t.gateDerate(k), rck / rc0);
  }
  bench::printRule();
  std::printf("\nInverter library (5 sizes, NLDM-characterized at all "
              "corners):\n");
  std::printf("%-8s %-8s %-10s %-10s %-14s %-16s\n", "Cell", "Drive",
              "Area um2", "MaxCap fF", "PinCap@c0 fF", "Delay@c0(30ps,16fF)");
  for (std::size_t i = 0; i < t.numCells(); ++i) {
    const tech::Cell& c = t.cell(i);
    std::printf("%-8s %-8.0f %-10.2f %-10.0f %-14.2f %-16.2f\n",
                c.name.c_str(), c.drive, c.area_um2, c.max_cap_ff,
                c.pin_cap_ff[0], c.delay[0].lookup(30.0, 16.0));
  }
  return 0;
}
