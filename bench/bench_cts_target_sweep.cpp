// Reproduces the paper's Sec. 5.1 methodology study: sweeping the CTS skew
// target from 0ps to 250ps in 50ps steps and checking that a 0ps target
// steers the synthesizer to the smallest realized skew at each corner
// (which is why the paper's best-practices flow uses target 0).
//
// Also reports the wirelength/power cost of tighter targets — the
// trade-off a clock designer actually weighs.
#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const sta::Timer timer(tech);

  std::printf("CTS skew-target sweep (paper Sec. 5.1: 0ps steers the tool "
              "to the smallest skew)\n");
  bench::printRule(92);
  std::printf("%-10s %-12s %-12s %-12s %-12s %-12s %-10s\n", "target ps",
              "skew@c0", "skew@c1", "skew@c3", "wirelength", "power mW",
              "sum var");
  bench::printRule(92);

  for (const double target : {0.0, 50.0, 100.0, 150.0, 200.0, 250.0}) {
    testgen::TestcaseOptions o = bench::testcaseOptions(scale, "CLS1v1");
    o.cts.skew_target_ps = target;
    network::Design d = testgen::makeCls1(tech, "v1", o);
    const core::Objective obj(d, timer);
    const core::VariationReport r = obj.evaluate(d, timer);
    std::printf("%-10.0f %-12.0f %-12.0f %-12.0f %-12.0f %-12.3f %-10.0f\n",
                target, r.local_skew_ps[0], r.local_skew_ps[1],
                r.local_skew_ps[2], d.routing.totalWirelength(),
                sta::clockTreePowerMw(d, 0), r.sum_variation_ps);
  }
  bench::printRule(92);
  std::printf("\nShape check vs paper: realized skew is monotone-ish in the "
              "target, with the\n0ps target yielding the tightest tree (at "
              "the highest snaking-wire cost).\n");
  return 0;
}
