#!/usr/bin/env python3
"""CI gate for the batched NLDM lookup kernel.

Fails when BM_NldmLookupBatch regresses more than the allowed margin
against the recorded baseline (bench/baseline_kernels.json, a full
BENCH_bench_kernels.json snapshot). Raw nanoseconds are machine-dependent,
so the gate compares a machine-neutral ratio instead: batched time per
element divided by the scalar BM_NldmLookup time from the same run. A
slower machine inflates both numbers; only a genuine regression of the
batch kernel relative to the scalar path moves the ratio.

Usage: check_kernel_regression.py [current.json] [baseline.json] [margin]
"""

import json
import sys

# Batch element count baked into BM_NldmLookupBatch (bench_kernels.cpp kN).
BATCH_ELEMS = 1024
ELMORE_LANES = 4


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        r["case"]: r["value"]
        for r in data["records"]
        if r["metric"] == "real_time_ns"
    }


def batch_ratio(recs):
    return recs["BM_NldmLookupBatch"] / BATCH_ELEMS / recs["BM_NldmLookup"]


def main(argv):
    cur_path = argv[1] if len(argv) > 1 else "BENCH_bench_kernels.json"
    base_path = argv[2] if len(argv) > 2 else "bench/baseline_kernels.json"
    margin = float(argv[3]) if len(argv) > 3 else 0.20

    cur = load(cur_path)
    base = load(base_path)
    r_cur = batch_ratio(cur)
    r_base = batch_ratio(base)
    limit = r_base * (1.0 + margin)
    print(
        f"BM_NldmLookupBatch per-element / BM_NldmLookup: "
        f"current {r_cur:.3f}, baseline {r_base:.3f}, limit {limit:.3f}"
    )
    if "BM_ElmoreMoments" in cur and "BM_ElmoreMomentsBatch" in cur:
        # Informational only: the Elmore kernels are too topology-sensitive
        # for a hard gate at smoke-test measuring budgets.
        speedup = (
            ELMORE_LANES * cur["BM_ElmoreMoments"] / cur["BM_ElmoreMomentsBatch"]
        )
        print(f"BM_ElmoreMomentsBatch per-lane speedup: {speedup:.2f}x")
    if r_cur > limit:
        print("FAIL: batched NLDM lookup regressed beyond the margin")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
