#!/usr/bin/env python3
"""CI gate for the batched timing kernels.

Fails when BM_NldmLookupBatch or BM_ElmoreMomentsBatch regresses more than
the allowed margin against the recorded baseline
(bench/baseline_kernels.json, a full BENCH_bench_kernels.json snapshot).
Raw nanoseconds are machine-dependent, so the gate compares machine-neutral
ratios instead: batched time per element (or lane) divided by the scalar
kernel's time from the same run. A slower machine inflates both numbers;
only a genuine regression of a batch kernel relative to its scalar path
moves the ratio.

Usage: check_kernel_regression.py [current.json] [baseline.json] [margin]
"""

import json
import sys

# Batch element count baked into BM_NldmLookupBatch (bench_kernels.cpp kN).
BATCH_ELEMS = 1024
ELMORE_LANES = 4


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        r["case"]: r["value"]
        for r in data["records"]
        if r["metric"] == "real_time_ns"
    }


# Gated kernels: name -> (batch case, scalar case, per-unit divisor). The
# Elmore margin is wider than the NLDM one — its walk order is
# topology-sensitive, so smoke-budget runs jitter more.
GATES = {
    "BM_NldmLookupBatch": ("BM_NldmLookupBatch", "BM_NldmLookup", BATCH_ELEMS),
    "BM_ElmoreMomentsBatch": (
        "BM_ElmoreMomentsBatch",
        "BM_ElmoreMoments",
        ELMORE_LANES,
    ),
}
EXTRA_MARGIN = {"BM_ElmoreMomentsBatch": 0.15}


def ratio(recs, batch, scalar, per):
    return recs[batch] / per / recs[scalar]


def main(argv):
    cur_path = argv[1] if len(argv) > 1 else "BENCH_bench_kernels.json"
    base_path = argv[2] if len(argv) > 2 else "bench/baseline_kernels.json"
    margin = float(argv[3]) if len(argv) > 3 else 0.20

    cur = load(cur_path)
    base = load(base_path)

    regressed = []
    for name, (batch, scalar, per) in GATES.items():
        if batch not in base or scalar not in base:
            print(f"{name}: no baseline recorded, skipping")
            continue
        if batch not in cur or scalar not in cur:
            print(f"{name}: missing from current run, skipping")
            continue
        r_cur = ratio(cur, batch, scalar, per)
        r_base = ratio(base, batch, scalar, per)
        limit = r_base * (1.0 + margin + EXTRA_MARGIN.get(name, 0.0))
        print(
            f"{batch} per-unit / {scalar}: "
            f"current {r_cur:.3f}, baseline {r_base:.3f}, limit {limit:.3f}"
        )
        if r_cur > limit:
            regressed.append(name)

    if regressed:
        print(
            "FAIL: batched kernel(s) regressed beyond the margin: "
            + ", ".join(regressed)
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
