#!/usr/bin/env python3
"""CI gate for the batched timing kernels.

Fails when a gated batch kernel (NLDM lookup, Elmore moments, all-corner
STA propagation, whole-round move scoring) regresses more than its margin
against the recorded baseline (bench/baseline_kernels.json, a full
BENCH_bench_kernels.json snapshot).

Raw times are machine-dependent, so the gate compares machine-neutral
ratios instead: batched time per element (or lane) divided by the scalar
kernel's time from the same run. A slower machine inflates both numbers;
only a genuine regression of a batch kernel relative to its scalar path
moves the ratio. Records carry heterogeneous units (real_time_ns/us/ms),
so everything is normalized to nanoseconds first; constant per-unit
divisors the JSON doesn't expose (e.g. the move-table size behind
BM_MoveScoreBatch) cancel in the current-vs-baseline comparison.

Usage: check_kernel_regression.py [current.json] [baseline.json] [margin]
"""

import json
import sys

# Batch element count baked into BM_NldmLookupBatch (bench_kernels.cpp kN).
BATCH_ELEMS = 1024
ELMORE_LANES = 4

UNIT_TO_NS = {
    "real_time_ns": 1.0,
    "real_time_us": 1e3,
    "real_time_ms": 1e6,
}


def load(path):
    """case -> time in ns, whatever unit the record was written in."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for r in data["records"]:
        scale = UNIT_TO_NS.get(r["metric"])
        if scale is not None:
            times[r["case"]] = r["value"] * scale
    return times


# Gated kernels: name -> (batch case, scalar case, per-unit divisor).
GATES = {
    "BM_NldmLookupBatch": ("BM_NldmLookupBatch", "BM_NldmLookup", BATCH_ELEMS),
    "BM_ElmoreMomentsBatch": (
        "BM_ElmoreMomentsBatch",
        "BM_ElmoreMoments",
        ELMORE_LANES,
    ),
    # Arg(1) is the batched all-corner propagation, Arg(0) the per-corner
    # loop over the same design — the ratio is batched/scalar directly.
    "BM_PropagateCornerBatch": (
        "BM_PropagateCornerBatch/1",
        "BM_PropagateCornerBatch/0",
        1,
    ),
    # Whole-move-table batch scoring vs a single scalar prediction. The
    # table size is a constant of the benchmark design, so it cancels
    # between current and baseline ratios.
    "BM_MoveScoreBatch": ("BM_MoveScoreBatch", "BM_MovePrediction", 1),
}

# Added on top of the base margin, per kernel. Elmore's walk order is
# topology-sensitive, so smoke-budget runs jitter more; the whole-design
# propagation and move-table kernels aggregate thousands of nodes/moves
# per iteration and see fewer iterations in a smoke budget.
EXTRA_MARGIN = {
    "BM_ElmoreMomentsBatch": 0.15,
    "BM_PropagateCornerBatch": 0.10,
    "BM_MoveScoreBatch": 0.15,
}


def ratio(recs, batch, scalar, per):
    return recs[batch] / per / recs[scalar]


def main(argv):
    cur_path = argv[1] if len(argv) > 1 else "BENCH_bench_kernels.json"
    base_path = argv[2] if len(argv) > 2 else "bench/baseline_kernels.json"
    margin = float(argv[3]) if len(argv) > 3 else 0.20

    cur = load(cur_path)
    base = load(base_path)

    regressed = []
    for name, (batch, scalar, per) in GATES.items():
        if batch not in base or scalar not in base:
            print(f"{name}: no baseline recorded, skipping")
            continue
        if batch not in cur or scalar not in cur:
            print(f"{name}: missing from current run, skipping")
            continue
        r_cur = ratio(cur, batch, scalar, per)
        r_base = ratio(base, batch, scalar, per)
        limit = r_base * (1.0 + margin + EXTRA_MARGIN.get(name, 0.0))
        print(
            f"{batch} per-unit / {scalar}: "
            f"current {r_cur:.3f}, baseline {r_base:.3f}, limit {limit:.3f}"
        )
        if r_cur > limit:
            regressed.append(name)

    if regressed:
        print(
            "FAIL: batched kernel(s) regressed beyond the margin: "
            + ", ".join(regressed)
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
