// Reproduces the paper's Figure 6: how often each predictor identifies a
// buffer's best move within N attempts (an attempt = one golden ECO
// evaluation). The paper compares its learning-based model against the
// four analytical estimators on 114 buffers x 45 candidate moves and finds
// the model identifies the best move for ~40% of buffers in one attempt vs
// up to ~20% for the analytical models.
#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const sta::Timer timer(tech);

  std::printf("Figure 6: best-move identification rate vs attempts\n");
  core::DeltaLatencyModel model;
  model.train(tech, {0, 1, 3}, bench::trainOptions(scale));

  network::Design d = testgen::makeCls1(
      tech, "v1", bench::testcaseOptions(scale, "CLS1v1"));
  const core::Objective objective(d, timer);
  const core::VariationReport base = objective.evaluate(d, timer);

  // Predictors: ML-corrected plus the four analytical estimators.
  struct Scorer {
    std::string name;
    core::MovePredictor predictor;
  };
  std::vector<Scorer> scorers;
  scorers.push_back({"learning-based (HSM)",
                     core::MovePredictor(d, timer, objective, &model, 0)});
  for (std::size_t f = 0; f < core::kNumAnalytic; ++f)
    scorers.push_back({core::analyticName(f),
                       core::MovePredictor(d, timer, objective, nullptr, f)});

  // Per buffer: golden-rank the moves, then see where each predictor's
  // ordering finds the golden best.
  std::vector<int> buffers = d.tree.buffers();
  if (buffers.size() > 114) buffers.resize(114);  // the paper's count
  constexpr std::size_t kAttempts = 5;
  std::vector<std::vector<std::size_t>> hits(
      scorers.size(), std::vector<std::size_t>(kAttempts, 0));
  std::size_t usable = 0;

  for (const int b : buffers) {
    const std::vector<core::Move> moves = core::enumerateMoves(d, b);
    if (moves.size() < 2) continue;
    // Golden deltas.
    std::vector<double> golden(moves.size());
    for (std::size_t i = 0; i < moves.size(); ++i) {
      network::Design copy = d;
      core::applyMove(copy, moves[i]);
      golden[i] = objective.evaluate(copy, timer).sum_variation_ps -
                  base.sum_variation_ps;
    }
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(golden.begin(), golden.end()) - golden.begin());
    if (golden[best] > -0.5) continue;  // no genuinely improving move
    ++usable;

    for (std::size_t s = 0; s < scorers.size(); ++s) {
      std::vector<std::pair<double, std::size_t>> scored;
      for (std::size_t i = 0; i < moves.size(); ++i)
        scored.push_back(
            {scorers[s].predictor.predictedVariationDelta(moves[i]), i});
      std::sort(scored.begin(), scored.end());
      for (std::size_t a = 0; a < std::min(kAttempts, scored.size()); ++a) {
        if (scored[a].second == best) {
          for (std::size_t a2 = a; a2 < kAttempts; ++a2)
            ++hits[s][a2];
          break;
        }
      }
    }
  }

  std::printf("\n%zu buffers with an improving move (of %zu examined, up to "
              "45 moves each)\n\n",
              usable, buffers.size());
  std::printf("%-22s", "predictor \\ attempts");
  for (std::size_t a = 1; a <= kAttempts; ++a) std::printf("%8zu", a);
  std::printf("\n");
  bench::printRule(64);
  for (std::size_t s = 0; s < scorers.size(); ++s) {
    std::printf("%-22s", scorers[s].name.c_str());
    for (std::size_t a = 0; a < kAttempts; ++a)
      std::printf("%7.0f%%", usable ? 100.0 * static_cast<double>(hits[s][a]) /
                                          static_cast<double>(usable)
                                    : 0.0);
    std::printf("\n");
  }
  bench::printRule(64);
  std::printf(
      "\nPaper's claim: the learning-based model identifies best moves for "
      "more buffers\nper attempt (40%% vs up to 20%% at one attempt). See "
      "EXPERIMENTS.md: with a\nself-consistent open substrate the "
      "analytical estimators share the golden\ntimer's engine, so model "
      "and analytical ranking reach parity here.\n");
  return 0;
}
