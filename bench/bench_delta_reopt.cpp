// Delta re-optimization bench: cold resubmit vs warm-started DELTA run.
//
// For each CLS testcase and each delta edit class (relaxed corner derate,
// tightened U sweep, moved sink) the bench completes a base job through the
// serve path — populating the warm-state store under the spec's topology
// key — then times the edited spec twice: a cold run (serve::runJobSpec,
// exactly what a fresh submission pays) and a warm run
// (serve::runJobSpecWarm against the populated store, exactly what a DELTA
// submission pays). Both runs produce equal results (the differential
// serve tests assert this bit-for-bit); here equality of the headline
// metrics is rechecked and the speedup reported.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "eco/stage_lut.h"
#include "serve/warm_state.h"

using namespace skewopt;

namespace {

double wallMs(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct EditCase {
  const char* name;
  serve::DeltaEdits edits;
};

serve::JobSpec baseSpec(const bench::BenchScale& scale,
                        const std::string& testcase) {
  serve::JobSpec spec;
  spec.source.kind = serve::DesignSource::Kind::kTestgen;
  spec.source.testcase = testcase;
  const testgen::TestcaseOptions o = bench::testcaseOptions(scale, testcase);
  spec.source.sinks = o.sinks;
  spec.source.max_pairs = o.max_pairs;
  spec.source.seed = o.seed;
  spec.mode = core::FlowMode::kGlobal;
  spec.options = bench::flowOptions(scale);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  bench::JsonEmitter json("bench_delta_reopt");

  std::printf("Delta re-optimization: cold resubmit vs warm DELTA run\n");
  bench::printRule(86);
  std::printf("%-9s %-14s %10s %10s %9s  %s\n", "Testcase", "Edit",
              "cold ms", "delta ms", "speedup", "equal");
  bench::printRule(86);

  for (const char* name : {"CLS1v1", "CLS1v2", "CLS2v1"}) {
    const serve::JobSpec base = baseSpec(scale, name);

    // A valid sink of the materialized base design for the moved-sink
    // edit; nudged by a few microns (a placement ECO-sized change).
    const network::Design d0 = serve::buildDesign(tech, base.source);
    const int sink = d0.tree.sinks().front();
    const geom::Point at = d0.tree.node(sink).pos;

    std::vector<EditCase> edit_cases;
    {
      EditCase derate{"derate-relax", {}};
      derate.edits.has_derates = true;
      derate.edits.corner_dmax_derate = {1.05};
      edit_cases.push_back(std::move(derate));

      // Tighten U by dropping the loosest budget point. The remaining
      // points are a prefix of the base sweep, so the warm run replays the
      // base job's recorded LP solutions and realized candidates outright
      // (solve + realize both skipped) — the headline "small edit" case.
      EditCase tighten{"u-tighten", {}};
      tighten.edits.has_u_sweep = true;
      tighten.edits.u_sweep = base.options.global.u_sweep;
      tighten.edits.u_sweep.pop_back();
      edit_cases.push_back(std::move(tighten));

      EditCase moved{"moved-sink", {}};
      moved.edits.moved_sinks.push_back(
          serve::MovedSink{sink, at.x + 2.0, at.y + 1.0});
      edit_cases.push_back(std::move(moved));
    }

    for (const EditCase& ec : edit_cases) {
      // Fresh store per edit class so every delta run starts from exactly
      // the base job's warm state (the edited spec shares its topology key
      // and would overwrite the entry otherwise).
      serve::WarmStateStore store(8);
      (void)serve::runJobSpecWarm(tech, lut, base, &store);

      const serve::JobSpec edited = serve::applyDeltaEdits(base, ec.edits);

      const auto t_cold = std::chrono::steady_clock::now();
      const core::FlowResult cold = serve::runJobSpec(tech, lut, edited);
      const double cold_ms = wallMs(t_cold);

      const auto t_delta = std::chrono::steady_clock::now();
      const core::FlowResult delta =
          serve::runJobSpecWarm(tech, lut, edited, &store);
      const double delta_ms = wallMs(t_delta);

      const bool equal =
          cold.after.sum_variation_ps == delta.after.sum_variation_ps &&
          cold.global.chosen_u_ps == delta.global.chosen_u_ps &&
          cold.global.arcs_changed == delta.global.arcs_changed;
      const double speedup = delta_ms > 0.0 ? cold_ms / delta_ms : 0.0;

      std::printf("%-9s %-14s %10.2f %10.2f %8.2fx  %s\n", name, ec.name,
                  cold_ms, delta_ms, speedup, equal ? "yes" : "NO");
      const std::string case_name = std::string(name) + "/" + ec.name;
      json.record(case_name, "cold_ms", cold_ms, cold_ms);
      json.record(case_name, "delta_ms", delta_ms, delta_ms);
      json.record(case_name, "speedup", speedup);
      json.record(case_name, "results_equal", equal ? 1.0 : 0.0);
      json.record(case_name, "delta_lp_replays",
                  static_cast<double>(delta.global.lp_replays));
      json.record(case_name, "delta_realize_memo_hits",
                  static_cast<double>(delta.global.realize_memo_hits));
      json.record(case_name, "delta_reused_models",
                  delta.global.reused_models ? 1.0 : 0.0);
    }
  }
  bench::printRule(86);
  return 0;
}
