// google-benchmark microbenchmarks of the computational kernels underneath
// the reproduction: NLDM lookup, Elmore/D2M moment analysis, Steiner
// construction, full multi-corner STA, stage-LUT arc evaluation, the
// simplex, and move prediction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/global_opt.h"
#include "core/local_opt.h"
#include "core/predictor.h"
#include "sta/incremental.h"
#include "eco/stage_lut.h"
#include "lp/lp.h"
#include "rc/rc.h"
#include "route/route.h"
#include "sta/timer.h"
#include "testgen/testgen.h"

using namespace skewopt;

namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const network::Design& sharedDesign() {
  static network::Design d = [] {
    testgen::TestcaseOptions o;
    o.sinks = 120;
    o.max_pairs = 120;
    return testgen::makeCls1(sharedTech(), "v1", o);
  }();
  return d;
}

void BM_NldmLookup(benchmark::State& state) {
  const tech::Cell& cell = sharedTech().cell(2);
  double slew = 7.0, load = 3.0, acc = 0.0;
  for (auto _ : state) {
    acc += cell.delay[0].lookup(slew, load);
    slew = 5.0 + (slew * 1.37 > 300.0 ? 5.0 : slew * 1.37);
    load = 1.0 + (load * 1.21 > 200.0 ? 1.0 : load * 1.21);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NldmLookup);

void BM_ElmoreMoments(benchmark::State& state) {
  geom::Rng rng(3);
  rc::RcTree t;
  std::vector<std::size_t> nodes = {0};
  for (int i = 0; i < 64; ++i)
    nodes.push_back(t.addNode(nodes[rng.index(nodes.size())],
                              rng.uniform(0.05, 0.5),
                              rng.uniform(0.5, 5.0)));
  for (auto _ : state) {
    const rc::Moments m = rc::Moments::compute(t);
    benchmark::DoNotOptimize(m.m2.back());
  }
}
BENCHMARK(BM_ElmoreMoments);

void BM_GreedySteiner(benchmark::State& state) {
  geom::Rng rng(5);
  std::vector<geom::Point> pins;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    pins.push_back(rng.pointIn(geom::Rect{0, 0, 500, 500}));
  for (auto _ : state) {
    const route::SteinerTree t = route::greedySteiner({250, 250}, pins);
    benchmark::DoNotOptimize(t.wirelength());
  }
}
BENCHMARK(BM_GreedySteiner)->Arg(8)->Arg(24)->Arg(40);

void BM_FullStaCorner(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  for (auto _ : state) {
    const sta::CornerTiming t = timer.analyze(d.tree, d.routing, 0);
    benchmark::DoNotOptimize(t.arrival.back());
  }
}
BENCHMARK(BM_FullStaCorner);

void BM_StageLutArcDelay(benchmark::State& state) {
  static eco::StageDelayLut lut(sharedTech());
  std::size_t qi = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += lut.arcDelay(2, qi, 4, 1, 35.0, 5.0);
    qi = (qi + 7) % lut.wirelengths().size();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StageLutArcDelay);

void BM_SimplexTransport(benchmark::State& state) {
  const int ns = static_cast<int>(state.range(0)), nd = 10;
  geom::Rng rng(7);
  lp::Model m;
  for (int i = 0; i < ns * nd; ++i)
    m.addVar(0, lp::kInf, rng.uniform(1.0, 5.0));
  for (int i = 0; i < ns; ++i) {
    std::vector<lp::Term> t;
    for (int j = 0; j < nd; ++j) t.push_back({i * nd + j, 1.0});
    m.addRow(-lp::kInf, 10.0, std::move(t));
  }
  for (int j = 0; j < nd; ++j) {
    std::vector<lp::Term> t;
    for (int i = 0; i < ns; ++i) t.push_back({i * nd + j, 1.0});
    m.addRow(8.0, lp::kInf, std::move(t));
  }
  for (auto _ : state) {
    const lp::Solution s = lp::solve(m);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_SimplexTransport)->Arg(20)->Arg(60);

// The global optimizer's pass-1 LP (Eqs. 4-11) on the largest seeded
// testcase: Arg(0) solves with the legacy dense-inverse simplex, Arg(1)
// with the sparse revised simplex.
void BM_GlobalLpSolve(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  static eco::StageDelayLut lut(sharedTech());
  const core::GlobalOptimizer gopt(sharedTech(), lut);
  const core::GlobalLpProbe probe = gopt.extractGlobalLp(d, objective);
  lp::SolverOptions o;
  o.algorithm = state.range(0) == 0 ? lp::SolverOptions::Algorithm::kDense
                                    : lp::SolverOptions::Algorithm::kSparse;
  for (auto _ : state) {
    const lp::Solution s = lp::solve(probe.min_v, o);
    benchmark::DoNotOptimize(s.objective);
  }
  state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(BM_GlobalLpSolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The full U-sweep LP sequence (pass 1 + one re-bounded solve per sweep
// point) as GlobalOptimizer::run issues it: Arg(0) is the pre-PR path —
// every LP cold on the dense solver — and Arg(1) the warm-started sparse
// path, each sweep point re-entering from the previous optimal basis.
void BM_USweepWarmStart(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  static eco::StageDelayLut lut(sharedTech());
  const core::GlobalOptimizer gopt(sharedTech(), lut);
  core::GlobalLpProbe probe = gopt.extractGlobalLp(d, objective);
  const std::vector<double> sweep = {0.05, 0.2, 0.4};
  const bool warm_sparse = state.range(0) != 0;
  lp::SolverOptions o;
  o.algorithm = warm_sparse ? lp::SolverOptions::Algorithm::kSparse
                            : lp::SolverOptions::Algorithm::kDense;
  for (auto _ : state) {
    const lp::Solution vsol = lp::solve(probe.min_v, o);
    lp::Basis chain;
    if (warm_sparse) {
      chain = vsol.basis;
      chain.status.push_back(lp::BasisStatus::Basic);
    }
    double acc = vsol.objective;
    for (const double t : sweep) {
      const double u =
          vsol.objective + t * (probe.orig_sum_ps - vsol.objective);
      probe.sweep.setRowBounds(probe.budget_row, -lp::kInf, u);
      const lp::Solution s =
          lp::solve(probe.sweep, o, chain.empty() ? nullptr : &chain);
      if (warm_sparse) chain = s.basis;
      acc += s.objective;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(warm_sparse ? "warm-sparse" : "cold-dense");
}
BENCHMARK(BM_USweepWarmStart)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MovePrediction(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  core::MovePredictor predictor(d, timer, objective, nullptr);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predictor.predictedVariationDelta(moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_MovePrediction);

// Golden trial evaluation: Arg(0) is the seed path (deep-copy the design
// and the full multi-corner timing per trial), Arg(1) the scoped-overlay
// path (apply/retime-in-place/rollback/undo) the trial engine now uses.
void BM_GoldenTrialIncremental(benchmark::State& state) {
  const network::Design& d0 = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d0, timer);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d0);
  network::Design d = d0;
  sta::IncrementalTimer base(sharedTech(), d);
  sta::ScopedRetime overlay(base);
  core::TrialEval eval;
  core::UndoRecord undo;
  std::size_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    const core::Move& m = moves[i % moves.size()];
    if (state.range(0) == 0) {
      network::Design trial = d;
      sta::IncrementalTimer inc = base;
      const std::vector<int> dirty = core::applyMoveTracked(trial, m);
      inc.update(trial, dirty);
      acc += objective.evaluateFromLatencies(trial, inc.latencies())
                 .sum_variation_ps;
    } else {
      core::applyMoveUndoable(d, m, &undo);
      overlay.retime(d, undo.dirty);
      objective.evaluateTrial(d, base.timings(), &eval);
      acc += eval.sum_variation_ps;
      overlay.rollback();
      core::undoMove(d, undo);
    }
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GoldenTrialIncremental)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// One full local-optimization round, serial vs pooled trial evaluation.
void BM_LocalOptRound(benchmark::State& state) {
  const network::Design& d0 = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d0, timer);
  core::LocalOptions o;
  o.max_iterations = 1;
  o.r = 8;
  o.parallel_trials = state.range(0) != 0;
  const core::LocalOptimizer opt(sharedTech(), o);
  for (auto _ : state) {
    network::Design d = d0;
    const core::LocalResult r = opt.run(d, objective, nullptr);
    benchmark::DoNotOptimize(r.sum_after_ps);
  }
}
BENCHMARK(BM_LocalOptRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Console output as usual, plus every per-iteration run captured into
// BENCH_bench_kernels.json via bench::JsonEmitter (aggregate rows from
// --benchmark_repetitions are skipped; the raw runs carry the data).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::JsonEmitter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const std::string metric =
          std::string("real_time_") + benchmark::GetTimeUnitString(r.time_unit);
      out_->record(r.benchmark_name(), metric, r.GetAdjustedRealTime(),
                   r.real_accumulated_time * 1e3);
      out_->record(r.benchmark_name(), "iterations",
                   static_cast<double>(r.iterations),
                   r.real_accumulated_time * 1e3);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::JsonEmitter* out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::JsonEmitter out("bench_kernels");
  JsonCaptureReporter reporter(&out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
