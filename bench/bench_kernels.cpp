// google-benchmark microbenchmarks of the computational kernels underneath
// the reproduction: NLDM lookup, Elmore/D2M moment analysis, Steiner
// construction, full multi-corner STA, stage-LUT arc evaluation, the
// simplex, and move prediction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/global_opt.h"
#include "core/local_opt.h"
#include "core/predictor.h"
#include "sta/incremental.h"
#include "eco/stage_lut.h"
#include "lp/lp.h"
#include "rc/rc.h"
#include "route/route.h"
#include "sta/timer.h"
#include "testgen/testgen.h"

using namespace skewopt;

namespace {

const tech::TechModel& sharedTech() {
  static tech::TechModel t = tech::TechModel::make28nm();
  return t;
}

const network::Design& sharedDesign() {
  static network::Design d = [] {
    testgen::TestcaseOptions o;
    o.sinks = 120;
    o.max_pairs = 120;
    return testgen::makeCls1(sharedTech(), "v1", o);
  }();
  return d;
}

void BM_NldmLookup(benchmark::State& state) {
  const tech::Cell& cell = sharedTech().cell(2);
  double slew = 7.0, load = 3.0, acc = 0.0;
  for (auto _ : state) {
    acc += cell.delay[0].lookup(slew, load);
    slew = 5.0 + (slew * 1.37 > 300.0 ? 5.0 : slew * 1.37);
    load = 1.0 + (load * 1.21 > 200.0 ? 1.0 : load * 1.21);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NldmLookup);

// Scalar lookup with the cached interval hint: the ramp pattern makes the
// hint's ±1-neighbor validation hit almost always, skipping the two binary
// searches of the unhinted path.
void BM_NldmLookupHinted(benchmark::State& state) {
  const tech::Cell& cell = sharedTech().cell(2);
  tech::LutHint hint;
  double slew = 7.0, load = 3.0, acc = 0.0;
  for (auto _ : state) {
    acc += cell.delay[0].lookup(slew, load, &hint);
    slew = 5.0 + (slew * 1.37 > 300.0 ? 5.0 : slew * 1.37);
    load = 1.0 + (load * 1.21 > 200.0 ? 1.0 : load * 1.21);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NldmLookupHinted);

// SoA batch lookup over a contiguous vector of the same ramp pattern the
// scalar bench walks; items_per_second is the per-element comparison
// against BM_NldmLookup.
void BM_NldmLookupBatch(benchmark::State& state) {
  const tech::Cell& cell = sharedTech().cell(2);
  constexpr std::size_t kN = 1024;
  std::vector<double> slews(kN), loads(kN), out(kN);
  double slew = 7.0, load = 3.0;
  for (std::size_t i = 0; i < kN; ++i) {
    slews[i] = slew;
    loads[i] = load;
    slew = 5.0 + (slew * 1.37 > 300.0 ? 5.0 : slew * 1.37);
    load = 1.0 + (load * 1.21 > 200.0 ? 1.0 : load * 1.21);
  }
  for (auto _ : state) {
    cell.delay[0].lookupBatch(slews, loads, out);
    benchmark::DoNotOptimize(out.back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_NldmLookupBatch);

// Corner-major packed view: all 4 corners of one (slew, load) point per
// call — one axis search, contiguous 4-wide value reads.
void BM_CornerLutLookupAll(benchmark::State& state) {
  const tech::Cell& cell = sharedTech().cell(2);
  double slew = 7.0, load = 3.0, acc = 0.0;
  double out[4];
  for (auto _ : state) {
    cell.delay_packed.lookupAll(slew, load, out);
    acc += out[0] + out[3];
    slew = 5.0 + (slew * 1.37 > 300.0 ? 5.0 : slew * 1.37);
    load = 1.0 + (load * 1.21 > 200.0 ? 1.0 : load * 1.21);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 4));
}
BENCHMARK(BM_CornerLutLookupAll);

void BM_ElmoreMoments(benchmark::State& state) {
  geom::Rng rng(3);
  rc::RcTree t;
  std::vector<std::size_t> nodes = {0};
  for (int i = 0; i < 64; ++i)
    nodes.push_back(t.addNode(nodes[rng.index(nodes.size())],
                              rng.uniform(0.05, 0.5),
                              rng.uniform(0.5, 5.0)));
  for (auto _ : state) {
    const rc::Moments m = rc::Moments::compute(t);
    benchmark::DoNotOptimize(m.m2.back());
  }
}
BENCHMARK(BM_ElmoreMoments);

// The same random 64-node topology with 4 per-corner-scaled R/C lanes,
// both moment passes over all lanes in one walk. items_per_second counts
// lane-trees, so the per-lane comparison against BM_ElmoreMoments is
// 4 * t(BM_ElmoreMoments) / t(BM_ElmoreMomentsBatch).
void BM_ElmoreMomentsBatch(benchmark::State& state) {
  geom::Rng rng(3);
  constexpr std::size_t kLanes = 4;
  const double scale[kLanes] = {1.0, 1.21, 0.85, 0.94};
  rc::RcTreeBatch t(kLanes);
  std::vector<std::size_t> nodes = {0};
  for (int i = 0; i < 64; ++i) {
    const double r = rng.uniform(0.05, 0.5);
    const double c = rng.uniform(0.5, 5.0);
    double res[kLanes], cap[kLanes];
    for (std::size_t k = 0; k < kLanes; ++k) {
      res[k] = r * scale[k];
      cap[k] = c * scale[kLanes - 1 - k];
    }
    nodes.push_back(t.addNode(nodes[rng.index(nodes.size())], res, cap));
  }
  rc::MomentsBatch m;
  std::vector<double> scratch;
  for (auto _ : state) {
    rc::elmoreMomentsBatch(t, m, scratch);
    benchmark::DoNotOptimize(m.m2.back());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kLanes));
}
BENCHMARK(BM_ElmoreMomentsBatch);

void BM_GreedySteiner(benchmark::State& state) {
  geom::Rng rng(5);
  std::vector<geom::Point> pins;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i)
    pins.push_back(rng.pointIn(geom::Rect{0, 0, 500, 500}));
  for (auto _ : state) {
    const route::SteinerTree t = route::greedySteiner({250, 250}, pins);
    benchmark::DoNotOptimize(t.wirelength());
  }
}
BENCHMARK(BM_GreedySteiner)->Arg(8)->Arg(24)->Arg(40);

void BM_FullStaCorner(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  for (auto _ : state) {
    const sta::CornerTiming t = timer.analyze(d.tree, d.routing, 0);
    benchmark::DoNotOptimize(t.arrival.back());
  }
}
BENCHMARK(BM_FullStaCorner);

// Full propagation of all 4 corners: Arg(0) runs one propagateFrom pass
// per corner (the pre-batch path), Arg(1) one corner-batched sweep.
void BM_PropagateCornerBatch(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const std::size_t n = d.tree.numNodes();
  std::vector<sta::CornerTiming> t(d.corners.size());
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    t[ki].corner = d.corners[ki];
    t[ki].arrival.assign(n, 0.0);
    t[ki].slew.assign(n, 0.0);
    t[ki].in_arrival.assign(n, 0.0);
    t[ki].in_slew.assign(n, 0.0);
    t[ki].driver_load.assign(n, 0.0);
  }
  sta::PropagateScratch scratch;
  const bool batched = state.range(0) != 0;
  for (auto _ : state) {
    if (batched) {
      timer.propagateFromAllCorners(d.tree, d.routing, d.corners,
                                    d.tree.root(), t, &scratch);
    } else {
      for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
        timer.propagateFrom(d.tree, d.routing, d.corners[ki], d.tree.root(),
                            &t[ki], &scratch);
    }
    benchmark::DoNotOptimize(t.back().arrival.back());
  }
  state.SetLabel(batched ? "batched" : "per-corner");
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * d.corners.size()));
}
BENCHMARK(BM_PropagateCornerBatch)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_StageLutArcDelay(benchmark::State& state) {
  static eco::StageDelayLut lut(sharedTech());
  std::size_t qi = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += lut.arcDelay(2, qi, 4, 1, 35.0, 5.0);
    qi = (qi + 7) % lut.wirelengths().size();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StageLutArcDelay);

void BM_SimplexTransport(benchmark::State& state) {
  const int ns = static_cast<int>(state.range(0)), nd = 10;
  geom::Rng rng(7);
  lp::Model m;
  for (int i = 0; i < ns * nd; ++i)
    m.addVar(0, lp::kInf, rng.uniform(1.0, 5.0));
  for (int i = 0; i < ns; ++i) {
    std::vector<lp::Term> t;
    for (int j = 0; j < nd; ++j) t.push_back({i * nd + j, 1.0});
    m.addRow(-lp::kInf, 10.0, std::move(t));
  }
  for (int j = 0; j < nd; ++j) {
    std::vector<lp::Term> t;
    for (int i = 0; i < ns; ++i) t.push_back({i * nd + j, 1.0});
    m.addRow(8.0, lp::kInf, std::move(t));
  }
  for (auto _ : state) {
    const lp::Solution s = lp::solve(m);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_SimplexTransport)->Arg(20)->Arg(60);

// The global optimizer's pass-1 LP (Eqs. 4-11) on the largest seeded
// testcase: Arg(0) solves with the legacy dense-inverse simplex, Arg(1)
// with the sparse revised simplex.
void BM_GlobalLpSolve(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  static eco::StageDelayLut lut(sharedTech());
  const core::GlobalOptimizer gopt(sharedTech(), lut);
  const core::GlobalLpProbe probe = gopt.extractGlobalLp(d, objective);
  lp::SolverOptions o;
  o.algorithm = state.range(0) == 0 ? lp::SolverOptions::Algorithm::kDense
                                    : lp::SolverOptions::Algorithm::kSparse;
  for (auto _ : state) {
    const lp::Solution s = lp::solve(probe.min_v, o);
    benchmark::DoNotOptimize(s.objective);
  }
  state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(BM_GlobalLpSolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The full U-sweep LP sequence (pass 1 + one re-bounded solve per sweep
// point) as GlobalOptimizer::run issues it: Arg(0) is the pre-PR path —
// every LP cold on the dense solver — and Arg(1) the warm-started sparse
// path, each sweep point re-entering from the previous optimal basis.
void BM_USweepWarmStart(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  static eco::StageDelayLut lut(sharedTech());
  const core::GlobalOptimizer gopt(sharedTech(), lut);
  core::GlobalLpProbe probe = gopt.extractGlobalLp(d, objective);
  const std::vector<double> sweep = {0.05, 0.2, 0.4};
  const bool warm_sparse = state.range(0) != 0;
  lp::SolverOptions o;
  o.algorithm = warm_sparse ? lp::SolverOptions::Algorithm::kSparse
                            : lp::SolverOptions::Algorithm::kDense;
  for (auto _ : state) {
    const lp::Solution vsol = lp::solve(probe.min_v, o);
    lp::Basis chain;
    if (warm_sparse) {
      chain = vsol.basis;
      chain.status.push_back(lp::BasisStatus::Basic);
    }
    double acc = vsol.objective;
    for (const double t : sweep) {
      const double u =
          vsol.objective + t * (probe.orig_sum_ps - vsol.objective);
      probe.sweep.setRowBounds(probe.budget_row, -lp::kInf, u);
      const lp::Solution s =
          lp::solve(probe.sweep, o, chain.empty() ? nullptr : &chain);
      if (warm_sparse) chain = s.basis;
      acc += s.objective;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(warm_sparse ? "warm-sparse" : "cold-dense");
}
BENCHMARK(BM_USweepWarmStart)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MovePrediction(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  core::MovePredictor predictor(d, timer, objective, nullptr);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predictor.predictedVariationDelta(moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_MovePrediction);

// A whole round's candidate table scored in one scoreBatch call (serial —
// the pool axis is covered by BM_LocalOptRound).
void BM_MoveScoreBatch(benchmark::State& state) {
  const network::Design& d = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d, timer);
  core::MovePredictor predictor(d, timer, objective, nullptr);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d);
  std::vector<double> scores(moves.size());
  for (auto _ : state) {
    predictor.scoreBatch(moves, scores, nullptr);
    benchmark::DoNotOptimize(scores.back());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * moves.size()));
}
BENCHMARK(BM_MoveScoreBatch)->Unit(benchmark::kMillisecond);

// Golden trial evaluation: Arg(0) is the seed path (deep-copy the design
// and the full multi-corner timing per trial), Arg(1) the scoped-overlay
// path (apply/retime-in-place/rollback/undo) the trial engine now uses.
void BM_GoldenTrialIncremental(benchmark::State& state) {
  const network::Design& d0 = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d0, timer);
  const std::vector<core::Move> moves = core::enumerateAllMoves(d0);
  network::Design d = d0;
  sta::IncrementalTimer base(sharedTech(), d);
  sta::ScopedRetime overlay(base);
  core::TrialEval eval;
  core::UndoRecord undo;
  std::size_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    const core::Move& m = moves[i % moves.size()];
    if (state.range(0) == 0) {
      network::Design trial = d;
      sta::IncrementalTimer inc = base;
      const std::vector<int> dirty = core::applyMoveTracked(trial, m);
      inc.update(trial, dirty);
      acc += objective.evaluateFromLatencies(trial, inc.latencies())
                 .sum_variation_ps;
    } else {
      core::applyMoveUndoable(d, m, &undo);
      overlay.retime(d, undo.dirty);
      objective.evaluateTrial(d, base.timings(), &eval);
      acc += eval.sum_variation_ps;
      overlay.rollback();
      core::undoMove(d, undo);
    }
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GoldenTrialIncremental)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// One full local-optimization round, serial vs pooled trial evaluation.
void BM_LocalOptRound(benchmark::State& state) {
  const network::Design& d0 = sharedDesign();
  const sta::Timer timer(sharedTech());
  const core::Objective objective(d0, timer);
  core::LocalOptions o;
  o.max_iterations = 1;
  o.r = 8;
  o.parallel_trials = state.range(0) != 0;
  const core::LocalOptimizer opt(sharedTech(), o);
  for (auto _ : state) {
    network::Design d = d0;
    const core::LocalResult r = opt.run(d, objective, nullptr);
    benchmark::DoNotOptimize(r.sum_after_ps);
  }
}
BENCHMARK(BM_LocalOptRound)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Console output as usual, plus every per-iteration run captured into
// BENCH_bench_kernels.json via bench::JsonEmitter (aggregate rows from
// --benchmark_repetitions are skipped; the raw runs carry the data).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::JsonEmitter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const std::string metric =
          std::string("real_time_") + benchmark::GetTimeUnitString(r.time_unit);
      out_->record(r.benchmark_name(), metric, r.GetAdjustedRealTime(),
                   r.real_accumulated_time * 1e3);
      out_->record(r.benchmark_name(), "iterations",
                   static_cast<double>(r.iterations),
                   r.real_accumulated_time * 1e3);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::JsonEmitter* out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::JsonEmitter out("bench_kernels");
  JsonCaptureReporter reporter(&out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
