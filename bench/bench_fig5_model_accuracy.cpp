// Reproduces the paper's Figure 5: predicted vs actual latencies of the
// delta-latency model on held-out moves, and the percentage-error
// histogram. The paper reports ~2.8% average error with worst-case
// -16.2%/+22.0% across corners.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();

  std::printf("Figure 5: delta-latency model accuracy (HSM family)\n");
  core::DeltaLatencyModel model;
  const std::size_t nsamples =
      model.train(tech, {0, 1, 2, 3}, bench::trainOptions(scale));
  std::printf("trained on %zu samples per corner; evaluating held-out "
              "moves\n\n",
              nsamples);

  for (std::size_t k = 0; k < tech.numCorners(); ++k) {
    const core::DeltaLatencyModel::Holdout& h = model.holdout(k);
    if (h.golden.empty()) continue;

    // Percentage error wrt the spread of golden deltas (latency changes can
    // cross zero, so a plain ratio blows up; the paper plots latencies —
    // the delta plus a common base — which is equivalent to normalizing by
    // a representative latency scale).
    double scale_ps = 0.0;
    for (const double g : h.golden) scale_ps = std::max(scale_ps, std::abs(g));
    scale_ps = std::max(scale_ps, 1.0);

    std::vector<double> pct;
    double mean_abs = 0.0, worst_pos = 0.0, worst_neg = 0.0;
    for (std::size_t i = 0; i < h.golden.size(); ++i) {
      const double e = 100.0 * (h.predicted[i] - h.golden[i]) / scale_ps;
      pct.push_back(e);
      mean_abs += std::abs(e);
      worst_pos = std::max(worst_pos, e);
      worst_neg = std::min(worst_neg, e);
    }
    mean_abs /= static_cast<double>(pct.size());

    std::printf("corner %s: %zu held-out moves, mean |error| %.2f%%, "
                "worst %+.2f%% / %+.2f%%\n",
                tech.corner(k).name.c_str(), pct.size(), mean_abs, worst_neg,
                worst_pos);

    // Histogram (Figure 5(b)).
    constexpr int kBins = 9;
    const double lo = -22.5, step = 5.0;
    std::vector<int> bins(kBins, 0);
    for (const double e : pct) {
      int b = static_cast<int>((e - lo) / step);
      b = std::clamp(b, 0, kBins - 1);
      ++bins[static_cast<std::size_t>(b)];
    }
    for (int b = 0; b < kBins; ++b) {
      std::printf("  [%6.1f,%6.1f)%% | ", lo + b * step, lo + (b + 1) * step);
      const int stars = bins[static_cast<std::size_t>(b)] * 40 /
                        std::max<int>(1, static_cast<int>(pct.size()));
      for (int s = 0; s < stars; ++s) std::putchar('#');
      std::printf(" %d\n", bins[static_cast<std::size_t>(b)]);
    }

    // Figure 5(a): a few predicted-vs-actual sample pairs.
    std::printf("  sample predicted vs actual delta-latency (ps):");
    for (std::size_t i = 0; i < std::min<std::size_t>(6, h.golden.size());
         ++i)
      std::printf(" (%.1f,%.1f)", h.predicted[i], h.golden[i]);
    std::printf("\n\n");
  }

  std::printf("Shape check vs paper: errors concentrate in the low "
              "single-digit percents with a\nnarrow near-zero-centered "
              "histogram (paper: 2.8%% average).\n");
  return 0;
}
