// Reproduces the paper's Figure 2: stage-delay ratios between corner pairs
// (c1, c0) and (c2, c0) as a function of stage delay per unit distance at
// c0, together with the fitted polynomial W_min/W_max envelopes (the red
// curves) that Constraint (11) of the global LP uses.
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "eco/stage_lut.h"

using namespace skewopt;

namespace {

void plotPair(const eco::StageDelayLut& lut, std::size_t k, std::size_t k0) {
  const std::vector<eco::RatioSample> samples = lut.ratioScatter(k, k0);
  const eco::RatioBound& up = lut.ratioBound(k, k0, true);
  const eco::RatioBound& lo = lut.ratioBound(k, k0, false);

  std::printf("\nDelay ratio (%s, %s) vs stage delay per unit distance at "
              "c0 (%zu samples)\n",
              lut.tech().corner(k).name.c_str(),
              lut.tech().corner(k0).name.c_str(), samples.size());
  bench::printRule(86);
  std::printf("%-16s %-10s %-10s %-10s %-10s %-10s\n", "d/um @c0 (bin)",
              "min ratio", "max ratio", "W_min", "W_max", "#samples");
  bench::printRule(86);

  double u_lo = 1e18, u_hi = -1e18;
  for (const eco::RatioSample& s : samples) {
    u_lo = std::min(u_lo, s.delay_per_um_c0);
    u_hi = std::max(u_hi, s.delay_per_um_c0);
  }
  constexpr int kBins = 12;
  for (int b = 0; b < kBins; ++b) {
    const double blo = u_lo + b * (u_hi - u_lo) / kBins;
    const double bhi = u_lo + (b + 1) * (u_hi - u_lo) / kBins;
    double mn = 1e18, mx = -1e18;
    int count = 0;
    for (const eco::RatioSample& s : samples) {
      if (s.delay_per_um_c0 < blo || s.delay_per_um_c0 >= bhi) continue;
      mn = std::min(mn, s.ratio);
      mx = std::max(mx, s.ratio);
      ++count;
    }
    if (count == 0) continue;
    const double mid = (blo + bhi) / 2.0;
    std::printf("%7.3f-%-7.3f  %-10.3f %-10.3f %-10.3f %-10.3f %-10d\n", blo,
                bhi, mn, mx, lo.eval(mid), up.eval(mid), count);
  }
  bench::printRule(86);

  // Envelope sanity: every sample inside [W_min, W_max].
  std::size_t outside = 0;
  for (const eco::RatioSample& s : samples) {
    if (s.ratio > up.eval(s.delay_per_um_c0) + 1e-9 ||
        s.ratio < lo.eval(s.delay_per_um_c0) - 1e-9)
      ++outside;
  }
  std::printf("samples outside fitted envelope: %zu (must be 0)\n", outside);
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);

  std::printf("Figure 2: achievable stage-delay ratios across corners\n");
  std::printf("(each sample: one inverter size x inter-inverter wirelength "
              "x input slew x load)\n");
  plotPair(lut, 1, 0);  // (c1, c0) — paper's left plot
  plotPair(lut, 2, 0);  // (c2, c0) — paper's right plot

  std::printf("\nShape check vs paper: (c1,c0) ratios sit above 1 and widen "
              "for gate-dominated\n(low wire) stages; (c2,c0) ratios sit "
              "below 1 and rise toward the wire-RC ratio\nas the stage "
              "becomes wire-dominated. The red-curve envelopes bound all "
              "samples.\n");
  return 0;
}
