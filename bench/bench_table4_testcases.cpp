// Reproduces the paper's Table 4 (testcase summary) for the scaled CLS
// testcases, plus an ASCII rendering of each floorplan in the spirit of its
// Figure 7.
#include <vector>

#include "bench_common.h"

using namespace skewopt;

namespace {

void asciiFloorplan(const network::Design& d) {
  const geom::Rect bb = d.floorplan.bbox();
  constexpr int W = 64, H = 20;
  std::vector<std::string> grid(H, std::string(W, ' '));
  for (int y = 0; y < H; ++y)
    for (int x = 0; x < W; ++x) {
      const geom::Point p{bb.lx + (x + 0.5) * bb.width() / W,
                          bb.ly + (y + 0.5) * bb.height() / H};
      if (d.floorplan.contains(p)) grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '.';
    }
  for (const int s : d.tree.sinks()) {
    const geom::Point p = d.tree.node(s).pos;
    const int x = static_cast<int>((p.x - bb.lx) / bb.width() * W);
    const int y = static_cast<int>((p.y - bb.ly) / bb.height() * H);
    if (x >= 0 && x < W && y >= 0 && y < H)
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = 'f';
  }
  for (const int b : d.tree.buffers()) {
    const geom::Point p = d.tree.node(b).pos;
    const int x = static_cast<int>((p.x - bb.lx) / bb.width() * W);
    const int y = static_cast<int>((p.y - bb.ly) / bb.height() * H);
    if (x >= 0 && x < W && y >= 0 && y < H)
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = 'B';
  }
  for (int y = H - 1; y >= 0; --y)
    std::printf("  %s\n", grid[static_cast<std::size_t>(y)].c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();

  std::printf("Table 4: Summary of testcases (scaled reproduction)\n");
  bench::printRule(90);
  std::printf("%-9s %-8s %-12s %-10s %-7s %-12s %-10s %-10s %-8s\n",
              "Testcase", "#Cells", "#Flip-flops", "Area mm2", "Util",
              "Corners", "#ClkBufs", "#Pairs", "CTSskew");
  bench::printRule(90);

  std::vector<network::Design> designs;
  for (const char* name : {"CLS1v1", "CLS1v2", "CLS2v1"}) {
    network::Design d = testgen::makeTestcase(
        tech, name, bench::testcaseOptions(scale, name));
    const sta::Timer timer(tech);
    const core::Objective obj(d, timer);
    const core::VariationReport r = obj.evaluate(d, timer);
    std::string corners;
    for (const std::size_t k : d.corners) {
      if (!corners.empty()) corners += ",";
      corners += tech.corner(k).name;
    }
    std::printf("%-9s %-8zu %-12zu %-10.2f %-7.0f%% %-12s %-10zu %-10zu %-8.0f\n",
                d.name.c_str(), d.block_cells, d.tree.sinks().size(),
                d.floorplan.area() / 1e6, d.utilization * 100.0,
                corners.c_str(), d.tree.numBuffers(), d.pairs.size(),
                r.local_skew_ps[0]);
    designs.push_back(std::move(d));
  }
  bench::printRule(90);

  std::printf("\nFigure 7-style floorplans ('.' block area, 'f' flip-flop, "
              "'B' clock buffer):\n");
  for (const network::Design& d : designs) {
    std::printf("\n%s:\n", d.name.c_str());
    asciiFloorplan(d);
  }
  return 0;
}
