// Shared helpers for the reproduction benches. Every bench binary prints
// the rows/series of one table or figure of the paper; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// All benches accept an optional first argument `--paper-scale` that grows
// the testcases (more sinks/pairs, deeper sweeps) at the cost of runtime;
// the default sizing finishes in seconds to a few minutes.
// Besides the human-readable table on stdout, benches append their rows to
// a JsonEmitter, which writes `BENCH_<name>.json` in the working directory
// on destruction: {"bench": ..., "records": [{"case", "metric", "value",
// "wall_ms"}, ...]} — one record per measured quantity, so dashboards and
// regression scripts can diff runs without scraping the tables.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.h"
#include "testgen/testgen.h"

namespace skewopt::bench {

struct BenchScale {
  std::size_t sinks_cls1 = 120;
  std::size_t sinks_cls2 = 160;
  std::size_t max_pairs = 120;
  std::size_t train_cases = 24;
  std::size_t train_moves = 24;
  std::size_t local_iterations = 6;
  std::vector<double> u_sweep = {0.05, 0.2, 0.4};
};

inline BenchScale parseScale(int argc, char** argv) {
  BenchScale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      s.sinks_cls1 = 400;
      s.sinks_cls2 = 600;
      s.max_pairs = 300;
      s.train_cases = 150;
      s.train_moves = 60;
      s.local_iterations = 25;
    }
  }
  return s;
}

inline testgen::TestcaseOptions testcaseOptions(const BenchScale& s,
                                                const std::string& name) {
  testgen::TestcaseOptions o;
  o.sinks = (name == "CLS2v1") ? s.sinks_cls2 : s.sinks_cls1;
  o.max_pairs = s.max_pairs;
  o.seed = 1;
  return o;
}

inline core::FlowOptions flowOptions(const BenchScale& s) {
  core::FlowOptions f;
  f.global.u_sweep = s.u_sweep;
  f.local.max_iterations = s.local_iterations;
  f.local.max_chunks_per_round = 20;  // the paper tries the next R until a hit
  return f;
}

inline core::TrainOptions trainOptions(const BenchScale& s) {
  core::TrainOptions t;
  t.cases = s.train_cases;
  t.moves_per_case = s.train_moves;
  return t;
}

inline void printRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Accumulates measurement records and writes `BENCH_<name>.json` when
/// destroyed (or on an explicit write()). Failures to open the output file
/// are reported on stderr but never abort the bench.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : bench_(std::move(bench_name)) {}
  ~JsonEmitter() { write(); }
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  void record(const std::string& case_name, const std::string& metric,
              double value, double wall_ms = 0.0) {
    records_.push_back({case_name, metric, value, wall_ms});
  }

  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + bench_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"records\":[", escaped(bench_).c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n {\"case\":\"%s\",\"metric\":\"%s\",\"value\":%s,"
                   "\"wall_ms\":%s}",
                   i ? "," : "", escaped(r.case_name).c_str(),
                   escaped(r.metric).c_str(), number(r.value).c_str(),
                   number(r.wall_ms).c_str());
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  struct Record {
    std::string case_name, metric;
    double value, wall_ms;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') { out += '\\'; out += c; }
      else if (static_cast<unsigned char>(c) < 0x20) out += ' ';
      else out += c;
    }
    return out;
  }

  // %.17g round-trips any double; NaN/inf become null to stay valid JSON.
  static std::string number(double v) {
    if (v != v || v - v != 0.0) return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string bench_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace skewopt::bench
