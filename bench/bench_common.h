// Shared helpers for the reproduction benches. Every bench binary prints
// the rows/series of one table or figure of the paper; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// All benches accept an optional first argument `--paper-scale` that grows
// the testcases (more sinks/pairs, deeper sweeps) at the cost of runtime;
// the default sizing finishes in seconds to a few minutes.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "core/flow.h"
#include "testgen/testgen.h"

namespace skewopt::bench {

struct BenchScale {
  std::size_t sinks_cls1 = 120;
  std::size_t sinks_cls2 = 160;
  std::size_t max_pairs = 120;
  std::size_t train_cases = 24;
  std::size_t train_moves = 24;
  std::size_t local_iterations = 6;
  std::vector<double> u_sweep = {0.05, 0.2, 0.4};
};

inline BenchScale parseScale(int argc, char** argv) {
  BenchScale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      s.sinks_cls1 = 400;
      s.sinks_cls2 = 600;
      s.max_pairs = 300;
      s.train_cases = 150;
      s.train_moves = 60;
      s.local_iterations = 25;
    }
  }
  return s;
}

inline testgen::TestcaseOptions testcaseOptions(const BenchScale& s,
                                                const std::string& name) {
  testgen::TestcaseOptions o;
  o.sinks = (name == "CLS2v1") ? s.sinks_cls2 : s.sinks_cls1;
  o.max_pairs = s.max_pairs;
  o.seed = 1;
  return o;
}

inline core::FlowOptions flowOptions(const BenchScale& s) {
  core::FlowOptions f;
  f.global.u_sweep = s.u_sweep;
  f.local.max_iterations = s.local_iterations;
  f.local.max_chunks_per_round = 20;  // the paper tries the next R until a hit
  return f;
}

inline core::TrainOptions trainOptions(const BenchScale& s) {
  core::TrainOptions t;
  t.cases = s.train_cases;
  t.moves_per_case = s.train_moves;
  return t;
}

inline void printRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace skewopt::bench
