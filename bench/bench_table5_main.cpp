// Reproduces the paper's Table 5: for each testcase, the sum of normalized
// skew variations, the local skew at each corner, clock cell count, power
// and area — for the original tree and after the global, local, and
// global-local flows.
//
// Paper reference (foundry 28nm, commercial CTS baseline):
//   CLS1v1: 512ns -> global 431 (0.84) / local 493 (0.96) / both 399 (0.78)
//   CLS1v2: 585ns -> 518 (0.89) / 557 (0.95) / 510 (0.87)
//   CLS2v1: 972ns -> 888 (0.91) / 926 (0.95) / 841 (0.87)
// The shape to reproduce: global > local in isolation, global-local best,
// no local-skew degradation, negligible cell/power/area overhead.
#include <algorithm>
#include <chrono>

#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);
  const tech::TechModel tech = tech::TechModel::make28nm();
  const eco::StageDelayLut lut(tech);
  const sta::Timer timer(tech);
  bench::JsonEmitter out("bench_table5_main");

  // One delta-latency model per corner (the paper trains per corner once
  // per technology); used by the local stage of every testcase.
  std::printf("training delta-latency models (HSM) on artificial "
              "testcases...\n");
  core::DeltaLatencyModel model;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t nsamples =
      model.train(tech, {0, 1, 2, 3}, bench::trainOptions(scale));
  const double train_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("  %zu samples/corner, %.1fs\n\n", nsamples, train_ms / 1e3);
  out.record("model", "train_samples_per_corner",
             static_cast<double>(nsamples), train_ms);

  std::printf("Table 5: Experimental results\n");
  bench::printRule(100);
  std::printf("%-9s %-13s %-18s %-21s %-8s %-10s %-10s\n", "Testcase",
              "Flow", "Variation [norm]", "Skew(ps) c0/c1/c2,3", "#Cells",
              "Power mW", "Area um2");
  bench::printRule(100);

  for (const char* name : {"CLS1v1", "CLS1v2", "CLS2v1"}) {
    const network::Design base = testgen::makeTestcase(
        tech, name, bench::testcaseOptions(scale, name));

    const core::Objective objective(base, timer);
    const core::DesignMetrics orig =
        core::computeMetrics(base, objective, timer);

    auto row = [&](const char* flow, const core::DesignMetrics& m,
                   double wall_ms) {
      std::printf("%-9s %-13s %7.0f [%4.2f]    %5.0f /%5.0f /%5.0f     "
                  "%-8zu %-10.3f %-10.0f\n",
                  name, flow, m.sum_variation_ps,
                  m.sum_variation_ps / orig.sum_variation_ps,
                  m.local_skew_ps[0], m.local_skew_ps[1], m.local_skew_ps[2],
                  m.clock_cells, m.power_mw, m.area_um2);
      const std::string c = std::string(name) + "/" + flow;
      out.record(c, "sum_variation_ps", m.sum_variation_ps, wall_ms);
      out.record(c, "variation_norm",
                 m.sum_variation_ps / orig.sum_variation_ps, wall_ms);
      out.record(c, "worst_local_skew_ps",
                 *std::max_element(m.local_skew_ps.begin(),
                                   m.local_skew_ps.end()),
                 wall_ms);
      out.record(c, "power_mw", m.power_mw, wall_ms);
    };
    row("orig", orig, 0.0);

    const core::Flow flow(tech, lut, bench::flowOptions(scale));
    for (const core::FlowMode mode :
         {core::FlowMode::kGlobal, core::FlowMode::kLocal,
          core::FlowMode::kGlobalLocal}) {
      network::Design d = base;
      const auto f0 = std::chrono::steady_clock::now();
      const core::FlowResult r = flow.run(d, mode, &model);
      row(core::flowModeName(mode), r.after,
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - f0)
              .count());
    }
    bench::printRule(100);
  }
  std::printf("\nShape check vs paper: global-alone beats local-alone, "
              "global-local is best,\nlocal skews do not degrade, and the "
              "cell/power/area overhead stays small.\n");
  return 0;
}
