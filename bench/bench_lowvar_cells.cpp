// Explores the paper's future-work item (iii): "new library cells whose
// delay and slew are less sensitive to corner variation so as to enable
// fine-grained ECOs". The technology factory exposes a gate-derate
// compression knob that pulls every corner's gate speed toward nominal;
// this bench sweeps it and reports the baseline variation, the optimized
// variation, and what is left for the optimizer to do.
#include "bench_common.h"

using namespace skewopt;

int main(int argc, char** argv) {
  const bench::BenchScale scale = bench::parseScale(argc, argv);

  std::printf("Corner-desensitized cells (paper future work iii): "
              "gate-derate compression sweep on CLS1v1\n");
  bench::printRule(96);
  std::printf("%-12s %-22s %-12s %-12s %-10s %-14s\n", "compression",
              "derates c1/c2/c3", "orig var", "opt var", "red.%",
              "orig skew c0/c1");
  bench::printRule(96);

  for (const double comp : {0.0, 0.25, 0.5, 0.75}) {
    const tech::TechModel tech = tech::TechModel::make28nm(comp);
    const eco::StageDelayLut lut(tech);
    const sta::Timer timer(tech);

    network::Design d = testgen::makeCls1(
        tech, "v1", bench::testcaseOptions(scale, "CLS1v1"));
    const core::Objective obj(d, timer);
    const core::VariationReport before = obj.evaluate(d, timer);

    core::GlobalOptions go;
    go.u_sweep = scale.u_sweep;
    core::GlobalOptimizer opt(tech, lut, go);
    const core::GlobalResult r = opt.run(d, obj);

    std::printf("%-12.2f %5.2f /%5.2f /%5.2f      %-12.0f %-12.0f %-10.1f "
                "%5.0f /%5.0f\n",
                comp, tech.gateDerate(1), tech.gateDerate(2),
                tech.gateDerate(3), r.sum_before_ps, r.sum_after_ps,
                100.0 * (1.0 - r.sum_after_ps / r.sum_before_ps),
                before.local_skew_ps[0], before.local_skew_ps[1]);
  }
  bench::printRule(96);
  std::printf("\nReading: compressing the corner sensitivity of the gates "
              "shrinks the *baseline*\nvariation (less for the optimizer "
              "to fix) — quantifying how much a low-variation\nlibrary "
              "would be worth, which is exactly the question the paper's "
              "future work poses.\n");
  return 0;
}
