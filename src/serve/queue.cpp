#include "serve/queue.h"

#include <algorithm>

#include "obs/metrics.h"

namespace skewopt::serve {

using support::MutexLock;

namespace {

obs::Gauge& queueDepthGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "skewopt_serve_queue_depth", "Jobs waiting in the scheduler queue");
  return g;
}

}  // namespace

bool JobQueue::push(std::shared_ptr<Job> job, bool block) {
  MutexLock lk(mu_);
  if (block) {
    while (!closed_ && entries_.size() >= capacity_) not_full_.wait(lk);
  }
  if (closed_ || entries_.size() >= capacity_) return false;
  Entry e{job->spec.priority, next_seq_++, std::move(job)};
  entries_.insert(
      std::upper_bound(entries_.begin(), entries_.end(), e,
                       [](const Entry& a, const Entry& b) {
                         return before(a, b);
                       }),
      std::move(e));
  queueDepthGauge().set(static_cast<double>(entries_.size()));
  lk.unlock();
  not_empty_.notifyOne();
  return true;
}

std::shared_ptr<Job> JobQueue::pop(
    std::vector<std::shared_ptr<Job>>* cancelled) {
  MutexLock lk(mu_);
  for (;;) {
    while (!closed_ && entries_.empty()) not_empty_.wait(lk);
    bool freed = false;
    std::shared_ptr<Job> got;
    while (!entries_.empty()) {
      std::shared_ptr<Job> job = std::move(entries_.front().job);
      entries_.erase(entries_.begin());
      freed = true;
      if (job->cancel_requested.load(std::memory_order_acquire)) {
        if (cancelled) cancelled->push_back(std::move(job));
        continue;
      }
      got = std::move(job);
      break;
    }
    if (freed) {
      queueDepthGauge().set(static_cast<double>(entries_.size()));
      not_full_.notifyAll();
    }
    if (got) return got;
    if (closed_ && entries_.empty()) return nullptr;
    // Everything queued was cancelled; keep waiting for real work.
  }
}

std::shared_ptr<Job> JobQueue::remove(std::uint64_t id) {
  MutexLock lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->job->id != id) continue;
    std::shared_ptr<Job> job = std::move(it->job);
    entries_.erase(it);
    queueDepthGauge().set(static_cast<double>(entries_.size()));
    lk.unlock();
    not_full_.notifyAll();
    return job;
  }
  return nullptr;
}

void JobQueue::close() {
  {
    MutexLock lk(mu_);
    closed_ = true;
  }
  not_full_.notifyAll();
  not_empty_.notifyAll();
}

std::vector<std::shared_ptr<Job>> JobQueue::closeAndClear() {
  std::vector<std::shared_ptr<Job>> out;
  {
    MutexLock lk(mu_);
    closed_ = true;
    out.reserve(entries_.size());
    for (Entry& e : entries_) out.push_back(std::move(e.job));
    entries_.clear();
  }
  not_full_.notifyAll();
  not_empty_.notifyAll();
  return out;
}

std::size_t JobQueue::depth() const {
  MutexLock lk(mu_);
  return entries_.size();
}

bool JobQueue::closed() const {
  MutexLock lk(mu_);
  return closed_;
}

}  // namespace skewopt::serve
