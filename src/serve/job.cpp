#include "serve/job.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "network/io.h"
#include "testgen/testgen.h"

namespace skewopt::serve {

const char* sourceKindName(DesignSource::Kind k) {
  switch (k) {
    case DesignSource::Kind::kTestgen: return "testgen";
    case DesignSource::Kind::kFile: return "file";
    case DesignSource::Kind::kInline: return "inline";
  }
  return "?";
}

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

namespace {

// Canonical-key writer: '|'-separated key=value tokens, doubles in %.17g so
// the key distinguishes any two doubles that compare unequal.
class KeyWriter {
 public:
  void add(const char* k, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << '|' << k << '=' << buf;
  }
  void add(const char* k, std::uint64_t v) { os_ << '|' << k << '=' << v; }
  void add(const char* k, int v) { os_ << '|' << k << '=' << v; }
  void add(const char* k, bool v) { os_ << '|' << k << '=' << (v ? 1 : 0); }
  void add(const char* k, const std::string& v) {
    // Length-prefixed so embedded '|' or '=' cannot alias another token.
    os_ << '|' << k << '=' << v.size() << ':' << v;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

// Shared body of canonicalKey and topologyKey. `topology` drops exactly
// the delta-editable fields: the moved-sink list, the U sweep, and the
// corner derates (everything else pins the base topology / flow behavior).
void writeSpecKey(KeyWriter& w, const JobSpec& spec, bool topology) {
  const DesignSource& s = spec.source;
  w.add("src", std::string(sourceKindName(s.kind)));
  switch (s.kind) {
    case DesignSource::Kind::kTestgen:
      w.add("tc", s.testcase);
      w.add("sinks", s.sinks);
      w.add("pairs", s.max_pairs);
      w.add("seed", s.seed);
      w.add("best", s.select_best_scenario);
      break;
    case DesignSource::Kind::kFile:
      w.add("path", s.path);
      break;
    case DesignSource::Kind::kInline:
      w.add("text", s.text);
      break;
  }
  if (!topology) {
    w.add("mv.n", s.moved_sinks.size());
    for (const MovedSink& m : s.moved_sinks) {
      w.add("mv.s", m.sink);
      w.add("mv.x", m.x);
      w.add("mv.y", m.y);
    }
  }

  w.add("mode", std::string(core::flowModeName(spec.mode)));

  const core::GlobalOptions& g = spec.options.global;
  w.add("g.beta", g.beta);
  w.add("g.max_pairs_lp", g.max_pairs_lp);
  w.add("g.min_arc_delay_ps", g.min_arc_delay_ps);
  w.add("g.trim_threshold_ps", g.trim_threshold_ps);
  w.add("g.repair_passes", g.repair_passes);
  w.add("g.repair_threshold_ps", g.repair_threshold_ps);
  if (!topology) {
    w.add("g.u_sweep.n", g.u_sweep.size());
    for (const double u : g.u_sweep) w.add("g.u", u);
    w.add("g.derate.n", g.corner_dmax_derate.size());
    for (const double dr : g.corner_dmax_derate) w.add("g.derate", dr);
  }
  w.add("g.min_delta_ps", g.min_delta_ps);
  w.add("g.local_skew_tolerance", g.local_skew_tolerance);
  w.add("g.local_skew_allowance_ps", g.local_skew_allowance_ps);
  w.add("g.eco_pair_penalty_ps", g.eco_pair_penalty_ps);
  w.add("g.eco_overshoot_weight", g.eco_overshoot_weight);
  w.add("g.warm_start_sweep", g.warm_start_sweep);
  w.add("g.lp.max_iterations", g.lp.max_iterations);
  w.add("g.lp.tolerance", g.lp.tolerance);
  w.add("g.lp.refactor_every", g.lp.refactor_every);
  w.add("g.lp.stall_limit", g.lp.stall_limit);
  w.add("g.lp.algorithm", static_cast<int>(g.lp.algorithm));
  w.add("g.lp.pricing", static_cast<int>(g.lp.pricing));

  const core::LocalOptions& l = spec.options.local;
  w.add("l.r", l.r);
  w.add("l.max_iterations", l.max_iterations);
  w.add("l.max_chunks_per_round", l.max_chunks_per_round);
  w.add("l.min_predicted_gain_ps", l.min_predicted_gain_ps);
  w.add("l.local_skew_tolerance", l.local_skew_tolerance);
  w.add("l.enum.step_um", l.enumerate.step_um);
  w.add("l.enum.surgery_box_um", l.enumerate.surgery_box_um);
  w.add("l.enum.max_reassign", l.enumerate.max_reassign);
  w.add("l.enum.include_no_sizing", l.enumerate.include_no_sizing);
}

std::uint64_t fnv64(const std::string& key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace

std::string canonicalKey(const JobSpec& spec) {
  KeyWriter w;
  // v2: moved_sinks + corner_dmax_derate joined the key. Bump when key
  // coverage or field semantics change.
  w.add("v", 2);
  writeSpecKey(w, spec, /*topology=*/false);
  return w.str();
}

std::uint64_t contentHash(const JobSpec& spec) {
  return fnv64(canonicalKey(spec));
}

std::string topologyKey(const JobSpec& spec) {
  KeyWriter w;
  w.add("tv", 1);  // distinct prefix: never aliases a canonical key
  writeSpecKey(w, spec, /*topology=*/true);
  return w.str();
}

std::uint64_t topologyHash(const JobSpec& spec) {
  return fnv64(topologyKey(spec));
}

JobSpec applyDeltaEdits(const JobSpec& base, const DeltaEdits& edits) {
  JobSpec spec = base;
  if (edits.has_u_sweep) spec.options.global.u_sweep = edits.u_sweep;
  if (edits.has_derates)
    spec.options.global.corner_dmax_derate = edits.corner_dmax_derate;
  for (const MovedSink& m : edits.moved_sinks) {
    bool replaced = false;
    for (MovedSink& mine : spec.source.moved_sinks)
      if (mine.sink == m.sink) {
        mine = m;
        replaced = true;
        break;
      }
    if (!replaced) spec.source.moved_sinks.push_back(m);
  }
  std::sort(spec.source.moved_sinks.begin(), spec.source.moved_sinks.end(),
            [](const MovedSink& a, const MovedSink& b) {
              return a.sink < b.sink;
            });
  return spec;
}

namespace {

network::Design materializeBase(const tech::TechModel& tech,
                                const DesignSource& source) {
  switch (source.kind) {
    case DesignSource::Kind::kTestgen: {
      testgen::TestcaseOptions o;
      o.sinks = source.sinks;
      o.max_pairs = source.max_pairs;
      o.seed = source.seed;
      o.select_best_scenario = source.select_best_scenario;
      return testgen::makeTestcase(tech, source.testcase, o);
    }
    case DesignSource::Kind::kFile:
      return network::loadDesign(tech, source.path);
    case DesignSource::Kind::kInline: {
      std::istringstream is(source.text);
      return network::readDesign(tech, is);
    }
  }
  throw std::runtime_error("unknown design source kind");
}

}  // namespace

network::Design buildDesign(const tech::TechModel& tech,
                            const DesignSource& source) {
  network::Design d = materializeBase(tech, source);
  // Sink moves ride on top of the base: relocate the sink and rebuild the
  // nets its move affects (its parent's, per Routing::rebuildAround).
  for (const MovedSink& m : source.moved_sinks) {
    if (!d.tree.isValid(m.sink) ||
        d.tree.node(m.sink).kind != network::NodeKind::Sink)
      throw std::runtime_error("moved_sinks: node " + std::to_string(m.sink) +
                               " is not a sink of the base design");
    d.tree.moveNode(m.sink, {m.x, m.y});
    d.routing.rebuildAround(d.tree, m.sink);
  }
  return d;
}

core::FlowResult runJobSpec(const tech::TechModel& tech,
                            const eco::StageDelayLut& lut,
                            const JobSpec& spec) {
  network::Design d = buildDesign(tech, spec.source);
  const core::Flow flow(tech, lut, spec.options);
  return flow.run(d, spec.mode, nullptr);
}

}  // namespace skewopt::serve
