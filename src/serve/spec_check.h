// JobSpec record verifier (SKW300-307) — the serve-side member of the
// src/check verifier family. It lives here rather than in src/check
// because serve sits above check in the module graph.
//
// The scheduler's result cache trusts two derived fields of every Job:
// `key` (canonicalKey of the spec) and `hash` (contentHash). A job whose
// stored key drifted from its spec — a mutation after submit, or a key
// writer regression — would poison the cache for every later submission,
// so the scheduler re-derives and cross-checks both before running a job.
#pragma once

#include "check/diagnostics.h"
#include "serve/job.h"

namespace skewopt::serve {

/// Verifies a spec's own fields: source well-formedness (known testgen
/// testcase and nonzero sinks; nonempty file path / inline text),
/// scheduling fields (finite non-negative deadline, non-negative retry
/// budget), and the delta-edit fields (moved-sink list sorted by strictly
/// increasing id with finite positions, SKW306; finite positive corner
/// derates, SKW307). SKW303-307.
void checkJobSpec(const JobSpec& spec, check::DiagnosticEngine& engine);

/// Verifies a submitted job's derived fields against its spec: stored key
/// matches a fresh canonicalKey (SKW300), stored hash matches a fresh
/// contentHash (SKW301), and the key carries the version prefix (SKW302).
/// Includes checkJobSpec.
void checkJobRecord(const JobSpec& spec, const std::string& key,
                    std::uint64_t hash, check::DiagnosticEngine& engine);

}  // namespace skewopt::serve
