// Result cache: canonical spec key -> memoized FlowResult.
//
// Keys come from serve::canonicalKey, so a hit is guaranteed to hand back
// a result bit-identical to re-running the spec (the whole pipeline is
// deterministic for a key — see job.h). The cache is a bounded LRU with a
// single mutex; FlowResults are small (metrics + per-iteration history),
// so entries are stored by value and copied out on hit.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "core/flow.h"
#include "support/thread_annotations.h"

namespace skewopt::serve {

class ResultCache {
 public:
  /// `capacity` == 0 disables caching (lookup always misses).
  explicit ResultCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// On hit copies the memoized result into `*out` (if non-null), marks the
  /// entry most-recently-used, and returns true.
  bool lookup(const std::string& key, core::FlowResult* out);

  /// Inserts (or refreshes) a result, evicting the least-recently-used
  /// entry when over capacity.
  void insert(const std::string& key, const core::FlowResult& result);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    core::FlowResult result;
    std::list<std::string>::iterator lru_it;
  };

  const std::size_t capacity_;
  mutable support::Mutex mu_;
  std::unordered_map<std::string, Entry> map_ SKEWOPT_GUARDED_BY(mu_);
  /// front = most recently used
  std::list<std::string> lru_ SKEWOPT_GUARDED_BY(mu_);
  Stats stats_ SKEWOPT_GUARDED_BY(mu_);
};

}  // namespace skewopt::serve
