// Bounded, priority-aware MPMC job queue with backpressure.
//
// Producers (client submit paths) and consumers (scheduler workers) share
// one mutex; ordering is strict-priority with FIFO tie-break via a
// monotonic sequence number, so equal-priority jobs pop in submission
// order. Capacity is a hard bound: push() either blocks until a slot frees
// (backpressure) or rejects immediately — the caller picks per call.
//
// Cancellation: a queued job whose `cancel_requested` flag is set is
// dropped at pop time (never handed to a worker); remove() additionally
// erases it eagerly so a cancelled job stops occupying a capacity slot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/job.h"
#include "support/thread_annotations.h"

namespace skewopt::serve {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues `job`. With `block`, waits until a slot frees or the queue
  /// closes; without, returns false immediately when full. Returns false
  /// after close().
  bool push(std::shared_ptr<Job> job, bool block);

  /// Dequeues the highest-priority job, skipping (and returning to the
  /// scheduler via the out-parameter list) entries whose cancel flag is
  /// set. Blocks until a job arrives or the queue is closed *and* empty —
  /// then returns nullptr. `cancelled` may be null.
  std::shared_ptr<Job> pop(std::vector<std::shared_ptr<Job>>* cancelled);

  /// Erases a queued entry by job id (eager cancellation). Returns the
  /// erased job, or nullptr if the id is not queued.
  std::shared_ptr<Job> remove(std::uint64_t id);

  /// Rejects future pushes and wakes blocked producers/consumers. pop()
  /// keeps draining whatever is queued.
  void close();

  /// Closes and empties the queue, returning the removed jobs.
  std::vector<std::shared_ptr<Job>> closeAndClear();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<Job> job;
  };
  /// True when a should pop before b.
  static bool before(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  }

  const std::size_t capacity_;
  mutable support::Mutex mu_;
  support::CondVar not_full_;
  support::CondVar not_empty_;
  /// Kept sorted by before().
  std::vector<Entry> entries_ SKEWOPT_GUARDED_BY(mu_);
  std::uint64_t next_seq_ SKEWOPT_GUARDED_BY(mu_) = 0;
  bool closed_ SKEWOPT_GUARDED_BY(mu_) = false;
};

}  // namespace skewopt::serve
