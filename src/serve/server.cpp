#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skewopt::serve {

// ---------------------------------------------------------------------------
// Spec <-> JSON

namespace {

core::FlowMode flowModeFromName(const std::string& name) {
  if (name == "global") return core::FlowMode::kGlobal;
  if (name == "local") return core::FlowMode::kLocal;
  if (name == "global-local") return core::FlowMode::kGlobalLocal;
  throw std::runtime_error("unknown flow mode '" + name + "'");
}

/// Strict-key guard: every member of `v` must appear in `allowed`.
void checkKeys(const json::Value& v, std::initializer_list<const char*> allowed,
               const char* context) {
  for (const auto& [key, value] : v.members()) {
    bool ok = false;
    for (const char* a : allowed)
      if (key == a) {
        ok = true;
        break;
      }
    if (!ok)
      throw std::runtime_error(std::string("unknown ") + context + " key '" +
                               key + "'");
  }
}

const json::Value& requireObject(const json::Value& v, const char* what) {
  if (!v.isObject())
    throw std::runtime_error(std::string(what) + " must be an object");
  return v;
}

std::uint64_t requireId(const json::Value& req) {
  const json::Value* id = req.find("id");
  if (!id || !id->isNumber() || id->asDouble() < 0)
    throw std::runtime_error("missing or bad 'id'");
  return static_cast<std::uint64_t>(id->asDouble());
}

/// Shared by spec.source and DELTA edits. Entries are sorted by sink id
/// here (like key length-prefixing, a wire-side normalization) so a
/// hand-ordered client list still passes the SKW306 sortedness check.
std::vector<MovedSink> movedSinksFromJson(const json::Value& arr,
                                          const char* context) {
  if (!arr.isArray())
    throw std::runtime_error(std::string(context) + " must be an array");
  std::vector<MovedSink> moved;
  for (const json::Value& mv : arr.items()) {
    requireObject(mv, context);
    checkKeys(mv, {"sink", "x", "y"}, context);
    const json::Value* sink = mv.find("sink");
    const json::Value* x = mv.find("x");
    const json::Value* y = mv.find("y");
    if (!sink || !sink->isNumber() || !x || !x->isNumber() || !y ||
        !y->isNumber())
      throw std::runtime_error(std::string(context) +
                               " entries need numeric sink/x/y");
    moved.push_back(MovedSink{static_cast<int>(sink->asDouble()),
                              x->asDouble(), y->asDouble()});
  }
  std::sort(moved.begin(), moved.end(),
            [](const MovedSink& a, const MovedSink& b) {
              return a.sink < b.sink;
            });
  return moved;
}

std::vector<double> doubleArrayFromJson(const json::Value& arr,
                                        const char* context) {
  if (!arr.isArray())
    throw std::runtime_error(std::string(context) + " must be an array");
  std::vector<double> out;
  for (const json::Value& u : arr.items()) {
    if (!u.isNumber())
      throw std::runtime_error(std::string(context) +
                               " entries must be numbers");
    out.push_back(u.asDouble());
  }
  return out;
}

}  // namespace

std::string hashHex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

DeltaEdits deltaEditsFromJson(const json::Value& v) {
  requireObject(v, "edits");
  checkKeys(v, {"u_sweep", "corner_dmax_derate", "moved_sinks"}, "edits");
  DeltaEdits edits;
  if (const json::Value* sweep = v.find("u_sweep")) {
    edits.has_u_sweep = true;
    edits.u_sweep = doubleArrayFromJson(*sweep, "edits.u_sweep");
  }
  if (const json::Value* derates = v.find("corner_dmax_derate")) {
    edits.has_derates = true;
    edits.corner_dmax_derate =
        doubleArrayFromJson(*derates, "edits.corner_dmax_derate");
  }
  if (const json::Value* moved = v.find("moved_sinks"))
    edits.moved_sinks = movedSinksFromJson(*moved, "edits.moved_sinks");
  return edits;
}

json::Value specToJson(const JobSpec& spec) {
  json::Value source = json::Value::object();
  source.set("kind", sourceKindName(spec.source.kind));
  switch (spec.source.kind) {
    case DesignSource::Kind::kTestgen:
      source.set("testcase", spec.source.testcase);
      source.set("sinks", spec.source.sinks);
      source.set("pairs", spec.source.max_pairs);
      source.set("seed", spec.source.seed);
      if (spec.source.select_best_scenario) source.set("select_best", true);
      break;
    case DesignSource::Kind::kFile:
      source.set("path", spec.source.path);
      break;
    case DesignSource::Kind::kInline:
      source.set("text", spec.source.text);
      break;
  }
  if (!spec.source.moved_sinks.empty()) {
    json::Value moved = json::Value::array();
    for (const MovedSink& m : spec.source.moved_sinks) {
      json::Value mv = json::Value::object();
      mv.set("sink", m.sink);
      mv.set("x", m.x);
      mv.set("y", m.y);
      moved.push(std::move(mv));
    }
    source.set("moved_sinks", std::move(moved));
  }

  json::Value global = json::Value::object();
  const core::GlobalOptions defaults_g;
  const core::GlobalOptions& g = spec.options.global;
  global.set("beta", g.beta);
  global.set("max_pairs_lp", g.max_pairs_lp);
  global.set("repair_passes", g.repair_passes);
  json::Value sweep = json::Value::array();
  for (const double u : g.u_sweep) sweep.push(u);
  global.set("u_sweep", std::move(sweep));
  global.set("warm_start_sweep", g.warm_start_sweep);
  global.set("parallel_realize", g.parallel_realize);
  if (!g.corner_dmax_derate.empty()) {
    json::Value derates = json::Value::array();
    for (const double dr : g.corner_dmax_derate) derates.push(dr);
    global.set("corner_dmax_derate", std::move(derates));
  }

  json::Value local = json::Value::object();
  const core::LocalOptions& l = spec.options.local;
  local.set("r", l.r);
  local.set("max_iterations", l.max_iterations);
  local.set("max_chunks_per_round", l.max_chunks_per_round);
  local.set("min_predicted_gain_ps", l.min_predicted_gain_ps);
  local.set("parallel_trials", l.parallel_trials);
  local.set("threads", l.threads);

  json::Value options = json::Value::object();
  options.set("global", std::move(global));
  options.set("local", std::move(local));

  json::Value v = json::Value::object();
  v.set("source", std::move(source));
  v.set("mode", core::flowModeName(spec.mode));
  v.set("options", std::move(options));
  // Default level stays implicit so pre-checker clients round-trip
  // byte-identically.
  if (spec.options.check_level != check::Level::kCheap)
    v.set("check", check::levelName(spec.options.check_level));
  v.set("priority", spec.priority);
  v.set("deadline_ms", spec.deadline_ms);
  v.set("max_retries", spec.max_retries);
  if (!spec.trace.empty()) v.set("trace", spec.trace);
  if (spec.trace_id != 0) v.set("trace_id", obs::traceIdHex(spec.trace_id));
  if (spec.options.record) v.set("record", true);
  return v;
}

JobSpec specFromJson(const json::Value& v) {
  requireObject(v, "spec");
  checkKeys(v, {"source", "mode", "options", "check", "priority",
                "deadline_ms", "max_retries", "trace", "trace_id", "record"},
            "spec");
  JobSpec spec;

  if (const json::Value* source = v.find("source")) {
    requireObject(*source, "spec.source");
    const std::string kind = source->str("kind", "testgen");
    if (kind == "testgen") {
      checkKeys(*source,
                {"kind", "testcase", "sinks", "pairs", "seed", "select_best",
                 "moved_sinks"},
                "spec.source");
      spec.source.kind = DesignSource::Kind::kTestgen;
      spec.source.testcase = source->str("testcase", spec.source.testcase);
      spec.source.sinks = static_cast<std::size_t>(
          source->num("sinks", static_cast<double>(spec.source.sinks)));
      spec.source.max_pairs = static_cast<std::size_t>(
          source->num("pairs", static_cast<double>(spec.source.max_pairs)));
      spec.source.seed = static_cast<std::uint64_t>(
          source->num("seed", static_cast<double>(spec.source.seed)));
      spec.source.select_best_scenario = source->boolean("select_best", false);
    } else if (kind == "file") {
      checkKeys(*source, {"kind", "path", "moved_sinks"}, "spec.source");
      spec.source.kind = DesignSource::Kind::kFile;
      spec.source.path = source->str("path", "");
      if (spec.source.path.empty())
        throw std::runtime_error("file source needs a 'path'");
    } else if (kind == "inline") {
      checkKeys(*source, {"kind", "text", "moved_sinks"}, "spec.source");
      spec.source.kind = DesignSource::Kind::kInline;
      spec.source.text = source->str("text", "");
      if (spec.source.text.empty())
        throw std::runtime_error("inline source needs 'text'");
    } else {
      throw std::runtime_error("unknown source kind '" + kind + "'");
    }
    if (const json::Value* moved = source->find("moved_sinks"))
      spec.source.moved_sinks =
          movedSinksFromJson(*moved, "spec.source.moved_sinks");
  }

  spec.mode = flowModeFromName(v.str("mode", "global-local"));

  if (const json::Value* options = v.find("options")) {
    requireObject(*options, "spec.options");
    checkKeys(*options, {"global", "local"}, "spec.options");
    if (const json::Value* gv = options->find("global")) {
      requireObject(*gv, "spec.options.global");
      checkKeys(*gv,
                {"beta", "max_pairs_lp", "repair_passes", "u_sweep",
                 "warm_start_sweep", "parallel_realize",
                 "corner_dmax_derate"},
                "spec.options.global");
      core::GlobalOptions& g = spec.options.global;
      g.beta = gv->num("beta", g.beta);
      g.max_pairs_lp = static_cast<std::size_t>(
          gv->num("max_pairs_lp", static_cast<double>(g.max_pairs_lp)));
      g.repair_passes = static_cast<std::size_t>(
          gv->num("repair_passes", static_cast<double>(g.repair_passes)));
      if (const json::Value* sweep = gv->find("u_sweep")) {
        if (!sweep->isArray())
          throw std::runtime_error("u_sweep must be an array");
        g.u_sweep.clear();
        for (const json::Value& u : sweep->items()) {
          if (!u.isNumber())
            throw std::runtime_error("u_sweep entries must be numbers");
          g.u_sweep.push_back(u.asDouble());
        }
      }
      g.warm_start_sweep = gv->boolean("warm_start_sweep", g.warm_start_sweep);
      g.parallel_realize = gv->boolean("parallel_realize", g.parallel_realize);
      if (const json::Value* derates = gv->find("corner_dmax_derate"))
        g.corner_dmax_derate = doubleArrayFromJson(
            *derates, "spec.options.global.corner_dmax_derate");
    }
    if (const json::Value* lv = options->find("local")) {
      requireObject(*lv, "spec.options.local");
      checkKeys(*lv,
                {"r", "max_iterations", "max_chunks_per_round",
                 "min_predicted_gain_ps", "parallel_trials", "threads"},
                "spec.options.local");
      core::LocalOptions& l = spec.options.local;
      l.r = static_cast<std::size_t>(lv->num("r", static_cast<double>(l.r)));
      l.max_iterations = static_cast<std::size_t>(lv->num(
          "max_iterations", static_cast<double>(l.max_iterations)));
      l.max_chunks_per_round = static_cast<std::size_t>(
          lv->num("max_chunks_per_round",
                  static_cast<double>(l.max_chunks_per_round)));
      l.min_predicted_gain_ps =
          lv->num("min_predicted_gain_ps", l.min_predicted_gain_ps);
      l.parallel_trials = lv->boolean("parallel_trials", l.parallel_trials);
      l.threads = static_cast<std::size_t>(
          lv->num("threads", static_cast<double>(l.threads)));
    }
  }

  if (const json::Value* chk = v.find("check")) {
    if (!chk->isString() ||
        !check::parseLevel(chk->asString(), &spec.options.check_level))
      throw std::runtime_error("'check' must be off, cheap, or deep");
  }

  spec.priority = static_cast<int>(v.num("priority", 0));
  spec.deadline_ms = v.num("deadline_ms", 0);
  spec.max_retries = static_cast<int>(v.num("max_retries", 0));
  if (const json::Value* trace = v.find("trace")) {
    if (!trace->isString() || trace->asString().empty())
      throw std::runtime_error("'trace' must be a non-empty output path");
    spec.trace = trace->asString();
  }
  if (const json::Value* tid = v.find("trace_id"))
    spec.trace_id = traceIdFromJson(*tid);
  spec.options.record = v.boolean("record", false);
  return spec;
}

std::uint64_t traceIdFromJson(const json::Value& v) {
  if (!v.isString() || v.asString().size() != 16)
    throw std::runtime_error("'trace_id' must be a 16-digit hex string");
  std::uint64_t id = 0;
  for (const char c : v.asString()) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else
      throw std::runtime_error("'trace_id' must be a 16-digit hex string");
    id = (id << 4) | static_cast<std::uint64_t>(digit);
  }
  if (id == 0) throw std::runtime_error("'trace_id' 0 is reserved");
  return id;
}

json::Value metricsToJson(const core::DesignMetrics& m) {
  json::Value v = json::Value::object();
  v.set("sum_variation_ps", m.sum_variation_ps);
  json::Value skews = json::Value::array();
  for (const double s : m.local_skew_ps) skews.push(s);
  v.set("local_skew_ps", std::move(skews));
  v.set("clock_cells", m.clock_cells);
  v.set("power_mw", m.power_mw);
  v.set("area_um2", m.area_um2);
  return v;
}

json::Value resultToJson(const core::FlowResult& r, bool include_record) {
  json::Value v = json::Value::object();
  v.set("before", metricsToJson(r.before));
  v.set("after", metricsToJson(r.after));

  json::Value g = json::Value::object();
  g.set("sum_before_ps", r.global.sum_before_ps);
  g.set("sum_after_ps", r.global.sum_after_ps);
  g.set("chosen_u_ps", r.global.chosen_u_ps);
  g.set("improved", r.global.improved);
  g.set("arcs_changed", r.global.arcs_changed);
  g.set("lp_solves", r.global.lp_solves.size());
  g.set("lp_warm_hits", r.global.lp_warm_hits);
  v.set("global", std::move(g));

  json::Value l = json::Value::object();
  l.set("sum_before_ps", r.local.sum_before_ps);
  l.set("sum_after_ps", r.local.sum_after_ps);
  l.set("improved", r.local.improved);
  l.set("moves_committed", r.local.history.size());
  l.set("golden_evaluations", r.local.golden_evaluations);
  v.set("local", std::move(l));

  json::Value t = json::Value::object();
  t.set("global_ms", r.stage_ms.global_ms);
  t.set("local_ms", r.stage_ms.local_ms);
  t.set("total_ms", r.stage_ms.total_ms);
  v.set("stage_ms", std::move(t));
  // A recorded result re-served from a cache entry written by an
  // unrecorded run legitimately has no flight record; the member is
  // simply absent then.
  if (include_record && !r.flight_record.empty())
    v.set("record", json::parse(r.flight_record));
  return v;
}

// ---------------------------------------------------------------------------
// Request dispatch

json::Value errorReply(const std::string& message) {
  json::Value v = json::Value::object();
  v.set("ok", false);
  v.set("error", message);
  return v;
}

json::Value statusToJson(const JobStatus& s) {
  json::Value v = json::Value::object();
  v.set("ok", true);
  v.set("id", s.id);
  v.set("state", jobStateName(s.state));
  v.set("attempts", s.attempts);
  v.set("cached", s.cached);
  if (!s.error.empty()) v.set("error", s.error);
  v.set("queue_ms", s.queue_ms);
  v.set("run_ms", s.run_ms);
  return v;
}

json::Value serveGaugesToJson() {
  // Live values of the obs gauges/counters the scheduler maintains —
  // the authoritative queue-depth/cache/retry numbers.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  json::Value gauges = json::Value::object();
  gauges.set("queue_depth", reg.gauge("skewopt_serve_queue_depth").value());
  gauges.set("jobs_running",
             reg.gauge("skewopt_serve_jobs_running").value());
  gauges.set("cache_entries",
             reg.gauge("skewopt_serve_cache_entries").value());
  gauges.set("cache_hits",
             reg.counter("skewopt_serve_cache_hits_total").value());
  gauges.set("cache_misses",
             reg.counter("skewopt_serve_cache_misses_total").value());
  gauges.set("retries", reg.counter("skewopt_serve_retries_total").value());
  gauges.set("cache_evictions",
             reg.counter("skewopt_serve_cache_evictions_total").value());
  gauges.set("warmstate_entries",
             reg.gauge("skewopt_serve_warmstate_entries").value());
  gauges.set("warmstate_hits",
             reg.counter("skewopt_serve_warmstate_hits_total").value());
  gauges.set("warmstate_misses",
             reg.counter("skewopt_serve_warmstate_misses_total").value());
  gauges.set("warmstate_evictions",
             reg.counter("skewopt_serve_warmstate_evictions_total").value());
  return gauges;
}

json::Value schedulerStatsToJson(const SchedulerStats& s) {
  json::Value v = json::Value::object();
  v.set("ok", true);
  v.set("submitted", s.submitted);
  v.set("done", s.done);
  v.set("failed", s.failed);
  v.set("cancelled", s.cancelled);
  v.set("retries", s.retries);
  v.set("running", s.running);
  v.set("queue_depth", s.queue_depth);
  v.set("workers", s.workers);
  // Deprecated (see docs/serving.md release notes): the flat cache_*
  // fields are superseded by the "gauges" object below and the METRICS
  // verb; they stay for one release so existing clients round-trip.
  v.set("cache_hits", s.cache.hits);
  v.set("cache_misses", s.cache.misses);
  v.set("cache_entries", s.cache.entries);
  return v;
}

namespace {

json::Value dispatchRequest(Scheduler& sched, const json::Value& request) {
  try {
    requireObject(request, "request");
    const std::string cmd = request.str("cmd", "");

    if (cmd == "SUBMIT") {
      checkKeys(request, {"cmd", "spec", "block"}, "request");
      const json::Value* spec_v = request.find("spec");
      if (!spec_v) throw std::runtime_error("SUBMIT needs a 'spec'");
      const JobSpec spec = specFromJson(*spec_v);
      const bool block = request.boolean("block", false);
      const std::shared_ptr<Job> job = sched.submit(spec, block);
      if (!job) return errorReply("queue full");
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", job->id);
      v.set("hash", hashHex(job->hash));
      v.set("state", jobStateName(JobState::kQueued));
      // Echoed only when the client supplied a context, so pre-telemetry
      // clients see byte-identical replies.
      if (spec.trace_id != 0)
        v.set("trace_id", obs::traceIdHex(job->trace_id));
      return v;
    }

    if (cmd == "DELTA") {
      // Incremental re-optimization: the base job's spec with an edit list
      // applied, run through the normal submit path. The merged spec hits
      // the warm-state store under its topology key; an evicted base entry
      // silently degrades to a cold run with identical results.
      checkKeys(request, {"cmd", "base", "edits", "block", "trace_id"},
                "request");
      const json::Value* base = request.find("base");
      if (!base || !base->isNumber() || base->asDouble() < 0)
        throw std::runtime_error("DELTA needs a numeric 'base' job id");
      const json::Value* edits_v = request.find("edits");
      if (!edits_v) throw std::runtime_error("DELTA needs an 'edits' object");
      const DeltaEdits edits = deltaEditsFromJson(*edits_v);
      const bool block = request.boolean("block", false);
      // A request-level trace context overrides whatever the base spec
      // carried (otherwise the delta inherits the base's context).
      const json::Value* tid = request.find("trace_id");
      const std::uint64_t trace_id =
          tid != nullptr ? traceIdFromJson(*tid) : 0;
      std::shared_ptr<Job> job;
      try {
        job = sched.submitDelta(static_cast<std::uint64_t>(base->asDouble()),
                                edits, block, trace_id);
      } catch (const std::out_of_range&) {
        return errorReply("unknown base job id");
      }
      if (!job) return errorReply("queue full");
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", job->id);
      v.set("base", static_cast<std::uint64_t>(base->asDouble()));
      v.set("hash", hashHex(job->hash));
      v.set("state", jobStateName(JobState::kQueued));
      if (tid != nullptr) v.set("trace_id", obs::traceIdHex(job->trace_id));
      return v;
    }

    if (cmd == "STATUS") {
      checkKeys(request, {"cmd", "id"}, "request");
      return statusToJson(sched.status(requireId(request)));
    }

    if (cmd == "RESULT") {
      checkKeys(request, {"cmd", "id", "wait"}, "request");
      const std::uint64_t id = requireId(request);
      const bool wait = request.boolean("wait", true);
      JobStatus s = sched.status(id);
      if (!isTerminal(s.state)) {
        if (!wait) {
          json::Value v = errorReply("not finished");
          v.set("state", jobStateName(s.state));
          return v;
        }
        s = sched.waitTerminal(id);
      }
      if (s.state != JobState::kDone) {
        json::Value v = errorReply(s.error.empty() ? jobStateName(s.state)
                                                   : s.error);
        v.set("id", id);
        v.set("state", jobStateName(s.state));
        return v;
      }
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("state", jobStateName(s.state));
      v.set("cached", s.cached);
      v.set("result", resultToJson(sched.result(id),
                                   sched.jobSpec(id).options.record));
      return v;
    }

    if (cmd == "TRACE") {
      // The job's span tree (every span stamped with its trace context),
      // as Chrome trace-event JSON embedded in the reply. Works for
      // running and finished jobs alike — the export is a snapshot of
      // whatever the ring buffers currently hold for that id.
      checkKeys(request, {"cmd", "id"}, "request");
      const std::uint64_t id = requireId(request);
      const std::uint64_t trace_id = sched.traceId(id);
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("trace_id", obs::traceIdHex(trace_id));
      v.set("trace",
            json::parse(obs::Tracer::global().exportJson(0, trace_id)));
      return v;
    }

    if (cmd == "CANCEL") {
      checkKeys(request, {"cmd", "id"}, "request");
      const std::uint64_t id = requireId(request);
      const bool cancelled = sched.cancel(id);
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("cancelled", cancelled);
      v.set("state", jobStateName(sched.status(id).state));
      return v;
    }

    if (cmd == "STATS") {
      checkKeys(request, {"cmd"}, "request");
      json::Value v = schedulerStatsToJson(sched.stats());
      v.set("gauges", serveGaugesToJson());
      return v;
    }

    if (cmd == "METRICS") {
      checkKeys(request, {"cmd"}, "request");
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("metrics",
            obs::prometheusText(obs::MetricsRegistry::global().snapshot()));
      return v;
    }

    return errorReply(cmd.empty() ? "missing 'cmd'"
                                  : "unknown cmd '" + cmd + "'");
  } catch (const std::exception& e) {
    return errorReply(e.what());
  }
}

}  // namespace

void countRequest(const std::string& verb, bool ok) {
  static const char* const kVerbs[] = {
      "SUBMIT", "DELTA",   "STATUS", "RESULT",       "CANCEL",  "STATS",
      "METRICS", "TRACE",  "BATCH_SUBMIT", "RESULTS", "DRAIN"};
  const char* v = "unknown";
  for (const char* k : kVerbs)
    if (verb == k) {
      v = k;
      break;
    }
  obs::MetricsRegistry::global()
      .counter("skewopt_serve_requests_total",
               {{"verb", v}, {"ok", ok ? "true" : "false"}},
               "Protocol requests dispatched, by verb and outcome")
      .add();
}

json::Value handleRequest(Scheduler& sched, const json::Value& request) {
  json::Value reply = dispatchRequest(sched, request);
  countRequest(request.isObject() ? request.str("cmd", "") : "",
               reply.boolean("ok", false));
  return reply;
}

std::string handleLine(Scheduler& sched, const std::string& line) {
  json::Value request;
  try {
    request = json::parse(line);
  } catch (const std::exception& e) {
    return json::dump(errorReply(e.what()));
  }
  return json::dump(handleRequest(sched, request));
}

// ---------------------------------------------------------------------------
// TCP front-end

namespace {

/// Writes all of `data`, looping on partial writes and retrying EINTR and
/// (for a socket with a send timeout) EAGAIN/EWOULDBLOCK — under sustained
/// load short writes are routine, not errors.
bool sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(Scheduler& sched, TcpServerOptions opts)
    : TcpServer(
          [&sched](const std::string& line, const LineSink& emit) {
            return emit(handleLine(sched, line));
          },
          std::move(opts)) {}

TcpServer::TcpServer(LineHandler handler, TcpServerOptions opts)
    : handler_(std::move(handler)), opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: bad listen address " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: cannot listen on " + opts_.host + ":" +
                             std::to_string(opts_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { acceptLoop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  std::vector<std::pair<int, std::thread>> conns;
  {
    support::MutexLock lk(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& [fd, thread] : conns) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (thread.joinable()) thread.join();
    if (fd >= 0) ::close(fd);
  }
}

void TcpServer::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    obs::logDebug("serve: connection accepted")
        .field("fd", static_cast<std::int64_t>(fd));
    support::MutexLock lk(conn_mu_);
    const std::size_t slot = conns_.size();
    conns_.emplace_back(
        fd, std::thread([this, fd, slot] {
          serveConnection(fd);
          // Reclaim the fd as soon as the peer goes away (unless stop()
          // already took ownership of the connection list).
          support::MutexLock lk2(conn_mu_);
          if (slot < conns_.size() && conns_[slot].first == fd) {
            ::close(fd);
            conns_[slot].first = -1;
          }
        }));
  }
}

void TcpServer::serveConnection(int fd) {
  const LineSink emit = [fd](const std::string& reply) {
    return sendAll(fd, reply + "\n");
  };
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) return;  // EOF / error / stop(): fd is closed by stop()
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > opts_.max_line_bytes) {
        obs::logWarn("serve: oversized request line, closing connection")
            .field("fd", static_cast<std::int64_t>(fd))
            .field("bytes", static_cast<std::uint64_t>(line.size()));
        emit(json::dump(errorReply("request line exceeds " +
                                   std::to_string(opts_.max_line_bytes) +
                                   " bytes")));
        return;
      }
      if (!handler_(line, emit)) return;
    }
    // A line fragment past the bound can never become a valid request;
    // answer once and drop the connection instead of buffering without
    // limit.
    if (buffer.size() > opts_.max_line_bytes) {
      obs::logWarn("serve: oversized request line, closing connection")
          .field("fd", static_cast<std::int64_t>(fd))
          .field("bytes", static_cast<std::uint64_t>(buffer.size()));
      emit(json::dump(errorReply("request line exceeds " +
                                 std::to_string(opts_.max_line_bytes) +
                                 " bytes")));
      return;
    }
  }
}

}  // namespace skewopt::serve
