// Warm-state store: topology key -> the state a completed flow run left
// behind (core::FlowWarmState: initial-design timing snapshot, LP bases and
// cached models, realize memo).
//
// Keys come from serve::topologyKey, which pins every result-affecting
// field *except* the delta-editable ones (U sweep, corner derates, moved
// sinks) — so a DELTA job lands on the state its base job stored even
// though their canonical keys differ. Warm state only ever changes how much
// work a run performs, never its result: an evicted, missing, or
// wrong-shaped entry silently degrades to a cold run (exercised by
// serve_test), which is why the store can be a plain bounded LRU with no
// durability story.
//
// Entries are handed out as shared_ptr<const FlowWarmState>: a running job
// keeps its snapshot alive even if the store evicts it mid-run, and
// concurrent jobs on the same key share one immutable snapshot.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/flow.h"
#include "serve/job.h"
#include "support/thread_annotations.h"

namespace skewopt::serve {

class WarmStateStore {
 public:
  /// `capacity` == 0 disables the store (lookup always misses, insert is a
  /// no-op) — every job then runs cold.
  explicit WarmStateStore(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the stored state for a topology key (marking it
  /// most-recently-used), or nullptr on a miss.
  std::shared_ptr<const core::FlowWarmState> lookup(const std::string& key);

  /// Inserts (or replaces) the state for a key, evicting the
  /// least-recently-used entry when over capacity.
  void insert(const std::string& key,
              std::shared_ptr<const core::FlowWarmState> state);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FlowWarmState> state;
    std::list<std::string>::iterator lru_it;
  };

  const std::size_t capacity_;
  mutable support::Mutex mu_;
  std::unordered_map<std::string, Entry> map_ SKEWOPT_GUARDED_BY(mu_);
  /// front = most recently used
  std::list<std::string> lru_ SKEWOPT_GUARDED_BY(mu_);
  Stats stats_ SKEWOPT_GUARDED_BY(mu_);
};

/// Runs one spec like runJobSpec, but warm: looks the spec's topology key
/// up in `store` (null store == always cold), feeds any hit into the flow
/// as the warm-in state, and stores the run's own warm-out state back under
/// the same key. Results are equal to runJobSpec (asserted by the serve
/// differential tests) — only the work expended differs.
core::FlowResult runJobSpecWarm(const tech::TechModel& tech,
                                const eco::StageDelayLut& lut,
                                const JobSpec& spec, WarmStateStore* store);

}  // namespace skewopt::serve
