#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace skewopt::serve {

TcpClient::TcpClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("serve: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send(const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) throw std::runtime_error("serve: connection lost on send");
    off += static_cast<std::size_t>(n);
  }
}

std::string TcpClient::readLine() {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string reply = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!reply.empty() && reply.back() == '\r') reply.pop_back();
      return reply;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    if (n <= 0) throw std::runtime_error("serve: connection lost on recv");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string TcpClient::callRaw(const std::string& line) {
  send(line);
  return readLine();
}

json::Value TcpClient::call(const json::Value& request) {
  return json::parse(callRaw(json::dump(request)));
}

}  // namespace skewopt::serve
