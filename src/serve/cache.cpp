#include "serve/cache.h"

#include "obs/metrics.h"

namespace skewopt::serve {

namespace {

struct CacheObs {
  obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "skewopt_serve_cache_hits_total", "Result-cache lookups that hit");
  obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "skewopt_serve_cache_misses_total", "Result-cache lookups that missed");
  obs::Counter& evictions = obs::MetricsRegistry::global().counter(
      "skewopt_serve_cache_evictions_total",
      "Result-cache entries evicted by the LRU bound");
  obs::Gauge& entries = obs::MetricsRegistry::global().gauge(
      "skewopt_serve_cache_entries", "Live result-cache entries");
  static CacheObs& get() {
    static CacheObs o;
    return o;
  }
};

}  // namespace

bool ResultCache::lookup(const std::string& key, core::FlowResult* out) {
  support::MutexLock lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    CacheObs::get().misses.add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  if (out) *out = it->second.result;
  ++stats_.hits;
  CacheObs::get().hits.add();
  return true;
}

void ResultCache::insert(const std::string& key,
                         const core::FlowResult& result) {
  if (capacity_ == 0) return;
  support::MutexLock lk(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.result = result;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{result, lru_.begin()});
  ++stats_.insertions;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    CacheObs::get().evictions.add();
  }
  stats_.entries = map_.size();
  CacheObs::get().entries.set(static_cast<double>(map_.size()));
}

ResultCache::Stats ResultCache::stats() const {
  support::MutexLock lk(mu_);
  Stats s = stats_;
  s.entries = map_.size();
  return s;
}

}  // namespace skewopt::serve
