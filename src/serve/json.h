// Minimal JSON value / parser / writer for the serve wire protocol.
//
// The protocol (see server.h) exchanges one JSON object per line, so this
// module only needs the JSON core: null/bool/number/string/array/object,
// strict parsing with position-annotated errors, and a writer whose number
// formatting round-trips doubles (shortest form via %.17g, integers
// printed without an exponent). Object member order is preserved — replies
// are stable for tests and for humans reading a session transcript.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace skewopt::serve::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Value(double n) : type_(Type::kNumber), num_(n) {}       // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}          // NOLINT
  Value(std::int64_t n) : Value(static_cast<double>(n)) {} // NOLINT
  Value(std::uint64_t n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}          // NOLINT

  static Value array() { Value v; v.type_ = Type::kArray; return v; }
  static Value object() { Value v; v.type_ = Type::kObject; return v; }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  bool asBool() const { return bool_; }
  double asDouble() const { return num_; }
  const std::string& asString() const { return str_; }

  // -- arrays ---------------------------------------------------------------
  std::size_t size() const { return arr_.size(); }
  const Value& at(std::size_t i) const { return arr_[i]; }
  void push(Value v) { arr_.push_back(std::move(v)); }
  const std::vector<Value>& items() const { return arr_; }

  // -- objects (member order preserved) -------------------------------------
  /// Pointer to the member value, or nullptr when absent / not an object.
  const Value* find(const std::string& key) const;
  void set(const std::string& key, Value v);
  const std::vector<std::pair<std::string, Value>>& members() const {
    return obj_;
  }

  // Typed lookups with defaults, for tolerant request decoding.
  double num(const std::string& key, double fallback) const;
  std::string str(const std::string& key, const std::string& fallback) const;
  bool boolean(const std::string& key, bool fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Serializes compactly (no whitespace). NaN/inf are emitted as null (the
/// protocol never produces them; this keeps the output valid JSON).
std::string dump(const Value& v);

/// Parses one JSON document; trailing non-whitespace and malformed input
/// throw std::runtime_error with a byte offset.
Value parse(const std::string& text);

}  // namespace skewopt::serve::json
