// Declarative optimization jobs for the serve subsystem.
//
// A JobSpec names everything needed to reproduce one optimization run:
// where the design comes from (a testgen recipe, a .skv file on disk, or
// inline .skv text), which flow to run, and the full FlowOptions. Specs
// are value types; `canonicalKey` serializes every result-affecting field
// into a versioned string and `contentHash` folds it to 64 bits, so two
// specs with equal keys are guaranteed to produce bit-identical
// FlowResults (the parallel trial engine and the warm-started sweep are
// bit-identical to their serial paths, so the pure-parallelism knobs —
// local.parallel_trials, local.threads, global.parallel_realize — are
// deliberately excluded from the key; scheduling fields such as priority,
// deadline and retry budget never affect the result and are excluded
// too, as is options.check_level — a gate level never changes a
// *successful* result, only whether a corrupt input fails fast, and
// failures are never cached).
//
// A Job is one submitted instance of a spec inside the scheduler, with the
// lifecycle
//
//    QUEUED --> RUNNING --> DONE | FAILED
//       \-----------------> CANCELLED
//
// CANCELLED is reachable only from QUEUED (a running flow is not
// interruptible); FAILED covers permanent errors and transient errors
// whose retry budget is exhausted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/flow.h"
#include "network/design.h"
#include "support/thread_annotations.h"

namespace skewopt::serve {

/// A sink relocation applied on top of a materialized design (the
/// moved-sink edit class of DELTA jobs). Applied in list order; the list
/// is kept sorted by sink id so equal edit sets serialize identically.
struct MovedSink {
  int sink = -1;  ///< node id in the materialized design; must be a sink
  double x = 0.0;
  double y = 0.0;
};

/// Where the design under optimization comes from.
struct DesignSource {
  enum class Kind { kTestgen, kFile, kInline };
  Kind kind = Kind::kTestgen;

  // kTestgen: a paper testcase recipe ("CLS1v1", "CLS1v2", "CLS2v1").
  std::string testcase = "CLS1v1";
  std::size_t sinks = 120;
  std::size_t max_pairs = 120;
  std::uint64_t seed = 1;
  bool select_best_scenario = false;

  // kFile: a .skv design file loaded via network::loadDesign. The cache
  // keys file sources by *path*: the service assumes design files are
  // immutable for its lifetime.
  std::string path;

  // kInline: full .skv text parsed via network::readDesign (keyed by
  // content).
  std::string text;

  /// Sink moves applied after materialization (each move relocates the
  /// sink and rebuilds its parent's net). buildDesign throws on an id that
  /// is not a valid sink.
  std::vector<MovedSink> moved_sinks;
};

const char* sourceKindName(DesignSource::Kind k);

struct JobSpec {
  DesignSource source;
  core::FlowMode mode = core::FlowMode::kGlobalLocal;
  core::FlowOptions options;

  // Scheduling-only fields (not part of the content key).
  int priority = 0;         ///< higher runs first; FIFO within a priority
  double deadline_ms = 0;   ///< soft start deadline from submit; 0 = none
  int max_retries = 0;      ///< transient-failure retries beyond attempt 1

  /// Observability-only (not part of the content key, like check_level):
  /// when non-empty, the scheduler exports a Chrome trace-event JSON file
  /// of the tracing window that covers this job's run to this path. Jobs
  /// share the process-wide tracer, so spans of concurrently running jobs
  /// appear in each other's windows (they are distinguishable by thread).
  std::string trace;
  /// Observability-only: client-supplied trace context (0 = none). When
  /// nonzero the scheduler enables tracing for the job's run and stamps
  /// every span with this id (obs::ScopedTraceContext), so the TRACE verb
  /// can export exactly this job's tree even across cluster shards. When
  /// zero but tracing is otherwise active, a deterministic per-job id
  /// (obs::traceIdFor(hash, id)) is stamped instead.
  std::uint64_t trace_id = 0;
  /// Observability-only: spec-level alias of options.record (the flight
  /// recorder). Lives in FlowOptions so the flow sees it; excluded from
  /// the content key like every other observability field.
};

/// Versioned serialization of every result-affecting field (see file
/// comment for what is excluded and why).
std::string canonicalKey(const JobSpec& spec);

/// FNV-1a (64-bit) over canonicalKey.
std::uint64_t contentHash(const JobSpec& spec);

/// Like canonicalKey, but *excluding* the delta-editable fields — the U
/// sweep, the per-corner Dmax derates, and the moved-sink list — under its
/// own version prefix ("|tv=..."), so it can never alias a canonical key.
/// Two specs with equal topology keys describe the same base topology and
/// the same non-delta options; the warm-state store is keyed by this, which
/// is what lets a DELTA job reuse the state its base job left behind even
/// though their content keys differ.
std::string topologyKey(const JobSpec& spec);

/// FNV-1a (64-bit) over topologyKey.
std::uint64_t topologyHash(const JobSpec& spec);

/// The edit list of a DELTA job: what changes relative to the base spec.
/// All three edit classes keep the topology key fixed by construction.
struct DeltaEdits {
  bool has_u_sweep = false;
  std::vector<double> u_sweep;  ///< replaces options.global.u_sweep
  bool has_derates = false;
  /// Replaces options.global.corner_dmax_derate.
  std::vector<double> corner_dmax_derate;
  /// Merged onto the base's moved-sink list by sink id (an edit for a sink
  /// already moved by the base replaces that entry — delta-of-delta works).
  std::vector<MovedSink> moved_sinks;
};

/// Resolves a DELTA request into a plain, self-contained JobSpec: the base
/// spec with the edits applied (scheduling fields are kept from the base;
/// the server overrides them from the request separately). The result runs
/// through the normal submit path — DELTA is validation + merge sugar, not
/// a separate execution mode.
JobSpec applyDeltaEdits(const JobSpec& base, const DeltaEdits& edits);

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
const char* jobStateName(JobState s);
inline bool isTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// Thrown (by a job runner) to mark a failure as retryable; any other
/// exception fails the job permanently.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One submitted job. State transitions are owned by the scheduler; all
/// mutable fields are guarded by `mu` and `cv` signals every transition.
/// Copyable snapshots for clients are taken via Scheduler::status().
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  std::string key;          ///< canonicalKey(spec)
  std::uint64_t hash = 0;   ///< contentHash(spec)

  mutable support::Mutex mu;
  mutable support::CondVar cv;
  JobState state SKEWOPT_GUARDED_BY(mu) = JobState::kQueued;
  /// Runner invocations (>=2 means retried).
  int attempts SKEWOPT_GUARDED_BY(mu) = 0;
  /// Result came from the result cache.
  bool cached SKEWOPT_GUARDED_BY(mu) = false;
  /// FAILED: what went wrong.
  std::string error SKEWOPT_GUARDED_BY(mu);
  /// Valid once state == kDone.
  core::FlowResult result SKEWOPT_GUARDED_BY(mu);

  /// Set by cancel(); checked before the job is started. A running job
  /// finishes normally (the flow is not interruptible).
  std::atomic<bool> cancel_requested{false};

  /// Effective trace context: spec.trace_id when the client supplied one,
  /// obs::traceIdFor(hash, id) otherwise. Set once at submit; immutable.
  std::uint64_t trace_id = 0;
  /// obs::nowNs() at submit (for the serve.queue span); immutable.
  std::uint64_t submitted_ns = 0;

  /// Set once before the job is published to the queue; immutable after.
  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point started_at SKEWOPT_GUARDED_BY(mu){};
  std::chrono::steady_clock::time_point finished_at SKEWOPT_GUARDED_BY(mu){};
};

/// A client-side snapshot of a job's progress.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  int attempts = 0;
  bool cached = false;
  std::string error;
  double queue_ms = 0.0;  ///< submit -> start (or now/terminal if never ran)
  double run_ms = 0.0;    ///< start -> finish (or now while running)
};

/// Materializes the design a spec names. Throws std::runtime_error on an
/// unknown testcase name, unreadable file, or malformed inline text.
network::Design buildDesign(const tech::TechModel& tech,
                            const DesignSource& source);

/// Runs one spec exactly as a direct caller would: buildDesign +
/// core::Flow(tech, lut, spec.options).run(design, spec.mode, nullptr).
/// The determinism of that pipeline is what makes served results
/// bit-identical to local ones.
core::FlowResult runJobSpec(const tech::TechModel& tech,
                            const eco::StageDelayLut& lut,
                            const JobSpec& spec);

}  // namespace skewopt::serve
