#include "serve/spec_check.h"

#include <cmath>

namespace skewopt::serve {

using check::DiagnosticEngine;
using check::Severity;

void checkJobSpec(const JobSpec& spec, DiagnosticEngine& engine) {
  const char* kCheck = "job-spec";
  const DesignSource& s = spec.source;
  switch (s.kind) {
    case DesignSource::Kind::kTestgen:
      if (s.testcase != "CLS1v1" && s.testcase != "CLS1v2" &&
          s.testcase != "CLS2v1")
        engine.report(303, Severity::kError, kCheck,
                      "unknown testgen testcase \"" + s.testcase + "\"");
      if (s.sinks == 0)
        engine.report(303, Severity::kError, kCheck,
                      "testgen source requests zero sinks");
      break;
    case DesignSource::Kind::kFile:
      if (s.path.empty())
        engine.report(304, Severity::kError, kCheck,
                      "file source has an empty path");
      break;
    case DesignSource::Kind::kInline:
      if (s.text.empty())
        engine.report(304, Severity::kError, kCheck,
                      "inline source has empty design text");
      break;
  }
  if (!std::isfinite(spec.deadline_ms) || spec.deadline_ms < 0.0)
    engine.report(305, Severity::kError, kCheck,
                  "deadline_ms must be finite and non-negative");
  if (spec.max_retries < 0)
    engine.report(305, Severity::kError, kCheck,
                  "max_retries must be non-negative");
}

void checkJobRecord(const JobSpec& spec, const std::string& key,
                    std::uint64_t hash, DiagnosticEngine& engine) {
  const char* kCheck = "job-record";
  checkJobSpec(spec, engine);
  if (key.rfind("|v=", 0) != 0)
    engine.report(302, Severity::kError, kCheck,
                  "canonical key lacks the version prefix");
  if (key != canonicalKey(spec))
    engine.report(300, Severity::kError, kCheck,
                  "stored canonical key does not match the spec");
  if (hash != contentHash(spec))
    engine.report(301, Severity::kError, kCheck,
                  "stored content hash does not match the spec");
}

}  // namespace skewopt::serve
