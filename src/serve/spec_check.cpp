#include "serve/spec_check.h"

#include <cmath>

namespace skewopt::serve {

using check::DiagnosticEngine;
using check::Severity;

void checkJobSpec(const JobSpec& spec, DiagnosticEngine& engine) {
  const char* kCheck = "job-spec";
  const DesignSource& s = spec.source;
  switch (s.kind) {
    case DesignSource::Kind::kTestgen:
      if (s.testcase != "CLS1v1" && s.testcase != "CLS1v2" &&
          s.testcase != "CLS2v1")
        engine.report(303, Severity::kError, kCheck,
                      "unknown testgen testcase \"" + s.testcase + "\"");
      if (s.sinks == 0)
        engine.report(303, Severity::kError, kCheck,
                      "testgen source requests zero sinks");
      break;
    case DesignSource::Kind::kFile:
      if (s.path.empty())
        engine.report(304, Severity::kError, kCheck,
                      "file source has an empty path");
      break;
    case DesignSource::Kind::kInline:
      if (s.text.empty())
        engine.report(304, Severity::kError, kCheck,
                      "inline source has empty design text");
      break;
  }
  // SKW306: moved-sink edit list (the delta edit class that changes
  // placement). Sorted unique ids with finite coordinates keep the
  // canonical key unambiguous; sink-ness against the materialized design
  // is enforced by buildDesign, which this check cannot see.
  for (std::size_t i = 0; i < s.moved_sinks.size(); ++i) {
    const MovedSink& m = s.moved_sinks[i];
    if (m.sink < 0)
      engine.report(306, Severity::kError, kCheck,
                    "moved_sinks[" + std::to_string(i) +
                        "] has a negative node id");
    if (!std::isfinite(m.x) || !std::isfinite(m.y))
      engine.report(306, Severity::kError, kCheck,
                    "moved_sinks[" + std::to_string(i) +
                        "] has a non-finite position");
    if (i > 0 && s.moved_sinks[i - 1].sink >= m.sink)
      engine.report(306, Severity::kError, kCheck,
                    "moved_sinks must be sorted by strictly increasing "
                    "sink id (entry " +
                        std::to_string(i) + ")");
  }
  // SKW307: per-corner Dmax derates (the delta edit class that re-bounds
  // the latency rows). Derates must be finite and positive; a derate
  // below 1 tightens constraint (9), above 1 relaxes it.
  for (std::size_t i = 0;
       i < spec.options.global.corner_dmax_derate.size(); ++i) {
    const double dr = spec.options.global.corner_dmax_derate[i];
    if (!std::isfinite(dr) || dr <= 0.0)
      engine.report(307, Severity::kError, kCheck,
                    "corner_dmax_derate[" + std::to_string(i) +
                        "] must be finite and positive");
  }
  if (!std::isfinite(spec.deadline_ms) || spec.deadline_ms < 0.0)
    engine.report(305, Severity::kError, kCheck,
                  "deadline_ms must be finite and non-negative");
  if (spec.max_retries < 0)
    engine.report(305, Severity::kError, kCheck,
                  "max_retries must be non-negative");
}

void checkJobRecord(const JobSpec& spec, const std::string& key,
                    std::uint64_t hash, DiagnosticEngine& engine) {
  const char* kCheck = "job-record";
  checkJobSpec(spec, engine);
  if (key.rfind("|v=", 0) != 0)
    engine.report(302, Severity::kError, kCheck,
                  "canonical key lacks the version prefix");
  if (key != canonicalKey(spec))
    engine.report(300, Severity::kError, kCheck,
                  "stored canonical key does not match the spec");
  if (hash != contentHash(spec))
    engine.report(301, Severity::kError, kCheck,
                  "stored content hash does not match the spec");
}

}  // namespace skewopt::serve
