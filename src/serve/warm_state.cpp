#include "serve/warm_state.h"

#include "obs/metrics.h"

namespace skewopt::serve {

namespace {

struct WarmObs {
  obs::Counter& hits = obs::MetricsRegistry::global().counter(
      "skewopt_serve_warmstate_hits_total",
      "Warm-state lookups that found a prior run's state");
  obs::Counter& misses = obs::MetricsRegistry::global().counter(
      "skewopt_serve_warmstate_misses_total",
      "Warm-state lookups that missed (cold run follows)");
  obs::Counter& evictions = obs::MetricsRegistry::global().counter(
      "skewopt_serve_warmstate_evictions_total",
      "Warm-state entries evicted by the LRU bound");
  obs::Gauge& entries = obs::MetricsRegistry::global().gauge(
      "skewopt_serve_warmstate_entries", "Live warm-state entries");
  static WarmObs& get() {
    static WarmObs o;
    return o;
  }
};

}  // namespace

std::shared_ptr<const core::FlowWarmState> WarmStateStore::lookup(
    const std::string& key) {
  support::MutexLock lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    WarmObs::get().misses.add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  WarmObs::get().hits.add();
  return it->second.state;
}

void WarmStateStore::insert(const std::string& key,
                            std::shared_ptr<const core::FlowWarmState> state) {
  if (capacity_ == 0 || state == nullptr) return;
  support::MutexLock lk(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.state = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(state), lru_.begin()});
  ++stats_.insertions;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    WarmObs::get().evictions.add();
  }
  stats_.entries = map_.size();
  WarmObs::get().entries.set(static_cast<double>(map_.size()));
}

WarmStateStore::Stats WarmStateStore::stats() const {
  support::MutexLock lk(mu_);
  Stats s = stats_;
  s.entries = map_.size();
  return s;
}

core::FlowResult runJobSpecWarm(const tech::TechModel& tech,
                                const eco::StageDelayLut& lut,
                                const JobSpec& spec, WarmStateStore* store) {
  if (store == nullptr) return runJobSpec(tech, lut, spec);
  const std::string key = topologyKey(spec);
  const std::shared_ptr<const core::FlowWarmState> warm_in =
      store->lookup(key);
  auto warm_out = std::make_shared<core::FlowWarmState>();
  network::Design d = buildDesign(tech, spec.source);
  const core::Flow flow(tech, lut, spec.options);
  core::FlowResult res =
      flow.run(d, spec.mode, nullptr, warm_in.get(), warm_out.get());
  store->insert(key, std::move(warm_out));
  return res;
}

}  // namespace skewopt::serve
