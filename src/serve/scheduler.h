// The optimization job scheduler: the in-process heart of the service.
//
// Submissions enter a bounded priority JobQueue (backpressure: block or
// reject, per call); a small set of dedicated worker threads pops jobs and
// runs them to completion. Workers are deliberately *not* jobs on
// support::ThreadPool — runSlices must not be entered from inside a pool
// job (see thread_pool.h), and a worker spends almost all of its time
// inside the flow's own runSlices calls, where the calling thread works as
// slice 0 and the remaining slices share the one process-wide pool. Job
// concurrency therefore multiplies throughput without multiplying the
// compute-thread count: N concurrent jobs share the same fixed pool
// instead of spawning N private ones.
//
// Each job runs through the same deterministic pipeline a direct caller
// uses (serve::runJobSpec), so a served FlowResult is bit-identical to
// core::Flow::run on the same spec. Successful results are memoized in a
// ResultCache keyed by the spec's canonical key; a resubmitted identical
// spec completes from cache without re-running the flow.
//
// Failure handling: a runner throwing TransientError is retried with
// capped exponential backoff (base * 2^(attempt-1), capped) up to the
// spec's max_retries; any other exception fails the job permanently.
// Shutdown comes in two flavors: drain() stops intake and completes
// everything already accepted; shutdown() stops intake, cancels everything
// still queued, and completes only the jobs already running.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "eco/stage_lut.h"
#include "serve/cache.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "serve/warm_state.h"
#include "support/thread_annotations.h"
#include "tech/tech.h"

namespace skewopt::serve {

struct SchedulerOptions {
  std::size_t workers = 2;         ///< concurrent jobs (see file comment)
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 256;  ///< 0 disables result caching
  /// Warm-state store bound (topology keys). 0 disables cross-job
  /// warm-starting: every job, including DELTA resubmissions, runs cold.
  std::size_t warm_capacity = 64;
  double backoff_base_ms = 25.0;   ///< first retry delay
  double backoff_cap_ms = 2000.0;  ///< exponential backoff ceiling
  /// Bound on *terminal* jobs retained in the id registry (0 = keep all).
  /// Sustained serving needs a bound: without one every finished job's
  /// spec + result stays reachable via STATUS/RESULT forever. Once a
  /// terminal job is pruned (oldest-first), its id answers
  /// std::out_of_range like an id that never existed; queued and running
  /// jobs are never pruned.
  std::size_t terminal_retention = 0;
  /// Invoked once per job right after it reaches a terminal state, with
  /// the final status snapshot; called with no scheduler or job locks
  /// held, possibly from several worker threads at once. The cluster
  /// frontend's streaming RESULTS subscriptions hang off this. Must not
  /// block for long (it runs on the worker that finished the job).
  std::function<void(const JobStatus&)> on_terminal;
};

/// Counter snapshot. Taken under one lock, so the identity
///   submitted == done + failed + cancelled + running + queue_depth
/// holds for every snapshot — including mid-drain()/shutdown() — which is
/// what lets a cluster frontend aggregate shard stats without observing a
/// job in two states (or none) during a shard's teardown.
struct SchedulerStats {
  std::size_t submitted = 0;  ///< accepted submissions (rejections excluded)
  std::size_t done = 0;       ///< includes cache-served completions
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t retries = 0;    ///< runner re-invocations after TransientError
  std::size_t running = 0;
  std::size_t queue_depth = 0;
  std::size_t workers = 0;    ///< configured worker count (stable across drain)
  ResultCache::Stats cache;
  WarmStateStore::Stats warm;
};

class Scheduler {
 public:
  /// Replaceable job runner (tests inject failures/latency); the default
  /// (null) runs serve::runJobSpecWarm against `tech`/`lut` and the
  /// scheduler's warm-state store.
  using Runner = std::function<core::FlowResult(const JobSpec&)>;

  Scheduler(const tech::TechModel& tech, const eco::StageDelayLut& lut,
            SchedulerOptions opts = {}, Runner runner = nullptr);
  ~Scheduler();  ///< shutdown(): queued jobs are cancelled, running finish
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits a spec. With `block`, waits while the queue is full
  /// (backpressure); otherwise rejects immediately. Returns the job
  /// handle, or nullptr when rejected (queue full and !block) or when the
  /// scheduler is no longer accepting.
  std::shared_ptr<Job> submit(JobSpec spec, bool block = true);

  /// Submits a DELTA job: the base job's spec (looked up by id — the base
  /// may be in any state, including evicted-from-warm-store; only its spec
  /// is needed) with `edits` applied, run through the normal submit path.
  /// Whether the run is actually warm is a store lookup at execution time:
  /// a missing warm entry just means a cold run with identical results.
  /// A nonzero `trace_id` overrides the trace context inherited from the
  /// base spec. Throws std::out_of_range for an unknown base id.
  std::shared_ptr<Job> submitDelta(std::uint64_t base_id,
                                   const DeltaEdits& edits, bool block = true,
                                   std::uint64_t trace_id = 0);

  /// The spec a job was submitted with (DELTA base resolution).
  /// Throws std::out_of_range for an unknown id.
  JobSpec jobSpec(std::uint64_t id) const;

  /// The job's effective trace context id (spec.trace_id when the client
  /// supplied one, obs::traceIdFor(hash, id) otherwise) — what the TRACE
  /// verb filters the span export by. Throws std::out_of_range for an
  /// unknown id.
  std::uint64_t traceId(std::uint64_t id) const;

  /// Snapshot of a job's progress. Throws std::out_of_range for an unknown
  /// id.
  JobStatus status(std::uint64_t id) const;

  /// Blocks until the job is terminal and returns its result. Throws
  /// std::runtime_error when it FAILED or was CANCELLED, std::out_of_range
  /// for an unknown id.
  core::FlowResult result(std::uint64_t id) const;

  /// Waits (bounded) for a terminal state; returns the final status
  /// snapshot (state may be non-terminal on timeout; timeout_ms < 0 waits
  /// forever).
  JobStatus waitTerminal(std::uint64_t id, double timeout_ms = -1.0) const;

  /// Cancels a job. QUEUED jobs are guaranteed never to run and move to
  /// CANCELLED; returns true in that case. RUNNING/terminal jobs are not
  /// interrupted — returns false (a pending retry backoff is aborted).
  bool cancel(std::uint64_t id);

  /// Graceful drain: stop accepting, finish every queued and running job,
  /// stop the workers. Idempotent; the scheduler is terminal afterwards.
  void drain();

  /// Immediate shutdown: stop accepting, cancel all queued jobs, let
  /// running jobs finish (flows are not interruptible), stop the workers.
  void shutdown();

  SchedulerStats stats() const;
  const ResultCache& cache() const { return cache_; }
  WarmStateStore& warmStore() { return warm_; }

 private:
  std::shared_ptr<Job> findJob(std::uint64_t id) const;
  void workerLoop();
  void runJob(const std::shared_ptr<Job>& job);
  void finishCancelled(const std::shared_ptr<Job>& job);
  /// Interruptible backoff sleep; false when aborted by shutdown/cancel.
  bool sleepBackoff(const std::shared_ptr<Job>& job, double ms);
  /// Records a terminal id in the retention ring and prunes the oldest
  /// terminal jobs past opts_.terminal_retention.
  void retainTerminalLocked(std::uint64_t id) SKEWOPT_REQUIRES(mu_);
  /// Fires opts_.on_terminal (if set) with a status snapshot; call with no
  /// locks held, after the terminal transition is visible.
  void notifyTerminal(const std::shared_ptr<Job>& job);

  const tech::TechModel* tech_;
  const eco::StageDelayLut* lut_;
  SchedulerOptions opts_;
  /// Null for the default path (runJobSpecWarm against the warm store);
  /// injected runners bypass warm-starting entirely.
  Runner runner_;
  JobQueue queue_;
  ResultCache cache_;
  WarmStateStore warm_;

  /// Registry + counters + lifecycle flags.
  mutable support::Mutex mu_;
  support::CondVar stop_cv_;  ///< wakes backoff sleepers on shutdown
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_
      SKEWOPT_GUARDED_BY(mu_);
  /// Terminal ids in completion order, for retention pruning (only used
  /// when opts_.terminal_retention > 0).
  std::deque<std::uint64_t> terminal_order_ SKEWOPT_GUARDED_BY(mu_);
  std::uint64_t next_id_ SKEWOPT_GUARDED_BY(mu_) = 1;
  bool accepting_ SKEWOPT_GUARDED_BY(mu_) = true;
  bool abort_retries_ SKEWOPT_GUARDED_BY(mu_) = false;
  bool joined_ SKEWOPT_GUARDED_BY(mu_) = false;
  /// Job-population counters. Every job accepted into the queue counts in
  /// submitted_ and exactly one of queued_/running_/done_/failed_/
  /// cancelled_ at any instant (all transitions happen under mu_), which
  /// is the SchedulerStats coherence identity.
  std::size_t submitted_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t queued_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t running_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t done_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t failed_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t cancelled_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t retries_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t worker_count_ = 0;  ///< set once in the constructor

  /// Populated in the constructor, swapped out once under mu_ by the first
  /// drain()/shutdown() to join outside the lock.
  std::vector<std::thread> workers_ SKEWOPT_GUARDED_BY(mu_);
};

}  // namespace skewopt::serve
