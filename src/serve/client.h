// Clients for the optimization service.
//
// InProcessClient wraps a Scheduler directly: native JobSpec in,
// FlowResult out — zero serialization, which is what lets tests assert
// served results bit-identical to direct core::Flow::run calls. Its
// call() path feeds a raw protocol line through the same dispatch the TCP
// server uses, so the wire protocol is testable without sockets.
//
// TcpClient speaks the newline-delimited JSON protocol to a running
// TcpServer (or the skewopt_served daemon): one request line out, one
// reply line back, parsed to a json::Value.
#pragma once

#include <memory>
#include <string>

#include "serve/json.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace skewopt::serve {

class InProcessClient {
 public:
  explicit InProcessClient(Scheduler& sched) : sched_(&sched) {}

  /// Native submit; nullptr when rejected (see Scheduler::submit).
  std::shared_ptr<Job> submit(const JobSpec& spec, bool block = true) {
    return sched_->submit(spec, block);
  }
  JobStatus status(std::uint64_t id) const { return sched_->status(id); }
  /// Blocks until terminal; throws when the job did not complete.
  core::FlowResult result(std::uint64_t id) const {
    return sched_->result(id);
  }
  bool cancel(std::uint64_t id) { return sched_->cancel(id); }
  SchedulerStats stats() const { return sched_->stats(); }

  /// Protocol-level access: one request line -> one reply line, exactly as
  /// the TCP server would answer it.
  std::string call(const std::string& request_line) {
    return handleLine(*sched_, request_line);
  }

 private:
  Scheduler* sched_;
};

class TcpClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  TcpClient(const std::string& host, int port);
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Sends one request object and returns the parsed reply. Throws on
  /// connection loss or a malformed reply (protocol errors come back as
  /// {"ok":false,...} values, not exceptions).
  json::Value call(const json::Value& request);

  /// Raw line round-trip (no JSON handling on the way out).
  std::string callRaw(const std::string& line);

  /// Split halves of callRaw, for streaming verbs (BATCH_SUBMIT, RESULTS)
  /// where one request line is answered by several reply lines: send once,
  /// then readLine() per event until the end marker. Both throw
  /// std::runtime_error on connection loss.
  void send(const std::string& line);
  std::string readLine();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last reply line
};

}  // namespace skewopt::serve
