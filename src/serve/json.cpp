#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace skewopt::serve::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  for (auto& [k, existing] : obj_)
    if (k == key) {
      existing = std::move(v);
      return;
    }
  obj_.emplace_back(key, std::move(v));
}

double Value::num(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v && v->isNumber() ? v->asDouble() : fallback;
}

std::string Value::str(const std::string& key,
                       const std::string& fallback) const {
  const Value* v = find(key);
  return v && v->isString() ? v->asString() : fallback;
}

bool Value::boolean(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v && v->isBool() ? v->asBool() : fallback;
}

// ---------------------------------------------------------------------------
// Writer

namespace {

void dumpString(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[40];
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", d);
  } else {
    // Shortest representation that round-trips: try increasing precision.
    for (int prec = 15; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, d);
      if (std::strtod(buf, nullptr) == d) break;
    }
  }
  out += buf;
}

void dumpInto(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.asBool() ? "true" : "false"; break;
    case Value::Type::kNumber: dumpNumber(v.asDouble(), out); break;
    case Value::Type::kString: dumpString(v.asString(), out); break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.items()) {
        if (!first) out += ',';
        first = false;
        dumpInto(e, out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.members()) {
        if (!first) out += ',';
        first = false;
        dumpString(k, out);
        out += ':';
        dumpInto(e, out);
      }
      out += '}';
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{' || c == '[') {
      // Depth cap: the parser recurses per nesting level, so a hostile
      // "[[[[..." line would otherwise turn into a stack overflow. The
      // protocol never nests beyond a handful of levels.
      if (depth_ >= kMaxDepth) fail("nesting too deep");
      ++depth_;
      Value v = c == '{' ? parseObject() : parseArray();
      --depth_;
      return v;
    }
    if (c == '"') return Value(parseString());
    if (c == 't') {
      if (!consumeWord("true")) fail("bad literal");
      return Value(true);
    }
    if (c == 'f') {
      if (!consumeWord("false")) fail("bad literal");
      return Value(false);
    }
    if (c == 'n') {
      if (!consumeWord("null")) fail("bad literal");
      return Value();
    }
    return parseNumber();
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("bad number '" + tok + "'");
    return Value(d);
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this module's writer; decode them permissively as
          // two separate 3-byte sequences).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parseArray() {
    expect('[');
    Value v = Value::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push(parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Value parseObject() {
    expect('{');
    Value v = Value::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.set(key, parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 128;

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  dumpInto(v, out);
  return out;
}

Value parse(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace skewopt::serve::json
