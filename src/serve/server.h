// Wire protocol + TCP front-end for the optimization service.
//
// The protocol is newline-delimited JSON: one request object per line, one
// reply object per line, over a local TCP connection (or handed straight
// to handleLine for in-process use — the dispatch is identical, which is
// how the tests cover the protocol without sockets).
//
// Requests ("cmd" selects the verb):
//   {"cmd":"SUBMIT","spec":{...},"block":false}
//       -> {"ok":true,"id":7,"hash":"9f..","state":"QUEUED"}
//       -> {"ok":false,"error":"queue full"}            (backpressure)
//   {"cmd":"STATUS","id":7}
//       -> {"ok":true,"id":7,"state":"RUNNING","attempts":1,...}
//   {"cmd":"RESULT","id":7,"wait":true}
//       -> {"ok":true,"id":7,"state":"DONE","result":{...}}
//       -> {"ok":false,"state":"FAILED","error":"..."}
//   {"cmd":"CANCEL","id":7}    -> {"ok":true,"cancelled":true}
//   {"cmd":"STATS"}            -> {"ok":true,"submitted":N,...}
//   {"cmd":"TRACE","id":7}
//       -> {"ok":true,"id":7,"trace_id":"9f..","trace":{...}}
//       (the job's span tree as Chrome trace-event JSON; requires the job
//        to have been submitted with a "trace_id" spec field)
//
// The spec JSON covers the commonly-tuned option knobs (see specFromJson);
// everything else takes its FlowOptions default, identically on both the
// wire and in-process paths, so a spec submitted over TCP hashes — and
// therefore caches and reproduces — exactly like the same spec submitted
// in-process. Unknown request/spec/option keys are rejected, not ignored:
// a typo must not silently change which job runs.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "serve/scheduler.h"
#include "support/thread_annotations.h"

namespace skewopt::serve {

/// spec <-> JSON (see file comment for coverage). specFromJson throws
/// std::runtime_error on unknown keys or malformed values.
json::Value specToJson(const JobSpec& spec);
JobSpec specFromJson(const json::Value& v);

json::Value metricsToJson(const core::DesignMetrics& m);
/// `include_record` additionally emits the flight record (parsed back to a
/// JSON object under "record") when the result carries one; the default
/// keeps the wire bytes identical to pre-recorder servers.
json::Value resultToJson(const core::FlowResult& r,
                         bool include_record = false);

/// Building blocks the cluster front-end shares with this dispatcher, so
/// the sharded protocol stays byte-compatible with the single-scheduler
/// one (see src/cluster/protocol.h).
json::Value errorReply(const std::string& message);
json::Value statusToJson(const JobStatus& s);
json::Value schedulerStatsToJson(const SchedulerStats& s);
/// The STATS "gauges" object: live values of the serve obs gauges and
/// counters (process-wide — in a cluster these aggregate all shards).
json::Value serveGaugesToJson();
std::string hashHex(std::uint64_t h);
/// Parses a DELTA "edits" object ({"u_sweep":..,"corner_dmax_derate":..,
/// "moved_sinks":..}); throws std::runtime_error on malformed input.
DeltaEdits deltaEditsFromJson(const json::Value& v);
/// Parses a request/spec "trace_id" value (16-digit hex string); throws
/// std::runtime_error on malformed input or the reserved id 0.
std::uint64_t traceIdFromJson(const json::Value& v);
/// Bumps skewopt_serve_requests_total{verb="...",ok="..."} for one
/// dispatched request. Verbs outside the protocol's fixed set are counted
/// under verb="unknown" so a hostile client cannot grow label cardinality.
void countRequest(const std::string& verb, bool ok);

/// Dispatches one parsed request against the scheduler. Never throws for
/// protocol-level errors — they become {"ok":false,"error":...} replies.
json::Value handleRequest(Scheduler& sched, const json::Value& request);

/// parse + handleRequest + dump; malformed JSON becomes an error reply.
std::string handleLine(Scheduler& sched, const std::string& line);

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is reported by port()
  /// Per-connection read-buffer bound. A request line longer than this is
  /// answered with a JSON error and the connection is closed — the buffer
  /// never grows past the bound no matter what the peer sends.
  std::size_t max_line_bytes = 1u << 20;
};

/// Serves the protocol over a local TCP socket: one accept loop, one
/// thread per connection, each processing requests sequentially (clients
/// wanting parallel jobs open several connections or use non-blocking
/// SUBMIT + STATUS polling). stop() (and the destructor) shuts every
/// connection down and joins all threads; the scheduler itself is left
/// running.
class TcpServer {
 public:
  /// Delivers one reply line to the peer ("\n" appended by the server);
  /// false when the peer is gone — the handler should stop emitting.
  using LineSink = std::function<bool(const std::string&)>;
  /// Full-generality request handler: one request line in, any number of
  /// reply lines out through the sink (streaming verbs emit many).
  /// Returning false closes the connection. Runs on the connection's
  /// thread, so concurrent connections mean concurrent handler calls.
  using LineHandler =
      std::function<bool(const std::string& line, const LineSink& emit)>;

  TcpServer(Scheduler& sched, TcpServerOptions opts = {});
  TcpServer(LineHandler handler, TcpServerOptions opts = {});
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  int port() const { return port_; }
  void stop();

 private:
  void acceptLoop();
  void serveConnection(int fd);

  LineHandler handler_;
  TcpServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  support::Mutex conn_mu_;
  /// fd + handler thread per live connection.
  std::vector<std::pair<int, std::thread>> conns_ SKEWOPT_GUARDED_BY(conn_mu_);
};

}  // namespace skewopt::serve
