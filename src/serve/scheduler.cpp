#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/clock.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/spec_check.h"

namespace skewopt::serve {

namespace {

// Job lifecycle timestamps deliberately stay on raw steady_clock rather
// than the injectable obs::nowNs(): deadline handling waits on condition
// variables via wait_until, which needs real time_points a fake
// function-pointer clock cannot provide. Library phase timings (the obs
// histograms below, Stopwatch) all go through obs::nowNs().
double msSince(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct ServeObs {
  obs::Counter& submitted = obs::MetricsRegistry::global().counter(
      "skewopt_serve_jobs_submitted_total", "Jobs accepted into the queue");
  obs::Counter& rejected = obs::MetricsRegistry::global().counter(
      "skewopt_serve_jobs_rejected_total",
      "Submissions rejected by backpressure or shutdown");
  obs::Counter& done = obs::MetricsRegistry::global().counter(
      "skewopt_serve_jobs_done_total", "Jobs finished DONE");
  obs::Counter& failed = obs::MetricsRegistry::global().counter(
      "skewopt_serve_jobs_failed_total", "Jobs finished FAILED");
  obs::Counter& cancelled = obs::MetricsRegistry::global().counter(
      "skewopt_serve_jobs_cancelled_total", "Jobs finished CANCELLED");
  obs::Counter& retries = obs::MetricsRegistry::global().counter(
      "skewopt_serve_retries_total", "Transient-failure retry attempts");
  obs::Gauge& running = obs::MetricsRegistry::global().gauge(
      "skewopt_serve_jobs_running", "Jobs currently RUNNING");
  obs::Histogram& run_ms = obs::MetricsRegistry::global().histogram(
      "skewopt_serve_job_run_ms", obs::defaultMsBuckets(),
      "Start-to-finish wall time of executed (non-cached) jobs");
  static ServeObs& get() {
    static ServeObs o;
    return o;
  }
};

/// Scopes one job's optional trace export: opens a tracing window at
/// construction when the spec asks for one, and on destruction exports
/// everything the window saw to the spec's path. Export failures are
/// logged, never reported to the job (observability must not change job
/// outcomes).
class JobTraceScope {
 public:
  explicit JobTraceScope(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    since_ns_ = obs::nowNs();
    obs::Tracer::global().start();
  }
  ~JobTraceScope() {
    if (path_.empty()) return;
    obs::Tracer::global().stop();
    std::string err;
    if (!obs::Tracer::global().writeJsonFile(path_, since_ns_, &err))
      obs::logWarn("serve: trace export failed")
          .field("path", path_)
          .field("error", err);
  }
  JobTraceScope(const JobTraceScope&) = delete;
  JobTraceScope& operator=(const JobTraceScope&) = delete;

 private:
  std::string path_;
  std::uint64_t since_ns_ = 0;
};

/// Holds the tracer open (refcounted) while a client-traced job runs: a
/// nonzero spec.trace_id means the client intends to pull the job's span
/// tree with the TRACE verb, which needs the spans recorded even without
/// a trace file path.
class TracerOnScope {
 public:
  explicit TracerOnScope(bool active) : active_(active) {
    if (active_) obs::Tracer::global().start();
  }
  ~TracerOnScope() {
    if (active_) obs::Tracer::global().stop();
  }
  TracerOnScope(const TracerOnScope&) = delete;
  TracerOnScope& operator=(const TracerOnScope&) = delete;

 private:
  bool active_;
};

}  // namespace

Scheduler::Scheduler(const tech::TechModel& tech, const eco::StageDelayLut& lut,
                     SchedulerOptions opts, Runner runner)
    : tech_(&tech),
      lut_(&lut),
      opts_(opts),
      runner_(std::move(runner)),
      queue_(std::max<std::size_t>(1, opts.queue_capacity)),
      cache_(opts.cache_capacity),
      warm_(opts.warm_capacity) {
  // The service always runs with live metrics: the METRICS verb and the
  // STATS gauges are part of its contract.
  obs::setMetricsEnabled(true);
  const std::size_t n = std::max<std::size_t>(1, opts_.workers);
  worker_count_ = n;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() { shutdown(); }

std::shared_ptr<Job> Scheduler::submit(JobSpec spec, bool block) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->key = canonicalKey(job->spec);
  job->hash = contentHash(job->spec);
  job->submitted_at = std::chrono::steady_clock::now();
  job->submitted_ns = obs::nowNs();
  {
    support::MutexLock lk(mu_);
    if (!accepting_) {
      ServeObs::get().rejected.add();
      obs::logWarn("serve: submit rejected").field("reason", "shutting down");
      return nullptr;
    }
    job->id = next_id_++;
    job->trace_id = job->spec.trace_id != 0
                        ? job->spec.trace_id
                        : obs::traceIdFor(job->hash, job->id);
    jobs_.emplace(job->id, job);
    // Counted as submitted+queued before the push: a blocked producer's
    // job is logically pending, and the coherence identity must hold for
    // any stats() racing the push.
    ++submitted_;
    ++queued_;
  }
  if (!queue_.push(job, block)) {
    // Rejected (full without blocking, or closed while blocked): the job
    // never became visible as QUEUED work; drop it from the registry.
    ServeObs::get().rejected.add();
    obs::logWarn("serve: submit rejected")
        .field("job_id", job->id)
        .field("reason", "queue full");
    support::MutexLock lk(mu_);
    jobs_.erase(job->id);
    --submitted_;
    --queued_;
    return nullptr;
  }
  ServeObs::get().submitted.add();
  obs::logInfo("serve: job submitted")
      .field("job_id", job->id)
      .field("trace_id", obs::traceIdHex(job->trace_id))
      .field("priority", static_cast<std::int64_t>(job->spec.priority));
  return job;
}

std::shared_ptr<Job> Scheduler::submitDelta(std::uint64_t base_id,
                                            const DeltaEdits& edits,
                                            bool block,
                                            std::uint64_t trace_id) {
  // Resolution needs only the base's *spec*, so the base may be queued,
  // running, finished, or long evicted from every cache — and whether the
  // resolved job then runs warm is purely a store lookup at execution time.
  JobSpec spec = applyDeltaEdits(jobSpec(base_id), edits);
  if (trace_id != 0) spec.trace_id = trace_id;
  return submit(std::move(spec), block);
}

JobSpec Scheduler::jobSpec(std::uint64_t id) const {
  return findJob(id)->spec;
}

std::uint64_t Scheduler::traceId(std::uint64_t id) const {
  return findJob(id)->trace_id;
}

std::shared_ptr<Job> Scheduler::findJob(std::uint64_t id) const {
  support::MutexLock lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw std::out_of_range("serve: unknown job id " + std::to_string(id));
  return it->second;
}

JobStatus Scheduler::status(std::uint64_t id) const {
  const std::shared_ptr<Job> job = findJob(id);
  const auto now = std::chrono::steady_clock::now();
  support::MutexLock lk(job->mu);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.attempts = job->attempts;
  s.cached = job->cached;
  s.error = job->error;
  switch (job->state) {
    case JobState::kQueued:
      s.queue_ms = msSince(job->submitted_at, now);
      break;
    case JobState::kRunning:
      s.queue_ms = msSince(job->submitted_at, job->started_at);
      s.run_ms = msSince(job->started_at, now);
      break;
    default: {
      const bool ran =
          job->started_at != std::chrono::steady_clock::time_point{};
      s.queue_ms = msSince(job->submitted_at,
                           ran ? job->started_at : job->finished_at);
      s.run_ms = ran ? msSince(job->started_at, job->finished_at) : 0.0;
    }
  }
  return s;
}

core::FlowResult Scheduler::result(std::uint64_t id) const {
  const std::shared_ptr<Job> job = findJob(id);
  support::MutexLock lk(job->mu);
  while (!isTerminal(job->state)) job->cv.wait(lk);
  if (job->state == JobState::kDone) return job->result;
  throw std::runtime_error("serve: job " + std::to_string(id) + " " +
                           jobStateName(job->state) +
                           (job->error.empty() ? "" : ": " + job->error));
}

JobStatus Scheduler::waitTerminal(std::uint64_t id, double timeout_ms) const {
  const std::shared_ptr<Job> job = findJob(id);
  {
    support::MutexLock lk(job->mu);
    if (timeout_ms < 0) {
      while (!isTerminal(job->state)) job->cv.wait(lk);
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(timeout_ms));
      while (!isTerminal(job->state))
        if (job->cv.waitUntil(lk, deadline) == std::cv_status::timeout) break;
    }
  }
  return status(id);
}

bool Scheduler::cancel(std::uint64_t id) {
  const std::shared_ptr<Job> job = findJob(id);
  job->cancel_requested.store(true, std::memory_order_release);
  if (queue_.remove(id)) {
    finishCancelled(job);
    return true;
  }
  // Not in the queue: either already picked up, or in the pop->start
  // window. The worker re-checks the flag under job->mu before marking
  // RUNNING, so a job still QUEUED here is guaranteed never to run.
  support::MutexLock lk(job->mu);
  if (job->state == JobState::kQueued) return true;
  // RUNNING (the flag still aborts a pending retry backoff) or terminal.
  return false;
}

void Scheduler::finishCancelled(const std::shared_ptr<Job>& job) {
  {
    support::MutexLock lk(job->mu);
    if (isTerminal(job->state)) return;
    job->state = JobState::kCancelled;
    job->finished_at = std::chrono::steady_clock::now();
    // Counters update before any waiter can observe the terminal state, so
    // stats() is consistent once waitTerminal()/result() returns. Lock
    // order is job->mu then mu_ everywhere they nest. Cancellation only
    // ever reaches QUEUED jobs, so the queued count moves with it.
    support::MutexLock lk2(mu_);
    --queued_;
    ++cancelled_;
    ServeObs::get().cancelled.add();
    retainTerminalLocked(job->id);
  }
  obs::logInfo("serve: job cancelled").field("job_id", job->id);
  job->cv.notifyAll();
  notifyTerminal(job);
}

bool Scheduler::sleepBackoff(const std::shared_ptr<Job>& job, double ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
  support::MutexLock lk(mu_);
  for (;;) {
    if (abort_retries_ ||
        job->cancel_requested.load(std::memory_order_acquire))
      return false;
    if (std::chrono::steady_clock::now() >= deadline) break;
    stop_cv_.waitUntil(lk, deadline);
  }
  ++retries_;
  ServeObs::get().retries.add();
  return true;
}

void Scheduler::workerLoop() {
  std::vector<std::shared_ptr<Job>> cancelled;
  for (;;) {
    cancelled.clear();
    std::shared_ptr<Job> job = queue_.pop(&cancelled);
    for (const auto& c : cancelled) finishCancelled(c);
    if (!job) return;
    runJob(job);
  }
}

void Scheduler::runJob(const std::shared_ptr<Job>& job) {
  const auto start = std::chrono::steady_clock::now();
  const bool deadline_missed =
      job->spec.deadline_ms > 0 &&
      msSince(job->submitted_at, start) > job->spec.deadline_ms;

  // Transition QUEUED -> RUNNING in one critical section, honoring a
  // cancel that landed in the pop->start window (cancel() observed state
  // QUEUED under job->mu and returned true, so the job must never run).
  ServeObs& sobs = ServeObs::get();
  bool cancelled_now = false;
  {
    support::MutexLock lk(job->mu);
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      cancelled_now = true;
    } else if (deadline_missed) {
      job->state = JobState::kFailed;
      job->error = "start deadline exceeded";
      job->finished_at = start;
      support::MutexLock lk2(mu_);
      --queued_;
      ++failed_;
      ServeObs::get().failed.add();
      retainTerminalLocked(job->id);
    } else {
      job->state = JobState::kRunning;
      job->started_at = start;
      // queued -> running moves in the same mu_ section as the state flip
      // so no stats() snapshot can see the job in both (or neither).
      support::MutexLock lk2(mu_);
      --queued_;
      ++running_;
      sobs.running.add(1.0);
    }
  }
  if (cancelled_now) {
    finishCancelled(job);
    return;
  }
  if (deadline_missed) {
    obs::logWarn("serve: job missed start deadline")
        .field("job_id", job->id)
        .field("deadline_ms", job->spec.deadline_ms);
    job->cv.notifyAll();
    notifyTerminal(job);
    return;
  }

  core::FlowResult result;
  bool ok = false, cached = false;
  std::string error;

  // The tracing scope closes before the terminal state flip below: every
  // span of the job (serve.job included — emitted at Span destruction)
  // and any "trace" file export are complete before waiters wake, so a
  // client doing RESULT(wait) then TRACE never sees a partial tree.
  {
    // Tracing: open the windows first (refcounted client window +
    // optional file-export window), then install the job's trace context
    // so every span below — including pool slices via runSlices — is
    // stamped with it.
    TracerOnScope client_trace(job->spec.trace_id != 0);
    JobTraceScope trace_scope(job->spec.trace);
    obs::ScopedTraceContext trace_ctx(job->trace_id);
    if (obs::tracingOn()) {
      const std::uint64_t now_ns = obs::nowNs();
      obs::Tracer::global().emitEvent(
          "serve.queue", job->submitted_ns,
          now_ns > job->submitted_ns ? now_ns - job->submitted_ns : 0);
    }
    obs::Span job_span("serve.job");
    job_span.arg("job_id", static_cast<std::int64_t>(job->id));
    obs::logInfo("serve: job started")
        .field("job_id", job->id)
        .field("trace_id", obs::traceIdHex(job->trace_id));

    // Cross-check the job's spec and its cache-keying fields before the
    // cache lookup: a drifted key would serve (or poison) the wrong entry.
    // Record corruption is permanent — no retry can repair it.
    check::DiagnosticEngine record_check;
    record_check.setContext("serve:job");
    checkJobRecord(job->spec, job->key, job->hash, record_check);

    if (record_check.hasErrors()) {
      error = "job record failed validation:\n" + record_check.text();
    } else if (cache_.lookup(job->key, &result)) {
      ok = cached = true;
    } else {
      for (;;) {
        {
          support::MutexLock lk(job->mu);
          ++job->attempts;
        }
        try {
          result = runner_ ? runner_(job->spec)
                           : runJobSpecWarm(*tech_, *lut_, job->spec, &warm_);
          ok = true;
          break;
        } catch (const TransientError& e) {
          error = e.what();
          int attempts;
          {
            support::MutexLock lk(job->mu);
            attempts = job->attempts;
          }
          if (attempts > job->spec.max_retries) break;
          const double delay =
              std::min(opts_.backoff_cap_ms,
                       opts_.backoff_base_ms *
                           static_cast<double>(
                               1u << std::min(attempts - 1, 20)));
          if (!sleepBackoff(job, delay)) {
            error += " (retry aborted)";
            break;
          }
          obs::logWarn("serve: job retrying after transient failure")
              .field("job_id", job->id)
              .field("attempt", static_cast<std::int64_t>(attempts))
              .field("error", error);
        } catch (const std::exception& e) {
          error = e.what();
          break;
        }
      }
      if (ok) cache_.insert(job->key, result);
    }
  }

  {
    support::MutexLock lk(job->mu);
    job->state = ok ? JobState::kDone : JobState::kFailed;
    job->cached = cached;
    if (ok) {
      job->result = std::move(result);
    } else {
      job->error = error;
    }
    job->finished_at = std::chrono::steady_clock::now();
    if (!cached)
      sobs.run_ms.observe(msSince(job->started_at, job->finished_at));
    support::MutexLock lk2(mu_);
    --running_;
    sobs.running.add(-1.0);
    ++(ok ? done_ : failed_);
    (ok ? sobs.done : sobs.failed).add();
    retainTerminalLocked(job->id);
  }
  if (ok) {
    obs::logInfo("serve: job done")
        .field("job_id", job->id)
        .field("cached", cached);
  } else {
    obs::logWarn("serve: job failed")
        .field("job_id", job->id)
        .field("error", error);
  }
  job->cv.notifyAll();
  notifyTerminal(job);
}

void Scheduler::retainTerminalLocked(std::uint64_t id) {
  if (opts_.terminal_retention == 0) return;
  terminal_order_.push_back(id);
  while (terminal_order_.size() > opts_.terminal_retention) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

void Scheduler::notifyTerminal(const std::shared_ptr<Job>& job) {
  if (!opts_.on_terminal) return;
  JobStatus s;
  {
    support::MutexLock lk(job->mu);
    s.id = job->id;
    s.state = job->state;
    s.attempts = job->attempts;
    s.cached = job->cached;
    s.error = job->error;
    const bool ran =
        job->started_at != std::chrono::steady_clock::time_point{};
    s.queue_ms = msSince(job->submitted_at,
                         ran ? job->started_at : job->finished_at);
    s.run_ms = ran ? msSince(job->started_at, job->finished_at) : 0.0;
  }
  opts_.on_terminal(s);
}

void Scheduler::drain() {
  {
    support::MutexLock lk(mu_);
    accepting_ = false;
  }
  queue_.close();
  std::vector<std::thread> workers;
  {
    support::MutexLock lk(mu_);
    if (joined_) return;
    joined_ = true;
    workers.swap(workers_);
  }
  for (std::thread& w : workers) w.join();
}

void Scheduler::shutdown() {
  {
    support::MutexLock lk(mu_);
    accepting_ = false;
    abort_retries_ = true;
  }
  stop_cv_.notifyAll();
  for (const auto& job : queue_.closeAndClear()) {
    job->cancel_requested.store(true, std::memory_order_release);
    finishCancelled(job);
  }
  std::vector<std::thread> workers;
  {
    support::MutexLock lk(mu_);
    if (joined_) return;
    joined_ = true;
    workers.swap(workers_);
  }
  for (std::thread& w : workers) w.join();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    // One lock for every job counter: the coherence identity (see
    // SchedulerStats) must hold even for snapshots racing drain/shutdown.
    // queue_depth comes from queued_, not queue_.depth() — a popped job
    // that hasn't flipped to RUNNING yet is still logically queued.
    support::MutexLock lk(mu_);
    s.submitted = submitted_;
    s.done = done_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.retries = retries_;
    s.running = running_;
    s.queue_depth = queued_;
  }
  s.workers = worker_count_;
  s.cache = cache_.stats();
  s.warm = warm_.stats();
  return s;
}

}  // namespace skewopt::serve
