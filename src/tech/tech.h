// Synthetic 28nm-like multi-corner technology model.
//
// The paper's experiments run on a foundry 28nm LP PDK with four signoff
// corners (its Table 3). We cannot ship that PDK, so this module builds a
// self-contained equivalent exposing the same interfaces a Liberty-based
// flow would use:
//
//  * `Corner`       — process / voltage / temperature / BEOL corner.
//  * `DelayTable`   — an NLDM-style 2-D (input slew x output load) table with
//                     bilinear interpolation, as a timer would read from a
//                     .lib file.
//  * `Cell`         — an inverter of a given drive strength with per-corner
//                     delay/output-slew tables, pin cap, area, and power data.
//  * `TechModel`    — the corner set, wire parasitics per corner, and the
//                     cell library.
//
// The essential physics the reproduction must preserve is that gate delay
// and wire delay scale *differently* across corners (voltage/process move
// gates, temperature moves wire resistance, the BEOL corner moves wire cap).
// That asymmetry is what creates cross-corner skew variation on paths with
// different wire/gate delay composition, and is what the paper's Figure 2
// ratio envelope captures.
//
// Units used throughout the project: time ps, capacitance fF, resistance
// kOhm (so kOhm * fF = ps), length um, voltage V, energy fJ, leakage nW.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace skewopt::tech {

enum class Process { SS, FF };
enum class Beol { CMAX, CMIN };

/// One signoff corner (paper Table 3).
struct Corner {
  std::string name;
  Process process = Process::SS;
  double voltage = 0.9;
  double temp_c = 25.0;
  Beol beol = Beol::CMAX;
};

/// Per-corner wire parasitics for the clock routing layer.
struct WireParams {
  double res_kohm_per_um = 0.0;
  double cap_ff_per_um = 0.0;
};

/// Cached axis-interval indices carried between lookups. A propagation
/// level walks near-monotone slew/load sequences through the same table, so
/// validating the previous interval (two comparisons) almost always beats
/// re-running the binary search. Hints are pure accelerators: a lookup
/// through a hint returns the bit-identical result of the unhinted path,
/// whatever the hint's prior state. Hints are mutated on every call — keep
/// one per thread/scratch, never share across concurrent callers.
struct LutHint {
  std::uint32_t slew = 0;
  std::uint32_t load = 0;
};

/// NLDM-style 2-D lookup table indexed by (input slew, output load).
/// Lookup is bilinear inside the grid and linearly extrapolated outside
/// using the boundary interval's slope, which matches common STA behavior.
/// Axes must be strictly increasing.
class DelayTable {
 public:
  DelayTable() = default;
  /// `values` is row-major: values[s * loads.size() + l].
  DelayTable(std::vector<double> slews, std::vector<double> loads,
             std::vector<double> values);

  double lookup(double slew_ps, double load_ff) const;

  /// Hinted scalar lookup: the cached interval pair in `hint` is validated
  /// (and advanced) before falling back to the binary search. Bit-identical
  /// to the unhinted lookup.
  double lookup(double slew_ps, double load_ff, LutHint* hint) const;

  /// SoA batch lookup over contiguous vectors: out[i] = lookup(slew[i],
  /// load[i]), one hint chain carried across elements so near-monotone
  /// input sequences cost O(1) axis work per element. All three spans must
  /// have equal length. Bit-identical to the scalar path element by
  /// element.
  void lookupBatch(std::span<const double> slews, std::span<const double> loads,
                   std::span<double> out) const;

  const std::vector<double>& slewAxis() const { return slews_; }
  const std::vector<double>& loadAxis() const { return loads_; }
  /// Raw row-major table values (CornerLut packs these verbatim).
  const std::vector<double>& values() const { return values_; }
  bool empty() const { return values_.empty(); }

 private:
  double at(std::size_t s, std::size_t l) const {
    return values_[s * loads_.size() + l];
  }
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;
};

/// Corner-major packed view over one table role (delay or output slew) of a
/// cell across all corners. Every per-corner DelayTable of a cell shares
/// its axes, so the packed values — v[(s * n_load + l) * K + k] — let one
/// axis search serve every corner, with the K corner values of a table cell
/// adjacent in memory. Lookups are bit-identical to the per-corner
/// DelayTable lookups (differential-tested).
class CornerLut {
 public:
  CornerLut() = default;
  /// Packs per-corner tables. Throws std::invalid_argument when the tables
  /// do not all share identical axes.
  explicit CornerLut(const std::vector<DelayTable>& per_corner);

  bool empty() const { return values_.empty(); }
  std::size_t numCorners() const { return corners_; }

  /// Per-corner evaluation points (the timer's case — each corner carries
  /// its own slew/load): out[i] = per_corner[corner_ids[i]].lookup(slew[i],
  /// load[i]). One shared hint chain over the common axes.
  void lookupEach(std::span<const std::size_t> corner_ids, const double* slew,
                  const double* load, double* out, LutHint* hint) const;

  /// One shared (slew, load) point evaluated at every packed corner:
  /// out[k] = per_corner[k].lookup(slew, load). A single axis search and
  /// contiguous K-wide reads per table cell.
  void lookupAll(double slew, double load, double* out) const;

 private:
  std::size_t corners_ = 0;
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;  ///< [(s * loads + l) * corners + k]
};

/// An inverter cell characterized at every corner.
struct Cell {
  std::string name;
  double drive = 1.0;     ///< relative drive strength (X1 = 1)
  double area_um2 = 0.0;  ///< footprint used for Table 5's area column
  double max_cap_ff = 0.0;

  // Indexed by corner id.
  std::vector<double> pin_cap_ff;
  std::vector<DelayTable> delay;        ///< pin-to-pin delay
  std::vector<DelayTable> out_slew;     ///< output transition
  std::vector<double> leakage_nw;       ///< leakage power
  std::vector<double> internal_energy_fj;  ///< energy per output toggle

  // Corner-major packed views over `delay`/`out_slew`, built by
  // TechModel::make28nm after characterization — the batch timing kernels'
  // view of the same data.
  CornerLut delay_packed;
  CornerLut out_slew_packed;
};

/// The full technology view used by every other module.
class TechModel {
 public:
  /// Builds the default synthetic 28nm-like model with the paper's four
  /// corners: c0=(ss,0.90V,-25C,Cmax), c1=(ss,0.75V,-25C,Cmax),
  /// c2=(ff,1.10V,125C,Cmin), c3=(ff,1.32V,125C,Cmin).
  ///
  /// `gate_derate_compression` in [0, 1) pulls every corner's gate derate
  /// toward 1 by that fraction — a model of the paper's future-work item
  /// (iii), "library cells whose delay and slew are less sensitive to
  /// corner variation". 0 is the normal library.
  static TechModel make28nm(double gate_derate_compression = 0.0);

  std::size_t numCorners() const { return corners_.size(); }
  const Corner& corner(std::size_t k) const { return corners_[k]; }
  const std::vector<Corner>& corners() const { return corners_; }

  const WireParams& wire(std::size_t k) const { return wire_[k]; }

  std::size_t numCells() const { return cells_.size(); }
  const Cell& cell(std::size_t i) const { return cells_[i]; }
  const std::vector<Cell>& cells() const { return cells_; }

  /// Flip-flop clock-pin input capacitance at corner k.
  double sinkCapFf(std::size_t k) const { return sink_cap_ff_[k]; }

  /// Analytical gate-delay derate of corner k relative to c0; exposed for
  /// tests and for documentation of the corner model.
  double gateDerate(std::size_t k) const { return gate_derate_[k]; }

  /// Clock frequency used for the power report (Table 5).
  double clockFreqGhz() const { return 1.0; }

  /// Placement site grid (x) and row pitch (y) for the legalizer.
  double siteWidthUm() const { return 0.2; }
  double rowHeightUm() const { return 1.2; }

 private:
  std::vector<Corner> corners_;
  std::vector<WireParams> wire_;
  std::vector<Cell> cells_;
  std::vector<double> sink_cap_ff_;
  std::vector<double> gate_derate_;
};

}  // namespace skewopt::tech
