// Synthetic 28nm-like multi-corner technology model.
//
// The paper's experiments run on a foundry 28nm LP PDK with four signoff
// corners (its Table 3). We cannot ship that PDK, so this module builds a
// self-contained equivalent exposing the same interfaces a Liberty-based
// flow would use:
//
//  * `Corner`       — process / voltage / temperature / BEOL corner.
//  * `DelayTable`   — an NLDM-style 2-D (input slew x output load) table with
//                     bilinear interpolation, as a timer would read from a
//                     .lib file.
//  * `Cell`         — an inverter of a given drive strength with per-corner
//                     delay/output-slew tables, pin cap, area, and power data.
//  * `TechModel`    — the corner set, wire parasitics per corner, and the
//                     cell library.
//
// The essential physics the reproduction must preserve is that gate delay
// and wire delay scale *differently* across corners (voltage/process move
// gates, temperature moves wire resistance, the BEOL corner moves wire cap).
// That asymmetry is what creates cross-corner skew variation on paths with
// different wire/gate delay composition, and is what the paper's Figure 2
// ratio envelope captures.
//
// Units used throughout the project: time ps, capacitance fF, resistance
// kOhm (so kOhm * fF = ps), length um, voltage V, energy fJ, leakage nW.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace skewopt::tech {

enum class Process { SS, FF };
enum class Beol { CMAX, CMIN };

/// One signoff corner (paper Table 3).
struct Corner {
  std::string name;
  Process process = Process::SS;
  double voltage = 0.9;
  double temp_c = 25.0;
  Beol beol = Beol::CMAX;
};

/// Per-corner wire parasitics for the clock routing layer.
struct WireParams {
  double res_kohm_per_um = 0.0;
  double cap_ff_per_um = 0.0;
};

/// NLDM-style 2-D lookup table indexed by (input slew, output load).
/// Lookup is bilinear inside the grid and linearly extrapolated outside
/// using the boundary interval's slope, which matches common STA behavior.
class DelayTable {
 public:
  DelayTable() = default;
  /// `values` is row-major: values[s * loads.size() + l].
  DelayTable(std::vector<double> slews, std::vector<double> loads,
             std::vector<double> values);

  double lookup(double slew_ps, double load_ff) const;

  const std::vector<double>& slewAxis() const { return slews_; }
  const std::vector<double>& loadAxis() const { return loads_; }
  bool empty() const { return values_.empty(); }

 private:
  double at(std::size_t s, std::size_t l) const {
    return values_[s * loads_.size() + l];
  }
  std::vector<double> slews_;
  std::vector<double> loads_;
  std::vector<double> values_;
};

/// An inverter cell characterized at every corner.
struct Cell {
  std::string name;
  double drive = 1.0;     ///< relative drive strength (X1 = 1)
  double area_um2 = 0.0;  ///< footprint used for Table 5's area column
  double max_cap_ff = 0.0;

  // Indexed by corner id.
  std::vector<double> pin_cap_ff;
  std::vector<DelayTable> delay;        ///< pin-to-pin delay
  std::vector<DelayTable> out_slew;     ///< output transition
  std::vector<double> leakage_nw;       ///< leakage power
  std::vector<double> internal_energy_fj;  ///< energy per output toggle
};

/// The full technology view used by every other module.
class TechModel {
 public:
  /// Builds the default synthetic 28nm-like model with the paper's four
  /// corners: c0=(ss,0.90V,-25C,Cmax), c1=(ss,0.75V,-25C,Cmax),
  /// c2=(ff,1.10V,125C,Cmin), c3=(ff,1.32V,125C,Cmin).
  ///
  /// `gate_derate_compression` in [0, 1) pulls every corner's gate derate
  /// toward 1 by that fraction — a model of the paper's future-work item
  /// (iii), "library cells whose delay and slew are less sensitive to
  /// corner variation". 0 is the normal library.
  static TechModel make28nm(double gate_derate_compression = 0.0);

  std::size_t numCorners() const { return corners_.size(); }
  const Corner& corner(std::size_t k) const { return corners_[k]; }
  const std::vector<Corner>& corners() const { return corners_; }

  const WireParams& wire(std::size_t k) const { return wire_[k]; }

  std::size_t numCells() const { return cells_.size(); }
  const Cell& cell(std::size_t i) const { return cells_[i]; }
  const std::vector<Cell>& cells() const { return cells_; }

  /// Flip-flop clock-pin input capacitance at corner k.
  double sinkCapFf(std::size_t k) const { return sink_cap_ff_[k]; }

  /// Analytical gate-delay derate of corner k relative to c0; exposed for
  /// tests and for documentation of the corner model.
  double gateDerate(std::size_t k) const { return gate_derate_[k]; }

  /// Clock frequency used for the power report (Table 5).
  double clockFreqGhz() const { return 1.0; }

  /// Placement site grid (x) and row pitch (y) for the legalizer.
  double siteWidthUm() const { return 0.2; }
  double rowHeightUm() const { return 1.2; }

 private:
  std::vector<Corner> corners_;
  std::vector<WireParams> wire_;
  std::vector<Cell> cells_;
  std::vector<double> sink_cap_ff_;
  std::vector<double> gate_derate_;
};

}  // namespace skewopt::tech
