#include "tech/tech.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace skewopt::tech {

DelayTable::DelayTable(std::vector<double> slews, std::vector<double> loads,
                       std::vector<double> values)
    : slews_(std::move(slews)), loads_(std::move(loads)),
      values_(std::move(values)) {
  if (slews_.size() < 2 || loads_.size() < 2)
    throw std::invalid_argument("DelayTable axes need at least 2 points");
  if (values_.size() != slews_.size() * loads_.size())
    throw std::invalid_argument("DelayTable value count mismatch");
}

namespace {
// Index of the interval [axis[i], axis[i+1]] used for v, clamped so that
// values outside the axis extrapolate with the boundary interval's slope.
std::size_t intervalIndex(const std::vector<double>& axis, double v) {
  if (v <= axis.front()) return 0;
  if (v >= axis[axis.size() - 2]) return axis.size() - 2;
  std::size_t lo = 0, hi = axis.size() - 2;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (axis[mid] <= v)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}
}  // namespace

double DelayTable::lookup(double slew_ps, double load_ff) const {
  const std::size_t si = intervalIndex(slews_, slew_ps);
  const std::size_t li = intervalIndex(loads_, load_ff);
  const double ts =
      (slew_ps - slews_[si]) / (slews_[si + 1] - slews_[si]);
  const double tl =
      (load_ff - loads_[li]) / (loads_[li + 1] - loads_[li]);
  const double v00 = at(si, li), v01 = at(si, li + 1);
  const double v10 = at(si + 1, li), v11 = at(si + 1, li + 1);
  const double a = v00 + (v01 - v00) * tl;
  const double b = v10 + (v11 - v10) * tl;
  return a + (b - a) * ts;
}

namespace {

// Alpha-power-law gate speed model. Returns the delay multiplier of a corner
// (before normalization to c0). SS devices have higher Vth and a process
// slow-down; delay grows as V / (V - Vth)^1.3; resistance-like temperature
// dependence adds a mild slope.
double rawGateDerate(const Corner& c) {
  const double vth = (c.process == Process::SS) ? 0.50 : 0.38;
  const double proc = (c.process == Process::SS) ? 1.15 : 0.85;
  const double overdrive = c.voltage - vth;
  assert(overdrive > 0.0);
  const double alpha = c.voltage / std::pow(overdrive, 1.3);
  const double temp = 1.0 + 0.0006 * (c.temp_c - 25.0);
  return proc * alpha * temp;
}

WireParams wireAt(const Corner& c) {
  // Nominal clock-layer parasitics at 25C / typical BEOL.
  constexpr double kResNom = 0.0015;  // kOhm/um (1.5 Ohm/um)
  constexpr double kCapNom = 0.18;    // fF/um
  WireParams w;
  w.res_kohm_per_um = kResNom * (1.0 + 0.0035 * (c.temp_c - 25.0));
  w.cap_ff_per_um = kCapNom * ((c.beol == Beol::CMAX) ? 1.08 : 0.85);
  return w;
}

// Builds the two NLDM tables (delay, output slew) of an inverter of the
// given drive at a corner with gate derate g (already normalized to c0).
void characterizeCell(Cell& cell, std::size_t k, double g) {
  const std::vector<double> slews = {5, 10, 20, 40, 80, 160, 320};
  const std::vector<double> loads = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double rdrv = 2.8 / cell.drive;  // kOhm
  const double t_int = 6.0 + 0.8 * std::log2(cell.drive + 1.0);  // ps
  const double s_int = 4.0;                                      // ps

  std::vector<double> dvals, svals;
  dvals.reserve(slews.size() * loads.size());
  svals.reserve(slews.size() * loads.size());
  for (const double s : slews) {
    for (const double c : loads) {
      // Base linear RC behavior plus a mild cross nonlinearity so that table
      // interpolation genuinely differs from any closed-form model a
      // predictor might assume.
      const double d = g * (t_int + rdrv * c) + 0.18 * s +
                       g * 0.03 * rdrv * c * std::sqrt(s / 50.0);
      const double os = g * (s_int + 2.2 * rdrv * c) + 0.10 * s;
      dvals.push_back(d);
      svals.push_back(os);
    }
  }
  cell.delay[k] = DelayTable(slews, loads, dvals);
  cell.out_slew[k] = DelayTable(slews, loads, svals);
}

}  // namespace

TechModel TechModel::make28nm(double gate_derate_compression) {
  if (gate_derate_compression < 0.0 || gate_derate_compression >= 1.0)
    throw std::invalid_argument("make28nm: compression must be in [0, 1)");
  TechModel t;
  t.corners_ = {
      {"c0", Process::SS, 0.90, -25.0, Beol::CMAX},
      {"c1", Process::SS, 0.75, -25.0, Beol::CMAX},
      {"c2", Process::FF, 1.10, 125.0, Beol::CMIN},
      {"c3", Process::FF, 1.32, 125.0, Beol::CMIN},
  };
  const std::size_t K = t.corners_.size();

  const double g0 = rawGateDerate(t.corners_[0]);
  t.gate_derate_.resize(K);
  t.wire_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    const double g = rawGateDerate(t.corners_[k]) / g0;
    // Corner-desensitized library option (paper future work (iii)).
    t.gate_derate_[k] = g + gate_derate_compression * (1.0 - g);
    t.wire_[k] = wireAt(t.corners_[k]);
  }

  const double drives[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (const double drive : drives) {
    Cell c;
    c.name = "INVX" + std::to_string(static_cast<int>(drive));
    c.drive = drive;
    c.area_um2 = 0.6 + 0.35 * drive;
    c.max_cap_ff = 22.0 * drive;
    c.pin_cap_ff.resize(K);
    c.delay.resize(K);
    c.out_slew.resize(K);
    c.leakage_nw.resize(K);
    c.internal_energy_fj.resize(K);
    for (std::size_t k = 0; k < K; ++k) {
      const Corner& crn = t.corners_[k];
      // Gate cap barely moves across corners; FF silicon is slightly hotter.
      c.pin_cap_ff[k] = 0.9 * drive * (crn.process == Process::FF ? 1.05 : 1.0);
      characterizeCell(c, k, t.gate_derate_[k]);
      // Leakage is dominated by temperature and process (FF/125C worst).
      const double leak_base = 0.4 * drive;
      const double leak_temp = std::exp(0.018 * (crn.temp_c - 25.0));
      const double leak_proc = (crn.process == Process::FF) ? 3.0 : 1.0;
      c.leakage_nw[k] = leak_base * leak_temp * leak_proc;
      // Internal (short-circuit + parasitic) energy per toggle.
      c.internal_energy_fj[k] =
          0.45 * drive * crn.voltage * crn.voltage;
    }
    t.cells_.push_back(std::move(c));
  }

  t.sink_cap_ff_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    t.sink_cap_ff_[k] =
        1.2 * (t.corners_[k].process == Process::FF ? 1.05 : 1.0);
  }
  return t;
}

}  // namespace skewopt::tech
