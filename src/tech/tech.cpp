#include "tech/tech.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace skewopt::tech {

DelayTable::DelayTable(std::vector<double> slews, std::vector<double> loads,
                       std::vector<double> values)
    : slews_(std::move(slews)), loads_(std::move(loads)),
      values_(std::move(values)) {
  if (slews_.size() < 2 || loads_.size() < 2)
    throw std::invalid_argument("DelayTable axes need at least 2 points");
  if (values_.size() != slews_.size() * loads_.size())
    throw std::invalid_argument("DelayTable value count mismatch");
}

namespace {
// The lookup helpers work on raw axis pointers: the batch loops below then
// keep the axis base addresses and table dimensions in locals/registers
// instead of reloading them through the vector header after every store to
// the (potentially aliasing) output span.

// Index of the interval [axis[i], axis[i+1]] used for v, clamped so that
// values outside the axis extrapolate with the boundary interval's slope.
// `top` is size - 2 (the last usable interval index).
std::size_t intervalIndex(const double* axis, std::size_t top, double v) {
  if (v <= axis[0]) return 0;
  if (v >= axis[top]) return top;
  std::size_t lo = 0, hi = top;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (axis[mid] <= v)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

// True iff `i` is exactly the index intervalIndex(axis, v) would return
// (axes are strictly increasing, so the clamped interval is unique).
inline bool intervalOk(const double* axis, double v, std::size_t i,
                       std::size_t top) {
  return (i == 0 || axis[i] <= v) && (i == top || v < axis[i + 1]);
}

// Hinted interval search: validates the cached index and its two
// neighbours before falling back to the binary search, and refreshes the
// hint with the answer. Returns exactly intervalIndex's result.
inline std::size_t intervalIndexHinted(const double* axis, std::size_t top,
                                       double v, std::uint32_t* hint) {
  std::size_t h = *hint;
  if (h > top) h = top;
  if (intervalOk(axis, v, h, top)) {
    *hint = static_cast<std::uint32_t>(h);
    return h;
  }
  if (h < top && intervalOk(axis, v, h + 1, top)) {
    *hint = static_cast<std::uint32_t>(h + 1);
    return h + 1;
  }
  if (h > 0 && intervalOk(axis, v, h - 1, top)) {
    *hint = static_cast<std::uint32_t>(h - 1);
    return h - 1;
  }
  const std::size_t r = intervalIndex(axis, top, v);
  *hint = static_cast<std::uint32_t>(r);
  return r;
}

// The bilinear core shared by every lookup path — one expression tree, so
// scalar, hinted, batch, and packed lookups are bit-identical.
inline double bilinear(const double* slews, const double* loads,
                       double slew_ps, double load_ff, std::size_t si,
                       std::size_t li, double v00, double v01, double v10,
                       double v11) {
  const double ts = (slew_ps - slews[si]) / (slews[si + 1] - slews[si]);
  const double tl = (load_ff - loads[li]) / (loads[li + 1] - loads[li]);
  const double a = v00 + (v01 - v00) * tl;
  const double b = v10 + (v11 - v10) * tl;
  return a + (b - a) * ts;
}

// Branchless clamped interval index: on a strictly increasing axis the
// result of intervalIndex is exactly the number of points axis[1..top]
// that are <= v (0 below the axis, `top` at/above axis[top], the interval
// index in between). Counting replaces the two data-dependent branches per
// binary-search step with straight-line compares — the batch loop below
// stays misprediction-free on arbitrary (slew, load) sequences.
inline std::size_t intervalIndexCount(const double* axis, std::size_t top,
                                      double v) {
  std::size_t i = 0;
  for (std::size_t j = 1; j <= top; ++j) i += axis[j] <= v ? 1u : 0u;
  return i;
}

// target_clones is disabled under TSan/ASan: the generated ifunc
// resolvers run during relocation, before the sanitizer runtime is
// initialized, and the instrumented function entries crash at load.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define SKEWOPT_VEC_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define SKEWOPT_VEC_CLONES
#endif

// GCC vector extensions. All vector arithmetic is elementwise IEEE — each
// lane evaluates the bilinear expression tree above operation for
// operation, so results stay bit-identical to the scalar path (no FMA
// contraction: none of the clone targets enables -mfma). The unaligned
// loads/stores go through memcpy; vector ABI warnings are moot since
// everything inlines within this TU.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif
typedef double v4df __attribute__((vector_size(32)));
typedef double v2df __attribute__((vector_size(16)));
typedef long long v4di __attribute__((vector_size(32)));

inline v4df load4d(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store4d(double* p, v4df v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline v2df load2d(const double* p) {
  v2df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

// Transposes four (x, x_next) pairs into lane vectors: lo = the four x,
// hi = the four x_next. An axis interval and a table-row pair are both
// adjacent in memory, so every gather below is a 16-byte pair load plus
// this shuffle tree instead of eight scalar loads.
inline void transpose4x2(v2df p0, v2df p1, v2df p2, v2df p3, v4df& lo,
                         v4df& hi) {
  lo = __builtin_shufflevector(__builtin_shufflevector(p0, p1, 0, 2),
                               __builtin_shufflevector(p2, p3, 0, 2), 0, 1, 2,
                               3);
  hi = __builtin_shufflevector(__builtin_shufflevector(p0, p1, 1, 3),
                               __builtin_shufflevector(p2, p3, 1, 3), 0, 1, 2,
                               3);
}

// Four lookups whose interval indices are already in `sc`/`lc`: pair-load
// gathers through the shuffle tree, then vector bilinear. The per-lane
// arithmetic matches `bilinear` above op for op.
__attribute__((always_inline)) inline void lookupQuad(
    const double* sax, const double* lax, const double* vals, std::size_t nl,
    v4df sv, v4df lv, v4di sc, v4di lc, double* out) {
  long long sidx[4], lidx[4];
  __builtin_memcpy(sidx, &sc, sizeof(sidx));
  __builtin_memcpy(lidx, &lc, sizeof(lidx));
  const double* c0 = vals + static_cast<std::size_t>(sidx[0]) * nl + lidx[0];
  const double* c1 = vals + static_cast<std::size_t>(sidx[1]) * nl + lidx[1];
  const double* c2 = vals + static_cast<std::size_t>(sidx[2]) * nl + lidx[2];
  const double* c3 = vals + static_cast<std::size_t>(sidx[3]) * nl + lidx[3];
  v4df s0, s1, l0, l1, v00, v01, v10, v11;
  transpose4x2(load2d(sax + sidx[0]), load2d(sax + sidx[1]),
               load2d(sax + sidx[2]), load2d(sax + sidx[3]), s0, s1);
  transpose4x2(load2d(lax + lidx[0]), load2d(lax + lidx[1]),
               load2d(lax + lidx[2]), load2d(lax + lidx[3]), l0, l1);
  transpose4x2(load2d(c0), load2d(c1), load2d(c2), load2d(c3), v00, v01);
  transpose4x2(load2d(c0 + nl), load2d(c1 + nl), load2d(c2 + nl),
               load2d(c3 + nl), v10, v11);
  const v4df ts = (sv - s0) / (s1 - s0);
  const v4df tl = (lv - l0) / (l1 - l0);
  const v4df a = v00 + (v01 - v00) * tl;
  const v4df b = v10 + (v11 - v10) * tl;
  store4d(out, a + (b - a) * ts);
}

// A run of bilinear lookups, eight per step: SIMD interval counts shared
// across two quads (each axis point is broadcast once and compared against
// both), then two gather-interpolate quads. Marked always_inline so the
// SKEWOPT_VEC_CLONES wrappers below compile it per target with the grid
// dimensions constant-folded.
__attribute__((always_inline)) inline void lookupRunImpl(
    const double* sax, const double* lax, const double* vals, std::size_t stop,
    std::size_t ltop, std::size_t nl, const double* slews, const double* loads,
    double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const v4df sva = load4d(slews + i), svb = load4d(slews + i + 4);
    const v4df lva = load4d(loads + i), lvb = load4d(loads + i + 4);
    // intervalIndexCount across eight lanes: a <=-mask is all-ones (-1),
    // so subtracting it counts the axis points at or below each value.
    v4di sca = {0, 0, 0, 0}, scb = {0, 0, 0, 0};
    v4di lca = {0, 0, 0, 0}, lcb = {0, 0, 0, 0};
#pragma GCC unroll 8
    for (std::size_t j = 1; j <= stop; ++j) {
      const v4df b = {sax[j], sax[j], sax[j], sax[j]};
      sca -= reinterpret_cast<v4di>(b <= sva);
      scb -= reinterpret_cast<v4di>(b <= svb);
    }
#pragma GCC unroll 8
    for (std::size_t j = 1; j <= ltop; ++j) {
      const v4df b = {lax[j], lax[j], lax[j], lax[j]};
      lca -= reinterpret_cast<v4di>(b <= lva);
      lcb -= reinterpret_cast<v4di>(b <= lvb);
    }
    lookupQuad(sax, lax, vals, nl, sva, lva, sca, lca, out + i);
    lookupQuad(sax, lax, vals, nl, svb, lvb, scb, lcb, out + i + 4);
  }
  for (; i < n; ++i) {
    const std::size_t si = intervalIndexCount(sax, stop, slews[i]);
    const std::size_t li = intervalIndexCount(lax, ltop, loads[i]);
    const double* row = vals + si * nl + li;
    out[i] = bilinear(sax, lax, slews[i], loads[i], si, li, row[0], row[1],
                      row[nl], row[nl + 1]);
  }
}

// Instantiation for the standard 7-slew x 9-load characterization grid
// (every make28nm table): the interval-count loops fully unroll and the
// row stride becomes an addressing-mode constant.
SKEWOPT_VEC_CLONES
void lookupRun7x9(const double* sax, const double* lax, const double* vals,
                  const double* slews, const double* loads, double* out,
                  std::size_t n) {
  lookupRunImpl(sax, lax, vals, 5, 7, 9, slews, loads, out, n);
}

SKEWOPT_VEC_CLONES
void lookupRunAny(const double* sax, const double* lax, const double* vals,
                  std::size_t stop, std::size_t ltop, std::size_t nl,
                  const double* slews, const double* loads, double* out,
                  std::size_t n) {
  lookupRunImpl(sax, lax, vals, stop, ltop, nl, slews, loads, out, n);
}
}  // namespace

double DelayTable::lookup(double slew_ps, double load_ff) const {
  const double* sax = slews_.data();
  const double* lax = loads_.data();
  const std::size_t si = intervalIndex(sax, slews_.size() - 2, slew_ps);
  const std::size_t li = intervalIndex(lax, loads_.size() - 2, load_ff);
  return bilinear(sax, lax, slew_ps, load_ff, si, li, at(si, li),
                  at(si, li + 1), at(si + 1, li), at(si + 1, li + 1));
}

double DelayTable::lookup(double slew_ps, double load_ff,
                          LutHint* hint) const {
  const double* sax = slews_.data();
  const double* lax = loads_.data();
  const std::size_t si =
      intervalIndexHinted(sax, slews_.size() - 2, slew_ps, &hint->slew);
  const std::size_t li =
      intervalIndexHinted(lax, loads_.size() - 2, load_ff, &hint->load);
  return bilinear(sax, lax, slew_ps, load_ff, si, li, at(si, li),
                  at(si, li + 1), at(si + 1, li), at(si + 1, li + 1));
}

void DelayTable::lookupBatch(std::span<const double> slews,
                             std::span<const double> loads,
                             std::span<double> out) const {
  if (slews.size() != loads.size() || slews.size() != out.size())
    throw std::invalid_argument("lookupBatch: span size mismatch");
  const double* sax = slews_.data();
  const double* lax = loads_.data();
  const double* vals = values_.data();
  const std::size_t stop = slews_.size() - 2;
  const std::size_t ltop = loads_.size() - 2;
  const std::size_t nl = loads_.size();
  const std::size_t n = slews.size();
  if (stop == 5 && ltop == 7 && nl == 9)
    lookupRun7x9(sax, lax, vals, slews.data(), loads.data(), out.data(), n);
  else
    lookupRunAny(sax, lax, vals, stop, ltop, nl, slews.data(), loads.data(),
                 out.data(), n);
}

CornerLut::CornerLut(const std::vector<DelayTable>& per_corner) {
  if (per_corner.empty()) return;
  slews_ = per_corner.front().slewAxis();
  loads_ = per_corner.front().loadAxis();
  corners_ = per_corner.size();
  for (const DelayTable& t : per_corner)
    if (t.slewAxis() != slews_ || t.loadAxis() != loads_)
      throw std::invalid_argument("CornerLut: corner tables must share axes");
  values_.resize(slews_.size() * loads_.size() * corners_);
  // Verbatim copies of the per-corner values, interleaved at table-cell
  // granularity — re-interpolating here would not be bit-exact at the axis
  // boundaries.
  const std::size_t cells = slews_.size() * loads_.size();
  for (std::size_t c = 0; c < cells; ++c)
    for (std::size_t k = 0; k < corners_; ++k)
      values_[c * corners_ + k] = per_corner[k].values()[c];
}

void CornerLut::lookupEach(std::span<const std::size_t> corner_ids,
                           const double* slew, const double* load, double* out,
                           LutHint* hint) const {
  const double* sax = slews_.data();
  const double* lax = loads_.data();
  const double* vals = values_.data();
  const std::size_t stop = slews_.size() - 2;
  const std::size_t ltop = loads_.size() - 2;
  const std::size_t nl = loads_.size(), kk = corners_;
  std::uint32_t sh = hint->slew, lh = hint->load;
  for (std::size_t i = 0; i < corner_ids.size(); ++i) {
    const std::size_t si = intervalIndexHinted(sax, stop, slew[i], &sh);
    const std::size_t li = intervalIndexHinted(lax, ltop, load[i], &lh);
    const double* cell = vals + (si * nl + li) * kk + corner_ids[i];
    out[i] = bilinear(sax, lax, slew[i], load[i], si, li, cell[0], cell[kk],
                      cell[nl * kk], cell[(nl + 1) * kk]);
  }
  hint->slew = sh;
  hint->load = lh;
}

void CornerLut::lookupAll(double slew, double load, double* out) const {
  const double* sax = slews_.data();
  const double* lax = loads_.data();
  const std::size_t si = intervalIndex(sax, slews_.size() - 2, slew);
  const std::size_t li = intervalIndex(lax, loads_.size() - 2, load);
  const std::size_t nl = loads_.size(), kk = corners_;
  const double* cell = values_.data() + (si * nl + li) * kk;
  for (std::size_t k = 0; k < kk; ++k)
    out[k] = bilinear(sax, lax, slew, load, si, li, cell[k], cell[kk + k],
                      cell[nl * kk + k], cell[(nl + 1) * kk + k]);
}

namespace {

// Alpha-power-law gate speed model. Returns the delay multiplier of a corner
// (before normalization to c0). SS devices have higher Vth and a process
// slow-down; delay grows as V / (V - Vth)^1.3; resistance-like temperature
// dependence adds a mild slope.
double rawGateDerate(const Corner& c) {
  const double vth = (c.process == Process::SS) ? 0.50 : 0.38;
  const double proc = (c.process == Process::SS) ? 1.15 : 0.85;
  const double overdrive = c.voltage - vth;
  assert(overdrive > 0.0);
  const double alpha = c.voltage / std::pow(overdrive, 1.3);
  const double temp = 1.0 + 0.0006 * (c.temp_c - 25.0);
  return proc * alpha * temp;
}

WireParams wireAt(const Corner& c) {
  // Nominal clock-layer parasitics at 25C / typical BEOL.
  constexpr double kResNom = 0.0015;  // kOhm/um (1.5 Ohm/um)
  constexpr double kCapNom = 0.18;    // fF/um
  WireParams w;
  w.res_kohm_per_um = kResNom * (1.0 + 0.0035 * (c.temp_c - 25.0));
  w.cap_ff_per_um = kCapNom * ((c.beol == Beol::CMAX) ? 1.08 : 0.85);
  return w;
}

// Builds the two NLDM tables (delay, output slew) of an inverter of the
// given drive at a corner with gate derate g (already normalized to c0).
void characterizeCell(Cell& cell, std::size_t k, double g) {
  const std::vector<double> slews = {5, 10, 20, 40, 80, 160, 320};
  const std::vector<double> loads = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double rdrv = 2.8 / cell.drive;  // kOhm
  const double t_int = 6.0 + 0.8 * std::log2(cell.drive + 1.0);  // ps
  const double s_int = 4.0;                                      // ps

  std::vector<double> dvals, svals;
  dvals.reserve(slews.size() * loads.size());
  svals.reserve(slews.size() * loads.size());
  for (const double s : slews) {
    for (const double c : loads) {
      // Base linear RC behavior plus a mild cross nonlinearity so that table
      // interpolation genuinely differs from any closed-form model a
      // predictor might assume.
      const double d = g * (t_int + rdrv * c) + 0.18 * s +
                       g * 0.03 * rdrv * c * std::sqrt(s / 50.0);
      const double os = g * (s_int + 2.2 * rdrv * c) + 0.10 * s;
      dvals.push_back(d);
      svals.push_back(os);
    }
  }
  cell.delay[k] = DelayTable(slews, loads, dvals);
  cell.out_slew[k] = DelayTable(slews, loads, svals);
}

}  // namespace

TechModel TechModel::make28nm(double gate_derate_compression) {
  if (gate_derate_compression < 0.0 || gate_derate_compression >= 1.0)
    throw std::invalid_argument("make28nm: compression must be in [0, 1)");
  TechModel t;
  t.corners_ = {
      {"c0", Process::SS, 0.90, -25.0, Beol::CMAX},
      {"c1", Process::SS, 0.75, -25.0, Beol::CMAX},
      {"c2", Process::FF, 1.10, 125.0, Beol::CMIN},
      {"c3", Process::FF, 1.32, 125.0, Beol::CMIN},
  };
  const std::size_t K = t.corners_.size();

  const double g0 = rawGateDerate(t.corners_[0]);
  t.gate_derate_.resize(K);
  t.wire_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    const double g = rawGateDerate(t.corners_[k]) / g0;
    // Corner-desensitized library option (paper future work (iii)).
    t.gate_derate_[k] = g + gate_derate_compression * (1.0 - g);
    t.wire_[k] = wireAt(t.corners_[k]);
  }

  const double drives[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (const double drive : drives) {
    Cell c;
    c.name = "INVX" + std::to_string(static_cast<int>(drive));
    c.drive = drive;
    c.area_um2 = 0.6 + 0.35 * drive;
    c.max_cap_ff = 22.0 * drive;
    c.pin_cap_ff.resize(K);
    c.delay.resize(K);
    c.out_slew.resize(K);
    c.leakage_nw.resize(K);
    c.internal_energy_fj.resize(K);
    for (std::size_t k = 0; k < K; ++k) {
      const Corner& crn = t.corners_[k];
      // Gate cap barely moves across corners; FF silicon is slightly hotter.
      c.pin_cap_ff[k] = 0.9 * drive * (crn.process == Process::FF ? 1.05 : 1.0);
      characterizeCell(c, k, t.gate_derate_[k]);
      // Leakage is dominated by temperature and process (FF/125C worst).
      const double leak_base = 0.4 * drive;
      const double leak_temp = std::exp(0.018 * (crn.temp_c - 25.0));
      const double leak_proc = (crn.process == Process::FF) ? 3.0 : 1.0;
      c.leakage_nw[k] = leak_base * leak_temp * leak_proc;
      // Internal (short-circuit + parasitic) energy per toggle.
      c.internal_energy_fj[k] =
          0.45 * drive * crn.voltage * crn.voltage;
    }
    c.delay_packed = CornerLut(c.delay);
    c.out_slew_packed = CornerLut(c.out_slew);
    t.cells_.push_back(std::move(c));
  }

  t.sink_cap_ff_.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    t.sink_cap_ff_[k] =
        1.2 * (t.corners_[k].process == Process::FF ? 1.05 : 1.0);
  }
  return t;
}

}  // namespace skewopt::tech
