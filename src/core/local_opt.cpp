#include "core/local_opt.h"

#include "sta/incremental.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

namespace skewopt::core {

using network::Design;

namespace {

/// Golden trial: returns the realized objective report of applying `m` to a
/// copy of `d`.
struct Trial {
  Design design;
  VariationReport report;
};

Trial goldenTrial(const Design& d, const sta::Timer& timer,
                  const Objective& objective, const Move& m) {
  Trial t{d, {}};
  applyMove(t.design, m);
  t.report = objective.evaluate(t.design, timer);
  return t;
}

/// Incremental golden trial: instead of a full multi-corner re-analysis,
/// retime only the move's dirty subtrees from the round's base timing
/// (bit-identical results; see IncrementalTimer tests).
Trial goldenTrialIncremental(const Design& d,
                             const sta::IncrementalTimer& base,
                             const Objective& objective, const Move& m) {
  Trial t{d, {}};
  sta::IncrementalTimer inc = base;
  const std::vector<int> dirty = applyMoveTracked(t.design, m);
  inc.update(t.design, dirty);
  t.report = objective.evaluateFromLatencies(t.design, inc.latencies());
  return t;
}

bool skewOk(const VariationReport& before, const VariationReport& after,
            double tol) {
  for (std::size_t ki = 0; ki < before.local_skew_ps.size(); ++ki)
    if (after.local_skew_ps[ki] > before.local_skew_ps[ki] * tol + 1.0)
      return false;
  return true;
}

}  // namespace

LocalResult LocalOptimizer::run(Design& d, const Objective& objective,
                                const DeltaLatencyModel* model,
                                std::size_t analytic_fallback) const {
  LocalResult res;
  VariationReport current = objective.evaluate(d, timer_);
  const VariationReport initial = current;
  res.sum_before_ps = current.sum_variation_ps;
  res.sum_after_ps = current.sum_variation_ps;

  for (std::size_t round = 0; round < opts_.max_iterations; ++round) {
    MovePredictor predictor(d, timer_, objective, model, analytic_fallback);
    std::vector<Move> moves = enumerateAllMoves(d, opts_.enumerate);
    res.candidate_moves = moves.size();

    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(moves.size());
    for (std::size_t i = 0; i < moves.size(); ++i)
      scored.push_back({predictor.predictedVariationDelta(moves[i]), i});
    std::sort(scored.begin(), scored.end());

    const sta::IncrementalTimer base_timing(*tech_, d);
    bool committed = false;
    for (std::size_t chunk = 0;
         chunk < opts_.max_chunks_per_round && !committed; ++chunk) {
      const std::size_t lo = chunk * opts_.r;
      if (lo >= scored.size()) break;
      if (scored[lo].first > -opts_.min_predicted_gain_ps) break;
      const std::size_t hi = std::min(scored.size(), lo + opts_.r);

      // Golden-evaluate the chunk (the paper's "R individual threads").
      std::vector<std::size_t> todo;
      for (std::size_t i = lo; i < hi; ++i) {
        if (scored[i].first > -opts_.min_predicted_gain_ps) break;
        todo.push_back(i);
      }
      std::vector<Trial> trials(todo.size(), Trial{d, {}});
      if (opts_.parallel_trials && todo.size() > 1) {
        std::vector<std::thread> workers;
        workers.reserve(todo.size());
        for (std::size_t t = 0; t < todo.size(); ++t) {
          workers.emplace_back([&, t] {
            trials[t] = goldenTrialIncremental(
                d, base_timing, objective, moves[scored[todo[t]].second]);
          });
        }
        for (std::thread& w : workers) w.join();
      } else {
        for (std::size_t t = 0; t < todo.size(); ++t)
          trials[t] = goldenTrialIncremental(d, base_timing, objective,
                                             moves[scored[todo[t]].second]);
      }
      res.golden_evaluations += todo.size();

      // Pick the best realized improvement (lowest index on ties, so the
      // parallel and serial paths commit identically).
      double best_sum = current.sum_variation_ps;
      std::size_t best_idx = 0;
      Trial best_trial{d, {}};
      bool have_best = false;
      for (std::size_t t = 0; t < todo.size(); ++t) {
        Trial& trial = trials[t];
        if (trial.report.sum_variation_ps < best_sum &&
            skewOk(initial, trial.report, opts_.local_skew_tolerance)) {
          best_sum = trial.report.sum_variation_ps;
          best_trial = std::move(trial);
          best_idx = todo[t];
          have_best = true;
        }
      }
      if (have_best) {
        LocalIteration it;
        it.round = round;
        it.type = moves[scored[best_idx].second].type;
        it.predicted_delta_ps = scored[best_idx].first;
        it.realized_delta_ps =
            best_trial.report.sum_variation_ps - current.sum_variation_ps;
        it.sum_after_ps = best_trial.report.sum_variation_ps;
        res.history.push_back(it);
        d = std::move(best_trial.design);
        current = std::move(best_trial.report);
        committed = true;
      }
    }
    if (!committed) break;  // predictor shows no further reduction
  }
  res.sum_after_ps = current.sum_variation_ps;
  res.improved = res.sum_after_ps < res.sum_before_ps - 1e-9;
  return res;
}

LocalResult LocalOptimizer::runRandom(Design& d, const Objective& objective,
                                      std::uint64_t seed) const {
  LocalResult res;
  VariationReport current = objective.evaluate(d, timer_);
  const VariationReport initial = current;
  res.sum_before_ps = current.sum_variation_ps;
  geom::Rng rng(seed);

  for (std::size_t round = 0; round < opts_.max_iterations; ++round) {
    std::vector<Move> moves = enumerateAllMoves(d, opts_.enumerate);
    if (moves.empty()) break;
    res.candidate_moves = moves.size();

    double best_sum = current.sum_variation_ps;
    Trial best_trial{d, {}};
    MoveType best_type = MoveType::kSizeDisplace;
    bool have_best = false;
    for (std::size_t i = 0; i < opts_.r; ++i) {
      const Move& m = moves[rng.index(moves.size())];
      Trial t = goldenTrial(d, timer_, objective, m);
      ++res.golden_evaluations;
      if (t.report.sum_variation_ps < best_sum &&
          skewOk(initial, t.report, opts_.local_skew_tolerance)) {
        best_sum = t.report.sum_variation_ps;
        best_trial = std::move(t);
        best_type = m.type;
        have_best = true;
      }
    }
    if (!have_best) continue;  // a random round may simply find nothing
    LocalIteration it;
    it.round = round;
    it.type = best_type;
    it.realized_delta_ps =
        best_trial.report.sum_variation_ps - current.sum_variation_ps;
    it.sum_after_ps = best_trial.report.sum_variation_ps;
    res.history.push_back(it);
    d = std::move(best_trial.design);
    current = std::move(best_trial.report);
  }
  res.sum_after_ps = current.sum_variation_ps;
  res.improved = res.sum_after_ps < res.sum_before_ps - 1e-9;
  return res;
}

}  // namespace skewopt::core
