#include "core/local_opt.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "check/check.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sta/incremental.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace skewopt::core {

using network::Design;

namespace {

// All skewopt_local_* metrics are driven only by deterministic algorithm
// state (never by thread identity or scheduling), so a serial and a
// parallel run of the same optimization produce identical snapshots under
// a fake clock — asserted by obs_test.
struct LocalObs {
  obs::Counter& rounds = obs::MetricsRegistry::global().counter(
      "skewopt_local_rounds_total", "Local-optimizer rounds started");
  obs::Counter& trials = obs::MetricsRegistry::global().counter(
      "skewopt_local_trials_total", "Golden-evaluated candidate moves");
  obs::Counter& accepted = obs::MetricsRegistry::global().counter(
      "skewopt_local_accepted_moves_total", "Committed moves (all types)");
  obs::Counter& accepted_i = obs::MetricsRegistry::global().counter(
      "skewopt_local_accepted_moves_type_i_total",
      "Committed type-I (size/displace) moves");
  obs::Counter& accepted_ii = obs::MetricsRegistry::global().counter(
      "skewopt_local_accepted_moves_type_ii_total",
      "Committed type-II (child displace/size) moves");
  obs::Counter& accepted_iii = obs::MetricsRegistry::global().counter(
      "skewopt_local_accepted_moves_type_iii_total",
      "Committed type-III (reassign) moves");
  obs::Counter& predictor_hits = obs::MetricsRegistry::global().counter(
      "skewopt_local_predictor_hits_total",
      "Predictor-proposed trials that realized an improvement");
  obs::Counter& predictor_misses = obs::MetricsRegistry::global().counter(
      "skewopt_local_predictor_misses_total",
      "Predictor-proposed trials that did not realize an improvement");
  obs::Histogram& golden_ms = obs::MetricsRegistry::global().histogram(
      "skewopt_local_golden_trial_ms", obs::defaultMsBuckets(),
      "Per-trial golden evaluation wall time");

  obs::Counter& acceptedByType(MoveType t) {
    switch (t) {
      case MoveType::kSizeDisplace: return accepted_i;
      case MoveType::kChildDisplaceSize: return accepted_ii;
      case MoveType::kReassign: return accepted_iii;
    }
    return accepted_i;
  }
  static LocalObs& get() {
    static LocalObs o;
    return o;
  }
};

/// Golden trial for the random baseline: returns the realized objective
/// report of applying `m` to a copy of `d`.
struct Trial {
  Design design;
  VariationReport report;
};

Trial goldenTrial(const Design& d, const sta::Timer& timer,
                  const Objective& objective, const Move& m) {
  Trial t{d, {}};
  applyMove(t.design, m);
  t.report = objective.evaluate(t.design, timer);
  return t;
}

const char* moveTypeLabel(MoveType t) {
  switch (t) {
    case MoveType::kSizeDisplace: return "size_displace";
    case MoveType::kChildDisplaceSize: return "child_displace_size";
    case MoveType::kReassign: return "reassign";
  }
  return "?";
}

bool skewOk(const std::vector<double>& before_local_skew,
            const std::vector<double>& after_local_skew, double tol) {
  for (std::size_t ki = 0; ki < before_local_skew.size(); ++ki)
    if (after_local_skew[ki] > before_local_skew[ki] * tol + 1.0)
      return false;
  return true;
}

/// One trial worker's persistent state: a design replica kept in lockstep
/// with the optimizer's design, the replica's own incremental multi-corner
/// timing, and the scoped-retime scratch reused by every trial the worker
/// runs. Created once per run and updated in place on each commit — the
/// only full design copies of the whole optimization.
struct WorkerContext {
  Design replica;
  sta::IncrementalTimer timing;
  sta::ScopedRetime overlay;
  UndoRecord undo;  // scratch reused by every trial this worker runs

  WorkerContext(const Design& d, const sta::IncrementalTimer& base)
      : replica(d), timing(base), overlay(timing) {}
};

/// Copy-free golden trial: apply the move to the worker's replica, retime
/// only its dirty subtrees in place, read the objective, roll everything
/// back. Bit-identical to evaluating a full copy (asserted by tests).
void goldenTrialScoped(WorkerContext& ctx, const Objective& objective,
                       const Move& m, TrialEval* out) {
  applyMoveUndoable(ctx.replica, m, &ctx.undo);
  ctx.overlay.retime(ctx.replica, ctx.undo.dirty);
  objective.evaluateTrial(ctx.replica, ctx.timing.timings(), out);
  ctx.overlay.rollback();
  undoMove(ctx.replica, ctx.undo);
}

}  // namespace

LocalResult LocalOptimizer::run(Design& d, const Objective& objective,
                                const DeltaLatencyModel* model,
                                std::size_t analytic_fallback) const {
  obs::Span run_span("local.run");
  LocalObs& lobs = LocalObs::get();
  LocalResult res;
  // The round's base timing: one full multi-corner STA here, then only
  // incremental subtree updates after each committed move.
  sta::IncrementalTimer base_timing(*tech_, d);
  const VariationReport initial =
      objective.evaluateFromTimings(d, base_timing.timings());
  double current_sum = initial.sum_variation_ps;
  res.sum_before_ps = current_sum;
  res.sum_after_ps = current_sum;
  if (opts_.max_iterations == 0) return res;

  // Flight record: round/commit trajectory, written only from this
  // (orchestrating) thread — the parallel trial slices never touch it.
  obs::FlightRecorder* rec = obs::currentFlightRecorder();
  if (rec != nullptr) {
    rec->beginObject("local");
    rec->field("sum_before_ps", res.sum_before_ps);
    rec->beginArray("rounds");
  }

  MovePredictor predictor(d, timer_, objective, model, analytic_fallback,
                          &base_timing.timings());

  support::ThreadPool& pool = support::ThreadPool::shared();
  const std::size_t max_workers =
      std::max<std::size_t>(1, opts_.threads ? opts_.threads : pool.size());
  std::vector<std::unique_ptr<WorkerContext>> workers;
  auto ensureWorkers = [&](std::size_t n) {
    while (workers.size() < n)
      workers.push_back(std::make_unique<WorkerContext>(d, base_timing));
  };
  std::vector<TrialEval> reports;  // slots reused across chunks and rounds
  std::vector<double> scores;      // scoreBatch output, reused across rounds

  for (std::size_t round = 0; round < opts_.max_iterations; ++round) {
    obs::Span round_span("local.round");
    round_span.arg("round", static_cast<std::int64_t>(round));
    lobs.rounds.add();
    if (round > 0) predictor.refresh(base_timing.timings());
    std::vector<Move> moves = enumerateAllMoves(d, opts_.enumerate);
    res.candidate_moves = moves.size();
    std::size_t round_trials = 0;
    if (rec != nullptr) {
      rec->beginObject();
      rec->field("round", static_cast<std::int64_t>(round));
      rec->field("candidates", static_cast<std::int64_t>(moves.size()));
    }

    std::vector<std::pair<double, std::size_t>> scored(moves.size());
    if (opts_.batch_scoring) {
      scores.resize(moves.size());
      predictor.scoreBatch(moves, scores,
                           opts_.parallel_trials ? &pool : nullptr);
      for (std::size_t i = 0; i < moves.size(); ++i)
        scored[i] = {scores[i], i};
    } else if (opts_.parallel_trials && moves.size() > 1) {
      pool.parallelFor(moves.size(), [&](std::size_t i) {
        scored[i] = {predictor.predictedVariationDelta(moves[i]), i};
      });
    } else {
      for (std::size_t i = 0; i < moves.size(); ++i)
        scored[i] = {predictor.predictedVariationDelta(moves[i]), i};
    }
    std::sort(scored.begin(), scored.end());

    bool committed = false;
    for (std::size_t chunk = 0;
         chunk < opts_.max_chunks_per_round && !committed; ++chunk) {
      const std::size_t lo = chunk * opts_.r;
      if (lo >= scored.size()) break;
      if (scored[lo].first > -opts_.min_predicted_gain_ps) break;
      const std::size_t hi = std::min(scored.size(), lo + opts_.r);

      // Golden-evaluate the chunk (the paper's "R individual threads").
      std::vector<std::size_t> todo;
      for (std::size_t i = lo; i < hi; ++i) {
        if (scored[i].first > -opts_.min_predicted_gain_ps) break;
        todo.push_back(i);
      }
      if (reports.size() < todo.size()) reports.resize(todo.size());
      const std::size_t slices =
          (opts_.parallel_trials && todo.size() > 1)
              ? std::min(max_workers, todo.size())
              : 1;
      ensureWorkers(slices);
      pool.runSlices(slices, [&](std::size_t s) {
        for (std::size_t t = s; t < todo.size(); t += slices) {
          obs::Span trial_span("local.golden_trial");
          support::Stopwatch sw;
          goldenTrialScoped(*workers[s], objective,
                            moves[scored[todo[t]].second], &reports[t]);
          lobs.golden_ms.observe(sw.ms());
        }
      });
      res.golden_evaluations += todo.size();
      round_trials += todo.size();
      lobs.trials.add(todo.size());
      // Every trial in `todo` came with a predicted gain; a "hit" is one
      // that realized any improvement over the current sum. Driven purely
      // by the deterministic reports, so serial == parallel.
      for (std::size_t t = 0; t < todo.size(); ++t) {
        if (reports[t].sum_variation_ps < current_sum)
          lobs.predictor_hits.add();
        else
          lobs.predictor_misses.add();
      }

      // Pick the best realized improvement (lowest index on ties, so the
      // parallel and serial paths commit identically).
      double best_sum = current_sum;
      std::size_t best_t = todo.size();
      for (std::size_t t = 0; t < todo.size(); ++t) {
        if (reports[t].sum_variation_ps < best_sum &&
            skewOk(initial.local_skew_ps, reports[t].local_skew_ps,
                   opts_.local_skew_tolerance)) {
          best_sum = reports[t].sum_variation_ps;
          best_t = t;
        }
      }
      if (best_t < todo.size()) {
        const std::size_t best_idx = todo[best_t];
        const Move& mv = moves[scored[best_idx].second];
        LocalIteration it;
        it.round = round;
        it.type = mv.type;
        it.predicted_delta_ps = scored[best_idx].first;
        it.realized_delta_ps = reports[best_t].sum_variation_ps - current_sum;
        it.sum_after_ps = reports[best_t].sum_variation_ps;
        res.history.push_back(it);
        lobs.accepted.add();
        lobs.acceptedByType(mv.type).add();
        if (rec != nullptr) {
          rec->beginObject("commit");
          rec->field("type", moveTypeLabel(mv.type));
          rec->field("predicted_delta_ps", it.predicted_delta_ps);
          rec->field("realized_delta_ps", it.realized_delta_ps);
          rec->field("sum_after_ps", it.sum_after_ps);
          rec->beginArray("local_skew_ps");
          for (const double v : reports[best_t].local_skew_ps) rec->value(v);
          rec->endArray();
          rec->endObject();
        }
        // Commit: re-apply the move to the design and every replica and
        // retime just the dirty subtrees — no full STA, no design copies.
        const std::vector<int> dirty = applyMoveTracked(d, mv);
        base_timing.update(d, dirty);
        for (const std::unique_ptr<WorkerContext>& w : workers) {
          const std::vector<int> wdirty = applyMoveTracked(w->replica, mv);
          w->timing.update(w->replica, wdirty);
        }
        current_sum = reports[best_t].sum_variation_ps;
        committed = true;
      }
    }
    if (rec != nullptr) {
      rec->field("trials", static_cast<std::int64_t>(round_trials));
      rec->field("committed", committed);
      rec->endObject();
    }
    if (!committed) break;  // predictor shows no further reduction
  }
  res.sum_after_ps = current_sum;
  res.improved = res.sum_after_ps < res.sum_before_ps - 1e-9;
  if (rec != nullptr) {
    rec->endArray();
    rec->field("sum_after_ps", res.sum_after_ps);
    rec->field("accepted_moves",
               static_cast<std::int64_t>(res.history.size()));
    rec->field("golden_evaluations",
               static_cast<std::int64_t>(res.golden_evaluations));
    rec->field("improved", res.improved);
    rec->endObject();
  }
  check::gateDesign(d, timer_, check::effectiveLevel(opts_.check_level),
                    "local:output");
  return res;
}

LocalResult LocalOptimizer::runRandom(Design& d, const Objective& objective,
                                      std::uint64_t seed) const {
  LocalResult res;
  VariationReport current = objective.evaluate(d, timer_);
  const VariationReport initial = current;
  res.sum_before_ps = current.sum_variation_ps;
  geom::Rng rng(seed);

  LocalObs& lobs = LocalObs::get();
  for (std::size_t round = 0; round < opts_.max_iterations; ++round) {
    obs::Span round_span("local.random_round");
    round_span.arg("round", static_cast<std::int64_t>(round));
    lobs.rounds.add();
    std::vector<Move> moves = enumerateAllMoves(d, opts_.enumerate);
    if (moves.empty()) break;
    res.candidate_moves = moves.size();

    double best_sum = current.sum_variation_ps;
    std::optional<Trial> best_trial;  // no design copies until a winner
    MoveType best_type = MoveType::kSizeDisplace;
    for (std::size_t i = 0; i < opts_.r; ++i) {
      const Move& m = moves[rng.index(moves.size())];
      Trial t = goldenTrial(d, timer_, objective, m);
      ++res.golden_evaluations;
      lobs.trials.add();
      if (t.report.sum_variation_ps < best_sum &&
          skewOk(initial.local_skew_ps, t.report.local_skew_ps,
                 opts_.local_skew_tolerance)) {
        best_sum = t.report.sum_variation_ps;
        best_trial.emplace(std::move(t));
        best_type = m.type;
      }
    }
    if (!best_trial) continue;  // a random round may simply find nothing
    LocalIteration it;
    it.round = round;
    it.type = best_type;
    it.realized_delta_ps =
        best_trial->report.sum_variation_ps - current.sum_variation_ps;
    it.sum_after_ps = best_trial->report.sum_variation_ps;
    res.history.push_back(it);
    lobs.accepted.add();
    lobs.acceptedByType(best_type).add();
    d = std::move(best_trial->design);
    current = std::move(best_trial->report);
  }
  res.sum_after_ps = current.sum_variation_ps;
  res.improved = res.sum_after_ps < res.sum_before_ps - 1e-9;
  check::gateDesign(d, timer_, check::effectiveLevel(opts_.check_level),
                    "local:output");
  return res;
}

}  // namespace skewopt::core
