#include "core/objective.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skewopt::core {

using network::Design;

Objective::Objective(const Design& d, const sta::Timer& timer)
    : Objective(d, timer.analyzeDesign(d)) {}

Objective::Objective(const Design& d,
                     const std::vector<sta::CornerTiming>& timing) {
  if (d.corners.empty())
    throw std::invalid_argument("Objective: design has no active corners");
  if (timing.size() != d.corners.size())
    throw std::invalid_argument("Objective: timing corner count");
  // alpha_k = average skew-magnitude ratio between c0 and c_k over pairs,
  // computed robustly as sum|skew^c0| / sum|skew^ck|.
  alphas_.assign(d.corners.size(), 1.0);
  std::vector<double> sum_abs(d.corners.size(), 0.0);
  for (const network::SinkPair& p : d.pairs) {
    for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
      const double s =
          timing[ki].arrival[static_cast<std::size_t>(p.launch)] -
          timing[ki].arrival[static_cast<std::size_t>(p.capture)];
      sum_abs[ki] += std::abs(s);
    }
  }
  for (std::size_t ki = 1; ki < d.corners.size(); ++ki)
    alphas_[ki] = (sum_abs[ki] > 1e-9) ? sum_abs[0] / sum_abs[ki] : 1.0;
}

double Objective::pairV(const std::vector<double>& skew) const {
  double v = 0.0;
  for (std::size_t a = 0; a < skew.size(); ++a)
    for (std::size_t b = a + 1; b < skew.size(); ++b)
      v = std::max(v, std::abs(alphas_[a] * skew[a] - alphas_[b] * skew[b]));
  return v;
}

namespace {

/// Shared body of the evaluate* variants; `arrival(ki, node)` returns the
/// latency of `node` at active-corner index `ki`.
template <typename ArrivalFn>
VariationReport evaluateWith(const Objective& objective, const Design& d,
                             const ArrivalFn& arrival) {
  const std::size_t nk = d.corners.size();
  VariationReport r;
  r.local_skew_ps.assign(nk, 0.0);
  r.skew_ps.assign(nk, std::vector<double>(d.pairs.size(), 0.0));
  r.v_pair_ps.assign(d.pairs.size(), 0.0);
  std::vector<double> skew(nk);
  for (std::size_t pi = 0; pi < d.pairs.size(); ++pi) {
    const network::SinkPair& p = d.pairs[pi];
    for (std::size_t ki = 0; ki < nk; ++ki) {
      skew[ki] = arrival(ki, static_cast<std::size_t>(p.launch)) -
                 arrival(ki, static_cast<std::size_t>(p.capture));
      r.skew_ps[ki][pi] = skew[ki];
      r.local_skew_ps[ki] = std::max(r.local_skew_ps[ki], std::abs(skew[ki]));
    }
    r.v_pair_ps[pi] = objective.pairV(skew);
    r.sum_variation_ps += r.v_pair_ps[pi];
  }
  return r;
}

}  // namespace

VariationReport Objective::evaluateFromLatencies(
    const Design& d, const std::vector<std::vector<double>>& lat) const {
  return evaluateWith(*this, d, [&lat](std::size_t ki, std::size_t node) {
    return lat[ki][node];
  });
}

VariationReport Objective::evaluateFromTimings(
    const Design& d, const std::vector<sta::CornerTiming>& timing) const {
  return evaluateWith(*this, d, [&timing](std::size_t ki, std::size_t node) {
    return timing[ki].arrival[node];
  });
}

void Objective::evaluateTrial(const Design& d,
                              const std::vector<sta::CornerTiming>& timing,
                              TrialEval* out) const {
  const std::size_t nk = d.corners.size();
  out->sum_variation_ps = 0.0;
  out->local_skew_ps.assign(nk, 0.0);
  out->skew_scratch.resize(nk);
  for (const network::SinkPair& p : d.pairs) {
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const double s =
          timing[ki].arrival[static_cast<std::size_t>(p.launch)] -
          timing[ki].arrival[static_cast<std::size_t>(p.capture)];
      out->skew_scratch[ki] = s;
      out->local_skew_ps[ki] = std::max(out->local_skew_ps[ki], std::abs(s));
    }
    out->sum_variation_ps += pairV(out->skew_scratch);
  }
}

VariationReport Objective::evaluate(const Design& d,
                                    const sta::Timer& timer) const {
  const std::vector<sta::CornerTiming> timing = timer.analyzeDesign(d);
  std::vector<std::vector<double>> lat(timing.size());
  for (std::size_t ki = 0; ki < timing.size(); ++ki)
    lat[ki] = timing[ki].arrival;
  return evaluateFromLatencies(d, lat);
}

}  // namespace skewopt::core
