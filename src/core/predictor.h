// Delta-latency prediction for local moves (paper Sec. 4.2).
//
// For every candidate move the paper first estimates the new routing with
// two topologies (a FLUTE tree and a single-trunk Steiner tree) and the new
// wire delays with two metrics (Elmore and D2M), updates the driver and its
// resized child through Liberty interpolation, propagates slew with PERI,
// and refreshes gate delays one and two stages downstream. Those four
// analytical delta-latency estimates — plus the fanout count and the
// bounding-box area and aspect ratio of the driven pins — feed a per-corner
// machine-learning model (ANN / SVM-RBF / HSM) that predicts the *actual*
// post-ECO delta-latency the golden timer would report.
//
// MoveAnalyzer produces the analytical estimates and features;
// DeltaLatencyModel owns the trained per-corner regressors;
// MovePredictor combines them into predicted skew-variation changes.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/moves.h"
#include "core/objective.h"
#include "ml/ml.h"
#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::support {
class ThreadPool;
}

namespace skewopt::core {

/// Index layout of the four analytical estimators.
///   0: FLUTE x Elmore   1: FLUTE x D2M
///   2: single-trunk x Elmore   3: single-trunk x D2M
inline constexpr std::size_t kNumAnalytic = 4;
const char* analyticName(std::size_t idx);

/// Feature vector layout fed to the ML model (paper Sec. 4.2): the four
/// analytical estimates, fanout-cell count, bounding-box area, aspect.
inline constexpr std::size_t kNumFeatures = kNumAnalytic + 3;

/// One group of sinks shifted together by a move, with its per-corner,
/// per-estimator analytical delta-latency.
struct ImpactGroup {
  int root = -1;       ///< sinks under this node move together...
  int exclude = -1;    ///< ...except sinks under this node (-1: none)
  bool primary = false;  ///< the group the ML model corrects
  /// delta[cornerIdx][estimator], ps.
  std::vector<std::array<double, kNumAnalytic>> delta;
};

/// Analytical move analysis against a fixed baseline timing.
class MoveAnalyzer {
 public:
  /// When `baseline` is non-null its timing states are adopted instead of
  /// running a fresh full analysis — callers that already maintain the
  /// design's multi-corner timing (the local optimizer's per-round
  /// IncrementalTimer) pass it here so each round costs one STA, not two.
  MoveAnalyzer(const network::Design& d, const sta::Timer& timer,
               const std::vector<sta::CornerTiming>* baseline = nullptr);

  /// Re-times the baseline after the design changed.
  void refresh();

  /// Adopts an externally computed baseline (must match the design's
  /// active corners) instead of re-analyzing.
  void refresh(const std::vector<sta::CornerTiming>& baseline);

  /// Affected sink groups and their analytical delta estimates.
  std::vector<ImpactGroup> analyze(const Move& m) const;

  /// The kNumFeatures model inputs of a move at active-corner index ki
  /// (requires the groups from analyze(), to reuse the primary estimates).
  std::array<double, kNumFeatures> features(const Move& m,
                                            const ImpactGroup& primary,
                                            std::size_t ki) const;

  const std::vector<sta::CornerTiming>& baseline() const { return timing_; }
  const network::Design& design() const { return *design_; }

 private:
  void refreshSinkCounts();

  // Corner-batched net estimation: the candidate route is a function of
  // pin positions only, so it is built once, and the RC/NLDM evaluation
  // runs over all active corners as SoA lanes (RcTreeBatch +
  // elmoreMomentsBatch + the cells' corner-major packed tables) instead of
  // once per corner. Each lane is bit-identical to the former per-corner
  // scalar estimate.
  struct BatchDriverSpec;
  struct BatchChildSpec;
  struct NetEstimatesBatch;
  NetEstimatesBatch estimateNetBatch(
      const BatchDriverSpec& drv, const std::vector<BatchChildSpec>& children,
      int route_model) const;
  std::array<double, kNumAnalytic> downstreamGateDelta(
      int node, const std::array<double, kNumAnalytic>& in_slew_new,
      double in_slew_old, std::size_t ki, int depth) const;

  const network::Design* design_;
  const sta::Timer* timer_;
  std::vector<sta::CornerTiming> timing_;
  std::vector<std::size_t> subtree_sink_count_;
};

// ---------------------------------------------------------------------------

struct TrainOptions {
  std::size_t cases = 40;           ///< paper: 150 artificial testcases
  std::size_t moves_per_case = 40;  ///< paper: ~450 moves per testcase
  double last_stage_fraction = 0.35;
  std::uint64_t seed = 5;
  enum class Family { kHsm, kAnn, kSvr } family = Family::kHsm;
  ml::MlpOptions mlp;
  ml::SvrOptions svr;
};

/// Per-corner delta-latency regressors trained on artificial testcases.
class DeltaLatencyModel {
 public:
  /// Trains one model per corner id in `corners`. Returns the number of
  /// training samples collected per corner.
  std::size_t train(const tech::TechModel& tech,
                    const std::vector<std::size_t>& corners,
                    const TrainOptions& opts);

  bool trainedFor(std::size_t corner) const;

  /// Corrected delta-latency (ps) at a corner from the feature vector.
  double predict(std::size_t corner,
                 const std::array<double, kNumFeatures>& feat) const;

  /// Training-set evaluation artifacts for the Figure 5 bench: predicted
  /// and golden deltas of a held-out sample set.
  struct Holdout {
    std::vector<double> predicted;
    std::vector<double> golden;
  };
  const Holdout& holdout(std::size_t corner) const;

 private:
  struct PerCorner {
    ml::StandardScaler scaler;
    std::unique_ptr<ml::Regressor> model;
    Holdout holdout;
    /// Residual-correction clamp (training-set residual range): guards
    /// against wild extrapolation on out-of-distribution moves.
    double residual_lo = 0.0, residual_hi = 0.0;
  };
  std::vector<PerCorner> per_corner_;  // indexed by corner id
};

/// Collects (features, golden delta) samples for one design's moves —
/// shared by the trainer and the Figure 5/6 benches.
struct MoveSample {
  Move move;
  std::vector<std::array<double, kNumFeatures>> features;  // per active corner
  std::vector<double> golden_delta;                        // per active corner
};
std::vector<MoveSample> collectMoveSamples(const network::Design& d,
                                           const sta::Timer& timer,
                                           const std::vector<Move>& moves);

/// Golden delta-latency of a move: apply to a copy, retime, and average the
/// latency change over the sinks of the move's primary subtree. One value
/// per active corner.
std::vector<double> goldenDelta(const network::Design& d,
                                const sta::Timer& timer, const Move& m);

// ---------------------------------------------------------------------------

/// Combines analyzer + model + objective into move scoring.
class MovePredictor {
 public:
  /// `model` may be null: the predictor then falls back to the analytical
  /// estimator `analytic_fallback` (0..3) — this is the paper's Figure 6
  /// comparison axis. A non-null `baseline` is adopted as the current
  /// timing instead of running a full analysis (see MoveAnalyzer).
  MovePredictor(const network::Design& d, const sta::Timer& timer,
                const Objective& objective, const DeltaLatencyModel* model,
                std::size_t analytic_fallback = 0,
                const std::vector<sta::CornerTiming>* baseline = nullptr);

  void refresh();

  /// refresh() adopting an externally computed baseline timing.
  void refresh(const std::vector<sta::CornerTiming>& baseline);

  /// Predicted per-active-corner delta-latency of the move's primary group
  /// (ML-corrected when a model is present).
  std::vector<double> predictedPrimaryDelta(const Move& m) const;

  /// Predicted change of the sum of normalized skew variations (ps;
  /// negative is an improvement).
  double predictedVariationDelta(const Move& m) const;

  /// Scores a whole round's candidate table in one call:
  /// out[i] = predictedVariationDelta(moves[i]). With a pool the moves are
  /// scored on its threads (scoring is const and shares no mutable state);
  /// results are identical either way. `out` must have `moves.size()`
  /// slots. Also feeds the skewopt_local_score_batch_size histogram.
  void scoreBatch(std::span<const Move> moves, std::span<double> out,
                  support::ThreadPool* pool = nullptr) const;

  const MoveAnalyzer& analyzer() const { return analyzer_; }

 private:
  void rebuildBase();
  double variationDeltaFromGroups(const std::vector<ImpactGroup>& groups,
                                  const Move& m) const;

  const network::Design* design_;
  const sta::Timer* timer_;
  const Objective* objective_;
  const DeltaLatencyModel* model_;
  std::size_t fallback_;
  MoveAnalyzer analyzer_;
  VariationReport base_report_;
  std::vector<std::vector<std::size_t>> pairs_of_sink_;  // sink id -> pair idx
};

}  // namespace skewopt::core
