// Continuous buffer-placement exploration — the paper's future-work item
// (ii): "development of models to predict a buffer location for minimum
// skew over a continuous range of possible buffer locations".
//
// Table 2's type-I moves probe eight fixed 10um displacements; this
// extension instead scans a whole neighborhood with the same delta-latency
// predictor (coarse grid, then a refinement grid around the coarse
// optimum), returning the predicted-best location for a buffer. Each probe
// is a prediction, not an ECO, so exploring hundreds of locations costs
// what Algorithm 2 spends on a handful of golden trials.
#pragma once

#include "core/objective.h"
#include "core/predictor.h"
#include "network/design.h"

namespace skewopt::core {

struct ExplorerOptions {
  double radius_um = 45.0;     ///< half-edge of the search square
  double coarse_step_um = 15.0;
  double fine_step_um = 4.0;
  /// Also consider one-step up/down resizing at each probed location.
  bool explore_sizing = true;
};

struct PlacementChoice {
  geom::Point position;          ///< absolute location (legalized on apply)
  int size_step = 0;             ///< -1/0/+1 library steps
  double predicted_delta_ps = 0.0;  ///< predicted objective change
  std::size_t probes = 0;        ///< predictor evaluations spent
};

class BufferPlacementExplorer {
 public:
  /// `model` may be null (analytical prediction).
  BufferPlacementExplorer(const network::Design& d, const sta::Timer& timer,
                          const Objective& objective,
                          const DeltaLatencyModel* model = nullptr)
      : design_(&d), predictor_(d, timer, objective, model) {}

  /// Predicted-best location (and optional resize) for `buffer` within the
  /// search window. Does not modify the design. The returned choice may be
  /// the current location with predicted_delta 0 when nothing helps.
  PlacementChoice explore(int buffer, const ExplorerOptions& opts = {}) const;

  /// Applies a choice with ECO semantics (move + resize + legalize +
  /// reroute). Returns nothing; re-time to observe the realized effect.
  static void apply(network::Design& d, int buffer,
                    const PlacementChoice& choice);

 private:
  double probe(int buffer, const geom::Point& pos, int size_step,
               std::size_t* count) const;

  const network::Design* design_;
  MovePredictor predictor_;
};

}  // namespace skewopt::core
