#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "rc/rc.h"
#include "route/route.h"
#include "support/thread_pool.h"
#include "testgen/testgen.h"

namespace skewopt::core {

using network::ClockNode;
using network::ClockTree;
using network::Design;
using network::NodeKind;

const char* analyticName(std::size_t idx) {
  switch (idx) {
    case 0: return "flute+elmore";
    case 1: return "flute+d2m";
    case 2: return "trunk+elmore";
    case 3: return "trunk+d2m";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MoveAnalyzer
// ---------------------------------------------------------------------------

struct MoveAnalyzer::BatchDriverSpec {
  bool is_source = false;
  const tech::Cell* cell = nullptr;  // null iff source
  geom::Point pos;
  double source_slew = 0.0;     // used when is_source
  std::vector<double> in_slew;  // at the driver's input pin, per active corner
};

struct MoveAnalyzer::BatchChildSpec {
  int id = -1;
  geom::Point pos;
  std::vector<double> cap;  // pin cap per active corner
};

/// Per-active-corner lanes of one candidate net's estimates. Lane-
/// interleaved child arrays: wire_elm[child * lanes + ki].
struct MoveAnalyzer::NetEstimatesBatch {
  std::size_t lanes = 0;
  std::vector<double> load;        // [ki]
  std::vector<double> gate_delay;  // [ki]
  std::vector<double> out_slew;    // [ki]
  std::vector<double> wire_elm;    // [child * lanes + ki]
  std::vector<double> wire_d2m;    // [child * lanes + ki]
  std::vector<double> in_slew;     // [child * lanes + ki]

  double wire(std::size_t child, std::size_t ki, int met) const {
    const std::size_t idx = child * lanes + ki;
    return met == 0 ? wire_elm[idx] : wire_d2m[idx];
  }
  double childSlew(std::size_t child, std::size_t ki) const {
    return in_slew[child * lanes + ki];
  }
};

MoveAnalyzer::MoveAnalyzer(const Design& d, const sta::Timer& timer,
                           const std::vector<sta::CornerTiming>* baseline)
    : design_(&d), timer_(&timer) {
  if (baseline != nullptr)
    refresh(*baseline);
  else
    refresh();
}

void MoveAnalyzer::refresh() {
  timing_ = timer_->analyzeDesign(*design_);
  refreshSinkCounts();
}

void MoveAnalyzer::refresh(const std::vector<sta::CornerTiming>& baseline) {
  timing_ = baseline;
  refreshSinkCounts();
}

void MoveAnalyzer::refreshSinkCounts() {
  // Subtree sink counts for fanout weighting.
  const ClockTree& tree = design_->tree;
  subtree_sink_count_.assign(tree.numNodes(), 0);
  // Nodes are appended under existing parents, so ids are topologically
  // ordered; accumulate bottom-up.
  for (std::size_t i = tree.numNodes(); i-- > 0;) {
    const int id = static_cast<int>(i);
    if (!tree.isValid(id)) continue;
    const ClockNode& n = tree.node(id);
    if (n.kind == NodeKind::Sink) subtree_sink_count_[i] = 1;
    if (n.parent >= 0)
      subtree_sink_count_[static_cast<std::size_t>(n.parent)] +=
          subtree_sink_count_[i];
  }
}

MoveAnalyzer::NetEstimatesBatch MoveAnalyzer::estimateNetBatch(
    const BatchDriverSpec& drv, const std::vector<BatchChildSpec>& children,
    int route_model) const {
  const std::size_t nk = design_->corners.size();

  // The route depends only on pin positions — one build serves all corners.
  std::vector<geom::Point> pins;
  pins.reserve(children.size());
  for (const BatchChildSpec& c : children) pins.push_back(c.pos);
  const route::SteinerTree net = (route_model == 0)
                                     ? route::greedySteiner(drv.pos, pins)
                                     : route::singleTrunk(drv.pos, pins);

  // Shared-topology RC with one lane per corner; RcTreeBatch::addNode
  // appends sequentially, so rc node n == steiner node n.
  rc::RcTreeBatch rct(nk);
  std::vector<double> lane(2 * nk);
  double* res_l = lane.data();
  double* cap_l = lane.data() + nk;
  for (std::size_t n = 1; n < net.size(); ++n) {
    const double len = net.edgeLength(n);
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const tech::WireParams& w = design_->tech->wire(design_->corners[ki]);
      res_l[ki] = len * w.res_kohm_per_um;
      cap_l[ki] = len * w.cap_ff_per_um / 2.0;
    }
    // Mirrors the scalar builder's rc_of[] semantics: a parent with a
    // higher steiner index is unvisited there (rc_of 0), so the edge hangs
    // off the driving point.
    const std::size_t p = static_cast<std::size_t>(net.parent[n]);
    const std::size_t rp = p < n ? p : 0;
    rct.addNode(rp, res_l, cap_l);
    rct.addCap(rp, cap_l);
  }
  for (std::size_t i = 0; i < children.size(); ++i)
    rct.addCap(net.pin_node[i], children[i].cap.data());

  rc::MomentsBatch mom;
  std::vector<double> scratch;
  rc::elmoreMomentsBatch(rct, mom, scratch);

  NetEstimatesBatch est;
  est.lanes = nk;
  est.load.resize(nk);
  rct.totalCapInto(est.load.data());
  est.gate_delay.assign(nk, 0.0);
  est.out_slew.assign(nk, 0.0);
  if (drv.is_source) {
    for (std::size_t ki = 0; ki < nk; ++ki) est.out_slew[ki] = drv.source_slew;
  } else {
    tech::LutHint dh, sh;
    drv.cell->delay_packed.lookupEach(design_->corners, drv.in_slew.data(),
                                      est.load.data(), est.gate_delay.data(),
                                      &dh);
    drv.cell->out_slew_packed.lookupEach(design_->corners, drv.in_slew.data(),
                                         est.load.data(), est.out_slew.data(),
                                         &sh);
  }
  const std::size_t nc = children.size();
  est.wire_elm.resize(nc * nk);
  est.wire_d2m.resize(nc * nk);
  est.in_slew.resize(nc * nk);
  for (std::size_t i = 0; i < nc; ++i) {
    const std::size_t rcn = net.pin_node[i];
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const double m1 = mom.m1[rcn * nk + ki];
      const double elm = -m1;
      est.wire_elm[i * nk + ki] = elm;
      est.wire_d2m[i * nk + ki] =
          rc::d2mFromMoments(m1, mom.m2[rcn * nk + ki]);
      est.in_slew[i * nk + ki] =
          rc::periSlew(est.out_slew[ki], rc::wireSlewFromElmore(elm));
    }
  }
  return est;
}

std::array<double, kNumAnalytic> MoveAnalyzer::downstreamGateDelta(
    int node, const std::array<double, kNumAnalytic>& in_slew_new,
    double in_slew_old, std::size_t ki, int depth) const {
  std::array<double, kNumAnalytic> out{};
  const ClockTree& tree = design_->tree;
  const ClockNode& n = tree.node(node);
  if (n.kind != NodeKind::Buffer) return out;  // sinks: wire handled upstream
  const std::size_t k = design_->corners[ki];
  const tech::Cell& cell =
      design_->tech->cell(static_cast<std::size_t>(n.cell));
  const double load = timing_[ki].driver_load[static_cast<std::size_t>(node)];
  const double gate_old = cell.delay[k].lookup(in_slew_old, load);
  const double oslew_old = cell.out_slew[k].lookup(in_slew_old, load);

  for (std::size_t m = 0; m < kNumAnalytic; ++m)
    out[m] = cell.delay[k].lookup(in_slew_new[m], load) - gate_old;

  if (depth >= 2 || n.children.empty()) return out;

  // Propagate the slew change one level down (wire step slews recovered
  // from the golden analysis since the net itself is untouched).
  std::size_t total = 0;
  std::array<double, kNumAnalytic> child_acc{};
  for (const int c : n.children) {
    const double in_old =
        timing_[ki].in_slew[static_cast<std::size_t>(c)];
    const double step2 =
        std::max(0.0, in_old * in_old - oslew_old * oslew_old);
    std::array<double, kNumAnalytic> in_new{};
    for (std::size_t m = 0; m < kNumAnalytic; ++m) {
      const double os_new = cell.out_slew[k].lookup(in_slew_new[m], load);
      in_new[m] = std::sqrt(step2 + os_new * os_new);
    }
    const std::array<double, kNumAnalytic> sub =
        downstreamGateDelta(c, in_new, in_old, ki, depth + 1);
    const std::size_t wgt =
        std::max<std::size_t>(1, subtree_sink_count_[static_cast<std::size_t>(c)]);
    for (std::size_t m = 0; m < kNumAnalytic; ++m)
      child_acc[m] += sub[m] * static_cast<double>(wgt);
    total += wgt;
  }
  if (total > 0)
    for (std::size_t m = 0; m < kNumAnalytic; ++m)
      out[m] += child_acc[m] / static_cast<double>(total);
  return out;
}

namespace {
double pinCapOf(const Design& d, int id, std::size_t k, int cell_override) {
  const ClockNode& n = d.tree.node(id);
  if (n.kind == NodeKind::Sink) return d.tech->sinkCapFf(k);
  const int cell = (cell_override >= 0) ? cell_override : n.cell;
  return d.tech->cell(static_cast<std::size_t>(cell)).pin_cap_ff[k];
}
}  // namespace

std::vector<ImpactGroup> MoveAnalyzer::analyze(const Move& m) const {
  const Design& d = *design_;
  const ClockTree& tree = d.tree;
  const std::size_t nk = d.corners.size();
  std::vector<ImpactGroup> groups;

  auto weightOf = [&](int id) {
    return static_cast<double>(std::max<std::size_t>(
        1, subtree_sink_count_[static_cast<std::size_t>(id)]));
  };

  if (m.type == MoveType::kSizeDisplace ||
      m.type == MoveType::kChildDisplaceSize) {
    const int b = m.node;
    const int p = tree.node(b).parent;
    const geom::Point new_pos{tree.node(b).pos.x + m.delta.x,
                              tree.node(b).pos.y + m.delta.y};
    const int b_cell_new = (m.type == MoveType::kSizeDisplace)
                               ? tree.node(b).cell + m.size_step
                               : tree.node(b).cell;
    const int child_resized =
        (m.type == MoveType::kChildDisplaceSize) ? m.child : -1;
    const int child_cell_new =
        (child_resized >= 0) ? tree.node(child_resized).cell + m.size_step
                             : -1;

    ImpactGroup primary;
    primary.root = b;
    primary.primary = true;
    primary.delta.assign(nk, {});
    ImpactGroup sibling;
    sibling.root = p;
    sibling.exclude = b;
    sibling.delta.assign(nk, {});
    const bool has_siblings = tree.node(p).children.size() > 1;

    // Driver spec for p, with the per-corner input slews as lanes.
    BatchDriverSpec pd;
    pd.pos = tree.node(p).pos;
    if (tree.node(p).kind == NodeKind::Source) {
      pd.is_source = true;
      pd.source_slew = timer_->sourceSlew();
    } else {
      pd.cell = &d.tech->cell(static_cast<std::size_t>(tree.node(p).cell));
      pd.in_slew.resize(nk);
      for (std::size_t ki = 0; ki < nk; ++ki)
        pd.in_slew[ki] = timing_[ki].in_slew[static_cast<std::size_t>(p)];
    }
    auto capLanes = [&](int id, int cell_override) {
      std::vector<double> cap(nk);
      for (std::size_t ki = 0; ki < nk; ++ki)
        cap[ki] = pinCapOf(d, id, d.corners[ki], cell_override);
      return cap;
    };
    // Children of p: old and new (b moved / resized).
    std::vector<BatchChildSpec> pk_old, pk_new;
    std::size_t b_idx = 0;
    for (std::size_t ci = 0; ci < tree.node(p).children.size(); ++ci) {
      const int c = tree.node(p).children[ci];
      BatchChildSpec cs;
      cs.id = c;
      cs.pos = tree.node(c).pos;
      cs.cap = capLanes(c, -1);
      pk_old.push_back(cs);
      if (c == b) {
        b_idx = ci;
        cs.pos = new_pos;
        cs.cap = capLanes(c, b_cell_new);
      }
      pk_new.push_back(std::move(cs));
    }

    // Children of b: old and new (type II resizes one child's pin).
    std::vector<BatchChildSpec> bk_old, bk_new;
    for (const int c : tree.node(b).children) {
      BatchChildSpec cs;
      cs.id = c;
      cs.pos = tree.node(c).pos;
      cs.cap = capLanes(c, -1);
      bk_old.push_back(cs);
      if (c == child_resized) cs.cap = capLanes(c, child_cell_new);
      bk_new.push_back(std::move(cs));
    }

    const tech::Cell& bcell_old =
        d.tech->cell(static_cast<std::size_t>(tree.node(b).cell));
    const tech::Cell& bcell_new =
        d.tech->cell(static_cast<std::size_t>(b_cell_new));

    for (int rm = 0; rm < 2; ++rm) {
      const NetEstimatesBatch p_old = estimateNetBatch(pd, pk_old, rm);
      const NetEstimatesBatch p_new = estimateNetBatch(pd, pk_new, rm);

      BatchDriverSpec bd_old, bd_new;
      bd_old.cell = &bcell_old;
      bd_old.pos = tree.node(b).pos;
      bd_old.in_slew.resize(nk);
      bd_new.cell = &bcell_new;
      bd_new.pos = new_pos;
      bd_new.in_slew.resize(nk);
      for (std::size_t ki = 0; ki < nk; ++ki) {
        bd_old.in_slew[ki] = p_old.childSlew(b_idx, ki);
        bd_new.in_slew[ki] = p_new.childSlew(b_idx, ki);
      }
      const NetEstimatesBatch b_old = estimateNetBatch(bd_old, bk_old, rm);
      const NetEstimatesBatch b_new = estimateNetBatch(bd_new, bk_new, rm);

      for (std::size_t ki = 0; ki < nk; ++ki) {
        for (int met = 0; met < 2; ++met) {
          const std::size_t mi = static_cast<std::size_t>(rm * 2 + met);
          const double d_chain =
              (p_new.gate_delay[ki] - p_old.gate_delay[ki]) +
              (p_new.wire(b_idx, ki, met) - p_old.wire(b_idx, ki, met)) +
              (b_new.gate_delay[ki] - b_old.gate_delay[ki]);
          // Primary: weighted mean over b's children paths.
          double acc = 0.0, wsum = 0.0;
          for (std::size_t ci = 0; ci < bk_old.size(); ++ci) {
            double v = d_chain +
                       (b_new.wire(ci, ki, met) - b_old.wire(ci, ki, met));
            const int cid = bk_old[ci].id;
            if (tree.node(cid).kind == NodeKind::Buffer) {
              std::array<double, kNumAnalytic> in_new{};
              in_new.fill(b_new.childSlew(ci, ki));
              v += downstreamGateDelta(cid, in_new, b_old.childSlew(ci, ki),
                                       ki, 1)[mi];
            }
            const double wgt = weightOf(cid);
            acc += v * wgt;
            wsum += wgt;
          }
          primary.delta[ki][mi] = bk_old.empty() ? d_chain : acc / wsum;

          if (has_siblings) {
            double sacc = 0.0, swsum = 0.0;
            for (std::size_t ci = 0; ci < pk_old.size(); ++ci) {
              if (pk_old[ci].id == b) continue;
              const double v =
                  (p_new.gate_delay[ki] - p_old.gate_delay[ki]) +
                  (p_new.wire(ci, ki, met) - p_old.wire(ci, ki, met));
              const double wgt = weightOf(pk_old[ci].id);
              sacc += v * wgt;
              swsum += wgt;
            }
            sibling.delta[ki][mi] = swsum > 0 ? sacc / swsum : 0.0;
          }
        }
      }
    }
    groups.push_back(std::move(primary));
    if (has_siblings) groups.push_back(std::move(sibling));
    return groups;
  }

  // ---- Type III: tree surgery -------------------------------------------
  const int b = m.node;
  const int p_old = tree.node(b).parent;
  const int p_new = m.new_parent;

  ImpactGroup moved;
  moved.root = b;
  moved.primary = true;
  moved.delta.assign(nk, {});
  ImpactGroup old_grp;
  old_grp.root = p_old;
  old_grp.exclude = b;
  old_grp.delta.assign(nk, {});
  ImpactGroup new_grp;
  new_grp.root = p_new;
  new_grp.delta.assign(nk, {});

  auto driverSpec = [&](int id) {
    BatchDriverSpec ds;
    ds.pos = tree.node(id).pos;
    if (tree.node(id).kind == NodeKind::Source) {
      ds.is_source = true;
      ds.source_slew = timer_->sourceSlew();
    } else {
      ds.cell = &d.tech->cell(static_cast<std::size_t>(tree.node(id).cell));
      ds.in_slew.resize(nk);
      for (std::size_t ki = 0; ki < nk; ++ki)
        ds.in_slew[ki] = timing_[ki].in_slew[static_cast<std::size_t>(id)];
    }
    return ds;
  };
  auto capLanes = [&](int id) {
    std::vector<double> cap(nk);
    for (std::size_t ki = 0; ki < nk; ++ki)
      cap[ki] = pinCapOf(d, id, d.corners[ki], -1);
    return cap;
  };
  auto childSpecs = [&](int driver, int skip, int extra) {
    std::vector<BatchChildSpec> cs;
    for (const int c : tree.node(driver).children) {
      if (c == skip) continue;
      cs.push_back({c, tree.node(c).pos, capLanes(c)});
    }
    if (extra >= 0)
      cs.push_back({extra, tree.node(extra).pos, capLanes(extra)});
    return cs;
  };

  const BatchDriverSpec po_d = driverSpec(p_old);
  const BatchDriverSpec pn_d = driverSpec(p_new);
  const std::vector<BatchChildSpec> po_before = childSpecs(p_old, -1, -1);
  const std::vector<BatchChildSpec> po_after = childSpecs(p_old, b, -1);
  const std::vector<BatchChildSpec> pn_before = childSpecs(p_new, -1, -1);
  const std::vector<BatchChildSpec> pn_after = childSpecs(p_new, -1, b);

  for (int rm = 0; rm < 2; ++rm) {
    const NetEstimatesBatch po_o = estimateNetBatch(po_d, po_before, rm);
    const NetEstimatesBatch po_n = po_after.empty()
                                       ? NetEstimatesBatch{}
                                       : estimateNetBatch(po_d, po_after, rm);
    const NetEstimatesBatch pn_o = pn_before.empty()
                                       ? NetEstimatesBatch{}
                                       : estimateNetBatch(pn_d, pn_before, rm);
    const NetEstimatesBatch pn_n = estimateNetBatch(pn_d, pn_after, rm);

    // Index of b in the before/after child lists.
    std::size_t b_old_idx = 0;
    for (std::size_t ci = 0; ci < po_before.size(); ++ci)
      if (po_before[ci].id == b) b_old_idx = ci;
    const std::size_t b_new_idx = pn_after.size() - 1;

    for (std::size_t ki = 0; ki < nk; ++ki) {
      for (int met = 0; met < 2; ++met) {
        const std::size_t mi = static_cast<std::size_t>(rm * 2 + met);
        const double in_old =
            timing_[ki].in_arrival[static_cast<std::size_t>(p_old)];
        const double in_new =
            timing_[ki].in_arrival[static_cast<std::size_t>(p_new)];
        const double path_old =
            in_old + po_o.gate_delay[ki] + po_o.wire(b_old_idx, ki, met);
        const double path_new =
            in_new + pn_n.gate_delay[ki] + pn_n.wire(b_new_idx, ki, met);
        double delta_b = path_new - path_old;
        {
          std::array<double, kNumAnalytic> in_slew_new{};
          in_slew_new.fill(pn_n.childSlew(b_new_idx, ki));
          delta_b += downstreamGateDelta(b, in_slew_new,
                                         po_o.childSlew(b_old_idx, ki), ki,
                                         0)[mi];
        }
        moved.delta[ki][mi] = delta_b;

        // Remaining children of the old driver speed up.
        double acc = 0.0, wsum = 0.0;
        for (std::size_t ci = 0; ci < po_after.size(); ++ci) {
          // Locate this child in the before list.
          std::size_t bi = 0;
          for (std::size_t cj = 0; cj < po_before.size(); ++cj)
            if (po_before[cj].id == po_after[ci].id) bi = cj;
          const double v = (po_n.gate_delay[ki] - po_o.gate_delay[ki]) +
                           (po_n.wire(ci, ki, met) - po_o.wire(bi, ki, met));
          const double wgt = weightOf(po_after[ci].id);
          acc += v * wgt;
          wsum += wgt;
        }
        old_grp.delta[ki][mi] = wsum > 0 ? acc / wsum : 0.0;

        // Existing children of the new driver slow down.
        acc = 0.0;
        wsum = 0.0;
        for (std::size_t ci = 0; ci < pn_before.size(); ++ci) {
          const double v = (pn_n.gate_delay[ki] - pn_o.gate_delay[ki]) +
                           (pn_n.wire(ci, ki, met) - pn_o.wire(ci, ki, met));
          const double wgt = weightOf(pn_before[ci].id);
          acc += v * wgt;
          wsum += wgt;
        }
        new_grp.delta[ki][mi] = wsum > 0 ? acc / wsum : 0.0;
      }
    }
  }
  groups.push_back(std::move(moved));
  groups.push_back(std::move(old_grp));
  groups.push_back(std::move(new_grp));
  return groups;
}

std::array<double, kNumFeatures> MoveAnalyzer::features(
    const Move& m, const ImpactGroup& primary, std::size_t ki) const {
  const ClockTree& tree = design_->tree;
  std::array<double, kNumFeatures> f{};
  for (std::size_t i = 0; i < kNumAnalytic; ++i) f[i] = primary.delta[ki][i];

  // Bounding box over the perturbed net: driver pin plus fanout cells.
  geom::BBox box;
  double fanout = 0.0;
  if (m.type == MoveType::kReassign) {
    box.add(tree.node(m.new_parent).pos);
    for (const int c : tree.node(m.new_parent).children)
      box.add(tree.node(c).pos);
    box.add(tree.node(m.node).pos);
    fanout =
        static_cast<double>(tree.node(m.new_parent).children.size() + 1);
  } else {
    box.add(geom::Point{tree.node(m.node).pos.x + m.delta.x,
                        tree.node(m.node).pos.y + m.delta.y});
    for (const int c : tree.node(m.node).children)
      box.add(tree.node(c).pos);
    fanout = static_cast<double>(tree.node(m.node).children.size());
  }
  f[kNumAnalytic] = fanout;
  f[kNumAnalytic + 1] = box.rect().area();
  f[kNumAnalytic + 2] = box.rect().aspect();
  return f;
}

// ---------------------------------------------------------------------------
// Golden deltas & sample collection
// ---------------------------------------------------------------------------

std::vector<double> goldenDelta(const Design& d, const sta::Timer& timer,
                                const Move& m) {
  const std::vector<int> sinks = subtreeSinks(d.tree, m.node);
  std::vector<sta::CornerTiming> before = timer.analyzeDesign(d);
  Design copy = d;
  applyMove(copy, m);
  std::vector<sta::CornerTiming> after = timer.analyzeDesign(copy);
  std::vector<double> out(d.corners.size(), 0.0);
  for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
    double acc = 0.0;
    for (const int s : sinks)
      acc += after[ki].arrival[static_cast<std::size_t>(s)] -
             before[ki].arrival[static_cast<std::size_t>(s)];
    out[ki] = sinks.empty() ? 0.0 : acc / static_cast<double>(sinks.size());
  }
  return out;
}

std::vector<MoveSample> collectMoveSamples(const Design& d,
                                           const sta::Timer& timer,
                                           const std::vector<Move>& moves) {
  MoveAnalyzer analyzer(d, timer);
  const std::vector<sta::CornerTiming>& before = analyzer.baseline();
  std::vector<MoveSample> samples;
  samples.reserve(moves.size());
  for (const Move& m : moves) {
    MoveSample s;
    s.move = m;
    const std::vector<ImpactGroup> groups = analyzer.analyze(m);
    const ImpactGroup* primary = nullptr;
    for (const ImpactGroup& g : groups)
      if (g.primary) primary = &g;
    if (primary == nullptr) continue;
    for (std::size_t ki = 0; ki < d.corners.size(); ++ki)
      s.features.push_back(analyzer.features(m, *primary, ki));

    const std::vector<int> sinks = subtreeSinks(d.tree, m.node);
    Design copy = d;
    applyMove(copy, m);
    const std::vector<sta::CornerTiming> after = timer.analyzeDesign(copy);
    s.golden_delta.assign(d.corners.size(), 0.0);
    for (std::size_t ki = 0; ki < d.corners.size(); ++ki) {
      double acc = 0.0;
      for (const int snk : sinks)
        acc += after[ki].arrival[static_cast<std::size_t>(snk)] -
               before[ki].arrival[static_cast<std::size_t>(snk)];
      s.golden_delta[ki] =
          sinks.empty() ? 0.0 : acc / static_cast<double>(sinks.size());
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

// ---------------------------------------------------------------------------
// DeltaLatencyModel
// ---------------------------------------------------------------------------

std::size_t DeltaLatencyModel::train(const tech::TechModel& tech,
                                     const std::vector<std::size_t>& corners,
                                     const TrainOptions& opts) {
  per_corner_.clear();
  per_corner_.resize(tech.numCorners());

  sta::Timer timer(tech);
  geom::Rng rng(opts.seed);

  // Collect (features, golden) per corner across artificial testcases.
  struct Raw {
    std::vector<std::array<double, kNumFeatures>> x;
    std::vector<double> y;
  };
  std::vector<Raw> raw(tech.numCorners());

  for (std::size_t c = 0; c < opts.cases; ++c) {
    const bool last_stage = rng.uniform() < opts.last_stage_fraction;
    testgen::ArtificialCase ac =
        testgen::makeArtificialCase(tech, rng, last_stage);
    ac.design.corners = corners;
    std::vector<Move> moves = enumerateMoves(ac.design, ac.target);
    // Deterministic subsample.
    while (moves.size() > opts.moves_per_case)
      moves.erase(moves.begin() + static_cast<long>(rng.index(moves.size())));
    const std::vector<MoveSample> samples =
        collectMoveSamples(ac.design, timer, moves);
    for (const MoveSample& s : samples) {
      for (std::size_t ki = 0; ki < corners.size(); ++ki) {
        raw[corners[ki]].x.push_back(s.features[ki]);
        raw[corners[ki]].y.push_back(s.golden_delta[ki]);
      }
    }
  }

  std::size_t per_corner_samples = 0;
  for (const std::size_t k : corners) {
    Raw& r = raw[k];
    if (r.x.size() < 10) continue;
    per_corner_samples = r.x.size();

    // Hold out a deterministic 15% slice for the Figure 5 artifacts.
    const std::size_t nhold = std::max<std::size_t>(1, r.x.size() / 7);
    ml::Dataset train;
    train.x = ml::Matrix(r.x.size() - nhold, kNumFeatures);
    std::vector<std::array<double, kNumFeatures>> hold_x;
    std::vector<double> hold_y;
    std::size_t w = 0;
    for (std::size_t i = 0; i < r.x.size(); ++i) {
      if (i % 7 == 3 && hold_x.size() < nhold) {
        hold_x.push_back(r.x[i]);
        hold_y.push_back(r.y[i]);
        continue;
      }
      for (std::size_t j = 0; j < kNumFeatures; ++j)
        train.x.at(w, j) = r.x[i][j];
      train.y.push_back(r.y[i]);
      ++w;
    }
    // `w` rows actually written (holdout may be short).
    if (w < train.x.rows()) {
      ml::Matrix trimmed(w, kNumFeatures);
      for (std::size_t i = 0; i < w; ++i)
        for (std::size_t j = 0; j < kNumFeatures; ++j)
          trimmed.at(i, j) = train.x.at(i, j);
      train.x = std::move(trimmed);
    }

    PerCorner& pc = per_corner_[k];
    pc.scaler.fit(train.x);
    ml::Dataset scaled;
    scaled.x = pc.scaler.transform(train.x);
    // Residual learning: the model corrects the discrepancy between the
    // first analytical estimate and the golden delta (the paper: "we
    // construct machine learning-based models to minimize such
    // discrepancy"). Predicting the residual instead of the absolute delta
    // guarantees the model is never worse than analytical when the
    // residual is unlearnable.
    scaled.y = train.y;
    for (std::size_t i = 0; i < scaled.y.size(); ++i)
      scaled.y[i] -= train.x.at(i, 0);
    pc.residual_lo = *std::min_element(scaled.y.begin(), scaled.y.end());
    pc.residual_hi = *std::max_element(scaled.y.begin(), scaled.y.end());
    switch (opts.family) {
      case TrainOptions::Family::kAnn:
        pc.model = std::make_unique<ml::MlpRegressor>(opts.mlp);
        break;
      case TrainOptions::Family::kSvr:
        pc.model = std::make_unique<ml::SvrRbf>(opts.svr);
        break;
      case TrainOptions::Family::kHsm: {
        ml::HsmOptions h;
        h.mlp = opts.mlp;
        h.svr = opts.svr;
        pc.model = std::make_unique<ml::HybridSurrogate>(h);
        break;
      }
    }
    pc.model->fit(scaled);

    for (std::size_t i = 0; i < hold_x.size(); ++i) {
      pc.holdout.predicted.push_back(predict(k, hold_x[i]));
      pc.holdout.golden.push_back(hold_y[i]);
    }
  }
  return per_corner_samples;
}

bool DeltaLatencyModel::trainedFor(std::size_t corner) const {
  return corner < per_corner_.size() &&
         per_corner_[corner].model != nullptr;
}

double DeltaLatencyModel::predict(
    std::size_t corner, const std::array<double, kNumFeatures>& feat) const {
  const PerCorner& pc = per_corner_[corner];
  if (pc.model == nullptr)
    throw std::logic_error("DeltaLatencyModel: corner not trained");
  const std::vector<double> scaled = pc.scaler.transformRow(feat.data());
  const double residual = std::clamp(pc.model->predict(scaled.data()),
                                     pc.residual_lo, pc.residual_hi);
  return feat[0] + residual;
}

const DeltaLatencyModel::Holdout& DeltaLatencyModel::holdout(
    std::size_t corner) const {
  return per_corner_[corner].holdout;
}

// ---------------------------------------------------------------------------
// MovePredictor
// ---------------------------------------------------------------------------

MovePredictor::MovePredictor(const Design& d, const sta::Timer& timer,
                             const Objective& objective,
                             const DeltaLatencyModel* model,
                             std::size_t analytic_fallback,
                             const std::vector<sta::CornerTiming>* baseline)
    : design_(&d), timer_(&timer), objective_(&objective), model_(model),
      fallback_(analytic_fallback), analyzer_(d, timer, baseline) {
  rebuildBase();
}

void MovePredictor::refresh() {
  analyzer_.refresh();
  rebuildBase();
}

void MovePredictor::refresh(const std::vector<sta::CornerTiming>& baseline) {
  analyzer_.refresh(baseline);
  rebuildBase();
}

void MovePredictor::rebuildBase() {
  base_report_ = objective_->evaluateFromTimings(*design_, analyzer_.baseline());
  pairs_of_sink_.assign(design_->tree.numNodes(), {});
  for (std::size_t pi = 0; pi < design_->pairs.size(); ++pi) {
    pairs_of_sink_[static_cast<std::size_t>(design_->pairs[pi].launch)]
        .push_back(pi);
    pairs_of_sink_[static_cast<std::size_t>(design_->pairs[pi].capture)]
        .push_back(pi);
  }
}

std::vector<double> MovePredictor::predictedPrimaryDelta(
    const Move& m) const {
  const std::vector<ImpactGroup> groups = analyzer_.analyze(m);
  const ImpactGroup* primary = nullptr;
  for (const ImpactGroup& g : groups)
    if (g.primary) primary = &g;
  std::vector<double> out(design_->corners.size(), 0.0);
  if (primary == nullptr) return out;
  for (std::size_t ki = 0; ki < design_->corners.size(); ++ki) {
    const std::size_t k = design_->corners[ki];
    if (model_ != nullptr && model_->trainedFor(k)) {
      out[ki] = model_->predict(k, analyzer_.features(m, *primary, ki));
    } else {
      out[ki] = primary->delta[ki][fallback_];
    }
  }
  return out;
}

double MovePredictor::variationDeltaFromGroups(
    const std::vector<ImpactGroup>& groups, const Move& m) const {
  const std::size_t nk = design_->corners.size();

  // Per-sink latency delta at each corner.
  std::unordered_map<int, std::vector<double>> delta_of;
  std::set<std::size_t> affected_pairs;
  for (const ImpactGroup& g : groups) {
    std::vector<int> sinks = subtreeSinks(design_->tree, g.root);
    std::vector<int> excl;
    if (g.exclude >= 0) excl = subtreeSinks(design_->tree, g.exclude);
    std::set<int> excl_set(excl.begin(), excl.end());

    std::vector<double> dval(nk);
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const std::size_t k = design_->corners[ki];
      if (g.primary && model_ != nullptr && model_->trainedFor(k))
        dval[ki] = model_->predict(k, analyzer_.features(m, g, ki));
      else
        dval[ki] = g.delta[ki][fallback_];
    }
    for (const int s : sinks) {
      if (excl_set.count(s)) continue;
      std::vector<double>& acc =
          delta_of.try_emplace(s, std::vector<double>(nk, 0.0)).first->second;
      for (std::size_t ki = 0; ki < nk; ++ki) acc[ki] += dval[ki];
      for (const std::size_t pi : pairs_of_sink_[static_cast<std::size_t>(s)])
        affected_pairs.insert(pi);
    }
  }

  double delta_sum = 0.0;
  std::vector<double> skew(nk);
  for (const std::size_t pi : affected_pairs) {
    const network::SinkPair& p = design_->pairs[pi];
    const auto itl = delta_of.find(p.launch);
    const auto itc = delta_of.find(p.capture);
    for (std::size_t ki = 0; ki < nk; ++ki) {
      double s = base_report_.skew_ps[ki][pi];
      if (itl != delta_of.end()) s += itl->second[ki];
      if (itc != delta_of.end()) s -= itc->second[ki];
      skew[ki] = s;
    }
    delta_sum += objective_->pairV(skew) - base_report_.v_pair_ps[pi];
  }
  return delta_sum;
}

double MovePredictor::predictedVariationDelta(const Move& m) const {
  return variationDeltaFromGroups(analyzer_.analyze(m), m);
}

void MovePredictor::scoreBatch(std::span<const Move> moves,
                               std::span<double> out,
                               support::ThreadPool* pool) const {
  // Driven only by the candidate count — deterministic for a given
  // optimization, so serial and parallel snapshots stay identical.
  static obs::Histogram& sizes = obs::MetricsRegistry::global().histogram(
      "skewopt_local_score_batch_size",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0},
      "Candidate moves scored per MovePredictor::scoreBatch call");
  sizes.observe(static_cast<double>(moves.size()));
  if (pool != nullptr && moves.size() > 1) {
    pool->parallelFor(moves.size(), [&](std::size_t i) {
      out[i] = predictedVariationDelta(moves[i]);
    });
  } else {
    for (std::size_t i = 0; i < moves.size(); ++i)
      out[i] = predictedVariationDelta(moves[i]);
  }
}

}  // namespace skewopt::core
