#include "core/global_opt.h"

#include "check/check.h"
#include "cts/cts.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>

namespace skewopt::core {

using network::Arc;
using network::ClockTree;
using network::Design;
using network::NodeKind;

double arcRoutedLength(const Design& d, const Arc& arc) {
  double len = 0.0;
  int prev = arc.src;
  auto hop = [&](int child) {
    const route::SteinerTree* net = d.routing.net(prev);
    double l = geom::manhattan(d.tree.node(prev).pos, d.tree.node(child).pos);
    if (net != nullptr) {
      const auto& kids = d.tree.node(prev).children;
      for (std::size_t i = 0; i < kids.size(); ++i)
        if (kids[i] == child) {
          l = net->pathLength(i);
          break;
        }
    }
    len += l;
    prev = child;
  };
  for (const int b : arc.interior) hop(b);
  hop(arc.dst);
  return len;
}

namespace {

/// Everything the LP needs, extracted once from the design snapshot.
struct LpContext {
  std::vector<Arc> arcs;
  std::vector<int> arc_by_dst;       // node id -> arc id (-1 if none)
  std::vector<std::size_t> opt_pairs;  // indices into d.pairs
  std::vector<int> slot_arc;         // slot -> arc id
  std::vector<int> arc_slot;         // arc id -> slot (-1 if not optimized)
  std::vector<std::vector<double>> delay;  // [slot][ki]
  std::vector<double> routed_len, direct_len;
  std::vector<std::vector<int>> path_of_sink;  // sink id -> slots (unsorted)
  std::vector<int> opt_sinks;
  std::vector<double> dmax;  // per ki, original max latency
};

LpContext buildContext(const Design& d,
                       const std::vector<sta::CornerTiming>& timing,
                       const VariationReport& report, std::size_t max_pairs,
                       double min_arc_delay_ps) {
  LpContext ctx;
  ctx.arcs = d.tree.extractArcs();
  ctx.arc_by_dst.assign(d.tree.numNodes(), -1);
  for (const Arc& a : ctx.arcs)
    ctx.arc_by_dst[static_cast<std::size_t>(a.dst)] = a.id;

  // Top critical pairs by weight.
  std::vector<std::size_t> order(d.pairs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return d.pairs[a].weight != d.pairs[b].weight
               ? d.pairs[a].weight > d.pairs[b].weight
               : a < b;
  });
  order.resize(std::min(order.size(), max_pairs));
  ctx.opt_pairs = order;

  // Arc paths of the involved sinks; arcs on any such path get LP slots.
  ctx.arc_slot.assign(ctx.arcs.size(), -1);
  ctx.path_of_sink.assign(d.tree.numNodes(), {});
  std::vector<char> sink_seen(d.tree.numNodes(), 0);
  auto addSink = [&](int s) {
    if (sink_seen[static_cast<std::size_t>(s)]) return;
    sink_seen[static_cast<std::size_t>(s)] = 1;
    ctx.opt_sinks.push_back(s);
    int cur = s;
    while (cur != d.tree.root()) {
      const int aid = ctx.arc_by_dst[static_cast<std::size_t>(cur)];
      if (aid < 0) break;  // cur is an interior node: step to its anchor
      const Arc& a = ctx.arcs[static_cast<std::size_t>(aid)];
      const double d0 = timing[0].arrival[static_cast<std::size_t>(a.dst)] -
                        timing[0].arrival[static_cast<std::size_t>(a.src)];
      // Tiny leaf stubs stay constant (no LP slot).
      if (d0 >= min_arc_delay_ps) {
        if (ctx.arc_slot[static_cast<std::size_t>(aid)] < 0) {
          ctx.arc_slot[static_cast<std::size_t>(aid)] =
              static_cast<int>(ctx.slot_arc.size());
          ctx.slot_arc.push_back(aid);
        }
        ctx.path_of_sink[static_cast<std::size_t>(s)].push_back(
            ctx.arc_slot[static_cast<std::size_t>(aid)]);
      }
      cur = a.src;
    }
  };
  for (const std::size_t pi : ctx.opt_pairs) {
    addSink(d.pairs[pi].launch);
    addSink(d.pairs[pi].capture);
  }

  const std::size_t nk = d.corners.size();
  ctx.delay.assign(ctx.slot_arc.size(), std::vector<double>(nk, 0.0));
  ctx.routed_len.resize(ctx.slot_arc.size());
  ctx.direct_len.resize(ctx.slot_arc.size());
  for (std::size_t s = 0; s < ctx.slot_arc.size(); ++s) {
    const Arc& a = ctx.arcs[static_cast<std::size_t>(ctx.slot_arc[s])];
    for (std::size_t ki = 0; ki < nk; ++ki)
      ctx.delay[s][ki] =
          timing[ki].arrival[static_cast<std::size_t>(a.dst)] -
          timing[ki].arrival[static_cast<std::size_t>(a.src)];
    ctx.routed_len[s] = arcRoutedLength(d, a);
    ctx.direct_len[s] = a.direct_len_um;
  }

  ctx.dmax.assign(nk, 0.0);
  for (std::size_t ki = 0; ki < nk; ++ki)
    for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
      const int id = static_cast<int>(i);
      if (d.tree.isValid(id) && d.tree.node(id).kind == NodeKind::Sink)
        ctx.dmax[ki] = std::max(ctx.dmax[ki], timing[ki].arrival[i]);
    }
  (void)report;
  return ctx;
}

/// Per-pair arc coefficients: +1 launch-path only, -1 capture-path only.
std::vector<std::pair<int, double>> pairCoefs(const Design& d,
                                              const LpContext& ctx,
                                              std::size_t pi) {
  std::vector<double> coef(ctx.slot_arc.size(), 0.0);
  for (const int s :
       ctx.path_of_sink[static_cast<std::size_t>(d.pairs[pi].launch)])
    coef[static_cast<std::size_t>(s)] += 1.0;
  for (const int s :
       ctx.path_of_sink[static_cast<std::size_t>(d.pairs[pi].capture)])
    coef[static_cast<std::size_t>(s)] -= 1.0;
  std::vector<std::pair<int, double>> out;
  for (std::size_t s = 0; s < coef.size(); ++s)
    if (coef[s] != 0.0) out.push_back({static_cast<int>(s), coef[s]});
  return out;
}

struct BuiltLp {
  lp::Model model;
  // dp/dm var index of (slot, ki): dp = base(slot,ki), dm = base+1.
  int varBase(std::size_t slot, std::size_t ki, std::size_t nk) const {
    return static_cast<int>(2 * (slot * nk + ki));
  }
  std::vector<int> v_var;  // per opt-pair position
  /// Constraint-(9) rows, recorded so a cached model can be re-bounded for
  /// new corner derates instead of rebuilt (see GlobalWarmState).
  std::vector<GlobalWarmState::LatencyRow> latency_rows;
};

/// Dmax multiplier of active corner ki (1.0 past the end / when empty).
double derateOf(const std::vector<double>& derates, std::size_t ki) {
  return ki < derates.size() ? derates[ki] : 1.0;
}

BuiltLp buildLp(const Design& d, const LpContext& ctx,
                const eco::StageDelayLut& lut, const Objective& objective,
                const VariationReport& report, double beta,
                const std::vector<double>& derates, bool min_sum_v,
                double u_bound) {
  BuiltLp built;
  lp::Model& m = built.model;
  const std::size_t nk = d.corners.size();
  const std::vector<double>& alpha = objective.alphas();

  // Delta variables, with Constraint (10) folded into their bounds.
  for (std::size_t s = 0; s < ctx.slot_arc.size(); ++s) {
    for (std::size_t ki = 0; ki < nk; ++ki) {
      const double dj = ctx.delay[s][ki];
      const double dmin =
          lut.minAchievableDelay(ctx.direct_len[s], d.corners[ki]);
      const double up = std::max(0.0, (beta - 1.0) * dj);
      const double down = std::max(0.0, dj - dmin);
      m.addVar(0.0, up, min_sum_v ? 0.0 : 1.0);    // Delta+
      m.addVar(0.0, down, min_sum_v ? 0.0 : 1.0);  // Delta-
    }
  }
  // V variables.
  built.v_var.reserve(ctx.opt_pairs.size());
  for (std::size_t p = 0; p < ctx.opt_pairs.size(); ++p)
    built.v_var.push_back(m.addVar(0.0, lp::kInf, min_sum_v ? 1.0 : 0.0));

  // (6) V lower bounds, (7) local-skew, (8) variation-vs-c0 preservation.
  for (std::size_t p = 0; p < ctx.opt_pairs.size(); ++p) {
    const std::size_t pi = ctx.opt_pairs[p];
    const auto coefs = pairCoefs(d, ctx, pi);
    // Original skew constants per active corner.
    std::vector<double> c(nk);
    for (std::size_t ki = 0; ki < nk; ++ki) c[ki] = report.skew_ps[ki][pi];

    for (std::size_t a = 0; a < nk; ++a) {
      for (std::size_t b = a + 1; b < nk; ++b) {
        for (int sign = -1; sign <= 1; sign += 2) {
          // V >= sign * (alpha_a * S^a - alpha_b * S^b)
          std::vector<lp::Term> terms;
          terms.push_back({built.v_var[p], 1.0});
          for (const auto& [slot, cf] : coefs) {
            const int va = built.varBase(static_cast<std::size_t>(slot), a, nk);
            const int vb = built.varBase(static_cast<std::size_t>(slot), b, nk);
            const double ka = -sign * alpha[a] * cf;
            const double kb = sign * alpha[b] * cf;
            terms.push_back({va, ka});
            terms.push_back({va + 1, -ka});
            terms.push_back({vb, kb});
            terms.push_back({vb + 1, -kb});
          }
          const double rhs = sign * (alpha[a] * c[a] - alpha[b] * c[b]);
          m.addRow(rhs, lp::kInf, std::move(terms));
        }
      }
    }
    // (7): -|c^k| <= c^k + sum coef*Delta^k <= |c^k| for every corner.
    for (std::size_t ki = 0; ki < nk; ++ki) {
      std::vector<lp::Term> terms;
      for (const auto& [slot, cf] : coefs) {
        const int v = built.varBase(static_cast<std::size_t>(slot), ki, nk);
        terms.push_back({v, cf});
        terms.push_back({v + 1, -cf});
      }
      if (terms.empty()) continue;
      m.addRow(-std::abs(c[ki]) - c[ki], std::abs(c[ki]) - c[ki],
               std::move(terms));
    }
    // (8): variation against the nominal corner must not degrade.
    for (std::size_t ki = 1; ki < nk; ++ki) {
      const double v0 = alpha[ki] * c[ki] - alpha[0] * c[0];
      std::vector<lp::Term> terms;
      for (const auto& [slot, cf] : coefs) {
        const int vk = built.varBase(static_cast<std::size_t>(slot), ki, nk);
        const int v0i = built.varBase(static_cast<std::size_t>(slot), 0, nk);
        terms.push_back({vk, alpha[ki] * cf});
        terms.push_back({vk + 1, -alpha[ki] * cf});
        terms.push_back({v0i, -alpha[0] * cf});
        terms.push_back({v0i + 1, alpha[0] * cf});
      }
      if (terms.empty()) continue;
      m.addRow(-std::abs(v0) - v0, std::abs(v0) - v0, std::move(terms));
    }
  }

  // (9): latency bound per optimized sink and corner; the RHS carries the
  // per-corner Dmax derate, and each row is recorded so delta jobs that
  // change only derates can re-bound a cached model in place.
  for (const int s : ctx.opt_sinks) {
    for (std::size_t ki = 0; ki < nk; ++ki) {
      double lat = 0.0;
      for (const int slot : ctx.path_of_sink[static_cast<std::size_t>(s)])
        lat += ctx.delay[static_cast<std::size_t>(slot)][ki];
      std::vector<lp::Term> terms;
      for (const int slot : ctx.path_of_sink[static_cast<std::size_t>(s)]) {
        const int v = built.varBase(static_cast<std::size_t>(slot), ki, nk);
        terms.push_back({v, 1.0});
        terms.push_back({v + 1, -1.0});
      }
      if (terms.empty()) continue;
      built.latency_rows.push_back({m.numRows(), ki, ctx.dmax[ki], lat});
      m.addRow(-lp::kInf, derateOf(derates, ki) * ctx.dmax[ki] - lat,
               std::move(terms));
    }
  }

  // (11): achievable cross-corner delay ratios per arc.
  for (std::size_t s = 0; s < ctx.slot_arc.size(); ++s) {
    const double d0 = ctx.delay[s][0];
    if (d0 < 1.0 || ctx.routed_len[s] < 5.0) continue;  // degenerate arc
    const double u0 = d0 / ctx.routed_len[s];
    for (std::size_t a = 0; a < nk; ++a) {
      for (std::size_t b = a + 1; b < nk; ++b) {
        const double da = ctx.delay[s][a], db = ctx.delay[s][b];
        if (db < 1.0) continue;
        double w_up =
            lut.ratioBound(d.corners[a], d.corners[b], true).eval(u0);
        double w_lo =
            lut.ratioBound(d.corners[a], d.corners[b], false).eval(u0);
        // Keep the original configuration feasible (Delta = 0).
        const double r0 = da / db;
        w_up = std::max(w_up, r0 * 1.001);
        w_lo = std::min(w_lo, r0 * 0.999);
        const int va = built.varBase(s, a, nk);
        const int vb = built.varBase(s, b, nk);
        // da + Dla - W*(db + Dlb) <= 0  (upper), >= 0 with w_lo (lower)
        m.addRow(-lp::kInf, w_up * db - da,
                 {{va, 1.0}, {va + 1, -1.0}, {vb, -w_up}, {vb + 1, w_up}});
        m.addRow(w_lo * db - da, lp::kInf,
                 {{va, 1.0}, {va + 1, -1.0}, {vb, -w_lo}, {vb + 1, w_lo}});
      }
    }
  }

  // (5): sum of V <= U (only in the min-|Delta| mode).
  if (!min_sum_v) {
    std::vector<lp::Term> terms;
    for (const int v : built.v_var) terms.push_back({v, 1.0});
    m.addRow(-lp::kInf, u_bound, std::move(terms));
  }
  return built;
}

}  // namespace

std::uint64_t designFingerprint(const Design& d,
                                const std::vector<sta::CornerTiming>& timing) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  const auto mixDouble = [&mix](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(d.tree.numNodes()));
  mix(static_cast<std::uint64_t>(d.corners.size()));
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) {
      mix(0x517eadull);  // keep invalid slots from aliasing valid ones
      continue;
    }
    const network::ClockNode& n = d.tree.node(id);
    mix(static_cast<std::uint64_t>(n.kind));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(n.cell)));
    mixDouble(n.pos.x);
    mixDouble(n.pos.y);
  }
  for (const sta::CornerTiming& t : timing) {
    mix(static_cast<std::uint64_t>(t.corner));
    for (const double a : t.arrival) mixDouble(a);
    for (const double s : t.slew) mixDouble(s);
  }
  return h;
}

// Post-ECO local-skew cleanup: for every pair whose |skew| degraded beyond
// the repair threshold at some corner, snake the *fast* sink's leaf wire
// until the pair is back inside its original envelope. Wire delay scales
// almost uniformly across corners, so the repair barely moves the pair's
// normalized variation while restoring the paper's "no local skew
// degradation" property that the LP guaranteed but the discrete ECO broke.
// `inc` (may be null) is an incremental timer currently holding `trial`'s
// timing: when present, each pass reads it instead of a full re-analysis
// and each snake updates only the touched driver's subtree — bit-identical
// either way.
void GlobalOptimizer::repairLocalSkew(Design& trial,
                                      const Objective& objective,
                                      const VariationReport& before,
                                      sta::IncrementalTimer* inc) const {
  // Targeted: each pass fixes only the single worst violator of the
  // acceptance envelope (the gate metric is the max |skew| per corner, so
  // one or two pairs are usually responsible). Broad repair cascades
  // through shared driver loads and erodes the variation gain.
  const std::size_t nk = trial.corners.size();
  for (std::size_t pass = 0; pass < opts_.repair_passes; ++pass) {
    const VariationReport now =
        inc != nullptr ? objective.evaluateFromTimings(trial, inc->timings())
                       : objective.evaluate(trial, timer_);
    double worst_excess = 0.0;
    std::size_t worst_ki = 0, worst_pi = 0;
    for (std::size_t pi = 0; pi < trial.pairs.size(); ++pi) {
      for (std::size_t ki = 0; ki < nk; ++ki) {
        // Only pairs that currently define/threaten the gate metric
        // matter: compare against the acceptance envelope of the *corner
        // max*, not per-pair budgets.
        const double gate = before.local_skew_ps[ki] *
                                opts_.local_skew_tolerance +
                            opts_.local_skew_allowance_ps -
                            opts_.repair_threshold_ps;
        const double excess = std::abs(now.skew_ps[ki][pi]) - gate;
        if (excess > worst_excess) {
          worst_excess = excess;
          worst_ki = ki;
          worst_pi = pi;
        }
      }
    }
    if (worst_excess <= 0.0) break;

    const network::SinkPair& p = trial.pairs[worst_pi];
    const double skew = now.skew_ps[worst_ki][worst_pi];
    const int fast = skew > 0 ? p.capture : p.launch;
    const int drv = trial.tree.node(fast).parent;
    if (drv < 0) break;
    const auto& kids = trial.tree.node(drv).children;
    std::size_t pin = 0;
    for (std::size_t pi2 = 0; pi2 < kids.size(); ++pi2)
      if (kids[pi2] == fast) pin = pi2;
    // Sensitivity at the violating corner (snake delay there per um).
    const std::size_t k = trial.corners[worst_ki];
    const tech::WireParams& w = tech_->wire(k);
    const network::ClockNode& dn = trial.tree.node(drv);
    const double reff =
        (dn.kind == NodeKind::Buffer)
            ? cts::CtsEngine::effectiveDriveRes(
                  tech_->cell(static_cast<std::size_t>(dn.cell)), k)
            : 0.2;
    const double cur = trial.routing.extraOf(drv, pin);
    const double cpin = (trial.tree.node(fast).kind == NodeKind::Sink)
                            ? tech_->sinkCapFf(k)
                            : tech_->cell(static_cast<std::size_t>(
                                              trial.tree.node(fast).cell))
                                  .pin_cap_ff[k];
    const double sens = w.res_kohm_per_um * w.cap_ff_per_um * cur +
                        w.res_kohm_per_um * (cpin + 2.0) +
                        reff * w.cap_ff_per_um + 1e-4;
    const double extra = std::min(0.7 * worst_excess / sens, 250.0);
    if (extra < 1.0) break;
    trial.routing.addExtra(drv, pin, extra);
    if (inc != nullptr) inc->update(trial, {drv});
  }
}

namespace {

/// LP-model gate: verifies the freshly built model (and, for the sweep
/// model, the budget-row identity) before handing it to the solver.
void gateLp(const lp::Model& model, int budget_row, check::Level level,
            const char* stage) {
  if (level == check::Level::kOff) return;
  check::DiagnosticEngine engine;
  engine.setContext(stage);
  check::checkLpModel(model, engine);
  if (budget_row >= 0) check::checkBudgetRow(model, budget_row, engine);
  if (engine.hasErrors()) throw check::CheckFailure(engine, stage);
}

}  // namespace

namespace {

// Shared LP-solve bookkeeping for pass 1 and every sweep point.
struct LpObs {
  obs::Counter& solves = obs::MetricsRegistry::global().counter(
      "skewopt_lp_solves_total", "LP solves issued by the global stage");
  obs::Counter& iterations = obs::MetricsRegistry::global().counter(
      "skewopt_lp_simplex_iterations_total", "Simplex iterations across solves");
  obs::Counter& warm_hits = obs::MetricsRegistry::global().counter(
      "skewopt_lp_warm_hits_total", "Sweep solves that reused the basis chain");
  obs::Counter& warm_misses = obs::MetricsRegistry::global().counter(
      "skewopt_lp_warm_misses_total", "Sweep solves that fell back to cold");
  obs::Histogram& solve_ms = obs::MetricsRegistry::global().histogram(
      "skewopt_lp_solve_ms", obs::defaultMsBuckets(), "Per-LP solve wall time");
  static LpObs& get() {
    static LpObs o;
    return o;
  }
};

}  // namespace

GlobalResult GlobalOptimizer::run(Design& d, const Objective& objective) const {
  return run(d, objective, /*seed=*/nullptr, /*warm_in=*/nullptr,
             /*warm_out=*/nullptr);
}

GlobalResult GlobalOptimizer::run(Design& d, const Objective& objective,
                                  const sta::IncrementalTimer* seed,
                                  const GlobalWarmState* warm_in,
                                  GlobalWarmState* warm_out) const {
  obs::Span run_span("global.run");
  LpObs& lpo = LpObs::get();
  const check::Level chk = check::effectiveLevel(opts_.check_level);
  GlobalResult res;
  // Cold runs analyze from scratch; seeded runs read the caller's
  // incremental timer, whose state is bit-identical to analyzeDesign(d).
  std::vector<sta::CornerTiming> timing_storage;
  if (seed == nullptr) timing_storage = timer_.analyzeDesign(d);
  const std::vector<sta::CornerTiming>& timing =
      seed != nullptr ? seed->timings() : timing_storage;
  const VariationReport before = objective.evaluateFromTimings(d, timing);
  res.sum_before_ps = before.sum_variation_ps;
  res.sum_after_ps = before.sum_variation_ps;

  if (d.pairs.empty()) return res;
  LpContext ctx = buildContext(d, timing, before, opts_.max_pairs_lp,
                               opts_.min_arc_delay_ps);
  res.arcs_in_lp = ctx.slot_arc.size();
  if (ctx.slot_arc.empty()) return res;

  for (const std::size_t pi : ctx.opt_pairs)
    res.lp_orig_sum_ps += before.v_pair_ps[pi];

  // Cross-job warm state: reuse prior models only when the design's
  // placement/timing bits match exactly (then the prior models are
  // coefficient-identical and only row RHS can differ via derates).
  const bool cross_job = warm_in != nullptr || warm_out != nullptr;
  const std::uint64_t fp = cross_job ? designFingerprint(d, timing) : 0;
  // Solution replay below is additionally gated on matching derates;
  // design-changing edits (moved sinks) fail the fingerprint here and run
  // the LPs cold, keeping only the incremental-STA seed.
  const bool warm_data_match = warm_in != nullptr && warm_in->models_valid &&
                               warm_in->model_fingerprint == fp;
  const bool reuse_models =
      warm_data_match && warm_in->min_v_model.numVars() > 0;
  static obs::Counter& model_reuses = obs::MetricsRegistry::global().counter(
      "skewopt_global_model_reuses_total",
      "Global runs that re-bounded cached LP models instead of rebuilding");
  static obs::Counter& memo_hits_ctr = obs::MetricsRegistry::global().counter(
      "skewopt_global_realize_memo_hits_total",
      "Sweep points served from the cross-job realization memo");

  // Pass 1: minimum achievable sum of variations over the selected pairs.
  BuiltLp min_lp;
  std::vector<GlobalWarmState::LatencyRow> latency_rows;
  if (reuse_models) {
    min_lp.model = warm_in->min_v_model;
    latency_rows = warm_in->latency_rows;
    for (const GlobalWarmState::LatencyRow& lr : latency_rows)
      min_lp.model.setRowBounds(
          lr.row, -lp::kInf,
          derateOf(opts_.corner_dmax_derate, lr.ki) * lr.dmax - lr.lat);
    res.reused_models = true;
    model_reuses.add();
  } else {
    min_lp = buildLp(d, ctx, *lut_, objective, before, opts_.beta,
                     opts_.corner_dmax_derate, /*min_sum_v=*/true, 0.0);
    latency_rows = std::move(min_lp.latency_rows);
  }
  res.lp_rows = static_cast<std::size_t>(min_lp.model.numRows());
  res.lp_vars = static_cast<std::size_t>(min_lp.model.numVars());
  gateLp(min_lp.model, /*budget_row=*/-1, chk, "global:lp");
  support::Stopwatch lp_sw;
  // Exact solve replay: when the fingerprint AND the effective derates
  // match the cached state bitwise, the (re-bounded) models are
  // bit-identical to the ones the cached run solved, so its recorded
  // solutions ARE the cold answers and the solves can be skipped outright.
  // This is the only equality-safe way to reuse prior solver work; seeding
  // the simplex with a foreign basis converges, on degenerate models, to
  // an alternate optimal vertex whose low-order bits differ from the cold
  // solve, which the differential delta==cold tests reject.
  std::vector<double> eff_derates(d.corners.size());
  for (std::size_t ki = 0; ki < eff_derates.size(); ++ki)
    eff_derates[ki] = derateOf(opts_.corner_dmax_derate, ki);
  static obs::Counter& replays_ctr = obs::MetricsRegistry::global().counter(
      "skewopt_global_lp_replays_total",
      "LP solves skipped by replaying a cached bit-identical solution");
  lp::Basis pass1_cached;
  const bool pass1_replay =
      warm_data_match && warm_in->pass1_valid &&
      warm_in->solve_derates == eff_derates &&
      lp::deserializeBasis(warm_in->pass1_basis, &pass1_cached) &&
      pass1_cached.status.size() ==
          static_cast<std::size_t>(min_lp.model.numVars() +
                                   min_lp.model.numRows());
  lp::Solution vsol;
  if (pass1_replay) {
    vsol.status = lp::Status::Optimal;
    vsol.objective = warm_in->pass1_objective;
    vsol.iterations = warm_in->pass1_iterations;
    vsol.basis = std::move(pass1_cached);
    ++res.lp_replays;
    replays_ctr.add();
  } else {
    obs::Span solve_span("global.lp_solve");
    solve_span.arg("pass", std::int64_t{1});
    vsol = lp::solve(min_lp.model, opts_.lp, nullptr);
    lpo.solves.add();
    lpo.iterations.add(static_cast<std::uint64_t>(vsol.iterations));
    lpo.solve_ms.observe(lp_sw.ms());
  }
  const double pass1_ms = lp_sw.ms();
  res.lp_solves.push_back({0.0, vsol.iterations, vsol.refactorizations,
                           pass1_replay,
                           vsol.status == lp::Status::Optimal, pass1_ms,
                           0.0});
  if (vsol.status != lp::Status::Optimal) return res;
  res.lp_min_sum_ps = vsol.objective;
  res.lp_iterations = vsol.iterations;

  // Pass 2: sweep U, realize each LP with the ECO flow, keep the best.
  //
  // The sweep model is built once — it differs from the pass-1 model only
  // in objective and in the budget row (5), appended last — and re-bounded
  // per sweep point. The LPs are solved serially so each re-enters from
  // the previous optimal basis (only that one bound moved); realization
  // (ECO + golden re-time), the expensive part, then fans out across sweep
  // points on the shared pool. The best-candidate pick below walks the
  // results in sweep order with the serial acceptance logic, so the
  // parallel path is bit-identical to the serial one.
  eco::EcoEngine eco_engine(*tech_, *lut_, opts_.eco_pair_penalty_ps,
                            opts_.eco_overshoot_weight);
  const std::size_t nk = d.corners.size();
  double best_sum = before.sum_variation_ps;
  Design best = d;
  bool improved = false;

  BuiltLp sweep_lp;
  if (reuse_models) {
    sweep_lp.model = warm_in->sweep_model;
    for (const GlobalWarmState::LatencyRow& lr : latency_rows)
      sweep_lp.model.setRowBounds(
          lr.row, -lp::kInf,
          derateOf(opts_.corner_dmax_derate, lr.ki) * lr.dmax - lr.lat);
  } else {
    sweep_lp = buildLp(d, ctx, *lut_, objective, before, opts_.beta,
                       opts_.corner_dmax_derate, /*min_sum_v=*/false,
                       res.lp_orig_sum_ps);
  }
  const int budget_row = sweep_lp.model.numRows() - 1;
  gateLp(sweep_lp.model, budget_row, chk, "global:lp-sweep");
  if (chk >= check::Level::kDeep) {
    check::DiagnosticEngine engine;
    engine.setContext("global:lp-sweep");
    check::checkRatioEnvelope(*lut_, d, engine);
    if (engine.hasErrors())
      throw check::CheckFailure(engine, "global:lp-sweep");
  }
  lp::Basis chain;
  if (opts_.warm_start_sweep && !vsol.basis.empty()) {
    // Extend the pass-1 basis with the budget slack: its unit column keeps
    // the basis nonsingular, and the pass-1 vertex satisfies (5) for every
    // swept U >= the minimum sum, so phase 1 exits immediately. A replayed
    // pass-1 deserializes the exact basis the cold run would compute, so
    // the chain evolves identically either way.
    chain = vsol.basis;
    chain.status.push_back(lp::BasisStatus::Basic);
  }

  struct SweepPoint {
    double u = 0.0;
    bool solved = false;
    std::vector<double> x;  ///< LP solution (empty unless solved)
    int iterations = 0;
    std::vector<unsigned char> basis_after;  ///< chain after this solve
    std::size_t stats_ix = 0;
    std::shared_ptr<const Design> trial;
    VariationReport after;
    std::size_t changed = 0;
  };
  std::vector<SweepPoint> points;

  // Prefix-only sweep replay: the sweep solves chain bases serially, so a
  // cached point is the cold answer only while every earlier point (and
  // pass 1) replayed too — the first mismatch breaks the chain and every
  // later point solves live from the exactly-reproduced chain state.
  std::size_t replay_ix = 0;
  bool replaying = pass1_replay;
  for (const double t : opts_.u_sweep) {
    const double u =
        res.lp_min_sum_ps + t * (res.lp_orig_sum_ps - res.lp_min_sum_ps);
    if (u >= res.lp_orig_sum_ps) continue;
    obs::Span point_span("global.u_point");
    point_span.arg("u_index", static_cast<std::int64_t>(points.size()));
    point_span.arg("u_ps", u);
    SweepPoint pt;
    pt.u = u;
    pt.stats_ix = res.lp_solves.size();
    const GlobalWarmState::SweptSolution* cached = nullptr;
    if (replaying && replay_ix < warm_in->sweep_solutions.size() &&
        warm_in->sweep_solutions[replay_ix].u == u)
      cached = &warm_in->sweep_solutions[replay_ix];
    lp::Basis cached_basis;
    if (cached != nullptr && opts_.warm_start_sweep &&
        !(lp::deserializeBasis(cached->basis, &cached_basis) &&
          cached_basis.status.size() ==
              static_cast<std::size_t>(sweep_lp.model.numVars() +
                                       sweep_lp.model.numRows())))
      cached = nullptr;  // unusable chain state: fall back to a live solve
    if (cached != nullptr) {
      pt.solved = true;
      pt.x = cached->x;
      pt.iterations = cached->iterations;
      pt.basis_after = cached->basis;
      if (opts_.warm_start_sweep) chain = std::move(cached_basis);
      ++replay_ix;
      ++res.lp_replays;
      replays_ctr.add();
      res.lp_solves.push_back(
          {u, cached->iterations, 0, true, true, 0.0, 0.0});
      points.push_back(std::move(pt));
      continue;
    }
    replaying = false;
    sweep_lp.model.setRowBounds(budget_row, -lp::kInf, u);
    lp_sw.reset();
    lp::Solution sol;
    {
      obs::Span solve_span("global.lp_solve");
      solve_span.arg("u_index", static_cast<std::int64_t>(points.size()));
      sol = lp::solve(sweep_lp.model, opts_.lp,
                      chain.empty() ? nullptr : &chain);
    }
    const double sweep_ms = lp_sw.ms();
    lpo.solves.add();
    lpo.iterations.add(static_cast<std::uint64_t>(sol.iterations));
    lpo.solve_ms.observe(sweep_ms);
    if (!chain.empty()) {
      if (sol.warm_started) {
        ++res.lp_warm_hits;
        lpo.warm_hits.add();
      } else {
        ++res.lp_warm_misses;
        lpo.warm_misses.add();
      }
    }
    res.lp_solves.push_back({u, sol.iterations, sol.refactorizations,
                             sol.warm_started,
                             sol.status == lp::Status::Optimal, sweep_ms,
                             0.0});
    if (sol.status == lp::Status::Optimal) {
      pt.solved = true;
      pt.x = sol.x;
      pt.iterations = sol.iterations;
      if (opts_.warm_start_sweep) chain = sol.basis;
      pt.basis_after = lp::serializeBasis(sol.basis);
    }
    points.push_back(std::move(pt));
  }

  // Upstream arcs first so that downstream rebuilds see stable parents;
  // the order is a function of the original design only, so it is shared
  // by every sweep point.
  std::vector<std::size_t> slots(ctx.slot_arc.size());
  std::iota(slots.begin(), slots.end(), std::size_t{0});
  std::sort(slots.begin(), slots.end(), [&](std::size_t a, std::size_t b) {
    const int la = d.tree.level(
        ctx.arcs[static_cast<std::size_t>(ctx.slot_arc[a])].src);
    const int lb = d.tree.level(
        ctx.arcs[static_cast<std::size_t>(ctx.slot_arc[b])].src);
    return la != lb ? la < lb : a < b;
  });

  // Realizes one LP solution: per-point Design replica, Algorithm-1 ECO
  // per arc, golden re-time, local-skew repair, full evaluation. Reads
  // only shared const state (d, ctx, timing, engines), so sweep points are
  // independent.
  const auto realize = [&](SweepPoint& pt) {
    const std::vector<double>& x = pt.x;
    Design trial = d;
    std::size_t changed = 0;
    // Slews/loads are refreshed from the trial design as upstream rebuilds
    // land, so downstream arc solutions see post-ECO conditions. Seeded
    // runs retime incrementally (only the rebuilt driver's subtree); cold
    // runs keep the full golden re-analysis. The timing bits are identical
    // either way (IncrementalTimer contract), so the realized candidates
    // match — only the work expended differs.
    std::optional<sta::IncrementalTimer> inc;
    std::vector<sta::CornerTiming> timing_copy;
    if (seed != nullptr)
      inc.emplace(*seed);
    else
      timing_copy = timing;
    const std::vector<sta::CornerTiming>& trial_timing =
        inc.has_value() ? inc->timings() : timing_copy;
    const auto retime = [&](int dirty_root) {
      if (inc.has_value()) {
        inc->ensureSize(trial.tree.numNodes());
        inc->update(trial, {dirty_root});
      } else {
        timing_copy = timer_.analyzeDesign(trial);
      }
    };
    for (const std::size_t s : slots) {
      const Arc& arc = ctx.arcs[static_cast<std::size_t>(ctx.slot_arc[s])];
      std::vector<double> desired(nk), chain_ps(nk), slews(nk), loads(nk);
      double maxdev = 0.0;
      for (std::size_t ki = 0; ki < nk; ++ki) {
        const int v = sweep_lp.varBase(s, ki, nk);
        const double delta = x[static_cast<std::size_t>(v)] -
                             x[static_cast<std::size_t>(v + 1)];
        desired[ki] = ctx.delay[s][ki] + delta;
        maxdev = std::max(maxdev, std::abs(delta));
        slews[ki] = trial_timing[ki].slew[static_cast<std::size_t>(arc.src)];
        const network::ClockNode& dst = d.tree.node(arc.dst);
        loads[ki] = (dst.kind == NodeKind::Sink)
                        ? tech_->sinkCapFf(d.corners[ki])
                        : tech_->cell(static_cast<std::size_t>(dst.cell))
                              .pin_cap_ff[d.corners[ki]];
        // The arc delay spans src output -> dst *output*, but the LUT chain
        // model ends at the dst input pin: target the chain at the desired
        // delay minus the dst's own (current) gate delay.
        const double dst_gate =
            trial_timing[ki].arrival[static_cast<std::size_t>(arc.dst)] -
            trial_timing[ki].in_arrival[static_cast<std::size_t>(arc.dst)];
        chain_ps[ki] = std::max(1.0, desired[ki] - dst_gate);
      }
      if (maxdev < opts_.min_delta_ps) continue;
      eco::ArcSolution asol = eco_engine.selectSolution(
          d.corners, chain_ps, ctx.direct_len[s], slews, loads);
      if (!asol.valid) continue;
      // Second pass: the new chain changes the slew into dst, which moves
      // dst's own gate delay; re-target the chain against the *predicted*
      // post-ECO dst gate delay.
      const network::ClockNode& dstn = d.tree.node(arc.dst);
      if (dstn.kind == NodeKind::Buffer) {
        const tech::Cell& dcell =
            tech_->cell(static_cast<std::size_t>(dstn.cell));
        for (std::size_t ki = 0; ki < nk; ++ki) {
          const std::size_t k = d.corners[ki];
          const double slew_pred = lut_->detailOutSlew(
              asol.p, lut_->wirelengths()[asol.q_idx], k,
              asol.u >= 2 ? lut_->uniformSlew(asol.p, asol.q_idx, k)
                          : slews[ki],
              loads[ki]);
          const double dload =
              trial_timing[ki].driver_load[static_cast<std::size_t>(arc.dst)];
          const double gate_pred = dcell.delay[k].lookup(slew_pred, dload);
          chain_ps[ki] = std::max(1.0, desired[ki] - gate_pred);
        }
        asol = eco_engine.selectSolution(d.corners, chain_ps,
                                         ctx.direct_len[s], slews, loads);
        if (!asol.valid) continue;
      }
      const std::vector<int> inserted = eco_engine.rebuildArc(trial, arc, asol);
      ++changed;
      // The rebuild changed arc.src's net (and so its load and everything
      // below); in_arrival[arc.src] is untouched, so arc.src roots the
      // dirty subtree.
      retime(arc.src);
      // SKEWLINT-ALLOW(LNT001: debug-only stderr dump; gates no result state)
      if (std::getenv("SKEWOPT_DEBUG_ECO") != nullptr) {
        for (std::size_t ki = 0; ki < nk; ++ki) {
          const double realized =
              trial_timing[ki].arrival[static_cast<std::size_t>(arc.dst)] -
              trial_timing[ki].arrival[static_cast<std::size_t>(arc.src)];
          std::fprintf(stderr,
                       "eco arc %d->%d ki %zu: orig %.0f desired %.0f chain "
                       "%.0f est %.0f realized %.0f (p=%zu q=%.0f u=%zu err %.1f)\n",
                       arc.src, arc.dst, ki, ctx.delay[s][ki], desired[ki],
                       chain_ps[ki], asol.est_delay[ki], realized, asol.p,
                       lut_->wirelengths()[asol.q_idx], asol.u, asol.err);
        }
      }

      // Trim: close nominal-corner undershoot with snaking on the arc's
      // last hop. Wire delay scales almost uniformly across corners, so
      // this cancels the common-mode part of the ECO quantization error.
      for (int pass = 0; pass < 2; ++pass) {
        const double realized =
            trial_timing[0].arrival[static_cast<std::size_t>(arc.dst)] -
            trial_timing[0].arrival[static_cast<std::size_t>(arc.src)];
        const double gap = desired[0] - realized;
        if (gap <= opts_.trim_threshold_ps) break;
        const int hop_driver = inserted.empty() ? arc.src : inserted.back();
        const auto& hop_kids = trial.tree.node(hop_driver).children;
        std::size_t pin = 0;
        bool found = false;
        for (std::size_t pi = 0; pi < hop_kids.size(); ++pi)
          if (hop_kids[pi] == arc.dst) {
            pin = pi;
            found = true;
          }
        if (!found) break;
        const tech::WireParams& w = tech_->wire(d.corners[0]);
        const network::ClockNode& hd = trial.tree.node(hop_driver);
        const double reff =
            (hd.kind == NodeKind::Buffer)
                ? cts::CtsEngine::effectiveDriveRes(
                      tech_->cell(static_cast<std::size_t>(hd.cell)),
                      d.corners[0])
                : 0.2;
        const double cur = trial.routing.extraOf(hop_driver, pin);
        const double sens = w.res_kohm_per_um * w.cap_ff_per_um * cur +
                            w.res_kohm_per_um * (loads[0] + 2.0) +
                            reff * w.cap_ff_per_um + 1e-4;
        const double extra = std::min(gap / sens, 500.0);
        if (extra < 1.0) break;
        trial.routing.addExtra(hop_driver, pin, extra);
        retime(hop_driver);
      }
    }

    std::string err;
    if (!trial.tree.validate(&err))
      throw std::logic_error("global ECO broke the tree: " + err);
    repairLocalSkew(trial, objective, before,
                    inc.has_value() ? &*inc : nullptr);
    pt.after = inc.has_value()
                   ? objective.evaluateFromTimings(trial, inc->timings())
                   : objective.evaluate(trial, timer_);
    pt.trial = std::make_shared<const Design>(std::move(trial));
    pt.changed = changed;
  };

  // Cross-job realize memo: a solved point whose LP solution matches a
  // prior run's bit-exactly (same design fingerprint) reuses that run's
  // realized candidate. Realization is deterministic in (options, design,
  // timing, x) — all pinned by the topology key and fingerprint — so a hit
  // cannot change the result, only skip the ECO + re-time that would
  // reproduce it.
  if (warm_in != nullptr) {
    for (SweepPoint& pt : points) {
      if (!pt.solved) continue;
      for (const RealizedPointMemo& memo : warm_in->realize_memo) {
        if (memo.fingerprint != fp || memo.x != pt.x) continue;
        pt.trial = memo.trial;
        pt.after = memo.after;
        pt.changed = memo.changed;
        ++res.realize_memo_hits;
        memo_hits_ctr.add();
        break;
      }
    }
  }

  std::vector<SweepPoint*> todo;
  for (SweepPoint& pt : points)
    if (pt.solved && pt.trial == nullptr) todo.push_back(&pt);
  static obs::Histogram& realize_hist = obs::MetricsRegistry::global().histogram(
      "skewopt_global_realize_ms", obs::defaultMsBuckets(),
      "Per-sweep-point ECO realization wall time");
  static obs::Counter& realized_arcs = obs::MetricsRegistry::global().counter(
      "skewopt_global_realized_arcs_total",
      "Arcs rebuilt by the global-stage ECO across sweep points");
  const auto realizeOne = [&](std::size_t i) {
    obs::Span realize_span("global.realize");
    realize_span.arg("u_index", static_cast<std::int64_t>(i));
    support::Stopwatch sw;
    realize(*todo[i]);
    res.lp_solves[todo[i]->stats_ix].realize_ms = sw.ms();
    realize_hist.observe(res.lp_solves[todo[i]->stats_ix].realize_ms);
    realized_arcs.add(todo[i]->changed);
  };
  if (opts_.parallel_realize && todo.size() > 1) {
    support::ThreadPool::shared().runSlices(todo.size(), realizeOne);
  } else {
    for (std::size_t i = 0; i < todo.size(); ++i) realizeOne(i);
  }

  // Capture this run's warm state before the pick below consumes the
  // trial designs. `warm_out` must not alias `warm_in` (the serve store
  // always hands out distinct snapshots).
  if (warm_out != nullptr) {
    warm_out->pass1_basis = lp::serializeBasis(vsol.basis);
    warm_out->model_fingerprint = fp;
    warm_out->latency_rows = std::move(latency_rows);
    warm_out->min_v_model = std::move(min_lp.model);
    warm_out->sweep_model = std::move(sweep_lp.model);
    warm_out->models_valid = true;
    warm_out->solve_derates = std::move(eff_derates);
    warm_out->pass1_valid = vsol.status == lp::Status::Optimal;
    warm_out->pass1_objective = vsol.objective;
    warm_out->pass1_iterations = vsol.iterations;
    warm_out->sweep_solutions.clear();
    for (const SweepPoint& pt : points)
      if (pt.solved)
        warm_out->sweep_solutions.push_back(
            {pt.u, pt.x, pt.iterations, pt.basis_after});
    constexpr std::size_t kMemoCap = 24;
    warm_out->realize_memo.clear();
    for (const SweepPoint& pt : points)
      if (pt.solved && pt.trial != nullptr &&
          warm_out->realize_memo.size() < kMemoCap)
        warm_out->realize_memo.push_back(
            {fp, pt.x, pt.trial, pt.after, pt.changed});
    if (warm_in != nullptr) {
      // Inherit prior entries (newest first already in store order) up to
      // the cap so alternating edits keep hitting.
      for (const RealizedPointMemo& memo : warm_in->realize_memo) {
        if (warm_out->realize_memo.size() >= kMemoCap) break;
        bool dup = false;
        for (const RealizedPointMemo& mine : warm_out->realize_memo)
          if (mine.fingerprint == memo.fingerprint && mine.x == memo.x) {
            dup = true;
            break;
          }
        if (!dup) warm_out->realize_memo.push_back(memo);
      }
    }
  }

  // Deterministic pick: walk the sweep points in index order with the
  // serial acceptance logic (strict improvement, earlier point wins ties).
  for (SweepPoint& pt : points) {
    if (!pt.solved) {
      res.candidates.push_back({pt.u, -1.0});
      continue;
    }
    res.candidates.push_back({pt.u, pt.after.sum_variation_ps});
    // Accept only if the realized local skew did not materially degrade.
    bool skew_ok = true;
    for (std::size_t ki = 0; ki < nk; ++ki)
      if (pt.after.local_skew_ps[ki] >
          before.local_skew_ps[ki] * opts_.local_skew_tolerance +
              opts_.local_skew_allowance_ps)
        skew_ok = false;
    if (skew_ok && pt.after.sum_variation_ps < best_sum) {
      best_sum = pt.after.sum_variation_ps;
      best = *pt.trial;
      improved = true;
      res.chosen_u_ps = pt.u;
      res.arcs_changed = pt.changed;
    }
  }

  if (improved) {
    d = std::move(best);
    res.sum_after_ps = best_sum;
    res.improved = true;
  }

  // Flight record: the whole stage from the final result, on the
  // orchestrating thread after the realize barrier (pool workers write
  // realize_ms into res.lp_solves above). Deterministic fields only —
  // solve_ms/realize_ms stay out so the record is bit-identical between
  // serial and parallel realization.
  if (obs::FlightRecorder* rec = obs::currentFlightRecorder();
      rec != nullptr) {
    rec->beginObject("global");
    rec->field("sum_before_ps", res.sum_before_ps);
    rec->field("sum_after_ps", res.sum_after_ps);
    rec->field("lp_min_sum_ps", res.lp_min_sum_ps);
    rec->field("lp_orig_sum_ps", res.lp_orig_sum_ps);
    rec->field("chosen_u_ps", res.chosen_u_ps);
    rec->field("arcs_in_lp", static_cast<std::int64_t>(res.arcs_in_lp));
    rec->field("arcs_changed", static_cast<std::int64_t>(res.arcs_changed));
    rec->field("lp_rows", static_cast<std::int64_t>(res.lp_rows));
    rec->field("lp_vars", static_cast<std::int64_t>(res.lp_vars));
    rec->field("lp_warm_hits", std::int64_t{res.lp_warm_hits});
    rec->field("lp_warm_misses", std::int64_t{res.lp_warm_misses});
    rec->field("lp_replays", std::int64_t{res.lp_replays});
    rec->field("realize_memo_hits", std::int64_t{res.realize_memo_hits});
    rec->field("improved", res.improved);
    rec->beginArray("lp_solves");
    for (const LpSolveStats& s : res.lp_solves) {
      rec->beginObject();
      rec->field("u_ps", s.u_ps);
      rec->field("iterations", std::int64_t{s.iterations});
      rec->field("refactorizations", std::int64_t{s.refactorizations});
      rec->field("warm_started", s.warm_started);
      rec->field("optimal", s.optimal);
      rec->endObject();
    }
    rec->endArray();
    rec->beginArray("candidates");
    for (const auto& [u, sum] : res.candidates) {
      rec->beginObject();
      rec->field("u_ps", u);
      rec->field("realized_sum_ps", sum);
      rec->endObject();
    }
    rec->endArray();
    rec->endObject();
  }
  check::gateDesign(d, timer_, chk, "global:output");
  return res;
}

GlobalLpProbe GlobalOptimizer::extractGlobalLp(const Design& d,
                                               const Objective& objective) const {
  GlobalLpProbe probe;
  if (d.pairs.empty()) return probe;
  const std::vector<sta::CornerTiming> timing = timer_.analyzeDesign(d);
  std::vector<std::vector<double>> lat(timing.size());
  for (std::size_t ki = 0; ki < timing.size(); ++ki)
    lat[ki] = timing[ki].arrival;
  const VariationReport before = objective.evaluateFromLatencies(d, lat);
  const LpContext ctx = buildContext(d, timing, before, opts_.max_pairs_lp,
                                     opts_.min_arc_delay_ps);
  if (ctx.slot_arc.empty()) return probe;
  for (const std::size_t pi : ctx.opt_pairs)
    probe.orig_sum_ps += before.v_pair_ps[pi];
  probe.min_v = buildLp(d, ctx, *lut_, objective, before, opts_.beta,
                        opts_.corner_dmax_derate, /*min_sum_v=*/true, 0.0)
                    .model;
  BuiltLp sweep = buildLp(d, ctx, *lut_, objective, before, opts_.beta,
                          opts_.corner_dmax_derate, /*min_sum_v=*/false,
                          probe.orig_sum_ps);
  probe.budget_row = sweep.model.numRows() - 1;
  probe.sweep = std::move(sweep.model);
  return probe;
}

}  // namespace skewopt::core
