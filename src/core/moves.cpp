#include "core/moves.h"

#include <algorithm>
#include <stdexcept>

#include "eco/eco.h"

namespace skewopt::core {

using network::ClockTree;
using network::Design;
using network::NodeKind;

const char* moveTypeName(MoveType t) {
  switch (t) {
    case MoveType::kSizeDisplace: return "I";
    case MoveType::kChildDisplaceSize: return "II";
    case MoveType::kReassign: return "III";
  }
  return "?";
}

std::string Move::describe(const Design& d) const {
  std::string s = std::string("type-") + moveTypeName(type) + " node " +
                  d.tree.node(node).name;
  if (type == MoveType::kReassign)
    s += " -> driver " + d.tree.node(new_parent).name;
  return s;
}

std::vector<Move> enumerateMoves(const Design& d, int buffer,
                                 const MoveEnumOptions& opts) {
  std::vector<Move> moves;
  const ClockTree& tree = d.tree;
  if (!tree.isValid(buffer) ||
      tree.node(buffer).kind != NodeKind::Buffer)
    return moves;
  const network::ClockNode& n = tree.node(buffer);
  const int ncells = static_cast<int>(d.tech->numCells());

  static const double kDirs[8][2] = {{0, 1},  {0, -1}, {1, 0},  {-1, 0},
                                     {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};

  // Type I: displacement x sizing of the buffer itself.
  for (const auto& dir : kDirs) {
    for (int step = -1; step <= 1; ++step) {
      if (step == 0 && !opts.include_no_sizing) continue;
      const int cell = n.cell + step;
      if (cell < 0 || cell >= ncells) continue;
      Move m;
      m.type = MoveType::kSizeDisplace;
      m.node = buffer;
      m.delta = {dir[0] * opts.step_um, dir[1] * opts.step_um};
      m.size_step = step;
      moves.push_back(m);
    }
  }

  // Type II: displacement x sizing of one child buffer. The paper resizes
  // "one of its child buffers"; we target the child driving the largest
  // subtree (the highest-leverage choice) to keep the 45-move budget.
  int pick = -1;
  std::size_t best_sinks = 0;
  for (const int c : n.children) {
    if (tree.node(c).kind != NodeKind::Buffer) continue;
    const std::size_t cnt = subtreeSinks(tree, c).size();
    if (pick < 0 || cnt > best_sinks) {
      pick = c;
      best_sinks = cnt;
    }
  }
  if (pick >= 0) {
    for (const auto& dir : kDirs) {
      for (int step = -1; step <= 1; step += 2) {
        const int cell = tree.node(pick).cell + step;
        if (cell < 0 || cell >= ncells) continue;
        Move m;
        m.type = MoveType::kChildDisplaceSize;
        m.node = buffer;
        m.delta = {dir[0] * opts.step_um, dir[1] * opts.step_um};
        m.size_step = step;
        m.child = pick;
        moves.push_back(m);
      }
    }
  }

  // Type III: reassign to a same-level driver inside the surgery box.
  if (n.parent >= 0) {
    const int cur_level = tree.level(n.parent);
    const geom::Rect box = geom::Rect::around(n.pos, opts.surgery_box_um / 2.0,
                                              opts.surgery_box_um / 2.0);
    std::vector<std::pair<double, int>> cands;
    for (std::size_t i = 0; i < tree.numNodes(); ++i) {
      const int id = static_cast<int>(i);
      if (!tree.isValid(id) || id == n.parent) continue;
      const network::ClockNode& cand = tree.node(id);
      if (cand.kind != NodeKind::Buffer) continue;
      if (!box.contains(cand.pos)) continue;
      if (tree.level(id) != cur_level) continue;
      if (tree.isAncestorOrSelf(buffer, id)) continue;  // would create cycle
      cands.push_back({geom::manhattan(n.pos, cand.pos), id});
    }
    std::sort(cands.begin(), cands.end());
    for (std::size_t i = 0; i < std::min(opts.max_reassign, cands.size());
         ++i) {
      Move m;
      m.type = MoveType::kReassign;
      m.node = buffer;
      m.new_parent = cands[i].second;
      moves.push_back(m);
    }
  }
  return moves;
}

std::vector<Move> enumerateAllMoves(const Design& d,
                                    const MoveEnumOptions& opts) {
  std::vector<Move> all;
  for (const int b : d.tree.buffers()) {
    std::vector<Move> m = enumerateMoves(d, b, opts);
    all.insert(all.end(), m.begin(), m.end());
  }
  return all;
}

void applyMove(Design& d, const Move& m) { applyMoveTracked(d, m); }

std::vector<int> applyMoveTracked(Design& d, const Move& m) {
  ClockTree& tree = d.tree;
  switch (m.type) {
    case MoveType::kSizeDisplace: {
      const geom::Point p = tree.node(m.node).pos;
      tree.moveNode(m.node, {p.x + m.delta.x, p.y + m.delta.y});
      if (m.size_step != 0)
        tree.resize(m.node, tree.node(m.node).cell + m.size_step);
      eco::Legalizer legal(*d.tech, d.floorplan);
      legal.legalize(d, {m.node});
      d.routing.rebuildAround(tree, m.node);
      // The parent's net changed (child pin moved/resized) and the node's
      // own net changed; the parent subtree covers both.
      return {tree.node(m.node).parent};
    }
    case MoveType::kChildDisplaceSize: {
      const geom::Point p = tree.node(m.node).pos;
      tree.moveNode(m.node, {p.x + m.delta.x, p.y + m.delta.y});
      tree.resize(m.child, tree.node(m.child).cell + m.size_step);
      eco::Legalizer legal(*d.tech, d.floorplan);
      legal.legalize(d, {m.node});
      d.routing.rebuildAround(tree, m.node);
      return {tree.node(m.node).parent};
    }
    case MoveType::kReassign: {
      const int old_parent = tree.node(m.node).parent;
      tree.reassignDriver(m.node, m.new_parent);
      d.routing.rebuildNet(tree, old_parent);
      d.routing.rebuildNet(tree, m.new_parent);
      return {old_parent, m.new_parent};
    }
  }
  return {};
}

void applyMoveUndoable(Design& d, const Move& m, UndoRecord* up) {
  const ClockTree& tree = d.tree;
  UndoRecord& u = *up;
  u.node_count = 0;
  u.net_count = 0;
  u.reassigned = -1;
  u.old_parent = -1;
  u.old_child_index = 0;
  auto saveNode = [&](int id) {
    u.nodes[u.node_count++] = {id, tree.node(id).pos, tree.node(id).cell};
  };
  auto saveNet = [&](int driver) {
    UndoRecord::NetState& ns = u.nets[u.net_count++];
    ns.driver = driver;
    if (const route::SteinerTree* net = d.routing.net(driver)) {
      ns.had_net = true;
      ns.net = *net;  // copy-assign into the slot, reusing its buffers
    } else {
      ns.had_net = false;
    }
  };
  switch (m.type) {
    case MoveType::kSizeDisplace:
    case MoveType::kChildDisplaceSize: {
      saveNode(m.node);
      if (m.type == MoveType::kChildDisplaceSize) saveNode(m.child);
      // rebuildAround touches the parent's net and the node's own net.
      saveNet(tree.node(m.node).parent);
      saveNet(m.node);
      break;
    }
    case MoveType::kReassign: {
      u.reassigned = m.node;
      u.old_parent = tree.node(m.node).parent;
      const auto& kids = tree.node(u.old_parent).children;
      u.old_child_index = static_cast<std::size_t>(
          std::find(kids.begin(), kids.end(), m.node) - kids.begin());
      saveNet(u.old_parent);
      saveNet(m.new_parent);
      break;
    }
  }
  u.dirty = applyMoveTracked(d, m);
}

UndoRecord applyMoveUndoable(Design& d, const Move& m) {
  UndoRecord u;
  applyMoveUndoable(d, m, &u);
  return u;
}

void undoMove(Design& d, const UndoRecord& u) {
  if (u.reassigned >= 0)
    d.tree.reassignDriverAt(u.reassigned, u.old_parent, u.old_child_index);
  for (std::size_t i = u.node_count; i-- > 0;) {
    const UndoRecord::NodeState& ns = u.nodes[i];
    d.tree.moveNode(ns.id, ns.pos);
    if (d.tree.node(ns.id).cell != ns.cell) d.tree.resize(ns.id, ns.cell);
  }
  for (std::size_t i = 0; i < u.net_count; ++i) {
    const UndoRecord::NetState& ns = u.nets[i];
    if (ns.had_net)
      d.routing.restoreNet(ns.driver, ns.net);
    else
      d.routing.eraseNet(ns.driver);
  }
}

std::vector<int> subtreeSinks(const ClockTree& tree, int node) {
  std::vector<int> sinks;
  std::vector<int> stack = {node};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const network::ClockNode& n = tree.node(v);
    if (n.kind == NodeKind::Sink) {
      sinks.push_back(v);
      continue;
    }
    for (const int c : n.children) stack.push_back(c);
  }
  return sinks;
}

}  // namespace skewopt::core
