// The complete optimization framework (paper Figure 1): global LP-guided
// optimization followed by local ML-guided iterative optimization, with the
// Table 5 metric set collected before and after.
#pragma once

#include <string>

#include "core/global_opt.h"
#include "core/local_opt.h"
#include "core/objective.h"
#include "core/predictor.h"
#include "eco/eco.h"
#include "network/design.h"

namespace skewopt::core {

/// The Table 5 row for one design state.
struct DesignMetrics {
  double sum_variation_ps = 0.0;
  std::vector<double> local_skew_ps;  ///< per active corner
  std::size_t clock_cells = 0;        ///< buffers (+1 root driver)
  double power_mw = 0.0;              ///< at the nominal corner
  double area_um2 = 0.0;
};

DesignMetrics computeMetrics(const network::Design& d,
                             const Objective& objective,
                             const sta::Timer& timer);

enum class FlowMode { kGlobal, kLocal, kGlobalLocal };
const char* flowModeName(FlowMode m);

struct FlowOptions {
  GlobalOptions global;
  LocalOptions local;
  /// Invariant-checker gate level (see src/check). The flow verifies the
  /// incoming and outgoing design and pushes this level down into the
  /// global and local stages; a gate with errors throws
  /// check::CheckFailure. SKEWOPT_CHECK_LEVEL overrides.
  check::Level check_level = check::Level::kCheap;
  /// Record the job's optimization trajectory into
  /// FlowResult::flight_record (obs::FlightRecorder — deterministic JSON,
  /// bit-identical across serial/parallel runs). Off by default; never
  /// affects the optimization result.
  bool record = false;
};

/// Wall-clock stage breakdown of one Flow::run, always measured
/// (support::Stopwatch — injectable clock, so deterministic in tests).
/// Surfaced in CLI reports and the serve RESULT payload.
struct StageTimings {
  double global_ms = 0.0;  ///< global stage (0 when the stage didn't run)
  double local_ms = 0.0;   ///< local stage (0 when the stage didn't run)
  double total_ms = 0.0;   ///< whole run() including metrics and gates
};

struct FlowResult {
  DesignMetrics before;
  DesignMetrics after;
  GlobalResult global;  ///< meaningful for kGlobal / kGlobalLocal
  LocalResult local;    ///< meaningful for kLocal / kGlobalLocal
  StageTimings stage_ms;
  /// Deterministic JSON flight record of the run (empty unless
  /// FlowOptions::record was set; see docs/observability.md for the
  /// schema). Excluded from wall-time fields by construction, so the
  /// bytes are identical between serial and parallel runs.
  std::string flight_record;
};

/// Everything one completed flow run leaves behind for a later run over the
/// same design topology (the serve warm-state store keeps one of these per
/// topology key). The snapshot describes the *initial* (pre-optimization)
/// design: a delta job whose edits touch a few sinks seeds its timer from
/// `initial_timing`, re-propagates only the subtrees whose node positions
/// differ, and feeds `global` back into the LP stage. A mismatched snapshot
/// (different node count or corners) degrades to a cold run.
struct FlowWarmState {
  std::vector<sta::CornerTiming> initial_timing;  ///< per active corner
  std::vector<geom::Point> positions;  ///< initial node positions by id
  std::uint64_t fingerprint = 0;  ///< designFingerprint of the initial design
  GlobalWarmState global;
};

class Flow {
 public:
  Flow(const tech::TechModel& tech, const eco::StageDelayLut& lut,
       FlowOptions opts = {})
      : tech_(&tech), lut_(&lut), opts_(opts), timer_(tech) {}

  /// Runs the selected flow on the design in place. `model` may be null
  /// (the local stage then predicts analytically).
  FlowResult run(network::Design& d, FlowMode mode,
                 const DeltaLatencyModel* model) const;

  /// Warm-start entry point: `warm_in` (may be null) is a prior run's
  /// state over the same topology, `warm_out` (may be null, must not alias
  /// `warm_in`) captures this run's state. Results are equal to the cold
  /// run — an unusable `warm_in` just falls back silently.
  FlowResult run(network::Design& d, FlowMode mode,
                 const DeltaLatencyModel* model, const FlowWarmState* warm_in,
                 FlowWarmState* warm_out) const;

 private:
  const tech::TechModel* tech_;
  const eco::StageDelayLut* lut_;
  FlowOptions opts_;
  sta::Timer timer_;
};

}  // namespace skewopt::core
