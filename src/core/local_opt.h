// Local iterative optimization (paper Sec. 4.2, Algorithm 2).
//
// Each round: enumerate every candidate move (Table 2), predict each move's
// skew-variation reduction with the delta-latency predictor, sort, and try
// the top-R predictions against the golden timer. Commit the best realized
// improvement and re-enumerate; when a chunk of R yields no improvement,
// fall through to the next R; terminate when the predictor offers no move
// with a meaningful predicted reduction or the iteration budget is spent.
#pragma once

#include <cstddef>
#include <vector>

#include "check/diagnostics.h"
#include "core/objective.h"
#include "core/predictor.h"
#include "network/design.h"

namespace skewopt::core {

struct LocalOptions {
  std::size_t r = 5;               ///< paper: R = 5 trial moves per round
  std::size_t max_iterations = 25;
  std::size_t max_chunks_per_round = 20;  ///< give up a round after this many R-chunks
  double min_predicted_gain_ps = 0.5;
  double local_skew_tolerance = 1.03;
  /// Evaluate each chunk's R golden trials on the shared thread pool, as
  /// the paper does ("pick the top R moves to implement in R individual
  /// threads"), and score enumerated moves on the same pool. Each worker
  /// owns one persistent design replica plus a scoped-retime scratch timer
  /// reused across all chunks and rounds — no per-trial copies. Results
  /// are bit-identical to the serial path.
  bool parallel_trials = true;
  /// Rank each round's candidates through MovePredictor::scoreBatch (one
  /// call per round over the whole candidate table) instead of one
  /// predictedVariationDelta call per move. Scores — and therefore the
  /// accepted-move history — are identical either way (asserted by tests);
  /// off exists as the differential baseline.
  bool batch_scoring = true;
  /// Trial-worker count; 0 = one per shared-pool thread. Setting this above
  /// the core count still interleaves real concurrency (the TSan test uses
  /// it to exercise races on single-core hosts).
  std::size_t threads = 0;
  /// Invariant-checker gate level (see src/check) applied to the design
  /// after the move loop. SKEWOPT_CHECK_LEVEL overrides.
  check::Level check_level = check::Level::kCheap;
  MoveEnumOptions enumerate;
};

struct LocalIteration {
  std::size_t round = 0;
  MoveType type = MoveType::kSizeDisplace;
  double predicted_delta_ps = 0.0;  ///< predicted objective change
  double realized_delta_ps = 0.0;   ///< golden objective change
  double sum_after_ps = 0.0;
};

struct LocalResult {
  double sum_before_ps = 0.0;
  double sum_after_ps = 0.0;
  std::vector<LocalIteration> history;  ///< committed moves, in order
  std::size_t golden_evaluations = 0;
  std::size_t candidate_moves = 0;  ///< enumerated+scored in the last round
  bool improved = false;
};

class LocalOptimizer {
 public:
  explicit LocalOptimizer(const tech::TechModel& tech, LocalOptions opts = {})
      : tech_(&tech), opts_(opts), timer_(tech) {}

  /// Optimizes in place; `model` may be null (pure analytical prediction,
  /// estimator index 0 — the Figure 6/8 comparison baselines).
  LocalResult run(network::Design& d, const Objective& objective,
                  const DeltaLatencyModel* model,
                  std::size_t analytic_fallback = 0) const;

  /// Figure 8's random baseline: per round, R uniformly random candidate
  /// moves are tried against the golden timer instead of the predictor's
  /// top R; the best improving one is committed.
  LocalResult runRandom(network::Design& d, const Objective& objective,
                        std::uint64_t seed) const;

 private:
  const tech::TechModel* tech_;
  LocalOptions opts_;
  sta::Timer timer_;
};

}  // namespace skewopt::core
