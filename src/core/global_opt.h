// Global skew-variation optimization (paper Sec. 4.1).
//
// Builds the LP of Eqs. (4)-(11) over per-arc, per-corner delay changes:
//
//   minimize    sum |Delta_j^k|                                  (4)
//   subject to  sum over pairs of V_{i,i'} <= U                  (5)
//               V >= +/- (alpha_k skew^k - alpha_k' skew^k')     (6)
//               |skew^k(new)| <= |skew^k(orig)|  (local skew)    (7)
//               |var vs c0 (new)| <= |var vs c0 (orig)|          (8)
//               path latency <= Dmax^k                           (9)
//               Dmin <= D + Delta <= beta * D                    (10)
//               W_min <= (D+Delta)^k / (D+Delta)^k' <= W_max     (11)
//
// with |Delta| split into Delta+ - Delta- (footnote 2 of the paper); (10)
// folds into variable bounds; W_min/W_max come from the characterized
// stage-delay LUT envelope (Figure 2). The upper bound U is swept between
// the LP's own minimum achievable sum of variations (found by first solving
// a min-sum-V variant) and the original sum; each LP solution is realized
// with the Algorithm-1 ECO flow, re-timed with the golden timer, and the
// best realized result is kept.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/diagnostics.h"
#include "core/objective.h"
#include "eco/eco.h"
#include "lp/lp.h"
#include "network/design.h"
#include "sta/incremental.h"
#include "sta/timer.h"

namespace skewopt::core {

struct GlobalOptions {
  double beta = 1.2;              ///< Constraint (10) upper factor
  std::size_t max_pairs_lp = 150; ///< top critical pairs entering the LP
  /// Arcs whose nominal delay is below this threshold (leaf stubs) are kept
  /// constant: they contribute little variation and excluding them keeps
  /// the LP compact.
  double min_arc_delay_ps = 6.0;
  /// After each arc rebuild, snake extra wire to close a nominal-corner
  /// undershoot of more than this (common-mode ECO error cancellation).
  double trim_threshold_ps = 2.0;
  /// Post-ECO repair passes: each pass snakes the fast sink of the single
  /// worst violator of the local-skew acceptance envelope (broad repair
  /// would cascade through shared driver loads).
  std::size_t repair_passes = 8;
  double repair_threshold_ps = 2.0;  ///< land this far inside the envelope
  /// Sweep positions between the LP's minimum achievable sum (t=0) and the
  /// original sum (t=1).
  std::vector<double> u_sweep = {0.05, 0.2, 0.4};
  double min_delta_ps = 1.5;      ///< ECO threshold on |Delta| per arc
  /// Realized local-skew acceptance gate: the LP forbids degradation, but
  /// the discrete ECO adds noise, so a candidate is accepted when each
  /// corner's realized local skew stays within tolerance * before +
  /// allowance.
  double local_skew_tolerance = 1.05;
  double local_skew_allowance_ps = 12.0;
  /// Algorithm-1 tie-breaks (see EcoEngine): per-inverter-pair penalty keeps
  /// the cell-count overhead negligible; overshoot weight biases toward
  /// trim-recoverable undershoot.
  double eco_pair_penalty_ps = 8.0;
  double eco_overshoot_weight = 2.0;
  /// Re-enter each U-sweep LP from the previous optimal basis (the sweep
  /// changes one row bound per step, so a warm re-solve is a handful of
  /// iterations). Off forces every LP to solve cold.
  bool warm_start_sweep = true;
  /// Realize the sweep candidates (ECO + golden re-time) concurrently on
  /// the shared ThreadPool, one Design replica per sweep point. The
  /// best-candidate pick stays in sweep order and is bit-identical to the
  /// serial path.
  bool parallel_realize = true;
  /// Invariant-checker gate level (see src/check): the built LPs are
  /// verified before solving and the optimized design before returning;
  /// kDeep adds the ratio-envelope scan and a full multi-corner re-time.
  /// SKEWOPT_CHECK_LEVEL overrides (check::effectiveLevel).
  check::Level check_level = check::Level::kCheap;
  /// Per-active-corner multiplier on the Dmax bound of the latency
  /// constraint (9): entry ki scales corner ki's original maximum sink
  /// latency (missing entries default to 1.0, empty means no derating).
  /// The derate enters only row right-hand sides, so a delta job with
  /// changed derates re-bounds the cached LP rows via
  /// GlobalWarmState::latency_rows instead of rebuilding the model.
  std::vector<double> corner_dmax_derate;
  lp::SolverOptions lp;
};

/// Per-LP-solve statistics of one global run (pass 1 first, then one entry
/// per attempted sweep point).
struct LpSolveStats {
  double u_ps = 0.0;  ///< budget U (0 for the pass-1 min-sum-V solve)
  int iterations = 0;
  int refactorizations = 0;
  bool warm_started = false;
  bool optimal = false;
  double solve_ms = 0.0;    ///< LP wall time
  double realize_ms = 0.0;  ///< ECO + re-time wall time (0 when LP failed)
};

struct GlobalResult {
  double sum_before_ps = 0.0;
  double sum_after_ps = 0.0;
  double lp_min_sum_ps = 0.0;  ///< V* of the min-sum-V LP (selected pairs)
  double lp_orig_sum_ps = 0.0; ///< original sum over the selected pairs
  double chosen_u_ps = 0.0;
  std::size_t arcs_in_lp = 0;
  std::size_t arcs_changed = 0;
  std::size_t lp_rows = 0;
  std::size_t lp_vars = 0;
  int lp_iterations = 0;
  bool improved = false;
  /// (U, realized full-objective sum) per sweep candidate; -1 if ECO failed.
  std::vector<std::pair<double, double>> candidates;
  /// One entry per LP solved (pass 1, then each sweep point).
  std::vector<LpSolveStats> lp_solves;
  int lp_warm_hits = 0;    ///< sweep solves that accepted a warm basis
  int lp_warm_misses = 0;  ///< sweep solves that fell back to a cold start
  /// Cross-job warm-start effects of this run (all zero on cold runs):
  bool reused_models = false;     ///< LP models re-bounded, not rebuilt
  int realize_memo_hits = 0;      ///< sweep points served from the memo
  int lp_replays = 0;             ///< LP solves replayed from cached solutions
};

/// Fingerprint of everything a global run's realization depends on beyond
/// the spec-level topology key: node placement/cell assignment and the
/// exact per-corner timing bits of the (initial) design. Two runs whose
/// topology keys and fingerprints both match solve coefficient-identical
/// LPs and realize identical candidates for identical LP solutions.
std::uint64_t designFingerprint(const network::Design& d,
                                const std::vector<sta::CornerTiming>& timing);

/// One realized sweep point memoized for cross-job reuse. A hit requires
/// the design fingerprint and the full LP solution vector to match
/// bit-exactly, so a hit can never change a result — it only skips the
/// deterministic ECO + golden re-time that would reproduce it.
struct RealizedPointMemo {
  std::uint64_t fingerprint = 0;
  std::vector<double> x;        ///< LP solution the point was realized from
  /// Realized candidate design, shared (immutable) so capturing a run's
  /// points into the memo does not copy whole designs.
  std::shared_ptr<const network::Design> trial;
  VariationReport after;        ///< its full evaluation
  std::size_t changed = 0;      ///< arcs rebuilt by the ECO
};

/// Solver and realization state captured from one global run for reuse by
/// a later run over the same design topology (serve keys its warm-state
/// store by serve::topologyKey, which pins every field of the spec except
/// the delta-editable ones: U sweep, corner derates, moved sinks). The
/// basis blobs are stored serialized (lp::serializeBasis) so a corrupt or
/// wrong-shaped entry degrades to a cold solve instead of undefined
/// behavior. Contract: a warm state may only be fed back into an optimizer
/// whose options differ at most in u_sweep and corner_dmax_derate.
///
/// Every reuse here is an exact replay, never a heuristic seed: a cached
/// solution or realized point is consumed only when the inputs that
/// produced it (fingerprint, effective derates, budget bound, LP solution
/// vector) match the current run's bit-for-bit, in which case the cached
/// value IS what the cold computation would produce. Seeding the simplex
/// with a foreign basis is deliberately not done — on degenerate models it
/// converges to an alternate optimal vertex whose low-order bits differ
/// from the cold solve, breaking the delta==cold guarantee.
struct GlobalWarmState {
  std::vector<unsigned char> pass1_basis;  ///< serialized pass-1 optimum
  /// Cached LP models, valid only while the design fingerprint matches
  /// (identical placement + timing bits): a derate-only edit re-bounds the
  /// latency rows below instead of rebuilding ~2k rows from scratch.
  bool models_valid = false;
  std::uint64_t model_fingerprint = 0;
  lp::Model min_v_model;
  lp::Model sweep_model;
  /// One entry per constraint-(9) row (same row indices in both models):
  /// the row's upper bound is derate(ki) * dmax - lat.
  struct LatencyRow {
    int row = -1;
    std::size_t ki = 0;
    double dmax = 0.0;  ///< original (underated) max latency of corner ki
    double lat = 0.0;   ///< original path latency of the row's sink
  };
  std::vector<LatencyRow> latency_rows;
  std::vector<RealizedPointMemo> realize_memo;
  /// Effective per-active-corner derates the cached solutions were solved
  /// under (derateOf semantics: missing entries are 1.0). Solutions replay
  /// only when these match the current run's bitwise — then the re-bounded
  /// models are bit-identical to the ones that produced the cache.
  std::vector<double> solve_derates;
  bool pass1_valid = false;     ///< pass-1 solution fields below are usable
  double pass1_objective = 0.0; ///< pass-1 optimum (lp_min_sum_ps)
  int pass1_iterations = 0;
  /// One solved sweep point, in solve order. Replay is prefix-only: the
  /// sweep LPs chain bases serially, so point i's cached solution is the
  /// cold answer only if every earlier point replayed too (same chain
  /// state). `basis` is the chain basis right after this point's solve.
  struct SweptSolution {
    double u = 0.0;  ///< budget bound of row (5), bitwise replay key
    std::vector<double> x;
    int iterations = 0;
    std::vector<unsigned char> basis;
  };
  std::vector<SweptSolution> sweep_solutions;
};

/// Bench/test probe: the exact LPs run() would solve on a design — the
/// pass-1 min-sum-V model and the sweep model, whose budget row (5) is
/// appended last so it can be re-bounded per sweep point with
/// Model::setRowBounds. The pass-1 optimal basis extends to the sweep
/// model by appending one Basic entry for the budget slack.
struct GlobalLpProbe {
  lp::Model min_v;
  lp::Model sweep;
  int budget_row = -1;
  double orig_sum_ps = 0.0;  ///< original sum over the selected pairs
};

class GlobalOptimizer {
 public:
  GlobalOptimizer(const tech::TechModel& tech, const eco::StageDelayLut& lut,
                  GlobalOptions opts = {})
      : tech_(&tech), lut_(&lut), opts_(opts), timer_(tech) {}

  /// Optimizes the design in place (keeps the original when no sweep
  /// candidate realizes an improvement).
  GlobalResult run(network::Design& d, const Objective& objective) const;

  /// Warm-start entry point. `seed` (may be null) is an incremental timer
  /// already holding the timing of `d` — bit-identical to
  /// analyzeDesign(d) by the IncrementalTimer contract — and switches the
  /// whole run, including candidate realization, to incremental dirty-
  /// subtree retiming. `warm_in` (may be null) supplies a prior run's
  /// cached models, recorded solutions, and realize memo; `warm_out` (may
  /// be null)
  /// captures this run's state for the next delta. Results are equal to
  /// the cold run(d, objective) (asserted by the serve differential
  /// tests); only the work expended differs.
  GlobalResult run(network::Design& d, const Objective& objective,
                   const sta::IncrementalTimer* seed,
                   const GlobalWarmState* warm_in,
                   GlobalWarmState* warm_out) const;

  /// Builds the global LPs for `d` without running the sweep (see
  /// GlobalLpProbe). Used by the LP benchmarks and warm-start tests.
  GlobalLpProbe extractGlobalLp(const network::Design& d,
                                const Objective& objective) const;

 private:
  void repairLocalSkew(network::Design& trial, const Objective& objective,
                       const VariationReport& before,
                       sta::IncrementalTimer* inc) const;

  const tech::TechModel* tech_;
  const eco::StageDelayLut* lut_;
  GlobalOptions opts_;
  sta::Timer timer_;
};

/// Routed length of an arc (sum of its hop path lengths), um.
double arcRoutedLength(const network::Design& d, const network::Arc& arc);

}  // namespace skewopt::core
