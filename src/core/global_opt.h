// Global skew-variation optimization (paper Sec. 4.1).
//
// Builds the LP of Eqs. (4)-(11) over per-arc, per-corner delay changes:
//
//   minimize    sum |Delta_j^k|                                  (4)
//   subject to  sum over pairs of V_{i,i'} <= U                  (5)
//               V >= +/- (alpha_k skew^k - alpha_k' skew^k')     (6)
//               |skew^k(new)| <= |skew^k(orig)|  (local skew)    (7)
//               |var vs c0 (new)| <= |var vs c0 (orig)|          (8)
//               path latency <= Dmax^k                           (9)
//               Dmin <= D + Delta <= beta * D                    (10)
//               W_min <= (D+Delta)^k / (D+Delta)^k' <= W_max     (11)
//
// with |Delta| split into Delta+ - Delta- (footnote 2 of the paper); (10)
// folds into variable bounds; W_min/W_max come from the characterized
// stage-delay LUT envelope (Figure 2). The upper bound U is swept between
// the LP's own minimum achievable sum of variations (found by first solving
// a min-sum-V variant) and the original sum; each LP solution is realized
// with the Algorithm-1 ECO flow, re-timed with the golden timer, and the
// best realized result is kept.
#pragma once

#include <cstddef>
#include <vector>

#include "check/diagnostics.h"
#include "core/objective.h"
#include "eco/eco.h"
#include "lp/lp.h"
#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::core {

struct GlobalOptions {
  double beta = 1.2;              ///< Constraint (10) upper factor
  std::size_t max_pairs_lp = 150; ///< top critical pairs entering the LP
  /// Arcs whose nominal delay is below this threshold (leaf stubs) are kept
  /// constant: they contribute little variation and excluding them keeps
  /// the LP compact.
  double min_arc_delay_ps = 6.0;
  /// After each arc rebuild, snake extra wire to close a nominal-corner
  /// undershoot of more than this (common-mode ECO error cancellation).
  double trim_threshold_ps = 2.0;
  /// Post-ECO repair passes: each pass snakes the fast sink of the single
  /// worst violator of the local-skew acceptance envelope (broad repair
  /// would cascade through shared driver loads).
  std::size_t repair_passes = 8;
  double repair_threshold_ps = 2.0;  ///< land this far inside the envelope
  /// Sweep positions between the LP's minimum achievable sum (t=0) and the
  /// original sum (t=1).
  std::vector<double> u_sweep = {0.05, 0.2, 0.4};
  double min_delta_ps = 1.5;      ///< ECO threshold on |Delta| per arc
  /// Realized local-skew acceptance gate: the LP forbids degradation, but
  /// the discrete ECO adds noise, so a candidate is accepted when each
  /// corner's realized local skew stays within tolerance * before +
  /// allowance.
  double local_skew_tolerance = 1.05;
  double local_skew_allowance_ps = 12.0;
  /// Algorithm-1 tie-breaks (see EcoEngine): per-inverter-pair penalty keeps
  /// the cell-count overhead negligible; overshoot weight biases toward
  /// trim-recoverable undershoot.
  double eco_pair_penalty_ps = 8.0;
  double eco_overshoot_weight = 2.0;
  /// Re-enter each U-sweep LP from the previous optimal basis (the sweep
  /// changes one row bound per step, so a warm re-solve is a handful of
  /// iterations). Off forces every LP to solve cold.
  bool warm_start_sweep = true;
  /// Realize the sweep candidates (ECO + golden re-time) concurrently on
  /// the shared ThreadPool, one Design replica per sweep point. The
  /// best-candidate pick stays in sweep order and is bit-identical to the
  /// serial path.
  bool parallel_realize = true;
  /// Invariant-checker gate level (see src/check): the built LPs are
  /// verified before solving and the optimized design before returning;
  /// kDeep adds the ratio-envelope scan and a full multi-corner re-time.
  /// SKEWOPT_CHECK_LEVEL overrides (check::effectiveLevel).
  check::Level check_level = check::Level::kCheap;
  lp::SolverOptions lp;
};

/// Per-LP-solve statistics of one global run (pass 1 first, then one entry
/// per attempted sweep point).
struct LpSolveStats {
  double u_ps = 0.0;  ///< budget U (0 for the pass-1 min-sum-V solve)
  int iterations = 0;
  int refactorizations = 0;
  bool warm_started = false;
  bool optimal = false;
  double solve_ms = 0.0;    ///< LP wall time
  double realize_ms = 0.0;  ///< ECO + re-time wall time (0 when LP failed)
};

struct GlobalResult {
  double sum_before_ps = 0.0;
  double sum_after_ps = 0.0;
  double lp_min_sum_ps = 0.0;  ///< V* of the min-sum-V LP (selected pairs)
  double lp_orig_sum_ps = 0.0; ///< original sum over the selected pairs
  double chosen_u_ps = 0.0;
  std::size_t arcs_in_lp = 0;
  std::size_t arcs_changed = 0;
  std::size_t lp_rows = 0;
  std::size_t lp_vars = 0;
  int lp_iterations = 0;
  bool improved = false;
  /// (U, realized full-objective sum) per sweep candidate; -1 if ECO failed.
  std::vector<std::pair<double, double>> candidates;
  /// One entry per LP solved (pass 1, then each sweep point).
  std::vector<LpSolveStats> lp_solves;
  int lp_warm_hits = 0;    ///< sweep solves that accepted a warm basis
  int lp_warm_misses = 0;  ///< sweep solves that fell back to a cold start
};

/// Bench/test probe: the exact LPs run() would solve on a design — the
/// pass-1 min-sum-V model and the sweep model, whose budget row (5) is
/// appended last so it can be re-bounded per sweep point with
/// Model::setRowBounds. The pass-1 optimal basis extends to the sweep
/// model by appending one Basic entry for the budget slack.
struct GlobalLpProbe {
  lp::Model min_v;
  lp::Model sweep;
  int budget_row = -1;
  double orig_sum_ps = 0.0;  ///< original sum over the selected pairs
};

class GlobalOptimizer {
 public:
  GlobalOptimizer(const tech::TechModel& tech, const eco::StageDelayLut& lut,
                  GlobalOptions opts = {})
      : tech_(&tech), lut_(&lut), opts_(opts), timer_(tech) {}

  /// Optimizes the design in place (keeps the original when no sweep
  /// candidate realizes an improvement).
  GlobalResult run(network::Design& d, const Objective& objective) const;

  /// Builds the global LPs for `d` without running the sweep (see
  /// GlobalLpProbe). Used by the LP benchmarks and warm-start tests.
  GlobalLpProbe extractGlobalLp(const network::Design& d,
                                const Objective& objective) const;

 private:
  void repairLocalSkew(network::Design& trial, const Objective& objective,
                       const VariationReport& before) const;

  const tech::TechModel* tech_;
  const eco::StageDelayLut* lut_;
  GlobalOptions opts_;
  sta::Timer timer_;
};

/// Routed length of an arc (sum of its hop path lengths), um.
double arcRoutedLength(const network::Design& d, const network::Arc& arc);

}  // namespace skewopt::core
