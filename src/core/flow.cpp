#include "core/flow.h"

#include "check/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/stopwatch.h"

namespace skewopt::core {

namespace {

obs::Histogram& flowStageMs(const char* name, const char* help) {
  return obs::MetricsRegistry::global().histogram(
      name, obs::defaultMsBuckets(), help);
}

}  // namespace

const char* flowModeName(FlowMode m) {
  switch (m) {
    case FlowMode::kGlobal: return "global";
    case FlowMode::kLocal: return "local";
    case FlowMode::kGlobalLocal: return "global-local";
  }
  return "?";
}

DesignMetrics computeMetrics(const network::Design& d,
                             const Objective& objective,
                             const sta::Timer& timer) {
  DesignMetrics m;
  const VariationReport r = objective.evaluate(d, timer);
  m.sum_variation_ps = r.sum_variation_ps;
  m.local_skew_ps = r.local_skew_ps;
  m.clock_cells = d.tree.numBuffers();
  m.power_mw = sta::clockTreePowerMw(d, d.corners.front());
  m.area_um2 = sta::clockCellAreaUm2(d);
  return m;
}

FlowResult Flow::run(network::Design& d, FlowMode mode,
                     const DeltaLatencyModel* model) const {
  static obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "skewopt_flow_runs_total", "Flow::run invocations");
  static obs::Histogram& global_hist =
      flowStageMs("skewopt_flow_global_stage_ms", "Global stage wall time");
  static obs::Histogram& local_hist =
      flowStageMs("skewopt_flow_local_stage_ms", "Local stage wall time");
  static obs::Histogram& total_hist =
      flowStageMs("skewopt_flow_total_ms", "Whole Flow::run wall time");
  runs.add();

  obs::Span flow_span("flow.run");
  flow_span.arg("mode", static_cast<std::int64_t>(mode));
  support::Stopwatch total_sw;

  const check::Level chk = check::effectiveLevel(opts_.check_level);
  {
    obs::Span gate_span("flow.gate_input");
    check::gateDesign(d, timer_, chk, "flow:input");
  }

  // Alphas are locked to the incoming tree (they are an input parameter of
  // the formulation).
  Objective objective(d, timer_);
  FlowResult res;
  {
    obs::Span metrics_span("flow.metrics_before");
    res.before = computeMetrics(d, objective, timer_);
  }

  if (mode == FlowMode::kGlobal || mode == FlowMode::kGlobalLocal) {
    obs::Span stage_span("flow.global");
    support::Stopwatch sw;
    GlobalOptions gopts = opts_.global;
    gopts.check_level = chk;
    GlobalOptimizer gopt(*tech_, *lut_, gopts);
    res.global = gopt.run(d, objective);
    res.stage_ms.global_ms = sw.ms();
    global_hist.observe(res.stage_ms.global_ms);
  }
  if (mode == FlowMode::kLocal || mode == FlowMode::kGlobalLocal) {
    obs::Span stage_span("flow.local");
    support::Stopwatch sw;
    LocalOptions lopts = opts_.local;
    lopts.check_level = chk;
    LocalOptimizer lopt(*tech_, lopts);
    res.local = lopt.run(d, objective, model);
    res.stage_ms.local_ms = sw.ms();
    local_hist.observe(res.stage_ms.local_ms);
  }
  {
    obs::Span metrics_span("flow.metrics_after");
    res.after = computeMetrics(d, objective, timer_);
  }
  {
    obs::Span gate_span("flow.gate_output");
    check::gateDesign(d, timer_, chk, "flow:output");
  }
  res.stage_ms.total_ms = total_sw.ms();
  total_hist.observe(res.stage_ms.total_ms);
  return res;
}

}  // namespace skewopt::core
