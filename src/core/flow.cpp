#include "core/flow.h"

#include <optional>
#include <stdexcept>

#include "check/check.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "support/stopwatch.h"

namespace skewopt::core {

namespace {

obs::Histogram& flowStageMs(const char* name, const char* help) {
  return obs::MetricsRegistry::global().histogram(
      name, obs::defaultMsBuckets(), help);
}

DesignMetrics metricsFromReport(const network::Design& d,
                                const VariationReport& r) {
  DesignMetrics m;
  m.sum_variation_ps = r.sum_variation_ps;
  m.local_skew_ps = r.local_skew_ps;
  m.clock_cells = d.tree.numBuffers();
  m.power_mw = sta::clockTreePowerMw(d, d.corners.front());
  m.area_um2 = sta::clockCellAreaUm2(d);
  return m;
}

/// Builds the seeded incremental timer for a warm run, or nullopt when the
/// snapshot does not fit this design (node count, corners) — the caller
/// then runs cold. The dirty set is derived by diffing the snapshot's node
/// positions against the freshly built design: a moved sink dirties its
/// parent (whose net geometry changed), which covers the sink itself.
std::optional<sta::IncrementalTimer> seedFromWarmState(
    const tech::TechModel& tech, const network::Design& d,
    const FlowWarmState& warm) {
  if (warm.positions.size() != d.tree.numNodes()) return std::nullopt;
  std::vector<int> dirty;
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) continue;
    const network::ClockNode& n = d.tree.node(id);
    if (n.pos == warm.positions[i]) continue;
    dirty.push_back(n.parent >= 0 ? n.parent : id);
  }
  try {
    return sta::IncrementalTimer(tech, d, warm.initial_timing, dirty);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // snapshot shape mismatch: cold fallback
  }
}

}  // namespace

const char* flowModeName(FlowMode m) {
  switch (m) {
    case FlowMode::kGlobal: return "global";
    case FlowMode::kLocal: return "local";
    case FlowMode::kGlobalLocal: return "global-local";
  }
  return "?";
}

DesignMetrics computeMetrics(const network::Design& d,
                             const Objective& objective,
                             const sta::Timer& timer) {
  return metricsFromReport(d, objective.evaluate(d, timer));
}

namespace {

/// One Table-5 row into the flight record: the skew-variation objective
/// plus the per-corner local skews (deterministic fields only).
void recordMetrics(obs::FlightRecorder& rec, const char* key,
                   const DesignMetrics& m) {
  rec.beginObject(key);
  rec.field("sum_variation_ps", m.sum_variation_ps);
  rec.beginArray("local_skew_ps");
  for (const double v : m.local_skew_ps) rec.value(v);
  rec.endArray();
  rec.field("clock_cells", static_cast<std::int64_t>(m.clock_cells));
  rec.endObject();
}

}  // namespace

FlowResult Flow::run(network::Design& d, FlowMode mode,
                     const DeltaLatencyModel* model) const {
  return run(d, mode, model, /*warm_in=*/nullptr, /*warm_out=*/nullptr);
}

FlowResult Flow::run(network::Design& d, FlowMode mode,
                     const DeltaLatencyModel* model,
                     const FlowWarmState* warm_in,
                     FlowWarmState* warm_out) const {
  static obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "skewopt_flow_runs_total", "Flow::run invocations");
  static obs::Histogram& global_hist =
      flowStageMs("skewopt_flow_global_stage_ms", "Global stage wall time");
  static obs::Histogram& local_hist =
      flowStageMs("skewopt_flow_local_stage_ms", "Local stage wall time");
  static obs::Histogram& total_hist =
      flowStageMs("skewopt_flow_total_ms", "Whole Flow::run wall time");
  runs.add();

  obs::Span flow_span("flow.run");
  flow_span.arg("mode", static_cast<std::int64_t>(mode));
  support::Stopwatch total_sw;

  // Flight recorder: the optimizers append their sections through the
  // thread-local current recorder; a null install masks any outer one so
  // recording stays strictly per-run.
  obs::FlightRecorder recorder;
  obs::FlightRecorder* rec = opts_.record ? &recorder : nullptr;
  obs::ScopedFlightRecorder rec_scope(rec);
  if (rec != nullptr) {
    rec->field("v", std::int64_t{1});
    rec->field("mode", flowModeName(mode));
  }

  const check::Level chk = check::effectiveLevel(opts_.check_level);
  {
    obs::Span gate_span("flow.gate_input");
    check::gateDesign(d, timer_, chk, "flow:input");
  }

  // Cross-job warm start: seed an incremental timer from the prior run's
  // initial-design snapshot (re-propagating only the subtrees this job's
  // edits dirtied); an unusable snapshot leaves `seed` empty and the run
  // proceeds exactly as a cold one.
  std::optional<sta::IncrementalTimer> seed;
  if (warm_in != nullptr) seed = seedFromWarmState(*tech_, d, *warm_in);
  static obs::Counter& warm_runs = obs::MetricsRegistry::global().counter(
      "skewopt_flow_warm_runs_total",
      "Flow runs seeded from a prior run's warm state");
  if (seed.has_value()) warm_runs.add();

  // Alphas are locked to the incoming tree (they are an input parameter of
  // the formulation).
  Objective objective =
      seed.has_value() ? Objective(d, seed->timings()) : Objective(d, timer_);
  FlowResult res;
  {
    obs::Span metrics_span("flow.metrics_before");
    res.before = seed.has_value()
                     ? metricsFromReport(
                           d, objective.evaluateFromTimings(d, seed->timings()))
                     : computeMetrics(d, objective, timer_);
  }
  if (rec != nullptr) {
    rec->field("warm_start", seed.has_value());
    recordMetrics(*rec, "before", res.before);
  }

  // The outgoing snapshot describes the *initial* design, so capture it
  // before the stages mutate `d`.
  if (warm_out != nullptr) {
    warm_out->initial_timing =
        seed.has_value() ? seed->timings() : timer_.analyzeDesign(d);
    warm_out->positions.assign(d.tree.numNodes(), geom::Point{});
    for (std::size_t i = 0; i < d.tree.numNodes(); ++i)
      if (d.tree.isValid(static_cast<int>(i)))
        warm_out->positions[i] = d.tree.node(static_cast<int>(i)).pos;
    warm_out->fingerprint = designFingerprint(d, warm_out->initial_timing);
  }

  if (mode == FlowMode::kGlobal || mode == FlowMode::kGlobalLocal) {
    obs::Span stage_span("flow.global");
    support::Stopwatch sw;
    GlobalOptions gopts = opts_.global;
    gopts.check_level = chk;
    GlobalOptimizer gopt(*tech_, *lut_, gopts);
    res.global = gopt.run(d, objective, seed.has_value() ? &*seed : nullptr,
                          warm_in != nullptr ? &warm_in->global : nullptr,
                          warm_out != nullptr ? &warm_out->global : nullptr);
    res.stage_ms.global_ms = sw.ms();
    global_hist.observe(res.stage_ms.global_ms);
  }
  if (mode == FlowMode::kLocal || mode == FlowMode::kGlobalLocal) {
    obs::Span stage_span("flow.local");
    support::Stopwatch sw;
    LocalOptions lopts = opts_.local;
    lopts.check_level = chk;
    LocalOptimizer lopt(*tech_, lopts);
    res.local = lopt.run(d, objective, model);
    res.stage_ms.local_ms = sw.ms();
    local_hist.observe(res.stage_ms.local_ms);
  }
  {
    obs::Span metrics_span("flow.metrics_after");
    res.after = computeMetrics(d, objective, timer_);
  }
  if (rec != nullptr) {
    recordMetrics(*rec, "after", res.after);
    res.flight_record = rec->json();
  }
  {
    obs::Span gate_span("flow.gate_output");
    check::gateDesign(d, timer_, chk, "flow:output");
  }
  res.stage_ms.total_ms = total_sw.ms();
  total_hist.observe(res.stage_ms.total_ms);
  return res;
}

}  // namespace skewopt::core
