#include "core/flow.h"

namespace skewopt::core {

const char* flowModeName(FlowMode m) {
  switch (m) {
    case FlowMode::kGlobal: return "global";
    case FlowMode::kLocal: return "local";
    case FlowMode::kGlobalLocal: return "global-local";
  }
  return "?";
}

DesignMetrics computeMetrics(const network::Design& d,
                             const Objective& objective,
                             const sta::Timer& timer) {
  DesignMetrics m;
  const VariationReport r = objective.evaluate(d, timer);
  m.sum_variation_ps = r.sum_variation_ps;
  m.local_skew_ps = r.local_skew_ps;
  m.clock_cells = d.tree.numBuffers();
  m.power_mw = sta::clockTreePowerMw(d, d.corners.front());
  m.area_um2 = sta::clockCellAreaUm2(d);
  return m;
}

FlowResult Flow::run(network::Design& d, FlowMode mode,
                     const DeltaLatencyModel* model) const {
  // Alphas are locked to the incoming tree (they are an input parameter of
  // the formulation).
  Objective objective(d, timer_);
  FlowResult res;
  res.before = computeMetrics(d, objective, timer_);

  if (mode == FlowMode::kGlobal || mode == FlowMode::kGlobalLocal) {
    GlobalOptimizer gopt(*tech_, *lut_, opts_.global);
    res.global = gopt.run(d, objective);
  }
  if (mode == FlowMode::kLocal || mode == FlowMode::kGlobalLocal) {
    LocalOptimizer lopt(*tech_, opts_.local);
    res.local = lopt.run(d, objective, model);
  }
  res.after = computeMetrics(d, objective, timer_);
  return res;
}

}  // namespace skewopt::core
