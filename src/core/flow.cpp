#include "core/flow.h"

#include "check/check.h"

namespace skewopt::core {

const char* flowModeName(FlowMode m) {
  switch (m) {
    case FlowMode::kGlobal: return "global";
    case FlowMode::kLocal: return "local";
    case FlowMode::kGlobalLocal: return "global-local";
  }
  return "?";
}

DesignMetrics computeMetrics(const network::Design& d,
                             const Objective& objective,
                             const sta::Timer& timer) {
  DesignMetrics m;
  const VariationReport r = objective.evaluate(d, timer);
  m.sum_variation_ps = r.sum_variation_ps;
  m.local_skew_ps = r.local_skew_ps;
  m.clock_cells = d.tree.numBuffers();
  m.power_mw = sta::clockTreePowerMw(d, d.corners.front());
  m.area_um2 = sta::clockCellAreaUm2(d);
  return m;
}

FlowResult Flow::run(network::Design& d, FlowMode mode,
                     const DeltaLatencyModel* model) const {
  const check::Level chk = check::effectiveLevel(opts_.check_level);
  check::gateDesign(d, timer_, chk, "flow:input");

  // Alphas are locked to the incoming tree (they are an input parameter of
  // the formulation).
  Objective objective(d, timer_);
  FlowResult res;
  res.before = computeMetrics(d, objective, timer_);

  if (mode == FlowMode::kGlobal || mode == FlowMode::kGlobalLocal) {
    GlobalOptions gopts = opts_.global;
    gopts.check_level = chk;
    GlobalOptimizer gopt(*tech_, *lut_, gopts);
    res.global = gopt.run(d, objective);
  }
  if (mode == FlowMode::kLocal || mode == FlowMode::kGlobalLocal) {
    LocalOptions lopts = opts_.local;
    lopts.check_level = chk;
    LocalOptimizer lopt(*tech_, lopts);
    res.local = lopt.run(d, objective, model);
  }
  res.after = computeMetrics(d, objective, timer_);
  check::gateDesign(d, timer_, chk, "flow:output");
  return res;
}

}  // namespace skewopt::core
