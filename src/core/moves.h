// Local optimization moves (paper Table 2, Figure 4).
//
//   Type I   — displace a buffer +/-10um in the 8 compass directions,
//              combined with one-step up/down (or no) resizing of the same
//              buffer.
//   Type II  — the same displacement of the buffer combined with one-step
//              up/down resizing of one of its child buffers.
//   Type III — tree surgery: reassign the node to a different driver at the
//              same tree level within a 50x50um box.
//
// applyMove() performs the move the way the paper's flow does an ECO: edit
// the tree, legalize the touched cell, and ECO-reroute the affected nets.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "network/design.h"

namespace skewopt::core {

enum class MoveType { kSizeDisplace, kChildDisplaceSize, kReassign };

const char* moveTypeName(MoveType t);

struct Move {
  MoveType type = MoveType::kSizeDisplace;
  int node = -1;          ///< buffer displaced (I, II) or reassigned (III)
  geom::Point delta;      ///< displacement (types I, II)
  int size_step = 0;      ///< -1/0/+1 on `node` (I) or on `child` (II)
  int child = -1;         ///< type II: child buffer being resized
  int new_parent = -1;    ///< type III: the new driver

  std::string describe(const network::Design& d) const;
};

struct MoveEnumOptions {
  double step_um = 10.0;          ///< displacement magnitude
  double surgery_box_um = 50.0;   ///< type-III search box edge
  std::size_t max_reassign = 5;   ///< type-III candidates per buffer
  bool include_no_sizing = true;  ///< type I with size_step == 0
};

/// All candidate moves of one buffer per Table 2 (filtered for legality:
/// size steps stay inside the library, reassignment never creates a cycle).
std::vector<Move> enumerateMoves(const network::Design& d, int buffer,
                                 const MoveEnumOptions& opts = {});

/// Candidate moves of every buffer in the tree.
std::vector<Move> enumerateAllMoves(const network::Design& d,
                                    const MoveEnumOptions& opts = {});

/// Applies a move with ECO semantics (edit + legalize + reroute). The
/// design is modified in place; callers wanting trial evaluation copy the
/// design first.
void applyMove(network::Design& d, const Move& m);

/// applyMove plus the dirty-driver set for sta::IncrementalTimer::update —
/// the drivers whose nets were rebuilt (every timing change is inside their
/// subtrees).
std::vector<int> applyMoveTracked(network::Design& d, const Move& m);

/// Everything undoMove needs to restore the design bit-identically after a
/// trial: node geometry/sizing, the moved node's original child slot, and
/// the exact routed nets the move's ECO reroute replaced.
struct UndoRecord {
  struct NodeState {
    int id = -1;
    geom::Point pos;
    int cell = -1;
  };
  struct NetState {
    int driver = -1;
    bool had_net = false;
    route::SteinerTree net;
  };
  /// A move edits at most two nodes and two nets; fixed slots let a record
  /// reused across trials keep its net buffers (no per-trial allocation).
  std::array<NodeState, 2> nodes;
  std::size_t node_count = 0;
  std::array<NetState, 2> nets;
  std::size_t net_count = 0;
  int reassigned = -1;   ///< type III: the re-parented node, else -1
  int old_parent = -1;
  std::size_t old_child_index = 0;
  /// Dirty drivers of the *applied* move (applyMoveTracked's return), for
  /// IncrementalTimer::update / ScopedRetime::retime.
  std::vector<int> dirty;
};

/// applyMoveTracked capturing an UndoRecord first. undoMove(d, record)
/// restores the design exactly (tree, placement, sizing, routed nets) —
/// the copy-free trial protocol of the local optimizer.
UndoRecord applyMoveUndoable(network::Design& d, const Move& m);
/// Scratch-reusing variant: `u` is reset and refilled in place, so a
/// worker's persistent record makes the trial loop allocation-free.
void applyMoveUndoable(network::Design& d, const Move& m, UndoRecord* u);
void undoMove(network::Design& d, const UndoRecord& u);

/// Sinks in the subtree rooted at `node`.
std::vector<int> subtreeSinks(const network::ClockTree& tree, int node);

}  // namespace skewopt::core
