// Skew-variation objective (paper Eqs. (1)-(3)).
//
// For sink pair (f_i, f_i') and corner pair (c_k, c_k'):
//   v^{k,k'} = | alpha_k * skew^k - alpha_k' * skew^k' |
//   V        = max over corner pairs of v
//   objective = sum over sink pairs of V
//
// alpha_k normalizes corner c_k against the nominal corner c_0; per the
// paper we use the average skew ratio between c_0 and c_k over all sink
// pairs of the *initial* tree (alphas are an input parameter and stay fixed
// through the optimization).
#pragma once

#include <cstddef>
#include <vector>

#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::core {

struct VariationReport {
  /// Per active corner: max |skew| over the evaluated pairs — the paper's
  /// "local skew" column of Table 5.
  std::vector<double> local_skew_ps;
  /// Per pair: skew at each active corner (skew[kIdx][pair]).
  std::vector<std::vector<double>> skew_ps;
  /// Per pair: V (max normalized variation over corner pairs).
  std::vector<double> v_pair_ps;
  /// Sum of V over pairs — the quantity the whole paper minimizes.
  double sum_variation_ps = 0.0;
};

/// The slice of a VariationReport trial selection actually reads: the
/// objective sum plus per-corner worst |skew| (for the local-skew guard).
/// Reused across evaluations so the hot trial loop allocates nothing.
struct TrialEval {
  double sum_variation_ps = 0.0;
  std::vector<double> local_skew_ps;  ///< per active corner, max |skew|
  std::vector<double> skew_scratch;   ///< per-corner scratch, internal
};

class Objective {
 public:
  /// Captures the pair list and computes the alphas from the design's
  /// current (initial) tree.
  Objective(const network::Design& d, const sta::Timer& timer);

  /// Same, from already-computed per-corner timing of the same design —
  /// the warm-start flow seeds its timing from a cached snapshot and must
  /// not pay a redundant full analysis. Bit-identical to the timer
  /// constructor when `timing` equals timer.analyzeDesign(d).
  Objective(const network::Design& d,
            const std::vector<sta::CornerTiming>& timing);

  /// Alphas per active corner (alpha for corners.front() is 1).
  const std::vector<double>& alphas() const { return alphas_; }

  /// Full report on the design's current state.
  VariationReport evaluate(const network::Design& d,
                           const sta::Timer& timer) const;

  /// Report from externally supplied latencies: lat[kIdx][node_id] (only
  /// sink entries are read). Used by the move predictor to score
  /// hypothetical latency perturbations without a retime.
  VariationReport evaluateFromLatencies(
      const network::Design& d,
      const std::vector<std::vector<double>>& lat) const;

  /// Same report read directly from per-corner timing states (e.g. an
  /// IncrementalTimer's), avoiding the latency-matrix copy per evaluation
  /// — the local optimizer's copy-free trial path.
  VariationReport evaluateFromTimings(
      const network::Design& d,
      const std::vector<sta::CornerTiming>& timing) const;

  /// Trial-selection evaluation into reusable storage: identical sums and
  /// local skews to evaluateFromTimings, without building the per-pair
  /// skew matrix (allocation-free once `out` is warm).
  void evaluateTrial(const network::Design& d,
                     const std::vector<sta::CornerTiming>& timing,
                     TrialEval* out) const;

  /// V of one pair given its skew at each active corner.
  double pairV(const std::vector<double>& skew_per_corner) const;

 private:
  std::vector<double> alphas_;
};

}  // namespace skewopt::core
