#include "core/placement_explorer.h"

#include <algorithm>

#include "eco/eco.h"

namespace skewopt::core {

double BufferPlacementExplorer::probe(int buffer, const geom::Point& pos,
                                      int size_step,
                                      std::size_t* count) const {
  const geom::Point cur = design_->tree.node(buffer).pos;
  Move m;
  m.type = MoveType::kSizeDisplace;
  m.node = buffer;
  m.delta = {pos.x - cur.x, pos.y - cur.y};
  m.size_step = size_step;
  ++*count;
  return predictor_.predictedVariationDelta(m);
}

PlacementChoice BufferPlacementExplorer::explore(
    int buffer, const ExplorerOptions& opts) const {
  const network::Design& d = *design_;
  const geom::Point origin = d.tree.node(buffer).pos;
  const int cells = static_cast<int>(d.tech->numCells());
  const int cur_cell = d.tree.node(buffer).cell;

  PlacementChoice best;
  best.position = origin;

  std::vector<int> steps = {0};
  if (opts.explore_sizing) {
    if (cur_cell + 1 < cells) steps.push_back(1);
    if (cur_cell - 1 >= 0) steps.push_back(-1);
  }

  auto scan = [&](const geom::Point& center, double radius, double step) {
    for (double dx = -radius; dx <= radius + 1e-9; dx += step) {
      for (double dy = -radius; dy <= radius + 1e-9; dy += step) {
        geom::Point p{center.x + dx, center.y + dy};
        if (!d.floorplan.empty()) p = d.floorplan.clamp(p);
        for (const int s : steps) {
          if (p == origin && s == 0) continue;  // the do-nothing probe
          const double delta = probe(buffer, p, s, &best.probes);
          if (delta < best.predicted_delta_ps) {
            best.predicted_delta_ps = delta;
            best.position = p;
            best.size_step = s;
          }
        }
      }
    }
  };

  // Coarse pass over the whole window, then refine around the winner.
  scan(origin, opts.radius_um, opts.coarse_step_um);
  if (best.predicted_delta_ps < 0.0)
    scan(best.position, opts.coarse_step_um, opts.fine_step_um);
  return best;
}

void BufferPlacementExplorer::apply(network::Design& d, int buffer,
                                    const PlacementChoice& choice) {
  Move m;
  m.type = MoveType::kSizeDisplace;
  m.node = buffer;
  const geom::Point cur = d.tree.node(buffer).pos;
  m.delta = {choice.position.x - cur.x, choice.position.y - cur.y};
  m.size_step = choice.size_step;
  applyMove(d, m);
}

}  // namespace skewopt::core
