// RC interconnect analysis: Elmore delay, circuit moments, the D2M
// two-moment delay metric [Alpert/Devgan/Kashyap, ISPD 2000], and the PERI
// slew-extension rule [Kashyap et al., TAU 2002].
//
// The paper's delta-latency predictor estimates wire delay with both Elmore
// and D2M on two candidate route topologies; the golden timer uses Elmore
// with PERI slew propagation. Both consumers share this module.
//
// Units: res kOhm, cap fF, time ps (kOhm * fF = ps).
#pragma once

#include <cstddef>
#include <vector>

namespace skewopt::rc {

/// A distributed RC tree. Node 0 is always the driving point (root); every
/// other node hangs off a parent through a series resistance and carries a
/// grounded capacitance (wire cap plus any receiver pin cap).
class RcTree {
 public:
  RcTree() { nodes_.push_back({-1, 0.0, 0.0}); }

  /// Adds a node under `parent`, returns its index. `res` is the series
  /// resistance from parent to the new node; `cap` its grounded capacitance.
  std::size_t addNode(std::size_t parent, double res_kohm, double cap_ff);

  /// Adds extra grounded capacitance at an existing node (e.g. a pin cap).
  void addCap(std::size_t node, double cap_ff) { nodes_[node].cap += cap_ff; }

  /// Resets to the bare driving point, keeping the node storage — lets hot
  /// loops rebuild nets without reallocating.
  void clear() {
    nodes_.resize(1);
    nodes_[0] = {-1, 0.0, 0.0};
  }

  std::size_t size() const { return nodes_.size(); }
  double cap(std::size_t n) const { return nodes_[n].cap; }
  double res(std::size_t n) const { return nodes_[n].res; }
  int parent(std::size_t n) const { return nodes_[n].parent; }

  /// Total capacitance of the tree — the load seen by an ideal driver.
  double totalCap() const;

 private:
  struct Node {
    int parent;
    double res;  // series resistance to parent
    double cap;  // grounded capacitance at this node
  };
  std::vector<Node> nodes_;
  friend struct Moments;
};

/// First and second moments of the impulse response at every node.
/// m1[n] is the (negated) Elmore delay; m2 feeds the D2M metric.
struct Moments {
  std::vector<double> m1;
  std::vector<double> m2;

  static Moments compute(const RcTree& tree);
};

/// A multi-lane RC tree in structure-of-arrays layout: one shared topology
/// (clock net routes do not depend on the corner) with K per-lane
/// resistance/capacitance values per node, stored lane-interleaved —
/// res[n * K + k]. One lane per corner lets the moment passes below walk
/// the tree once and accumulate all corners in the inner loop, which the
/// compiler turns into vector code (K = 4 corners is exactly one AVX2
/// register of doubles).
class RcTreeBatch {
 public:
  explicit RcTreeBatch(std::size_t lanes = 1) { reset(lanes); }

  /// Resets to the bare driving point with `lanes` lanes, keeping storage.
  void reset(std::size_t lanes);

  /// Adds a node under `parent`; `res`/`cap` point at `lanes()` values.
  std::size_t addNode(std::size_t parent, const double* res_kohm,
                      const double* cap_ff);

  /// Adds extra grounded capacitance (`lanes()` values) at a node.
  void addCap(std::size_t node, const double* cap_ff);

  std::size_t size() const { return parent_.size(); }
  std::size_t lanes() const { return lanes_; }
  int parent(std::size_t n) const { return parent_[n]; }
  double res(std::size_t n, std::size_t k) const { return res_[n * lanes_ + k]; }
  double cap(std::size_t n, std::size_t k) const { return cap_[n * lanes_ + k]; }
  const double* resData() const { return res_.data(); }
  const double* capData() const { return cap_.data(); }
  const int* parentData() const { return parent_.data(); }

  /// Per-lane total capacitance, accumulated in node-index order (the same
  /// order RcTree::totalCap uses). `out` receives `lanes()` values.
  void totalCapInto(double* out) const;

 private:
  std::size_t lanes_ = 1;
  std::vector<int> parent_;
  std::vector<double> res_;  ///< [n * lanes + k]
  std::vector<double> cap_;  ///< [n * lanes + k]
};

/// Lane-interleaved moments of an RcTreeBatch: m1[n * K + k]. Each lane is
/// bit-identical to Moments::compute on the equivalent single-lane RcTree —
/// the batch passes only interchange the lane loop into the innermost
/// position, leaving every lane's per-node summation order untouched.
struct MomentsBatch {
  std::vector<double> m1;
  std::vector<double> m2;
};

/// Both moment passes over all lanes in one tree walk. `scratch` is caller
/// scratch (grown to 2 * size * lanes).
void elmoreMomentsBatch(const RcTreeBatch& tree, MomentsBatch& out,
                        std::vector<double>& scratch);

/// Positive Elmore delays for all lanes in one walk: delays[n * K + k].
/// Each lane is bit-identical to elmoreDelaysInto on the equivalent
/// single-lane RcTree. `cdown` is caller scratch.
void elmoreDelaysBatch(const RcTreeBatch& tree, std::vector<double>& delays,
                       std::vector<double>& cdown);

/// Elmore delay from the driving point to every node, in ps.
std::vector<double> elmoreDelays(const RcTree& tree);

/// Elmore delays into reusable buffers, computing only the first moment
/// (no m2 pass). Bit-identical to elmoreDelays; `cdown` is caller scratch.
void elmoreDelaysInto(const RcTree& tree, std::vector<double>& delays,
                      std::vector<double>& cdown);

/// D2M delay metric at one node given its moments: D2M = m1^2/sqrt(m2) * ln2.
double d2mFromMoments(double m1, double m2);

/// D2M delay from the driving point to every node, in ps.
std::vector<double> d2mDelays(const RcTree& tree);

/// Step-response wire output slew estimate from the Elmore delay of the
/// node (the classical ln(9) * Elmore 20-80%-style approximation).
inline double wireSlewFromElmore(double elmore_ps) {
  return 2.1972245773362196 * elmore_ps;  // ln(9)
}

/// PERI rule: extends a step-input slew metric to a ramp input.
/// out^2 = in^2 + step_out^2.
double periSlew(double slew_in_ps, double step_slew_ps);

/// Convenience: builds a 2-node RC for a uniform wire of length `len_um`
/// driven at one end with an optional lumped load at the far end, and
/// returns its Elmore delay. Uses the standard pi-equivalent (R*C/2 + R*Cl).
double uniformWireElmore(double len_um, double res_per_um, double cap_per_um,
                         double load_ff);

}  // namespace skewopt::rc
