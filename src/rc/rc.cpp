#include "rc/rc.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace skewopt::rc {

std::size_t RcTree::addNode(std::size_t parent, double res_kohm,
                            double cap_ff) {
  if (parent >= nodes_.size())
    throw std::out_of_range("RcTree::addNode: bad parent");
  nodes_.push_back({static_cast<int>(parent), res_kohm, cap_ff});
  return nodes_.size() - 1;
}

double RcTree::totalCap() const {
  double c = 0.0;
  for (const Node& n : nodes_) c += n.cap;
  return c;
}

// Moment computation by the standard two-pass path-tracing scheme.
// Because addNode only ever appends under an existing node, node indices are
// already in topological (parent-before-child) order.
Moments Moments::compute(const RcTree& tree) {
  const std::size_t n = tree.size();
  Moments m;
  m.m1.assign(n, 0.0);
  m.m2.assign(n, 0.0);

  // Pass 1: m1. Downstream cap below each node, then accumulate R * Cdown.
  std::vector<double> cdown(n);
  for (std::size_t i = 0; i < n; ++i) cdown[i] = tree.cap(i);
  for (std::size_t i = n; i-- > 1;) cdown[tree.parent(i)] += cdown[i];
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(tree.parent(i));
    m.m1[i] = m.m1[p] - tree.res(i) * cdown[i];
  }

  // Pass 2: m2 uses the "moment weights" m1 * C in place of C.
  std::vector<double> wdown(n);
  for (std::size_t i = 0; i < n; ++i) wdown[i] = m.m1[i] * tree.cap(i);
  for (std::size_t i = n; i-- > 1;) wdown[tree.parent(i)] += wdown[i];
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(tree.parent(i));
    m.m2[i] = m.m2[p] - tree.res(i) * wdown[i];
  }
  return m;
}

void RcTreeBatch::reset(std::size_t lanes) {
  if (lanes == 0) throw std::invalid_argument("RcTreeBatch: zero lanes");
  lanes_ = lanes;
  parent_.assign(1, -1);
  res_.assign(lanes_, 0.0);
  cap_.assign(lanes_, 0.0);
}

std::size_t RcTreeBatch::addNode(std::size_t parent, const double* res_kohm,
                                 const double* cap_ff) {
  if (parent >= parent_.size())
    throw std::out_of_range("RcTreeBatch::addNode: bad parent");
  parent_.push_back(static_cast<int>(parent));
  res_.insert(res_.end(), res_kohm, res_kohm + lanes_);
  cap_.insert(cap_.end(), cap_ff, cap_ff + lanes_);
  return parent_.size() - 1;
}

void RcTreeBatch::addCap(std::size_t node, const double* cap_ff) {
  double* c = cap_.data() + node * lanes_;
  for (std::size_t k = 0; k < lanes_; ++k) c[k] += cap_ff[k];
}

void RcTreeBatch::totalCapInto(double* out) const {
  for (std::size_t k = 0; k < lanes_; ++k) out[k] = 0.0;
  const std::size_t n = parent_.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < lanes_; ++k) out[k] += cap_[i * lanes_ + k];
}

// The batch passes mirror Moments::compute / elmoreDelaysInto exactly: same
// node traversal order, same expression per node, with the lane loop
// innermost over contiguous values. Per lane the arithmetic is an
// independent chain of the identical operations, so results match the
// scalar paths bit for bit.
//
// The kernels are templated on the lane count: with KC known at compile
// time the inner lane loops unroll into straight-line vector code (KC = 4
// corners is one AVX2 register of doubles) instead of a trip-counted loop
// per node. The runtime entry points dispatch to the specialization for
// 1-4 lanes and fall back to the generic version above that.

namespace {

// 4-lane vector step built on GCC vector extensions. Vector adds/mults are
// elementwise IEEE operations — lane k of a v4df op is the identical
// scalar operation — so the vector pass stays bit-identical per lane. The
// unaligned load/store go through memcpy (the SoA arrays have no 32-byte
// alignment guarantee). target_clones dispatches an AVX2 copy at load time
// where the host supports it; neither clone enables FMA contraction.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif
typedef double v4df __attribute__((vector_size(32)));

// target_clones is disabled under TSan/ASan: the generated ifunc
// resolvers run during relocation, before the sanitizer runtime is
// initialized, and the instrumented function entries crash at load.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define SKEWOPT_VEC_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define SKEWOPT_VEC_CLONES
#endif

inline v4df load4(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store4(double* p, v4df v) { __builtin_memcpy(p, &v, sizeof(v)); }

// Bottom-up accumulation of per-lane weights, then top-down moments, for
// the hot 4-lane (= 4-corner) case: one vector op per node replaces the
// 4-iteration lane loop.
SKEWOPT_VEC_CLONES
void momentsPass4(const int* par, const double* res, double* down,
                  double* moments, std::size_t n) {
  for (std::size_t i = n; i-- > 1;) {
    double* p = down + static_cast<std::size_t>(par[i]) * 4;
    store4(p, load4(p) + load4(down + i * 4));
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* p = moments + static_cast<std::size_t>(par[i]) * 4;
    store4(moments + i * 4, load4(p) - load4(res + i * 4) * load4(down + i * 4));
  }
}

// Elementwise product of two arrays (the m2 pass's moment weights).
SKEWOPT_VEC_CLONES
void mulInto4(const double* a, const double* b, double* out, std::size_t nk) {
  std::size_t i = 0;
  for (; i + 4 <= nk; i += 4) store4(out + i, load4(a + i) * load4(b + i));
  for (; i < nk; ++i) out[i] = a[i] * b[i];
}

// Generic lane-count fallback.
void momentsPassN(const int* par, const double* res, double* down,
                  double* moments, std::size_t n, std::size_t K) {
  for (std::size_t i = n; i-- > 1;) {
    double* p = down + static_cast<std::size_t>(par[i]) * K;
    const double* c = down + i * K;
    for (std::size_t k = 0; k < K; ++k) p[k] += c[k];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* p = moments + static_cast<std::size_t>(par[i]) * K;
    double* m = moments + i * K;
    const double* r = res + i * K;
    const double* c = down + i * K;
    for (std::size_t k = 0; k < K; ++k) m[k] = p[k] - r[k] * c[k];
  }
}

// Sizes a result array without the full memset of assign(): every entry of
// node >= 1 is overwritten by the top-down pass, so only the root's lanes
// need explicit zeroing.
inline void sizeAndZeroRoot(std::vector<double>& v, std::size_t nk,
                            std::size_t K) {
  v.resize(nk);
  for (std::size_t k = 0; k < K; ++k) v[k] = 0.0;
}

}  // namespace

void elmoreMomentsBatch(const RcTreeBatch& tree, MomentsBatch& out,
                        std::vector<double>& scratch) {
  const std::size_t n = tree.size();
  const std::size_t K = tree.lanes();
  const std::size_t nk = n * K;
  sizeAndZeroRoot(out.m1, nk, K);
  sizeAndZeroRoot(out.m2, nk, K);
  scratch.resize(2 * nk);
  double* cdown = scratch.data();
  double* wdown = scratch.data() + nk;
  const double* cap = tree.capData();
  const double* res = tree.resData();
  const int* par = tree.parentData();
  double* m1 = out.m1.data();
  std::memcpy(cdown, cap, nk * sizeof(double));
  if (K == 4) {
    // Pass 1: m1 from downstream cap; pass 2: m2 from the weights m1 * C.
    momentsPass4(par, res, cdown, m1, n);
    mulInto4(m1, cap, wdown, nk);
    momentsPass4(par, res, wdown, out.m2.data(), n);
    return;
  }
  momentsPassN(par, res, cdown, m1, n, K);
  for (std::size_t i = 0; i < nk; ++i) wdown[i] = m1[i] * cap[i];
  momentsPassN(par, res, wdown, out.m2.data(), n, K);
}

namespace {

SKEWOPT_VEC_CLONES
void delaysPass4(const int* par, const double* res, double* cdown,
                 double* delays, std::size_t n) {
  for (std::size_t i = n; i-- > 1;) {
    double* p = cdown + static_cast<std::size_t>(par[i]) * 4;
    store4(p, load4(p) + load4(cdown + i * 4));
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* p = delays + static_cast<std::size_t>(par[i]) * 4;
    store4(delays + i * 4, load4(p) + load4(res + i * 4) * load4(cdown + i * 4));
  }
}

}  // namespace

void elmoreDelaysBatch(const RcTreeBatch& tree, std::vector<double>& delays,
                       std::vector<double>& cdown) {
  const std::size_t n = tree.size();
  const std::size_t K = tree.lanes();
  const std::size_t nk = n * K;
  sizeAndZeroRoot(delays, nk, K);
  cdown.resize(nk);
  const double* cap = tree.capData();
  const double* res = tree.resData();
  const int* par = tree.parentData();
  std::memcpy(cdown.data(), cap, nk * sizeof(double));
  if (K == 4) {
    delaysPass4(par, res, cdown.data(), delays.data(), n);
    return;
  }
  for (std::size_t i = n; i-- > 1;) {
    double* p = cdown.data() + static_cast<std::size_t>(par[i]) * K;
    const double* c = cdown.data() + i * K;
    for (std::size_t k = 0; k < K; ++k) p[k] += c[k];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* p = delays.data() + static_cast<std::size_t>(par[i]) * K;
    double* d = delays.data() + i * K;
    const double* r = res + i * K;
    const double* c = cdown.data() + i * K;
    for (std::size_t k = 0; k < K; ++k) d[k] = p[k] + r[k] * c[k];
  }
}

std::vector<double> elmoreDelays(const RcTree& tree) {
  Moments m = Moments::compute(tree);
  std::vector<double> d(m.m1.size());
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = -m.m1[i];
  return d;
}

void elmoreDelaysInto(const RcTree& tree, std::vector<double>& delays,
                      std::vector<double>& cdown) {
  const std::size_t n = tree.size();
  delays.assign(n, 0.0);
  cdown.resize(n);
  for (std::size_t i = 0; i < n; ++i) cdown[i] = tree.cap(i);
  for (std::size_t i = n; i-- > 1;) cdown[tree.parent(i)] += cdown[i];
  for (std::size_t i = 1; i < n; ++i)
    delays[i] = delays[static_cast<std::size_t>(tree.parent(i))] +
                tree.res(i) * cdown[i];
}

double d2mFromMoments(double m1, double m2) {
  if (m2 <= 0.0) return -m1;  // degenerate: fall back to Elmore
  // D2M = (m1^2 / sqrt(m2)) * ln(2)
  return (m1 * m1 / std::sqrt(m2)) * 0.6931471805599453;
}

std::vector<double> d2mDelays(const RcTree& tree) {
  Moments m = Moments::compute(tree);
  std::vector<double> d(m.m1.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = d2mFromMoments(m.m1[i], m.m2[i]);
  return d;
}

double periSlew(double slew_in_ps, double step_slew_ps) {
  return std::sqrt(slew_in_ps * slew_in_ps + step_slew_ps * step_slew_ps);
}

double uniformWireElmore(double len_um, double res_per_um, double cap_per_um,
                         double load_ff) {
  const double r = res_per_um * len_um;
  const double c = cap_per_um * len_um;
  return r * (c / 2.0 + load_ff);
}

}  // namespace skewopt::rc
