#include "rc/rc.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace skewopt::rc {

std::size_t RcTree::addNode(std::size_t parent, double res_kohm,
                            double cap_ff) {
  if (parent >= nodes_.size())
    throw std::out_of_range("RcTree::addNode: bad parent");
  nodes_.push_back({static_cast<int>(parent), res_kohm, cap_ff});
  return nodes_.size() - 1;
}

double RcTree::totalCap() const {
  double c = 0.0;
  for (const Node& n : nodes_) c += n.cap;
  return c;
}

// Moment computation by the standard two-pass path-tracing scheme.
// Because addNode only ever appends under an existing node, node indices are
// already in topological (parent-before-child) order.
Moments Moments::compute(const RcTree& tree) {
  const std::size_t n = tree.size();
  Moments m;
  m.m1.assign(n, 0.0);
  m.m2.assign(n, 0.0);

  // Pass 1: m1. Downstream cap below each node, then accumulate R * Cdown.
  std::vector<double> cdown(n);
  for (std::size_t i = 0; i < n; ++i) cdown[i] = tree.cap(i);
  for (std::size_t i = n; i-- > 1;) cdown[tree.parent(i)] += cdown[i];
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(tree.parent(i));
    m.m1[i] = m.m1[p] - tree.res(i) * cdown[i];
  }

  // Pass 2: m2 uses the "moment weights" m1 * C in place of C.
  std::vector<double> wdown(n);
  for (std::size_t i = 0; i < n; ++i) wdown[i] = m.m1[i] * tree.cap(i);
  for (std::size_t i = n; i-- > 1;) wdown[tree.parent(i)] += wdown[i];
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(tree.parent(i));
    m.m2[i] = m.m2[p] - tree.res(i) * wdown[i];
  }
  return m;
}

std::vector<double> elmoreDelays(const RcTree& tree) {
  Moments m = Moments::compute(tree);
  std::vector<double> d(m.m1.size());
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = -m.m1[i];
  return d;
}

void elmoreDelaysInto(const RcTree& tree, std::vector<double>& delays,
                      std::vector<double>& cdown) {
  const std::size_t n = tree.size();
  delays.assign(n, 0.0);
  cdown.resize(n);
  for (std::size_t i = 0; i < n; ++i) cdown[i] = tree.cap(i);
  for (std::size_t i = n; i-- > 1;) cdown[tree.parent(i)] += cdown[i];
  for (std::size_t i = 1; i < n; ++i)
    delays[i] = delays[static_cast<std::size_t>(tree.parent(i))] +
                tree.res(i) * cdown[i];
}

double d2mFromMoments(double m1, double m2) {
  if (m2 <= 0.0) return -m1;  // degenerate: fall back to Elmore
  // D2M = (m1^2 / sqrt(m2)) * ln(2)
  return (m1 * m1 / std::sqrt(m2)) * 0.6931471805599453;
}

std::vector<double> d2mDelays(const RcTree& tree) {
  Moments m = Moments::compute(tree);
  std::vector<double> d(m.m1.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = d2mFromMoments(m.m1[i], m.m2[i]);
  return d;
}

double periSlew(double slew_in_ps, double step_slew_ps) {
  return std::sqrt(slew_in_ps * slew_in_ps + step_slew_ps * step_slew_ps);
}

double uniformWireElmore(double len_um, double res_per_um, double cap_per_um,
                         double load_ff) {
  const double r = res_per_um * len_um;
  const double c = cap_per_um * len_um;
  return r * (c / 2.0 + load_ff);
}

}  // namespace skewopt::rc
