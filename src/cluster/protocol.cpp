#include "cluster/protocol.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace skewopt::cluster {

namespace json = serve::json;

namespace {

using serve::errorReply;

const json::Value& requireObject(const json::Value& v, const char* what) {
  if (!v.isObject())
    throw std::runtime_error(std::string(what) + " must be an object");
  return v;
}

void checkKeys(const json::Value& v, std::initializer_list<const char*> allowed,
               const char* context) {
  for (const auto& [key, value] : v.members()) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed)
      if (key == a) {
        ok = true;
        break;
      }
    if (!ok)
      throw std::runtime_error(std::string("unknown ") + context + " key '" +
                               key + "'");
  }
}

std::uint64_t requireId(const json::Value& req) {
  const json::Value* id = req.find("id");
  if (!id || !id->isNumber() || id->asDouble() < 0)
    throw std::runtime_error("missing or bad 'id'");
  return static_cast<std::uint64_t>(id->asDouble());
}

/// SchedulerStats fields without the "ok" flag, for the per-shard array.
json::Value statsFields(const serve::SchedulerStats& s) {
  json::Value v = json::Value::object();
  v.set("submitted", s.submitted);
  v.set("done", s.done);
  v.set("failed", s.failed);
  v.set("cancelled", s.cancelled);
  v.set("retries", s.retries);
  v.set("running", s.running);
  v.set("queue_depth", s.queue_depth);
  v.set("workers", s.workers);
  v.set("cache_hits", s.cache.hits);
  v.set("cache_misses", s.cache.misses);
  v.set("cache_entries", s.cache.entries);
  v.set("warm_hits", s.warm.hits);
  v.set("warm_misses", s.warm.misses);
  v.set("warm_entries", s.warm.entries);
  return v;
}

json::Value submittedReply(const ClusterFrontend& fe,
                           const ClusterFrontend::Submitted& sub) {
  json::Value v = json::Value::object();
  v.set("ok", true);
  v.set("id", sub.id);
  v.set("hash", serve::hashHex(sub.job->hash));
  v.set("state", serve::jobStateName(serve::JobState::kQueued));
  if (fe.shards() > 1) v.set("shard", sub.shard);
  // Echoed only when the client supplied a context (spec.trace_id is
  // client-set; the derived per-job fallback id is not echoed), keeping
  // pre-telemetry replies byte-identical.
  if (sub.job->spec.trace_id != 0)
    v.set("trace_id", obs::traceIdHex(sub.job->trace_id));
  return v;
}

/// One BATCH_SUBMIT entry, already validated to be an object with allowed
/// keys. Per-entry failures become {"ok":false,...} verdicts, never a
/// batch-level error.
json::Value batchEntryReply(ClusterFrontend& fe, const json::Value& entry,
                            bool block, std::size_t* accepted) {
  const std::string tag = entry.str("tag", "");
  json::Value v;
  try {
    const json::Value* spec_v = entry.find("spec");
    if (!spec_v) throw std::runtime_error("batch entry needs a 'spec'");
    const serve::JobSpec spec = serve::specFromJson(*spec_v);
    const ClusterFrontend::Submitted sub = fe.submit(spec, block);
    if (!sub.job) {
      v = errorReply("queue full");
    } else {
      ++*accepted;
      v = json::Value::object();
      v.set("ok", true);
      v.set("id", sub.id);
      v.set("hash", serve::hashHex(sub.job->hash));
      v.set("state", serve::jobStateName(serve::JobState::kQueued));
      v.set("shard", sub.shard);
      if (spec.trace_id != 0)
        v.set("trace_id", obs::traceIdHex(sub.job->trace_id));
    }
  } catch (const std::exception& e) {
    v = errorReply(e.what());
  }
  if (!tag.empty()) v.set("tag", tag);
  return v;
}

json::Value handleBatchSubmit(ClusterFrontend& fe, const json::Value& request) {
  checkKeys(request, {"cmd", "jobs", "block"}, "request");
  const json::Value* jobs = request.find("jobs");
  if (!jobs || !jobs->isArray())
    return errorReply("BATCH_SUBMIT needs a 'jobs' array");
  if (jobs->items().empty())
    return errorReply("BATCH_SUBMIT 'jobs' must not be empty");
  // Validate the batch shape before submitting anything: a malformed
  // *batch* (vs a malformed spec) rejects as a unit.
  std::set<std::string> tags;
  for (const json::Value& entry : jobs->items()) {
    requireObject(entry, "batch entry");
    checkKeys(entry, {"spec", "tag"}, "batch entry");
    const std::string tag = entry.str("tag", "");
    if (!tag.empty() && !tags.insert(tag).second)
      return errorReply("duplicate batch tag '" + tag + "'");
  }
  const bool block = request.boolean("block", false);
  std::size_t accepted = 0;
  json::Value verdicts = json::Value::array();
  for (const json::Value& entry : jobs->items())
    verdicts.push(batchEntryReply(fe, entry, block, &accepted));
  json::Value v = json::Value::object();
  v.set("ok", true);
  v.set("count", jobs->items().size());
  v.set("accepted", accepted);
  v.set("jobs", std::move(verdicts));
  return v;
}

json::Value handleDrain(ClusterFrontend& fe, const json::Value& request) {
  checkKeys(request, {"cmd", "shard", "mode"}, "request");
  const std::string mode = request.str("mode", "drain");
  if (mode != "drain" && mode != "shutdown")
    return errorReply("DRAIN mode must be 'drain' or 'shutdown'");
  json::Value v = json::Value::object();
  if (const json::Value* shard_v = request.find("shard")) {
    if (!shard_v->isNumber() || shard_v->asDouble() < 0 ||
        shard_v->asDouble() >= static_cast<double>(fe.shards()))
      return errorReply("bad 'shard' index");
    const std::size_t i = static_cast<std::size_t>(shard_v->asDouble());
    if (mode == "drain")
      fe.drainShard(i);
    else
      fe.shutdownShard(i);
    v.set("ok", true);
    v.set("shard", i);
  } else {
    if (mode == "drain")
      fe.drain();
    else
      fe.shutdown();
    v.set("ok", true);
    v.set("shards", fe.shards());
  }
  v.set("drained", true);
  return v;
}

/// One completion event line for a terminal job.
json::Value resultEvent(ClusterFrontend& fe, const serve::JobStatus& s) {
  json::Value v = json::Value::object();
  if (s.state == serve::JobState::kDone) {
    v.set("ok", true);
    v.set("event", "result");
    v.set("id", s.id);
    v.set("state", serve::jobStateName(s.state));
    v.set("cached", s.cached);
    v.set("result", serve::resultToJson(fe.result(s.id),
                                        fe.jobSpec(s.id).options.record));
  } else {
    v.set("ok", false);
    v.set("event", "result");
    v.set("id", s.id);
    v.set("state", serve::jobStateName(s.state));
    v.set("error", s.error.empty() ? serve::jobStateName(s.state) : s.error);
  }
  return v;
}

/// Streaming RESULTS: emits one event line per subscribed job as it
/// completes (already-terminal jobs flush immediately), then an "end"
/// line carrying the count of jobs still pending at the deadline. Wakeups
/// ride the cluster's completion epoch, so the wait is event-driven, not
/// a poll loop.
bool handleResults(ClusterFrontend& fe, const json::Value& request,
                   const serve::TcpServer::LineSink& emit) {
  std::vector<std::uint64_t> pending;
  double timeout_ms = 600000.0;
  try {
    checkKeys(request, {"cmd", "ids", "timeout_ms"}, "request");
    const json::Value* ids = request.find("ids");
    if (!ids || !ids->isArray() || ids->items().empty())
      throw std::runtime_error("RESULTS needs a non-empty 'ids' array");
    for (const json::Value& id : ids->items()) {
      if (!id.isNumber() || id.asDouble() < 1)
        throw std::runtime_error("RESULTS ids must be positive numbers");
      pending.push_back(static_cast<std::uint64_t>(id.asDouble()));
    }
    timeout_ms = request.num("timeout_ms", timeout_ms);
  } catch (const std::exception& e) {
    serve::countRequest("RESULTS", false);
    return emit(json::dump(errorReply(e.what())));
  }
  // Counted at subscription time (the stream itself can outlive the
  // request by minutes).
  serve::countRequest("RESULTS", true);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(0.0, timeout_ms)));
  std::uint64_t epoch = fe.completionEpoch();
  for (;;) {
    for (auto it = pending.begin(); it != pending.end();) {
      json::Value event;
      bool terminal = true;
      try {
        const serve::JobStatus s = fe.status(*it);
        terminal = serve::isTerminal(s.state);
        if (terminal) event = resultEvent(fe, s);
      } catch (const std::out_of_range&) {
        // Unknown or retention-pruned id: report it once and drop it.
        event = errorReply("unknown job id");
        event.set("event", "result");
        event.set("id", *it);
      }
      if (!terminal) {
        ++it;
        continue;
      }
      if (!emit(json::dump(event))) return false;  // subscriber gone
      it = pending.erase(it);
    }
    const auto now = std::chrono::steady_clock::now();
    if (pending.empty() || now >= deadline) break;
    const double wait_ms = std::min(
        250.0, std::chrono::duration<double, std::milli>(deadline - now)
                   .count());
    epoch = fe.waitEpoch(epoch, wait_ms);
  }
  json::Value end = json::Value::object();
  end.set("ok", true);
  end.set("event", "end");
  end.set("remaining", pending.size());
  return emit(json::dump(end));
}

json::Value dispatchClusterRequest(ClusterFrontend& fe,
                                   const json::Value& request) {
  try {
    requireObject(request, "request");
    const std::string cmd = request.str("cmd", "");

    if (cmd == "SUBMIT") {
      checkKeys(request, {"cmd", "spec", "block"}, "request");
      const json::Value* spec_v = request.find("spec");
      if (!spec_v) throw std::runtime_error("SUBMIT needs a 'spec'");
      const serve::JobSpec spec = serve::specFromJson(*spec_v);
      const bool block = request.boolean("block", false);
      const ClusterFrontend::Submitted sub = fe.submit(spec, block);
      if (!sub.job) return errorReply("queue full");
      return submittedReply(fe, sub);
    }

    if (cmd == "DELTA") {
      checkKeys(request, {"cmd", "base", "edits", "block", "trace_id"},
                "request");
      const json::Value* base = request.find("base");
      if (!base || !base->isNumber() || base->asDouble() < 0)
        throw std::runtime_error("DELTA needs a numeric 'base' job id");
      const json::Value* edits_v = request.find("edits");
      if (!edits_v) throw std::runtime_error("DELTA needs an 'edits' object");
      const serve::DeltaEdits edits = serve::deltaEditsFromJson(*edits_v);
      const bool block = request.boolean("block", false);
      const json::Value* tid = request.find("trace_id");
      const std::uint64_t trace_id =
          tid != nullptr ? serve::traceIdFromJson(*tid) : 0;
      ClusterFrontend::Submitted sub;
      try {
        sub = fe.submitDelta(static_cast<std::uint64_t>(base->asDouble()),
                             edits, block, trace_id);
      } catch (const std::out_of_range&) {
        return errorReply("unknown base job id");
      }
      if (!sub.job) return errorReply("queue full");
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", sub.id);
      v.set("base", static_cast<std::uint64_t>(base->asDouble()));
      v.set("hash", serve::hashHex(sub.job->hash));
      v.set("state", serve::jobStateName(serve::JobState::kQueued));
      if (fe.shards() > 1) v.set("shard", sub.shard);
      if (tid != nullptr)
        v.set("trace_id", obs::traceIdHex(sub.job->trace_id));
      return v;
    }

    if (cmd == "STATUS") {
      checkKeys(request, {"cmd", "id"}, "request");
      return serve::statusToJson(fe.status(requireId(request)));
    }

    if (cmd == "RESULT") {
      checkKeys(request, {"cmd", "id", "wait"}, "request");
      const std::uint64_t id = requireId(request);
      const bool wait = request.boolean("wait", true);
      serve::JobStatus s = fe.status(id);
      if (!serve::isTerminal(s.state)) {
        if (!wait) {
          json::Value v = errorReply("not finished");
          v.set("state", serve::jobStateName(s.state));
          return v;
        }
        s = fe.waitTerminal(id);
      }
      if (s.state != serve::JobState::kDone) {
        json::Value v = errorReply(
            s.error.empty() ? serve::jobStateName(s.state) : s.error);
        v.set("id", id);
        v.set("state", serve::jobStateName(s.state));
        return v;
      }
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("state", serve::jobStateName(s.state));
      v.set("cached", s.cached);
      v.set("result", serve::resultToJson(fe.result(id),
                                          fe.jobSpec(id).options.record));
      return v;
    }

    if (cmd == "TRACE") {
      // Identical to the serve TRACE verb: shards record into the one
      // process-wide tracer, so the filtered export already merges the
      // job's spans across shards.
      checkKeys(request, {"cmd", "id"}, "request");
      const std::uint64_t id = requireId(request);
      const std::uint64_t trace_id = fe.traceId(id);
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("trace_id", obs::traceIdHex(trace_id));
      v.set("trace",
            json::parse(obs::Tracer::global().exportJson(0, trace_id)));
      return v;
    }

    if (cmd == "CANCEL") {
      checkKeys(request, {"cmd", "id"}, "request");
      const std::uint64_t id = requireId(request);
      const bool cancelled = fe.cancel(id);
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("id", id);
      v.set("cancelled", cancelled);
      v.set("state", serve::jobStateName(fe.status(id).state));
      return v;
    }

    if (cmd == "STATS") {
      checkKeys(request, {"cmd"}, "request");
      const ClusterStats cs = fe.stats();
      json::Value v = serve::schedulerStatsToJson(cs.total);
      v.set("gauges", serve::serveGaugesToJson());
      if (fe.shards() > 1) {
        v.set("routed", cs.routed);
        v.set("rejected", cs.rejected);
        json::Value shards = json::Value::array();
        for (std::size_t i = 0; i < cs.shards.size(); ++i) {
          json::Value sv = statsFields(cs.shards[i]);
          sv.set("shard", i);
          shards.push(std::move(sv));
        }
        v.set("shards", std::move(shards));
      }
      return v;
    }

    if (cmd == "METRICS") {
      checkKeys(request, {"cmd"}, "request");
      json::Value v = json::Value::object();
      v.set("ok", true);
      v.set("metrics",
            obs::prometheusText(obs::MetricsRegistry::global().snapshot()));
      return v;
    }

    if (cmd == "BATCH_SUBMIT") return handleBatchSubmit(fe, request);
    if (cmd == "DRAIN") return handleDrain(fe, request);

    return errorReply(cmd.empty() ? "missing 'cmd'"
                                  : "unknown cmd '" + cmd + "'");
  } catch (const std::exception& e) {
    return errorReply(e.what());
  }
}

}  // namespace

json::Value handleClusterRequest(ClusterFrontend& fe,
                                 const json::Value& request) {
  json::Value reply = dispatchClusterRequest(fe, request);
  serve::countRequest(request.isObject() ? request.str("cmd", "") : "",
                      reply.boolean("ok", false));
  return reply;
}

bool handleClusterLine(ClusterFrontend& fe, const std::string& line,
                       const serve::TcpServer::LineSink& emit) {
  json::Value request;
  try {
    request = json::parse(line);
  } catch (const std::exception& e) {
    return emit(json::dump(errorReply(e.what())));
  }
  if (request.isObject() && request.str("cmd", "") == "RESULTS")
    return handleResults(fe, request, emit);
  return emit(json::dump(handleClusterRequest(fe, request)));
}

serve::TcpServer::LineHandler clusterLineHandler(ClusterFrontend& fe) {
  return [&fe](const std::string& line,
               const serve::TcpServer::LineSink& emit) {
    return handleClusterLine(fe, line, emit);
  };
}

}  // namespace skewopt::cluster
