// Consistent-hash shard routing for the cluster front-end.
//
// The ring is a pure, deterministic function of (shard count, vnodes):
// every shard owns `vnodes` points placed by hashing "shard:<i>:<j>" with
// FNV-1a, and a job routes to the owner of the first ring point at or
// after its content hash (wrapping). Determinism is a protocol property —
// the same spec must land on the same shard across process restarts so
// its cached result and warm state stay reachable — and is pinned by
// tests/cluster_test.cpp.
//
// Virtual nodes smooth the partition: with v points per shard the
// expected per-shard load imbalance shrinks as O(1/sqrt(v)). Consistent
// hashing (vs `hash % N`) keeps resharding cheap later: adding a shard
// moves only ~1/N of the key space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace skewopt::cluster {

/// FNV-1a 64-bit over a byte string; the ring's point-placement hash.
std::uint64_t fnv1a64(const std::string& bytes);

struct ShardRouterOptions {
  std::size_t shards = 1;
  std::size_t vnodes = 64;  ///< ring points per shard
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions opts);

  std::size_t shards() const { return shards_; }
  std::size_t vnodes() const { return vnodes_; }

  /// The shard owning `content_hash` (serve::contentHash of the spec).
  std::size_t route(std::uint64_t content_hash) const;

  /// The ring points, (point, shard) sorted by point — exposed so tests
  /// can pin the layout.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& ring() const {
    return ring_;
  }

 private:
  std::size_t shards_;
  std::size_t vnodes_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace skewopt::cluster
