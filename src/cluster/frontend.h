// Sharded serving front-end: N independent Schedulers (shared-nothing —
// each shard owns its ResultCache and WarmStateStore, so LRU state
// partitions cleanly) behind one consistent-hash router and one global
// job-id space.
//
// Routing is on JobSpec::contentHash, so identical specs always land on
// the shard holding their cached result. DELTA re-optimizations are the
// one deliberate exception: an edited spec hashes differently from its
// base, so routing it by content would scatter the warm state PR 7 built;
// submitDelta instead pins the job to the base's shard, where the base's
// topology-keyed warm entry lives. Results are bit-identical either way —
// a warm miss is just a cold run (serve/warm_state.h) — the pin only
// protects the hit rate.
//
// Global job ids interleave the per-shard id sequences:
//   gid = (local - 1) * nshards + shard + 1
// which is a bijection (local ids are dense per shard), decodes with one
// modulo, and — the property the wire protocol relies on — degenerates to
// gid == local id when nshards == 1, keeping single-shard responses
// byte-identical to a bare serve::Scheduler's.
//
// Completion flow: every shard's Scheduler fires on_terminal; the
// front-end turns that into a monotonically increasing completion epoch +
// condvar that streaming RESULTS subscriptions (cluster/protocol.h) wait
// on, re-scanning their pending id set per epoch tick.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/router.h"
#include "serve/scheduler.h"
#include "support/thread_annotations.h"

namespace skewopt::cluster {

struct ClusterOptions {
  std::size_t shards = 1;
  std::size_t vnodes = 64;  ///< router ring points per shard
  /// Per-shard scheduler configuration (workers, queue, cache, warm store,
  /// retention — each shard gets an identical, independent copy). Any
  /// on_terminal hook set here is chained after the front-end's own.
  serve::SchedulerOptions shard;
};

/// Whole-cluster counter snapshot: the per-shard SchedulerStats plus
/// their field-wise sum. Each shard snapshot is internally coherent (see
/// SchedulerStats); the cluster total is a sum of per-shard snapshots
/// taken in sequence, so the coherence identity also holds for `total`.
struct ClusterStats {
  std::vector<serve::SchedulerStats> shards;
  serve::SchedulerStats total;
  std::size_t routed = 0;    ///< submissions accepted across all shards
  std::size_t rejected = 0;  ///< submissions rejected (backpressure/drain)
};

class ClusterFrontend {
 public:
  /// All shards run against the same tech/LUT (and optional injected
  /// runner — tests inject latency/failures per job, like Scheduler's).
  ClusterFrontend(const tech::TechModel& tech, const eco::StageDelayLut& lut,
                  ClusterOptions opts = {},
                  serve::Scheduler::Runner runner = nullptr);
  ~ClusterFrontend();  ///< shutdown() on every shard
  ClusterFrontend(const ClusterFrontend&) = delete;
  ClusterFrontend& operator=(const ClusterFrontend&) = delete;

  std::size_t shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  serve::Scheduler& shard(std::size_t i) { return *shards_[i]; }

  /// Global-id <-> (shard, local-id) codec.
  std::uint64_t globalId(std::size_t shard, std::uint64_t local) const;
  std::size_t shardOf(std::uint64_t gid) const;
  std::uint64_t localId(std::uint64_t gid) const;

  struct Submitted {
    std::shared_ptr<serve::Job> job;  ///< null when rejected
    std::uint64_t id = 0;             ///< global id (0 when rejected)
    std::size_t shard = 0;            ///< routed shard (valid either way)
  };

  /// Routes on contentHash(spec) and submits to the owning shard.
  Submitted submit(serve::JobSpec spec, bool block = true);
  /// Base-affine DELTA submit (see file comment). A nonzero `trace_id`
  /// overrides the trace context inherited from the base spec. Throws
  /// std::out_of_range for an unknown base id.
  Submitted submitDelta(std::uint64_t base_gid, const serve::DeltaEdits& edits,
                        bool block = true, std::uint64_t trace_id = 0);

  /// Per-job access by global id; all throw std::out_of_range for ids
  /// whose shard never issued them (or has pruned them). Status snapshots
  /// come back with .id rewritten to the global id.
  serve::JobSpec jobSpec(std::uint64_t gid) const;
  /// The job's effective trace context id (see Scheduler::traceId); shards
  /// share the process-wide tracer, so one TRACE export covers a job's
  /// spans no matter which shard ran it.
  std::uint64_t traceId(std::uint64_t gid) const;
  serve::JobStatus status(std::uint64_t gid) const;
  core::FlowResult result(std::uint64_t gid) const;
  serve::JobStatus waitTerminal(std::uint64_t gid,
                                double timeout_ms = -1.0) const;
  bool cancel(std::uint64_t gid);

  /// Graceful per-shard teardown: the shard finishes its queued and
  /// running jobs and stops accepting; routing keeps targeting it (the
  /// partition must stay stable), so submissions landing there are
  /// rejected. Aggregated stats stay coherent throughout.
  void drainShard(std::size_t i);
  void shutdownShard(std::size_t i);  ///< immediate: queued jobs cancelled
  void drain();                       ///< drainShard on every shard
  void shutdown();                    ///< shutdownShard on every shard

  /// Aggregated snapshot; also refreshes the per-shard labeled gauges
  /// (skewopt_cluster_shard_*{shard="i"} — see docs/observability.md).
  ClusterStats stats() const;

  /// Completion epoch: bumped once per job reaching a terminal state
  /// anywhere in the cluster. waitEpoch blocks until the epoch passes
  /// `seen` (returns the new value) or the timeout elapses (returns the
  /// current value, which may still equal `seen`).
  std::uint64_t completionEpoch() const;
  std::uint64_t waitEpoch(std::uint64_t seen, double timeout_ms) const;

 private:
  void onShardTerminal(std::size_t shard, const serve::JobStatus& s);

  ShardRouter router_;
  std::vector<std::unique_ptr<serve::Scheduler>> shards_;

  mutable support::Mutex mu_;
  mutable support::CondVar epoch_cv_;
  std::uint64_t epoch_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t routed_ SKEWOPT_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ SKEWOPT_GUARDED_BY(mu_) = 0;
};

}  // namespace skewopt::cluster
