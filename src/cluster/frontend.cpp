#include "cluster/frontend.h"

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace skewopt::cluster {

namespace {

/// Per-shard instrument handles, bound once per shard at construction so
/// the submit path never touches the registry lock.
struct ShardObs {
  obs::Counter* routed;
  obs::Counter* rejected;
  obs::Gauge* queue_depth;
  obs::Gauge* cache_hits;
  obs::Gauge* cache_misses;
  obs::Gauge* warm_hits;
  obs::Gauge* warm_misses;
};

ShardObs bindShardObs(std::size_t shard) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::LabelSet labels = {{"shard", std::to_string(shard)}};
  return ShardObs{
      &reg.counter("skewopt_cluster_jobs_routed_total", labels,
                   "Jobs accepted by this shard's scheduler"),
      &reg.counter("skewopt_cluster_jobs_rejected_total", labels,
                   "Submissions this shard rejected (backpressure/drain)"),
      &reg.gauge("skewopt_cluster_shard_queue_depth", labels,
                 "Shard queue depth at the last stats() refresh"),
      &reg.gauge("skewopt_cluster_shard_cache_hits", labels,
                 "Shard result-cache hits at the last stats() refresh"),
      &reg.gauge("skewopt_cluster_shard_cache_misses", labels,
                 "Shard result-cache misses at the last stats() refresh"),
      &reg.gauge("skewopt_cluster_shard_warm_hits", labels,
                 "Shard warm-state hits at the last stats() refresh"),
      &reg.gauge("skewopt_cluster_shard_warm_misses", labels,
                 "Shard warm-state misses at the last stats() refresh"),
  };
}

std::vector<ShardObs>& shardObsFor(std::size_t shards) {
  // One process-wide table, grown on demand: shards are identified by
  // index, so front-ends of the same size share the same labeled series
  // (matching how successive Scheduler instances share the serve counters).
  static std::vector<ShardObs>* table = new std::vector<ShardObs>();
  static support::Mutex* mu = new support::Mutex();
  support::MutexLock lk(*mu);
  while (table->size() < shards) table->push_back(bindShardObs(table->size()));
  return *table;
}

}  // namespace

ClusterFrontend::ClusterFrontend(const tech::TechModel& tech,
                                 const eco::StageDelayLut& lut,
                                 ClusterOptions opts,
                                 serve::Scheduler::Runner runner)
    : router_(ShardRouterOptions{opts.shards, opts.vnodes}) {
  shardObsFor(router_.shards());
  shards_.reserve(router_.shards());
  for (std::size_t i = 0; i < router_.shards(); ++i) {
    serve::SchedulerOptions shard_opts = opts.shard;
    const auto user_hook = opts.shard.on_terminal;
    shard_opts.on_terminal = [this, i, user_hook](const serve::JobStatus& s) {
      onShardTerminal(i, s);
      if (user_hook) user_hook(s);
    };
    shards_.push_back(std::make_unique<serve::Scheduler>(
        tech, lut, std::move(shard_opts), runner));
  }
}

ClusterFrontend::~ClusterFrontend() {
  // Join every shard's workers before any member dies: the on_terminal
  // hooks they fire reach back into mu_/epoch_cv_.
  shutdown();
}

std::uint64_t ClusterFrontend::globalId(std::size_t shard,
                                        std::uint64_t local) const {
  return (local - 1) * shards_.size() + shard + 1;
}

std::size_t ClusterFrontend::shardOf(std::uint64_t gid) const {
  if (gid == 0) throw std::out_of_range("cluster: job ids start at 1");
  return static_cast<std::size_t>((gid - 1) % shards_.size());
}

std::uint64_t ClusterFrontend::localId(std::uint64_t gid) const {
  if (gid == 0) throw std::out_of_range("cluster: job ids start at 1");
  return (gid - 1) / shards_.size() + 1;
}

ClusterFrontend::Submitted ClusterFrontend::submit(serve::JobSpec spec,
                                                   bool block) {
  const std::size_t shard = router_.route(serve::contentHash(spec));
  Submitted out;
  out.shard = shard;
  out.job = shards_[shard]->submit(std::move(spec), block);
  ShardObs& so = shardObsFor(shards_.size())[shard];
  if (!out.job) {
    so.rejected->add();
    support::MutexLock lk(mu_);
    ++rejected_;
    return out;
  }
  so.routed->add();
  out.id = globalId(shard, out.job->id);
  support::MutexLock lk(mu_);
  ++routed_;
  return out;
}

ClusterFrontend::Submitted ClusterFrontend::submitDelta(
    std::uint64_t base_gid, const serve::DeltaEdits& edits, bool block,
    std::uint64_t trace_id) {
  // Pin to the base's shard (see file comment): resolve the base spec
  // there, apply the edits, and submit to the same scheduler directly
  // instead of re-routing the edited spec's content hash.
  const std::size_t shard = shardOf(base_gid);
  serve::Scheduler& sched = *shards_[shard];
  serve::JobSpec merged =
      serve::applyDeltaEdits(sched.jobSpec(localId(base_gid)), edits);
  if (trace_id != 0) merged.trace_id = trace_id;
  Submitted out;
  out.shard = shard;
  out.job = sched.submit(merged, block);
  ShardObs& so = shardObsFor(shards_.size())[shard];
  if (!out.job) {
    so.rejected->add();
    support::MutexLock lk(mu_);
    ++rejected_;
    return out;
  }
  so.routed->add();
  out.id = globalId(shard, out.job->id);
  support::MutexLock lk(mu_);
  ++routed_;
  return out;
}

serve::JobSpec ClusterFrontend::jobSpec(std::uint64_t gid) const {
  return shards_[shardOf(gid)]->jobSpec(localId(gid));
}

std::uint64_t ClusterFrontend::traceId(std::uint64_t gid) const {
  return shards_[shardOf(gid)]->traceId(localId(gid));
}

serve::JobStatus ClusterFrontend::status(std::uint64_t gid) const {
  serve::JobStatus s = shards_[shardOf(gid)]->status(localId(gid));
  s.id = gid;
  return s;
}

core::FlowResult ClusterFrontend::result(std::uint64_t gid) const {
  return shards_[shardOf(gid)]->result(localId(gid));
}

serve::JobStatus ClusterFrontend::waitTerminal(std::uint64_t gid,
                                               double timeout_ms) const {
  serve::JobStatus s =
      shards_[shardOf(gid)]->waitTerminal(localId(gid), timeout_ms);
  s.id = gid;
  return s;
}

bool ClusterFrontend::cancel(std::uint64_t gid) {
  return shards_[shardOf(gid)]->cancel(localId(gid));
}

void ClusterFrontend::drainShard(std::size_t i) { shards_[i]->drain(); }

void ClusterFrontend::shutdownShard(std::size_t i) { shards_[i]->shutdown(); }

void ClusterFrontend::drain() {
  for (const auto& s : shards_) s->drain();
}

void ClusterFrontend::shutdown() {
  for (const auto& s : shards_) s->shutdown();
}

ClusterStats ClusterFrontend::stats() const {
  ClusterStats cs;
  cs.shards.reserve(shards_.size());
  std::vector<ShardObs>& obs_table = shardObsFor(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    serve::SchedulerStats s = shards_[i]->stats();
    ShardObs& so = obs_table[i];
    so.queue_depth->set(static_cast<double>(s.queue_depth));
    so.cache_hits->set(static_cast<double>(s.cache.hits));
    so.cache_misses->set(static_cast<double>(s.cache.misses));
    so.warm_hits->set(static_cast<double>(s.warm.hits));
    so.warm_misses->set(static_cast<double>(s.warm.misses));

    serve::SchedulerStats& t = cs.total;
    t.submitted += s.submitted;
    t.done += s.done;
    t.failed += s.failed;
    t.cancelled += s.cancelled;
    t.retries += s.retries;
    t.running += s.running;
    t.queue_depth += s.queue_depth;
    t.workers += s.workers;
    t.cache.hits += s.cache.hits;
    t.cache.misses += s.cache.misses;
    t.cache.insertions += s.cache.insertions;
    t.cache.evictions += s.cache.evictions;
    t.cache.entries += s.cache.entries;
    t.warm.hits += s.warm.hits;
    t.warm.misses += s.warm.misses;
    t.warm.insertions += s.warm.insertions;
    t.warm.evictions += s.warm.evictions;
    t.warm.entries += s.warm.entries;
    cs.shards.push_back(std::move(s));
  }
  support::MutexLock lk(mu_);
  cs.routed = routed_;
  cs.rejected = rejected_;
  return cs;
}

void ClusterFrontend::onShardTerminal(std::size_t shard,
                                      const serve::JobStatus& s) {
  (void)shard;
  (void)s;
  {
    support::MutexLock lk(mu_);
    ++epoch_;
  }
  epoch_cv_.notifyAll();
}

std::uint64_t ClusterFrontend::completionEpoch() const {
  support::MutexLock lk(mu_);
  return epoch_;
}

std::uint64_t ClusterFrontend::waitEpoch(std::uint64_t seen,
                                         double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  support::MutexLock lk(mu_);
  while (epoch_ <= seen) {
    if (epoch_cv_.waitUntil(lk, deadline) == std::cv_status::timeout) break;
  }
  return epoch_;
}

}  // namespace skewopt::cluster
