// Cluster wire protocol: the serve newline-JSON protocol, dispatched
// against a ClusterFrontend instead of a single Scheduler, plus the
// cluster-only verbs.
//
// Compatibility contract: with one shard, every verb the single-scheduler
// protocol defines (SUBMIT/DELTA/STATUS/RESULT/CANCEL/STATS/METRICS/TRACE)
// answers byte-identically to serve::handleRequest — global ids collapse
// to local ids and the shard-specific fields are only added when
// shards > 1. Existing clients keep working unchanged against a cluster.
//
// New verbs (wire examples in docs/serving.md):
//   BATCH_SUBMIT  one request, many specs; one reply line with a per-spec
//                 verdict array (an invalid spec fails only its entry).
//   RESULTS       streaming subscription: per-completion event lines as
//                 jobs land, then one "end" line. The only multi-line
//                 reply in the protocol.
//   DRAIN         graceful per-shard (or whole-cluster) drain.
#pragma once

#include <string>

#include "cluster/frontend.h"
#include "serve/server.h"

namespace skewopt::cluster {

/// Dispatches one parsed single-reply request (every verb but RESULTS).
/// Never throws for protocol-level errors — they become
/// {"ok":false,"error":...} replies.
serve::json::Value handleClusterRequest(ClusterFrontend& fe,
                                        const serve::json::Value& request);

/// Full line dispatch including the streaming verbs: parses, handles, and
/// emits one or more reply lines through `emit`. Returns false when the
/// connection should close (peer gone mid-stream).
bool handleClusterLine(ClusterFrontend& fe, const std::string& line,
                       const serve::TcpServer::LineSink& emit);

/// The handler to construct a serve::TcpServer around; `fe` must outlive
/// the server.
serve::TcpServer::LineHandler clusterLineHandler(ClusterFrontend& fe);

}  // namespace skewopt::cluster
