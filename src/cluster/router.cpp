#include "cluster/router.h"

#include <algorithm>

namespace skewopt::cluster {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardRouter::ShardRouter(ShardRouterOptions opts)
    : shards_(std::max<std::size_t>(1, opts.shards)),
      vnodes_(std::max<std::size_t>(1, opts.vnodes)) {
  ring_.reserve(shards_ * vnodes_);
  for (std::size_t s = 0; s < shards_; ++s)
    for (std::size_t v = 0; v < vnodes_; ++v)
      ring_.emplace_back(
          fnv1a64("shard:" + std::to_string(s) + ":" + std::to_string(v)),
          static_cast<std::uint32_t>(s));
  // Sort by point; break point collisions by shard id so the ring is a
  // deterministic function of (shards, vnodes) alone.
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::route(std::uint64_t content_hash) const {
  if (shards_ == 1) return 0;
  // First point at or after the hash, wrapping past the top of the ring.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(content_hash, static_cast<std::uint32_t>(0)));
  return it == ring_.end() ? ring_.front().second : it->second;
}

}  // namespace skewopt::cluster
