// Basis persistence (see lp.h): version byte + LE32 count + status bytes
// + FNV-1a-32 checksum. The format is deliberately tiny — a basis is the
// only solver state worth carrying across jobs, and the warm-start API
// already tolerates a wrong-shaped basis by falling back to cold, so the
// only job of this layer is to never hand the solver *corrupt* data.
#include "lp/lp.h"

#include <cstdint>

namespace skewopt::lp {

namespace {

constexpr unsigned char kBasisFormatVersion = 1;

std::uint32_t fnv32(const unsigned char* data, std::size_t n) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void putLe32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 8) & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 16) & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 24) & 0xff));
}

std::uint32_t getLe32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<unsigned char> serializeBasis(const Basis& basis) {
  std::vector<unsigned char> out;
  out.reserve(1 + 4 + basis.status.size() + 4);
  out.push_back(kBasisFormatVersion);
  putLe32(out, static_cast<std::uint32_t>(basis.status.size()));
  for (const BasisStatus s : basis.status)
    out.push_back(static_cast<unsigned char>(s));
  putLe32(out, fnv32(out.data(), out.size()));
  return out;
}

bool deserializeBasis(const std::vector<unsigned char>& bytes, Basis* out) {
  out->status.clear();
  if (bytes.size() < 1 + 4 + 4) return false;
  if (bytes[0] != kBasisFormatVersion) return false;
  const std::uint32_t n = getLe32(bytes.data() + 1);
  if (bytes.size() != 1 + 4 + static_cast<std::size_t>(n) + 4) return false;
  const std::size_t payload = bytes.size() - 4;
  if (getLe32(bytes.data() + payload) != fnv32(bytes.data(), payload))
    return false;
  out->status.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char b = bytes[1 + 4 + i];
    if (b > static_cast<unsigned char>(BasisStatus::FreeZero)) {
      out->status.clear();
      return false;
    }
    out->status.push_back(static_cast<BasisStatus>(b));
  }
  return true;
}

}  // namespace skewopt::lp
