// Sparse revised simplex — the default implementation behind lp::solve().
//
// The global optimizer's LPs (Eqs. 4-11) are extremely sparse: a few terms
// per row, thousands of rows. The legacy solver (simplex.cpp) keeps an
// explicit dense m x m basis inverse with O(m^2) eta updates and O(m^3)
// Gauss-Jordan refactorization; this one keeps the constraint matrix in
// CSC form and the basis as a sparse LU factorization:
//
//   * factorization: right-looking Gaussian elimination with
//     Markowitz-style pivoting — row/column singletons are eliminated
//     first (zero fill; slack-heavy bases triangularize almost entirely),
//     then the residual bump picks minimum-count columns with a relative
//     stability threshold;
//   * updates: product-form eta vectors per basis change, with
//     refactorization triggered by primal-residual drift or an eta cap —
//     never on a fixed schedule alone;
//   * solves: sparse ftran (B w = a) and btran (B^T y = c) through the
//     LU triangles plus the eta file;
//   * pricing: Devex reference weights (approximate steepest edge) with
//     the same Bland anti-cycling fallback as the dense path.
//
// A warm start re-enters from a caller-supplied Basis: the basis is
// refactorized directly (rank-deficient bases are repaired with slacks,
// unusable ones fall back to a cold start) and phase 1 only runs as far
// as the start point is infeasible. Re-solving after a single row-bound
// change — the U-sweep — typically costs a handful of iterations.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lp/lp.h"

namespace skewopt::lp {
namespace detail {
namespace {

enum class VarState : unsigned char { Basic, AtLower, AtUpper, FreeZero };

struct Entry {
  int idx = -1;
  double val = 0.0;
};

/// Sparse LU factorization of one basis matrix B (columns indexed by basis
/// position, rows by constraint row), with the triangular solves. The
/// factorization records the elimination itself: per pivot step k the
/// pivot (row p_k, position q_k, value v_k), the L multipliers applied to
/// later-pivoted rows, and the U row (entries in later-pivoted positions).
class BasisLu {
 public:
  /// Factorizes the m x m matrix whose position-j column is cols[j].
  /// Returns the positions left unpivoted (rank deficiency; pair them
  /// with unpivotedRows() to repair the basis), empty on success.
  std::vector<int> factorize(int m, const std::vector<std::vector<Entry>>& cols);

  /// Solves B w = b. In: b indexed by row. Out: w indexed by position.
  void ftran(std::vector<double>& v) const;

  /// Solves B^T y = c. In: c indexed by position. Out: y indexed by row.
  void btran(std::vector<double>& v) const;

  const std::vector<int>& unpivotedRows() const { return unpivoted_rows_; }

 private:
  struct Pivot {
    int row = -1, col = -1;
    double val = 0.0;
  };
  int m_ = 0;
  std::vector<Pivot> pivots_;               ///< in elimination order
  std::vector<std::vector<Entry>> lcol_;    ///< per step: (row, multiplier)
  std::vector<std::vector<Entry>> urow_;    ///< per step: (position, value)
  std::vector<int> unpivoted_rows_;
  mutable std::vector<double> scratch_;
};

std::vector<int> BasisLu::factorize(int m,
                                    const std::vector<std::vector<Entry>>& cols) {
  m_ = m;
  pivots_.clear();
  lcol_.clear();
  urow_.clear();
  unpivoted_rows_.clear();
  pivots_.reserve(static_cast<std::size_t>(m));

  const std::size_t sm = static_cast<std::size_t>(m);
  // Active matrix, row-major; removed entries are marked val == 0 and the
  // counts track the live ones. colrows may hold stale row ids (validated
  // against the row on use).
  std::vector<std::vector<Entry>> arow(sm);
  std::vector<std::vector<int>> colrows(sm);
  std::vector<int> rcount(sm, 0), ccount(sm, 0);
  std::vector<char> rdone(sm, 0), cdone(sm, 0);
  for (int j = 0; j < m; ++j) {
    for (const Entry& e : cols[static_cast<std::size_t>(j)]) {
      if (e.val == 0.0) continue;
      arow[static_cast<std::size_t>(e.idx)].push_back({j, e.val});
      colrows[static_cast<std::size_t>(j)].push_back(e.idx);
      ++rcount[static_cast<std::size_t>(e.idx)];
      ++ccount[static_cast<std::size_t>(j)];
    }
  }

  std::vector<int> col_single, row_single;
  for (int j = 0; j < m; ++j)
    if (ccount[static_cast<std::size_t>(j)] == 1) col_single.push_back(j);
  for (int r = 0; r < m; ++r)
    if (rcount[static_cast<std::size_t>(r)] == 1) row_single.push_back(r);

  // where[col] -> index of col's live entry in the row being updated.
  std::vector<int> where(sm, -1);
  constexpr double kAbsTol = 1e-12;   // entries below this cannot pivot
  constexpr double kDropTol = 1e-13;  // cancelled fill is removed
  constexpr double kRelTol = 0.05;    // within-column stability threshold

  auto liveEntry = [&](int r, int c) -> Entry* {
    for (Entry& e : arow[static_cast<std::size_t>(r)])
      if (e.idx == c && e.val != 0.0) return &e;
    return nullptr;
  };

  for (int step = 0; step < m; ++step) {
    int pr = -1, pc = -1;
    // 1) Column singletons: pivot with zero fill.
    while (pr < 0 && !col_single.empty()) {
      const int c = col_single.back();
      col_single.pop_back();
      if (cdone[static_cast<std::size_t>(c)] ||
          ccount[static_cast<std::size_t>(c)] != 1)
        continue;
      for (const int r : colrows[static_cast<std::size_t>(c)]) {
        if (rdone[static_cast<std::size_t>(r)]) continue;
        const Entry* e = liveEntry(r, c);
        if (e != nullptr && std::abs(e->val) >= kAbsTol) {
          pr = r;
          pc = c;
          break;
        }
      }
    }
    // 2) Row singletons: also zero fill in U (the row IS the pivot).
    while (pr < 0 && !row_single.empty()) {
      const int r = row_single.back();
      row_single.pop_back();
      if (rdone[static_cast<std::size_t>(r)] ||
          rcount[static_cast<std::size_t>(r)] != 1)
        continue;
      for (const Entry& e : arow[static_cast<std::size_t>(r)]) {
        if (e.val == 0.0 || cdone[static_cast<std::size_t>(e.idx)]) continue;
        if (std::abs(e.val) >= kAbsTol) {
          pr = r;
          pc = e.idx;
        }
        break;  // the single live entry either pivots or the row is stuck
      }
    }
    // 3) Markowitz fallback: minimum-count column, then the stable entry
    //    of minimum row count within it.
    if (pr < 0) {
      int best_c = -1;
      for (int j = 0; j < m; ++j) {
        const std::size_t sj = static_cast<std::size_t>(j);
        if (cdone[sj] || ccount[sj] == 0) continue;
        if (best_c < 0 || ccount[sj] < ccount[static_cast<std::size_t>(best_c)])
          best_c = j;
      }
      while (best_c >= 0 && pr < 0) {
        double colmax = 0.0;
        for (const int r : colrows[static_cast<std::size_t>(best_c)]) {
          if (rdone[static_cast<std::size_t>(r)]) continue;
          const Entry* e = liveEntry(r, best_c);
          if (e != nullptr) colmax = std::max(colmax, std::abs(e->val));
        }
        int best_r = -1;
        for (const int r : colrows[static_cast<std::size_t>(best_c)]) {
          if (rdone[static_cast<std::size_t>(r)]) continue;
          const Entry* e = liveEntry(r, best_c);
          if (e == nullptr) continue;
          if (std::abs(e->val) < kAbsTol ||
              std::abs(e->val) < kRelTol * colmax)
            continue;
          if (best_r < 0 || rcount[static_cast<std::size_t>(r)] <
                                rcount[static_cast<std::size_t>(best_r)])
            best_r = r;
        }
        if (best_r >= 0) {
          pr = best_r;
          pc = best_c;
        } else {
          // Numerically dead column: retire it as unpivotable.
          cdone[static_cast<std::size_t>(best_c)] = 1;
          best_c = -1;
          for (int j = 0; j < m; ++j) {
            const std::size_t sj = static_cast<std::size_t>(j);
            if (cdone[sj] || ccount[sj] == 0) continue;
            if (best_c < 0 ||
                ccount[sj] < ccount[static_cast<std::size_t>(best_c)])
              best_c = j;
          }
        }
      }
    }
    if (pr < 0) break;  // rank deficient: remaining rows/cols unpivoted

    const double pv = liveEntry(pr, pc)->val;
    pivots_.push_back({pr, pc, pv});
    // U row: the pivot row's live entries in not-yet-pivoted positions.
    std::vector<Entry> prow;
    for (const Entry& e : arow[static_cast<std::size_t>(pr)])
      if (e.val != 0.0 && e.idx != pc && !cdone[static_cast<std::size_t>(e.idx)])
        prow.push_back(e);

    // Eliminate pc from every other live row.
    std::vector<Entry> lk;
    for (const int r : colrows[static_cast<std::size_t>(pc)]) {
      const std::size_t sr = static_cast<std::size_t>(r);
      if (r == pr || rdone[sr]) continue;
      Entry* e = liveEntry(r, pc);
      if (e == nullptr) continue;
      const double f = e->val / pv;
      lk.push_back({r, f});
      e->val = 0.0;
      --rcount[sr];
      for (std::size_t i = 0; i < arow[sr].size(); ++i)
        if (arow[sr][i].val != 0.0)
          where[static_cast<std::size_t>(arow[sr][i].idx)] =
              static_cast<int>(i);
      for (const Entry& pe : prow) {
        const std::size_t spc = static_cast<std::size_t>(pe.idx);
        const double delta = -f * pe.val;
        const int at = where[spc];
        if (at >= 0) {
          Entry& tgt = arow[sr][static_cast<std::size_t>(at)];
          tgt.val += delta;
          if (std::abs(tgt.val) < kDropTol) {
            tgt.val = 0.0;
            --rcount[sr];
            --ccount[spc];
            if (ccount[spc] == 1 && !cdone[spc])
              col_single.push_back(pe.idx);
          }
        } else {
          arow[sr].push_back({pe.idx, delta});
          colrows[spc].push_back(r);
          ++rcount[sr];
          ++ccount[spc];
        }
      }
      for (const Entry& re : arow[sr])
        where[static_cast<std::size_t>(re.idx)] = -1;
      if (rcount[sr] == 1) row_single.push_back(r);
    }
    lcol_.push_back(std::move(lk));
    urow_.push_back(std::move(prow));

    // Retire the pivot row and column; surviving columns of the pivot row
    // lose one live entry each.
    rdone[static_cast<std::size_t>(pr)] = 1;
    cdone[static_cast<std::size_t>(pc)] = 1;
    for (const Entry& e : arow[static_cast<std::size_t>(pr)]) {
      const std::size_t sc = static_cast<std::size_t>(e.idx);
      if (e.val == 0.0 || e.idx == pc || cdone[sc]) continue;
      --ccount[sc];
      if (ccount[sc] == 1) col_single.push_back(e.idx);
    }
  }

  if (pivots_.size() < static_cast<std::size_t>(m)) {
    // cdone is also set for numerically dead columns, so derive the real
    // unpivoted set from the recorded pivots; same for rows.
    std::vector<char> rpiv(sm, 0), cpiv(sm, 0);
    for (const Pivot& p : pivots_) {
      rpiv[static_cast<std::size_t>(p.row)] = 1;
      cpiv[static_cast<std::size_t>(p.col)] = 1;
    }
    std::vector<int> unpivoted_cols;
    for (int j = 0; j < m; ++j)
      if (!cpiv[static_cast<std::size_t>(j)]) unpivoted_cols.push_back(j);
    for (int r = 0; r < m; ++r)
      if (!rpiv[static_cast<std::size_t>(r)]) unpivoted_rows_.push_back(r);
    return unpivoted_cols;
  }
  return {};
}

void BasisLu::ftran(std::vector<double>& v) const {
  // L solve in row space: forward through the elimination.
  for (std::size_t k = 0; k < pivots_.size(); ++k) {
    const double t = v[static_cast<std::size_t>(pivots_[k].row)];
    if (t == 0.0) continue;
    for (const Entry& e : lcol_[k])
      v[static_cast<std::size_t>(e.idx)] -= e.val * t;
  }
  // U backward solve into position space.
  scratch_.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = pivots_.size(); k-- > 0;) {
    double s = v[static_cast<std::size_t>(pivots_[k].row)];
    for (const Entry& e : urow_[k])
      s -= e.val * scratch_[static_cast<std::size_t>(e.idx)];
    scratch_[static_cast<std::size_t>(pivots_[k].col)] = s / pivots_[k].val;
  }
  v.swap(scratch_);
}

void BasisLu::btran(std::vector<double>& v) const {
  // U^T forward solve with scatter: v holds position-space costs.
  scratch_.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = 0; k < pivots_.size(); ++k) {
    const double zk =
        v[static_cast<std::size_t>(pivots_[k].col)] / pivots_[k].val;
    scratch_[static_cast<std::size_t>(pivots_[k].row)] = zk;
    if (zk == 0.0) continue;
    for (const Entry& e : urow_[k])
      v[static_cast<std::size_t>(e.idx)] -= e.val * zk;
  }
  // L^T backward solve in row space.
  for (std::size_t k = pivots_.size(); k-- > 0;) {
    double t = scratch_[static_cast<std::size_t>(pivots_[k].row)];
    for (const Entry& e : lcol_[k])
      t -= e.val * scratch_[static_cast<std::size_t>(e.idx)];
    scratch_[static_cast<std::size_t>(pivots_[k].row)] = t;
  }
  v.swap(scratch_);
}

/// The revised simplex itself: phase structure, pricing, ratio test and
/// bound handling mirror the dense reference implementation, so the two
/// paths are differential-testable against each other.
class SparseSimplex {
 public:
  SparseSimplex(const Model& model, const SolverOptions& opts)
      : model_(model), opts_(opts), n_(model.numVars()), m_(model.numRows()),
        total_(n_ + m_) {
    buildCsc();
  }

  Solution run(const Basis* warm) {
    Solution sol;
    sol.warm_started = warm != nullptr && tryWarmStart(*warm);
    if (!sol.warm_started) coldStart();
    computeBasics();
    if (!iterate(/*phase1=*/true, sol)) return finish(sol);
    sol.phase1_iterations = sol.iterations;
    if (infeasibility() > 1e-6) {
      sol.status = Status::Infeasible;
      extract(sol);
      return finish(sol);
    }
    if (!iterate(/*phase1=*/false, sol)) return finish(sol);
    sol.status = Status::Optimal;
    extract(sol);
    return finish(sol);
  }

 private:
  // ---- setup -------------------------------------------------------------

  /// Compressed sparse columns of [A | -I] (structurals, then one slack
  /// per row), plus the merged bound/cost arrays.
  void buildCsc() {
    const std::size_t st = static_cast<std::size_t>(total_);
    col_start_.assign(st + 1, 0);
    for (int r = 0; r < m_; ++r)
      for (const Term& t : model_.rowTerms(r))
        ++col_start_[static_cast<std::size_t>(t.var) + 1];
    for (int r = 0; r < m_; ++r)
      col_start_[static_cast<std::size_t>(n_ + r) + 1] = 1;
    for (std::size_t j = 0; j < st; ++j) col_start_[j + 1] += col_start_[j];
    row_ix_.resize(col_start_[st]);
    a_val_.resize(col_start_[st]);
    std::vector<int> fill(st, 0);
    for (int r = 0; r < m_; ++r)
      for (const Term& t : model_.rowTerms(r)) {
        const std::size_t sj = static_cast<std::size_t>(t.var);
        const std::size_t at = col_start_[sj] +
                               static_cast<std::size_t>(fill[sj]++);
        row_ix_[at] = r;
        a_val_[at] = t.coef;
      }
    for (int r = 0; r < m_; ++r) {
      const std::size_t at = col_start_[static_cast<std::size_t>(n_ + r)];
      row_ix_[at] = r;
      a_val_[at] = -1.0;
    }

    lb_.resize(st);
    ub_.resize(st);
    cost_.assign(st, 0.0);
    for (int j = 0; j < n_; ++j) {
      lb_[static_cast<std::size_t>(j)] = model_.varLb(j);
      ub_[static_cast<std::size_t>(j)] = model_.varUb(j);
      cost_[static_cast<std::size_t>(j)] = model_.objCoef(j);
    }
    for (int r = 0; r < m_; ++r) {
      lb_[static_cast<std::size_t>(n_ + r)] = model_.rowLo(r);
      ub_[static_cast<std::size_t>(n_ + r)] = model_.rowHi(r);
    }
  }

  void setNonbasicAtBound(int j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    if (lb_[sj] > -kInf) {
      state_[sj] = VarState::AtLower;
      x_[sj] = lb_[sj];
    } else if (ub_[sj] < kInf) {
      state_[sj] = VarState::AtUpper;
      x_[sj] = ub_[sj];
    } else {
      state_[sj] = VarState::FreeZero;
      x_[sj] = 0.0;
    }
  }

  void coldStart() {
    x_.assign(static_cast<std::size_t>(total_), 0.0);
    state_.assign(static_cast<std::size_t>(total_), VarState::AtLower);
    basic_.resize(static_cast<std::size_t>(m_));
    pos_.assign(static_cast<std::size_t>(total_), -1);
    for (int j = 0; j < total_; ++j) setNonbasicAtBound(j);
    for (int r = 0; r < m_; ++r) {
      basic_[static_cast<std::size_t>(r)] = n_ + r;
      pos_[static_cast<std::size_t>(n_ + r)] = r;
      state_[static_cast<std::size_t>(n_ + r)] = VarState::Basic;
    }
    factorizeBasis();
  }

  /// Adopts a caller basis when its shape is valid and its matrix
  /// factorizes (repairing rank deficiency with slacks). Returns false to
  /// request a cold start instead.
  bool tryWarmStart(const Basis& warm) {
    if (warm.status.size() != static_cast<std::size_t>(total_)) return false;
    int nbasic = 0;
    for (const BasisStatus s : warm.status)
      if (s == BasisStatus::Basic) ++nbasic;
    if (nbasic != m_) return false;

    x_.assign(static_cast<std::size_t>(total_), 0.0);
    state_.assign(static_cast<std::size_t>(total_), VarState::AtLower);
    basic_.clear();
    basic_.reserve(static_cast<std::size_t>(m_));
    pos_.assign(static_cast<std::size_t>(total_), -1);
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      switch (warm.status[sj]) {
        case BasisStatus::Basic:
          state_[sj] = VarState::Basic;
          pos_[sj] = static_cast<int>(basic_.size());
          basic_.push_back(j);
          break;
        case BasisStatus::AtUpper:
          if (ub_[sj] < kInf) {
            state_[sj] = VarState::AtUpper;
            x_[sj] = ub_[sj];
          } else {
            setNonbasicAtBound(j);
          }
          break;
        case BasisStatus::AtLower:
          if (lb_[sj] > -kInf) {
            state_[sj] = VarState::AtLower;
            x_[sj] = lb_[sj];
          } else {
            setNonbasicAtBound(j);
          }
          break;
        case BasisStatus::FreeZero:
          state_[sj] = VarState::FreeZero;
          x_[sj] = 0.0;
          break;
      }
    }
    return factorizeBasis();
  }

  /// (Re)factorizes the current basis, repairing rank deficiency by
  /// swapping dependent basic columns for the slacks of the unpivoted
  /// rows. Returns false only when repair is impossible.
  bool factorizeBasis() {
    std::vector<std::vector<Entry>> cols(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      const int j = basic_[static_cast<std::size_t>(i)];
      auto& col = cols[static_cast<std::size_t>(i)];
      for (std::size_t at = col_start_[static_cast<std::size_t>(j)];
           at < col_start_[static_cast<std::size_t>(j) + 1]; ++at)
        col.push_back({row_ix_[at], a_val_[at]});
    }
    std::vector<int> bad = lu_.factorize(m_, cols);
    if (!bad.empty()) {
      const std::vector<int>& rows = lu_.unpivotedRows();
      if (rows.size() != bad.size()) return false;
      for (std::size_t i = 0; i < bad.size(); ++i) {
        const int position = bad[i];
        const int slack = n_ + rows[i];
        const std::size_t sslack = static_cast<std::size_t>(slack);
        if (state_[sslack] == VarState::Basic) return false;  // pathological
        const int out = basic_[static_cast<std::size_t>(position)];
        pos_[static_cast<std::size_t>(out)] = -1;
        setNonbasicAtBound(out);
        basic_[static_cast<std::size_t>(position)] = slack;
        pos_[sslack] = position;
        state_[sslack] = VarState::Basic;
      }
      for (int i = 0; i < m_; ++i) {
        const int j = basic_[static_cast<std::size_t>(i)];
        auto& col = cols[static_cast<std::size_t>(i)];
        col.clear();
        for (std::size_t at = col_start_[static_cast<std::size_t>(j)];
             at < col_start_[static_cast<std::size_t>(j) + 1]; ++at)
          col.push_back({row_ix_[at], a_val_[at]});
      }
      if (!lu_.factorize(m_, cols).empty()) return false;
    }
    etas_.clear();
    ++refactorizations_;
    return true;
  }

  // ---- solves ------------------------------------------------------------

  void ftranFull(std::vector<double>& v) const {
    lu_.ftran(v);
    for (const Eta& e : etas_) {
      const double t = v[static_cast<std::size_t>(e.r)];
      if (t == 0.0) continue;
      v[static_cast<std::size_t>(e.r)] = t * e.diag;
      for (const Entry& c : e.col)
        v[static_cast<std::size_t>(c.idx)] += c.val * t;
    }
  }

  void btranFull(std::vector<double>& v) const {
    for (std::size_t k = etas_.size(); k-- > 0;) {
      const Eta& e = etas_[k];
      double s = v[static_cast<std::size_t>(e.r)] * e.diag;
      for (const Entry& c : e.col)
        s += c.val * v[static_cast<std::size_t>(c.idx)];
      v[static_cast<std::size_t>(e.r)] = s;
    }
    lu_.btran(v);
  }

  /// x_B = B^-1 * (-(A_N x_N)) from the current nonbasic values.
  void computeBasics() {
    rhs_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (state_[sj] == VarState::Basic || x_[sj] == 0.0) continue;
      for (std::size_t at = col_start_[sj]; at < col_start_[sj + 1]; ++at)
        rhs_[static_cast<std::size_t>(row_ix_[at])] -= a_val_[at] * x_[sj];
    }
    ftranFull(rhs_);
    for (int i = 0; i < m_; ++i)
      x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] =
          rhs_[static_cast<std::size_t>(i)];
  }

  // ---- pricing -----------------------------------------------------------

  double infeasibility() const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
      const std::size_t b =
          static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
      if (x_[b] < lb_[b]) s += lb_[b] - x_[b];
      if (x_[b] > ub_[b]) s += x_[b] - ub_[b];
    }
    return s;
  }

  void basicCosts(bool phase1) {
    cb_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const std::size_t b =
          static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
      if (phase1) {
        if (x_[b] < lb_[b] - opts_.tolerance)
          cb_[static_cast<std::size_t>(i)] = -1.0;
        else if (x_[b] > ub_[b] + opts_.tolerance)
          cb_[static_cast<std::size_t>(i)] = 1.0;
      } else {
        cb_[static_cast<std::size_t>(i)] = cost_[b];
      }
    }
  }

  double reducedCost(int j, bool phase1) const {
    const std::size_t sj = static_cast<std::size_t>(j);
    double d = phase1 ? 0.0 : cost_[sj];
    for (std::size_t at = col_start_[sj]; at < col_start_[sj + 1]; ++at)
      d -= y_[static_cast<std::size_t>(row_ix_[at])] * a_val_[at];
    return d;
  }

  // ---- main loop ---------------------------------------------------------

  double currentObjective(bool phase1) const {
    if (phase1) return infeasibility();
    double o = 0.0;
    for (int j = 0; j < total_; ++j)
      o += cost_[static_cast<std::size_t>(j)] * x_[static_cast<std::size_t>(j)];
    return o;
  }

  /// Max |A x - s| over rows via the CSC arrays: O(nnz). The eta-updated
  /// representation drifts; this is the refactorization trigger.
  double primalResidual() const {
    rhs_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      const double v = x_[sj];
      if (v == 0.0) continue;
      for (std::size_t at = col_start_[sj]; at < col_start_[sj + 1]; ++at)
        rhs_[static_cast<std::size_t>(row_ix_[at])] += a_val_[at] * v;
    }
    double worst = 0.0;
    for (const double r : rhs_) worst = std::max(worst, std::abs(r));
    return worst;
  }

  bool iterate(bool phase1, Solution& sol) {
    const double tol = opts_.tolerance;
    int stall = 0;
    bool bland = false;
    double last_obj = currentObjective(phase1);
    int pivots_since_check = 0;
    devex_.assign(static_cast<std::size_t>(total_), 1.0);

    while (true) {
      if (sol.iterations >= opts_.max_iterations) {
        sol.status = Status::IterLimit;
        extract(sol);
        return false;
      }
      if (phase1 && infeasibility() <= tol) return true;

      basicCosts(phase1);
      y_ = cb_;
      btranFull(y_);

      // --- entering variable: Devex-weighted (or Bland) pricing ---
      const bool devex = opts_.pricing == SolverOptions::Pricing::kDevex;
      int enter = -1;
      double enter_dir = 0.0, enter_d = 0.0;
      double best_score = 0.0;
      for (int j = 0; j < total_; ++j) {
        const std::size_t sj = static_cast<std::size_t>(j);
        if (state_[sj] == VarState::Basic) continue;
        if (lb_[sj] == ub_[sj]) continue;  // fixed variable
        const double d = reducedCost(j, phase1);
        double dir = 0.0;
        if ((state_[sj] == VarState::AtLower ||
             state_[sj] == VarState::FreeZero) &&
            d < -tol)
          dir = 1.0;
        else if ((state_[sj] == VarState::AtUpper ||
                  state_[sj] == VarState::FreeZero) &&
                 d > tol)
          dir = -1.0;
        if (dir == 0.0) continue;
        const double score = devex ? d * d / devex_[sj] : std::abs(d);
        if (enter < 0 || score > best_score) {
          enter = j;
          enter_dir = dir;
          enter_d = d;
          best_score = score;
          if (bland) break;  // Bland: first eligible index
        }
      }
      if (enter < 0) {
        if (phase1)
          return infeasibility() <= tol
                     ? true
                     : (sol.status = Status::Infeasible, extract(sol), false);
        return true;  // phase-2 optimal
      }

      // --- ratio test ---
      w_.assign(static_cast<std::size_t>(m_), 0.0);
      {
        const std::size_t se = static_cast<std::size_t>(enter);
        for (std::size_t at = col_start_[se]; at < col_start_[se + 1]; ++at)
          w_[static_cast<std::size_t>(row_ix_[at])] = a_val_[at];
      }
      ftranFull(w_);
      const std::size_t se = static_cast<std::size_t>(enter);
      double t_max = kInf;
      int leave_pos = -1;
      double leave_to = 0.0;
      if (lb_[se] > -kInf && ub_[se] < kInf) t_max = ub_[se] - lb_[se];

      for (int i = 0; i < m_; ++i) {
        const double wi = w_[static_cast<std::size_t>(i)];
        if (std::abs(wi) < 1e-10) continue;
        const std::size_t b =
            static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
        const double rate = -enter_dir * wi;  // d x_b / d t
        const bool below = x_[b] < lb_[b] - tol;
        const bool above = x_[b] > ub_[b] + tol;
        double limit = kInf, to = 0.0;
        if (phase1 && below) {
          if (rate > 0.0) {
            limit = (lb_[b] - x_[b]) / rate;
            to = lb_[b];
          }
        } else if (phase1 && above) {
          if (rate < 0.0) {
            limit = (ub_[b] - x_[b]) / rate;
            to = ub_[b];
          }
        } else {
          if (rate > 0.0 && ub_[b] < kInf) {
            limit = (ub_[b] - x_[b]) / rate;
            to = ub_[b];
          } else if (rate < 0.0 && lb_[b] > -kInf) {
            limit = (lb_[b] - x_[b]) / rate;
            to = lb_[b];
          }
        }
        if (limit == kInf) continue;
        limit = std::max(limit, 0.0);  // tiny negative from roundoff
        bool take = limit < t_max - 1e-12;
        if (!take && limit < t_max + 1e-12 && leave_pos >= 0) {
          // Tie-break: Bland favors the smallest basic index; otherwise
          // prefer the larger pivot magnitude for stability.
          take = bland
                     ? basic_[static_cast<std::size_t>(i)] <
                           basic_[static_cast<std::size_t>(leave_pos)]
                     : std::abs(wi) >
                           std::abs(w_[static_cast<std::size_t>(leave_pos)]);
        }
        if (take) {
          t_max = limit;
          leave_pos = i;
          leave_to = to;
        }
      }

      if (t_max == kInf) {
        sol.status = phase1 ? Status::Infeasible : Status::Unbounded;
        extract(sol);
        return false;
      }

      // --- apply step ---
      ++sol.iterations;
      if (leave_pos < 0) {
        // Bound flip: entering travels to its opposite bound; no basis
        // change, no eta, no weight update.
        x_[se] += enter_dir * t_max;
        for (int i = 0; i < m_; ++i)
          x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
              enter_dir * t_max * w_[static_cast<std::size_t>(i)];
        state_[se] = (enter_dir > 0.0) ? VarState::AtUpper : VarState::AtLower;
      } else {
        const int leave = basic_[static_cast<std::size_t>(leave_pos)];
        const std::size_t bl = static_cast<std::size_t>(leave);
        x_[se] += enter_dir * t_max;
        for (int i = 0; i < m_; ++i)
          x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
              enter_dir * t_max * w_[static_cast<std::size_t>(i)];
        x_[bl] = leave_to;  // land exactly on its bound
        state_[bl] = (lb_[bl] > -kInf && leave_to <= lb_[bl] + tol)
                         ? VarState::AtLower
                         : VarState::AtUpper;
        pos_[bl] = -1;
        basic_[static_cast<std::size_t>(leave_pos)] = enter;
        pos_[se] = leave_pos;
        state_[se] = VarState::Basic;

        if (devex && !bland)
          updateDevex(enter, enter_d, leave, leave_pos, phase1);

        // Product-form update, or a refactorization when the pivot is too
        // small for a stable eta.
        const double wr = w_[static_cast<std::size_t>(leave_pos)];
        if (std::abs(wr) < 1e-8 ||
            static_cast<int>(etas_.size()) + 1 >= opts_.refactor_every) {
          refactorAndRecompute(sol);
        } else {
          Eta e;
          e.r = leave_pos;
          e.diag = 1.0 / wr;
          for (int i = 0; i < m_; ++i) {
            if (i == leave_pos) continue;
            const double wi = w_[static_cast<std::size_t>(i)];
            if (std::abs(wi) > 1e-12) e.col.push_back({i, -wi / wr});
          }
          etas_.push_back(std::move(e));
        }
        // Drift-triggered refactorization: check the cheap O(nnz) primal
        // residual periodically instead of refactorizing on a schedule.
        if (++pivots_since_check >= 32) {
          pivots_since_check = 0;
          if (!etas_.empty() && primalResidual() > 1e-7)
            refactorAndRecompute(sol);
        }
      }

      const double obj = currentObjective(phase1);
      if (obj < last_obj - tol) {
        stall = 0;
        bland = false;
        last_obj = obj;
      } else if (++stall > opts_.stall_limit) {
        bland = true;  // degeneracy guard
      }
    }
  }

  void refactorAndRecompute(Solution& sol) {
    if (!factorizeBasis())
      throw std::runtime_error("simplex: singular basis during refactor");
    computeBasics();
    (void)sol;
  }

  /// Devex reference-weight update after a basis change: every nonbasic
  /// weight absorbs its pivot-row tableau entry alpha_rj = rho . a_j, and
  /// the leaving variable re-enters the nonbasic set with the transformed
  /// entering weight.
  void updateDevex(int enter, double enter_d, int leave, int leave_pos,
                   bool phase1) {
    (void)enter_d;
    (void)phase1;
    const double alpha_e = w_[static_cast<std::size_t>(leave_pos)];
    if (std::abs(alpha_e) < 1e-12) return;
    rho_.assign(static_cast<std::size_t>(m_), 0.0);
    rho_[static_cast<std::size_t>(leave_pos)] = 1.0;
    btranFull(rho_);
    const double we = devex_[static_cast<std::size_t>(enter)];
    double maxw = 0.0;
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (state_[sj] == VarState::Basic || j == leave) continue;
      double alpha = 0.0;
      for (std::size_t at = col_start_[sj]; at < col_start_[sj + 1]; ++at)
        alpha += rho_[static_cast<std::size_t>(row_ix_[at])] * a_val_[at];
      if (alpha == 0.0) continue;
      const double cand = (alpha / alpha_e) * (alpha / alpha_e) * we;
      if (cand > devex_[sj]) devex_[sj] = cand;
      maxw = std::max(maxw, devex_[sj]);
    }
    devex_[static_cast<std::size_t>(leave)] =
        std::max(we / (alpha_e * alpha_e), 1.0);
    // Reference framework reset once the weights have grown stale.
    if (maxw > 1e8) devex_.assign(static_cast<std::size_t>(total_), 1.0);
  }

  void extract(Solution& sol) const {
    sol.x.assign(x_.begin(), x_.begin() + n_);
    sol.objective = model_.objective(sol.x);
  }

  Solution& finish(Solution& sol) const {
    sol.refactorizations = refactorizations_;
    sol.basis.status.resize(static_cast<std::size_t>(total_));
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      switch (state_[sj]) {
        case VarState::Basic: sol.basis.status[sj] = BasisStatus::Basic; break;
        case VarState::AtLower:
          sol.basis.status[sj] = BasisStatus::AtLower;
          break;
        case VarState::AtUpper:
          sol.basis.status[sj] = BasisStatus::AtUpper;
          break;
        case VarState::FreeZero:
          sol.basis.status[sj] = BasisStatus::FreeZero;
          break;
      }
    }
    return sol;
  }

  const Model& model_;
  SolverOptions opts_;
  int n_, m_, total_;
  std::vector<std::size_t> col_start_;  // CSC of [A | -I]
  std::vector<int> row_ix_;
  std::vector<double> a_val_;
  std::vector<double> lb_, ub_, cost_;
  std::vector<double> x_;
  std::vector<VarState> state_;
  std::vector<int> basic_, pos_;
  BasisLu lu_;
  struct Eta {
    int r = -1;
    double diag = 0.0;
    std::vector<Entry> col;
  };
  std::vector<Eta> etas_;
  int refactorizations_ = 0;
  std::vector<double> devex_;
  std::vector<double> cb_, y_, w_, rho_;
  mutable std::vector<double> rhs_;
};

}  // namespace

Solution solveSparse(const Model& model, const SolverOptions& opts,
                     const Basis* warm_start) {
  Solution sol;
  if (solveBoundsOnly(model, &sol)) return sol;
  SparseSimplex s(model, opts);
  return s.run(warm_start);
}

}  // namespace detail
}  // namespace skewopt::lp
