// Bounded-variable two-phase primal simplex. See lp.h for the overview.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "lp/lp.h"

namespace skewopt::lp {

int Model::addVar(double lb, double ub, double obj, std::string name) {
  if (lb > ub) throw std::invalid_argument("Model::addVar: lb > ub");
  obj_.push_back(obj);
  var_lb_.push_back(lb);
  var_ub_.push_back(ub);
  // Built in a fresh string and move-assigned: GCC 12's -Wrestrict
  // misdiagnoses any char* copy into `name` under heavy inlining.
  if (name.empty()) {
    std::string generated = std::to_string(obj_.size() - 1);
    generated.insert(0, 1, 'x');
    name = std::move(generated);
  }
  var_names_.push_back(std::move(name));
  return static_cast<int>(obj_.size()) - 1;
}

void Model::addRow(double lo, double hi, std::vector<Term> terms,
                   std::string name) {
  if (lo > hi) throw std::invalid_argument("Model::addRow: lo > hi");
  for (const Term& t : terms)
    if (t.var < 0 || t.var >= numVars())
      throw std::out_of_range("Model::addRow: bad var index");
  // Coalesce duplicate-variable terms and drop exact zeros, so that the
  // column build sees each (row, var) entry once and nnz_ stays exact.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms.size();) {
    double coef = terms[i].coef;
    std::size_t j = i + 1;
    while (j < terms.size() && terms[j].var == terms[i].var)
      coef += terms[j++].coef;
    if (coef != 0.0) terms[out++] = {terms[i].var, coef};
    i = j;
  }
  terms.resize(out);
  nnz_ += terms.size();
  row_lo_.push_back(lo);
  row_hi_.push_back(hi);
  rows_.push_back(std::move(terms));
  if (name.empty()) {  // see addVar: keep char* copies out of `name`
    std::string generated = std::to_string(rows_.size() - 1);
    generated.insert(0, 1, 'r');
    name = std::move(generated);
  }
  row_names_.push_back(std::move(name));
}

void Model::setRowBounds(int r, double lo, double hi) {
  if (r < 0 || r >= numRows())
    throw std::out_of_range("Model::setRowBounds: bad row index");
  if (lo > hi) throw std::invalid_argument("Model::setRowBounds: lo > hi");
  row_lo_[static_cast<std::size_t>(r)] = lo;
  row_hi_[static_cast<std::size_t>(r)] = hi;
}

double Model::objective(const std::vector<double>& x) const {
  double o = 0.0;
  for (std::size_t j = 0; j < obj_.size(); ++j) o += obj_[j] * x[j];
  return o;
}

double Model::maxViolation(const std::vector<double>& x) const {
  double v = 0.0;
  for (std::size_t j = 0; j < obj_.size(); ++j) {
    if (var_lb_[j] > -kInf) v = std::max(v, var_lb_[j] - x[j]);
    if (var_ub_[j] < kInf) v = std::max(v, x[j] - var_ub_[j]);
  }
  for (int r = 0; r < numRows(); ++r) {
    double ax = 0.0;
    for (const Term& t : rows_[static_cast<std::size_t>(r)])
      ax += t.coef * x[static_cast<std::size_t>(t.var)];
    if (row_lo_[static_cast<std::size_t>(r)] > -kInf)
      v = std::max(v, row_lo_[static_cast<std::size_t>(r)] - ax);
    if (row_hi_[static_cast<std::size_t>(r)] < kInf)
      v = std::max(v, ax - row_hi_[static_cast<std::size_t>(r)]);
  }
  return v;
}

const char* statusName(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

enum class VarState : unsigned char { Basic, AtLower, AtUpper, FreeZero };

class Simplex {
 public:
  Simplex(const Model& model, const SolverOptions& opts)
      : model_(model), opts_(opts), n_(model.numVars()), m_(model.numRows()),
        total_(n_ + m_) {
    buildColumns();
    initBasis();
  }

  Solution run() {
    Solution sol;
    computeBasics();
    // Phase 1: drive bound infeasibility of basic variables to zero.
    if (!iterate(/*phase1=*/true, sol)) return sol;
    sol.phase1_iterations = sol.iterations;
    if (infeasibility() > 1e-6) {
      sol.status = Status::Infeasible;
      extract(sol);
      return sol;
    }
    // Phase 2: optimize the true objective.
    if (!iterate(/*phase1=*/false, sol)) return sol;
    sol.status = Status::Optimal;
    extract(sol);
    return sol;
  }

 private:
  // ---- setup -------------------------------------------------------------

  void buildColumns() {
    cols_.resize(static_cast<std::size_t>(total_));
    for (int r = 0; r < m_; ++r)
      for (const Term& t : model_.rowTerms(r))
        cols_[static_cast<std::size_t>(t.var)].push_back({r, t.coef});
    for (int r = 0; r < m_; ++r)
      cols_[static_cast<std::size_t>(n_ + r)].push_back({r, -1.0});

    lb_.resize(static_cast<std::size_t>(total_));
    ub_.resize(static_cast<std::size_t>(total_));
    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    for (int j = 0; j < n_; ++j) {
      lb_[static_cast<std::size_t>(j)] = model_.varLb(j);
      ub_[static_cast<std::size_t>(j)] = model_.varUb(j);
      cost_[static_cast<std::size_t>(j)] = model_.objCoef(j);
    }
    for (int r = 0; r < m_; ++r) {
      lb_[static_cast<std::size_t>(n_ + r)] = model_.rowLo(r);
      ub_[static_cast<std::size_t>(n_ + r)] = model_.rowHi(r);
    }
  }

  void initBasis() {
    x_.assign(static_cast<std::size_t>(total_), 0.0);
    state_.assign(static_cast<std::size_t>(total_), VarState::AtLower);
    basic_.resize(static_cast<std::size_t>(m_));
    pos_.assign(static_cast<std::size_t>(total_), -1);
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (lb_[sj] > -kInf) {
        state_[sj] = VarState::AtLower;
        x_[sj] = lb_[sj];
      } else if (ub_[sj] < kInf) {
        state_[sj] = VarState::AtUpper;
        x_[sj] = ub_[sj];
      } else {
        state_[sj] = VarState::FreeZero;
        x_[sj] = 0.0;
      }
    }
    // Slack basis: column of slack r is -e_r, so B = -I and Binv = -I.
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
                 0.0);
    for (int r = 0; r < m_; ++r) {
      basic_[static_cast<std::size_t>(r)] = n_ + r;
      pos_[static_cast<std::size_t>(n_ + r)] = r;
      state_[static_cast<std::size_t>(n_ + r)] = VarState::Basic;
      binv(r, r) = -1.0;
    }
  }

  double& binv(int i, int j) {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(j)];
  }
  double binvAt(int i, int j) const {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(j)];
  }

  // x_B = Binv * (-(A_N x_N)) from current nonbasic values.
  void computeBasics() {
    std::vector<double> rhs(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < total_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (state_[sj] == VarState::Basic || x_[sj] == 0.0) continue;
      for (const Term& t : cols_[sj])
        rhs[static_cast<std::size_t>(t.var)] -= t.coef * x_[sj];
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int r = 0; r < m_; ++r) v += binvAt(i, r) * rhs[static_cast<std::size_t>(r)];
      x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] = v;
    }
  }

  // ---- pricing -----------------------------------------------------------

  double infeasibility() const {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
      const std::size_t b =
          static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
      if (x_[b] < lb_[b]) s += lb_[b] - x_[b];
      if (x_[b] > ub_[b]) s += x_[b] - ub_[b];
    }
    return s;
  }

  // Phase-dependent basic cost vector into cb_ (phase 1: +/-1 on violated
  // basics; phase 2: true costs of basics).
  void basicCosts(bool phase1) {
    cb_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const std::size_t b =
          static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
      if (phase1) {
        if (x_[b] < lb_[b] - opts_.tolerance)
          cb_[static_cast<std::size_t>(i)] = -1.0;
        else if (x_[b] > ub_[b] + opts_.tolerance)
          cb_[static_cast<std::size_t>(i)] = 1.0;
      } else {
        cb_[static_cast<std::size_t>(i)] = cost_[b];
      }
    }
  }

  // y = cb^T * Binv
  void computeY() {
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double c = cb_[static_cast<std::size_t>(i)];
      if (c == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(i) *
                                 static_cast<std::size_t>(m_)];
      for (int j = 0; j < m_; ++j) y_[static_cast<std::size_t>(j)] += c * row[j];
    }
  }

  double reducedCost(int j, bool phase1) const {
    double d = phase1 ? 0.0 : cost_[static_cast<std::size_t>(j)];
    for (const Term& t : cols_[static_cast<std::size_t>(j)])
      d -= y_[static_cast<std::size_t>(t.var)] * t.coef;
    return d;
  }

  // w = Binv * a_e
  void ftran(int e) {
    w_.assign(static_cast<std::size_t>(m_), 0.0);
    for (const Term& t : cols_[static_cast<std::size_t>(e)]) {
      const double cf = t.coef;
      const int r = t.var;
      for (int i = 0; i < m_; ++i)
        w_[static_cast<std::size_t>(i)] += cf * binvAt(i, r);
    }
  }

  // ---- pivoting ----------------------------------------------------------

  void refactorize() {
    // Dense Gauss-Jordan inversion of the basis matrix.
    const std::size_t mm = static_cast<std::size_t>(m_);
    std::vector<double> a(mm * mm, 0.0);
    for (int i = 0; i < m_; ++i)
      for (const Term& t : cols_[static_cast<std::size_t>(
               basic_[static_cast<std::size_t>(i)])])
        a[static_cast<std::size_t>(t.var) * mm + static_cast<std::size_t>(i)] =
            t.coef;
    std::vector<double> inv(mm * mm, 0.0);
    for (std::size_t i = 0; i < mm; ++i) inv[i * mm + i] = 1.0;
    for (std::size_t col = 0; col < mm; ++col) {
      std::size_t piv = col;
      double best = std::abs(a[col * mm + col]);
      for (std::size_t r = col + 1; r < mm; ++r) {
        const double v = std::abs(a[r * mm + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      if (best < 1e-12)
        throw std::runtime_error("simplex: singular basis during refactor");
      if (piv != col) {
        for (std::size_t j = 0; j < mm; ++j) {
          std::swap(a[piv * mm + j], a[col * mm + j]);
          std::swap(inv[piv * mm + j], inv[col * mm + j]);
        }
      }
      const double s = 1.0 / a[col * mm + col];
      for (std::size_t j = 0; j < mm; ++j) {
        a[col * mm + j] *= s;
        inv[col * mm + j] *= s;
      }
      for (std::size_t r = 0; r < mm; ++r) {
        if (r == col) continue;
        const double f = a[r * mm + col];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < mm; ++j) {
          a[r * mm + j] -= f * a[col * mm + j];
          inv[r * mm + j] -= f * inv[col * mm + j];
        }
      }
    }
    binv_ = std::move(inv);
    computeBasics();
  }

  void updateBinv(int r) {
    const double piv = w_[static_cast<std::size_t>(r)];
    double* rowr =
        &binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_)];
    const double s = 1.0 / piv;
    for (int j = 0; j < m_; ++j) rowr[j] *= s;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double f = w_[static_cast<std::size_t>(i)];
      if (f == 0.0) continue;
      double* rowi =
          &binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_)];
      for (int j = 0; j < m_; ++j) rowi[j] -= f * rowr[j];
    }
  }

  // ---- main loop ---------------------------------------------------------

  // Returns false if the overall solve must stop (status set in sol).
  bool iterate(bool phase1, Solution& sol) {
    const double tol = opts_.tolerance;
    int stall = 0;
    bool bland = false;
    double last_obj = currentObjective(phase1);
    int since_refactor = 0;

    while (true) {
      if (sol.iterations >= opts_.max_iterations) {
        sol.status = Status::IterLimit;
        extract(sol);
        return false;
      }
      if (phase1 && infeasibility() <= tol) return true;

      basicCosts(phase1);
      computeY();

      // --- entering variable ---
      int enter = -1;
      double enter_dir = 0.0;
      double best_score = tol;
      for (int j = 0; j < total_; ++j) {
        const std::size_t sj = static_cast<std::size_t>(j);
        if (state_[sj] == VarState::Basic) continue;
        if (lb_[sj] == ub_[sj]) continue;  // fixed variable
        const double d = reducedCost(j, phase1);
        double dir = 0.0;
        if ((state_[sj] == VarState::AtLower ||
             state_[sj] == VarState::FreeZero) &&
            d < -best_score)
          dir = 1.0;
        else if ((state_[sj] == VarState::AtUpper ||
                  state_[sj] == VarState::FreeZero) &&
                 d > best_score)
          dir = -1.0;
        if (dir != 0.0) {
          enter = j;
          enter_dir = dir;
          if (bland) break;          // Bland: first eligible index
          best_score = std::abs(d);  // Dantzig: most violating
        }
      }
      if (enter < 0) {
        if (phase1) {
          // No direction reduces infeasibility: phase-1 optimum reached.
          return infeasibility() <= tol
                     ? true
                     : (sol.status = Status::Infeasible, extract(sol), false);
        }
        return true;  // phase-2 optimal
      }

      // --- ratio test ---
      ftran(enter);
      const std::size_t se = static_cast<std::size_t>(enter);
      double t_max = kInf;
      int leave_pos = -1;
      double leave_to = 0.0;  // bound value the leaving variable lands on
      // Entering variable's own opposite bound.
      if (lb_[se] > -kInf && ub_[se] < kInf) t_max = ub_[se] - lb_[se];

      for (int i = 0; i < m_; ++i) {
        const double wi = w_[static_cast<std::size_t>(i)];
        if (std::abs(wi) < 1e-10) continue;
        const std::size_t b =
            static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
        // x_b moves by -enter_dir * t * wi.
        const double rate = -enter_dir * wi;  // d x_b / d t
        const bool below = x_[b] < lb_[b] - tol;
        const bool above = x_[b] > ub_[b] + tol;
        double limit = kInf, to = 0.0;
        if (phase1 && below) {
          if (rate > 0.0) {  // moving up toward lb
            limit = (lb_[b] - x_[b]) / rate;
            to = lb_[b];
          }
        } else if (phase1 && above) {
          if (rate < 0.0) {  // moving down toward ub
            limit = (ub_[b] - x_[b]) / rate;
            to = ub_[b];
          }
        } else {
          if (rate > 0.0 && ub_[b] < kInf) {
            limit = (ub_[b] - x_[b]) / rate;
            to = ub_[b];
          } else if (rate < 0.0 && lb_[b] > -kInf) {
            limit = (lb_[b] - x_[b]) / rate;
            to = lb_[b];
          }
        }
        if (limit < -tol) limit = 0.0;  // tiny negative from roundoff
        limit = std::max(limit, 0.0);
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 && leave_pos >= 0 && bland &&
             basic_[static_cast<std::size_t>(i)] <
                 basic_[static_cast<std::size_t>(leave_pos)])) {
          t_max = limit;
          leave_pos = i;
          leave_to = to;
        }
      }

      if (t_max == kInf) {
        sol.status = phase1 ? Status::Infeasible : Status::Unbounded;
        extract(sol);
        return false;
      }

      // --- apply step ---
      ++sol.iterations;
      ++since_refactor;
      if (leave_pos < 0) {
        // Bound flip: entering travels to its opposite bound.
        x_[se] += enter_dir * t_max;
        for (int i = 0; i < m_; ++i)
          x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
              enter_dir * t_max * w_[static_cast<std::size_t>(i)];
        state_[se] = (enter_dir > 0.0) ? VarState::AtUpper : VarState::AtLower;
      } else {
        const std::size_t bl = static_cast<std::size_t>(
            basic_[static_cast<std::size_t>(leave_pos)]);
        x_[se] += enter_dir * t_max;
        for (int i = 0; i < m_; ++i)
          x_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] -=
              enter_dir * t_max * w_[static_cast<std::size_t>(i)];
        x_[bl] = leave_to;  // land exactly on its bound
        state_[bl] = (lb_[bl] > -kInf && leave_to <= lb_[bl] + tol)
                         ? VarState::AtLower
                         : VarState::AtUpper;
        pos_[bl] = -1;
        basic_[static_cast<std::size_t>(leave_pos)] = enter;
        pos_[se] = leave_pos;
        state_[se] = VarState::Basic;
        updateBinv(leave_pos);
      }

      // Refactorize only when the eta-updated inverse has actually drifted
      // (checked via the cheap O(nnz) primal residual A x - s = 0), not on
      // a fixed schedule — Gauss-Jordan is O(m^3) and dominates otherwise.
      if (since_refactor >= opts_.refactor_every) {
        since_refactor = 0;
        if (primalResidual() > 1e-7) refactorize();
      }

      const double obj = currentObjective(phase1);
      if (obj < last_obj - tol) {
        stall = 0;
        bland = false;
        last_obj = obj;
      } else if (++stall > opts_.stall_limit) {
        bland = true;  // degeneracy guard
      }
    }
  }

  // Max |A x - s| over rows, using the sparse columns: O(nnz).
  double primalResidual() const {
    std::vector<double> res(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < total_; ++j) {
      const double v = x_[static_cast<std::size_t>(j)];
      if (v == 0.0) continue;
      for (const Term& t : cols_[static_cast<std::size_t>(j)])
        res[static_cast<std::size_t>(t.var)] += t.coef * v;
    }
    double worst = 0.0;
    for (const double r : res) worst = std::max(worst, std::abs(r));
    return worst;
  }

  double currentObjective(bool phase1) const {
    if (phase1) return infeasibility();
    double o = 0.0;
    for (int j = 0; j < total_; ++j)
      o += cost_[static_cast<std::size_t>(j)] * x_[static_cast<std::size_t>(j)];
    return o;
  }

  void extract(Solution& sol) const {
    sol.x.assign(x_.begin(), x_.begin() + n_);
    sol.objective = model_.objective(sol.x);
  }

  const Model& model_;
  SolverOptions opts_;
  int n_, m_, total_;
  std::vector<std::vector<Term>> cols_;  // column-wise matrix incl. slacks
  std::vector<double> lb_, ub_, cost_;
  std::vector<double> x_;
  std::vector<VarState> state_;
  std::vector<int> basic_, pos_;
  std::vector<double> binv_, cb_, y_, w_;
};

}  // namespace

namespace detail {

/// Shared fast path: a model with no rows is a pure bound problem; each
/// variable sits on its cheaper bound. Returns false when rows exist.
bool solveBoundsOnly(const Model& model, Solution* out) {
  if (model.numRows() != 0) return false;
  Solution sol;
  sol.status = Status::Optimal;
  sol.x.resize(static_cast<std::size_t>(model.numVars()));
  for (int j = 0; j < model.numVars(); ++j) {
    const double c = model.objCoef(j);
    const double lb = model.varLb(j), ub = model.varUb(j);
    double v;
    if (c > 0.0)
      v = lb;
    else if (c < 0.0)
      v = ub;
    else
      v = (lb > -kInf) ? lb : (ub < kInf ? ub : 0.0);
    if (v == -kInf || v == kInf) {
      sol.status = Status::Unbounded;
      v = 0.0;
    }
    sol.x[static_cast<std::size_t>(j)] = v;
  }
  sol.objective = model.objective(sol.x);
  *out = std::move(sol);
  return true;
}

Solution solveDense(const Model& model, const SolverOptions& opts) {
  Solution sol;
  if (solveBoundsOnly(model, &sol)) return sol;
  Simplex s(model, opts);
  return s.run();
}

}  // namespace detail

Solution solve(const Model& model, const SolverOptions& opts,
               const Basis* warm_start) {
  if (opts.algorithm == SolverOptions::Algorithm::kDense)
    return detail::solveDense(model, opts);
  return detail::solveSparse(model, opts, warm_start);
}

}  // namespace skewopt::lp
