// Linear programming for the global skew-variation optimization.
//
// The paper solves the LP of its Eqs. (4)-(11) with a commercial-grade
// solver; this module is a from-scratch replacement: a bounded-variable
// primal simplex with
//   * ranged rows (lo <= a.x <= hi) handled through slack variables,
//   * a phase-1 that drives the sum of bound infeasibilities to zero,
//   * a sparse revised implementation (the default): CSC column storage,
//     sparse LU basis factorization with Markowitz-style pivoting,
//     product-form eta updates with drift-triggered refactorization,
//     sparse ftran/btran, and Devex pricing with a Bland anti-cycling
//     fallback,
//   * a warm-start API: solve() accepts the Basis of a previous solve and
//     re-enters from it — the U-sweep of the global optimizer changes one
//     row bound per step, so each re-solve is a handful of iterations,
//   * the original dense-inverse simplex kept as a reference
//     implementation (Algorithm::kDense) for differential tests and the
//     cold-dense-vs-warm-sparse benchmarks.
//
// The Model API is deliberately close to what callers of a commercial LP
// library would write, so the global optimizer reads like the paper.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace skewopt::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct Term {
  int var = -1;
  double coef = 0.0;
};

/// An LP in the form: minimize c.x subject to lo_r <= A x <= hi_r and
/// lb_j <= x_j <= ub_j. Equality rows use lo == hi; one-sided rows use
/// +/-kInf on the open side. Duplicate-variable terms in a row are
/// coalesced and zero coefficients dropped, so numNonzeros() is exact.
class Model {
 public:
  int addVar(double lb, double ub, double obj, std::string name = "");
  void addRow(double lo, double hi, std::vector<Term> terms,
              std::string name = "");

  /// Re-bounds an existing row (the U-sweep retightens Eq. (5) in place
  /// instead of rebuilding the whole model).
  void setRowBounds(int r, double lo, double hi);

  int numVars() const { return static_cast<int>(obj_.size()); }
  int numRows() const { return static_cast<int>(row_lo_.size()); }
  std::size_t numNonzeros() const { return nnz_; }

  double objCoef(int v) const { return obj_[static_cast<std::size_t>(v)]; }
  double varLb(int v) const { return var_lb_[static_cast<std::size_t>(v)]; }
  double varUb(int v) const { return var_ub_[static_cast<std::size_t>(v)]; }
  double rowLo(int r) const { return row_lo_[static_cast<std::size_t>(r)]; }
  double rowHi(int r) const { return row_hi_[static_cast<std::size_t>(r)]; }
  const std::vector<Term>& rowTerms(int r) const {
    return rows_[static_cast<std::size_t>(r)];
  }
  const std::string& varName(int v) const {
    return var_names_[static_cast<std::size_t>(v)];
  }

  /// Evaluates a candidate point: objective and worst constraint violation.
  double objective(const std::vector<double>& x) const;
  double maxViolation(const std::vector<double>& x) const;

 private:
  std::vector<double> obj_, var_lb_, var_ub_;
  std::vector<double> row_lo_, row_hi_;
  std::vector<std::vector<Term>> rows_;
  std::vector<std::string> var_names_, row_names_;
  std::size_t nnz_ = 0;
};

enum class Status { Optimal, Infeasible, Unbounded, IterLimit };

const char* statusName(Status s);

/// Status of one variable in a simplex basis. Indices 0..numVars()-1 are
/// the structural variables, numVars()..numVars()+numRows()-1 the row
/// slacks.
enum class BasisStatus : unsigned char { Basic, AtLower, AtUpper, FreeZero };

/// A basis snapshot: one status per structural variable and row slack.
/// Returned by the sparse solver in Solution::basis and accepted back as a
/// warm start. A basis from a model with one fewer row can be extended by
/// appending a Basic entry for the new row's slack (the slack column is a
/// unit column, so the extended basis stays nonsingular) — this is how the
/// first U-sweep LP warm-starts from the min-sum-V pass.
struct Basis {
  std::vector<BasisStatus> status;
  bool empty() const { return status.empty(); }
};

/// Compact binary form of a Basis for persistence (the serve warm-state
/// store keeps bases in this form): a version byte, a little-endian entry
/// count, one status byte per entry, and a trailing FNV-1a-32 checksum of
/// everything before it. deserializeBasis rejects unknown versions,
/// truncated or oversized payloads, out-of-range status bytes, and
/// checksum mismatches — a corrupt blob yields `false` and leaves `*out`
/// empty, so callers fall back to a cold start instead of feeding the
/// solver garbage.
std::vector<unsigned char> serializeBasis(const Basis& basis);
bool deserializeBasis(const std::vector<unsigned char>& bytes, Basis* out);

struct Solution {
  Status status = Status::IterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< structural variable values
  int iterations = 0;
  int phase1_iterations = 0;
  int refactorizations = 0;  ///< sparse LU (re)factorizations performed
  /// True when a supplied warm-start basis was accepted (valid shape and
  /// factorizable, possibly after slack repair); false on cold starts and
  /// on fallbacks from an unusable warm basis.
  bool warm_started = false;
  /// Final basis (sparse solver only) — feed to the next solve's
  /// `warm_start` to re-enter from this vertex.
  Basis basis;
};

struct SolverOptions {
  /// kSparse: the revised simplex (default). kDense: the legacy explicit
  /// dense-inverse simplex, kept for differential testing and benchmarks;
  /// it ignores warm starts and returns no basis.
  enum class Algorithm : unsigned char { kSparse, kDense };
  /// Entering-variable rule of the sparse path. Devex approximates
  /// steepest-edge with reference weights; Dantzig is the classic
  /// most-negative reduced cost.
  enum class Pricing : unsigned char { kDevex, kDantzig };

  int max_iterations = 200000;
  double tolerance = 1e-7;
  /// Dense path: eta-update count between drift checks. Sparse path: hard
  /// cap on accumulated eta vectors before a forced refactorization
  /// (drift-triggered refactorizations can come earlier).
  int refactor_every = 120;
  /// Switch to Bland's rule after this many consecutive non-improving
  /// iterations (degeneracy guard).
  int stall_limit = 500;
  Algorithm algorithm = Algorithm::kSparse;
  Pricing pricing = Pricing::kDevex;
};

/// Solves the model. Deterministic for a given (model, options, warm
/// start). `warm_start` may be null (cold start) or a Basis from a prior
/// solve of a structurally compatible model; an unusable basis silently
/// falls back to a cold start (see Solution::warm_started).
Solution solve(const Model& model, const SolverOptions& opts = {},
               const Basis* warm_start = nullptr);

namespace detail {
/// The two implementations behind solve(); exposed for differential tests.
Solution solveDense(const Model& model, const SolverOptions& opts);
Solution solveSparse(const Model& model, const SolverOptions& opts,
                     const Basis* warm_start);
/// Row-free fast path shared by both; true if it produced the solution.
bool solveBoundsOnly(const Model& model, Solution* out);
}  // namespace detail

}  // namespace skewopt::lp
