// Linear programming for the global skew-variation optimization.
//
// The paper solves the LP of its Eqs. (4)-(11) with a commercial-grade
// solver; this module is a from-scratch replacement: a bounded-variable
// primal simplex with
//   * ranged rows (lo <= a.x <= hi) handled through slack variables,
//   * a phase-1 that drives the sum of bound infeasibilities to zero,
//   * Dantzig pricing with a Bland anti-cycling fallback,
//   * an explicit dense basis inverse with eta updates and periodic
//     refactorization (problem sizes here are a few thousand rows).
//
// The Model API is deliberately close to what callers of a commercial LP
// library would write, so the global optimizer reads like the paper.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace skewopt::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct Term {
  int var = -1;
  double coef = 0.0;
};

/// An LP in the form: minimize c.x subject to lo_r <= A x <= hi_r and
/// lb_j <= x_j <= ub_j. Equality rows use lo == hi; one-sided rows use
/// +/-kInf on the open side.
class Model {
 public:
  int addVar(double lb, double ub, double obj, std::string name = "");
  void addRow(double lo, double hi, std::vector<Term> terms,
              std::string name = "");

  int numVars() const { return static_cast<int>(obj_.size()); }
  int numRows() const { return static_cast<int>(row_lo_.size()); }
  std::size_t numNonzeros() const { return nnz_; }

  double objCoef(int v) const { return obj_[static_cast<std::size_t>(v)]; }
  double varLb(int v) const { return var_lb_[static_cast<std::size_t>(v)]; }
  double varUb(int v) const { return var_ub_[static_cast<std::size_t>(v)]; }
  double rowLo(int r) const { return row_lo_[static_cast<std::size_t>(r)]; }
  double rowHi(int r) const { return row_hi_[static_cast<std::size_t>(r)]; }
  const std::vector<Term>& rowTerms(int r) const {
    return rows_[static_cast<std::size_t>(r)];
  }
  const std::string& varName(int v) const {
    return var_names_[static_cast<std::size_t>(v)];
  }

  /// Evaluates a candidate point: objective and worst constraint violation.
  double objective(const std::vector<double>& x) const;
  double maxViolation(const std::vector<double>& x) const;

 private:
  std::vector<double> obj_, var_lb_, var_ub_;
  std::vector<double> row_lo_, row_hi_;
  std::vector<std::vector<Term>> rows_;
  std::vector<std::string> var_names_, row_names_;
  std::size_t nnz_ = 0;
};

enum class Status { Optimal, Infeasible, Unbounded, IterLimit };

const char* statusName(Status s);

struct Solution {
  Status status = Status::IterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< structural variable values
  int iterations = 0;
  int phase1_iterations = 0;
};

struct SolverOptions {
  int max_iterations = 200000;
  double tolerance = 1e-7;
  int refactor_every = 300;
  /// Switch to Bland's rule after this many consecutive non-improving
  /// iterations (degeneracy guard).
  int stall_limit = 500;
};

/// Solves the model. Deterministic for a given model.
Solution solve(const Model& model, const SolverOptions& opts = {});

}  // namespace skewopt::lp
