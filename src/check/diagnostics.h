// Diagnostic engine for the design-invariant checker subsystem.
//
// Every verifier in src/check (and the serve-side JobSpec checker) reports
// findings through a DiagnosticEngine as stable `SKW###` codes: production
// flows grep logs and gate CI on codes, not on message text, so the code
// of an existing diagnostic must never be renumbered — docs/static_analysis.md
// is the catalog. Severities:
//
//   kError   — a structural invariant is broken; the stage gates treat any
//              error as fatal (CheckFailure).
//   kWarning — suspicious but not invariant-breaking; reported, never fatal.
//   kNote    — context attached to a preceding finding.
//
// Check levels: kCheap checks are O(design) structural walks wired
// unconditionally into every stage gate; kDeep adds full multi-corner STA
// re-verification and quadratic scans, and is enabled per run via the
// SKEWOPT_CHECK_LEVEL environment variable, the CLI's --check flag, or the
// serve protocol's "check" spec field.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace skewopt::check {

enum class Severity { kNote, kWarning, kError };
const char* severityName(Severity s);

/// How much verification a stage gate runs. Ordered: a level includes
/// everything below it.
enum class Level { kOff = 0, kCheap = 1, kDeep = 2 };
const char* levelName(Level l);

/// Parses "off|cheap|deep" (or "0|1|2"). Returns false on anything else.
bool parseLevel(const std::string& text, Level* out);

/// SKEWOPT_CHECK_LEVEL, when set and parseable, overrides the configured
/// level (so a deployment can force deep checks — or silence a gate —
/// without touching call sites); otherwise `configured` stands.
Level effectiveLevel(Level configured);

/// "SKW###", zero-padded to three digits.
std::string codeString(int code);

struct Diagnostic {
  int code = 0;
  Severity severity = Severity::kError;
  std::string check;    ///< verifier name, e.g. "tree-structure"
  std::string where;    ///< gate context, e.g. "flow:input"
  std::string message;  ///< human-readable finding
};

/// Collects diagnostics from a sequence of verifier runs. Bounded: after
/// `max_diagnostics` findings further reports only bump the counters (a
/// corrupt 100k-node tree should not produce a 100k-line report).
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(std::size_t max_diagnostics = 64)
      : max_diagnostics_(max_diagnostics) {}

  /// Stamps subsequent diagnostics' `where` field (stage gates set this to
  /// their stage name before running the verifiers).
  void setContext(std::string context) { context_ = std::move(context); }
  const std::string& context() const { return context_; }

  void report(int code, Severity severity, const char* check,
              std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t errorCount() const { return errors_; }
  std::size_t warningCount() const { return warnings_; }
  bool hasErrors() const { return errors_ > 0; }
  bool empty() const { return errors_ == 0 && warnings_ == 0 && notes_ == 0; }
  /// Findings counted but not recorded (over the max_diagnostics cap).
  std::size_t dropped() const { return dropped_; }

  /// True iff some diagnostic carries `code`.
  bool hasCode(int code) const;

  /// Human-readable report, one "SKW### severity [check] where: message"
  /// line per finding.
  std::string text() const;

  /// JSON emission: {"errors":N,"warnings":N,"diagnostics":[{...},...]}.
  std::string json() const;

  void clear();

 private:
  std::size_t max_diagnostics_;
  std::string context_;
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0, warnings_ = 0, notes_ = 0, dropped_ = 0;
};

/// Thrown by a stage gate whose DiagnosticEngine collected errors. what()
/// carries the full text report; the structured findings stay accessible
/// for callers (the serve layer folds them into the FAILED job error).
class CheckFailure : public std::runtime_error {
 public:
  CheckFailure(const DiagnosticEngine& engine, const std::string& stage);
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace skewopt::check
