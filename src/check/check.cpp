#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace skewopt::check {

namespace {

constexpr double kPosTolUm = 1e-6;   ///< exact-copy positions, float noise
constexpr double kTimeTolPs = 1e-6;  ///< monotonicity slack

std::string nodeRef(const network::ClockTree& tree, int id) {
  std::ostringstream os;
  os << "node " << id;
  const auto& nodes = tree.rawNodes();
  if (id >= 0 && static_cast<std::size_t>(id) < nodes.size() &&
      !nodes[static_cast<std::size_t>(id)].name.empty())
    os << " (" << nodes[static_cast<std::size_t>(id)].name << ')';
  return os.str();
}

bool finitePoint(const geom::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

}  // namespace

void checkTreeStructure(const network::ClockTree& tree,
                        DiagnosticEngine& engine) {
  const char* kCheck = "tree-structure";
  const auto& nodes = tree.rawNodes();
  const int n = static_cast<int>(nodes.size());
  if (n == 0) {
    engine.report(101, Severity::kError, kCheck, "tree has no nodes");
    return;
  }

  // Root shape: node 0 is the one live parentless source.
  const network::ClockNode& root = nodes[0];
  if (!root.valid || root.kind != network::NodeKind::Source ||
      root.parent != -1)
    engine.report(101, Severity::kError, kCheck,
                  "node 0 is not a live parentless source");

  const auto inRange = [n](int id) { return id >= 0 && id < n; };

  for (int i = 0; i < n; ++i) {
    const network::ClockNode& nd = nodes[static_cast<std::size_t>(i)];
    if (!nd.valid) {
      if (!nd.children.empty())
        engine.report(110, Severity::kError, kCheck,
                      nodeRef(tree, i) + " is deleted but still has " +
                          std::to_string(nd.children.size()) + " child(ren)");
      continue;
    }
    if (i > 0 && nd.kind == network::NodeKind::Source)
      engine.report(102, Severity::kError, kCheck,
                    nodeRef(tree, i) + " is a second source node");
    if (i > 0) {
      if (!inRange(nd.parent)) {
        engine.report(103, Severity::kError, kCheck,
                      nodeRef(tree, i) + " has out-of-range parent " +
                          std::to_string(nd.parent));
      } else if (!nodes[static_cast<std::size_t>(nd.parent)].valid) {
        engine.report(110, Severity::kError, kCheck,
                      nodeRef(tree, i) + " is parented to deleted node " +
                          std::to_string(nd.parent));
      } else {
        const auto& pch = nodes[static_cast<std::size_t>(nd.parent)].children;
        if (std::count(pch.begin(), pch.end(), i) != 1)
          engine.report(103, Severity::kError, kCheck,
                        nodeRef(tree, i) + " appears " +
                            std::to_string(std::count(pch.begin(), pch.end(),
                                                      i)) +
                            " times in the child list of its parent " +
                            std::to_string(nd.parent));
      }
    }
    if (nd.kind == network::NodeKind::Sink && !nd.children.empty())
      engine.report(107, Severity::kError, kCheck,
                    nodeRef(tree, i) + " is a sink with " +
                        std::to_string(nd.children.size()) + " child(ren)");
    if (nd.kind == network::NodeKind::Buffer && nd.cell < 0)
      engine.report(108, Severity::kError, kCheck,
                    nodeRef(tree, i) + " is a buffer with no library cell");

    std::unordered_set<int> seen_children;
    for (const int c : nd.children) {
      if (!inRange(c)) {
        engine.report(104, Severity::kError, kCheck,
                      nodeRef(tree, i) + " lists out-of-range child " +
                          std::to_string(c));
        continue;
      }
      if (!seen_children.insert(c).second)
        engine.report(104, Severity::kError, kCheck,
                      nodeRef(tree, i) + " lists child " + std::to_string(c) +
                          " more than once");
      const network::ClockNode& ch = nodes[static_cast<std::size_t>(c)];
      if (!ch.valid)
        engine.report(110, Severity::kError, kCheck,
                      nodeRef(tree, i) + " lists deleted node " +
                          std::to_string(c) + " as a child");
      else if (ch.parent != i)
        engine.report(104, Severity::kError, kCheck,
                      nodeRef(tree, i) + " lists child " + std::to_string(c) +
                          " whose parent pointer is " +
                          std::to_string(ch.parent));
    }
  }

  // Reachability: every live node must be reached from the root by child
  // links exactly once. A live node the walk misses is either detached or
  // on a cycle; with consistent parent/child links above, "unreachable"
  // and "on a cycle" coincide.
  std::vector<char> reached(static_cast<std::size_t>(n), 0);
  if (root.valid && root.parent == -1) {
    std::vector<int> stack{0};
    reached[0] = 1;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      for (const int c : nodes[static_cast<std::size_t>(cur)].children) {
        if (!inRange(c) || reached[static_cast<std::size_t>(c)]) continue;
        reached[static_cast<std::size_t>(c)] = 1;
        stack.push_back(c);
      }
    }
  }
  for (int i = 1; i < n; ++i) {
    const network::ClockNode& nd = nodes[static_cast<std::size_t>(i)];
    if (!nd.valid || reached[static_cast<std::size_t>(i)]) continue;
    if (nd.kind == network::NodeKind::Sink)
      engine.report(106, Severity::kError, kCheck,
                    nodeRef(tree, i) +
                        " is a sink unreachable from the source");
    else
      engine.report(105, Severity::kError, kCheck,
                    nodeRef(tree, i) +
                        " is unreachable from the source (detached or on a "
                        "cycle)");
  }
}

void checkRouting(const network::Design& d, DiagnosticEngine& engine) {
  const char* kCheck = "routing";
  const auto& nodes = d.tree.rawNodes();
  const int n = static_cast<int>(nodes.size());
  std::size_t expected_nets = 0;

  for (int i = 0; i < n; ++i) {
    const network::ClockNode& nd = nodes[static_cast<std::size_t>(i)];
    if (!nd.valid || nd.children.empty()) continue;
    ++expected_nets;
    const route::SteinerTree* net = d.routing.net(i);
    if (net == nullptr) {
      engine.report(120, Severity::kError, kCheck,
                    nodeRef(d.tree, i) + " drives " +
                        std::to_string(nd.children.size()) +
                        " child(ren) but has no routed net");
      continue;
    }

    // Geometry well-formedness.
    const std::size_t sz = net->nodes.size();
    bool geometry_ok =
        sz > 0 && net->parent.size() == sz && net->extra.size() == sz;
    if (geometry_ok && net->parent[0] != -1) geometry_ok = false;
    if (geometry_ok) {
      for (std::size_t j = 0; j < sz; ++j) {
        if (!finitePoint(net->nodes[j]) || !std::isfinite(net->extra[j]) ||
            net->extra[j] < 0.0 ||
            (j > 0 && (net->parent[j] < 0 ||
                       static_cast<std::size_t>(net->parent[j]) >= sz))) {
          geometry_ok = false;
          break;
        }
      }
    }
    if (!geometry_ok) {
      engine.report(124, Severity::kError, kCheck,
                    "net of " + nodeRef(d.tree, i) +
                        " has malformed geometry (array shape, parent "
                        "indices, extras, or coordinates)");
      continue;
    }

    if (geom::manhattan(net->nodes[0], nd.pos) > kPosTolUm)
      engine.report(125, Severity::kError, kCheck,
                    "net of " + nodeRef(d.tree, i) +
                        " starts away from the driver position");

    if (net->pin_node.size() != nd.children.size()) {
      engine.report(122, Severity::kError, kCheck,
                    "net of " + nodeRef(d.tree, i) + " has " +
                        std::to_string(net->pin_node.size()) +
                        " pin(s) for " + std::to_string(nd.children.size()) +
                        " child(ren)");
      continue;
    }
    for (std::size_t p = 0; p < net->pin_node.size(); ++p) {
      const int child = nd.children[p];
      if (child < 0 || child >= n) continue;  // reported by tree-structure
      if (net->pin_node[p] >= sz) {
        engine.report(124, Severity::kError, kCheck,
                      "net of " + nodeRef(d.tree, i) + " pin " +
                          std::to_string(p) + " maps outside the net");
        continue;
      }
      const geom::Point& pin = net->nodes[net->pin_node[p]];
      const geom::Point& at = nodes[static_cast<std::size_t>(child)].pos;
      if (geom::manhattan(pin, at) > kPosTolUm)
        engine.report(123, Severity::kError, kCheck,
                      "net of " + nodeRef(d.tree, i) + " pin " +
                          std::to_string(p) + " does not land on child " +
                          nodeRef(d.tree, child));
    }
  }

  // The routing owns exactly one net per driver; more means stale nets
  // survived an edit (e.g. a restored snapshot of a removed driver).
  if (d.routing.numNets() > expected_nets)
    engine.report(121, Severity::kError, kCheck,
                  "routing holds " + std::to_string(d.routing.numNets()) +
                      " net(s) for " + std::to_string(expected_nets) +
                      " driving node(s) — stale net(s) present");
}

void checkPlacement(const network::Design& d, const CheckOptions& opts,
                    DiagnosticEngine& engine) {
  const char* kCheck = "placement";
  const auto& nodes = d.tree.rawNodes();
  const int n = static_cast<int>(nodes.size());
  const geom::Rect box = d.floorplan.bbox().expanded(opts.placement_margin_um);

  std::unordered_map<long long, int> at_pos;
  const bool deep = opts.level >= Level::kDeep;

  for (int i = 0; i < n; ++i) {
    const network::ClockNode& nd = nodes[static_cast<std::size_t>(i)];
    if (!nd.valid) continue;
    if (!finitePoint(nd.pos)) {
      engine.report(140, Severity::kError, kCheck,
                    nodeRef(d.tree, i) + " has a non-finite position");
      continue;
    }
    if (nd.kind != network::NodeKind::Buffer) continue;

    if (!box.empty() && !box.contains(nd.pos)) {
      std::ostringstream os;
      os << nodeRef(d.tree, i) << " at (" << nd.pos.x << ", " << nd.pos.y
         << ") lies outside the floorplan bounding box";
      engine.report(141, Severity::kError, kCheck, os.str());
    }
    if (opts.require_site_alignment && d.tech != nullptr) {
      const double site = d.tech->siteWidthUm();
      const double row = d.tech->rowHeightUm();
      if (std::abs(nd.pos.x - geom::snap(nd.pos.x, site)) > kPosTolUm ||
          std::abs(nd.pos.y - geom::snap(nd.pos.y, row)) > kPosTolUm)
        engine.report(143, Severity::kError, kCheck,
                      nodeRef(d.tree, i) + " is off the site/row grid");
    }
    if (deep) {
      // Quantize to nm so exact overlaps collide regardless of float noise.
      const long long qx = std::llround(nd.pos.x * 1e3);
      const long long qy = std::llround(nd.pos.y * 1e3);
      const long long key = qx * 2000003LL + qy;
      const auto [it, inserted] = at_pos.emplace(key, i);
      // Warning, not error: the flow legalizes only the cells it moves, so
      // two independently placed buffers can legitimately coincide.
      if (!inserted)
        engine.report(142, Severity::kWarning, kCheck,
                      nodeRef(d.tree, i) + " overlaps " +
                          nodeRef(d.tree, it->second) +
                          " at the same position");
    }
  }
}

void checkDesignRecords(const network::Design& d, DiagnosticEngine& engine) {
  const char* kCheck = "design-records";
  if (d.tech == nullptr) {
    engine.report(154, Severity::kError, kCheck,
                  "design has no technology model attached");
    return;
  }
  if (d.corners.empty())
    engine.report(150, Severity::kError, kCheck,
                  "design has no active corners");
  std::unordered_set<std::size_t> seen;
  for (const std::size_t k : d.corners) {
    if (k >= d.tech->numCorners())
      engine.report(151, Severity::kError, kCheck,
                    "active corner " + std::to_string(k) +
                        " is outside the technology's " +
                        std::to_string(d.tech->numCorners()) + " corner(s)");
    else if (!seen.insert(k).second)
      engine.report(151, Severity::kError, kCheck,
                    "active corner " + std::to_string(k) + " listed twice");
  }

  const int num_cells = static_cast<int>(d.tech->numCells());
  const auto& nodes = d.tree.rawNodes();
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const network::ClockNode& nd = nodes[static_cast<std::size_t>(i)];
    if (nd.valid && nd.kind == network::NodeKind::Buffer &&
        nd.cell >= num_cells)
      engine.report(109, Severity::kError, kCheck,
                    nodeRef(d.tree, i) + " uses cell " +
                        std::to_string(nd.cell) + " outside the " +
                        std::to_string(num_cells) + "-cell library");
  }

  const auto liveSink = [&](int id) {
    return d.tree.isValid(id) &&
           d.tree.node(id).kind == network::NodeKind::Sink;
  };
  for (std::size_t p = 0; p < d.pairs.size(); ++p) {
    const network::SinkPair& pr = d.pairs[p];
    if (!liveSink(pr.launch) || !liveSink(pr.capture))
      engine.report(152, Severity::kError, kCheck,
                    "sink pair " + std::to_string(p) + " (" +
                        std::to_string(pr.launch) + ", " +
                        std::to_string(pr.capture) +
                        ") references a node that is not a live sink");
    if (!std::isfinite(pr.weight) || pr.weight < 0.0)
      engine.report(153, Severity::kError, kCheck,
                    "sink pair " + std::to_string(p) +
                        " has an invalid weight");
  }
}

void checkCornerTiming(const network::ClockTree& tree,
                       const sta::CornerTiming& timing,
                       DiagnosticEngine& engine) {
  const char* kCheck = "timing";
  const auto& nodes = tree.rawNodes();
  const std::size_t n = nodes.size();
  const std::string at = "corner " + std::to_string(timing.corner) + ": ";

  if (timing.arrival.size() < n || timing.slew.size() < n) {
    engine.report(160, Severity::kError, kCheck,
                  at + "timing arrays cover " +
                      std::to_string(timing.arrival.size()) + " of " +
                      std::to_string(n) + " node(s)");
    return;
  }
  const bool has_inputs =
      timing.in_arrival.size() >= n && timing.in_slew.size() >= n;

  for (std::size_t i = 0; i < n; ++i) {
    const network::ClockNode& nd = nodes[i];
    if (!nd.valid) continue;
    const int id = static_cast<int>(i);
    if (!std::isfinite(timing.arrival[i]) || !std::isfinite(timing.slew[i]) ||
        timing.slew[i] < 0.0) {
      engine.report(160, Severity::kError, kCheck,
                    at + nodeRef(tree, id) +
                        " has a non-finite arrival or invalid slew");
      continue;
    }
    if (nd.parent < 0 || static_cast<std::size_t>(nd.parent) >= n) continue;
    const double parent_out = timing.arrival[static_cast<std::size_t>(
        nd.parent)];
    if (!std::isfinite(parent_out)) continue;  // reported at the parent

    if (has_inputs) {
      const double wire = timing.in_arrival[i] - parent_out;
      const double gate = timing.arrival[i] - timing.in_arrival[i];
      if (std::isfinite(timing.in_arrival[i]) && wire < -kTimeTolPs)
        engine.report(161, Severity::kError, kCheck,
                      at + nodeRef(tree, id) + " has negative wire delay " +
                          std::to_string(wire) + " ps");
      if (nd.kind == network::NodeKind::Buffer &&
          std::isfinite(timing.in_arrival[i]) && gate < -kTimeTolPs)
        engine.report(161, Severity::kError, kCheck,
                      at + nodeRef(tree, id) + " has negative gate delay " +
                          std::to_string(gate) + " ps");
    }
    if (timing.arrival[i] < parent_out - kTimeTolPs)
      engine.report(162, Severity::kError, kCheck,
                    at + nodeRef(tree, id) +
                        " arrives before its driver — latency is not "
                        "monotone along the path");
  }

  if (timing.driver_load.size() >= n) {
    for (std::size_t i = 0; i < n; ++i) {
      const network::ClockNode& nd = nodes[i];
      if (!nd.valid || nd.children.empty()) continue;
      if (!std::isfinite(timing.driver_load[i]) || timing.driver_load[i] <= 0.0)
        engine.report(163, Severity::kError, kCheck,
                      at + nodeRef(tree, static_cast<int>(i)) +
                          " drives a net with invalid load " +
                          std::to_string(timing.driver_load[i]) + " fF");
    }
  }
}

void checkDesignTiming(const network::Design& d, const sta::Timer& timer,
                       DiagnosticEngine& engine) {
  if (d.tech == nullptr) return;  // reported by design-records
  for (const std::size_t k : d.corners) {
    if (k >= d.tech->numCorners()) continue;  // reported by design-records
    const sta::CornerTiming timing = timer.analyze(d.tree, d.routing, k);
    checkCornerTiming(d.tree, timing, engine);
  }
}

void checkLpModel(const lp::Model& model, DiagnosticEngine& engine) {
  const char* kCheck = "lp-model";
  const int nv = model.numVars();
  const int nr = model.numRows();

  for (int v = 0; v < nv; ++v) {
    const double lb = model.varLb(v), ub = model.varUb(v);
    if (std::isnan(lb) || std::isnan(ub) || lb > ub)
      engine.report(203, Severity::kError, kCheck,
                    "variable " + std::to_string(v) +
                        " has empty or NaN bounds");
    if (lb == lp::kInf || ub == -lp::kInf)
      engine.report(204, Severity::kError, kCheck,
                    "variable " + std::to_string(v) +
                        " has an infinite bound on the wrong side");
    if (!std::isfinite(model.objCoef(v)))
      engine.report(201, Severity::kError, kCheck,
                    "variable " + std::to_string(v) +
                        " has a non-finite objective coefficient");
  }

  std::size_t nnz = 0;
  std::unordered_set<int> row_vars;
  for (int r = 0; r < nr; ++r) {
    const double lo = model.rowLo(r), hi = model.rowHi(r);
    if (std::isnan(lo) || std::isnan(hi) || lo > hi)
      engine.report(202, Severity::kError, kCheck,
                    "row " + std::to_string(r) + " has empty or NaN bounds");
    if (lo == lp::kInf || hi == -lp::kInf)
      engine.report(204, Severity::kError, kCheck,
                    "row " + std::to_string(r) +
                        " has an infinite bound on the wrong side");
    row_vars.clear();
    for (const lp::Term& t : model.rowTerms(r)) {
      ++nnz;
      if (t.var < 0 || t.var >= nv) {
        engine.report(200, Severity::kError, kCheck,
                      "row " + std::to_string(r) +
                          " references out-of-range variable " +
                          std::to_string(t.var));
        continue;
      }
      if (!std::isfinite(t.coef))
        engine.report(201, Severity::kError, kCheck,
                      "row " + std::to_string(r) + " variable " +
                          std::to_string(t.var) +
                          " has a non-finite coefficient");
      if (!row_vars.insert(t.var).second)
        engine.report(205, Severity::kError, kCheck,
                      "row " + std::to_string(r) + " holds variable " +
                          std::to_string(t.var) +
                          " twice — terms were not coalesced");
    }
  }
  if (nnz != model.numNonzeros())
    engine.report(206, Severity::kError, kCheck,
                  "model reports " + std::to_string(model.numNonzeros()) +
                      " nonzeros but its rows hold " + std::to_string(nnz));
}

void checkBudgetRow(const lp::Model& model, int budget_row,
                    DiagnosticEngine& engine) {
  const char* kCheck = "lp-budget-row";
  if (budget_row < 0 || budget_row != model.numRows() - 1) {
    engine.report(210, Severity::kError, kCheck,
                  "budget row " + std::to_string(budget_row) +
                      " is not the final row of the sweep model (" +
                      std::to_string(model.numRows()) + " row(s))");
    return;
  }
  const double lo = model.rowLo(budget_row), hi = model.rowHi(budget_row);
  if (lo != -lp::kInf || !std::isfinite(hi))
    engine.report(211, Severity::kError, kCheck,
                  "budget row is not a one-sided upper bound");
  for (const lp::Term& t : model.rowTerms(budget_row)) {
    if (!(t.coef > 0.0))
      engine.report(212, Severity::kError, kCheck,
                    "budget row holds non-positive coefficient on variable " +
                        std::to_string(t.var));
  }
}

void checkRatioEnvelope(const eco::StageDelayLut& lut,
                        const network::Design& d, DiagnosticEngine& engine) {
  const char* kCheck = "ratio-envelope";
  constexpr int kSamples = 9;
  for (std::size_t a = 0; a < d.corners.size(); ++a) {
    for (std::size_t b = a + 1; b < d.corners.size(); ++b) {
      const std::size_t k = std::min(d.corners[a], d.corners[b]);
      const std::size_t k2 = std::max(d.corners[a], d.corners[b]);
      if (k == k2 || k2 >= lut.tech().numCorners()) continue;
      const eco::RatioBound& lo = lut.ratioBound(k, k2, /*upper=*/false);
      const eco::RatioBound& hi = lut.ratioBound(k, k2, /*upper=*/true);
      const std::string pair_name =
          "corner pair (" + std::to_string(k) + ", " + std::to_string(k2) +
          ")";
      const double u0 = std::min(lo.u_lo, hi.u_lo);
      const double u1 = std::max(lo.u_hi, hi.u_hi);
      for (int s = 0; s < kSamples; ++s) {
        const double u =
            u0 + (u1 - u0) * static_cast<double>(s) / (kSamples - 1);
        const double wmin = lo.eval(u), wmax = hi.eval(u);
        if (!std::isfinite(wmin) || !std::isfinite(wmax)) {
          engine.report(221, Severity::kError, kCheck,
                        pair_name + " envelope is non-finite at u = " +
                            std::to_string(u));
          break;
        }
        if (wmin > wmax + 1e-9) {
          engine.report(220, Severity::kError, kCheck,
                        pair_name + " envelope inverts (W_min " +
                            std::to_string(wmin) + " > W_max " +
                            std::to_string(wmax) + " at u = " +
                            std::to_string(u) + ")");
          break;
        }
      }
    }
  }
}

void checkDesign(const network::Design& d, const CheckOptions& opts,
                 DiagnosticEngine& engine) {
  if (opts.level == Level::kOff) return;
  checkTreeStructure(d.tree, engine);
  checkRouting(d, engine);
  checkPlacement(d, opts, engine);
  checkDesignRecords(d, engine);
}

void gateDesign(const network::Design& d, const sta::Timer& timer,
                Level level, const char* stage) {
  if (level == Level::kOff) return;
  DiagnosticEngine engine;
  engine.setContext(stage);
  CheckOptions opts;
  opts.level = level;
  checkDesign(d, opts, engine);
  // Deep gates re-time every corner, but only on structurally sound
  // designs — the timer itself walks parent/child links and would crash or
  // loop on the very corruption the cheap pass just reported.
  if (level >= Level::kDeep && !engine.hasErrors())
    checkDesignTiming(d, timer, engine);
  if (engine.hasErrors()) throw CheckFailure(engine, stage);
}

}  // namespace skewopt::check
