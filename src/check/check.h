// Design-invariant verifiers — the static-analysis counterpart of the
// dynamic sanitizers in the tier-1 suite.
//
// The flow mutates a shared Design from many directions (ECO realization,
// golden-trial move/undo overlays, warm-started LP re-bounding, concurrent
// serve jobs); a silently corrupted tree or an ill-formed LP model would
// otherwise surface only as a wrong objective value many stages later.
// Every verifier here walks one representation and reports violations as
// stable SKW### diagnostics (catalog: docs/static_analysis.md); the stage
// gates in Flow / GlobalOptimizer / LocalOptimizer / Scheduler compose
// them and throw check::CheckFailure on any error.
//
// Code blocks: SKW1xx design (tree/routing/placement/pairs), SKW16x
// timing, SKW2xx LP model / budget row / LUT ratio envelope, SKW3xx serve
// JobSpec records (implemented in serve/spec_check.h — the serve module
// sits above this one).
#pragma once

#include "check/diagnostics.h"
#include "eco/stage_lut.h"
#include "lp/lp.h"
#include "network/design.h"
#include "sta/timer.h"

namespace skewopt::check {

struct CheckOptions {
  Level level = Level::kCheap;
  /// The flow legalizes only the cells it moves, so freshly generated
  /// trees sit off the site grid by design; alignment checking is opt-in
  /// for flows that ran a full legalization pass.
  bool require_site_alignment = false;
  /// Slack allowed outside the floorplan bounding box before a cell is
  /// flagged (the generators park the source port and routing-channel
  /// buffers slightly outside the placement rows).
  double placement_margin_um = 50.0;
};

// --- individual verifiers (each appends to the engine) ---

/// Tree structure: live parentless source at node 0, parent/child link
/// consistency, acyclicity, sink/buffer shape, reachability. SKW101-110.
void checkTreeStructure(const network::ClockTree& tree,
                        DiagnosticEngine& engine);

/// Routing <-> topology: every driver owns a net, pin counts and pin
/// positions match the children, net geometry is well-formed. SKW120-125.
void checkRouting(const network::Design& d, DiagnosticEngine& engine);

/// Placement legality: finite positions, cells inside the floorplan box,
/// (deep, warning-only) no two buffers on the same spot, (opt-in) site/row
/// alignment. SKW140-143.
void checkPlacement(const network::Design& d, const CheckOptions& opts,
                    DiagnosticEngine& engine);

/// Design bookkeeping: corners exist in the tech, sink pairs reference
/// live sinks, buffer cells are inside the library. SKW109, SKW150-154.
void checkDesignRecords(const network::Design& d, DiagnosticEngine& engine);

/// One corner's propagated timing state: finite arrivals/slews, monotone
/// source->sink latency, non-negative arc delays, sane driver loads.
/// Exposed separately so tests can feed a tampered CornerTiming.
/// SKW160-163.
void checkCornerTiming(const network::ClockTree& tree,
                       const sta::CornerTiming& timing,
                       DiagnosticEngine& engine);

/// Re-times the design at every active corner and runs checkCornerTiming
/// on each result (deep checks only — this is a full STA per corner).
void checkDesignTiming(const network::Design& d, const sta::Timer& timer,
                       DiagnosticEngine& engine);

/// LP model well-formedness: row/column index consistency, finite and
/// ordered bounds, no NaN coefficients, coalesced rows, exact nonzero
/// count. SKW200-206.
void checkLpModel(const lp::Model& model, DiagnosticEngine& engine);

/// The U-sweep budget-row identity (Eq. (5)): the re-bounded row must be
/// the final row, one-sided from above, with positive coefficients.
/// SKW210-212.
void checkBudgetRow(const lp::Model& model, int budget_row,
                    DiagnosticEngine& engine);

/// The Figure 2 envelope feeding Constraint (11): W_min(u) <= W_max(u)
/// and finite over each active corner pair's fitted range. SKW220-221.
void checkRatioEnvelope(const eco::StageDelayLut& lut,
                        const network::Design& d, DiagnosticEngine& engine);

// --- composition ---

/// The cheap structural pass: tree + routing + placement + records.
void checkDesign(const network::Design& d, const CheckOptions& opts,
                 DiagnosticEngine& engine);

/// Stage gate: runs checkDesign at `level` (plus checkDesignTiming at
/// kDeep), stamping `stage` into the diagnostics, and throws CheckFailure
/// when any error was found. kOff is a no-op. The env override
/// (SKEWOPT_CHECK_LEVEL) is applied by the *callers* that own a
/// configured level; this function runs exactly the level it is given.
void gateDesign(const network::Design& d, const sta::Timer& timer,
                Level level, const char* stage);

}  // namespace skewopt::check
