#include "check/diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"

namespace skewopt::check {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* levelName(Level l) {
  switch (l) {
    case Level::kOff: return "off";
    case Level::kCheap: return "cheap";
    case Level::kDeep: return "deep";
  }
  return "?";
}

bool parseLevel(const std::string& text, Level* out) {
  if (text == "off" || text == "0") {
    *out = Level::kOff;
  } else if (text == "cheap" || text == "1") {
    *out = Level::kCheap;
  } else if (text == "deep" || text == "2") {
    *out = Level::kDeep;
  } else {
    return false;
  }
  return true;
}

Level effectiveLevel(Level configured) {
  // SKEWLINT-ALLOW(LNT001: documented operator override of the check depth; never feeds results)
  const char* env = std::getenv("SKEWOPT_CHECK_LEVEL");
  Level lvl = configured;
  if (env != nullptr && parseLevel(env, &lvl)) return lvl;
  return configured;
}

std::string codeString(int code) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "SKW%03d", code);
  return buf;
}

void DiagnosticEngine::report(int code, Severity severity, const char* check,
                              std::string message) {
  static obs::Counter& findings = obs::MetricsRegistry::global().counter(
      "skewopt_check_findings_total",
      "SKW diagnostics reported by the invariant checkers (all severities)");
  findings.add();
  switch (severity) {
    case Severity::kError: ++errors_; break;
    case Severity::kWarning: ++warnings_; break;
    case Severity::kNote: ++notes_; break;
  }
  if (diags_.size() >= max_diagnostics_) {
    ++dropped_;
    return;
  }
  diags_.push_back(
      {code, severity, check, context_, std::move(message)});
}

bool DiagnosticEngine::hasCode(int code) const {
  for (const Diagnostic& d : diags_)
    if (d.code == code) return true;
  return false;
}

std::string DiagnosticEngine::text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << codeString(d.code) << ' ' << severityName(d.severity) << " ["
       << d.check << ']';
    if (!d.where.empty()) os << ' ' << d.where;
    os << ": " << d.message << '\n';
  }
  if (dropped_ > 0)
    os << "... " << dropped_ << " further diagnostic(s) suppressed\n";
  return os.str();
}

namespace {

void appendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string DiagnosticEngine::json() const {
  std::ostringstream os;
  os << "{\"errors\":" << errors_ << ",\"warnings\":" << warnings_
     << ",\"dropped\":" << dropped_ << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) os << ',';
    first = false;
    os << "{\"code\":";
    appendJsonString(os, codeString(d.code));
    os << ",\"severity\":";
    appendJsonString(os, severityName(d.severity));
    os << ",\"check\":";
    appendJsonString(os, d.check);
    os << ",\"where\":";
    appendJsonString(os, d.where);
    os << ",\"message\":";
    appendJsonString(os, d.message);
    os << '}';
  }
  os << "]}";
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errors_ = warnings_ = notes_ = dropped_ = 0;
}

namespace {

std::string failureMessage(const DiagnosticEngine& engine,
                           const std::string& stage) {
  std::ostringstream os;
  os << "design checks failed at " << stage << " (" << engine.errorCount()
     << " error(s), " << engine.warningCount() << " warning(s)):\n"
     << engine.text();
  return os.str();
}

}  // namespace

CheckFailure::CheckFailure(const DiagnosticEngine& engine,
                           const std::string& stage)
    : std::runtime_error(failureMessage(engine, stage)),
      diags_(engine.diagnostics()) {}

}  // namespace skewopt::check
