// Testcase generation.
//
// The paper evaluates on proprietary blocks generated with the methodology
// of [Chan et al., GLSVLSI 2014]: two application-processor-like designs
// (CLS1v1/CLS1v2: four identical 650x650um interface-logic-module blocks)
// and a memory controller (CLS2v1: an L-shaped floorplan, controller at the
// center, interface logic in the arms, with ~1mm launch-capture separations
// that force heavily buffered clock paths). This module rebuilds those
// *structures* at a configurable (default: scaled-down) sink count:
//
//   * clustered flip-flop placement inside each block,
//   * sequentially adjacent sink pairs with datapath locality (plus the
//     long cross-region pairs that make CLS2 interesting),
//   * a baseline clock tree from the CTS engine,
//   * the per-testcase corner subsets of the paper's Table 4
//     (CLS1: c0,c1,c3; CLS2: c0,c1,c2).
//
// It also generates the "artificial testcases" of the paper's Sec. 4.2 used
// to train the delta-latency models: a driven subtree with fanout 1-5
// (20-40 for last-stage buffers), bounding-box area 1000-8000 um^2 scaled
// up to clock-stage dimensions, and randomly placed fanout cells.
#pragma once

#include <cstdint>
#include <string>

#include "cts/cts.h"
#include "network/design.h"

namespace skewopt::testgen {

struct TestcaseOptions {
  std::size_t sinks = 400;          ///< total flip-flops (paper: 36K-270K)
  std::size_t max_pairs = 4000;     ///< cap on generated sink pairs
  std::uint64_t seed = 1;
  /// Paper Sec. 5.1: synthesize once per MCSM scenario plus MCMM and keep
  /// the tree with the minimum sum of skew variations (slower: one CTS run
  /// per active corner plus one).
  bool select_best_scenario = false;
  cts::CtsOptions cts;
};

/// CLS1 (application processor): four 650x650um ILM blocks. `variant` is
/// "v1" (2x2 floorplan) or "v2" (1x4 row floorplan, different clustering).
network::Design makeCls1(const tech::TechModel& tech,
                         const std::string& variant, TestcaseOptions opts);

/// CLS2v1 (memory controller): L-shaped block, controller at the center,
/// interface logic in the arms; interface<->controller pairs span ~1mm.
network::Design makeCls2(const tech::TechModel& tech, TestcaseOptions opts);

/// Builds one of the three paper testcases by name ("CLS1v1", "CLS1v2",
/// "CLS2v1").
network::Design makeTestcase(const tech::TechModel& tech,
                             const std::string& name, TestcaseOptions opts);

// ---------------------------------------------------------------------------

/// One artificial ML-training case: a small complete design whose `target`
/// buffer is the one local moves will perturb. When `last_stage` is true the
/// target drives 20-40 sinks directly; otherwise it drives 1-5 buffers that
/// each drive a few sinks (providing the two downstream stages the
/// predictor's truncated update models).
struct ArtificialCase {
  network::Design design;
  int target = -1;
};

ArtificialCase makeArtificialCase(const tech::TechModel& tech, geom::Rng& rng,
                                  bool last_stage);

}  // namespace skewopt::testgen
