#include "testgen/testgen.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace skewopt::testgen {

using geom::Point;
using geom::Rect;
using geom::Region;
using geom::Rng;
using network::Design;
using network::SinkPair;

namespace {

/// Clustered flip-flop placement inside one rectangle: a few register banks
/// with Gaussian spread, as register placement looks post-P&R.
void placeClusteredSinks(Rng& rng, const Rect& block, std::size_t count,
                         std::vector<Point>* out) {
  const std::size_t nclusters = std::max<std::size_t>(4, count / 16);
  std::vector<Point> centers;
  centers.reserve(nclusters);
  const Rect inner = block.expanded(-40.0);
  for (std::size_t i = 0; i < nclusters; ++i)
    centers.push_back(rng.pointIn(inner));
  for (std::size_t i = 0; i < count; ++i) {
    const Point& c = centers[rng.index(nclusters)];
    Point p{rng.normal(c.x, 60.0), rng.normal(c.y, 60.0)};
    out->push_back(block.clamp(p));
  }
}

/// Local datapath pairs: each sink pairs with its nearest neighbors inside
/// the same group. Weight models timing criticality (longer datapaths and a
/// random slack component are more critical).
void addLocalPairs(Rng& rng, const std::vector<Point>& pos,
                   const std::vector<int>& sink_ids,
                   const std::vector<std::size_t>& group_of,
                   std::size_t neighbors, std::vector<SinkPair>* pairs,
                   std::set<std::pair<int, int>>* seen) {
  const std::size_t n = pos.size();
  for (std::size_t i = 0; i < n; ++i) {
    // nearest `neighbors` in the same group
    std::vector<std::pair<double, std::size_t>> cand;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || group_of[j] != group_of[i]) continue;
      cand.push_back({geom::manhattan(pos[i], pos[j]), j});
    }
    const std::size_t k = std::min(neighbors, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + static_cast<long>(k),
                      cand.end());
    for (std::size_t m = 0; m < k; ++m) {
      const std::size_t j = cand[m].second;
      const auto key = std::minmax(sink_ids[i], sink_ids[j]);
      if (!seen->insert({key.first, key.second}).second) continue;
      SinkPair p;
      p.launch = sink_ids[i];
      p.capture = sink_ids[j];
      p.weight = rng.uniform(0.2, 1.0) + cand[m].first / 2000.0;
      pairs->push_back(p);
    }
  }
}

void capPairs(Rng& rng, std::size_t max_pairs, std::vector<SinkPair>* pairs) {
  (void)rng;
  if (pairs->size() <= max_pairs) return;
  std::sort(pairs->begin(), pairs->end(),
            [](const SinkPair& a, const SinkPair& b) {
              return a.weight > b.weight;
            });
  pairs->resize(max_pairs);
}

}  // namespace

Design makeCls1(const tech::TechModel& tech, const std::string& variant,
                TestcaseOptions opts) {
  const bool v1 = (variant == "v1");
  if (!v1 && variant != "v2")
    throw std::invalid_argument("makeCls1: variant must be v1 or v2");
  Rng rng(opts.seed + (v1 ? 0x11 : 0x22));

  // Four identical 650x650 ILM blocks; v1 floorplans them 2x2, v2 in a row.
  constexpr double kBlock = 650.0;
  constexpr double kGap = 80.0;
  std::vector<Rect> blocks;
  if (v1) {
    for (int by = 0; by < 2; ++by)
      for (int bx = 0; bx < 2; ++bx)
        blocks.push_back({bx * (kBlock + kGap), by * (kBlock + kGap),
                          bx * (kBlock + kGap) + kBlock,
                          by * (kBlock + kGap) + kBlock});
  } else {
    for (int bx = 0; bx < 4; ++bx)
      blocks.push_back({bx * (kBlock + kGap), 0.0,
                        bx * (kBlock + kGap) + kBlock, kBlock});
  }
  geom::BBox fp;
  for (const Rect& b : blocks) fp.add(b);
  const Point src{fp.rect().center().x, fp.rect().ly - 30.0};

  Design d("CLS1" + variant, &tech, src);
  d.corners = {0, 1, 3};  // paper Table 4: setup c0,c1; hold c3
  d.floorplan = Region{std::vector<Rect>(blocks)};

  std::vector<Point> pos;
  std::vector<std::size_t> group_of;
  const std::size_t per_block = opts.sinks / blocks.size();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t count =
        (b + 1 == blocks.size()) ? opts.sinks - per_block * (blocks.size() - 1)
                                 : per_block;
    placeClusteredSinks(rng, blocks[b], count, &pos);
    group_of.insert(group_of.end(), count, b);
  }

  // Pair construction is deterministic per sink-id vector so the Sec. 5.1
  // scenario selection can call it once per candidate tree.
  auto make_pairs = [&, pair_seed = opts.seed ^ 0xFA1Cull](
                        const std::vector<int>& sink_ids) {
    Rng prng(pair_seed);
    std::vector<SinkPair> pairs;
    std::set<std::pair<int, int>> seen;
    addLocalPairs(prng, pos, sink_ids, group_of, v1 ? 3 : 4, &pairs, &seen);
    // A small fraction of cross-block datapaths (inter-core interfaces).
    const std::size_t cross = opts.sinks / 12;
    for (std::size_t i = 0; i < cross; ++i) {
      const std::size_t a = prng.index(pos.size());
      std::size_t b = prng.index(pos.size());
      if (group_of[a] == group_of[b]) continue;
      const auto key = std::minmax(sink_ids[a], sink_ids[b]);
      if (!seen.insert({key.first, key.second}).second) continue;
      SinkPair p;
      p.launch = sink_ids[a];
      p.capture = sink_ids[b];
      p.weight =
          prng.uniform(0.5, 1.2) + geom::manhattan(pos[a], pos[b]) / 2000.0;
      pairs.push_back(p);
    }
    capPairs(prng, opts.max_pairs, &pairs);
    return pairs;
  };

  cts::CtsEngine cts_engine(tech, opts.cts);
  if (opts.select_best_scenario) {
    cts_engine.synthesizeBestScenario(d, pos, make_pairs);
  } else {
    const cts::CtsResult r = cts_engine.synthesize(d, pos);
    d.pairs = make_pairs(r.sink_ids);
  }

  // Block-level metrics scaled from the paper's Table 4 (#cells ~ 11x FFs,
  // utilization ~60%).
  d.block_cells = opts.sinks * 11;
  d.utilization = v1 ? 0.62 : 0.60;
  return d;
}

Design makeCls2(const tech::TechModel& tech, TestcaseOptions opts) {
  Rng rng(opts.seed + 0x33);

  // L-shaped floorplan: controller in the corner square, interface logic in
  // the two arms, separated from the controller by ~1mm of standard-cell
  // area, as in the paper's Figure 7(b).
  constexpr double kArm = 700.0;    // arm thickness
  constexpr double kLen = 2200.0;   // arm length
  const Rect ctrl{0.0, 0.0, kArm, kArm};
  const Rect arm_right{kArm, 0.0, kLen, kArm};   // bottom arm of the L
  const Rect arm_top{0.0, kArm, kArm, kLen};     // vertical arm of the L
  const Point src{kArm / 2.0, kArm / 2.0};

  Design d("CLS2v1", &tech, src);
  d.corners = {0, 1, 2};  // paper Table 4: setup c0,c1; hold c2
  d.floorplan = Region{{ctrl, arm_right, arm_top}};

  std::vector<Point> pos;
  std::vector<std::size_t> group_of;  // 0 = controller, 1/2 = interface arms
  const std::size_t n_ctrl = opts.sinks / 2;
  const std::size_t n_arm = (opts.sinks - n_ctrl) / 2;
  placeClusteredSinks(rng, ctrl, n_ctrl, &pos);
  group_of.insert(group_of.end(), n_ctrl, 0);
  // Interface FFs sit toward the far ends of the arms (large separation).
  const Rect far_right{kLen - 900.0, 0.0, kLen, kArm};
  const Rect far_top{0.0, kLen - 900.0, kArm, kLen};
  placeClusteredSinks(rng, far_right, n_arm, &pos);
  group_of.insert(group_of.end(), n_arm, 1);
  placeClusteredSinks(rng, far_top, opts.sinks - n_ctrl - n_arm, &pos);
  group_of.insert(group_of.end(), opts.sinks - n_ctrl - n_arm, 2);

  auto make_pairs = [&, pair_seed = opts.seed ^ 0xFA2Cull](
                        const std::vector<int>& sink_ids) {
    Rng prng(pair_seed);
    std::vector<SinkPair> pairs;
    std::set<std::pair<int, int>> seen;
    addLocalPairs(prng, pos, sink_ids, group_of, 3, &pairs, &seen);
    // Control/data signals between the controller and the interface logic:
    // every interface FF talks to one or two controller FFs ~1mm away.
    // These long pairs are the ones whose buffered paths accumulate
    // cross-corner variation.
    for (std::size_t i = 0; i < pos.size(); ++i) {
      if (group_of[i] == 0) continue;
      const std::size_t links = 1 + prng.index(2);
      for (std::size_t l = 0; l < links; ++l) {
        const std::size_t j = prng.index(n_ctrl);  // controller sinks first
        const auto key = std::minmax(sink_ids[i], sink_ids[j]);
        if (!seen.insert({key.first, key.second}).second) continue;
        SinkPair p;
        p.launch = sink_ids[i];
        p.capture = sink_ids[j];
        p.weight =
            prng.uniform(0.8, 1.5) + geom::manhattan(pos[i], pos[j]) / 2000.0;
        pairs.push_back(p);
      }
    }
    capPairs(prng, opts.max_pairs, &pairs);
    return pairs;
  };

  cts::CtsEngine cts_engine(tech, opts.cts);
  if (opts.select_best_scenario) {
    cts_engine.synthesizeBestScenario(d, pos, make_pairs);
  } else {
    const cts::CtsResult r = cts_engine.synthesize(d, pos);
    d.pairs = make_pairs(r.sink_ids);
  }

  d.block_cells = opts.sinks * 7;  // paper: 1.79M cells / 270K FFs
  d.utilization = 0.58;
  return d;
}

Design makeTestcase(const tech::TechModel& tech, const std::string& name,
                    TestcaseOptions opts) {
  if (name == "CLS1v1") return makeCls1(tech, "v1", opts);
  if (name == "CLS1v2") return makeCls1(tech, "v2", opts);
  if (name == "CLS2v1") return makeCls2(tech, opts);
  throw std::invalid_argument("unknown testcase " + name);
}

ArtificialCase makeArtificialCase(const tech::TechModel& tech, geom::Rng& rng,
                                  bool last_stage) {
  // Bounding box of the driven pins per the paper: area 1000-8000 um^2 at
  // block scale with aspect ratio 0.5-1. Clock stages at our scaled
  // geometry span larger boxes, so stretch the area range (log-uniformly,
  // up to 40x) so training covers every stage size the real testcases
  // exhibit — the paper's generalization argument requires the training
  // ranges to span what real designs see.
  const double area =
      rng.uniform(1000.0, 8000.0) * std::exp(rng.uniform(0.0, 3.7));
  const double ar = rng.uniform(0.5, 1.0);
  const double h = std::sqrt(area * ar);
  const double w = area / h;
  const Rect box{200.0, 200.0, 200.0 + w, 200.0 + h};

  const Point src{20.0, 20.0};
  ArtificialCase ac{Design("artificial", &tech, src), -1};
  Design& d = ac.design;
  d.corners = {0, 1, 2, 3};
  d.floorplan = Region{{Rect{0.0, 0.0, 400.0 + w, 400.0 + h}}};

  // source -> root buffer -> target buffer -> fanout (buffers or sinks).
  const int root_cell = static_cast<int>(tech.numCells() - 2);
  const int root =
      d.tree.addBuffer(d.tree.root(), {80.0, 80.0}, root_cell);
  const int target_cell = 1 + static_cast<int>(rng.index(tech.numCells() - 1));
  ac.target = d.tree.addBuffer(root, box.center(), target_cell);

  const std::size_t fanout =
      last_stage ? 20 + rng.index(21) : 1 + rng.index(5);
  for (std::size_t i = 0; i < fanout; ++i) {
    const Point p = rng.pointIn(box);
    if (last_stage) {
      d.tree.addSink(ac.target, p);
    } else {
      const int child_cell = static_cast<int>(rng.index(tech.numCells() - 1));
      const int child = d.tree.addBuffer(ac.target, p, child_cell);
      // Two stages downstream: each child buffer drives a few sinks.
      const std::size_t leaves = 2 + rng.index(4);
      for (std::size_t s = 0; s < leaves; ++s) {
        Point q{rng.normal(p.x, 35.0), rng.normal(p.y, 35.0)};
        d.tree.addSink(child, d.floorplan.clamp(q));
      }
    }
  }
  d.routing.rebuildAll(d.tree);
  return ac;
}

}  // namespace skewopt::testgen
