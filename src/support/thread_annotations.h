// Clang thread-safety-analysis vocabulary for the project's locking
// discipline, plus the annotated synchronization primitives built on it.
//
// The dynamic sanitizers (TSan in the tier-1 suite) only sample the
// schedules a test happens to execute; Clang's -Wthread-safety proves the
// discipline statically for every path. The macros expand to Clang
// attributes under Clang and to nothing elsewhere, so GCC builds are
// unaffected.
//
// std::mutex itself carries no capability attributes, so the analysis
// cannot see through it. The thin wrappers below — Mutex, MutexLock,
// CondVar — are the project's lockable types: a member annotated
// SKEWOPT_GUARDED_BY(mu_) is then statically checked to be touched only
// while `mu_` is held. Condition-variable wait loops must be written as
// explicit `while (!pred) cv.wait(lk);` loops (not the predicate-lambda
// overloads) so the guarded reads stay inside the analyzed locked scope.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

#define SKEWOPT_CAPABILITY(x) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SKEWOPT_SCOPED_CAPABILITY \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define SKEWOPT_GUARDED_BY(x) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define SKEWOPT_PT_GUARDED_BY(x) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define SKEWOPT_ACQUIRE(...) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SKEWOPT_RELEASE(...) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SKEWOPT_TRY_ACQUIRE(...) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define SKEWOPT_REQUIRES(...) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SKEWOPT_EXCLUDES(...) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define SKEWOPT_RETURN_CAPABILITY(x) \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define SKEWOPT_NO_THREAD_SAFETY_ANALYSIS \
  SKEWOPT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace skewopt::support {

/// std::mutex with the capability attribute the analysis needs. The raw
/// mutex stays reachable through native() for condition-variable waits.
class SKEWOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SKEWOPT_ACQUIRE() { mu_.lock(); }
  void unlock() SKEWOPT_RELEASE() { mu_.unlock(); }
  bool tryLock() SKEWOPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  // SKEWLINT-ALLOW(LNT003: this wrapper IS the capability; it guards callers' state, not its own)
  std::mutex mu_;
};

/// RAII lock over a Mutex (the project's std::unique_lock). Declared a
/// scoped capability so the analysis tracks the held region, including an
/// early manual unlock() before notify calls.
class SKEWOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKEWOPT_ACQUIRE(mu) : lk_(mu.native()) {}
  ~MutexLock() SKEWOPT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope exit (e.g. to notify without the lock held).
  void unlock() SKEWOPT_RELEASE() { lk_.unlock(); }

  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with Mutex/MutexLock. Waits atomically
/// release and reacquire the lock, so callers hold the capability across
/// the call from the analysis's point of view — which matches the state on
/// return.
class CondVar {
 public:
  void wait(MutexLock& lk) { cv_.wait(lk.native()); }

  template <typename Clock, typename Duration>
  std::cv_status waitUntil(
      MutexLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.native(), tp);
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace skewopt::support
