// Fixed-size thread pool shared by the optimizers' hot paths.
//
// The local optimizer golden-evaluates chunks of R candidate moves per
// round (the paper's "R individual threads") and scores thousands of
// enumerated moves before that; spawning fresh std::threads per chunk costs
// more than the work itself on small designs. This pool is created once,
// lazily sized to hardware_concurrency, and reused across every chunk,
// round, and run.
//
// Two dispatch primitives:
//   * runSlices(S, fn)  — invokes fn(0..S-1); slice 0 runs on the calling
//     thread, the rest on the pool. Callers that keep per-worker state
//     (design replicas, scratch timers) key it by slice index: a slice is
//     executed by exactly one thread at a time. Blocks until every slice
//     finished; the first exception thrown by any slice is rethrown.
//   * parallelFor(n, fn) — strided element-wise loop over [0, n) built on
//     runSlices, for stateless per-index work (e.g. move scoring).
//
// runSlices/parallelFor must not be called from inside a pool job (a slice
// that dispatches again can deadlock waiting for its own worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.h"

namespace skewopt::support {

/// Go-style completion latch: add() outstanding jobs, done() from workers,
/// wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void add(std::size_t n = 1);
  void done();
  void wait();

 private:
  Mutex mu_;
  CondVar cv_;
  std::size_t count_ SKEWOPT_GUARDED_BY(mu_) = 0;
};

class ThreadPool {
 public:
  /// `threads` == 0 sizes the pool to hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one job. Jobs must manage their own completion signalling
  /// (see WaitGroup); exceptions escaping a bare submitted job terminate.
  void submit(std::function<void()> job);

  /// See file comment. `slices` == 0 is a no-op.
  void runSlices(std::size_t slices,
                 const std::function<void(std::size_t)>& fn);

  /// Element-wise parallel loop over [0, n): fn(i) for every i, spread
  /// stride-wise over size() + 1 threads (the caller works too).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, constructed on first use.
  static ThreadPool& shared();

 private:
  /// A queued job plus its submit timestamp (0 while metrics are off),
  /// feeding the skewopt_pool_task_latency_ms histogram.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void workerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<Task> queue_ SKEWOPT_GUARDED_BY(mu_);
  bool stop_ SKEWOPT_GUARDED_BY(mu_) = false;
};

}  // namespace skewopt::support
