// Wall-clock stopwatch for coarse per-phase statistics (LP solve and ECO
// realization times in the optimizer reports). steady_clock, so timings
// are monotonic even across system clock adjustments.
#pragma once

#include <chrono>

namespace skewopt::support {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Milliseconds elapsed since construction or the last reset().
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace skewopt::support
