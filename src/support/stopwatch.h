// Wall-clock stopwatch for coarse per-phase statistics (LP solve and ECO
// realization times in the optimizer reports). Reads obs::nowNs(), which
// is steady_clock in production — monotonic across system clock
// adjustments — and a deterministic fake under obs::setClockForTest, so
// every phase timing in the library is injectable from tests.
#pragma once

#include <cstdint>

#include "obs/clock.h"

namespace skewopt::support {

class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::nowNs()) {}

  void reset() { start_ns_ = obs::nowNs(); }

  /// Milliseconds elapsed since construction or the last reset().
  double ms() const {
    return static_cast<double>(obs::nowNs() - start_ns_) * 1e-6;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace skewopt::support
