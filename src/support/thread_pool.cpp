#include "support/thread_pool.h"

#include <algorithm>
#include <exception>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skewopt::support {

namespace {

obs::Counter& poolTasksTotal() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "skewopt_pool_tasks_total", "Jobs submitted to the shared thread pool");
  return c;
}

obs::Gauge& poolQueueDepth() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "skewopt_pool_queue_depth", "Jobs waiting in the thread pool queue");
  return g;
}

obs::Histogram& poolTaskLatencyMs() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "skewopt_pool_task_latency_ms", obs::defaultMsBuckets(),
      "Submit-to-completion latency of pool jobs");
  return h;
}

}  // namespace

void WaitGroup::add(std::size_t n) {
  MutexLock lk(mu_);
  count_ += n;
}

void WaitGroup::done() {
  MutexLock lk(mu_);
  if (count_ > 0 && --count_ == 0) cv_.notifyAll();
}

void WaitGroup::wait() {
  MutexLock lk(mu_);
  while (count_ != 0) cv_.wait(lk);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  poolTasksTotal().add();
  Task task{std::move(job), obs::metricsOn() ? obs::nowNs() : 0};
  {
    MutexLock lk(mu_);
    queue_.push_back(std::move(task));
    poolQueueDepth().set(static_cast<double>(queue_.size()));
  }
  cv_.notifyOne();
}

void ThreadPool::workerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lk);
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      poolQueueDepth().set(static_cast<double>(queue_.size()));
    }
    task.fn();
    if (obs::metricsOn() && task.enqueue_ns != 0)
      poolTaskLatencyMs().observe(
          static_cast<double>(obs::nowNs() - task.enqueue_ns) * 1e-6);
  }
}

void ThreadPool::runSlices(std::size_t slices,
                           const std::function<void(std::size_t)>& fn) {
  if (slices == 0) return;
  std::mutex err_mu;
  std::exception_ptr err;
  auto guarded = [&](std::size_t s) {
    try {
      fn(s);
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!err) err = std::current_exception();
    }
  };
  // Pool workers inherit the submitting thread's trace context so a
  // traced job's spans stay attributable across its parallel slices.
  const std::uint64_t trace_id = obs::currentTraceId();
  WaitGroup wg;
  wg.add(slices - 1);
  for (std::size_t s = 1; s < slices; ++s)
    submit([&guarded, &wg, s, trace_id] {
      obs::ScopedTraceContext ctx(trace_id);
      guarded(s);
      wg.done();
    });
  guarded(0);
  wg.wait();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  const std::size_t slices = std::min(n, size() + 1);
  runSlices(slices, [&](std::size_t s) {
    for (std::size_t i = s; i < n; i += slices) fn(i);
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace skewopt::support
