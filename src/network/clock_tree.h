// Clock tree data model.
//
// A ClockTree is a rooted tree of nodes: one Source (the clock root), any
// number of Buffer nodes (inverters from the technology library — the paper
// builds buffers as inverter pairs, which here are simply two consecutive
// Buffer nodes), and Sink nodes (flip-flop clock pins). Node ids are stable
// across edits; removal soft-deletes.
//
// The paper's unit of global optimization is the *arc*: a maximal tree
// segment without branching (its s_j, Table 1). extractArcs() decomposes the
// tree so that every root-to-sink path is a concatenation of arcs and every
// buffer belongs to exactly one arc (interior single-child buffers belong to
// the arc passing through them; a branching buffer terminates the arc that
// reaches it).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/geom.h"

namespace skewopt::network {

enum class NodeKind { Source, Buffer, Sink };

struct ClockNode {
  NodeKind kind = NodeKind::Buffer;
  geom::Point pos;
  int cell = -1;  ///< library cell index; meaningful for buffers only
  int parent = -1;
  std::vector<int> children;
  std::string name;
  bool valid = true;
};

/// One unbranched tree segment (the paper's arc s_j).
///
/// `src` is the anchor driving the arc (the source or a branching buffer);
/// `dst` is the anchor terminating it (a branching buffer or a sink);
/// `interior` lists the single-child buffers strictly between them, in
/// driver-to-receiver order. The arc's delay is the latency from src's
/// output to dst's output (or to the sink pin when dst is a sink), so sink
/// latency is exactly the sum of arc delays along its root path.
struct Arc {
  int id = -1;
  int src = -1;
  int dst = -1;
  std::vector<int> interior;
  double direct_len_um = 0.0;  ///< Manhattan distance src->dst
};

class ClockTree {
 public:
  /// Creates the tree with its source node; returns nothing — the source is
  /// always node 0.
  explicit ClockTree(const geom::Point& source_pos,
                     std::string source_name = "clk_src");

  int root() const { return 0; }

  int addBuffer(int parent, const geom::Point& pos, int cell,
                std::string name = "");
  int addSink(int parent, const geom::Point& pos, std::string name = "");

  std::size_t numNodes() const { return nodes_.size(); }
  const ClockNode& node(int id) const { return nodes_[checked(id)]; }
  bool isValid(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() &&
           nodes_[static_cast<std::size_t>(id)].valid;
  }

  /// All live node ids of a kind.
  std::vector<int> nodesOfKind(NodeKind kind) const;
  std::vector<int> sinks() const { return nodesOfKind(NodeKind::Sink); }
  std::vector<int> buffers() const { return nodesOfKind(NodeKind::Buffer); }
  std::size_t numBuffers() const;

  // --- edit operations (the local-move and ECO primitives) ---

  /// Moves a node to a new location (buffer displacement).
  void moveNode(int id, const geom::Point& pos);

  /// Changes a buffer's library cell (buffer sizing).
  void resize(int id, int cell);

  /// Tree surgery: detaches `id` from its parent and reattaches it under
  /// `new_parent` (paper's type-III move). `new_parent` must not be in the
  /// subtree of `id`.
  void reassignDriver(int id, int new_parent);

  /// reassignDriver placing `id` at child position `index` of `new_parent`
  /// (clamped to the child count). Trial rollback uses this to restore the
  /// exact original child order, which routed-net pin order depends on.
  void reassignDriverAt(int id, int new_parent, std::size_t index);

  /// Removes a single-child interior buffer, splicing its child to its
  /// parent (ECO buffer removal).
  void removeInteriorBuffer(int id);

  /// Removes a childless buffer.
  void removeLeafBuffer(int id);

  // --- structural queries ---

  /// Depth of `id` counted in buffer stages from the root (source = 0).
  int level(int id) const;

  /// Node ids from `id` up to and including the root.
  std::vector<int> pathToRoot(int id) const;

  /// True iff `anc` is `id` itself or an ancestor of `id`.
  bool isAncestorOrSelf(int anc, int id) const;

  /// Decomposes the tree into arcs (see Arc). Deterministic order.
  std::vector<Arc> extractArcs() const;

  /// Checks all structural invariants; returns true and leaves `err` empty
  /// on success, otherwise describes the first violation. The check
  /// subsystem's checkTreeStructure() is the diagnostic-code superset of
  /// this predicate.
  bool validate(std::string* err = nullptr) const;

  /// The underlying node array, including soft-deleted entries that node()
  /// refuses to hand out — the view an invariant checker needs.
  const std::vector<ClockNode>& rawNodes() const { return nodes_; }

  /// Unchecked mutable access that deliberately bypasses every invariant.
  /// Exists solely so corruption-seeding tests can fabricate ill-formed
  /// trees (cycles, dangling children, dead-node references) that the edit
  /// operations above refuse to create; never call it from flow code.
  ClockNode& corruptNodeForTest(int id) {
    ++edit_stamp_;
    return nodes_.at(static_cast<std::size_t>(id));
  }

  /// Monotonically increasing counter bumped by every mutating call; lets
  /// caches (timer, routing) detect staleness.
  std::uint64_t editStamp() const { return edit_stamp_; }

 private:
  std::size_t checked(int id) const;
  ClockNode& mut(int id);
  void detach(int id);

  std::vector<ClockNode> nodes_;
  std::uint64_t edit_stamp_ = 0;
};

}  // namespace skewopt::network
