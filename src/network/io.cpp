#include "network/io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace skewopt::network {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  return out.empty() ? "_" : out;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("design file: " + what);
}

std::istringstream lineOf(std::istream& is, const char* expect_key) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key != expect_key) fail("expected '" + std::string(expect_key) +
                                "', got '" + key + "'");
    return ls;
  }
  fail("unexpected end of file, expected '" + std::string(expect_key) + "'");
}

}  // namespace

void writeDesign(const Design& d, std::ostream& os) {
  // Full round-trip precision: the deterministic router hashes raw
  // coordinate bits, so truncated coordinates would reconstruct different
  // jogs and change timing.
  os.precision(17);
  os << "skewopt-design v1\n";
  os << "name " << sanitize(d.name) << "\n";
  os << "corners";
  for (const std::size_t k : d.corners) os << ' ' << k;
  os << "\n";
  os << "floorplan " << d.floorplan.rects().size() << "\n";
  for (const geom::Rect& r : d.floorplan.rects())
    os << "rect " << r.lx << ' ' << r.ly << ' ' << r.ux << ' ' << r.uy
       << "\n";
  os << "blockcells " << d.block_cells << " utilization " << d.utilization
     << "\n";
  const ClockNode& src = d.tree.node(d.tree.root());
  os << "source " << src.pos.x << ' ' << src.pos.y << ' '
     << sanitize(src.name) << "\n";

  // Live non-source nodes in BFS order so parents precede children even
  // after tree surgery reshuffled the id order. A queue (not a stack)
  // preserves each driver's children order, which the router's
  // deterministic jogs and the extras' pin indices depend on.
  std::vector<int> order;
  std::vector<int> queue = {d.tree.root()};
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const int v = queue[qi];
    if (v != d.tree.root()) order.push_back(v);
    for (const int c : d.tree.node(v).children) queue.push_back(c);
  }
  os << "nodes " << order.size() << "\n";
  for (const int id : order) {
    const ClockNode& n = d.tree.node(id);
    os << "node " << id << ' ' << (n.kind == NodeKind::Buffer ? 'B' : 'S')
       << ' ' << n.parent << ' ' << n.pos.x << ' ' << n.pos.y << ' '
       << n.cell << ' ' << sanitize(n.name) << "\n";
  }

  os << "pairs " << d.pairs.size() << "\n";
  for (const SinkPair& p : d.pairs)
    os << "pair " << p.launch << ' ' << p.capture << ' ' << p.weight << "\n";

  // Forced extras = current extras minus what a fresh deterministic
  // rebuild would produce (the router's own jogs).
  Routing scratch;
  scratch.rebuildAll(d.tree);
  std::vector<std::tuple<int, std::size_t, double>> extras;
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!d.tree.isValid(id)) continue;
    const std::size_t nkids = d.tree.node(id).children.size();
    for (std::size_t pin = 0; pin < nkids; ++pin) {
      const double forced =
          d.routing.extraOf(id, pin) - scratch.extraOf(id, pin);
      if (forced > 1e-9) extras.push_back({id, pin, forced});
    }
  }
  os << "extras " << extras.size() << "\n";
  for (const auto& [id, pin, um] : extras)
    os << "extra " << id << ' ' << pin << ' ' << um << "\n";
  os << "end\n";
}

void saveDesign(const Design& d, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail("cannot open for writing: " + path);
  writeDesign(d, os);
}

Design readDesign(const tech::TechModel& tech, std::istream& is) {
  {
    std::string line;
    if (!std::getline(is, line) || line.rfind("skewopt-design v1", 0) != 0)
      fail("missing 'skewopt-design v1' header");
  }
  std::string name;
  lineOf(is, "name") >> name;

  std::vector<std::size_t> corners;
  {
    std::istringstream ls = lineOf(is, "corners");
    std::size_t k;
    while (ls >> k) {
      if (k >= tech.numCorners()) fail("corner id out of range");
      corners.push_back(k);
    }
    if (corners.empty()) fail("no corners");
  }

  std::size_t nrects = 0;
  lineOf(is, "floorplan") >> nrects;
  geom::Region fp;
  for (std::size_t i = 0; i < nrects; ++i) {
    geom::Rect r;
    lineOf(is, "rect") >> r.lx >> r.ly >> r.ux >> r.uy;
    fp.add(r);
  }

  std::size_t block_cells = 0;
  double util = 0.0;
  {
    std::istringstream ls = lineOf(is, "blockcells");
    std::string key;
    ls >> block_cells >> key >> util;
    if (key != "utilization") fail("expected 'utilization'");
  }

  geom::Point src_pos;
  std::string src_name;
  lineOf(is, "source") >> src_pos.x >> src_pos.y >> src_name;

  Design d(name, &tech, src_pos);
  d.corners = corners;
  d.floorplan = fp;
  d.block_cells = block_cells;
  d.utilization = util;

  std::size_t nnodes = 0;
  lineOf(is, "nodes") >> nnodes;
  std::map<int, int> remap;  // file id -> new id
  remap[0] = d.tree.root();
  for (std::size_t i = 0; i < nnodes; ++i) {
    int file_id = -1, parent = -1, cell = -1;
    char kind = '?';
    geom::Point pos;
    std::string node_name;
    lineOf(is, "node") >> file_id >> kind >> parent >> pos.x >> pos.y >>
        cell >> node_name;
    const auto it = remap.find(parent);
    if (it == remap.end()) fail("node references unknown parent");
    int new_id;
    if (kind == 'B')
      new_id = d.tree.addBuffer(it->second, pos, cell, node_name);
    else if (kind == 'S')
      new_id = d.tree.addSink(it->second, pos, node_name);
    else
      fail("unknown node kind");
    if (!remap.emplace(file_id, new_id).second) fail("duplicate node id");
  }

  std::size_t npairs = 0;
  lineOf(is, "pairs") >> npairs;
  for (std::size_t i = 0; i < npairs; ++i) {
    int launch = -1, capture = -1;
    double weight = 1.0;
    lineOf(is, "pair") >> launch >> capture >> weight;
    const auto il = remap.find(launch);
    const auto ic = remap.find(capture);
    if (il == remap.end() || ic == remap.end())
      fail("pair references unknown node");
    d.pairs.push_back({il->second, ic->second, weight});
  }

  d.routing.rebuildAll(d.tree);

  std::size_t nextras = 0;
  lineOf(is, "extras") >> nextras;
  for (std::size_t i = 0; i < nextras; ++i) {
    int driver = -1;
    std::size_t pin = 0;
    double um = 0.0;
    lineOf(is, "extra") >> driver >> pin >> um;
    const auto it = remap.find(driver);
    if (it == remap.end()) fail("extra references unknown driver");
    d.routing.addExtra(it->second, pin, um);
  }
  lineOf(is, "end");

  std::string err;
  if (!d.tree.validate(&err)) fail("loaded tree invalid: " + err);
  return d;
}

Design loadDesign(const tech::TechModel& tech, const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open for reading: " + path);
  return readDesign(tech, is);
}

}  // namespace skewopt::network
