#include "network/eco_export.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace skewopt::network {

namespace {

/// Name -> node id over the live nodes. Names are unique within a tree
/// (auto-generated from creation ids) and survive file round-trips, unlike
/// node ids, which loading remaps.
std::unordered_map<std::string, int> nameIndex(const Design& d) {
  std::unordered_map<std::string, int> idx;
  for (std::size_t i = 0; i < d.tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (d.tree.isValid(id)) idx.emplace(d.tree.node(id).name, id);
  }
  return idx;
}

/// Sorted key view: the ECO script is a result (it round-trips through
/// files and diffs in tests), so command order must not follow hash order.
std::vector<std::string> sortedNames(
    const std::unordered_map<std::string, int>& idx) {
  std::vector<std::string> names;
  names.reserve(idx.size());
  // SKEWLINT-ALLOW(LNT002: key collection feeding the sort below; order cannot reach the script)
  for (const auto& kv : idx) names.push_back(kv.first);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

EcoDiffStats writeEcoScript(const Design& before, const Design& after,
                            std::ostream& os) {
  EcoDiffStats stats;
  os << "# skewopt ECO script: " << before.name << " -> optimized\n";
  const std::unordered_map<std::string, int> b_idx = nameIndex(before);
  const std::unordered_map<std::string, int> a_idx = nameIndex(after);

  // Removals first (so a P&R tool frees the sites before insertions).
  for (const std::string& name : sortedNames(b_idx)) {
    const int id = b_idx.at(name);
    if (before.tree.node(id).kind != NodeKind::Buffer) continue;
    if (!a_idx.count(name)) {
      os << "remove_buffer " << name << "\n";
      ++stats.removed_buffers;
    }
  }

  // Insertions in BFS order of `after`, so drivers are declared before the
  // buffers they drive even when both are new.
  std::vector<int> order = {after.tree.root()};
  for (std::size_t qi = 0; qi < order.size(); ++qi)
    for (const int c : after.tree.node(order[qi]).children)
      order.push_back(c);
  for (const int id : order) {
    const ClockNode& n = after.tree.node(id);
    if (n.kind != NodeKind::Buffer || b_idx.count(n.name)) continue;
    os << "insert_buffer " << n.name << " cell " << n.cell << " at "
       << n.pos.x << ' ' << n.pos.y << " driven_by "
       << after.tree.node(n.parent).name << "\n";
    ++stats.inserted_buffers;
  }

  // Edits on surviving nodes.
  for (const std::string& name : sortedNames(a_idx)) {
    const int aid = a_idx.at(name);
    const auto it = b_idx.find(name);
    if (it == b_idx.end()) continue;
    const ClockNode& b = before.tree.node(it->second);
    const ClockNode& a = after.tree.node(aid);
    if (a.kind == NodeKind::Buffer && a.cell != b.cell) {
      os << "size_cell " << name << " " << b.cell << " -> " << a.cell
         << "\n";
      ++stats.resized;
    }
    if (a.pos.x != b.pos.x || a.pos.y != b.pos.y) {
      os << "move_cell " << name << " " << b.pos.x << ' ' << b.pos.y
         << " -> " << a.pos.x << ' ' << a.pos.y << "\n";
      ++stats.moved;
    }
    if (a.parent >= 0 && b.parent >= 0 &&
        after.tree.node(a.parent).name != before.tree.node(b.parent).name) {
      os << "reconnect " << name << " from "
         << before.tree.node(b.parent).name << " to "
         << after.tree.node(a.parent).name << "\n";
      ++stats.reconnected;
    }
  }

  // Routing detours: forced extra wirelength differences per (driver,
  // child), matched by child name since pin indices shuffle with edits.
  for (const std::string& name : sortedNames(a_idx)) {
    const int aid = a_idx.at(name);
    const ClockNode& an = after.tree.node(aid);
    const auto bit = b_idx.find(name);
    for (std::size_t pin = 0; pin < an.children.size(); ++pin) {
      const double a_extra = after.routing.extraOf(aid, pin);
      double b_extra = 0.0;
      if (bit != b_idx.end()) {
        const ClockNode& bn = before.tree.node(bit->second);
        const std::string& child_name =
            after.tree.node(an.children[pin]).name;
        for (std::size_t bp = 0; bp < bn.children.size(); ++bp) {
          if (before.tree.node(bn.children[bp]).name == child_name) {
            b_extra = before.routing.extraOf(bit->second, bp);
            break;
          }
        }
      }
      const double delta = a_extra - b_extra;
      if (std::abs(delta) > 1.0) {
        os << "add_route_detour " << name << " pin " << pin << " " << delta
           << "\n";
        ++stats.detours;
      }
    }
  }

  os << "# " << stats.total() << " ECO commands\n";
  return stats;
}

}  // namespace skewopt::network
