// ECO change-list export.
//
// The paper's framework runs next to a commercial P&R tool and hands it
// ECO changes (buffer insertion/removal/sizing/displacement, routing
// detours) to implement. This module is that interface's stand-in: it
// diffs two design states (before vs after optimization) and emits the
// change list as a neutral, line-oriented ECO script a P&R integration
// would translate into its own commands (e.g. ICC's size_cell /
// move_cell / insert_buffer / disconnect_net).
//
// Node identity across the two states: nodes existing in both trees keep
// their ids (the optimizers never reuse ids); new nodes appear only in
// `after`; removed nodes are invalid in `after`.
//
// Emitted commands:
//   remove_buffer  <name>
//   insert_buffer  <name> <cell> <x> <y> driven_by <parent-name>
//   size_cell      <name> <old-cell> -> <new-cell>
//   move_cell      <name> <old-x> <old-y> -> <new-x> <new-y>
//   reconnect      <name> from <old-parent> to <new-parent>
//   add_route_detour <driver-name> pin <idx> <extra-um>
#pragma once

#include <iosfwd>
#include <string>

#include "network/design.h"

namespace skewopt::network {

struct EcoDiffStats {
  std::size_t removed_buffers = 0;
  std::size_t inserted_buffers = 0;
  std::size_t resized = 0;
  std::size_t moved = 0;
  std::size_t reconnected = 0;
  std::size_t detours = 0;
  std::size_t total() const {
    return removed_buffers + inserted_buffers + resized + moved +
           reconnected + detours;
  }
};

/// Writes the ECO script transforming `before` into `after`; returns the
/// change counts. Both designs must stem from the same original (shared
/// node ids), which every optimizer in this library preserves.
EcoDiffStats writeEcoScript(const Design& before, const Design& after,
                            std::ostream& os);

}  // namespace skewopt::network
