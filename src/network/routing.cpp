#include "network/routing.h"

#include <algorithm>
#include <stdexcept>

namespace skewopt::network {

void Routing::rebuildNet(const ClockTree& tree, int driver) {
  ++version_;
  const ClockNode& d = tree.node(driver);
  if (d.children.empty()) {
    nets_.erase(driver);
    return;
  }
  std::vector<geom::Point> pins;
  pins.reserve(d.children.size());
  for (const int c : d.children) pins.push_back(tree.node(c).pos);
  nets_[driver] = route::ecoRoute(d.pos, pins, jog_factor_);
}

void Routing::rebuildAll(const ClockTree& tree) {
  ++version_;
  nets_.clear();
  for (std::size_t i = 0; i < tree.numNodes(); ++i) {
    const int id = static_cast<int>(i);
    if (!tree.isValid(id)) continue;
    if (!tree.node(id).children.empty()) rebuildNet(tree, id);
  }
}

void Routing::rebuildAround(const ClockTree& tree, int id) {
  const ClockNode& n = tree.node(id);
  if (n.parent >= 0) rebuildNet(tree, n.parent);
  if (!n.children.empty()) rebuildNet(tree, id);
}

const route::SteinerTree* Routing::net(int driver) const {
  const auto it = nets_.find(driver);
  return it == nets_.end() ? nullptr : &it->second;
}

void Routing::addExtra(int driver, std::size_t pin_idx, double extra_um) {
  ++version_;
  auto it = nets_.find(driver);
  if (it == nets_.end()) throw std::out_of_range("addExtra: no such net");
  auto& net = it->second;
  if (pin_idx >= net.pin_node.size())
    throw std::out_of_range("addExtra: bad pin index");
  net.extra[net.pin_node[pin_idx]] += extra_um;
}

double Routing::extraOf(int driver, std::size_t pin_idx) const {
  const auto it = nets_.find(driver);
  if (it == nets_.end() || pin_idx >= it->second.pin_node.size()) return 0.0;
  return it->second.extra[it->second.pin_node[pin_idx]];
}

double Routing::totalWirelength() const {
  // FP addition is not associative and this total reaches results (SKW
  // checks, objective reports), so the accumulation order must not come
  // from the hash layout: sum in sorted driver order.
  std::vector<int> drivers;
  drivers.reserve(nets_.size());
  // SKEWLINT-ALLOW(LNT002: key collection feeding the sort below; order cannot reach the sum)
  for (const auto& kv : nets_) drivers.push_back(kv.first);
  std::sort(drivers.begin(), drivers.end());
  double wl = 0.0;
  for (const int driver : drivers) wl += nets_.at(driver).wirelength();
  return wl;
}

}  // namespace skewopt::network
