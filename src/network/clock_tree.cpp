#include "network/clock_tree.h"

#include <algorithm>
#include <stdexcept>

namespace skewopt::network {

ClockTree::ClockTree(const geom::Point& source_pos, std::string source_name) {
  ClockNode src;
  src.kind = NodeKind::Source;
  src.pos = source_pos;
  src.name = std::move(source_name);
  nodes_.push_back(std::move(src));
}

std::size_t ClockTree::checked(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size() ||
      !nodes_[static_cast<std::size_t>(id)].valid)
    throw std::out_of_range("ClockTree: invalid node id " +
                            std::to_string(id));
  return static_cast<std::size_t>(id);
}

ClockNode& ClockTree::mut(int id) {
  ++edit_stamp_;
  return nodes_[checked(id)];
}

int ClockTree::addBuffer(int parent, const geom::Point& pos, int cell,
                         std::string name) {
  if (cell < 0) throw std::invalid_argument("addBuffer: cell required");
  checked(parent);
  ClockNode n;
  n.kind = NodeKind::Buffer;
  n.pos = pos;
  n.cell = cell;
  n.parent = parent;
  n.name = name.empty() ? "buf_" + std::to_string(nodes_.size())
                        : std::move(name);
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  mut(parent).children.push_back(id);
  return id;
}

int ClockTree::addSink(int parent, const geom::Point& pos, std::string name) {
  checked(parent);
  ClockNode n;
  n.kind = NodeKind::Sink;
  n.pos = pos;
  n.parent = parent;
  n.name = name.empty() ? "ff_" + std::to_string(nodes_.size())
                        : std::move(name);
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(n));
  mut(parent).children.push_back(id);
  return id;
}

std::vector<int> ClockTree::nodesOfKind(NodeKind kind) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].valid && nodes_[i].kind == kind)
      out.push_back(static_cast<int>(i));
  return out;
}

std::size_t ClockTree::numBuffers() const {
  std::size_t n = 0;
  for (const ClockNode& c : nodes_)
    if (c.valid && c.kind == NodeKind::Buffer) ++n;
  return n;
}

void ClockTree::moveNode(int id, const geom::Point& pos) {
  ClockNode& n = mut(id);
  if (n.kind == NodeKind::Source)
    throw std::invalid_argument("moveNode: cannot move the source");
  n.pos = pos;
}

void ClockTree::resize(int id, int cell) {
  ClockNode& n = mut(id);
  if (n.kind != NodeKind::Buffer)
    throw std::invalid_argument("resize: not a buffer");
  if (cell < 0) throw std::invalid_argument("resize: bad cell");
  n.cell = cell;
}

void ClockTree::detach(int id) {
  ClockNode& n = nodes_[checked(id)];
  if (n.parent >= 0) {
    auto& kids = nodes_[static_cast<std::size_t>(n.parent)].children;
    kids.erase(std::remove(kids.begin(), kids.end(), id), kids.end());
  }
  n.parent = -1;
  ++edit_stamp_;
}

void ClockTree::reassignDriver(int id, int new_parent) {
  checked(id);
  checked(new_parent);
  if (nodes_[static_cast<std::size_t>(id)].kind == NodeKind::Source)
    throw std::invalid_argument("reassignDriver: cannot reparent the source");
  if (isAncestorOrSelf(id, new_parent))
    throw std::invalid_argument(
        "reassignDriver: new parent is inside the moved subtree");
  detach(id);
  nodes_[static_cast<std::size_t>(id)].parent = new_parent;
  mut(new_parent).children.push_back(id);
}

void ClockTree::reassignDriverAt(int id, int new_parent, std::size_t index) {
  checked(id);
  checked(new_parent);
  if (nodes_[static_cast<std::size_t>(id)].kind == NodeKind::Source)
    throw std::invalid_argument("reassignDriver: cannot reparent the source");
  if (isAncestorOrSelf(id, new_parent))
    throw std::invalid_argument(
        "reassignDriver: new parent is inside the moved subtree");
  detach(id);
  nodes_[static_cast<std::size_t>(id)].parent = new_parent;
  auto& kids = mut(new_parent).children;
  kids.insert(kids.begin() + static_cast<long>(std::min(index, kids.size())),
              id);
}

void ClockTree::removeInteriorBuffer(int id) {
  ClockNode& n = mut(id);
  if (n.kind != NodeKind::Buffer)
    throw std::invalid_argument("removeInteriorBuffer: not a buffer");
  if (n.children.size() != 1)
    throw std::invalid_argument(
        "removeInteriorBuffer: buffer is not single-child");
  const int child = n.children.front();
  const int parent = n.parent;
  detach(child);
  nodes_[static_cast<std::size_t>(child)].parent = parent;
  mut(parent).children.push_back(child);
  detach(id);
  nodes_[static_cast<std::size_t>(id)].valid = false;
  nodes_[static_cast<std::size_t>(id)].children.clear();
}

void ClockTree::removeLeafBuffer(int id) {
  ClockNode& n = mut(id);
  if (n.kind != NodeKind::Buffer || !n.children.empty())
    throw std::invalid_argument("removeLeafBuffer: not a childless buffer");
  detach(id);
  nodes_[static_cast<std::size_t>(id)].valid = false;
}

int ClockTree::level(int id) const {
  checked(id);
  int lvl = 0;
  for (int cur = id; nodes_[static_cast<std::size_t>(cur)].parent >= 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    if (nodes_[static_cast<std::size_t>(cur)].kind == NodeKind::Buffer) ++lvl;
  }
  return lvl;
}

std::vector<int> ClockTree::pathToRoot(int id) const {
  checked(id);
  std::vector<int> path;
  for (int cur = id; cur >= 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent)
    path.push_back(cur);
  return path;
}

bool ClockTree::isAncestorOrSelf(int anc, int id) const {
  checked(anc);
  for (int cur = id; cur >= 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent)
    if (cur == anc) return true;
  return false;
}

std::vector<Arc> ClockTree::extractArcs() const {
  // Anchors: the source, every branching node, every sink. An arc starts at
  // each anchor and follows each child chain through single-child buffers
  // until the next anchor.
  std::vector<Arc> arcs;
  std::vector<int> stack = {root()};
  while (!stack.empty()) {
    const int anchor = stack.back();
    stack.pop_back();
    for (const int first : nodes_[static_cast<std::size_t>(anchor)].children) {
      Arc arc;
      arc.id = static_cast<int>(arcs.size());
      arc.src = anchor;
      int cur = first;
      while (true) {
        const ClockNode& n = nodes_[static_cast<std::size_t>(cur)];
        const bool terminal =
            n.kind == NodeKind::Sink || n.children.size() != 1;
        if (terminal) break;
        arc.interior.push_back(cur);
        cur = n.children.front();
      }
      arc.dst = cur;
      arc.direct_len_um =
          geom::manhattan(nodes_[static_cast<std::size_t>(anchor)].pos,
                          nodes_[static_cast<std::size_t>(cur)].pos);
      arcs.push_back(std::move(arc));
      if (nodes_[static_cast<std::size_t>(cur)].kind != NodeKind::Sink)
        stack.push_back(cur);
    }
  }
  return arcs;
}

bool ClockTree::validate(std::string* err) const {
  auto fail = [&](const std::string& msg) {
    if (err) *err = msg;
    return false;
  };
  if (nodes_.empty() || nodes_[0].kind != NodeKind::Source ||
      !nodes_[0].valid || nodes_[0].parent != -1)
    return fail("node 0 must be the live, parentless source");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ClockNode& n = nodes_[i];
    if (!n.valid) {
      if (!n.children.empty()) return fail("dead node has children");
      continue;
    }
    if (i != 0) {
      if (n.kind == NodeKind::Source) return fail("duplicate source");
      if (n.parent < 0 ||
          static_cast<std::size_t>(n.parent) >= nodes_.size() ||
          !nodes_[static_cast<std::size_t>(n.parent)].valid)
        return fail("node " + std::to_string(i) + " has invalid parent");
      const auto& kids =
          nodes_[static_cast<std::size_t>(n.parent)].children;
      if (std::count(kids.begin(), kids.end(), static_cast<int>(i)) != 1)
        return fail("parent/child lists inconsistent at node " +
                    std::to_string(i));
    }
    if (n.kind == NodeKind::Sink && !n.children.empty())
      return fail("sink with children");
    if (n.kind == NodeKind::Buffer && n.cell < 0)
      return fail("buffer without a cell");
    for (const int c : n.children) {
      if (c < 0 || static_cast<std::size_t>(c) >= nodes_.size() ||
          !nodes_[static_cast<std::size_t>(c)].valid ||
          nodes_[static_cast<std::size_t>(c)].parent != static_cast<int>(i))
        return fail("child list broken at node " + std::to_string(i));
    }
  }
  // Reachability (acyclicity follows from single-parent + reachability).
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<int> stack = {0};
  std::size_t live = 0, reached = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(v)]) return fail("cycle detected");
    seen[static_cast<std::size_t>(v)] = 1;
    ++reached;
    for (const int c : nodes_[static_cast<std::size_t>(v)].children)
      stack.push_back(c);
  }
  for (const ClockNode& n : nodes_)
    if (n.valid) ++live;
  if (reached != live) return fail("unreachable live nodes");
  if (err) err->clear();
  return true;
}

}  // namespace skewopt::network
