// Design persistence: a line-oriented text format that round-trips the
// full optimization state — floorplan, tree topology and placement, cell
// assignment, sink pairs, active corners, and the forced snaking extras
// that skew balancing and ECOs add on top of the deterministic router.
//
// The golden router is deterministic for a placement, so only the *forced*
// extra wirelength (total extra minus the router's own jogs) is stored;
// loading rebuilds the routes and re-applies the forced extras, giving a
// bit-identical timing view.
//
// Format (verson line first, '#' comments allowed):
//   skewopt-design v1
//   name <string>
//   corners <k0> <k1> ...
//   floorplan <nrects>
//   rect <lx> <ly> <ux> <uy>
//   blockcells <n>  utilization <u>
//   source <x> <y> <name>
//   nodes <count>
//   node <id> B|S <parent-id> <x> <y> <cell> <name>
//   pairs <count>
//   pair <launch-id> <capture-id> <weight>
//   extras <count>
//   extra <driver-id> <pin-index> <um>
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "network/design.h"

namespace skewopt::network {

/// Serializes the design. Node ids in the file are the design's live node
/// ids (dead nodes are skipped).
void writeDesign(const Design& d, std::ostream& os);
void saveDesign(const Design& d, const std::string& path);

/// Deserializes into a fresh design bound to `tech`. Node ids are remapped
/// to a dense range; pairs and extras follow the remapping. Throws
/// std::runtime_error on malformed input.
Design readDesign(const tech::TechModel& tech, std::istream& is);
Design loadDesign(const tech::TechModel& tech, const std::string& path);

}  // namespace skewopt::network
