// The unit of work every optimizer operates on: a technology view, a clock
// tree with its routing, and the set of sequentially adjacent sink pairs
// whose skew variation is being minimized.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "network/clock_tree.h"
#include "network/routing.h"
#include "tech/tech.h"

namespace skewopt::network {

/// A launch/capture flip-flop pair with at least one datapath between them
/// (the paper only optimizes skew between *sequentially adjacent* sinks to
/// avoid global-skew pessimism). `weight` encodes timing criticality and is
/// used to pick the top critical pairs, mirroring the paper's "union of top
/// 10K critical sink pairs".
struct SinkPair {
  int launch = -1;
  int capture = -1;
  double weight = 1.0;
};

struct Design {
  std::string name;
  const tech::TechModel* tech = nullptr;
  ClockTree tree;
  Routing routing;
  std::vector<SinkPair> pairs;

  /// Corner ids (into tech) active for this design — the paper's testcases
  /// each sign off at three of the four corners (Table 4).
  std::vector<std::size_t> corners;

  /// Floorplan outline, for legalization clamping and reports.
  geom::Region floorplan;

  /// Total placement-cell count of the surrounding block (reported in
  /// Table 4; the clock tree itself only contributes tree.numBuffers()).
  std::size_t block_cells = 0;
  double utilization = 0.0;

  Design(std::string design_name, const tech::TechModel* t,
         const geom::Point& src)
      : name(std::move(design_name)), tech(t), tree(src) {}
};

}  // namespace skewopt::network
